#pragma once
// Job descriptions and results for the multi-device runtime. A Job is a
// self-contained request (kernel family, problem size, input data); the
// pool copies nothing heavy because inputs are shared immutable buffers --
// batched submissions of the same signal or the same filter taps alias one
// allocation across all jobs and devices.
//
// Results carry the per-job simulated cost as a soc::Platform::Snapshot
// delta, so callers get the same cycle/energy separation (CPU / VWR2A /
// accelerator) as a standalone run. Per-job deltas are bit- and cycle-
// deterministic: a job's cost depends only on the job stream of the device
// it is pinned to, never on worker scheduling (see pool.hpp).

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/types.hpp"
#include "soc/platform.hpp"

namespace vwr2a::runtime {

/// Shared immutable sample buffer (16.15 or coefficient fixed point).
using SharedBuffer = std::shared_ptr<const std::vector<std::int32_t>>;

/// Convenience: wraps a vector into a shared immutable buffer.
inline SharedBuffer make_buffer(std::vector<std::int32_t> data) {
  return std::make_shared<const std::vector<std::int32_t>>(std::move(data));
}

/// FIR-11 filtering of n samples (16.15) with 11 coefficient-format taps.
struct FirJob {
  unsigned n = 0;
  SharedBuffer taps;   ///< kernels::kFirTaps coefficients
  SharedBuffer input;  ///< n samples
};

/// Complex FFT, n in {256, 512, 1024, 2048}; input/output are 2n words of
/// interleaved re,im in 16.15, natural order.
struct CfftJob {
  unsigned n = 0;
  SharedBuffer input;  ///< 2n interleaved words
};

/// One runtime request.
struct Job {
  std::variant<FirJob, CfftJob> work;
  std::string tag;  ///< caller label, echoed into the result
};

/// Completed-job report.
struct JobResult {
  std::vector<std::int32_t> output;  ///< kernel output words
  soc::Platform::Snapshot cost;      ///< per-job cycle/energy delta
  unsigned device = 0;               ///< device the job ran on
  std::uint64_t seq = 0;             ///< global submission index
  unsigned launches = 0;             ///< kernel launches issued
  std::string tag;
};

/// Future side of a submitted job. get() blocks for completion and rethrows
/// any error the job raised on its worker.
class JobHandle {
 public:
  JobHandle() = default;
  explicit JobHandle(std::future<JobResult> future)
      : future_(std::move(future)) {}

  bool valid() const { return future_.valid(); }
  void wait() const { future_.wait(); }
  template <class Rep, class Period>
  std::future_status wait_for(
      const std::chrono::duration<Rep, Period>& d) const {
    return future_.wait_for(d);
  }
  JobResult get() { return future_.get(); }

 private:
  std::future<JobResult> future_;
};

} // namespace vwr2a::runtime
