#pragma once
// Job descriptions and results for the multi-device runtime. A Job is a
// self-contained request (kernel family, problem size, input data); the
// pool copies nothing heavy because inputs are shared immutable buffers --
// batched submissions of the same signal or the same filter taps alias one
// allocation across all jobs and devices.
//
// The catalog covers every kernel family of the reproduction (see README's
// job-catalog table): FIR-11, complex FFT, real FFT, inverse FFT, the
// scalar reductions (min/max/mean/energy), min/max delineation, and the
// whole MBioTracker application window. Every variant is pinned to its
// dsp::reference golden model by tests/test_runtime_jobs.cpp before it is
// allowed in a fleet.
//
// Results carry the per-job simulated cost as a soc::Platform::Snapshot
// delta, so callers get the same cycle/energy separation (CPU / VWR2A /
// accelerator) as a standalone run. Per-job deltas are bit- and cycle-
// deterministic: a job's cost depends only on the job stream of the device
// it is pinned to, never on worker scheduling (see pool.hpp).

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "app/mbiotracker.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "soc/platform.hpp"

namespace vwr2a::runtime {

/// Shared immutable sample buffer (16.15 or coefficient fixed point).
using SharedBuffer = std::shared_ptr<const std::vector<std::int32_t>>;

/// Convenience: wraps a vector into a shared immutable buffer.
inline SharedBuffer make_buffer(std::vector<std::int32_t> data) {
  return std::make_shared<const std::vector<std::int32_t>>(std::move(data));
}

/// FIR-11 filtering of n samples (16.15) with 11 coefficient-format taps.
struct FirJob {
  unsigned n = 0;
  SharedBuffer taps;   ///< kernels::kFirTaps coefficients
  SharedBuffer input;  ///< n samples
};

/// Complex FFT, n in {256, 512, 1024, 2048}; input/output are 2n words of
/// interleaved re,im in 16.15, natural order.
struct CfftJob {
  unsigned n = 0;
  SharedBuffer input;  ///< 2n interleaved words
};

/// Real FFT, n in {512, 1024, 2048}: n real samples (16.15) in, n/2+1
/// complex bins out (n+2 interleaved words, natural order). Matches
/// dsp::rfft_fx bit-for-bit.
struct RfftJob {
  unsigned n = 0;
  SharedBuffer input;  ///< n real samples
};

/// Inverse complex FFT, n in {256, 512, 1024}; input/output are 2n words of
/// interleaved re,im in 16.15, natural order. Matches dsp::pease_ifft_fx.
struct IfftJob {
  unsigned n = 0;
  SharedBuffer input;  ///< 2n interleaved words
};

/// Scalar reduction flavour of a ReduceJob.
enum class ReduceOp : std::uint8_t {
  kMin = 0,  ///< minimum element (host-driven bisection over count_le)
  kMax,      ///< maximum element (same bisection)
  kMean,     ///< truncating integer mean (sum kernel + host divide)
  kEnergy,   ///< 32-bit wrap sum of fixed-point squares (sum-of-squares kernel)
};

/// Scalar reduction over n samples, n a multiple of 128 (whole SPM rows),
/// n <= 4096. Values must lie in the 18-bit signal range [-2^17, 2^17)
/// (any 16.15 signal in (-2, 2) qualifies); min/max resolve it by
/// bisection. Output is one word.
struct ReduceJob {
  ReduceOp op = ReduceOp::kMin;
  unsigned n = 0;
  SharedBuffer input;  ///< n samples
};

/// Threshold-hysteresis min/max delineation of n samples (16.15), n a
/// multiple of 128, n <= 2048. Output is one record per detected extremum,
/// encoded (index << 1) | is_max in submission order -- the kernel's native
/// record format. At most kernels::kMaxExtrema records fit one run; inputs
/// whose hysteresis fires more often fail the job (future rethrows).
struct DelineationJob {
  unsigned n = 0;
  std::int32_t threshold = 0;  ///< hysteresis threshold (16.15)
  SharedBuffer input;          ///< n samples
};

/// FIR -> rFFT -> reduce feature pipeline over one n-sample window, n in
/// {512, 1024} (the FIR driver caps n at 1024): FIR-11 preprocessing of the
/// window, the energy (32-bit wrap sum of fixed-point squares, matching
/// dsp::energy_fx) of the filtered signal, and its real FFT. The wire-
/// friendly spectral-feature job a streaming session emits when it is not
/// running the whole MBioTracker application. Output:
///   word 0:        energy of the filtered window
///   words 1..n+2:  the n/2+1 interleaved re,im spectrum bins
struct PipelineJob {
  unsigned n = 0;
  SharedBuffer taps;   ///< kernels::kFirTaps coefficients
  SharedBuffer input;  ///< holds samples [offset, offset + n)
  /// First sample within `input`: streaming sessions pass windows as views
  /// into a shared staging segment (overlap staged once per segment, not
  /// copied per window); plain callers leave it 0 with an exact-size buffer.
  unsigned offset = 0;
};

/// One whole MBioTracker application window (app::kWindow = 512 samples in
/// 16.15, natural units in (-1, 1)) run end-to-end on the selected target:
/// FIR preprocessing, delineation, feature extraction, SVM class. Output:
///   word 0: SVM class (+1 / -1)
///   word 1: detected extrema count
///   words 2..7: the six features, quantized to 16.15
struct BioTrackerJob {
  app::Target target = app::Target::kCpuVwr2a;
  SharedBuffer input;  ///< holds app::kWindow samples at `offset`
  unsigned offset = 0; ///< first sample within `input` (see PipelineJob)
};

/// One runtime request. `pin` selects the scheduling policy: -1 (default)
/// lets the pool place the job on device `seq % devices`; 0..devices-1
/// forces the job onto one device -- how an ablation sweep routes each
/// variant's jobs to the device built with that soc::ArchConfig.
struct Job {
  std::variant<FirJob, CfftJob, RfftJob, IfftJob, ReduceJob, DelineationJob,
               PipelineJob, BioTrackerJob>
      work;
  std::string tag;  ///< caller label, echoed into the result
  int pin = -1;     ///< pin_to_device: fixed device index, or -1 for round-robin
  /// Observability correlation id (obs::window_id for stream windows,
  /// 0 = untraced). Carried through placement, queueing and Device::run so
  /// the flight recorder can chain one window's spans across threads.
  /// Never consulted by scheduling or execution.
  std::uint64_t trace_id = 0;
};

/// Completed-job report.
struct JobResult {
  /// Per-stage host/simulated timing of the job's life in the pool,
  /// stamped only while obs::spans_enabled() (all-zero otherwise). The
  /// gateway folds it into the protocol-v6 WINDOW_RESULT span breakdown.
  /// Observability only: never consulted by scheduling or execution.
  struct Timing {
    std::uint64_t enq_ns = 0;        ///< host ns at pool submission
    std::uint64_t run_begin_ns = 0;  ///< host ns when Device::run started
    std::uint64_t run_end_ns = 0;    ///< host ns when Device::run returned
    std::uint64_t place_cycles = 0;  ///< estimated device clock at placement
    std::uint64_t sim_begin = 0;     ///< device-local cycle at run begin
    bool stamped() const { return run_end_ns != 0; }
  };

  std::vector<std::int32_t> output;  ///< kernel output words
  soc::Platform::Snapshot cost;      ///< per-job cycle/energy delta
  unsigned device = 0;               ///< device the job ran on
  std::uint64_t seq = 0;             ///< global submission index
  unsigned launches = 0;             ///< kernel launches issued
  std::string tag;
  Timing timing;                     ///< spans-gated, see above
};

/// Future side of a submitted job. get() blocks for completion and rethrows
/// any error the job raised on its worker.
class JobHandle {
 public:
  JobHandle() = default;
  explicit JobHandle(std::future<JobResult> future)
      : future_(std::move(future)) {}

  bool valid() const { return future_.valid(); }
  void wait() const { future_.wait(); }
  template <class Rep, class Period>
  std::future_status wait_for(
      const std::chrono::duration<Rep, Period>& d) const {
    return future_.wait_for(d);
  }

  /// Blocks for the result (one-shot). Throws HostError -- instead of the
  /// bare std::future_error the underlying future would raise -- when the
  /// handle never held a job or was already consumed.
  JobResult get() {
    if (!future_.valid()) {
      throw HostError(
          "JobHandle: get() on an invalid handle (default-constructed, "
          "moved-from, or result already retrieved)");
    }
    return future_.get();
  }

 private:
  std::future<JobResult> future_;
};

} // namespace vwr2a::runtime
