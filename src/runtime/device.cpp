#include "runtime/device.hpp"

#include <span>

#include "common/status.hpp"

namespace vwr2a::runtime {

Device::Device(unsigned id, isa::ImageCache& cache)
    : id_(id),
      host_(platform_.vwr2a(), platform_.sram(), &platform_.cpu()),
      fir_(host_, &cache),
      fft_(host_, &cache),
      data_base_(kFftTableBase + kernels::FftKernels::table_words()) {
  fir_.prepare(kFirScratchBase);
  fft_.prepare(kFftTableBase);
}

JobResult Device::run(const Job& job, std::uint64_t seq) {
  const soc::Platform::Snapshot before = platform_.snapshot();
  JobResult r = std::visit(
      [this](const auto& w) -> JobResult {
        using T = std::decay_t<decltype(w)>;
        if constexpr (std::is_same_v<T, FirJob>) return run_fir(w);
        else return run_cfft(w);
      },
      job.work);
  r.cost = soc::Platform::delta(before, platform_.snapshot());
  r.device = id_;
  r.seq = seq;
  r.tag = job.tag;
  ++jobs_;
  return r;
}

JobResult Device::run_fir(const FirJob& job) {
  if (job.taps == nullptr || job.input == nullptr) {
    throw HostError("Device: FIR job with null buffers");
  }
  if (job.input->size() != job.n) {
    throw HostError("Device: FIR job input size != n");
  }
  const unsigned in = data_base_;
  const unsigned out = data_base_ + job.n;
  host_.to_sram(in, *job.input);
  JobResult r;
  const kernels::FirRunStats stats = fir_.fir11(job.n, *job.taps, in, out);
  r.launches = stats.launches;
  r.output = host_.from_sram(out, job.n);
  return r;
}

JobResult Device::run_cfft(const CfftJob& job) {
  if (job.input == nullptr) throw HostError("Device: FFT job with null input");
  if (job.input->size() != 2ull * job.n) {
    throw HostError("Device: FFT job input size != 2n");
  }
  const unsigned in = data_base_;
  const unsigned out = in + 2 * job.n;
  const unsigned scratch = out + 2 * job.n;  // used only for n == 2048
  host_.to_sram(in, *job.input);
  JobResult r;
  const kernels::FftRunStats stats = fft_.cfft(job.n, in, out, scratch);
  r.launches = stats.launches;
  r.output = host_.from_sram(out, 2 * job.n);
  return r;
}

} // namespace vwr2a::runtime
