#include "runtime/device.hpp"

#include <algorithm>
#include <span>

#include "common/fixed_point.hpp"
#include "common/status.hpp"
#include "dma/dma.hpp"

namespace vwr2a::runtime {

namespace {

/// 18-bit signal range the reduction bisection resolves (reduce.hpp).
constexpr std::int32_t kReduceLo = -(1 << 17);
constexpr std::int32_t kReduceHi = (1 << 17) - 1;

} // namespace

Device::Device(unsigned id, isa::ImageCache& cache, const soc::ArchConfig& arch)
    : id_(id),
      platform_(arch),
      cache_(&cache),
      host_(platform_.vwr2a(), platform_.sram(), &platform_.cpu(),
            arch.name() + "/"),
      fir_(host_, &cache),
      fft_(host_, &cache),
      reduce_(host_, &cache),
      delin_(host_, &cache),
      data_base_(kFftTableBase + kernels::FftKernels::table_words()) {
  fir_.prepare(kFirScratchBase);
  fft_.prepare(kFftTableBase);
}

JobResult Device::run(const Job& job, std::uint64_t seq) {
  const soc::Platform::Snapshot before = platform_.snapshot();
  JobResult r = std::visit(
      [this](const auto& w) -> JobResult {
        using T = std::decay_t<decltype(w)>;
        if constexpr (std::is_same_v<T, FirJob>) return run_fir(w);
        else if constexpr (std::is_same_v<T, CfftJob>) return run_cfft(w);
        else if constexpr (std::is_same_v<T, RfftJob>) return run_rfft(w);
        else if constexpr (std::is_same_v<T, IfftJob>) return run_ifft(w);
        else if constexpr (std::is_same_v<T, ReduceJob>) return run_reduce(w);
        else if constexpr (std::is_same_v<T, DelineationJob>) {
          return run_delineation(w);
        } else {
          return run_bio(w);
        }
      },
      job.work);
  r.cost = soc::Platform::delta(before, platform_.snapshot());
  r.device = id_;
  r.seq = seq;
  r.tag = job.tag;
  ++jobs_;
  return r;
}

void Device::stage_rows(const std::vector<std::int32_t>& data) {
  host_.to_sram(data_base_, data);
  host_.dma({dma::Dir::kSysToSpm, data_base_, 0,
             static_cast<std::uint32_t>(data.size()), 1, 1});
}

JobResult Device::run_fir(const FirJob& job) {
  if (job.taps == nullptr || job.input == nullptr) {
    throw HostError("Device: FIR job with null buffers");
  }
  if (job.input->size() != job.n) {
    throw HostError("Device: FIR job input size != n");
  }
  const unsigned in = data_base_;
  const unsigned out = data_base_ + job.n;
  host_.to_sram(in, *job.input);
  JobResult r;
  const kernels::FirRunStats stats = fir_.fir11(job.n, *job.taps, in, out);
  r.launches = stats.launches;
  r.output = host_.from_sram(out, job.n);
  return r;
}

JobResult Device::run_cfft(const CfftJob& job) {
  if (job.input == nullptr) throw HostError("Device: FFT job with null input");
  if (job.input->size() != 2ull * job.n) {
    throw HostError("Device: FFT job input size != 2n");
  }
  const unsigned in = data_base_;
  const unsigned out = in + 2 * job.n;
  const unsigned scratch = out + 2 * job.n;  // used only for n == 2048
  host_.to_sram(in, *job.input);
  JobResult r;
  const kernels::FftRunStats stats = fft_.cfft(job.n, in, out, scratch);
  r.launches = stats.launches;
  r.output = host_.from_sram(out, 2 * job.n);
  return r;
}

JobResult Device::run_rfft(const RfftJob& job) {
  if (job.input == nullptr) throw HostError("Device: rFFT job with null input");
  if (job.input->size() != job.n) {
    throw HostError("Device: rFFT job input size != n");
  }
  const unsigned in = data_base_;
  const unsigned out = in + job.n;
  const unsigned scratch = out + job.n + 2;
  host_.to_sram(in, *job.input);
  JobResult r;
  const kernels::FftRunStats stats = fft_.rfft(job.n, in, out, scratch);
  r.launches = stats.launches;
  r.output = host_.from_sram(out, job.n + 2);  // n/2+1 interleaved bins
  return r;
}

JobResult Device::run_ifft(const IfftJob& job) {
  if (job.input == nullptr) throw HostError("Device: iFFT job with null input");
  if (job.input->size() != 2ull * job.n) {
    throw HostError("Device: iFFT job input size != 2n");
  }
  const unsigned in = data_base_;
  const unsigned out = in + 2 * job.n;
  host_.to_sram(in, *job.input);
  JobResult r;
  const kernels::FftRunStats stats = fft_.cifft(job.n, in, out);
  r.launches = stats.launches;
  r.output = host_.from_sram(out, 2 * job.n);
  return r;
}

JobResult Device::run_reduce(const ReduceJob& job) {
  if (job.input == nullptr) {
    throw HostError("Device: reduce job with null input");
  }
  if (job.n == 0 || job.n % arch::kVwrWords != 0 || job.n > 4096) {
    throw HostError("Device: reduce job n must be a multiple of 128, <= 4096");
  }
  if (job.input->size() != job.n) {
    throw HostError("Device: reduce job input size != n");
  }
  for (std::int32_t v : *job.input) {
    if (v < kReduceLo || v > kReduceHi) {
      throw HostError("Device: reduce job value outside the 18-bit range");
    }
  }
  const unsigned nrows = job.n / arch::kVwrWords;
  stage_rows(*job.input);
  JobResult r;
  std::int32_t value = 0;
  switch (job.op) {
    case ReduceOp::kMin:
      value = reduce_.min_rows(0, nrows);
      r.launches = kernels::kBisectLaunches;
      break;
    case ReduceOp::kMax:
      value = reduce_.max_rows(0, nrows);
      r.launches = kernels::kBisectLaunches;
      break;
    case ReduceOp::kMean:
      // 32-bit wrap sum on the array (exact: |sum| < 2^29 for in-range
      // inputs), truncating divide on the host -- dsp::mean_i32 semantics.
      value = reduce_.sum_rows(0, nrows) / static_cast<std::int32_t>(job.n);
      r.launches = 1;
      break;
    case ReduceOp::kEnergy:
      value = reduce_.sumsq_rows(0, nrows);
      r.launches = 1;
      break;
  }
  r.output = {value};
  return r;
}

JobResult Device::run_delineation(const DelineationJob& job) {
  if (job.input == nullptr) {
    throw HostError("Device: delineation job with null input");
  }
  if (job.n == 0 || job.n % arch::kVwrWords != 0 || job.n > 2048) {
    throw HostError(
        "Device: delineation job n must be a multiple of 128, <= 2048");
  }
  if (job.input->size() != job.n) {
    throw HostError("Device: delineation job input size != n");
  }
  stage_rows(*job.input);
  const unsigned scratch = data_base_ + job.n;
  const auto ext = delin_.run(job.n, 0, job.threshold, (*job.input)[0], scratch);
  JobResult r;
  r.launches = 2;  // candidate-flags pass + serial scan
  r.output.reserve(ext.size());
  for (const dsp::Extremum& e : ext) {
    r.output.push_back(static_cast<std::int32_t>((e.index << 1) |
                                                 (e.is_max ? 1u : 0u)));
  }
  return r;
}

JobResult Device::run_bio(const BioTrackerJob& job) {
  if (job.input == nullptr) {
    throw HostError("Device: bio job with null input");
  }
  if (job.input->size() != app::kWindow) {
    throw HostError("Device: bio job window must be app::kWindow samples");
  }
  if (bio_ == nullptr) {
    bio_ = std::make_unique<app::MBioTracker>(platform_, cache_,
                                              platform_.arch().name() + "/");
  }
  // Re-init every window: the resident SPM state (band-mask rows) may have
  // been clobbered by interleaved kernel jobs, so each bio job pays the
  // same deterministic staging cost and is self-contained.
  const std::uint64_t launches0 = platform_.vwr2a().launches();
  bio_->init(kBioBase);
  std::vector<double> x(app::kWindow);
  for (unsigned i = 0; i < app::kWindow; ++i) {
    x[i] = fx::from_q16_15((*job.input)[i]);
  }
  const app::AppResult a = bio_->run(job.target, x);
  JobResult r;
  r.launches =
      static_cast<unsigned>(platform_.vwr2a().launches() - launches0);
  r.output.reserve(8);
  r.output.push_back(a.svm_class);
  r.output.push_back(static_cast<std::int32_t>(a.extrema));
  for (double f : a.feat.as_vector()) r.output.push_back(fx::to_q16_15(f));
  return r;
}

} // namespace vwr2a::runtime
