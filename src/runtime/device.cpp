#include "runtime/device.hpp"

#include <algorithm>
#include <array>
#include <span>

#include "common/fixed_point.hpp"
#include "common/status.hpp"
#include "dma/dma.hpp"
#include "obs/trace.hpp"
#include "runtime/checkpoint.hpp"

namespace vwr2a::runtime {

namespace {

/// 18-bit signal range the reduction bisection resolves (reduce.hpp).
constexpr std::int32_t kReduceLo = -(1 << 17);
constexpr std::int32_t kReduceHi = (1 << 17) - 1;

} // namespace

Device::Device(unsigned id, isa::ImageCache& cache, const soc::ArchConfig& arch,
               const Options& opts)
    : id_(id),
      platform_(arch),
      cache_(&cache),
      host_(platform_.vwr2a(), platform_.sram(), &platform_.cpu(),
            arch.name() + "/"),
      fir_(host_, &cache),
      fft_(host_, &cache),
      reduce_(host_, &cache),
      delin_(host_, &cache),
      data_base_(kFftTableBase + kernels::FftKernels::table_words()),
      opts_(opts) {
  // Share one compiled-trace cache fleet-wide, like the image cache.
  platform_.vwr2a().set_trace_cache(&cache.traces());
  fir_.prepare(kFirScratchBase);
  fft_.prepare(kFftTableBase);
}

JobResult Device::run(const Job& job, std::uint64_t seq) {
  const soc::Platform::Snapshot before = platform_.snapshot();
  // device.run span: a1 = device id, a2 = stagings this job, a3 = engine
  // (1 = trace-cache, 0 = interpreter); sim timestamps are the device's
  // local clock before the job and the job's cycle delta.
  obs::Span span(
      "device.run", job.trace_id, id_, 0,
      platform_.arch().exec_mode == cgra::ExecMode::kTraceCache ? 1 : 0);
  const std::uint64_t stagings0 = stagings_;
  JobResult r = std::visit(
      [this](const auto& w) -> JobResult {
        using T = std::decay_t<decltype(w)>;
        if constexpr (std::is_same_v<T, FirJob>) return run_fir(w);
        else if constexpr (std::is_same_v<T, CfftJob>) return run_cfft(w);
        else if constexpr (std::is_same_v<T, RfftJob>) return run_rfft(w);
        else if constexpr (std::is_same_v<T, IfftJob>) return run_ifft(w);
        else if constexpr (std::is_same_v<T, ReduceJob>) return run_reduce(w);
        else if constexpr (std::is_same_v<T, DelineationJob>) {
          return run_delineation(w);
        } else if constexpr (std::is_same_v<T, PipelineJob>) {
          return run_pipeline(w);
        } else {
          return run_bio(w);
        }
      },
      job.work);
  r.cost = soc::Platform::delta(before, platform_.snapshot());
  r.device = id_;
  r.seq = seq;
  r.tag = job.tag;
  ++jobs_;
  if (span.active()) {
    span.set_sim(before.total_cycles(), r.cost.total_cycles());
    span.set_args(
        id_, stagings_ - stagings0,
        platform_.arch().exec_mode == cgra::ExecMode::kTraceCache ? 1 : 0);
  }
  return r;
}

void Device::check_sys_fit(unsigned end_word) const {
  if (end_word > kBioBase) {
    throw HostError(
        "Device: job data region would overlap the resident app image at "
        "kBioBase");
  }
}

void Device::stage_rows(const SharedBuffer& buf) {
  const std::vector<std::int32_t>& data = *buf;
  check_sys_fit(data_base_ + static_cast<unsigned>(data.size()));
  const unsigned nrows =
      static_cast<unsigned>(data.size()) / arch::kVwrWords;
  mem::Spm& spm = platform_.vwr2a().spm();
  // Cross-job input dedup: the same shared buffer staged into rows whose
  // write stamps are unchanged is still resident -- skip the copy and DMA.
  // (Holding the shared_ptr pins the allocation, so pointer identity cannot
  // be recycled under us.)
  if (opts_.dedup && staged_buf_ == buf &&
      spm.region_version(0, nrows) == staged_version_) {
    return;
  }
  {
    obs::Span stage("device.stage", 0, id_, data.size());
    host_.to_sram(data_base_, data);
    host_.dma({dma::Dir::kSysToSpm, data_base_, 0,
               static_cast<std::uint32_t>(data.size()), 1, 1});
  }
  ++stagings_;
  staged_buf_ = buf;
  staged_version_ = spm.region_version(0, nrows);
}

unsigned Device::fir_begin(const FirJob& job, unsigned& out_word) {
  if (job.taps == nullptr || job.input == nullptr) {
    throw HostError("Device: FIR job with null buffers");
  }
  if (job.input->size() != job.n) {
    throw HostError("Device: FIR job input size != n");
  }
  const unsigned in = data_base_;
  out_word = data_base_ + job.n;
  check_sys_fit(out_word + job.n);
  host_.to_sram(in, *job.input);
  ++stagings_;
  mem::Spm& spm = platform_.vwr2a().spm();
  const bool resident = opts_.dedup && staged_taps_ == job.taps &&
                        spm.row_version(kernels::kFirTapRow) == taps_version_;
  const unsigned kid = fir_.fir11_begin(job.n, *job.taps, in, resident);
  if (!resident) {
    obs::instant("device.stage", 0, id_, job.taps->size());
    ++stagings_;
    staged_taps_ = job.taps;
    taps_version_ = spm.row_version(kernels::kFirTapRow);
  }
  return kid;
}

void Device::run_fir_group(Device* const* devs, const Job* const* jobs,
                           const std::uint64_t* seqs, std::size_t n,
                           std::vector<JobResult>& results,
                           std::vector<std::exception_ptr>& errors) {
  results.assign(n, JobResult{});
  errors.assign(n, nullptr);
  obs::Span span("device.run_group", 0, static_cast<std::uint64_t>(n));

  std::vector<soc::Platform::Snapshot> before(n);
  std::vector<unsigned> kid(n, 0);
  std::vector<unsigned> out(n, 0);
  std::vector<std::uint64_t> stg0(n, 0);
  std::vector<char> live(n, 0);

  // Phase 1: bring every lane to the launch point (validation + staging are
  // device-local and precede any launch, exactly as in the scalar path). A
  // malformed job fails only its own lane -- validation throws before the
  // device is touched.
  for (std::size_t i = 0; i < n; ++i) {
    Device& d = *devs[i];
    before[i] = d.snapshot();
    stg0[i] = d.stagings_;
    try {
      const FirJob* fj = std::get_if<FirJob>(&jobs[i]->work);
      if (fj == nullptr) throw HostError("Device: non-FIR job in a FIR group");
      kid[i] = d.fir_begin(*fj, out[i]);
      live[i] = 1;
    } catch (...) {
      errors[i] = std::current_exception();
    }
  }

  // Phase 2: launch. Lanes whose device is warm on this kernel's compiled
  // decoupled trace replay together; the rest (cold caches, interpret-mode
  // devices, attached tracers, lockstep plans) launch scalar. The batch
  // replayer re-verifies homogeneity against its lane 0 and peels any
  // divergent lane off to an exact scalar replay, so eligibility here is a
  // throughput decision, never a correctness one.
  std::vector<cgra::Vwr2a*> batch;
  std::vector<unsigned> batch_kid;
  std::vector<std::size_t> batch_lane;
  for (std::size_t i = 0; i < n; ++i) {
    if (!live[i]) continue;
    Device& d = *devs[i];
    cgra::Vwr2a& acc = d.platform_.vwr2a();
    std::array<const void*, arch::kNumColumns> key;
    if (cgra::tc::BatchReplayer::identity(acc, kid[i], key)) {
      d.host_.charge_control();  // the host cost host_.run would charge
      batch.push_back(&acc);
      batch_kid.push_back(kid[i]);
      batch_lane.push_back(i);
    } else {
      try {
        d.host_.run(kid[i]);
      } catch (...) {
        errors[i] = std::current_exception();
        live[i] = 0;
      }
    }
  }
  if (!batch.empty()) {
    try {
      cgra::tc::BatchReplayer::run(batch.data(), batch_kid.data(),
                                   batch.size());
    } catch (...) {
      // A replay fault escaping the batch (impossible for the shipped FIR
      // programs, which the identity fuzz covers; defensive): the replayer
      // finished or rolled back every lane before rethrowing, but lane
      // attribution is lost -- fail the batched lanes rather than guess.
      for (std::size_t i : batch_lane) {
        errors[i] = std::current_exception();
        live[i] = 0;
      }
    }
  }

  // Phase 3: per-lane epilogue (output DMAs, result assembly, bookkeeping),
  // device-local again.
  for (std::size_t i = 0; i < n; ++i) {
    if (!live[i]) continue;
    Device& d = *devs[i];
    try {
      const FirJob& fj = std::get<FirJob>(jobs[i]->work);
      d.fir_.fir11_finish(fj.n, out[i]);
      JobResult r;
      r.launches = 1;
      r.output = d.host_.from_sram(out[i], fj.n);
      r.cost = soc::Platform::delta(before[i], d.snapshot());
      r.device = d.id_;
      r.seq = seqs[i];
      r.tag = jobs[i]->tag;
      ++d.jobs_;
      obs::instant("device.run", jobs[i]->trace_id, d.id_,
                   r.cost.total_cycles(), d.stagings_ - stg0[i]);
      results[i] = std::move(r);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  }
}

ReplayStats Device::replay_stats() const {
  const cgra::Vwr2a& acc = platform_.vwr2a();
  ReplayStats r;
  r.traced_launches = acc.traced_launches();
  r.traced_rollbacks = acc.traced_rollbacks();
  r.batched_launches = acc.batched_launches();
  r.decoupled_cycles = acc.replayed_decoupled_cycles();
  r.lockstep_cycles = acc.replayed_lockstep_cycles();
  r.interpreted_cycles = acc.interpreted_cycles();
  r.sync_points = acc.sync_points();
  return r;
}

kernels::FirRunStats Device::run_fir11(unsigned n, const SharedBuffer& taps,
                                       unsigned sys_in, unsigned sys_out) {
  mem::Spm& spm = platform_.vwr2a().spm();
  const bool resident = opts_.dedup && staged_taps_ == taps &&
                        spm.row_version(kernels::kFirTapRow) == taps_version_;
  const kernels::FirRunStats stats =
      fir_.fir11(n, *taps, sys_in, sys_out, resident);
  if (!resident) {
    obs::instant("device.stage", 0, id_, taps->size());
    ++stagings_;
    staged_taps_ = taps;
    taps_version_ = spm.row_version(kernels::kFirTapRow);
  }
  return stats;
}

JobResult Device::run_fir(const FirJob& job) {
  if (job.taps == nullptr || job.input == nullptr) {
    throw HostError("Device: FIR job with null buffers");
  }
  if (job.input->size() != job.n) {
    throw HostError("Device: FIR job input size != n");
  }
  const unsigned in = data_base_;
  const unsigned out = data_base_ + job.n;
  check_sys_fit(out + job.n);
  host_.to_sram(in, *job.input);
  ++stagings_;
  JobResult r;
  const kernels::FirRunStats stats = run_fir11(job.n, job.taps, in, out);
  r.launches = stats.launches;
  r.output = host_.from_sram(out, job.n);
  return r;
}

JobResult Device::run_cfft(const CfftJob& job) {
  if (job.input == nullptr) throw HostError("Device: FFT job with null input");
  if (job.input->size() != 2ull * job.n) {
    throw HostError("Device: FFT job input size != 2n");
  }
  const unsigned in = data_base_;
  const unsigned out = in + 2 * job.n;
  const unsigned scratch = out + 2 * job.n;  // used only for n == 2048
  check_sys_fit(scratch + 2 * job.n);
  host_.to_sram(in, *job.input);
  ++stagings_;
  JobResult r;
  const kernels::FftRunStats stats = fft_.cfft(job.n, in, out, scratch);
  r.launches = stats.launches;
  r.output = host_.from_sram(out, 2 * job.n);
  return r;
}

JobResult Device::run_rfft(const RfftJob& job) {
  if (job.input == nullptr) throw HostError("Device: rFFT job with null input");
  if (job.input->size() != job.n) {
    throw HostError("Device: rFFT job input size != n");
  }
  const unsigned in = data_base_;
  const unsigned out = in + job.n;
  const unsigned scratch = out + job.n + 2;
  check_sys_fit(scratch + 2 * job.n);
  host_.to_sram(in, *job.input);
  ++stagings_;
  JobResult r;
  const kernels::FftRunStats stats = fft_.rfft(job.n, in, out, scratch);
  r.launches = stats.launches;
  r.output = host_.from_sram(out, job.n + 2);  // n/2+1 interleaved bins
  return r;
}

JobResult Device::run_ifft(const IfftJob& job) {
  if (job.input == nullptr) throw HostError("Device: iFFT job with null input");
  if (job.input->size() != 2ull * job.n) {
    throw HostError("Device: iFFT job input size != 2n");
  }
  const unsigned in = data_base_;
  const unsigned out = in + 2 * job.n;
  check_sys_fit(out + 2 * job.n);
  host_.to_sram(in, *job.input);
  ++stagings_;
  JobResult r;
  const kernels::FftRunStats stats = fft_.cifft(job.n, in, out);
  r.launches = stats.launches;
  r.output = host_.from_sram(out, 2 * job.n);
  return r;
}

JobResult Device::run_reduce(const ReduceJob& job) {
  if (job.input == nullptr) {
    throw HostError("Device: reduce job with null input");
  }
  if (job.n == 0 || job.n % arch::kVwrWords != 0 || job.n > 4096) {
    throw HostError("Device: reduce job n must be a multiple of 128, <= 4096");
  }
  if (job.input->size() != job.n) {
    throw HostError("Device: reduce job input size != n");
  }
  for (std::int32_t v : *job.input) {
    if (v < kReduceLo || v > kReduceHi) {
      throw HostError("Device: reduce job value outside the 18-bit range");
    }
  }
  const unsigned nrows = job.n / arch::kVwrWords;
  stage_rows(job.input);
  JobResult r;
  std::int32_t value = 0;
  switch (job.op) {
    case ReduceOp::kMin:
      value = reduce_.min_rows(0, nrows);
      r.launches = kernels::kBisectLaunches;
      break;
    case ReduceOp::kMax:
      value = reduce_.max_rows(0, nrows);
      r.launches = kernels::kBisectLaunches;
      break;
    case ReduceOp::kMean:
      // 32-bit wrap sum on the array (exact: |sum| < 2^29 for in-range
      // inputs), truncating divide on the host -- dsp::mean_i32 semantics.
      value = reduce_.sum_rows(0, nrows) / static_cast<std::int32_t>(job.n);
      r.launches = 1;
      break;
    case ReduceOp::kEnergy:
      value = reduce_.sumsq_rows(0, nrows);
      r.launches = 1;
      break;
  }
  r.output = {value};
  return r;
}

JobResult Device::run_delineation(const DelineationJob& job) {
  if (job.input == nullptr) {
    throw HostError("Device: delineation job with null input");
  }
  if (job.n == 0 || job.n % arch::kVwrWords != 0 || job.n > 2048) {
    throw HostError(
        "Device: delineation job n must be a multiple of 128, <= 2048");
  }
  if (job.input->size() != job.n) {
    throw HostError("Device: delineation job input size != n");
  }
  stage_rows(job.input);
  const unsigned scratch = data_base_ + job.n;
  check_sys_fit(scratch + 16);
  const auto ext = delin_.run(job.n, 0, job.threshold, (*job.input)[0], scratch);
  JobResult r;
  r.launches = 2;  // candidate-flags pass + serial scan
  r.output.reserve(ext.size());
  for (const dsp::Extremum& e : ext) {
    r.output.push_back(static_cast<std::int32_t>((e.index << 1) |
                                                 (e.is_max ? 1u : 0u)));
  }
  return r;
}

JobResult Device::run_pipeline(const PipelineJob& job) {
  if (job.taps == nullptr || job.input == nullptr) {
    throw HostError("Device: pipeline job with null buffers");
  }
  if (job.n != 512 && job.n != 1024) {
    throw HostError("Device: pipeline job n must be 512 or 1024");
  }
  if (job.input->size() < static_cast<std::size_t>(job.offset) + job.n) {
    throw HostError("Device: pipeline job input does not cover offset + n");
  }
  const unsigned in = data_base_;
  const unsigned filt = in + job.n;
  const unsigned spec = filt + job.n;
  const unsigned scratch = spec + job.n + 2;
  check_sys_fit(scratch + 2 * job.n);
  {
    obs::Span stage("device.stage", 0, id_, job.n);
    host_.to_sram(in, std::span<const std::int32_t>(*job.input)
                          .subspan(job.offset, job.n));
  }
  ++stagings_;
  JobResult r;
  // FIR preprocessing (tap staging dedup'd across pipeline/FIR jobs).
  const kernels::FirRunStats fs = run_fir11(job.n, job.taps, in, filt);
  r.launches = fs.launches;
  // Energy of the filtered window, before the rFFT clobbers the SPM planes.
  const unsigned nrows = job.n / arch::kVwrWords;
  host_.dma({dma::Dir::kSysToSpm, filt,  0,
             static_cast<std::uint32_t>(job.n), 1, 1});
  ++stagings_;
  const std::int32_t energy = reduce_.sumsq_rows(0, nrows);
  r.launches += 1;
  // Real FFT of the filtered window.
  const kernels::FftRunStats ffts = fft_.rfft(job.n, filt, spec, scratch);
  r.launches += ffts.launches;
  r.output.reserve(job.n + 3);
  r.output.push_back(energy);
  const auto bins = host_.from_sram(spec, job.n + 2);
  r.output.insert(r.output.end(), bins.begin(), bins.end());
  return r;
}

std::vector<std::uint8_t> Device::checkpoint() const {
  if (!has_resident_bio()) return {};
  const mem::Spm& spm = platform_.vwr2a().spm();
  DeviceCheckpoint c;
  c.arch = platform_.arch().name();
  c.sys_base = kBioBase;
  c.bio_resident =
      spm.region_version(app::kMaskRowFirst, app::kMaskRowCount) ==
      bio_rows_version_;
  c.write_gen = spm.write_gen();
  const unsigned words = app::MBioTracker::footprint_words();
  c.sram.reserve(words);
  for (unsigned i = 0; i < words; ++i) {
    c.sram.push_back(platform_.sram().peek(kBioBase + i));
  }
  c.spm_rows.reserve(app::kMaskRowCount);
  for (unsigned r = 0; r < app::kMaskRowCount; ++r) {
    SpmRowImage row;
    row.row = app::kMaskRowFirst + r;
    row.stamp = spm.row_version(row.row);
    const Word* data = spm.trace_row(row.row);
    std::copy_n(data, arch::kVwrWords, row.data.begin());
    c.spm_rows.push_back(row);
  }
  return encode_checkpoint(c);
}

Device::RestoreOutcome Device::restore(const std::vector<std::uint8_t>& blob,
                                       std::string* why) {
  DeviceCheckpoint c;
  if (!decode_checkpoint(blob, &c, why)) return RestoreOutcome::kRejected;
  if (c.sys_base != kBioBase ||
      c.sram.size() != app::MBioTracker::footprint_words()) {
    if (why != nullptr) *why = "checkpoint: layout mismatch";
    return RestoreOutcome::kRejected;
  }
  if (has_resident_bio()) {
    // The resident image holds session-independent constants: whatever this
    // device already staged is bit-identical to the checkpointed one.
    return RestoreOutcome::kSkippedResident;
  }
  // Out-of-band migration: pokes are simulator bookkeeping (no cycles, no
  // energy), but SPM pokes still advance this device's own write stamps
  // monotonically -- a restore can never rewind the residency clock.
  for (std::size_t i = 0; i < c.sram.size(); ++i) {
    platform_.sram().poke(kBioBase + static_cast<unsigned>(i), c.sram[i]);
  }
  mem::Spm& spm = platform_.vwr2a().spm();
  for (const SpmRowImage& row : c.spm_rows) {
    for (unsigned i = 0; i < arch::kVwrWords; ++i) {
      spm.poke(row.row * arch::kVwrWords + i, row.data[i]);
    }
  }
  if (bio_ == nullptr) {
    bio_ = std::make_unique<app::MBioTracker>(platform_, cache_,
                                              platform_.arch().name() + "/");
  }
  bio_->adopt(kBioBase);
  bio_inited_ = true;
  // Only an image whose mask rows were intact at capture counts as resident
  // here; otherwise the stamp 0 can never match and the next bio window
  // re-stages the masks exactly as the dead device would have.
  bio_rows_version_ =
      c.bio_resident
          ? spm.region_version(app::kMaskRowFirst, app::kMaskRowCount)
          : 0;
  return RestoreOutcome::kApplied;
}

JobResult Device::run_bio(const BioTrackerJob& job) {
  if (job.input == nullptr) {
    throw HostError("Device: bio job with null input");
  }
  if (job.input->size() <
      static_cast<std::size_t>(job.offset) + app::kWindow) {
    throw HostError("Device: bio job input must cover app::kWindow samples");
  }
  if (bio_ == nullptr) {
    bio_ = std::make_unique<app::MBioTracker>(platform_, cache_,
                                              platform_.arch().name() + "/");
  }
  // SPM residency: the resident image's only clobberable state is the
  // band-mask rows; when their write stamps are unchanged since the last
  // init(), the image is intact and the per-window re-init can be skipped.
  // With residency off (or after a clobbering job) every window pays the
  // same deterministic staging cost and is self-contained.
  mem::Spm& spm = platform_.vwr2a().spm();
  const bool resident =
      opts_.residency && bio_inited_ &&
      spm.region_version(app::kMaskRowFirst, app::kMaskRowCount) ==
          bio_rows_version_;
  const std::uint64_t launches0 = platform_.vwr2a().launches();
  if (!resident) {
    obs::Span stage("device.stage", 0, id_, app::kWindow);
    bio_->init(kBioBase);
    ++stagings_;
    bio_inited_ = true;
    bio_rows_version_ =
        spm.region_version(app::kMaskRowFirst, app::kMaskRowCount);
  }
  std::vector<double> x(app::kWindow);
  for (unsigned i = 0; i < app::kWindow; ++i) {
    x[i] = fx::from_q16_15((*job.input)[job.offset + i]);
  }
  const app::AppResult a = bio_->run(job.target, x);
  JobResult r;
  r.launches =
      static_cast<unsigned>(platform_.vwr2a().launches() - launches0);
  r.output.reserve(8);
  r.output.push_back(a.svm_class);
  r.output.push_back(static_cast<std::int32_t>(a.extrema));
  for (double f : a.feat.as_vector()) r.output.push_back(fx::to_q16_15(f));
  return r;
}

} // namespace vwr2a::runtime
