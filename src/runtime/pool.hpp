#pragma once
// Asynchronous multi-device runtime: N simulated VWR2A platforms behind one
// job queue, in the spirit of many-engine designs (Versa's shared dispatch
// over many cores, Ara's clean runtime/lane split) -- scale comes from more
// devices, not from touching the device model.
//
// Scheduling & determinism. Jobs are placed on devices statically at
// submission time, under one policy (Config::schedule):
//   * kRoundRobin (default): global submission index `seq` runs on device
//     `seq % devices` -- the original blind placement;
//   * kShortestLocalClock: the job goes to the device that would *finish*
//     it first under the estimated local clocks -- argmin over devices of
//     (estimated clock + job estimate scaled by the device's architecture
//     speed factor), ties broken by the lowest device index. The clock
//     estimates accumulate deterministic per-job cost estimates of
//     everything already placed (plus stream-session reservations via
//     place_load), so the policy is load- and heterogeneity-aware, yet
//     still a pure function of the submission order.
// An explicit `pin` (pin_to_device) overrides either policy and forces the
// job onto that device (its estimate still counts toward the device's
// clock). Each device keeps a FIFO of its pending jobs and is driven by at
// most one worker at a time, so the job stream a device sees -- and
// therefore every per-job cycle and energy delta -- depends only on the
// submission order, the device count, the policy and the pins, never on the
// number of workers or on thread scheduling. Workers are interchangeable
// executors: with 1 worker the fleet is simulated sequentially, with W
// workers up to W devices advance concurrently, and the results are bit-
// and cycle-identical.
//
// Heterogeneity. Config::device_arch gives each device its own
// soc::ArchConfig (VWR count / SIMD width, the bench/ablation_* knobs), so
// one pool can host a whole ablation sweep: pin each variant's jobs to the
// device built with that variant and read per-device stats from
// FleetStats. Kernel-image cache keys are namespaced per variant, so
// incompatible device configs never share images while identical ones
// still assemble each kernel once fleet-wide.
//
// Batched dispatch. submit_batch() enqueues a whole batch under one lock
// round-trip, and a worker that claims a device drains up to
// Config::max_batch queued jobs before releasing it, amortizing queue
// synchronization across jobs. Simulated DMA programming is amortized the
// same way the hardware would: consecutive jobs of one device reuse the
// resident kernel configuration (no reload) and the shared image cache
// assembles each kernel once fleet-wide.

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <variant>
#include <vector>

#include "common/types.hpp"
#include "isa/image_cache.hpp"
#include "runtime/device.hpp"
#include "runtime/job.hpp"

namespace vwr2a::artifact {
class Store;
}

namespace vwr2a::runtime {

/// Device-placement policy of a pool (see the header comment).
enum class Schedule : std::uint8_t {
  kRoundRobin = 0,       ///< seq % devices (blind, the original policy)
  kShortestLocalClock,   ///< least estimated device-local clock, tie: lowest id
};

/// Number of Job::work alternatives (cost-estimator families).
inline constexpr unsigned kJobFamilies =
    std::variant_size_v<decltype(Job::work)>;

/// One scripted fault (Config::faults): device `device` fail-stops once the
/// fleet has completed `kill_after_jobs` jobs, and -- when
/// `revive_after_jobs` is non-zero -- rejoins once the fleet has completed
/// that many. Faults land at batch boundaries (jobs are atomic; see
/// docs/operations.md for the fail-stop model). kill_device()/
/// revive_device() are the unscripted equivalents for chaos drivers.
struct FaultEvent {
  unsigned device = 0;
  std::uint64_t kill_after_jobs = 0;
  std::uint64_t revive_after_jobs = 0;  ///< 0: the device stays dead
};

/// A scripted fault-injection plan.
struct FaultPlan {
  std::vector<FaultEvent> events;
  bool empty() const { return events.empty(); }
};

/// Fleet-wide aggregate over all devices of a pool.
struct FleetStats {
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  /// Max device-local elapsed time -- host-control CPU cycles plus
  /// accelerator engine cycles, the serialized-phase latency semantics of
  /// soc::Platform::Snapshot -- i.e. the simulated wall clock of the fleet
  /// (devices run in parallel in simulated time).
  Cycle fleet_makespan = 0;
  /// Sum of device-local elapsed times: total simulated device occupancy.
  Cycle total_device_cycles = 0;
  /// Fleet energy (all devices, all meters), in pJ / µJ.
  double total_pj = 0.0;
  /// Staging events fleet-wide (regions copied + DMA'd: job inputs, FIR
  /// taps, resident app images). Residency tracking and cross-job dedup
  /// show up as this number shrinking for the same job stream.
  std::uint64_t stagings = 0;
  std::vector<Cycle> device_cycles;  ///< per-device local time
  std::vector<double> device_pj;     ///< per-device energy
  std::vector<std::uint64_t> device_jobs;      ///< per-device jobs run
  std::vector<std::uint64_t> device_stagings;  ///< per-device staging events
  std::vector<soc::ArchConfig> device_arch;    ///< per-device variant
  isa::ImageCache::Stats image_cache;
  cgra::TraceCache::Stats trace_cache;
  /// Artifact hydration picture (see src/artifact/): whether a prebuilt
  /// artifact is attached to this fleet's caches, and what it has served.
  bool artifact_attached = false;
  std::uint64_t artifact_images = 0;   ///< images hydrated from the artifact
  std::uint64_t artifact_traces = 0;   ///< traces hydrated from the artifact
  std::uint64_t artifact_misses = 0;   ///< lookups the artifact did not hold
  std::uint64_t artifact_rejects = 0;  ///< entries rejected by payload parse
  /// Online-estimator correction factor per job family (1.0 = the analytic
  /// prior is spot on; see DevicePool::estimate). Indexed by Job::work
  /// alternative.
  std::array<double, kJobFamilies> family_factor{};
  // Fault-and-recovery picture (docs/operations.md). Counters are
  // pool-lifetime cumulative; device_dead is the current health bitmap.
  std::uint64_t devices_failed = 0;   ///< kill events observed
  std::uint64_t devices_revived = 0;  ///< revive events observed
  std::uint64_t devices_dead = 0;     ///< currently dead devices
  std::uint64_t jobs_rescued = 0;     ///< queued jobs re-placed off the dead
  std::uint64_t checkpoints_taken = 0;     ///< resident state serialized
  std::uint64_t checkpoints_restored = 0;  ///< resident state adopted
  std::vector<std::uint8_t> device_dead;   ///< per-device health (1 = dead)
  // Replay-engine picture (src/cgra/tracecache.hpp): how the fleet's
  // accelerator work actually executed, as fleet totals. The cycle
  // counters are column-cycles per tier -- work stuck on the slow tiers
  // (lockstep, interpreter) shows up here long before a profiler would.
  std::uint64_t traced_launches = 0;   ///< launches replayed from traces
  std::uint64_t traced_rollbacks = 0;  ///< replays undone by SPM conflicts
  std::uint64_t batched_launches = 0;  ///< launches via the fleet batch replayer
  std::uint64_t replay_decoupled_cycles = 0;    ///< free-running replay work
  std::uint64_t replay_lockstep_cycles = 0;     ///< lockstep replay work
  std::uint64_t replay_interpreted_cycles = 0;  ///< interpreter work
  std::uint64_t replay_sync_points = 0;  ///< sync blocks run by scheduled replay
  // Fleet-batch dispatch picture (pool side): SIMD-over-devices groups the
  // workers formed, and the jobs that rode in them (batched or not, a
  // grouped job's cost is identical to scalar dispatch).
  std::uint64_t batch_groups = 0;
  std::uint64_t jobs_batched = 0;

  double total_uj() const { return total_pj * 1e-6; }
  double sim_seconds() const {
    return static_cast<double>(fleet_makespan) / arch::kClockHz;
  }
  /// Fleet throughput in jobs per simulated second.
  double jobs_per_sim_second() const {
    const double s = sim_seconds();
    return s > 0 ? static_cast<double>(jobs_completed) / s : 0.0;
  }
};

/// The device pool.
class DevicePool {
 public:
  struct Config {
    unsigned devices = 1;
    unsigned workers = 0;    ///< 0: one worker per device
    unsigned max_batch = 32; ///< jobs drained per device claim
    /// Per-device architecture overrides: empty = every device is the
    /// paper's baseline; one entry = that variant fleet-wide; otherwise
    /// exactly one entry per device.
    std::vector<soc::ArchConfig> device_arch;
    /// Placement policy for unpinned jobs.
    Schedule schedule = Schedule::kRoundRobin;
    /// Online per-family EWMA cost estimator: measured job costs refine the
    /// analytic prior the shortest-local-clock policy plans with. Updates
    /// fold in only at fleet-quiescent points (wait_idle/stats), from
    /// order-independent integer sums, so placement stays a pure function
    /// of the submission order and the barrier history -- never of worker
    /// timing. Off: the hand-calibrated priors are used as-is.
    bool online_estimator = true;
    /// Per-device feature switches (SPM residency tracking, cross-job
    /// staging dedup); on by default, off reproduces the PR-2 baseline.
    Device::Options device_opts;
    /// Prebuilt binary artifact (src/artifact/) to warm-start from: when
    /// non-empty (or when the VWR2A_ARTIFACT environment variable names a
    /// path, see artifact_env), the pool mmaps it and attaches it to the
    /// fleet's image and trace caches as a hydration source. Any problem
    /// with the file -- absent, wrong version, corrupt -- logs a warning
    /// and the pool runs cold; an artifact can never affect correctness.
    std::string artifact_path;
    /// Honor the VWR2A_ARTIFACT environment variable (which, when set,
    /// overrides artifact_path). Tests and cold-start benches set this to
    /// false to pin a pool cold regardless of the ambient environment.
    bool artifact_env = true;
    /// Eagerly hydrate the fleet's whole working set from the artifact in
    /// the constructor (one thread per distinct variant), so no job ever
    /// pays a first-touch assembly or trace-compilation hiccup. Off by
    /// default: lazy hydration already warms each kernel on first use;
    /// prewarm trades a few ms at construction for zero warm-up tail --
    /// the serving-fleet configuration (see bench/cold_start.cpp).
    bool artifact_prewarm = false;
    /// Scripted device faults, evaluated against the fleet's completed-job
    /// count at batch boundaries. Empty (the default): no injected faults.
    FaultPlan faults;
    /// SIMD-over-devices dispatch: a worker claiming a trace-mode device
    /// whose next job is a FIR also claims other idle devices of the same
    /// variant whose next job is a same-shape FIR, and runs one job from
    /// each through a single batched trace replay (Device::run_fir_group).
    /// Every result stays bit/cycle/energy-identical to scalar dispatch
    /// (the batch replayer is exact and peels divergent lanes off to
    /// scalar), and each device still consumes its own queue in order, so
    /// placement determinism is untouched; only host throughput -- and the
    /// batch_groups/batched_launches telemetry, which depends on which
    /// devices happened to be idle -- varies with worker timing.
    bool fleet_batch = true;
  };

  DevicePool() : DevicePool(Config()) {}
  explicit DevicePool(Config cfg);
  ~DevicePool();  ///< drains all queued jobs, then joins the workers

  DevicePool(const DevicePool&) = delete;
  DevicePool& operator=(const DevicePool&) = delete;

  /// Enqueues one job; returns its future. Thread-safe. Throws HostError if
  /// the job's pin names a device outside the fleet.
  JobHandle submit(Job job);

  /// Enqueues a batch under a single lock round-trip; returns one future
  /// per job, in order. Thread-safe. Pins are validated before anything is
  /// enqueued (all-or-nothing).
  std::vector<JobHandle> submit_batch(std::vector<Job> jobs);

  /// Blocks until every submitted job has completed.
  void wait_idle();

  /// Waits for idle, then aggregates fleet-wide statistics.
  FleetStats stats();

  /// Non-blocking fleet aggregate for live telemetry (the gateway's STATS
  /// frame): never waits for the fleet to go idle. Device figures come from
  /// per-device snapshots cached by the workers at batch boundaries, so the
  /// numbers lag in-progress batches but are always safe to read while
  /// traffic is flowing. Thread-safe.
  FleetStats peek_stats() const;

  unsigned num_devices() const { return static_cast<unsigned>(devices_.size()); }
  unsigned num_workers() const { return static_cast<unsigned>(workers_.size()); }
  isa::ImageCache& image_cache() { return cache_; }
  Schedule schedule() const { return cfg_.schedule; }
  /// The attached artifact store, or null when the pool runs cold.
  const artifact::Store* artifact() const { return artifact_.get(); }

  /// Analytic per-job cost prior (cycles on the baseline variant): the
  /// hand-calibrated per-family model. The online estimator refines it;
  /// placement only needs relative magnitudes, never exact costs.
  static Cycle estimate_cost(const Job& job);

  /// The pool's current estimate for `job`: the analytic prior scaled by
  /// the job family's learned EWMA correction factor (1.0 until the first
  /// quiescent point after that family has run). Thread-safe.
  Cycle estimate(const Job& job) const;

  /// Current per-family correction factors (telemetry; also in FleetStats).
  std::array<double, kJobFamilies> family_factors() const;

  /// Picks the device that would finish `estimate` extra cycles first
  /// (shortest-local-clock rule) and reserves that load on it without
  /// submitting work. Thread-safe. How a stream session soft-pins itself:
  /// the reservation makes the claim visible to the next placement.
  unsigned place_load(Cycle estimate);

  // --- fault injection & recovery (docs/operations.md) ----------------------

  /// Fail-stops device d: it stops receiving work immediately, its resident
  /// state is checkpointed, its queued jobs are re-placed onto healthy
  /// devices (in order; pinned jobs follow a stable failover target chosen
  /// by shortest-local-clock), and subsequent submits pinned to d are
  /// redirected the same way. A batch already claimed by a worker completes
  /// first -- faults land at job boundaries (jobs are atomic). Thread-safe.
  /// Returns false when d was already dead. Throws on an out-of-range d.
  bool kill_device(unsigned d);

  /// Brings a dead device back: it rejoins placement for new work (pins to
  /// it stop redirecting; the first bio window re-stages the resident image
  /// there, bit-identically). Thread-safe. Returns false when d is not dead
  /// or its fail-stop is still completing. Throws on an out-of-range d.
  bool revive_device(unsigned d);

  /// Current health of device d. Thread-safe.
  bool device_dead(unsigned d) const;

 private:
  struct Pending {
    Job job;
    std::promise<JobResult> promise;
    std::uint64_t seq = 0;
    unsigned family = 0;  ///< Job::work alternative (estimator family)
    /// Host-ns enqueue stamp for the flight recorder's queue-wait span and
    /// the v6 wire breakdown; 0 when both tracing and spans were off at
    /// submit. Observability only.
    std::uint64_t enq_ns = 0;
    /// Estimated device-local clock (cycles) the placement charged this
    /// job's device with, including this job; 0 when spans were off at
    /// submit. Observability only.
    std::uint64_t place_cycles = 0;
  };
  struct DeviceState {
    std::unique_ptr<Device> device;
    std::deque<Pending> queue;
    bool claimed = false;  ///< a worker is currently driving this device
    /// Batch-boundary telemetry cache (guarded by mu_): written by the
    /// worker releasing its claim, read by peek_stats() without touching
    /// the (not thread-safe) device itself.
    soc::Platform::Snapshot cached_snapshot;
    std::uint64_t cached_jobs = 0;
    std::uint64_t cached_stagings = 0;
    ReplayStats cached_replay;
    // Fault state (guarded by mu_).
    bool dead = false;          ///< fail-stopped; receives no work
    bool kill_pending = false;  ///< claimed at kill time; worker finishes it
    int failover = -1;          ///< where this device's pinned work now goes
    /// Checkpoint of a dead device awaiting adoption here: the claiming
    /// worker applies it before running the next chunk.
    std::vector<std::uint8_t> pending_restore;
  };
  /// Scripted-fault progress (guarded by mu_).
  struct FaultTrace {
    FaultEvent ev;
    bool killed = false;
    bool revived = false;
  };

  void worker_loop();
  /// Runs one FIR job from each device of `group` (indices into devices_,
  /// primary first, all claimed by this worker) as a single fleet-batched
  /// dispatch, then releases the claims. Mirrors the scalar chunk path's
  /// bookkeeping exactly (estimator samples, telemetry caches, fault
  /// completion). Enters with mu_ held, returns with mu_ held.
  void run_group(std::unique_lock<std::mutex>& lock,
                 const std::vector<std::size_t>& group);
  /// Refreshes one device's batch-boundary telemetry cache and bumps the
  /// fleet replay obs:: counters by the delta since the previous cache.
  /// Caller holds mu_ and still owns the device's claim.
  static void cache_device_locked(DeviceState& ds,
                                  const soc::Platform::Snapshot& snap,
                                  std::uint64_t jobs, std::uint64_t stagings,
                                  const ReplayStats& replay);
  /// Index of a serviceable device (unclaimed, non-empty queue), or -1.
  int find_work() const;
  /// Throws unless the job's pin (if any) names a device of the fleet.
  void validate_pin(const Job& job) const;
  /// `estimate` scaled by device d's architecture speed factor.
  Cycle scaled_estimate(Cycle estimate, unsigned d) const;
  /// Shortest-completion device for `estimate` extra cycles (ties: lowest
  /// index). Caller holds mu_.
  unsigned pick_shortest(Cycle estimate) const;
  /// Device a job routes to -- pin, round-robin or shortest-local-clock --
  /// and charges its cost estimate to that device's clock. Caller holds mu_.
  unsigned route(const Job& job, std::uint64_t seq);
  /// estimate() with mu_ already held.
  Cycle estimate_locked(const Job& job) const;
  /// Follows the failover chain from d to a live device. Throws HostError
  /// when the chain dead-ends (no healthy device). Caller holds mu_.
  unsigned resolve_alive(unsigned d) const;
  /// Marks d dead, picks its failover target and counts the kill; the
  /// fail-stop completes via finish_kill_locked (now, or at the claiming
  /// worker's chunk end). Caller holds mu_; d must be alive.
  void begin_kill_locked(unsigned d);
  /// Completes a fail-stop: checkpoints the device, hands the blob to the
  /// failover target, and re-places the queued jobs in order. Caller holds
  /// mu_; d is dead and not driven by any other worker.
  void finish_kill_locked(unsigned d);
  /// Evaluates the scripted fault plan against completed_. Caller holds mu_.
  void check_faults_locked();
  /// Folds the pending measured-cost sums into the EWMA factors. Called
  /// only when the fleet is quiescent (inflight_ == 0) under mu_, so the
  /// result is independent of worker count and completion order.
  void fold_estimator_locked();

  /// Fills the cache/artifact fields of a FleetStats (shared by stats()
  /// and peek_stats()).
  void fold_caches(FleetStats& s) const;
  /// Fills the fault fields of a FleetStats. Caller holds mu_.
  void fold_faults_locked(FleetStats& s) const;

  isa::ImageCache cache_;
  std::shared_ptr<artifact::Store> artifact_;  ///< hydration source (optional)
  Config cfg_;
  std::vector<DeviceState> devices_;
  std::vector<Cycle> sched_load_;    ///< estimated local clock per device
  std::vector<double> sched_speed_;  ///< per-device arch speed factor
  std::vector<std::thread> workers_;

  // Online estimator state (guarded by mu_). Pending sums are integers, so
  // they are independent of the order completions arrive in; factors only
  // change inside fold_estimator_locked() at quiescent points.
  std::array<double, kJobFamilies> family_factor_{};  ///< init to 1.0
  std::array<std::uint64_t, kJobFamilies> pend_measured_{};
  std::array<std::uint64_t, kJobFamilies> pend_prior_{};

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: new work or shutdown
  std::condition_variable idle_cv_;  ///< waiters: inflight_ reached zero
  std::uint64_t next_seq_ = 0;
  std::uint64_t inflight_ = 0;  ///< queued or running jobs
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  bool stopping_ = false;

  // Fault bookkeeping (guarded by mu_).
  std::vector<FaultTrace> fault_trace_;  ///< scripted-plan progress
  std::uint64_t devices_failed_ = 0;
  std::uint64_t devices_revived_ = 0;
  std::uint64_t jobs_rescued_ = 0;
  std::uint64_t ckpt_taken_ = 0;
  std::uint64_t ckpt_restored_ = 0;

  // Fleet-batch bookkeeping (guarded by mu_).
  std::uint64_t batch_groups_ = 0;
  std::uint64_t jobs_batched_ = 0;
};

} // namespace vwr2a::runtime
