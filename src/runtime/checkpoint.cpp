#include "runtime/checkpoint.hpp"

#include "artifact/format.hpp"

namespace vwr2a::runtime {

// Layout (all little-endian, through artifact::Writer):
//   u64 magic, u32 version, u64 payload_fnv
//   payload:
//     str arch
//     u32 sys_base, u8 bio_resident
//     u64 write_gen
//     u32 sram_words, i32 x sram_words
//     u32 row_count, then per row: u32 row, u64 stamp, i32 x kVwrWords
// The checksum covers everything after the fixed 20-byte prologue, so a
// truncated or bit-flipped blob is rejected before any field is trusted.

std::vector<std::uint8_t> encode_checkpoint(const DeviceCheckpoint& c) {
  std::vector<std::uint8_t> out;
  artifact::Writer w(out);
  w.u64(kCheckpointMagic);
  w.u32(kCheckpointVersion);
  w.u64(0);  // payload checksum, patched below
  const std::size_t payload_off = out.size();
  w.str(c.arch);
  w.u32(c.sys_base);
  w.u8(c.bio_resident ? 1 : 0);
  w.u64(c.write_gen);
  w.u32(static_cast<std::uint32_t>(c.sram.size()));
  for (Word v : c.sram) w.i32(v);
  w.u32(static_cast<std::uint32_t>(c.spm_rows.size()));
  for (const SpmRowImage& r : c.spm_rows) {
    w.u32(r.row);
    w.u64(r.stamp);
    for (Word v : r.data) w.i32(v);
  }
  artifact::patch_u64(out, 12,
                      artifact::fnv1a(out.data() + payload_off,
                                      out.size() - payload_off));
  return out;
}

bool decode_checkpoint(const std::vector<std::uint8_t>& blob,
                       DeviceCheckpoint* out, std::string* why) {
  const auto reject = [why](const char* reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  constexpr std::size_t kPrologue = 8 + 4 + 8;
  if (blob.size() < kPrologue) return reject("checkpoint: truncated prologue");
  artifact::Reader r(blob.data(), blob.size());
  if (r.u64() != kCheckpointMagic) return reject("checkpoint: bad magic");
  if (r.u32() != kCheckpointVersion) {
    return reject("checkpoint: unsupported version");
  }
  const std::uint64_t want = r.u64();
  const std::uint64_t got =
      artifact::fnv1a(blob.data() + kPrologue, blob.size() - kPrologue);
  if (want != got) return reject("checkpoint: payload checksum mismatch");

  DeviceCheckpoint c;
  c.arch = r.str();
  c.sys_base = r.u32();
  c.bio_resident = r.u8() != 0;
  c.write_gen = r.u64();
  const std::uint32_t sram_words = r.u32();
  if (!r.ok() || sram_words > arch::kSramBytes / 4 ||
      sram_words * 4ull > r.remaining()) {
    return reject("checkpoint: SRAM region out of bounds");
  }
  c.sram.reserve(sram_words);
  for (std::uint32_t i = 0; i < sram_words; ++i) c.sram.push_back(r.i32());
  const std::uint32_t rows = r.u32();
  if (!r.ok() || rows > arch::kSpmRows) {
    return reject("checkpoint: SPM row count out of bounds");
  }
  c.spm_rows.reserve(rows);
  for (std::uint32_t i = 0; i < rows; ++i) {
    SpmRowImage row;
    row.row = r.u32();
    row.stamp = r.u64();
    if (!r.ok() || row.row >= arch::kSpmRows) {
      return reject("checkpoint: SPM row index out of range");
    }
    for (Word& v : row.data) v = r.i32();
    c.spm_rows.push_back(row);
  }
  if (!r.ok()) return reject("checkpoint: truncated payload");
  if (!r.at_end()) return reject("checkpoint: trailing bytes");
  *out = std::move(c);
  return true;
}

} // namespace vwr2a::runtime
