#pragma once
// One simulated device of the pool: a full soc::Platform plus the kernel
// drivers, with a fixed system-memory layout for job I/O. Devices keep
// their own local time and meters (as the underlying Vwr2a does), so a
// fleet of devices advances independently -- the pool's fleet makespan is
// the max of the device-local clocks, exactly the semantics of N physical
// VWR2A blocks working in parallel.
//
// A device can be built as an architecture variant (soc::ArchConfig: VWR
// count, SIMD width); outputs stay bit-identical across variants while the
// reported cycle/energy deltas follow the variant's cost model, which is
// what lets one heterogeneous pool run an ablation sweep as a single batch.
// Kernel-image cache keys are namespaced by the variant (Host key prefix),
// so incompatible device configurations never alias cache entries.
//
// Residency & staging dedup. The SPM keeps a monotone write stamp per row
// (mem::Spm::row_version); the device uses stamps to prove that resident
// state survived intervening jobs and skip re-staging it:
//   * the resident MBioTracker image owns the band-mask rows
//     (app::kMaskRowFirst..+kMaskRowCount); a BioTrackerJob re-runs init()
//     only when some job clobbered them since the last window;
//   * consecutive jobs whose input is the *same* SharedBuffer skip the
//     SRAM copy + DMA when the staged rows are untouched (cross-job input
//     dedup, e.g. a batch of reductions over one signal);
//   * FIR tap staging is skipped while the same taps buffer sits unclobbered
//     in kernels::kFirTapRow.
// All three depend only on the device's own job history, so worker-count
// invariance is preserved; both can be disabled per-device (Options) to
// measure the no-residency baseline.
//
// A Device is not thread-safe; the pool guarantees at most one worker
// drives a device at a time and that a device's jobs run in submission
// order.

#include <cstdint>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "app/mbiotracker.hpp"
#include "isa/image_cache.hpp"
#include "kernels/delineation.hpp"
#include "kernels/fft.hpp"
#include "kernels/fir.hpp"
#include "kernels/host.hpp"
#include "kernels/reduce.hpp"
#include "runtime/job.hpp"
#include "soc/platform.hpp"

namespace vwr2a::runtime {

/// Per-device feature switches (defaults match the pool's defaults).
struct DeviceOptions {
  bool residency = true;  ///< skip MBioTracker re-init while rows survive
  bool dedup = true;      ///< skip re-staging of an unclobbered SharedBuffer
};

/// Replay-engine counters of one device's accelerator (the trace-cache
/// tiers of src/cgra/tracecache.hpp). Monotone since device construction;
/// the pool caches them at batch boundaries for peek_stats() and folds the
/// fleet totals into FleetStats.
struct ReplayStats {
  std::uint64_t traced_launches = 0;   ///< launches replayed from traces
  std::uint64_t traced_rollbacks = 0;  ///< replays undone by SPM conflicts
  std::uint64_t batched_launches = 0;  ///< launches via the fleet batch replayer
  std::uint64_t decoupled_cycles = 0;    ///< column-cycles replayed free-running
  std::uint64_t lockstep_cycles = 0;     ///< column-cycles replayed in lockstep
  std::uint64_t interpreted_cycles = 0;  ///< column-cycles interpreted
  std::uint64_t sync_points = 0;  ///< sync-block executions (scheduled replay)
};

/// One pool member.
class Device {
 public:
  /// System-memory word layout: FIR staging scratch (zeros + taps) at 0,
  /// FFT twiddle tables at kFftTableBase, job data after the tables, and
  /// the resident MBioTracker image (its own tables, masks, weights and
  /// window staging) at kBioBase -- above the largest kernel job's data
  /// footprint (cfft-2048 tops out near word 22k).
  static constexpr unsigned kFirScratchBase = 0;
  static constexpr unsigned kFftTableBase = 32;
  static constexpr unsigned kBioBase = 32768;

  using Options = DeviceOptions;

  /// `cache` shares assembled kernel images across all devices of a pool;
  /// `arch` selects the architecture variant this device simulates.
  Device(unsigned id, isa::ImageCache& cache,
         const soc::ArchConfig& arch = {}, const Options& opts = {});

  /// Runs one job to completion on this device (synchronous, device-local
  /// time advances). Throws on malformed jobs; the caller routes the
  /// exception into the job's promise.
  JobResult run(const Job& job, std::uint64_t seq);

  /// Runs one FIR job on each of n devices (lane i's job on devs[i]).
  /// Lanes whose device is warm on the kernel's compiled decoupled trace
  /// replay together through cgra::tc::BatchReplayer -- one host loop
  /// advancing every device's SPM/VWR state block by block (SIMD over
  /// devices); the remaining lanes launch scalar. Both paths are bit-,
  /// cycle- and energy-identical to per-device Device::run, so batching is
  /// purely a host-throughput optimization. On return exactly one of
  /// results[i] / errors[i] is set per lane. The caller guarantees every
  /// jobs[i] holds a FirJob of one same n and that it exclusively drives
  /// every lane's device (the pool's group claim).
  static void run_fir_group(Device* const* devs, const Job* const* jobs,
                            const std::uint64_t* seqs, std::size_t n,
                            std::vector<JobResult>& results,
                            std::vector<std::exception_ptr>& errors);

  /// Live replay-engine counters of this device's accelerator.
  ReplayStats replay_stats() const;

  unsigned id() const { return id_; }
  std::uint64_t jobs_run() const { return jobs_; }
  const soc::ArchConfig& arch() const { return platform_.arch(); }

  /// Staging events since construction: SRAM/SPM regions actually staged
  /// (job input rows, FIR taps, the resident MBioTracker image). Residency
  /// tracking and dedup show up as this counter NOT advancing.
  std::uint64_t stagings() const { return stagings_; }

  /// Device-local snapshot (local time + energy since construction).
  soc::Platform::Snapshot snapshot() const { return platform_.snapshot(); }

  /// True when a resident MBioTracker image exists on this device (init()
  /// ran at least once and was never discarded).
  bool has_resident_bio() const { return bio_ != nullptr && bio_inited_; }

  /// What restore() did with a checkpoint blob.
  enum class RestoreOutcome {
    kApplied,          ///< resident state adopted; next bio window skips init
    kSkippedResident,  ///< this device already hosts a resident image
    kRejected,         ///< blob malformed/corrupt; device unchanged
  };

  /// Serializes this device's resident application state (SRAM app region,
  /// SPM mask rows + write stamps -- see runtime/checkpoint.hpp). Returns
  /// an empty vector when nothing is resident. Called by the pool when the
  /// device fail-stops; the device itself is left untouched.
  std::vector<std::uint8_t> checkpoint() const;

  /// Restores a checkpoint captured on another (dying) device. State lands
  /// through simulator backdoors (pokes): migrating it costs this device no
  /// cycles or energy -- the fleet moved it out-of-band. A device that
  /// already hosts a resident image skips the restore (the image contents
  /// are session-independent constants, so it is already equivalent); a
  /// corrupt blob is rejected cleanly and the device stays intact (the next
  /// bio window re-stages from scratch). `why` (optional) explains
  /// kRejected.
  RestoreOutcome restore(const std::vector<std::uint8_t>& blob,
                         std::string* why = nullptr);

  /// The simulated platform (tests/benches: engine counters, meters).
  soc::Platform& platform() { return platform_; }
  const soc::Platform& platform() const { return platform_; }

 private:
  JobResult run_fir(const FirJob& job);
  JobResult run_cfft(const CfftJob& job);
  JobResult run_rfft(const RfftJob& job);
  JobResult run_ifft(const IfftJob& job);
  JobResult run_reduce(const ReduceJob& job);
  JobResult run_delineation(const DelineationJob& job);
  JobResult run_pipeline(const PipelineJob& job);
  JobResult run_bio(const BioTrackerJob& job);

  /// Stages `buf` (whole SPM rows' worth of samples) into system memory at
  /// data_base_ and DMAs it into rows starting at row 0 -- unless the same
  /// buffer is already resident in untouched rows (dedup).
  void stage_rows(const SharedBuffer& buf);
  /// FIR-11 via the device driver with tap-residency dedup.
  kernels::FirRunStats run_fir11(unsigned n, const SharedBuffer& taps,
                                 unsigned sys_in, unsigned sys_out);
  /// The launch-free prefix of a FIR job (validation, input + tap staging,
  /// SRF parameters); returns the kernel id ready to run and the output
  /// region in `out_word`. run_fir_group's per-lane phase 1.
  unsigned fir_begin(const FirJob& job, unsigned& out_word);
  /// Throws unless a job's system-memory footprint ends below kBioBase:
  /// the residency skip assumes kernel jobs can never clobber the resident
  /// app image's SRAM, so the layout invariant is enforced, not assumed.
  void check_sys_fit(unsigned end_word) const;

  unsigned id_;
  soc::Platform platform_;
  isa::ImageCache* cache_;
  kernels::Host host_;
  kernels::FirKernels fir_;
  kernels::FftKernels fft_;
  kernels::ReduceKernels reduce_;
  kernels::DelineationKernels delin_;
  /// The resident application image, created on the first BioTrackerJob.
  std::unique_ptr<app::MBioTracker> bio_;
  unsigned data_base_;  ///< first system word available for job data
  Options opts_;
  std::uint64_t jobs_ = 0;
  std::uint64_t stagings_ = 0;

  // Residency / dedup bookkeeping (SPM write stamps prove survival).
  std::uint64_t bio_rows_version_ = 0;  ///< mask rows at the last init()
  bool bio_inited_ = false;
  SharedBuffer staged_buf_;             ///< last buffer staged into rows 0..
  std::uint64_t staged_version_ = 0;
  SharedBuffer staged_taps_;            ///< last taps staged into kFirTapRow
  std::uint64_t taps_version_ = 0;
};

} // namespace vwr2a::runtime
