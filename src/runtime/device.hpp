#pragma once
// One simulated device of the pool: a full soc::Platform plus the kernel
// drivers, with a fixed system-memory layout for job I/O. Devices keep
// their own local time and meters (as the underlying Vwr2a does), so a
// fleet of devices advances independently -- the pool's fleet makespan is
// the max of the device-local clocks, exactly the semantics of N physical
// VWR2A blocks working in parallel.
//
// A device can be built as an architecture variant (soc::ArchConfig: VWR
// count, SIMD width); outputs stay bit-identical across variants while the
// reported cycle/energy deltas follow the variant's cost model, which is
// what lets one heterogeneous pool run an ablation sweep as a single batch.
// Kernel-image cache keys are namespaced by the variant (Host key prefix),
// so incompatible device configurations never alias cache entries.
//
// A Device is not thread-safe; the pool guarantees at most one worker
// drives a device at a time and that a device's jobs run in submission
// order.

#include <cstdint>
#include <memory>

#include "app/mbiotracker.hpp"
#include "isa/image_cache.hpp"
#include "kernels/delineation.hpp"
#include "kernels/fft.hpp"
#include "kernels/fir.hpp"
#include "kernels/host.hpp"
#include "kernels/reduce.hpp"
#include "runtime/job.hpp"
#include "soc/platform.hpp"

namespace vwr2a::runtime {

/// One pool member.
class Device {
 public:
  /// System-memory word layout: FIR staging scratch (zeros + taps) at 0,
  /// FFT twiddle tables at kFftTableBase, job data after the tables, and
  /// the resident MBioTracker image (its own tables, masks, weights and
  /// window staging) at kBioBase -- above the largest kernel job's data
  /// footprint (cfft-2048 tops out near word 22k).
  static constexpr unsigned kFirScratchBase = 0;
  static constexpr unsigned kFftTableBase = 32;
  static constexpr unsigned kBioBase = 32768;

  /// `cache` shares assembled kernel images across all devices of a pool;
  /// `arch` selects the architecture variant this device simulates.
  Device(unsigned id, isa::ImageCache& cache,
         const soc::ArchConfig& arch = {});

  /// Runs one job to completion on this device (synchronous, device-local
  /// time advances). Throws on malformed jobs; the caller routes the
  /// exception into the job's promise.
  JobResult run(const Job& job, std::uint64_t seq);

  unsigned id() const { return id_; }
  std::uint64_t jobs_run() const { return jobs_; }
  const soc::ArchConfig& arch() const { return platform_.arch(); }

  /// Device-local snapshot (local time + energy since construction).
  soc::Platform::Snapshot snapshot() const { return platform_.snapshot(); }

 private:
  JobResult run_fir(const FirJob& job);
  JobResult run_cfft(const CfftJob& job);
  JobResult run_rfft(const RfftJob& job);
  JobResult run_ifft(const IfftJob& job);
  JobResult run_reduce(const ReduceJob& job);
  JobResult run_delineation(const DelineationJob& job);
  JobResult run_bio(const BioTrackerJob& job);

  /// Stages `data` into system memory at data_base_ and DMAs it into whole
  /// SPM rows starting at row 0 (row-resident kernel families).
  void stage_rows(const std::vector<std::int32_t>& data);

  unsigned id_;
  soc::Platform platform_;
  isa::ImageCache* cache_;
  kernels::Host host_;
  kernels::FirKernels fir_;
  kernels::FftKernels fft_;
  kernels::ReduceKernels reduce_;
  kernels::DelineationKernels delin_;
  /// The resident application image, created on the first BioTrackerJob.
  std::unique_ptr<app::MBioTracker> bio_;
  unsigned data_base_;  ///< first system word available for job data
  std::uint64_t jobs_ = 0;
};

} // namespace vwr2a::runtime
