#pragma once
// One simulated device of the pool: a full soc::Platform plus the kernel
// drivers, with a fixed system-memory layout for job I/O. Devices keep
// their own local time and meters (as the underlying Vwr2a does), so a
// fleet of devices advances independently -- the pool's fleet makespan is
// the max of the device-local clocks, exactly the semantics of N physical
// VWR2A blocks working in parallel.
//
// A Device is not thread-safe; the pool guarantees at most one worker
// drives a device at a time and that a device's jobs run in submission
// order.

#include <cstdint>

#include "isa/image_cache.hpp"
#include "kernels/fft.hpp"
#include "kernels/fir.hpp"
#include "kernels/host.hpp"
#include "runtime/job.hpp"
#include "soc/platform.hpp"

namespace vwr2a::runtime {

/// One pool member.
class Device {
 public:
  /// System-memory word layout: FIR staging scratch (zeros + taps) at 0,
  /// FFT twiddle tables at kFftTableBase, job data after the tables.
  static constexpr unsigned kFirScratchBase = 0;
  static constexpr unsigned kFftTableBase = 32;

  /// `cache` shares assembled kernel images across all devices of a pool.
  Device(unsigned id, isa::ImageCache& cache);

  /// Runs one job to completion on this device (synchronous, device-local
  /// time advances). Throws on malformed jobs; the caller routes the
  /// exception into the job's promise.
  JobResult run(const Job& job, std::uint64_t seq);

  unsigned id() const { return id_; }
  std::uint64_t jobs_run() const { return jobs_; }

  /// Device-local snapshot (local time + energy since construction).
  soc::Platform::Snapshot snapshot() const { return platform_.snapshot(); }

 private:
  JobResult run_fir(const FirJob& job);
  JobResult run_cfft(const CfftJob& job);

  unsigned id_;
  soc::Platform platform_;
  kernels::Host host_;
  kernels::FirKernels fir_;
  kernels::FftKernels fft_;
  unsigned data_base_;  ///< first system word available for job data
  std::uint64_t jobs_ = 0;
};

} // namespace vwr2a::runtime
