#include "runtime/pool.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "artifact/store.hpp"
#include "common/log.hpp"
#include "common/status.hpp"

namespace vwr2a::runtime {

namespace {

/// Integer log2 for the FFT-family estimates (n is a power of two).
unsigned ilog2(unsigned n) {
  unsigned lg = 0;
  while (n > 1) {
    n >>= 1;
    ++lg;
  }
  return lg;
}

/// Relative simulated-time factor of an architecture variant on a typical
/// mixed job stream (1.0 = the paper's design point). Matches the
/// direction and rough magnitude of Platform::apply_arch_model: 2 VWRs pay
/// SPM round trips, 4 VWRs save twiddle reloads, the 16-bit dual lane
/// halves elementwise ALU cycles.
double arch_speed(const soc::ArchConfig& a) {
  double s = 1.0;
  if (a.vwr_count == 2) s *= 1.06;
  if (a.vwr_count == 4) s *= 0.99;
  if (a.simd_width == 16) s *= 0.84;
  return s;
}

/// Folds one device's figures into a fleet aggregate -- the single place
/// stats() (live snapshots) and peek_stats() (cached snapshots) share, so
/// a new FleetStats field cannot silently diverge between the two views.
void fold_device(FleetStats& s, const soc::Platform::Snapshot& snap,
                 std::uint64_t jobs, std::uint64_t stagings,
                 const soc::ArchConfig& arch) {
  const Cycle local = snap.total_cycles();
  s.device_cycles.push_back(local);
  s.device_pj.push_back(snap.total_pj());
  s.device_jobs.push_back(jobs);
  s.device_stagings.push_back(stagings);
  s.stagings += stagings;
  s.device_arch.push_back(arch);
  s.fleet_makespan = std::max(s.fleet_makespan, local);
  s.total_device_cycles += local;
  s.total_pj += snap.total_pj();
}

} // namespace

DevicePool::DevicePool(Config cfg) : cfg_(std::move(cfg)) {
  family_factor_.fill(1.0);
  if (cfg_.devices == 0) throw HostError("DevicePool: need at least 1 device");
  if (cfg_.workers == 0) cfg_.workers = cfg_.devices;
  if (cfg_.max_batch == 0) cfg_.max_batch = 1;
  if (!cfg_.device_arch.empty() && cfg_.device_arch.size() != 1 &&
      cfg_.device_arch.size() != cfg_.devices) {
    throw HostError(
        "DevicePool: device_arch must be empty, one entry, or one per device");
  }

  // Attach the prebuilt artifact (if any) before the devices exist, so
  // even the first kernel lookup can hydrate. VWR2A_ARTIFACT overrides the
  // config path; any failure to open degrades to a cold start, never an
  // error (see artifact/store.hpp's failure model).
  std::string artifact_path = cfg_.artifact_path;
  if (cfg_.artifact_env) {
    if (const char* env = std::getenv("VWR2A_ARTIFACT");
        env != nullptr && env[0] != '\0') {
      artifact_path = env;
    }
  }
  if (!artifact_path.empty()) {
    std::string why;
    artifact_ = artifact::Store::open(artifact_path, &why);
    if (artifact_) {
      cache_.set_source(artifact_.get());
      cache_.traces().set_source(artifact_.get());
    } else {
      log::Line(log::Level::kWarn) << "DevicePool: starting cold, " << why;
    }
  }

  devices_.resize(cfg_.devices);
  sched_load_.resize(cfg_.devices, 0);
  sched_speed_.reserve(cfg_.devices);
  for (unsigned d = 0; d < cfg_.devices; ++d) {
    const soc::ArchConfig arch =
        cfg_.device_arch.empty()
            ? soc::ArchConfig{}
            : cfg_.device_arch[cfg_.device_arch.size() == 1 ? 0 : d];
    devices_[d].device =
        std::make_unique<Device>(d, cache_, arch, cfg_.device_opts);
    sched_speed_.push_back(arch_speed(arch));
  }
  if (artifact_ && cfg_.artifact_prewarm) {
    // Hydrate each distinct variant's whole working set concurrently; the
    // caches' miss paths are thread-safe and per-key serialized.
    std::vector<std::string> variants;
    for (const DeviceState& ds : devices_) {
      const std::string name = ds.device->arch().name();
      if (std::find(variants.begin(), variants.end(), name) == variants.end()) {
        variants.push_back(name);
      }
    }
    std::vector<std::thread> warmers;
    warmers.reserve(variants.size());
    for (const std::string& v : variants) {
      warmers.emplace_back(
          [this, v] { artifact_->prewarm(cache_, v); });
    }
    for (std::thread& t : warmers) t.join();
  }

  workers_.reserve(cfg_.workers);
  for (unsigned w = 0; w < cfg_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

DevicePool::~DevicePool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int DevicePool::find_work() const {
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    if (!devices_[d].claimed && !devices_[d].queue.empty()) {
      return static_cast<int>(d);
    }
  }
  return -1;
}

Cycle DevicePool::estimate_cost(const Job& job) {
  // Coarse per-family models calibrated against measured baseline costs
  // (e.g. fir-256 ~2.9k, cfft-1024 ~19.6k, bio window ~27k cycles). Only
  // relative magnitudes matter: the shortest-local-clock policy balances
  // load with these, and any monotone-in-work estimate keeps the placement
  // deterministic.
  return std::visit(
      [](const auto& w) -> Cycle {
        using T = std::decay_t<decltype(w)>;
        if constexpr (std::is_same_v<T, FirJob>) {
          return 500 + 9ull * w.n;
        } else if constexpr (std::is_same_v<T, CfftJob>) {
          return 500 + 2ull * w.n * ilog2(w.n);
        } else if constexpr (std::is_same_v<T, RfftJob>) {
          return 500 + 3ull * w.n * ilog2(w.n) / 2;
        } else if constexpr (std::is_same_v<T, IfftJob>) {
          return 500 + 2ull * w.n * ilog2(w.n);
        } else if constexpr (std::is_same_v<T, ReduceJob>) {
          const bool bisect =
              w.op == ReduceOp::kMin || w.op == ReduceOp::kMax;
          return 500 + (bisect ? 11ull : 1ull) * w.n;
        } else if constexpr (std::is_same_v<T, DelineationJob>) {
          return 500 + 17ull * w.n;
        } else if constexpr (std::is_same_v<T, PipelineJob>) {
          return 2500 + 24ull * w.n;
        } else {  // BioTrackerJob: one whole application window
          return 27000;
        }
      },
      job.work);
}

void DevicePool::validate_pin(const Job& job) const {
  if (job.pin >= 0 && static_cast<std::size_t>(job.pin) >= devices_.size()) {
    throw HostError("DevicePool: pin_to_device index out of range");
  }
}

Cycle DevicePool::scaled_estimate(Cycle estimate, unsigned d) const {
  return static_cast<Cycle>(static_cast<double>(estimate) * sched_speed_[d]);
}

unsigned DevicePool::pick_shortest(Cycle estimate) const {
  unsigned best = 0;
  Cycle best_done = sched_load_[0] + scaled_estimate(estimate, 0);
  for (unsigned i = 1; i < sched_load_.size(); ++i) {
    const Cycle done = sched_load_[i] + scaled_estimate(estimate, i);
    if (done < best_done) {
      best = i;
      best_done = done;
    }
  }
  return best;
}

Cycle DevicePool::estimate_locked(const Job& job) const {
  const Cycle prior = estimate_cost(job);
  if (!cfg_.online_estimator) return prior;
  const double f = family_factor_[job.work.index()];
  const auto est = static_cast<Cycle>(
      std::llround(static_cast<double>(prior) * f));
  return est > 0 ? est : 1;
}

Cycle DevicePool::estimate(const Job& job) const {
  std::lock_guard<std::mutex> lock(mu_);
  return estimate_locked(job);
}

std::array<double, kJobFamilies> DevicePool::family_factors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return family_factor_;
}

void DevicePool::fold_estimator_locked() {
  if (!cfg_.online_estimator) return;
  // EWMA over per-family (measured / prior) ratios, alpha = 1/4. Both sums
  // are integers accumulated per completed job, so the fold is independent
  // of the order completions landed in.
  constexpr double kAlpha = 0.25;
  for (unsigned f = 0; f < kJobFamilies; ++f) {
    if (pend_prior_[f] == 0) continue;
    const double ratio = static_cast<double>(pend_measured_[f]) /
                         static_cast<double>(pend_prior_[f]);
    // The pending ratio is measured against the *prior*, while the factor
    // tracks measured/prior directly -- blend toward it.
    family_factor_[f] += kAlpha * (ratio - family_factor_[f]);
    pend_measured_[f] = 0;
    pend_prior_[f] = 0;
  }
}

unsigned DevicePool::route(const Job& job, std::uint64_t seq) {
  validate_pin(job);
  const Cycle est = estimate_locked(job);
  unsigned d;
  if (job.pin >= 0) {
    d = static_cast<unsigned>(job.pin);
  } else if (cfg_.schedule == Schedule::kShortestLocalClock) {
    d = pick_shortest(est);
  } else {
    d = static_cast<unsigned>(seq % devices_.size());
  }
  sched_load_[d] += scaled_estimate(est, d);
  return d;
}

unsigned DevicePool::place_load(Cycle estimate) {
  std::lock_guard<std::mutex> lock(mu_);
  const unsigned d = pick_shortest(estimate);
  sched_load_[d] += scaled_estimate(estimate, d);
  return d;
}

JobHandle DevicePool::submit(Job job) {
  std::promise<JobResult> promise;
  JobHandle handle(promise.get_future());
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) throw HostError("DevicePool: submit after shutdown");
    const std::uint64_t seq = next_seq_;
    const unsigned family = static_cast<unsigned>(job.work.index());
    DeviceState& ds = devices_[route(job, seq)];  // throws before enqueuing
    ++next_seq_;
    ds.queue.push_back(
        Pending{std::move(job), std::move(promise), seq, family});
    ++inflight_;
  }
  work_cv_.notify_one();
  return handle;
}

std::vector<JobHandle> DevicePool::submit_batch(std::vector<Job> jobs) {
  std::vector<JobHandle> handles;
  handles.reserve(jobs.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) throw HostError("DevicePool: submit after shutdown");
    // Validate every pin first: a bad pin must not enqueue half a batch.
    for (const Job& job : jobs) validate_pin(job);
    for (Job& job : jobs) {
      std::promise<JobResult> promise;
      handles.emplace_back(promise.get_future());
      const std::uint64_t seq = next_seq_++;
      const unsigned family = static_cast<unsigned>(job.work.index());
      DeviceState& ds = devices_[route(job, seq)];
      ds.queue.push_back(
          Pending{std::move(job), std::move(promise), seq, family});
      ++inflight_;
    }
  }
  work_cv_.notify_all();
  return handles;
}

void DevicePool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stopping_ || find_work() >= 0; });
    const int d = find_work();
    if (d < 0) {
      if (stopping_) return;
      continue;  // another worker took the job that woke us
    }
    DeviceState& ds = devices_[static_cast<std::size_t>(d)];
    ds.claimed = true;
    // Batched dispatch: drain a chunk of this device's FIFO under one claim.
    std::vector<Pending> chunk;
    const std::size_t take =
        std::min<std::size_t>(ds.queue.size(), cfg_.max_batch);
    chunk.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      chunk.push_back(std::move(ds.queue.front()));
      ds.queue.pop_front();
    }
    lock.unlock();

    std::uint64_t ok = 0, bad = 0;
    // Measured-cost samples for the online estimator, normalized back to
    // the baseline variant by the device's speed factor. Accumulated as
    // integers so folding is order-independent.
    std::array<std::uint64_t, kJobFamilies> meas{};
    std::array<std::uint64_t, kJobFamilies> prior{};
    for (Pending& p : chunk) {
      try {
        JobResult r = ds.device->run(p.job, p.seq);
        const double norm = static_cast<double>(r.cost.total_cycles()) /
                            sched_speed_[static_cast<unsigned>(d)];
        meas[p.family] += static_cast<std::uint64_t>(std::llround(norm));
        prior[p.family] += estimate_cost(p.job);
        p.promise.set_value(std::move(r));
        ++ok;
      } catch (...) {
        p.promise.set_exception(std::current_exception());
        ++bad;
      }
    }

    // Refresh the device's telemetry cache while nothing else can be
    // driving it (our claim is still held until the lock below).
    const soc::Platform::Snapshot snap = ds.device->snapshot();
    const std::uint64_t dev_jobs = ds.device->jobs_run();
    const std::uint64_t dev_stagings = ds.device->stagings();

    lock.lock();
    for (unsigned f = 0; f < kJobFamilies; ++f) {
      pend_measured_[f] += meas[f];
      pend_prior_[f] += prior[f];
    }
    ds.cached_snapshot = snap;
    ds.cached_jobs = dev_jobs;
    ds.cached_stagings = dev_stagings;
    ds.claimed = false;
    completed_ += ok;
    failed_ += bad;
    inflight_ -= ok + bad;
    if (inflight_ == 0) idle_cv_.notify_all();
    if (!ds.queue.empty()) work_cv_.notify_one();
  }
}

void DevicePool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return inflight_ == 0; });
  fold_estimator_locked();  // quiescent: fold is worker-count-invariant
}

FleetStats DevicePool::stats() {
  // One continuous critical section: once inflight_ is 0 *while holding
  // mu_*, every worker sits between chunks (jobs stay counted in inflight_
  // until their worker reacquires the lock), so no device is being mutated
  // while we read its meters.
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return inflight_ == 0; });
  fold_estimator_locked();
  FleetStats s;
  s.family_factor = family_factor_;
  s.jobs_completed = completed_;
  s.jobs_failed = failed_;
  s.device_cycles.reserve(devices_.size());
  s.device_pj.reserve(devices_.size());
  s.device_jobs.reserve(devices_.size());
  s.device_arch.reserve(devices_.size());
  for (const DeviceState& ds : devices_) {
    fold_device(s, ds.device->snapshot(), ds.device->jobs_run(),
                ds.device->stagings(), ds.device->arch());
  }
  fold_caches(s);
  return s;
}

FleetStats DevicePool::peek_stats() const {
  FleetStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.family_factor = family_factor_;
    s.jobs_completed = completed_;
    s.jobs_failed = failed_;
    s.device_cycles.reserve(devices_.size());
    s.device_pj.reserve(devices_.size());
    s.device_jobs.reserve(devices_.size());
    s.device_arch.reserve(devices_.size());
    for (const DeviceState& ds : devices_) {
      fold_device(s, ds.cached_snapshot, ds.cached_jobs, ds.cached_stagings,
                  ds.device->arch());
    }
  }
  fold_caches(s);
  return s;
}

void DevicePool::fold_caches(FleetStats& s) const {
  s.image_cache = cache_.stats();
  s.trace_cache = cache_.traces().stats();
  s.artifact_attached = artifact_ != nullptr;
  if (artifact_) {
    const artifact::Store::Counters c = artifact_->counters();
    s.artifact_images = c.images_served;
    s.artifact_traces = c.traces_served;
    s.artifact_misses = c.lookups_missed;
    s.artifact_rejects = c.parse_rejects;
  }
}

} // namespace vwr2a::runtime
