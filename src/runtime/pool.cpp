#include "runtime/pool.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "artifact/store.hpp"
#include "common/log.hpp"
#include "common/status.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vwr2a::runtime {

namespace {

/// Integer log2 for the FFT-family estimates (n is a power of two).
unsigned ilog2(unsigned n) {
  unsigned lg = 0;
  while (n > 1) {
    n >>= 1;
    ++lg;
  }
  return lg;
}

/// Relative simulated-time factor of an architecture variant on a typical
/// mixed job stream (1.0 = the paper's design point). Matches the
/// direction and rough magnitude of Platform::apply_arch_model: 2 VWRs pay
/// SPM round trips, 4 VWRs save twiddle reloads, the 16-bit dual lane
/// halves elementwise ALU cycles.
double arch_speed(const soc::ArchConfig& a) {
  double s = 1.0;
  if (a.vwr_count == 2) s *= 1.06;
  if (a.vwr_count == 4) s *= 0.99;
  if (a.simd_width == 16) s *= 0.84;
  return s;
}

/// Folds one device's figures into a fleet aggregate -- the single place
/// stats() (live snapshots) and peek_stats() (cached snapshots) share, so
/// a new FleetStats field cannot silently diverge between the two views.
void fold_device(FleetStats& s, const soc::Platform::Snapshot& snap,
                 std::uint64_t jobs, std::uint64_t stagings,
                 const soc::ArchConfig& arch, const ReplayStats& replay) {
  const Cycle local = snap.total_cycles();
  s.device_cycles.push_back(local);
  s.device_pj.push_back(snap.total_pj());
  s.device_jobs.push_back(jobs);
  s.device_stagings.push_back(stagings);
  s.stagings += stagings;
  s.device_arch.push_back(arch);
  s.fleet_makespan = std::max(s.fleet_makespan, local);
  s.total_device_cycles += local;
  s.total_pj += snap.total_pj();
  s.traced_launches += replay.traced_launches;
  s.traced_rollbacks += replay.traced_rollbacks;
  s.batched_launches += replay.batched_launches;
  s.replay_decoupled_cycles += replay.decoupled_cycles;
  s.replay_lockstep_cycles += replay.lockstep_cycles;
  s.replay_interpreted_cycles += replay.interpreted_cycles;
  s.replay_sync_points += replay.sync_points;
}

} // namespace

DevicePool::DevicePool(Config cfg) : cfg_(std::move(cfg)) {
  family_factor_.fill(1.0);
  if (cfg_.devices == 0) throw HostError("DevicePool: need at least 1 device");
  if (cfg_.workers == 0) cfg_.workers = cfg_.devices;
  if (cfg_.max_batch == 0) cfg_.max_batch = 1;
  if (!cfg_.device_arch.empty() && cfg_.device_arch.size() != 1 &&
      cfg_.device_arch.size() != cfg_.devices) {
    throw HostError(
        "DevicePool: device_arch must be empty, one entry, or one per device");
  }

  // Attach the prebuilt artifact (if any) before the devices exist, so
  // even the first kernel lookup can hydrate. VWR2A_ARTIFACT overrides the
  // config path; any failure to open degrades to a cold start, never an
  // error (see artifact/store.hpp's failure model).
  std::string artifact_path = cfg_.artifact_path;
  if (cfg_.artifact_env) {
    if (const char* env = std::getenv("VWR2A_ARTIFACT");
        env != nullptr && env[0] != '\0') {
      artifact_path = env;
    }
  }
  if (!artifact_path.empty()) {
    std::string why;
    artifact_ = artifact::Store::open(artifact_path, &why);
    if (artifact_) {
      cache_.set_source(artifact_.get());
      cache_.traces().set_source(artifact_.get());
    } else {
      log::Line(log::Level::kWarn) << "DevicePool: starting cold, " << why;
    }
  }

  for (const FaultEvent& ev : cfg_.faults.events) {
    if (ev.device >= cfg_.devices) {
      throw HostError("DevicePool: fault plan names a device outside the fleet");
    }
    fault_trace_.push_back(FaultTrace{ev, false, false});
  }

  devices_.resize(cfg_.devices);
  sched_load_.resize(cfg_.devices, 0);
  sched_speed_.reserve(cfg_.devices);
  for (unsigned d = 0; d < cfg_.devices; ++d) {
    const soc::ArchConfig arch =
        cfg_.device_arch.empty()
            ? soc::ArchConfig{}
            : cfg_.device_arch[cfg_.device_arch.size() == 1 ? 0 : d];
    devices_[d].device =
        std::make_unique<Device>(d, cache_, arch, cfg_.device_opts);
    sched_speed_.push_back(arch_speed(arch));
  }
  if (artifact_ && cfg_.artifact_prewarm) {
    // Hydrate each distinct variant's whole working set concurrently; the
    // caches' miss paths are thread-safe and per-key serialized.
    std::vector<std::string> variants;
    for (const DeviceState& ds : devices_) {
      const std::string name = ds.device->arch().name();
      if (std::find(variants.begin(), variants.end(), name) == variants.end()) {
        variants.push_back(name);
      }
    }
    std::vector<std::thread> warmers;
    warmers.reserve(variants.size());
    for (const std::string& v : variants) {
      warmers.emplace_back(
          [this, v] { artifact_->prewarm(cache_, v); });
    }
    for (std::thread& t : warmers) t.join();
  }

  // A scripted fault at job 0 lands before any work is routed (no workers
  // are running yet, so no lock is needed for the _locked helpers).
  check_faults_locked();

  workers_.reserve(cfg_.workers);
  for (unsigned w = 0; w < cfg_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

DevicePool::~DevicePool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int DevicePool::find_work() const {
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    if (!devices_[d].claimed && !devices_[d].dead &&
        !devices_[d].queue.empty()) {
      return static_cast<int>(d);
    }
  }
  return -1;
}

Cycle DevicePool::estimate_cost(const Job& job) {
  // Coarse per-family models calibrated against measured baseline costs
  // (e.g. fir-256 ~2.9k, cfft-1024 ~19.6k, bio window ~27k cycles). Only
  // relative magnitudes matter: the shortest-local-clock policy balances
  // load with these, and any monotone-in-work estimate keeps the placement
  // deterministic.
  return std::visit(
      [](const auto& w) -> Cycle {
        using T = std::decay_t<decltype(w)>;
        if constexpr (std::is_same_v<T, FirJob>) {
          return 500 + 9ull * w.n;
        } else if constexpr (std::is_same_v<T, CfftJob>) {
          return 500 + 2ull * w.n * ilog2(w.n);
        } else if constexpr (std::is_same_v<T, RfftJob>) {
          return 500 + 3ull * w.n * ilog2(w.n) / 2;
        } else if constexpr (std::is_same_v<T, IfftJob>) {
          return 500 + 2ull * w.n * ilog2(w.n);
        } else if constexpr (std::is_same_v<T, ReduceJob>) {
          const bool bisect =
              w.op == ReduceOp::kMin || w.op == ReduceOp::kMax;
          return 500 + (bisect ? 11ull : 1ull) * w.n;
        } else if constexpr (std::is_same_v<T, DelineationJob>) {
          return 500 + 17ull * w.n;
        } else if constexpr (std::is_same_v<T, PipelineJob>) {
          return 2500 + 24ull * w.n;
        } else {  // BioTrackerJob: one whole application window
          return 27000;
        }
      },
      job.work);
}

void DevicePool::validate_pin(const Job& job) const {
  if (job.pin >= 0 && static_cast<std::size_t>(job.pin) >= devices_.size()) {
    throw HostError("DevicePool: pin_to_device index out of range");
  }
}

Cycle DevicePool::scaled_estimate(Cycle estimate, unsigned d) const {
  return static_cast<Cycle>(static_cast<double>(estimate) * sched_speed_[d]);
}

unsigned DevicePool::pick_shortest(Cycle estimate) const {
  int best = -1;
  Cycle best_done = 0;
  for (unsigned i = 0; i < sched_load_.size(); ++i) {
    if (devices_[i].dead) continue;
    const Cycle done = sched_load_[i] + scaled_estimate(estimate, i);
    if (best < 0 || done < best_done) {
      best = static_cast<int>(i);
      best_done = done;
    }
  }
  if (best < 0) throw HostError("DevicePool: no healthy device left");
  return static_cast<unsigned>(best);
}

unsigned DevicePool::resolve_alive(unsigned d) const {
  unsigned hops = 0;
  while (devices_[d].dead) {
    const int f = devices_[d].failover;
    if (f < 0 || ++hops > devices_.size()) {
      // Chain dead-ends (the device died while the whole fleet was down,
      // or the chain loops through dead devices): fall back to fresh
      // placement, which throws only if nothing is alive right now.
      return pick_shortest(0);
    }
    d = static_cast<unsigned>(f);
  }
  return d;
}

Cycle DevicePool::estimate_locked(const Job& job) const {
  const Cycle prior = estimate_cost(job);
  if (!cfg_.online_estimator) return prior;
  const double f = family_factor_[job.work.index()];
  const auto est = static_cast<Cycle>(
      std::llround(static_cast<double>(prior) * f));
  return est > 0 ? est : 1;
}

Cycle DevicePool::estimate(const Job& job) const {
  std::lock_guard<std::mutex> lock(mu_);
  return estimate_locked(job);
}

std::array<double, kJobFamilies> DevicePool::family_factors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return family_factor_;
}

void DevicePool::fold_estimator_locked() {
  if (!cfg_.online_estimator) return;
  // EWMA over per-family (measured / prior) ratios, alpha = 1/4. Both sums
  // are integers accumulated per completed job, so the fold is independent
  // of the order completions landed in.
  constexpr double kAlpha = 0.25;
  for (unsigned f = 0; f < kJobFamilies; ++f) {
    if (pend_prior_[f] == 0) continue;
    const double ratio = static_cast<double>(pend_measured_[f]) /
                         static_cast<double>(pend_prior_[f]);
    // The pending ratio is measured against the *prior*, while the factor
    // tracks measured/prior directly -- blend toward it.
    family_factor_[f] += kAlpha * (ratio - family_factor_[f]);
    pend_measured_[f] = 0;
    pend_prior_[f] = 0;
  }
}

unsigned DevicePool::route(const Job& job, std::uint64_t seq) {
  validate_pin(job);
  const Cycle est = estimate_locked(job);
  unsigned d;
  if (job.pin >= 0) {
    // A pin to a dead device follows its stable failover chain, so a
    // session survives its device dying without ever seeing the fault.
    d = resolve_alive(static_cast<unsigned>(job.pin));
  } else if (cfg_.schedule == Schedule::kShortestLocalClock) {
    d = pick_shortest(est);
  } else {
    d = resolve_alive(static_cast<unsigned>(seq % devices_.size()));
  }
  sched_load_[d] += scaled_estimate(est, d);
  // Placement decision recorded after the fact: chosen device + the
  // estimator inputs that drove the choice (prior estimate, resulting
  // local-clock charge). Reads only.
  obs::instant("window.place", job.trace_id, d, est, sched_load_[d]);
  return d;
}

unsigned DevicePool::place_load(Cycle estimate) {
  std::lock_guard<std::mutex> lock(mu_);
  const unsigned d = pick_shortest(estimate);
  sched_load_[d] += scaled_estimate(estimate, d);
  return d;
}

void DevicePool::begin_kill_locked(unsigned d) {
  DeviceState& ds = devices_[d];
  ds.dead = true;
  ++devices_failed_;
  // Stable failover target for this device's pinned work, chosen by the
  // same shortest-local-clock rule placement uses. Chains are fine: if the
  // target later dies too, resolve_alive follows its failover in turn.
  try {
    ds.failover = static_cast<int>(pick_shortest(0));
  } catch (const HostError&) {
    ds.failover = -1;  // the last healthy device just died
  }
  obs::instant("fault.kill", 0, d,
               static_cast<std::uint64_t>(ds.failover + 1));
  if (obs::metrics_enabled()) {
    static obs::Counter& m =
        obs::Registry::get().counter("fleet.devices_failed");
    m.add(1);
  }
}

void DevicePool::finish_kill_locked(unsigned d) {
  DeviceState& ds = devices_[d];
  // Move the resident state toward the failover target so it is adopted
  // there before any rescued job runs.
  std::vector<std::uint8_t> blob = ds.device->checkpoint();
  if (!blob.empty()) {
    ++ckpt_taken_;
    obs::instant("fault.checkpoint", 0, d, blob.size());
    if (obs::metrics_enabled()) {
      static obs::Counter& m =
          obs::Registry::get().counter("fleet.checkpoints_taken");
      m.add(1);
    }
    if (ds.failover >= 0) {
      devices_[static_cast<unsigned>(ds.failover)].pending_restore =
          std::move(blob);
    }
  }
  // A checkpoint parked here (this device was someone else's failover
  // target and died before adopting it) is forwarded down the chain.
  if (!ds.pending_restore.empty() && ds.failover >= 0) {
    DeviceState& fs = devices_[static_cast<unsigned>(ds.failover)];
    if (fs.pending_restore.empty()) {
      fs.pending_restore = std::move(ds.pending_restore);
    }
  }
  ds.pending_restore.clear();
  // Re-place the queued jobs in order: pinned jobs follow the failover
  // chain, unpinned jobs re-run placement. Their estimate charges move
  // with them so the schedule stays honest if this device revives.
  bool moved = false;
  while (!ds.queue.empty()) {
    Pending p = std::move(ds.queue.front());
    ds.queue.pop_front();
    const Cycle est = estimate_locked(p.job);
    const Cycle charged = scaled_estimate(est, d);
    sched_load_[d] = sched_load_[d] > charged ? sched_load_[d] - charged : 0;
    int target = -1;
    try {
      target = static_cast<int>(
          p.job.pin >= 0 ? resolve_alive(static_cast<unsigned>(p.job.pin))
                         : pick_shortest(est));
    } catch (const HostError&) {
      target = -1;
    }
    if (target < 0) {
      // No healthy fleet left: fail the job instead of stranding its
      // future (a drain must never hang on a dead fleet).
      p.promise.set_exception(std::make_exception_ptr(
          HostError("DevicePool: device died with no healthy device left")));
      ++failed_;
      --inflight_;
      continue;
    }
    sched_load_[static_cast<unsigned>(target)] +=
        scaled_estimate(est, static_cast<unsigned>(target));
    const std::uint64_t rescued_trace = p.job.trace_id;
    devices_[static_cast<unsigned>(target)].queue.push_back(std::move(p));
    ++jobs_rescued_;
    obs::instant("fault.rescue", rescued_trace, d,
                 static_cast<std::uint64_t>(target));
    if (obs::metrics_enabled()) {
      static obs::Counter& m =
          obs::Registry::get().counter("fleet.jobs_rescued");
      m.add(1);
    }
    moved = true;
  }
  if (moved) work_cv_.notify_all();
  if (inflight_ == 0) idle_cv_.notify_all();
}

bool DevicePool::kill_device(unsigned d) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (d >= devices_.size()) {
      throw HostError("DevicePool: kill_device index out of range");
    }
    DeviceState& ds = devices_[d];
    if (ds.dead) return false;
    begin_kill_locked(d);
    if (ds.claimed) {
      // A worker is driving the device: the fault lands at its batch
      // boundary (jobs are atomic); the worker completes the fail-stop.
      ds.kill_pending = true;
    } else {
      finish_kill_locked(d);
    }
  }
  work_cv_.notify_all();
  return true;
}

bool DevicePool::revive_device(unsigned d) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (d >= devices_.size()) {
      throw HostError("DevicePool: revive_device index out of range");
    }
    DeviceState& ds = devices_[d];
    if (!ds.dead || ds.kill_pending) return false;
    ds.dead = false;
    ds.failover = -1;
    ++devices_revived_;
    obs::instant("fault.revive", 0, d);
    if (obs::metrics_enabled()) {
      static obs::Counter& m =
          obs::Registry::get().counter("fleet.devices_revived");
      m.add(1);
    }
  }
  work_cv_.notify_all();
  return true;
}

bool DevicePool::device_dead(unsigned d) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (d >= devices_.size()) {
    throw HostError("DevicePool: device_dead index out of range");
  }
  return devices_[d].dead;
}

void DevicePool::check_faults_locked() {
  for (FaultTrace& t : fault_trace_) {
    if (!t.killed && completed_ >= t.ev.kill_after_jobs) {
      t.killed = true;
      DeviceState& ds = devices_[t.ev.device];
      if (!ds.dead) {
        begin_kill_locked(t.ev.device);
        if (ds.claimed) {
          ds.kill_pending = true;
        } else {
          finish_kill_locked(t.ev.device);
        }
        work_cv_.notify_all();
      }
    }
    if (t.killed && !t.revived && t.ev.revive_after_jobs > 0 &&
        completed_ >= t.ev.revive_after_jobs) {
      DeviceState& ds = devices_[t.ev.device];
      if (ds.kill_pending) continue;  // fail-stop mid-flight; next boundary
      t.revived = true;
      if (ds.dead) {
        ds.dead = false;
        ds.failover = -1;
        ++devices_revived_;
        obs::instant("fault.revive", 0, t.ev.device);
        if (obs::metrics_enabled()) {
          static obs::Counter& m =
              obs::Registry::get().counter("fleet.devices_revived");
          m.add(1);
        }
        work_cv_.notify_all();
      }
    }
  }
}

JobHandle DevicePool::submit(Job job) {
  std::promise<JobResult> promise;
  JobHandle handle(promise.get_future());
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) throw HostError("DevicePool: submit after shutdown");
    const std::uint64_t seq = next_seq_;
    const unsigned family = static_cast<unsigned>(job.work.index());
    const unsigned d = route(job, seq);  // throws before enqueuing
    DeviceState& ds = devices_[d];
    ++next_seq_;
    const bool spans = obs::spans_enabled();
    const std::uint64_t enq =
        obs::tracing_enabled() || spans ? obs::now_ns() : 0;
    ds.queue.push_back(Pending{std::move(job), std::move(promise), seq, family,
                               enq, spans ? sched_load_[d] : 0});
    ++inflight_;
  }
  work_cv_.notify_one();
  return handle;
}

std::vector<JobHandle> DevicePool::submit_batch(std::vector<Job> jobs) {
  std::vector<JobHandle> handles;
  handles.reserve(jobs.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) throw HostError("DevicePool: submit after shutdown");
    // Validate every pin first: a bad pin must not enqueue half a batch.
    for (const Job& job : jobs) validate_pin(job);
    for (Job& job : jobs) {
      std::promise<JobResult> promise;
      handles.emplace_back(promise.get_future());
      const std::uint64_t seq = next_seq_++;
      const unsigned family = static_cast<unsigned>(job.work.index());
      const unsigned d = route(job, seq);
      DeviceState& ds = devices_[d];
      const bool spans = obs::spans_enabled();
      const std::uint64_t enq =
          obs::tracing_enabled() || spans ? obs::now_ns() : 0;
      ds.queue.push_back(Pending{std::move(job), std::move(promise), seq,
                                 family, enq, spans ? sched_load_[d] : 0});
      ++inflight_;
    }
  }
  work_cv_.notify_all();
  return handles;
}

void DevicePool::cache_device_locked(DeviceState& ds,
                                     const soc::Platform::Snapshot& snap,
                                     std::uint64_t jobs,
                                     std::uint64_t stagings,
                                     const ReplayStats& replay) {
  if (obs::metrics_enabled()) {
    static obs::Counter& m_tl =
        obs::Registry::get().counter("fleet.replay_traced_launches");
    static obs::Counter& m_rb =
        obs::Registry::get().counter("fleet.replay_rollbacks");
    static obs::Counter& m_bl =
        obs::Registry::get().counter("fleet.replay_batched_launches");
    static obs::Counter& m_dc =
        obs::Registry::get().counter("fleet.replay_decoupled_cycles");
    static obs::Counter& m_lc =
        obs::Registry::get().counter("fleet.replay_lockstep_cycles");
    static obs::Counter& m_ic =
        obs::Registry::get().counter("fleet.replay_interpreted_cycles");
    static obs::Counter& m_sp =
        obs::Registry::get().counter("fleet.replay_sync_points");
    const ReplayStats& prev = ds.cached_replay;
    m_tl.add(replay.traced_launches - prev.traced_launches);
    m_rb.add(replay.traced_rollbacks - prev.traced_rollbacks);
    m_bl.add(replay.batched_launches - prev.batched_launches);
    m_dc.add(replay.decoupled_cycles - prev.decoupled_cycles);
    m_lc.add(replay.lockstep_cycles - prev.lockstep_cycles);
    m_ic.add(replay.interpreted_cycles - prev.interpreted_cycles);
    m_sp.add(replay.sync_points - prev.sync_points);
  }
  ds.cached_snapshot = snap;
  ds.cached_jobs = jobs;
  ds.cached_stagings = stagings;
  ds.cached_replay = replay;
}

void DevicePool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stopping_ || find_work() >= 0; });
    const int d = find_work();
    if (d < 0) {
      if (stopping_) return;
      continue;  // another worker took the job that woke us
    }
    DeviceState& ds = devices_[static_cast<std::size_t>(d)];
    ds.claimed = true;

    // Fleet-batched dispatch (SIMD over devices): when this trace-mode
    // device's next job is a FIR, also claim other idle devices of the same
    // variant whose next job is a same-shape FIR, and run one job from each
    // as a single batched trace replay. Interpret-mode devices never gang
    // (nothing to batch; the scalar chunk path drains them faster), and a
    // device with a checkpoint to adopt stays scalar (the restore must land
    // before its next job).
    if (cfg_.fleet_batch && ds.pending_restore.empty() &&
        ds.device->arch().exec_mode == cgra::ExecMode::kTraceCache &&
        !ds.queue.empty() &&
        std::holds_alternative<FirJob>(ds.queue.front().job.work)) {
      const FirJob& f0 = std::get<FirJob>(ds.queue.front().job.work);
      std::vector<std::size_t> group;
      group.push_back(static_cast<std::size_t>(d));
      for (std::size_t e = 0; e < devices_.size(); ++e) {
        if (group.size() >= cfg_.max_batch) break;
        if (e == static_cast<std::size_t>(d)) continue;
        DeviceState& es = devices_[e];
        if (es.claimed || es.dead || es.queue.empty() ||
            !es.pending_restore.empty()) {
          continue;
        }
        if (!(es.device->arch() == ds.device->arch())) continue;
        const FirJob* fe = std::get_if<FirJob>(&es.queue.front().job.work);
        if (fe == nullptr || fe->n != f0.n) continue;
        es.claimed = true;
        group.push_back(e);
      }
      if (group.size() >= 2) {
        run_group(lock, group);
        continue;
      }
      // No partner idle right now: fall through to the scalar chunk path
      // (the claim on d is still held).
    }
    // A checkpoint parked on this device (its source fail-stopped) is
    // adopted before any rescued job runs, so residency carries over.
    std::vector<std::uint8_t> restore_blob = std::move(ds.pending_restore);
    ds.pending_restore.clear();
    // Batched dispatch: drain a chunk of this device's FIFO under one claim.
    std::vector<Pending> chunk;
    const std::size_t take =
        std::min<std::size_t>(ds.queue.size(), cfg_.max_batch);
    chunk.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      chunk.push_back(std::move(ds.queue.front()));
      ds.queue.pop_front();
    }
    lock.unlock();

    bool restored = false;
    if (!restore_blob.empty()) {
      std::string why;
      const Device::RestoreOutcome oc = ds.device->restore(restore_blob, &why);
      restored = oc == Device::RestoreOutcome::kApplied;
      obs::instant("fault.restore", 0, static_cast<std::uint64_t>(d),
                   restored ? 1 : 0);
      if (restored && obs::metrics_enabled()) {
        static obs::Counter& m =
            obs::Registry::get().counter("fleet.checkpoints_restored");
        m.add(1);
      }
      if (oc == Device::RestoreOutcome::kRejected) {
        log::Line(log::Level::kWarn)
            << "pool: checkpoint rejected on device "
                              << ds.device->id() << " (" << why
                              << "); device re-stages cold";
      }
    }

    std::uint64_t ok = 0, bad = 0;
    // Measured-cost samples for the online estimator, normalized back to
    // the baseline variant by the device's speed factor. Accumulated as
    // integers so folding is order-independent.
    std::array<std::uint64_t, kJobFamilies> meas{};
    std::array<std::uint64_t, kJobFamilies> prior{};
    for (Pending& p : chunk) {
      if (p.enq_ns != 0 && obs::tracing_enabled()) {
        // Queue wait, stamped at submit and emitted here by the worker so
        // the span needs no cross-thread begin/end pairing.
        const std::uint64_t now = obs::now_ns();
        obs::complete("window.queue", p.job.trace_id, p.enq_ns,
                      now > p.enq_ns ? now - p.enq_ns : 0,
                      static_cast<std::uint64_t>(d));
      }
      // Wire-span breakdown (v6): begin stamps taken just before the run,
      // end stamp after; sim_begin is the device-local clock going in.
      const bool spans = obs::spans_enabled();
      const std::uint64_t run_begin = spans ? obs::now_ns() : 0;
      const std::uint64_t sim0 =
          spans ? ds.device->snapshot().total_cycles() : 0;
      try {
        JobResult r = ds.device->run(p.job, p.seq);
        if (spans) {
          r.timing.enq_ns = p.enq_ns;
          r.timing.run_begin_ns = run_begin;
          r.timing.run_end_ns = obs::now_ns();
          r.timing.place_cycles = p.place_cycles;
          r.timing.sim_begin = sim0;
        }
        const double norm = static_cast<double>(r.cost.total_cycles()) /
                            sched_speed_[static_cast<unsigned>(d)];
        meas[p.family] += static_cast<std::uint64_t>(std::llround(norm));
        prior[p.family] += estimate_cost(p.job);
        p.promise.set_value(std::move(r));
        ++ok;
      } catch (...) {
        p.promise.set_exception(std::current_exception());
        ++bad;
      }
    }

    if (obs::metrics_enabled()) {
      static obs::Counter& m_done =
          obs::Registry::get().counter("fleet.jobs_completed");
      static obs::Counter& m_fail =
          obs::Registry::get().counter("fleet.jobs_failed");
      if (ok != 0) m_done.add(ok);
      if (bad != 0) m_fail.add(bad);
    }

    // Refresh the device's telemetry cache while nothing else can be
    // driving it (our claim is still held until the lock below).
    const soc::Platform::Snapshot snap = ds.device->snapshot();
    const std::uint64_t dev_jobs = ds.device->jobs_run();
    const std::uint64_t dev_stagings = ds.device->stagings();
    const ReplayStats dev_replay = ds.device->replay_stats();

    lock.lock();
    for (unsigned f = 0; f < kJobFamilies; ++f) {
      pend_measured_[f] += meas[f];
      pend_prior_[f] += prior[f];
    }
    cache_device_locked(ds, snap, dev_jobs, dev_stagings, dev_replay);
    ds.claimed = false;
    completed_ += ok;
    failed_ += bad;
    inflight_ -= ok + bad;
    if (restored) ++ckpt_restored_;
    if (ds.kill_pending) {
      // The fail-stop landed while we were driving the device; jobs are
      // atomic, so the fault completes here, at the chunk boundary.
      ds.kill_pending = false;
      finish_kill_locked(static_cast<unsigned>(d));
    }
    check_faults_locked();
    if (inflight_ == 0) idle_cv_.notify_all();
    if (!ds.queue.empty() && !ds.dead) work_cv_.notify_one();
  }
}

void DevicePool::run_group(std::unique_lock<std::mutex>& lock,
                           const std::vector<std::size_t>& group) {
  // One Pending popped per device: each device still consumes its own FIFO
  // in order, so the job stream any device sees -- and with it every
  // per-job cycle/energy delta -- is the same as under scalar dispatch.
  std::vector<Pending> pending;
  pending.reserve(group.size());
  for (std::size_t g : group) {
    pending.push_back(std::move(devices_[g].queue.front()));
    devices_[g].queue.pop_front();
  }
  lock.unlock();

  std::vector<Device*> devs;
  std::vector<const Job*> jobs;
  std::vector<std::uint64_t> seqs;
  devs.reserve(group.size());
  jobs.reserve(group.size());
  seqs.reserve(group.size());
  const bool spans = obs::spans_enabled();
  std::vector<std::uint64_t> sim0(group.size(), 0);
  for (std::size_t i = 0; i < group.size(); ++i) {
    devs.push_back(devices_[group[i]].device.get());
    jobs.push_back(&pending[i].job);
    seqs.push_back(pending[i].seq);
    if (spans) sim0[i] = devs.back()->snapshot().total_cycles();
    if (pending[i].enq_ns != 0 && obs::tracing_enabled()) {
      const std::uint64_t now = obs::now_ns();
      obs::complete("window.queue", pending[i].job.trace_id, pending[i].enq_ns,
                    now > pending[i].enq_ns ? now - pending[i].enq_ns : 0,
                    static_cast<std::uint64_t>(group[i]));
    }
  }

  const std::uint64_t group_begin = spans ? obs::now_ns() : 0;
  std::vector<JobResult> results;
  std::vector<std::exception_ptr> errors;
  Device::run_fir_group(devs.data(), jobs.data(), seqs.data(), group.size(),
                        results, errors);
  const std::uint64_t group_end = spans ? obs::now_ns() : 0;

  std::uint64_t ok = 0, bad = 0;
  std::array<std::uint64_t, kJobFamilies> meas{};
  std::array<std::uint64_t, kJobFamilies> prior{};
  for (std::size_t i = 0; i < group.size(); ++i) {
    if (errors[i]) {
      pending[i].promise.set_exception(errors[i]);
      ++bad;
      continue;
    }
    if (spans) {
      // One batched replay runs all lanes: every lane shares the group's
      // host run window (its own simulated cost is still per-lane exact).
      results[i].timing.enq_ns = pending[i].enq_ns;
      results[i].timing.run_begin_ns = group_begin;
      results[i].timing.run_end_ns = group_end;
      results[i].timing.place_cycles = pending[i].place_cycles;
      results[i].timing.sim_begin = sim0[i];
    }
    const double norm = static_cast<double>(results[i].cost.total_cycles()) /
                        sched_speed_[group[i]];
    meas[pending[i].family] += static_cast<std::uint64_t>(std::llround(norm));
    prior[pending[i].family] += estimate_cost(pending[i].job);
    pending[i].promise.set_value(std::move(results[i]));
    ++ok;
  }

  if (obs::metrics_enabled()) {
    static obs::Counter& m_done =
        obs::Registry::get().counter("fleet.jobs_completed");
    static obs::Counter& m_fail =
        obs::Registry::get().counter("fleet.jobs_failed");
    static obs::Counter& m_grp =
        obs::Registry::get().counter("fleet.batch_groups");
    static obs::Counter& m_bat =
        obs::Registry::get().counter("fleet.jobs_batched");
    if (ok != 0) m_done.add(ok);
    if (bad != 0) m_fail.add(bad);
    m_grp.add(1);
    m_bat.add(group.size());
  }

  // Refresh every member's telemetry cache while the claims are still held.
  std::vector<soc::Platform::Snapshot> snaps(group.size());
  std::vector<std::uint64_t> dev_jobs(group.size());
  std::vector<std::uint64_t> dev_stagings(group.size());
  std::vector<ReplayStats> dev_replay(group.size());
  for (std::size_t i = 0; i < group.size(); ++i) {
    const Device& dev = *devices_[group[i]].device;
    snaps[i] = dev.snapshot();
    dev_jobs[i] = dev.jobs_run();
    dev_stagings[i] = dev.stagings();
    dev_replay[i] = dev.replay_stats();
  }

  lock.lock();
  for (unsigned f = 0; f < kJobFamilies; ++f) {
    pend_measured_[f] += meas[f];
    pend_prior_[f] += prior[f];
  }
  ++batch_groups_;
  jobs_batched_ += group.size();
  completed_ += ok;
  failed_ += bad;
  inflight_ -= ok + bad;
  bool more = false;
  for (std::size_t i = 0; i < group.size(); ++i) {
    DeviceState& gs = devices_[group[i]];
    cache_device_locked(gs, snaps[i], dev_jobs[i], dev_stagings[i],
                        dev_replay[i]);
    gs.claimed = false;
    if (gs.kill_pending) {
      // The fail-stop landed while the group was running; jobs are atomic,
      // so it completes here, at the group boundary.
      gs.kill_pending = false;
      finish_kill_locked(static_cast<unsigned>(group[i]));
    }
    if (!gs.queue.empty() && !gs.dead) more = true;
  }
  check_faults_locked();
  if (inflight_ == 0) idle_cv_.notify_all();
  if (more) work_cv_.notify_all();
}

void DevicePool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return inflight_ == 0; });
  fold_estimator_locked();  // quiescent: fold is worker-count-invariant
}

FleetStats DevicePool::stats() {
  // One continuous critical section: once inflight_ is 0 *while holding
  // mu_*, every worker sits between chunks (jobs stay counted in inflight_
  // until their worker reacquires the lock), so no device is being mutated
  // while we read its meters.
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return inflight_ == 0; });
  fold_estimator_locked();
  FleetStats s;
  s.family_factor = family_factor_;
  s.jobs_completed = completed_;
  s.jobs_failed = failed_;
  s.device_cycles.reserve(devices_.size());
  s.device_pj.reserve(devices_.size());
  s.device_jobs.reserve(devices_.size());
  s.device_arch.reserve(devices_.size());
  s.batch_groups = batch_groups_;
  s.jobs_batched = jobs_batched_;
  for (const DeviceState& ds : devices_) {
    fold_device(s, ds.device->snapshot(), ds.device->jobs_run(),
                ds.device->stagings(), ds.device->arch(),
                ds.device->replay_stats());
  }
  fold_faults_locked(s);
  fold_caches(s);
  return s;
}

FleetStats DevicePool::peek_stats() const {
  FleetStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.family_factor = family_factor_;
    s.jobs_completed = completed_;
    s.jobs_failed = failed_;
    s.device_cycles.reserve(devices_.size());
    s.device_pj.reserve(devices_.size());
    s.device_jobs.reserve(devices_.size());
    s.device_arch.reserve(devices_.size());
    s.batch_groups = batch_groups_;
    s.jobs_batched = jobs_batched_;
    for (const DeviceState& ds : devices_) {
      fold_device(s, ds.cached_snapshot, ds.cached_jobs, ds.cached_stagings,
                  ds.device->arch(), ds.cached_replay);
    }
    fold_faults_locked(s);
  }
  fold_caches(s);
  return s;
}

void DevicePool::fold_faults_locked(FleetStats& s) const {
  s.devices_failed = devices_failed_;
  s.devices_revived = devices_revived_;
  s.jobs_rescued = jobs_rescued_;
  s.checkpoints_taken = ckpt_taken_;
  s.checkpoints_restored = ckpt_restored_;
  s.device_dead.reserve(devices_.size());
  for (const DeviceState& ds : devices_) {
    s.device_dead.push_back(ds.dead ? 1 : 0);
    if (ds.dead) ++s.devices_dead;
  }
}

void DevicePool::fold_caches(FleetStats& s) const {
  s.image_cache = cache_.stats();
  s.trace_cache = cache_.traces().stats();
  s.artifact_attached = artifact_ != nullptr;
  if (artifact_) {
    const artifact::Store::Counters c = artifact_->counters();
    s.artifact_images = c.images_served;
    s.artifact_traces = c.traces_served;
    s.artifact_misses = c.lookups_missed;
    s.artifact_rejects = c.parse_rejects;
  }
}

} // namespace vwr2a::runtime
