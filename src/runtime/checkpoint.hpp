#pragma once
// Device checkpoint: the serialized resident state of one runtime::Device,
// captured when the pool fail-stops the device so an in-flight streaming
// session can be re-placed onto a healthy device and continue bit-
// identically (docs/operations.md is the normative description).
//
// What is resident on a device, and therefore worth moving, is exactly the
// state the residency machinery tracks: the MBioTracker application image
// (its system-SRAM region at Device::kBioBase -- twiddle tables, FIR zero
// block, band masks, SVM weights, window staging) plus the SPM band-mask
// rows (app::kMaskRowFirst..+kMaskRowCount) together with their write
// stamps, which prove whether the image was intact at capture time. Every
// per-window job is stateless given that image, so restoring it onto any
// healthy device -- of any architecture variant -- reproduces the exact
// output words the dead device would have produced.
//
// The encoding follows the src/artifact/ codec conventions: a magic u64,
// a format version, explicit little-endian field-by-field layout through
// artifact::Writer, an FNV-1a 64 checksum over the payload, and a bounds-
// checked sticky-failure parse through artifact::Reader. A corrupt blob is
// rejected cleanly (decode returns false with a reason); the pool then
// restores nothing and the target device re-stages the image from scratch,
// which costs cycles but never correctness.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace vwr2a::runtime {

/// Checkpoint file magic: "VWR2CKP\0" little-endian.
inline constexpr std::uint64_t kCheckpointMagic = 0x00504b4332525756ull;

/// Checkpoint format version (bump on any layout change).
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// One SPM row image: data plus the row's write stamp at capture.
struct SpmRowImage {
  std::uint32_t row = 0;
  std::array<Word, arch::kVwrWords> data{};
  std::uint64_t stamp = 0;
};

/// The resident state of one device (see the header comment).
struct DeviceCheckpoint {
  std::string arch;            ///< soc::ArchConfig::name() of the source
  std::uint32_t sys_base = 0;  ///< SRAM base of the resident app image
  bool bio_resident = false;   ///< mask rows were intact at capture time
  std::vector<Word> sram;      ///< [sys_base, sys_base + size) app region
  std::vector<SpmRowImage> spm_rows;  ///< band-mask rows + write stamps
  std::uint64_t write_gen = 0;        ///< source SPM generation at capture
};

/// Serializes a checkpoint (artifact codec conventions, see above).
std::vector<std::uint8_t> encode_checkpoint(const DeviceCheckpoint& c);

/// Parses a checkpoint blob. Returns false (and a reason, when `why` is
/// non-null) on any magic/version/checksum/bounds violation; `out` is then
/// unspecified. Never throws on malformed input.
bool decode_checkpoint(const std::vector<std::uint8_t>& blob,
                       DeviceCheckpoint* out, std::string* why = nullptr);

} // namespace vwr2a::runtime
