#pragma once
// Abstract system-memory port: what a bus master (the VWR2A DMA, the FFT
// accelerator, the CPU load/store unit) sees of the SoC interconnect.

#include <cstdint>

#include "common/types.hpp"

namespace vwr2a::bus {

/// One word-granular master port into the system interconnect.
class SysPort {
 public:
  virtual ~SysPort() = default;

  /// Reads the word at `word_addr` (word-addressed system memory map).
  virtual Word read(std::uint32_t word_addr) = 0;

  /// Writes the word at `word_addr`.
  virtual void write(std::uint32_t word_addr, Word v) = 0;

  /// Cycles per data beat once a burst is established.
  virtual unsigned beat_cycles() const = 0;

  /// Cycles of arbitration + address phase when a burst starts.
  virtual unsigned burst_setup_cycles() const = 0;

  /// Maximum beats per burst (INCR16-style bursts).
  virtual unsigned burst_beats() const = 0;
};

} // namespace vwr2a::bus
