#pragma once
// Abstract system-memory port: what a bus master (the VWR2A DMA, the FFT
// accelerator, the CPU load/store unit) sees of the SoC interconnect.

#include <cstdint>

#include "common/types.hpp"

namespace vwr2a::bus {

/// One word-granular master port into the system interconnect.
class SysPort {
 public:
  virtual ~SysPort() = default;

  /// Reads the word at `word_addr` (word-addressed system memory map).
  virtual Word read(std::uint32_t word_addr) = 0;

  /// Writes the word at `word_addr`.
  virtual void write(std::uint32_t word_addr, Word v) = 0;

  /// Cycles per data beat once a burst is established.
  virtual unsigned beat_cycles() const = 0;

  /// Cycles of arbitration + address phase when a burst starts.
  virtual unsigned burst_setup_cycles() const = 0;

  /// Maximum beats per burst (INCR16-style bursts).
  virtual unsigned burst_beats() const = 0;

  // --- bulk transfers ---------------------------------------------------------
  // Block operations let stride-1 DMA move whole spans without a virtual
  // call and two meter adds per beat. Semantics are identical to the
  // word-at-a-time loop: the same events are charged per word. block_ok()
  // reports whether the whole span can be transferred without faulting
  // (range and power gating); callers must fall back to the per-word path
  // when it is false so faults surface at the exact beat they would have.

  /// True when [word_addr, word_addr + n) is fully accessible.
  virtual bool block_ok(std::uint32_t word_addr, std::uint32_t n) const {
    (void)word_addr;
    (void)n;
    return false;  // conservative default: per-word path
  }

  /// Reads n consecutive words (caller checked block_ok).
  virtual void read_block(std::uint32_t word_addr, Word* dst, std::uint32_t n) {
    for (std::uint32_t i = 0; i < n; ++i) dst[i] = read(word_addr + i);
  }

  /// Writes n consecutive words (caller checked block_ok).
  virtual void write_block(std::uint32_t word_addr, const Word* src,
                           std::uint32_t n) {
    for (std::uint32_t i = 0; i < n; ++i) write(word_addr + i, src[i]);
  }

  /// True when all n strided beats starting at word_addr are accessible.
  virtual bool strided_ok(std::uint32_t word_addr, std::int32_t stride,
                          std::uint32_t n) const {
    (void)word_addr;
    (void)stride;
    (void)n;
    return false;  // conservative default: per-word path
  }

  /// Reads n strided words (caller checked strided_ok).
  virtual void read_strided(std::uint32_t word_addr, std::int32_t stride,
                            std::uint32_t n, Word* dst) {
    std::int64_t a = word_addr;
    for (std::uint32_t i = 0; i < n; ++i, a += stride) {
      dst[i] = read(static_cast<std::uint32_t>(a));
    }
  }

  /// Writes n strided words (caller checked strided_ok).
  virtual void write_strided(std::uint32_t word_addr, std::int32_t stride,
                             std::uint32_t n, const Word* src) {
    std::int64_t a = word_addr;
    for (std::uint32_t i = 0; i < n; ++i, a += stride) {
      write(static_cast<std::uint32_t>(a), src[i]);
    }
  }
};

} // namespace vwr2a::bus
