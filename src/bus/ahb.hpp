#pragma once
// AMBA-AHB-like transaction-level bus model. The paper's SoC connects the
// CPU, SRAM, DMA and accelerators through an AMBA-AHB interface (Sec 4.1);
// VWR2A gets one master port (its DMA) and one slave port (control). This
// model routes word transactions to the system SRAM, charges bus energy per
// beat, and exposes AHB-ish timing parameters (single-cycle data beats,
// 2-cycle arbitration/address phase, INCR16 bursts).

#include <cstdint>

#include "bus/sys_port.hpp"
#include "energy/meter.hpp"
#include "mem/sram.hpp"

namespace vwr2a::bus {

/// Timing knobs of the bus model.
struct AhbConfig {
  unsigned beat_cycles = 1;        ///< data phase per beat
  unsigned burst_setup_cycles = 2; ///< arbitration + address phase
  unsigned burst_beats = 16;       ///< INCR16
};

/// The system interconnect: one address space backed by the system SRAM.
class AhbBus final : public SysPort {
 public:
  AhbBus(mem::SystemSram& sram, energy::EnergyMeter& meter,
         AhbConfig cfg = AhbConfig{})
      : sram_(&sram), meter_(&meter), cfg_(cfg) {}

  Word read(std::uint32_t word_addr) override {
    meter_->add(energy::Event::kBusBeat);
    ++beats_;
    return sram_->read(word_addr);
  }

  void write(std::uint32_t word_addr, Word v) override {
    meter_->add(energy::Event::kBusBeat);
    ++beats_;
    sram_->write(word_addr, v);
  }

  bool block_ok(std::uint32_t word_addr, std::uint32_t n) const override {
    return sram_->block_ok(word_addr, n);
  }

  void read_block(std::uint32_t word_addr, Word* dst, std::uint32_t n) override {
    meter_->add(energy::Event::kBusBeat, n);
    beats_ += n;
    sram_->read_block(word_addr, dst, n);
  }

  void write_block(std::uint32_t word_addr, const Word* src,
                   std::uint32_t n) override {
    meter_->add(energy::Event::kBusBeat, n);
    beats_ += n;
    sram_->write_block(word_addr, src, n);
  }

  bool strided_ok(std::uint32_t word_addr, std::int32_t stride,
                  std::uint32_t n) const override {
    return sram_->strided_ok(word_addr, stride, n);
  }

  void read_strided(std::uint32_t word_addr, std::int32_t stride,
                    std::uint32_t n, Word* dst) override {
    meter_->add(energy::Event::kBusBeat, n);
    beats_ += n;
    sram_->read_strided(word_addr, stride, n, dst);
  }

  void write_strided(std::uint32_t word_addr, std::int32_t stride,
                     std::uint32_t n, const Word* src) override {
    meter_->add(energy::Event::kBusBeat, n);
    beats_ += n;
    sram_->write_strided(word_addr, stride, n, src);
  }

  unsigned beat_cycles() const override { return cfg_.beat_cycles; }
  unsigned burst_setup_cycles() const override { return cfg_.burst_setup_cycles; }
  unsigned burst_beats() const override { return cfg_.burst_beats; }

  /// Charges one burst-setup worth of arbitration energy.
  void charge_setup() { meter_->add(energy::Event::kBusSetup); }

  /// Total data beats observed (tests).
  std::uint64_t beats() const { return beats_; }

 private:
  mem::SystemSram* sram_;
  energy::EnergyMeter* meter_;
  AhbConfig cfg_;
  std::uint64_t beats_ = 0;
};

} // namespace vwr2a::bus
