#include "dsp/reference.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/bits.hpp"
#include "common/status.hpp"

namespace vwr2a::dsp {

namespace {

constexpr double kPi = std::numbers::pi;

void require_pow2(std::size_t n, const char* what) {
  if (n == 0 || !is_pow2(static_cast<std::uint32_t>(n))) {
    throw HostError(std::string(what) + ": size must be a power of two");
  }
}

/// 32-bit wrap-around add (RC kSadd semantics).
std::int32_t wadd(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) +
                                   static_cast<std::uint32_t>(b));
}
std::int32_t wsub(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) -
                                   static_cast<std::uint32_t>(b));
}

/// 16.15 complex multiply in exact RC arithmetic.
CplxFx cmul_fx(CplxFx a, CplxFx b) {
  using fx::fxp_mul;
  CplxFx r;
  r.re = wsub(fxp_mul(a.re, b.re), fxp_mul(a.im, b.im));
  r.im = wadd(fxp_mul(a.re, b.im), fxp_mul(a.im, b.re));
  return r;
}

} // namespace

// --- floating point -------------------------------------------------------------

std::vector<cplx> dft(const std::vector<cplx>& x) {
  const std::size_t n = x.size();
  std::vector<cplx> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * kPi * static_cast<double>(k * j) / static_cast<double>(n);
      acc += x[j] * cplx(std::cos(ang), std::sin(ang));
    }
    out[k] = acc;
  }
  return out;
}

std::vector<cplx> fft_radix2(const std::vector<cplx>& x) {
  const std::size_t n = x.size();
  require_pow2(n, "fft_radix2");
  const unsigned logn = ilog2(static_cast<std::uint32_t>(n));
  std::vector<cplx> a(n);
  for (std::size_t i = 0; i < n; ++i) a[bit_reverse(static_cast<std::uint32_t>(i), logn)] = x[i];
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = -2.0 * kPi / static_cast<double>(len);
    const cplx wl(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w = 1.0;
      for (std::size_t j = 0; j < len / 2; ++j) {
        const cplx u = a[i + j];
        const cplx v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wl;
      }
    }
  }
  return a;
}

std::vector<cplx> pease_fft_bitrev(const std::vector<cplx>& x) {
  const std::size_t n = x.size();
  require_pow2(n, "pease_fft");
  const unsigned stages = ilog2(static_cast<std::uint32_t>(n));
  std::vector<cplx> cur = x;
  std::vector<cplx> next(n);
  for (unsigned s = 0; s < stages; ++s) {
    for (std::size_t i = 0; i < n / 2; ++i) {
      const cplx a = cur[i];
      const cplx b = cur[i + n / 2];
      const unsigned exp = (static_cast<unsigned>(i) >> s) << s;
      const double ang = -2.0 * kPi * exp / static_cast<double>(n);
      const cplx w(std::cos(ang), std::sin(ang));
      next[2 * i] = a + b;
      next[2 * i + 1] = (a - b) * w;
    }
    std::swap(cur, next);
  }
  return cur;
}

std::vector<cplx> pease_fft(const std::vector<cplx>& x) {
  const std::size_t n = x.size();
  const unsigned logn = ilog2(static_cast<std::uint32_t>(n));
  const std::vector<cplx> br = pease_fft_bitrev(x);
  std::vector<cplx> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = br[bit_reverse(static_cast<std::uint32_t>(i), logn)];
  }
  return out;
}

// --- fixed point ------------------------------------------------------------------

std::vector<CplxFx> pease_twiddles_fx(unsigned n, unsigned stage) {
  require_pow2(n, "pease_twiddles_fx");
  // Stage 0: W_n^i exactly. Later stages by the hardware recurrence
  // T_{s+1} = interleave(D, D) with D[m] = T_s[m]^2 (complex square in the
  // q.16 coefficient arithmetic of the RC ALU): the stage-s plane has runs
  // of 2^s equal twiddles, and squaring halves the angle resolution. This
  // is exactly what the VWR2A shuffle unit + RCs compute on chip, so the
  // golden model follows the same recurrence (a few-LSB drift relative to
  // rounded cosines, bounded by tests against the double-precision FFT).
  std::vector<CplxFx> w(n / 2);
  for (unsigned i = 0; i < n / 2; ++i) {
    const double ang = -2.0 * kPi * i / static_cast<double>(n);
    w[i].re = fx::to_coeff(std::cos(ang));
    w[i].im = fx::to_coeff(std::sin(ang));
  }
  for (unsigned s = 0; s < stage; ++s) {
    std::vector<CplxFx> next(n / 2);
    for (unsigned i = 0; i < n / 2; ++i) {
      const CplxFx t = w[i >> 1];
      CplxFx d;
      d.re = wsub(fx::fxp_mul(t.re, t.re), fx::fxp_mul(t.im, t.im));
      d.im = fx::fxp_mul(t.re, t.im);
      d.im = wadd(d.im, d.im);
      next[i] = d;
    }
    w = std::move(next);
  }
  return w;
}

std::vector<CplxFx> pease_stage_fx(const std::vector<CplxFx>& in,
                                   const std::vector<CplxFx>& twiddles) {
  const std::size_t n = in.size();
  require_pow2(n, "pease_stage_fx");
  if (twiddles.size() != n / 2) throw HostError("pease_stage_fx: bad twiddle count");
  std::vector<CplxFx> out(n);
  for (std::size_t i = 0; i < n / 2; ++i) {
    const CplxFx a = in[i];
    const CplxFx b = in[i + n / 2];
    CplxFx sum, diff;
    sum.re = wadd(a.re, b.re);
    sum.im = wadd(a.im, b.im);
    diff.re = wsub(a.re, b.re);
    diff.im = wsub(a.im, b.im);
    out[2 * i] = sum;
    out[2 * i + 1] = cmul_fx(diff, twiddles[i]);
  }
  return out;
}

std::vector<CplxFx> pease_fft_fx_bitrev(const std::vector<CplxFx>& x) {
  const std::size_t n = x.size();
  require_pow2(n, "pease_fft_fx");
  const unsigned stages = ilog2(static_cast<std::uint32_t>(n));
  std::vector<CplxFx> cur = x;
  for (unsigned s = 0; s < stages; ++s) {
    cur = pease_stage_fx(cur, pease_twiddles_fx(static_cast<unsigned>(n), s));
  }
  return cur;
}

std::vector<CplxFx> pease_fft_fx(const std::vector<CplxFx>& x) {
  const std::size_t n = x.size();
  const unsigned logn = ilog2(static_cast<std::uint32_t>(n));
  const std::vector<CplxFx> br = pease_fft_fx_bitrev(x);
  std::vector<CplxFx> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = br[bit_reverse(static_cast<std::uint32_t>(i), logn)];
  }
  return out;
}

std::vector<CplxFx> pease_ifft_fx(const std::vector<CplxFx>& x) {
  const std::size_t n = x.size();
  require_pow2(n, "pease_ifft_fx");
  const unsigned logn = ilog2(static_cast<std::uint32_t>(n));
  std::vector<CplxFx> xc(n);
  for (std::size_t i = 0; i < n; ++i) {
    xc[i].re = x[i].re;
    xc[i].im = wsub(0, x[i].im);
  }
  const std::vector<CplxFx> f = pease_fft_fx(xc);
  std::vector<CplxFx> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i].re = f[i].re >> logn;
    out[i].im = wsub(0, f[i].im) >> logn;
  }
  return out;
}

std::vector<CplxFx> rfft_fx(const std::vector<std::int32_t>& x) {
  const std::size_t n = x.size();
  require_pow2(n, "rfft_fx");
  if (n < 4) throw HostError("rfft_fx: size must be >= 4");
  const std::size_t h = n / 2;
  // Pack: z[k] = x[2k] + j x[2k+1].
  std::vector<CplxFx> z(h);
  for (std::size_t k = 0; k < h; ++k) {
    z[k].re = x[2 * k];
    z[k].im = x[2 * k + 1];
  }
  const std::vector<CplxFx> zf = pease_fft_fx(z);
  // Untangle: X[k] = E[k] + W_N^k O[k], where
  //   E[k] = (Z[k] + conj(Z[h-k])) / 2, O[k] = -j (Z[k] - conj(Z[h-k])) / 2.
  std::vector<CplxFx> out(h + 1);
  for (std::size_t k = 0; k <= h; ++k) {
    const CplxFx zk = (k == h) ? zf[0] : zf[k];
    const CplxFx zm = zf[(h - k) % h];
    CplxFx e, o;
    e.re = wadd(zk.re, zm.re) >> 1;
    e.im = wsub(zk.im, zm.im) >> 1;
    o.re = wadd(zk.im, zm.im) >> 1;
    o.im = wsub(zm.re, zk.re) >> 1;
    const double ang = -2.0 * kPi * static_cast<double>(k) / static_cast<double>(n);
    CplxFx w;
    w.re = fx::to_coeff(std::cos(ang));
    w.im = fx::to_coeff(std::sin(ang));
    const CplxFx wo = cmul_fx(o, w);
    out[k].re = wadd(e.re, wo.re);
    out[k].im = wadd(e.im, wo.im);
  }
  return out;
}

std::vector<cplx> rfft(const std::vector<double>& x) {
  const std::size_t n = x.size();
  require_pow2(n, "rfft");
  const std::size_t h = n / 2;
  std::vector<cplx> z(h);
  for (std::size_t k = 0; k < h; ++k) z[k] = cplx(x[2 * k], x[2 * k + 1]);
  const std::vector<cplx> zf = pease_fft(z);
  std::vector<cplx> out(h + 1);
  for (std::size_t k = 0; k <= h; ++k) {
    const cplx zk = (k == h) ? zf[0] : zf[k];
    const cplx zm = std::conj(zf[(h - k) % h]);
    const cplx e = 0.5 * (zk + zm);
    const cplx o = cplx(0, -0.5) * (zk - zm);
    const double ang = -2.0 * kPi * static_cast<double>(k) / static_cast<double>(n);
    out[k] = e + cplx(std::cos(ang), std::sin(ang)) * o;
  }
  return out;
}

// --- FIR --------------------------------------------------------------------------

std::vector<double> fir(const std::vector<double>& x, const std::vector<double>& h) {
  std::vector<double> y(x.size(), 0.0);
  for (std::size_t n = 0; n < x.size(); ++n) {
    double acc = 0.0;
    for (std::size_t t = 0; t < h.size(); ++t) {
      if (n >= t) acc += h[t] * x[n - t];
    }
    y[n] = acc;
  }
  return y;
}

std::vector<std::int32_t> fir_fx(const std::vector<std::int32_t>& x,
                                 const std::vector<std::int32_t>& h_q15) {
  std::vector<std::int32_t> y(x.size(), 0);
  for (std::size_t n = 0; n < x.size(); ++n) {
    std::int32_t acc = 0;
    for (std::size_t t = 0; t < h_q15.size(); ++t) {
      if (n >= t) acc = wadd(acc, fx::fxp_mul(x[n - t], h_q15[t]));
    }
    y[n] = acc;
  }
  return y;
}

// --- statistics --------------------------------------------------------------------

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double rms(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s / static_cast<double>(v.size()));
}

std::int32_t mean_i32(const std::vector<std::int32_t>& v) {
  if (v.empty()) return 0;
  std::int64_t s = 0;
  for (std::int32_t x : v) s += x;
  return static_cast<std::int32_t>(s / static_cast<std::int64_t>(v.size()));
}

std::int32_t rms_i32(const std::vector<std::int32_t>& v) {
  if (v.empty()) return 0;
  std::uint64_t s = 0;
  for (std::int32_t x : v) {
    s += static_cast<std::uint64_t>(static_cast<std::int64_t>(x) * x);
  }
  const double m = static_cast<double>(s) / static_cast<double>(v.size());
  return static_cast<std::int32_t>(std::floor(std::sqrt(m)));
}

std::int32_t energy_fx(const std::vector<std::int32_t>& v) {
  std::uint32_t acc = 0;
  for (std::int32_t x : v) {
    acc += static_cast<std::uint32_t>(fx::fxp_mul(x, x));
  }
  return static_cast<std::int32_t>(acc);
}

std::int32_t median_i32(const std::vector<std::int32_t>& v) {
  if (v.empty()) return 0;
  // The smallest m in v such that |{x <= m}| >= floor(n/2)+1 -- i.e., the
  // lower-middle order statistic, computable by bisection counting (which is
  // how the VWR2A kernel finds it).
  std::vector<std::int32_t> s = v;
  std::sort(s.begin(), s.end());
  return s[(s.size() - 1) / 2 + ((s.size() % 2) ? 0 : 1)];
}

// --- delineation ---------------------------------------------------------------------

namespace {

enum class Seek { kEither, kMax, kMin };

class Hysteresis {
 public:
  Hysteresis(std::int32_t first, std::int32_t threshold)
      : thr_(threshold), cand_max_(first), cand_min_(first) {}

  void feed(unsigned i, std::int32_t v, std::vector<Extremum>& out) {
    if (v > cand_max_) {
      cand_max_ = v;
      imax_ = i;
    }
    if (v < cand_min_) {
      cand_min_ = v;
      imin_ = i;
    }
    if (seek_ != Seek::kMin && cand_max_ - v > thr_) {
      out.push_back({imax_, true});
      seek_ = Seek::kMin;
      cand_min_ = v;
      imin_ = i;
    } else if (seek_ != Seek::kMax && v - cand_min_ > thr_) {
      out.push_back({imin_, false});
      seek_ = Seek::kMax;
      cand_max_ = v;
      imax_ = i;
    }
  }

 private:
  std::int32_t thr_;
  std::int32_t cand_max_;
  std::int32_t cand_min_;
  unsigned imax_ = 0;
  unsigned imin_ = 0;
  Seek seek_ = Seek::kEither;
};

} // namespace

std::vector<Extremum> delineate(const std::vector<std::int32_t>& x,
                                std::int32_t threshold) {
  std::vector<Extremum> out;
  if (x.empty()) return out;
  Hysteresis h(x[0], threshold);
  for (unsigned i = 1; i < x.size(); ++i) h.feed(i, x[i], out);
  return out;
}

std::vector<Extremum> delineate_candidates(const std::vector<std::int32_t>& x,
                                           std::int32_t threshold) {
  std::vector<Extremum> out;
  if (x.empty()) return out;
  Hysteresis h(x[0], threshold);
  for (unsigned i = 1; i < x.size(); ++i) {
    const std::int32_t prev = x[i - 1];
    const std::int32_t next = (i + 1 < x.size()) ? x[i + 1] : x[i];
    const bool cand_max = x[i] > prev && x[i] >= next;
    const bool cand_min = x[i] < prev && x[i] <= next;
    const bool last = (i + 1 == x.size());
    if (cand_max || cand_min || last) h.feed(i, x[i], out);
  }
  return out;
}

// --- SVM --------------------------------------------------------------------------

std::int32_t svm_decision_fx(const std::vector<std::int32_t>& features,
                             const std::vector<std::int32_t>& weights_q15,
                             std::int32_t bias_q15) {
  if (features.size() != weights_q15.size()) {
    throw HostError("svm_decision_fx: size mismatch");
  }
  std::int32_t acc = bias_q15;
  for (std::size_t i = 0; i < features.size(); ++i) {
    acc = wadd(acc, fx::fxp_mul(features[i], weights_q15[i]));
  }
  return acc >= 0 ? 1 : -1;
}

} // namespace vwr2a::dsp
