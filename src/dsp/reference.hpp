#pragma once
// Golden reference implementations used to validate every kernel in the
// repository: double-precision DFT/FFT, the constant-geometry (Pease-form)
// radix-2 FFT in both double and exact 16.15 fixed-point arithmetic (the
// latter mirrors the VWR2A datapath bit-for-bit), FIR filtering, statistics,
// the delineation detector, and a linear SVM.
//
// The constant-geometry form is central: its per-stage data reordering is
// the perfect shuffle, which is exactly the "words interleaving" operation
// of the VWR2A shuffle unit (paper Sec 3.4: "The shuffle unit applies the
// 'words interleaving' shuffling to create the correct data layout for the
// next stage"). Stage s of N-point CG-FFT applies butterflies to pairs
// (x[i], x[i+N/2]) with twiddle W_N^{2^s * (i >> s)} and writes the results
// interleaved: x'[2i] = a + b, x'[2i+1] = (a - b) * w. The output appears in
// bit-reversed order, which the paper fixes with the bit-reversal shuffle.

#include <complex>
#include <cstdint>
#include <vector>

#include "common/fixed_point.hpp"

namespace vwr2a::dsp {

using cplx = std::complex<double>;

// --- floating-point transforms ------------------------------------------------

/// O(N^2) direct DFT (the ultimate arbiter in property tests).
std::vector<cplx> dft(const std::vector<cplx>& x);

/// Iterative in-place radix-2 DIT FFT (natural-order input and output).
std::vector<cplx> fft_radix2(const std::vector<cplx>& x);

/// Constant-geometry (Pease) radix-2 DIF FFT; output in bit-reversed order.
/// N must be a power of two.
std::vector<cplx> pease_fft_bitrev(const std::vector<cplx>& x);

/// pease_fft_bitrev + bit-reversal reordering (natural-order output).
std::vector<cplx> pease_fft(const std::vector<cplx>& x);

// --- fixed-point (16.15) constant-geometry FFT --------------------------------
// Arithmetic matches the RC ALU exactly: 32-bit two's-complement wrap-around
// adds and the fixed-point multiply (64-bit product >> 16, truncating).

/// A 16.15 complex sample.
struct CplxFx {
  std::int32_t re = 0;
  std::int32_t im = 0;
  bool operator==(const CplxFx&) const = default;
};

/// Twiddle factors of stage s (N/2 entries): W_N^{2^s * (i >> s)}, converted
/// to 16.15. Used both by the golden model and by the VWR2A host driver to
/// populate the twiddle planes in system memory.
std::vector<CplxFx> pease_twiddles_fx(unsigned n, unsigned stage);

/// One constant-geometry stage in exact VWR2A arithmetic:
///   out[2i]   = a + b
///   out[2i+1] = (a - b) * w_s(i)   (16.15 truncating multiply)
/// with a = in[i], b = in[i + N/2].
std::vector<CplxFx> pease_stage_fx(const std::vector<CplxFx>& in,
                                   const std::vector<CplxFx>& twiddles);

/// Full N-point CG-FFT in 16.15; output bit-reversed.
std::vector<CplxFx> pease_fft_fx_bitrev(const std::vector<CplxFx>& x);

/// Full N-point CG-FFT in 16.15 with natural-order output.
std::vector<CplxFx> pease_fft_fx(const std::vector<CplxFx>& x);

/// Inverse FFT in exact VWR2A arithmetic: conj -> forward CG-FFT -> conj,
/// then an arithmetic shift by log2(N) (the 1/N scale). Matches the VWR2A
/// cifft kernel bit-for-bit.
std::vector<CplxFx> pease_ifft_fx(const std::vector<CplxFx>& x);

/// Real-input FFT via the N/2 complex trick (paper Sec 3.4), in exact 16.15
/// arithmetic. Input: N reals; output: N/2+1 spectrum bins (X[0]..X[N/2]).
/// The untangling weights e^{-2*pi*j*k/N} are 16.15 as well.
std::vector<CplxFx> rfft_fx(const std::vector<std::int32_t>& x);

/// Double-precision real FFT via the same algorithm (error reference).
std::vector<cplx> rfft(const std::vector<double>& x);

// --- FIR -----------------------------------------------------------------------

/// Direct-form FIR, double precision. y[n] = sum_t h[t] * x[n-t]; the first
/// taps-1 outputs use zero-padded history.
std::vector<double> fir(const std::vector<double>& x, const std::vector<double>& h);

/// Direct-form FIR in exact VWR2A arithmetic (16.15 coefficients, 32-bit
/// wrap adds, truncating fixed-point multiplies).
std::vector<std::int32_t> fir_fx(const std::vector<std::int32_t>& x,
                                 const std::vector<std::int32_t>& h_q15);

// --- statistics -----------------------------------------------------------------

double mean(const std::vector<double>& v);
double rms(const std::vector<double>& v);
/// Median with the lower-middle convention for even sizes (matches the
/// integer bisection kernels: the smallest m such that at least
/// floor(n/2)+1 elements are <= m).
std::int32_t median_i32(const std::vector<std::int32_t>& v);

/// Integer mean with truncating division (matches the kernels).
std::int32_t mean_i32(const std::vector<std::int32_t>& v);

/// Integer RMS: floor(sqrt(sum(x^2) / n)) on 64-bit accumulation.
std::int32_t rms_i32(const std::vector<std::int32_t>& v);

/// Signal energy in exact VWR2A arithmetic: 32-bit wrap-around sum of the
/// fixed-point squares fxp_mul(x, x) -- bit-for-bit what the sum-of-squares
/// reduction kernel accumulates across the RCs.
std::int32_t energy_fx(const std::vector<std::int32_t>& v);

// --- delineation ----------------------------------------------------------------

/// A detected extremum.
struct Extremum {
  unsigned index = 0;
  bool is_max = false;
  bool operator==(const Extremum&) const = default;
};

/// Threshold-hysteresis min/max delineation (the paper's Sec 4.4.2 step):
/// records an extremum when the signal retreats by more than `threshold`
/// from the running candidate, alternating max/min. Serial over all samples.
std::vector<Extremum> delineate(const std::vector<std::int32_t>& x,
                                std::int32_t threshold);

/// Candidate-compressed delineation: hysteresis applied only at local
/// extremum candidates. Produces identical output to delineate(); this is
/// the algorithm the VWR2A mapping vectorizes (tests assert the equality).
std::vector<Extremum> delineate_candidates(const std::vector<std::int32_t>& x,
                                           std::int32_t threshold);

// --- SVM ------------------------------------------------------------------------

/// Linear SVM decision: sign(w . f + b), in 16.15 arithmetic.
std::int32_t svm_decision_fx(const std::vector<std::int32_t>& features,
                             const std::vector<std::int32_t>& weights_q15,
                             std::int32_t bias_q15);

} // namespace vwr2a::dsp
