#include "dsp/signal.hpp"

#include <cmath>
#include <numbers>

#include "common/fixed_point.hpp"

namespace vwr2a::dsp {

namespace {
constexpr double kPi = std::numbers::pi;
}

std::vector<double> respiration(unsigned n, RespirationParams p, Rng& rng) {
  std::vector<double> out;
  out.reserve(n);
  double phase = rng.next_range(0.0, 2.0 * kPi);
  double freq = p.breath_hz;
  unsigned next_jitter = 0;
  for (unsigned i = 0; i < n; ++i) {
    if (i >= next_jitter) {
      // Re-draw the instantaneous breathing rate once per cycle.
      freq = p.breath_hz * (1.0 + p.breath_jitter * rng.next_gauss() * 0.5);
      if (freq < 0.05) freq = 0.05;
      next_jitter = i + static_cast<unsigned>(p.sample_hz / freq);
    }
    phase += 2.0 * kPi * freq / p.sample_hz;
    const double t = static_cast<double>(i) / p.sample_hz;
    double v = p.amplitude * std::sin(phase);
    v += p.amplitude * p.harmonic2 * std::sin(2.0 * phase + 0.7);
    v += p.amplitude * p.harmonic3 * std::sin(3.0 * phase + 1.9);
    v += p.baseline * std::sin(2.0 * kPi * p.baseline_hz * t);
    v += p.noise * rng.next_gauss();
    out.push_back(v);
  }
  return out;
}

std::vector<std::int32_t> respiration_q16_15(unsigned n, RespirationParams p,
                                             Rng& rng) {
  const std::vector<double> d = respiration(n, p, rng);
  std::vector<std::int32_t> out;
  out.reserve(n);
  for (double v : d) out.push_back(fx::to_q16_15(v));
  return out;
}

std::vector<double> multitone(unsigned n, unsigned tones, Rng& rng) {
  std::vector<double> out(n, 0.0);
  for (unsigned t = 0; t < tones; ++t) {
    const double f = rng.next_range(1.0, static_cast<double>(n) / 2.0 - 1.0);
    const double a = rng.next_range(0.05, 0.8 / static_cast<double>(tones));
    const double ph = rng.next_range(0.0, 2.0 * kPi);
    for (unsigned i = 0; i < n; ++i) {
      out[i] += a * std::sin(2.0 * kPi * f * static_cast<double>(i) /
                                 static_cast<double>(n) +
                             ph);
    }
  }
  return out;
}

std::vector<std::int32_t> fir11_lowpass_q15() {
  // Hamming-windowed sinc, fc = 0.1 * fs, 11 taps, normalized to unit DC
  // gain, in q15 (16.15-compatible: the multiplier sees q15 coefficients).
  static const std::vector<std::int32_t> taps = [] {
    std::vector<double> h(11);
    double sum = 0.0;
    for (int i = 0; i < 11; ++i) {
      const double m = static_cast<double>(i) - 5.0;
      const double fc = 0.1;
      const double sinc = (m == 0.0) ? 2.0 * fc
                                     : std::sin(2.0 * kPi * fc * m) / (kPi * m);
      const double w = 0.54 - 0.46 * std::cos(2.0 * kPi * i / 10.0);
      h[static_cast<std::size_t>(i)] = sinc * w;
      sum += h[static_cast<std::size_t>(i)];
    }
    std::vector<std::int32_t> q(11);
    for (int i = 0; i < 11; ++i) {
      q[static_cast<std::size_t>(i)] = fx::to_coeff(h[static_cast<std::size_t>(i)] / sum);
    }
    return q;
  }();
  return taps;
}

} // namespace vwr2a::dsp
