#pragma once
// Synthetic biosignal generation. The paper evaluates on the MBioTracker
// cognitive-workload application fed by a respiration belt (Sec 4.4.2); the
// recordings are not public, so the reproduction generates a respiration-
// like waveform: a slow breathing fundamental with harmonics, baseline
// wander, and measurement noise. The waveform exercises the same code paths
// (FIR preprocessing, extrema delineation, time/frequency features, SVM).

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace vwr2a::dsp {

/// Parameters of the synthetic respiration generator.
struct RespirationParams {
  double sample_hz = 32.0;        ///< respiration-belt sampling rate
  double breath_hz = 0.25;        ///< ~15 breaths/minute fundamental
  double amplitude = 0.45;        ///< fundamental amplitude (full scale 1.0)
  double harmonic2 = 0.18;        ///< 2nd-harmonic fraction
  double harmonic3 = 0.07;        ///< 3rd-harmonic fraction
  double baseline_hz = 0.03;      ///< baseline-wander frequency
  double baseline = 0.10;         ///< baseline-wander amplitude
  double noise = 0.02;            ///< white-noise sigma
  double breath_jitter = 0.08;    ///< cycle-to-cycle period jitter fraction
};

/// Generates n samples as doubles in roughly [-1, 1].
std::vector<double> respiration(unsigned n, RespirationParams p, Rng& rng);

/// Generates n samples in 16.15 fixed point.
std::vector<std::int32_t> respiration_q16_15(unsigned n, RespirationParams p,
                                             Rng& rng);

/// A deterministic multi-tone test vector (doubles in [-1, 1]): sum of
/// `tones` sinusoids at incommensurate frequencies. Used by FFT tests.
std::vector<double> multitone(unsigned n, unsigned tones, Rng& rng);

/// 11-tap symmetric low-pass FIR used as the preprocessing filter (q15
/// coefficients summing to ~1.0). A Hamming-windowed sinc at 0.1 of the
/// sample rate -- a typical respiration-band smoother.
std::vector<std::int32_t> fir11_lowpass_q15();

} // namespace vwr2a::dsp
