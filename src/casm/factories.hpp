#pragma once
// Readable factory helpers for decoded instructions, used by the kernel
// generators. Each returns a validated instruction struct; encoding happens
// in ProgramBuilder::build().

#include "isa/instr.hpp"

namespace vwr2a::casm {

using isa::LcuInstr;
using isa::LcuOp;
using isa::LsuInstr;
using isa::LsuOp;
using isa::MxcuInstr;
using isa::MxcuOp;
using isa::RcDst;
using isa::RcInstr;
using isa::RcOp;
using isa::RcSrc;
using isa::ShufMode;

// --- RC ----------------------------------------------------------------------

/// Generic binary RC operation.
inline RcInstr rc_op(RcOp op, RcDst dst, RcSrc a, RcSrc b, std::uint8_t srf = 0,
                     std::int8_t imm = 0) {
  RcInstr i;
  i.op = op;
  i.dst = dst;
  i.src_a = a;
  i.src_b = b;
  i.srf = srf;
  i.imm = imm;
  return i;
}

inline RcInstr rc_nop() { return RcInstr{}; }

inline RcInstr rc_add(RcDst d, RcSrc a, RcSrc b, std::uint8_t srf = 0,
                      std::int8_t imm = 0) {
  return rc_op(RcOp::kSadd, d, a, b, srf, imm);
}
inline RcInstr rc_sub(RcDst d, RcSrc a, RcSrc b, std::uint8_t srf = 0,
                      std::int8_t imm = 0) {
  return rc_op(RcOp::kSsub, d, a, b, srf, imm);
}
inline RcInstr rc_mul(RcDst d, RcSrc a, RcSrc b, std::uint8_t srf = 0,
                      std::int8_t imm = 0) {
  return rc_op(RcOp::kSmul, d, a, b, srf, imm);
}
/// Fixed-point 16.15 multiply (paper Sec 3.1).
inline RcInstr rc_fxpmul(RcDst d, RcSrc a, RcSrc b, std::uint8_t srf = 0,
                         std::int8_t imm = 0) {
  return rc_op(RcOp::kFxpMul, d, a, b, srf, imm);
}
inline RcInstr rc_mv(RcDst d, RcSrc a, std::uint8_t srf = 0, std::int8_t imm = 0) {
  return rc_op(RcOp::kMv, d, a, RcSrc::kZero, srf, imm);
}
inline RcInstr rc_max(RcDst d, RcSrc a, RcSrc b, std::uint8_t srf = 0) {
  return rc_op(RcOp::kMax, d, a, b, srf);
}
inline RcInstr rc_min(RcDst d, RcSrc a, RcSrc b, std::uint8_t srf = 0) {
  return rc_op(RcOp::kMin, d, a, b, srf);
}
inline RcInstr rc_cmplt(RcDst d, RcSrc a, RcSrc b, std::uint8_t srf = 0,
                        std::int8_t imm = 0) {
  return rc_op(RcOp::kCmpLt, d, a, b, srf, imm);
}
inline RcInstr rc_sra(RcDst d, RcSrc a, RcSrc b, std::uint8_t srf = 0,
                      std::int8_t imm = 0) {
  return rc_op(RcOp::kSra, d, a, b, srf, imm);
}

// --- LSU ----------------------------------------------------------------------

inline LsuInstr lsu_nop() { return LsuInstr{}; }

/// VWR[v] = SPM.row[row].
inline LsuInstr lsu_ld_vwr(VwrSel v, unsigned row) {
  LsuInstr i;
  i.op = LsuOp::kLdVwr;
  i.vwr = v;
  i.imm = static_cast<std::uint16_t>(row);
  return i;
}
/// VWR[v] = SPM.row[SRF[base] + offset].
inline LsuInstr lsu_ld_vwr_srf(VwrSel v, std::uint8_t base, int offset = 0) {
  LsuInstr i;
  i.op = LsuOp::kLdVwr;
  i.vwr = v;
  i.amode = isa::LsuAddrMode::kSrfImm;
  i.srf_base = base;
  i.imm = static_cast<std::int16_t>(offset);
  return i;
}
/// SPM.row[row] = VWR[v].
inline LsuInstr lsu_st_vwr(VwrSel v, unsigned row) {
  LsuInstr i;
  i.op = LsuOp::kStVwr;
  i.vwr = v;
  i.imm = static_cast<std::uint16_t>(row);
  return i;
}
/// SPM.row[SRF[base] + offset] = VWR[v].
inline LsuInstr lsu_st_vwr_srf(VwrSel v, std::uint8_t base, int offset = 0) {
  LsuInstr i;
  i.op = LsuOp::kStVwr;
  i.vwr = v;
  i.amode = isa::LsuAddrMode::kSrfImm;
  i.srf_base = base;
  i.imm = static_cast<std::int16_t>(offset);
  return i;
}
/// SRF[data] = SPM.word[word].
inline LsuInstr lsu_ld_srf(std::uint8_t data, unsigned word) {
  LsuInstr i;
  i.op = LsuOp::kLdSrf;
  i.srf_data = data;
  i.imm = static_cast<std::int16_t>(word);
  return i;
}
/// SRF[data] = SPM.word[SRF[base] + offset].
inline LsuInstr lsu_ld_srf_srf(std::uint8_t data, std::uint8_t base,
                               int offset = 0) {
  LsuInstr i;
  i.op = LsuOp::kLdSrf;
  i.srf_data = data;
  i.amode = isa::LsuAddrMode::kSrfImm;
  i.srf_base = base;
  i.imm = static_cast<std::int16_t>(offset);
  return i;
}
/// SPM.word[word] = SRF[data].
inline LsuInstr lsu_st_srf(std::uint8_t data, unsigned word) {
  LsuInstr i;
  i.op = LsuOp::kStSrf;
  i.srf_data = data;
  i.imm = static_cast<std::int16_t>(word);
  return i;
}
/// SRF[data] = SPM.word[Pp], with post-increment by stride.
inline LsuInstr lsu_ld_srf_ptr(std::uint8_t data, unsigned p, int stride) {
  LsuInstr i;
  i.op = LsuOp::kLdSrf;
  i.srf_data = data;
  i.amode = p == 0 ? isa::LsuAddrMode::kPtr0Post : isa::LsuAddrMode::kPtr1Post;
  i.imm = static_cast<std::int16_t>(stride);
  return i;
}
/// SPM.word[Pp] = SRF[data], with post-increment by stride.
inline LsuInstr lsu_st_srf_ptr(std::uint8_t data, unsigned p, int stride) {
  LsuInstr i;
  i.op = LsuOp::kStSrf;
  i.srf_data = data;
  i.amode = p == 0 ? isa::LsuAddrMode::kPtr0Post : isa::LsuAddrMode::kPtr1Post;
  i.imm = static_cast<std::int16_t>(stride);
  return i;
}
/// Pp = SRF[base] + offset.
inline LsuInstr lsu_setptr(unsigned p, std::uint8_t base, int offset = 0) {
  LsuInstr i;
  i.op = LsuOp::kSetPtr;
  i.vwr = p == 0 ? VwrSel::A : VwrSel::B;
  i.srf_base = base;
  i.imm = static_cast<std::int16_t>(offset);
  return i;
}
/// VWR C = shuffle(VWR A, VWR B, mode).
inline LsuInstr lsu_shuf(ShufMode mode) {
  LsuInstr i;
  i.op = LsuOp::kShuf;
  i.mode = mode;
  return i;
}

// --- MXCU ----------------------------------------------------------------------

inline MxcuInstr mxcu_nop() { return MxcuInstr{}; }

inline MxcuInstr mxcu_set_idx(int idx) {
  MxcuInstr i;
  i.op = MxcuOp::kSetIdx;
  i.imm = static_cast<std::int16_t>(idx);
  return i;
}
inline MxcuInstr mxcu_add_idx(int delta) {
  MxcuInstr i;
  i.op = MxcuOp::kAddIdx;
  i.imm = static_cast<std::int16_t>(delta);
  return i;
}
inline MxcuInstr mxcu_set_idx_srf(std::uint8_t srf) {
  MxcuInstr i;
  i.op = MxcuOp::kSetIdxSrf;
  i.srf = srf;
  return i;
}
inline MxcuInstr mxcu_and_idx_srf(std::uint8_t srf) {
  MxcuInstr i;
  i.op = MxcuOp::kAndIdxSrf;
  i.srf = srf;
  return i;
}

// --- LCU ----------------------------------------------------------------------

inline LcuInstr lcu_nop() { return LcuInstr{}; }

inline LcuInstr lcu_set(std::uint8_t rd, int imm) {
  LcuInstr i;
  i.op = LcuOp::kSetI;
  i.rd = rd;
  i.imm = static_cast<std::int16_t>(imm);
  return i;
}
inline LcuInstr lcu_add(std::uint8_t rd, int imm) {
  LcuInstr i;
  i.op = LcuOp::kAddI;
  i.rd = rd;
  i.imm = static_cast<std::int16_t>(imm);
  return i;
}
inline LcuInstr lcu_mvr(std::uint8_t rd, std::uint8_t ra) {
  LcuInstr i;
  i.op = LcuOp::kMvR;
  i.rd = rd;
  i.ra = ra;
  return i;
}
inline LcuInstr lcu_addr(std::uint8_t rd, std::uint8_t ra) {
  LcuInstr i;
  i.op = LcuOp::kAddR;
  i.rd = rd;
  i.ra = ra;
  return i;
}
inline LcuInstr lcu_subr(std::uint8_t rd, std::uint8_t ra) {
  LcuInstr i;
  i.op = LcuOp::kSubR;
  i.rd = rd;
  i.ra = ra;
  return i;
}
inline LcuInstr lcu_mv_srf(std::uint8_t rd, std::uint8_t srf) {
  LcuInstr i;
  i.op = LcuOp::kMvSrf;
  i.rd = rd;
  i.srf = srf;
  return i;
}
inline LcuInstr lcu_st_srf(std::uint8_t srf, std::uint8_t ra) {
  LcuInstr i;
  i.op = LcuOp::kStSrf;
  i.srf = srf;
  i.ra = ra;
  return i;
}
/// Unconditional branch (target patched from a label).
inline LcuInstr lcu_b() {
  LcuInstr i;
  i.op = LcuOp::kB;
  return i;
}
inline LcuInstr lcu_blt(std::uint8_t ra, std::uint8_t rb) {
  LcuInstr i;
  i.op = LcuOp::kBlt;
  i.ra = ra;
  i.rb = rb;
  return i;
}
inline LcuInstr lcu_bge(std::uint8_t ra, std::uint8_t rb) {
  LcuInstr i;
  i.op = LcuOp::kBge;
  i.ra = ra;
  i.rb = rb;
  return i;
}
inline LcuInstr lcu_bne(std::uint8_t ra, std::uint8_t rb) {
  LcuInstr i;
  i.op = LcuOp::kBne;
  i.ra = ra;
  i.rb = rb;
  return i;
}
inline LcuInstr lcu_beq_imm(std::uint8_t ra, int imm) {
  LcuInstr i;
  i.op = LcuOp::kBeqI;
  i.ra = ra;
  i.imm = static_cast<std::int16_t>(imm);
  return i;
}
inline LcuInstr lcu_blt_imm(std::uint8_t ra, int imm) {
  LcuInstr i;
  i.op = LcuOp::kBltI;
  i.ra = ra;
  i.imm = static_cast<std::int16_t>(imm);
  return i;
}
inline LcuInstr lcu_bne_imm(std::uint8_t ra, int imm) {
  LcuInstr i;
  i.op = LcuOp::kBneI;
  i.ra = ra;
  i.imm = static_cast<std::int16_t>(imm);
  return i;
}
inline LcuInstr lcu_bge_imm(std::uint8_t ra, int imm) {
  LcuInstr i;
  i.op = LcuOp::kBgeI;
  i.ra = ra;
  i.imm = static_cast<std::int16_t>(imm);
  return i;
}
inline LcuInstr lcu_bsrfz(std::uint8_t srf) {
  LcuInstr i;
  i.op = LcuOp::kBsrfZ;
  i.srf = srf;
  return i;
}
inline LcuInstr lcu_bsrfnz(std::uint8_t srf) {
  LcuInstr i;
  i.op = LcuOp::kBsrfNz;
  i.srf = srf;
  return i;
}
/// Hardware loop: rd -= 1; branch to the label while rd != 0.
inline LcuInstr lcu_dbnz(std::uint8_t rd) {
  LcuInstr i;
  i.op = LcuOp::kDbnz;
  i.rd = rd;
  return i;
}
inline LcuInstr lcu_exit() {
  LcuInstr i;
  i.op = LcuOp::kExit;
  return i;
}

} // namespace vwr2a::casm
