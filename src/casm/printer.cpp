#include <sstream>

#include "casm/text.hpp"
#include "isa/instr.hpp"

namespace vwr2a::casm {

std::string to_text(const isa::ColumnProgram& prog) {
  std::ostringstream os;
  for (unsigned pc = 0; pc < prog.length(); ++pc) {
    os << "@" << pc << ": ";
    os << "lcu: " << isa::to_asm(isa::decode_lcu(prog.word(Slot::LCU, pc)));
    os << " | lsu: " << isa::to_asm(isa::decode_lsu(prog.word(Slot::LSU, pc)));
    os << " | mxcu: " << isa::to_asm(isa::decode_mxcu(prog.word(Slot::MXCU, pc)));
    for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) {
      os << " | rc" << r << ": "
         << isa::to_asm(isa::decode_rc(prog.word(rc_slot(r), pc)));
    }
    os << "\n";
  }
  return os.str();
}

} // namespace vwr2a::casm
