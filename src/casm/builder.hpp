#pragma once
// Programmatic kernel assembler. The paper maps kernels manually (Sec 2:
// "We have currently mapped the code manually on VWR2A"); this builder is
// the reproduction's equivalent of that manual mapping: kernel generators
// emit one VLIW line per cycle (7 slots) with labels for the LCU branches,
// and the builder resolves targets and enforces the 64-word program memory.

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "isa/instr.hpp"
#include "isa/program.hpp"

namespace vwr2a::casm {

/// A forward-referenceable program location.
class Label {
 public:
  Label() = default;

 private:
  friend class ProgramBuilder;
  explicit Label(unsigned id) : id_(id) {}
  unsigned id_ = ~0u;
};

/// Builds one column's program line by line.
///
///   ProgramBuilder pb;
///   Label loop = pb.make_label();
///   pb.bind(loop);
///   pb.line().rc_all(rc_add(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kVwrB))
///            .mxcu(mxcu_add_idx(1))
///            .lcu(lcu_blt(0, 1, loop))
///            .emit();
///   pb.line().lcu(lcu_exit()).emit();
///   isa::ColumnProgram prog = pb.build();
class ProgramBuilder {
 public:
  /// Fluent one-line (one-cycle) builder. Unset slots stay NOP.
  class LineBuilder {
   public:
    LineBuilder& lcu(const isa::LcuInstr& i) {
      lcu_ = i;
      return *this;
    }
    /// LCU branch whose target is a label (resolved at build()).
    LineBuilder& lcu(const isa::LcuInstr& i, Label target) {
      lcu_ = i;
      label_ = target;
      return *this;
    }
    LineBuilder& lsu(const isa::LsuInstr& i) {
      lsu_ = i;
      return *this;
    }
    LineBuilder& mxcu(const isa::MxcuInstr& i) {
      mxcu_ = i;
      return *this;
    }
    LineBuilder& rc(unsigned r, const isa::RcInstr& i) {
      if (r >= arch::kRcsPerColumn) throw AsmError("LineBuilder: bad RC row");
      rc_[r] = i;
      return *this;
    }
    /// Broadcasts the same instruction to all four RCs.
    LineBuilder& rc_all(const isa::RcInstr& i) {
      rc_.fill(i);
      return *this;
    }
    /// Commits the line to the program.
    ProgramBuilder& emit();

   private:
    friend class ProgramBuilder;
    explicit LineBuilder(ProgramBuilder& pb) : pb_(&pb) {}
    ProgramBuilder* pb_;
    isa::LcuInstr lcu_{};
    isa::LsuInstr lsu_{};
    isa::MxcuInstr mxcu_{};
    std::array<isa::RcInstr, arch::kRcsPerColumn> rc_{};
    std::optional<Label> label_;
  };

  /// Starts a new line.
  LineBuilder line() { return LineBuilder(*this); }

  /// Creates an unbound label.
  Label make_label() {
    labels_.push_back(kUnbound);
    return Label(static_cast<unsigned>(labels_.size() - 1));
  }

  /// Binds a label to the *next* emitted line.
  void bind(Label l) {
    check_label(l);
    if (labels_[l.id_] != kUnbound) throw AsmError("Label bound twice");
    labels_[l.id_] = static_cast<unsigned>(lines_.size());
  }

  /// Lines emitted so far.
  unsigned size() const { return static_cast<unsigned>(lines_.size()); }

  /// Resolves labels, encodes, and returns the program. Throws AsmError on
  /// unbound labels or programs longer than the 64-word program memory.
  isa::ColumnProgram build() const;

 private:
  friend class LineBuilder;
  static constexpr unsigned kUnbound = ~0u;

  struct PendingLine {
    isa::LcuInstr lcu;
    isa::LsuInstr lsu;
    isa::MxcuInstr mxcu;
    std::array<isa::RcInstr, arch::kRcsPerColumn> rc;
    std::optional<unsigned> label_id;
  };

  void check_label(Label l) const {
    if (l.id_ >= labels_.size()) throw AsmError("Unknown label");
  }

  std::vector<PendingLine> lines_;
  std::vector<unsigned> labels_;
};

/// Wraps one program as a single-column kernel image.
isa::KernelImage make_kernel(std::string name, unsigned column,
                             const isa::ColumnProgram& prog);

/// Wraps per-column programs as a synchronized two-column kernel image.
/// The two programs must have equal length (shared PC).
isa::KernelImage make_kernel2(std::string name, const isa::ColumnProgram& col0,
                              const isa::ColumnProgram& col1);

} // namespace vwr2a::casm
