#include "casm/builder.hpp"

namespace vwr2a::casm {

ProgramBuilder& ProgramBuilder::LineBuilder::emit() {
  ProgramBuilder::PendingLine pl;
  pl.lcu = lcu_;
  pl.lsu = lsu_;
  pl.mxcu = mxcu_;
  pl.rc = rc_;
  if (label_) {
    pb_->check_label(*label_);
    pl.label_id = label_->id_;
  }
  pb_->lines_.push_back(pl);
  return *pb_;
}

isa::ColumnProgram ProgramBuilder::build() const {
  if (lines_.size() > arch::kProgramWords) {
    throw AsmError("ProgramBuilder: program exceeds 64-word program memory (" +
                   std::to_string(lines_.size()) + " lines)");
  }
  isa::ColumnProgram prog;
  for (const PendingLine& pl : lines_) {
    isa::LcuInstr lcu = pl.lcu;
    if (pl.label_id) {
      const unsigned addr = labels_[*pl.label_id];
      if (addr == kUnbound) throw AsmError("ProgramBuilder: unbound label");
      lcu.target = static_cast<std::uint8_t>(addr);
    }
    std::array<std::uint32_t, arch::kSlotsPerColumn> line{};
    line[slot_index(Slot::LCU)] = isa::encode(lcu);
    line[slot_index(Slot::LSU)] = isa::encode(pl.lsu);
    line[slot_index(Slot::MXCU)] = isa::encode(pl.mxcu);
    for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) {
      line[slot_index(rc_slot(r))] = isa::encode(pl.rc[r]);
    }
    prog.append_line(line);
  }
  return prog;
}

isa::KernelImage make_kernel(std::string name, unsigned column,
                             const isa::ColumnProgram& prog) {
  if (column >= arch::kNumColumns) throw AsmError("make_kernel: bad column");
  isa::KernelImage img;
  img.name = std::move(name);
  img.columns = column == 0 ? isa::ColumnSet::kCol0 : isa::ColumnSet::kCol1;
  img.program[column] = prog;
  return img;
}

isa::KernelImage make_kernel2(std::string name, const isa::ColumnProgram& col0,
                              const isa::ColumnProgram& col1) {
  if (col0.length() != col1.length()) {
    throw AsmError("make_kernel2: column programs must have equal length "
                   "(shared synchronized PC)");
  }
  isa::KernelImage img;
  img.name = std::move(name);
  img.columns = isa::ColumnSet::kBoth;
  img.program[0] = col0;
  img.program[1] = col1;
  return img;
}

} // namespace vwr2a::casm
