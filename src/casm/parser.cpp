#include <array>
#include <cctype>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "casm/text.hpp"
#include "common/status.hpp"
#include "isa/instr.hpp"

namespace vwr2a::casm {

namespace {

using isa::LcuInstr;
using isa::LcuOp;
using isa::LsuInstr;
using isa::LsuOp;
using isa::MxcuInstr;
using isa::MxcuOp;
using isa::RcDst;
using isa::RcInstr;
using isa::RcOp;
using isa::RcSrc;
using isa::ShufMode;

[[noreturn]] void fail(unsigned line_no, const std::string& msg) {
  throw AsmError("asm parse: line " + std::to_string(line_no) + ": " + msg);
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(trim(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(trim(cur));
  return out;
}

/// Splits "op arg1, arg2" into op token and comma-separated args.
std::pair<std::string, std::vector<std::string>> op_args(const std::string& s,
                                                         unsigned line_no) {
  const std::string t = trim(s);
  if (t.empty()) fail(line_no, "empty instruction");
  const std::size_t sp = t.find_first_of(" \t");
  if (sp == std::string::npos) return {t, {}};
  const std::string op = t.substr(0, sp);
  auto args = split(t.substr(sp + 1), ',');
  if (args.size() == 1 && args[0].empty()) args.clear();
  return {op, args};
}

int parse_int(const std::string& s, unsigned line_no) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(s, &pos, 0);
    if (pos != s.size()) fail(line_no, "bad integer '" + s + "'");
    return v;
  } catch (const std::exception&) {
    fail(line_no, "bad integer '" + s + "'");
  }
}

int parse_imm(const std::string& s, unsigned line_no) {
  if (s.empty() || s[0] != '#') fail(line_no, "expected #imm, got '" + s + "'");
  return parse_int(s.substr(1), line_no);
}

bool parse_srf(const std::string& s, std::uint8_t& idx) {
  if (s.size() == 4 && s.compare(0, 3, "srf") == 0 && std::isdigit(s[3])) {
    idx = static_cast<std::uint8_t>(s[3] - '0');
    return true;
  }
  return false;
}

unsigned parse_target(const std::string& s, unsigned line_no) {
  if (s.empty() || s[0] != '@') fail(line_no, "expected @target, got '" + s + "'");
  return static_cast<unsigned>(parse_int(s.substr(1), line_no));
}

std::uint8_t parse_lcu_reg(const std::string& s, unsigned line_no) {
  if (s.size() == 2 && s[0] == 'r' && std::isdigit(s[1])) {
    return static_cast<std::uint8_t>(s[1] - '0');
  }
  fail(line_no, "expected LCU register, got '" + s + "'");
}

// ---------------------------------------------------------------------------
// RC
// ---------------------------------------------------------------------------

const std::map<std::string, RcOp>& rc_ops() {
  static const std::map<std::string, RcOp> m = {
      {"nop", RcOp::kNop},     {"sadd", RcOp::kSadd},  {"ssub", RcOp::kSsub},
      {"smul", RcOp::kSmul},   {"fxpmul", RcOp::kFxpMul}, {"sll", RcOp::kSll},
      {"srl", RcOp::kSrl},     {"sra", RcOp::kSra},    {"land", RcOp::kLand},
      {"lor", RcOp::kLor},     {"lxor", RcOp::kLxor},  {"lnot", RcOp::kLnot},
      {"mv", RcOp::kMv},       {"cmpeq", RcOp::kCmpEq}, {"cmplt", RcOp::kCmpLt},
      {"cmple", RcOp::kCmpLe}, {"max", RcOp::kMax},    {"min", RcOp::kMin},
      {"abs", RcOp::kAbs},
  };
  return m;
}

bool rc_unary(RcOp op) {
  return op == RcOp::kLnot || op == RcOp::kMv || op == RcOp::kAbs;
}

RcSrc parse_rc_src(const std::string& s, RcInstr& instr, bool& srf_set,
                   unsigned line_no) {
  static const std::map<std::string, RcSrc> plain = {
      {"zero", RcSrc::kZero}, {"one", RcSrc::kOne},   {"r0", RcSrc::kR0},
      {"r1", RcSrc::kR1},     {"vwra", RcSrc::kVwrA}, {"vwrb", RcSrc::kVwrB},
      {"vwrc", RcSrc::kVwrC}, {"rcu", RcSrc::kRcUp},  {"rcd", RcSrc::kRcDown},
      {"rcx", RcSrc::kRcCross},
  };
  if (auto it = plain.find(s); it != plain.end()) return it->second;
  std::uint8_t srf = 0;
  if (parse_srf(s, srf)) {
    if (srf_set && instr.srf != srf) {
      fail(line_no, "RC instruction uses two different SRF entries");
    }
    instr.srf = srf;
    srf_set = true;
    return RcSrc::kSrf;
  }
  if (!s.empty() && s[0] == '#') {
    instr.imm = static_cast<std::int8_t>(parse_imm(s, line_no));
    return RcSrc::kImm;
  }
  fail(line_no, "bad RC source '" + s + "'");
}

RcDst parse_rc_dst(const std::string& s, RcInstr& instr, bool& srf_set,
                   unsigned line_no) {
  static const std::map<std::string, RcDst> plain = {
      {"none", RcDst::kNone}, {"r0", RcDst::kR0},     {"r1", RcDst::kR1},
      {"vwra", RcDst::kVwrA}, {"vwrb", RcDst::kVwrB}, {"vwrc", RcDst::kVwrC},
  };
  if (auto it = plain.find(s); it != plain.end()) return it->second;
  std::uint8_t srf = 0;
  if (parse_srf(s, srf)) {
    if (srf_set && instr.srf != srf) {
      fail(line_no, "RC instruction uses two different SRF entries");
    }
    instr.srf = srf;
    srf_set = true;
    return RcDst::kSrf;
  }
  fail(line_no, "bad RC destination '" + s + "'");
}

RcInstr parse_rc(const std::string& text, unsigned line_no) {
  auto [op, args] = op_args(text, line_no);
  RcInstr instr;
  auto it = rc_ops().find(op);
  if (it == rc_ops().end()) fail(line_no, "unknown RC op '" + op + "'");
  instr.op = it->second;
  if (instr.op == RcOp::kNop) return instr;
  const unsigned want = rc_unary(instr.op) ? 2 : 3;
  if (args.size() != want) {
    fail(line_no, "RC op '" + op + "' expects " + std::to_string(want) +
                      " operands");
  }
  bool srf_set = false;
  instr.dst = parse_rc_dst(args[0], instr, srf_set, line_no);
  instr.src_a = parse_rc_src(args[1], instr, srf_set, line_no);
  if (!rc_unary(instr.op)) {
    instr.src_b = parse_rc_src(args[2], instr, srf_set, line_no);
  }
  return instr;
}

// ---------------------------------------------------------------------------
// LSU
// ---------------------------------------------------------------------------

/// Parses "[12]", "[srf3+4]", or "[p0+=2]" into the LSU address fields.
void parse_lsu_addr(const std::string& s, LsuInstr& instr, unsigned line_no) {
  if (s.size() < 3 || s.front() != '[' || s.back() != ']') {
    fail(line_no, "expected [addr], got '" + s + "'");
  }
  const std::string body = trim(s.substr(1, s.size() - 2));
  std::uint8_t srf = 0;
  if (body.size() >= 5 && body[0] == 'p' && (body[1] == '0' || body[1] == '1') &&
      body.compare(2, 2, "+=") == 0) {
    instr.amode = body[1] == '0' ? isa::LsuAddrMode::kPtr0Post
                                 : isa::LsuAddrMode::kPtr1Post;
    instr.imm = static_cast<std::int16_t>(parse_int(trim(body.substr(4)), line_no));
    return;
  }
  const std::size_t plus = body.find('+');
  if (plus != std::string::npos && parse_srf(trim(body.substr(0, plus)), srf)) {
    instr.amode = isa::LsuAddrMode::kSrfImm;
    instr.srf_base = srf;
    instr.imm = static_cast<std::int16_t>(parse_int(trim(body.substr(plus + 1)),
                                                    line_no));
  } else if (parse_srf(body, srf)) {
    instr.amode = isa::LsuAddrMode::kSrfImm;
    instr.srf_base = srf;
    instr.imm = 0;
  } else {
    instr.imm = static_cast<std::int16_t>(parse_int(body, line_no));
  }
}

const std::map<std::string, ShufMode>& shuf_modes() {
  static const std::map<std::string, ShufMode> m = {
      {"il.lo", ShufMode::kInterleaveLo}, {"il.hi", ShufMode::kInterleaveHi},
      {"even", ShufMode::kEvenPrune},     {"odd", ShufMode::kOddPrune},
      {"brev.lo", ShufMode::kBitRevLo},   {"brev.hi", ShufMode::kBitRevHi},
      {"cshift.lo", ShufMode::kCircShiftLo},
      {"cshift.hi", ShufMode::kCircShiftHi},
  };
  return m;
}

LsuInstr parse_lsu(const std::string& text, unsigned line_no) {
  auto [op, args] = op_args(text, line_no);
  LsuInstr instr;
  if (op == "nop") return instr;
  if (op == "ld.vwr" || op == "st.vwr") {
    instr.op = op == "ld.vwr" ? LsuOp::kLdVwr : LsuOp::kStVwr;
    if (args.size() != 2) fail(line_no, "'" + op + "' expects VWR, [addr]");
    if (args[0] == "A") instr.vwr = VwrSel::A;
    else if (args[0] == "B") instr.vwr = VwrSel::B;
    else if (args[0] == "C") instr.vwr = VwrSel::C;
    else fail(line_no, "bad VWR select '" + args[0] + "'");
    parse_lsu_addr(args[1], instr, line_no);
    return instr;
  }
  if (op == "ld.srf" || op == "st.srf") {
    instr.op = op == "ld.srf" ? LsuOp::kLdSrf : LsuOp::kStSrf;
    if (args.size() != 2) fail(line_no, "'" + op + "' expects srfN, [addr]");
    std::uint8_t srf = 0;
    if (!parse_srf(args[0], srf)) fail(line_no, "bad SRF '" + args[0] + "'");
    instr.srf_data = srf;
    parse_lsu_addr(args[1], instr, line_no);
    return instr;
  }
  if (op == "shuf") {
    instr.op = LsuOp::kShuf;
    if (args.size() != 1) fail(line_no, "'shuf' expects a mode");
    auto it = shuf_modes().find(args[0]);
    if (it == shuf_modes().end()) fail(line_no, "bad shuffle mode '" + args[0] + "'");
    instr.mode = it->second;
    return instr;
  }
  if (op == "setptr") {
    instr.op = LsuOp::kSetPtr;
    if (args.size() != 3) fail(line_no, "'setptr' expects pN, srfN, #imm");
    if (args[0] == "p0") instr.vwr = VwrSel::A;
    else if (args[0] == "p1") instr.vwr = VwrSel::B;
    else fail(line_no, "bad pointer '" + args[0] + "'");
    std::uint8_t srf = 0;
    if (!parse_srf(args[1], srf)) fail(line_no, "bad SRF '" + args[1] + "'");
    instr.srf_base = srf;
    instr.imm = static_cast<std::int16_t>(parse_imm(args[2], line_no));
    return instr;
  }
  fail(line_no, "unknown LSU op '" + op + "'");
}

// ---------------------------------------------------------------------------
// MXCU
// ---------------------------------------------------------------------------

MxcuInstr parse_mxcu(const std::string& text, unsigned line_no) {
  auto [op, args] = op_args(text, line_no);
  MxcuInstr instr;
  if (op == "nop") return instr;
  static const std::map<std::string, MxcuOp> imm_ops = {
      {"seti", MxcuOp::kSetIdx},
      {"addi", MxcuOp::kAddIdx},
      {"setaux", MxcuOp::kSetAux},
      {"addaux", MxcuOp::kAddAux},
  };
  static const std::map<std::string, MxcuOp> srf_ops = {
      {"seti.srf", MxcuOp::kSetIdxSrf},
      {"addi.srf", MxcuOp::kAddIdxSrf},
      {"andi.srf", MxcuOp::kAndIdxSrf},
      {"st.srf", MxcuOp::kStIdxSrf},
  };
  if (auto it = imm_ops.find(op); it != imm_ops.end()) {
    instr.op = it->second;
    if (args.size() != 1) fail(line_no, "'" + op + "' expects #imm");
    instr.imm = static_cast<std::int16_t>(parse_imm(args[0], line_no));
    return instr;
  }
  if (auto it = srf_ops.find(op); it != srf_ops.end()) {
    instr.op = it->second;
    if (args.size() != 1) fail(line_no, "'" + op + "' expects srfN");
    std::uint8_t srf = 0;
    if (!parse_srf(args[0], srf)) fail(line_no, "bad SRF '" + args[0] + "'");
    instr.srf = srf;
    return instr;
  }
  if (op == "idx.aux") {
    instr.op = MxcuOp::kIdxFromAux;
    return instr;
  }
  fail(line_no, "unknown MXCU op '" + op + "'");
}

// ---------------------------------------------------------------------------
// LCU
// ---------------------------------------------------------------------------

LcuInstr parse_lcu(const std::string& text, unsigned line_no) {
  auto [op, args] = op_args(text, line_no);
  LcuInstr instr;
  if (op == "nop") return instr;
  if (op == "exit") {
    instr.op = LcuOp::kExit;
    return instr;
  }
  if (op == "seti" || op == "addi") {
    instr.op = op == "seti" ? LcuOp::kSetI : LcuOp::kAddI;
    if (args.size() != 2) fail(line_no, "'" + op + "' expects rd, #imm");
    instr.rd = parse_lcu_reg(args[0], line_no);
    instr.imm = static_cast<std::int16_t>(parse_imm(args[1], line_no));
    return instr;
  }
  if (op == "mvr" || op == "addr" || op == "subr") {
    instr.op = op == "mvr" ? LcuOp::kMvR
                           : (op == "addr" ? LcuOp::kAddR : LcuOp::kSubR);
    if (args.size() != 2) fail(line_no, "'" + op + "' expects rd, ra");
    instr.rd = parse_lcu_reg(args[0], line_no);
    instr.ra = parse_lcu_reg(args[1], line_no);
    return instr;
  }
  if (op == "mv.srf") {
    instr.op = LcuOp::kMvSrf;
    if (args.size() != 2) fail(line_no, "'mv.srf' expects rd, srfN");
    instr.rd = parse_lcu_reg(args[0], line_no);
    std::uint8_t srf = 0;
    if (!parse_srf(args[1], srf)) fail(line_no, "bad SRF '" + args[1] + "'");
    instr.srf = srf;
    return instr;
  }
  if (op == "st.srf") {
    instr.op = LcuOp::kStSrf;
    if (args.size() != 2) fail(line_no, "'st.srf' expects srfN, ra");
    std::uint8_t srf = 0;
    if (!parse_srf(args[0], srf)) fail(line_no, "bad SRF '" + args[0] + "'");
    instr.srf = srf;
    instr.ra = parse_lcu_reg(args[1], line_no);
    return instr;
  }
  if (op == "b") {
    instr.op = LcuOp::kB;
    if (args.size() != 1) fail(line_no, "'b' expects @target");
    instr.target = static_cast<std::uint8_t>(parse_target(args[0], line_no));
    return instr;
  }
  static const std::map<std::string, LcuOp> rr = {
      {"beq", LcuOp::kBeq}, {"bne", LcuOp::kBne},
      {"blt", LcuOp::kBlt}, {"bge", LcuOp::kBge}};
  static const std::map<std::string, LcuOp> ri = {
      {"beqi", LcuOp::kBeqI}, {"bnei", LcuOp::kBneI},
      {"blti", LcuOp::kBltI}, {"bgei", LcuOp::kBgeI}};
  if (auto it = rr.find(op); it != rr.end()) {
    instr.op = it->second;
    if (args.size() != 3) fail(line_no, "'" + op + "' expects ra, rb, @target");
    instr.ra = parse_lcu_reg(args[0], line_no);
    instr.rb = parse_lcu_reg(args[1], line_no);
    instr.target = static_cast<std::uint8_t>(parse_target(args[2], line_no));
    return instr;
  }
  if (auto it = ri.find(op); it != ri.end()) {
    instr.op = it->second;
    if (args.size() != 3) fail(line_no, "'" + op + "' expects ra, #imm, @target");
    instr.ra = parse_lcu_reg(args[0], line_no);
    instr.imm = static_cast<std::int16_t>(parse_imm(args[1], line_no));
    instr.target = static_cast<std::uint8_t>(parse_target(args[2], line_no));
    return instr;
  }
  if (op == "dbnz") {
    instr.op = LcuOp::kDbnz;
    if (args.size() != 2) fail(line_no, "'dbnz' expects rd, @target");
    instr.rd = parse_lcu_reg(args[0], line_no);
    instr.target = static_cast<std::uint8_t>(parse_target(args[1], line_no));
    return instr;
  }
  if (op == "bsrfz" || op == "bsrfnz") {
    instr.op = op == "bsrfz" ? LcuOp::kBsrfZ : LcuOp::kBsrfNz;
    if (args.size() != 2) fail(line_no, "'" + op + "' expects srfN, @target");
    std::uint8_t srf = 0;
    if (!parse_srf(args[0], srf)) fail(line_no, "bad SRF '" + args[0] + "'");
    instr.srf = srf;
    instr.target = static_cast<std::uint8_t>(parse_target(args[1], line_no));
    return instr;
  }
  fail(line_no, "unknown LCU op '" + op + "'");
}

} // namespace

isa::ColumnProgram parse_program(const std::string& text) {
  isa::ColumnProgram prog;
  std::istringstream is(text);
  std::string raw;
  unsigned line_no = 0;
  while (std::getline(is, raw)) {
    ++line_no;
    // Strip comments.
    const std::size_t semi = raw.find(';');
    std::string line = trim(semi == std::string::npos ? raw : raw.substr(0, semi));
    if (line.empty()) continue;
    // Strip the optional "@N:" prefix.
    if (line[0] == '@') {
      const std::size_t colon = line.find(':');
      if (colon == std::string::npos) fail(line_no, "bad @pc prefix");
      line = trim(line.substr(colon + 1));
    }
    std::array<std::uint32_t, arch::kSlotsPerColumn> words{};
    words[slot_index(Slot::LCU)] = isa::encode(isa::LcuInstr{});
    words[slot_index(Slot::LSU)] = isa::encode(isa::LsuInstr{});
    words[slot_index(Slot::MXCU)] = isa::encode(isa::MxcuInstr{});
    for (const std::string& part : split(line, '|')) {
      if (part.empty()) continue;
      const std::size_t colon = part.find(':');
      if (colon == std::string::npos) fail(line_no, "missing 'slot:' in '" + part + "'");
      const std::string slot = trim(part.substr(0, colon));
      const std::string body = trim(part.substr(colon + 1));
      if (slot == "lcu") {
        words[slot_index(Slot::LCU)] = isa::encode(parse_lcu(body, line_no));
      } else if (slot == "lsu") {
        words[slot_index(Slot::LSU)] = isa::encode(parse_lsu(body, line_no));
      } else if (slot == "mxcu") {
        words[slot_index(Slot::MXCU)] = isa::encode(parse_mxcu(body, line_no));
      } else if (slot == "rc*") {
        const std::uint32_t w = isa::encode(parse_rc(body, line_no));
        for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) {
          words[slot_index(rc_slot(r))] = w;
        }
      } else if (slot.size() == 3 && slot.compare(0, 2, "rc") == 0 &&
                 std::isdigit(slot[2])) {
        const unsigned r = static_cast<unsigned>(slot[2] - '0');
        if (r >= arch::kRcsPerColumn) fail(line_no, "bad RC slot '" + slot + "'");
        words[slot_index(rc_slot(r))] = isa::encode(parse_rc(body, line_no));
      } else {
        fail(line_no, "unknown slot '" + slot + "'");
      }
    }
    prog.append_line(words);
  }
  return prog;
}

} // namespace vwr2a::casm
