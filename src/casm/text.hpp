#pragma once
// Textual kernel format: a human-readable listing with one line per cycle
// and all seven slots, mirroring the paper's Table 1 presentation. The
// printer and parser round-trip exactly (print -> parse -> identical encoded
// program), which the test suite exercises on every generated kernel.
//
//   ; fft stage, column 0
//   @0:  lcu: seti r0, #0 | lsu: ld.vwr A, [3] | mxcu: seti #0 | rc0: nop | ...
//   @1:  lcu: blt r0, r1, @1 | lsu: nop | mxcu: addi #1 | rc0: sadd vwrc, vwra, vwrb | ...

#include <string>

#include "isa/program.hpp"

namespace vwr2a::casm {

/// Renders a program as text, one line per cycle, all slots shown.
std::string to_text(const isa::ColumnProgram& prog);

/// Parses the textual format back into an encoded program. Slots omitted
/// from a line default to NOP. Throws AsmError with a line number on any
/// syntax error.
isa::ColumnProgram parse_program(const std::string& text);

} // namespace vwr2a::casm
