#pragma once
// The host SoC (paper Sec 4.1/4.2): an ARM Cortex-M4F-like CPU, 192 KiB of
// banked SRAM, an AMBA-AHB-like bus, the fixed-function FFT accelerator,
// and the VWR2A block -- each accelerator on its own power-gateable domain,
// with DMA masters and interrupt lines back to the CPU.
//
// Energy is kept in three meters so Table-3-style breakdowns stay
// separable:
//   * sys_meter():   CPU core, system SRAM, bus beats
//   * vwr2a.meter(): everything inside the VWR2A block (incl. its DMA)
//   * accel_meter(): everything inside the FFT accelerator
// Cycle accounting is per-engine; the application layer serializes phases
// (the CPU sleeps on WFI while an accelerator runs), so phase latency is
// the sum of the engine deltas captured by Snapshot.
//
// Architecture variants (Sec 3.2 / 5.1.1 ablations): a Platform can be
// built with an ArchConfig that overrides the VWR count (2/3/4 per column)
// or selects the dual-lane 16-bit SIMD datapath mode. The variants share
// the 3-VWR/32-bit functional model -- outputs stay bit-identical -- and
// apply the analytically derived cycle/energy adjustments of
// bench/ablation_vwr_count.cpp and bench/ablation_simd16.cpp continuously
// to every Snapshot, so a heterogeneous fleet of variants can be swept in
// one run (runtime::DevicePool per-device overrides).

#include <cstdint>
#include <string>

#include "accel/fft_accel.hpp"
#include "bus/ahb.hpp"
#include "cgra/vwr2a.hpp"
#include "common/status.hpp"
#include "cpu/m4.hpp"
#include "energy/meter.hpp"
#include "mem/sram.hpp"

namespace vwr2a::soc {

/// Architecture knobs of one platform instance. The default is the paper's
/// design point (3 VWRs per column, 32-bit datapath) executed on the
/// per-cycle interpreter.
struct ArchConfig {
  unsigned vwr_count = arch::kVwrsPerColumn;  ///< VWRs per column: 2, 3 or 4
  unsigned simd_width = arch::kWordBits;      ///< 32, or 16 (dual-lane q15)
  /// Kernel execution engine: the reference interpreter, or trace-cache
  /// replay (bit/cycle/energy-identical, see cgra/tracecache.hpp). A host
  /// knob, not an architecture property: it never changes simulated
  /// behaviour, only how fast the simulator reaches it.
  cgra::ExecMode exec_mode = cgra::ExecMode::kInterpret;

  bool operator==(const ArchConfig&) const = default;

  /// True for the paper's design point (no cost-model adjustment). The
  /// execution engine is cost-model-transparent, so it does not count.
  bool is_baseline() const {
    return vwr_count == arch::kVwrsPerColumn && simd_width == arch::kWordBits;
  }

  /// Stable identity string: kernel-image cache namespace and report label.
  /// Deliberately excludes exec_mode -- both engines execute the same
  /// images, so interpret and trace-cache devices share assembled kernels.
  std::string name() const {
    return "vwr" + std::to_string(vwr_count) + ".w" + std::to_string(simd_width);
  }

  /// Throws HostError unless the variant is one the cost model covers.
  void validate() const {
    if (vwr_count < 2 || vwr_count > 4) {
      throw HostError("ArchConfig: vwr_count must be 2, 3 or 4");
    }
    if (simd_width != 16 && simd_width != 32) {
      throw HostError("ArchConfig: simd_width must be 16 or 32");
    }
  }
};

/// Cycle cost charged to the CPU for programming an accelerator (slave-port
/// register writes + interrupt service), per request.
inline constexpr unsigned kHostProgramCycles = 24;
inline constexpr unsigned kHostIrqCycles = 12;

/// The integrated platform.
class Platform {
 public:
  /// The platform configuration struct (Platform::Config::exec_mode selects
  /// the kernel execution engine).
  using Config = ArchConfig;

  Platform() : Platform(ArchConfig{}) {}

  explicit Platform(const ArchConfig& arch)
      : arch_(arch),
        sram_(sys_meter_),
        ahb_(sram_, sys_meter_),
        cpu_(sys_meter_),
        accel_(accel_meter_),
        vwr2a_(ahb_) {
    arch_.validate();
    vwr2a_.set_exec_mode(arch_.exec_mode, arch_.name());
  }

  const ArchConfig& arch() const { return arch_; }

  mem::SystemSram& sram() { return sram_; }
  const mem::SystemSram& sram() const { return sram_; }
  bus::AhbBus& ahb() { return ahb_; }
  cpu::M4Meter& cpu() { return cpu_; }
  const cpu::M4Meter& cpu() const { return cpu_; }
  accel::FftAccel& fft_accel() { return accel_; }
  cgra::Vwr2a& vwr2a() { return vwr2a_; }
  const cgra::Vwr2a& vwr2a() const { return vwr2a_; }

  energy::EnergyMeter& sys_meter() { return sys_meter_; }
  const energy::EnergyMeter& sys_meter() const { return sys_meter_; }
  energy::EnergyMeter& accel_meter() { return accel_meter_; }
  const energy::EnergyMeter& accel_meter() const { return accel_meter_; }

  /// Records accelerator occupancy (the accelerator result cycles) on the
  /// platform timeline.
  void add_accel_cycles(Cycle c) { accel_cycles_ += c; }
  Cycle accel_cycles() const { return accel_cycles_; }

  /// Charges the CPU-side cost of programming an accelerator and servicing
  /// its completion interrupt.
  void charge_host_control() {
    cpu_.idle_cycles(kHostProgramCycles + kHostIrqCycles);
    ahb_.charge_setup();
  }

  /// A point-in-time capture of all engines' cycles and energies.
  struct Snapshot {
    Cycle cpu_cycles = 0;
    Cycle vwr2a_cycles = 0;
    Cycle accel_cycles = 0;
    double sys_pj = 0.0;
    double vwr2a_pj = 0.0;
    double accel_pj = 0.0;

    Cycle total_cycles() const { return cpu_cycles + vwr2a_cycles + accel_cycles; }
    double total_pj() const { return sys_pj + vwr2a_pj + accel_pj; }
    double total_uj() const { return total_pj() * 1e-6; }
  };

  Snapshot snapshot() const {
    Snapshot s{cpu_.cycles(),   vwr2a_.cycles(),      accel_cycles_,
               sys_meter_.total_pj(), vwr2a_.meter().total_pj(),
               accel_meter_.total_pj()};
    apply_arch_model(s);
    return s;
  }

  /// The difference of two snapshots (b taken after a).
  static Snapshot delta(const Snapshot& a, const Snapshot& b) {
    Snapshot d;
    d.cpu_cycles = b.cpu_cycles - a.cpu_cycles;
    d.vwr2a_cycles = b.vwr2a_cycles - a.vwr2a_cycles;
    d.accel_cycles = b.accel_cycles - a.accel_cycles;
    d.sys_pj = b.sys_pj - a.sys_pj;
    d.vwr2a_pj = b.vwr2a_pj - a.vwr2a_pj;
    d.accel_pj = b.accel_pj - a.accel_pj;
    return d;
  }

 private:
  /// Applies the variant cost model to a raw snapshot. The adjustments are
  /// the analytic models of bench/ablation_vwr_count.cpp (Sec 3.2) and
  /// bench/ablation_simd16.cpp (Sec 5.1.1), expressed over the cumulative
  /// VWR2A event counts so snapshot deltas inherit them:
  ///  * 2 VWRs: the shuffle unit loses its dedicated destination -- every
  ///    shuffle result and ~half the elementwise passes pay an SPM round
  ///    trip (2 cycles + one row read + one row write), minus one VWR's
  ///    leakage;
  ///  * 4 VWRs: both twiddle planes stay resident (~1 reload per chunk,
  ///    1/6 of the row writes, saved), at +1/3 leakage and a 1.3x wider
  ///    VWR write mux;
  ///  * 16-bit dual-lane mode: two packed q15 ops per cycle halve the
  ///    elementwise ALU cycles. Elementwise passes run 1 op/RC/cycle with
  ///    both columns in lockstep (8 RCs -> alu_ops / 8 elementwise cycles),
  ///    so halving saves alu_ops / 16; the narrower multiplier scales
  ///    datapath energy by ~0.55/op. Single-column kernels save less than
  ///    half under this divisor -- a deliberately conservative estimate.
  /// Adjusted cycles stay monotone in the raw counters (every ALU op and
  /// row write also costs at least one raw cycle), so deltas never go
  /// negative.
  void apply_arch_model(Snapshot& s) const {
    if (arch_.is_baseline()) return;
    using energy::Event;
    const energy::EnergyMeter& m = vwr2a_.meter();
    const std::uint64_t shuffles = m.count(Event::kShuffleOp);
    const std::uint64_t row_writes = m.count(Event::kVwrRowWrite);
    if (arch_.vwr_count == 2) {
      const std::uint64_t extra = shuffles + row_writes / 2;
      s.vwr2a_cycles += 2 * extra;
      s.vwr2a_pj += static_cast<double>(extra) *
                    (energy::energy_pj(Event::kSpmRowRead) +
                     energy::energy_pj(Event::kSpmRowWrite));
      s.vwr2a_pj -= m.event_pj(Event::kLeakCycle) / 3.0;
    } else if (arch_.vwr_count == 4) {
      s.vwr2a_cycles -= row_writes / 6;
      s.vwr2a_pj += m.event_pj(Event::kLeakCycle) / 3.0 +
                    0.3 * m.event_pj(Event::kVwrRowWrite);
    }
    if (arch_.simd_width == 16) {
      const std::uint64_t alu_ops = m.count(Event::kAluOp) +
                                    m.count(Event::kAluMul) +
                                    m.count(Event::kAluFxpMul);
      s.vwr2a_cycles -=
          alu_ops / (2 * arch::kRcsPerColumn * arch::kNumColumns);
      s.vwr2a_pj -= 0.675 * (m.event_pj(Event::kAluOp) +
                             m.event_pj(Event::kAluMul) +
                             m.event_pj(Event::kAluFxpMul));
    }
  }

  ArchConfig arch_;
  energy::EnergyMeter sys_meter_;
  energy::EnergyMeter accel_meter_;
  mem::SystemSram sram_;
  bus::AhbBus ahb_;
  cpu::M4Meter cpu_;
  accel::FftAccel accel_;
  cgra::Vwr2a vwr2a_;
  Cycle accel_cycles_ = 0;
};

} // namespace vwr2a::soc
