#pragma once
// The host SoC (paper Sec 4.1/4.2): an ARM Cortex-M4F-like CPU, 192 KiB of
// banked SRAM, an AMBA-AHB-like bus, the fixed-function FFT accelerator,
// and the VWR2A block -- each accelerator on its own power-gateable domain,
// with DMA masters and interrupt lines back to the CPU.
//
// Energy is kept in three meters so Table-3-style breakdowns stay
// separable:
//   * sys_meter():   CPU core, system SRAM, bus beats
//   * vwr2a.meter(): everything inside the VWR2A block (incl. its DMA)
//   * accel_meter(): everything inside the FFT accelerator
// Cycle accounting is per-engine; the application layer serializes phases
// (the CPU sleeps on WFI while an accelerator runs), so phase latency is
// the sum of the engine deltas captured by Snapshot.

#include <cstdint>

#include "accel/fft_accel.hpp"
#include "bus/ahb.hpp"
#include "cgra/vwr2a.hpp"
#include "cpu/m4.hpp"
#include "energy/meter.hpp"
#include "mem/sram.hpp"

namespace vwr2a::soc {

/// Cycle cost charged to the CPU for programming an accelerator (slave-port
/// register writes + interrupt service), per request.
inline constexpr unsigned kHostProgramCycles = 24;
inline constexpr unsigned kHostIrqCycles = 12;

/// The integrated platform.
class Platform {
 public:
  Platform()
      : sram_(sys_meter_),
        ahb_(sram_, sys_meter_),
        cpu_(sys_meter_),
        accel_(accel_meter_),
        vwr2a_(ahb_) {}

  mem::SystemSram& sram() { return sram_; }
  const mem::SystemSram& sram() const { return sram_; }
  bus::AhbBus& ahb() { return ahb_; }
  cpu::M4Meter& cpu() { return cpu_; }
  const cpu::M4Meter& cpu() const { return cpu_; }
  accel::FftAccel& fft_accel() { return accel_; }
  cgra::Vwr2a& vwr2a() { return vwr2a_; }
  const cgra::Vwr2a& vwr2a() const { return vwr2a_; }

  energy::EnergyMeter& sys_meter() { return sys_meter_; }
  const energy::EnergyMeter& sys_meter() const { return sys_meter_; }
  energy::EnergyMeter& accel_meter() { return accel_meter_; }
  const energy::EnergyMeter& accel_meter() const { return accel_meter_; }

  /// Records accelerator occupancy (the accelerator result cycles) on the
  /// platform timeline.
  void add_accel_cycles(Cycle c) { accel_cycles_ += c; }
  Cycle accel_cycles() const { return accel_cycles_; }

  /// Charges the CPU-side cost of programming an accelerator and servicing
  /// its completion interrupt.
  void charge_host_control() {
    cpu_.idle_cycles(kHostProgramCycles + kHostIrqCycles);
    ahb_.charge_setup();
  }

  /// A point-in-time capture of all engines' cycles and energies.
  struct Snapshot {
    Cycle cpu_cycles = 0;
    Cycle vwr2a_cycles = 0;
    Cycle accel_cycles = 0;
    double sys_pj = 0.0;
    double vwr2a_pj = 0.0;
    double accel_pj = 0.0;

    Cycle total_cycles() const { return cpu_cycles + vwr2a_cycles + accel_cycles; }
    double total_pj() const { return sys_pj + vwr2a_pj + accel_pj; }
    double total_uj() const { return total_pj() * 1e-6; }
  };

  Snapshot snapshot() const {
    return Snapshot{cpu_.cycles(),   vwr2a_.cycles(),      accel_cycles_,
                    sys_meter_.total_pj(), vwr2a_.meter().total_pj(),
                    accel_meter_.total_pj()};
  }

  /// The difference of two snapshots (b taken after a).
  static Snapshot delta(const Snapshot& a, const Snapshot& b) {
    Snapshot d;
    d.cpu_cycles = b.cpu_cycles - a.cpu_cycles;
    d.vwr2a_cycles = b.vwr2a_cycles - a.vwr2a_cycles;
    d.accel_cycles = b.accel_cycles - a.accel_cycles;
    d.sys_pj = b.sys_pj - a.sys_pj;
    d.vwr2a_pj = b.vwr2a_pj - a.vwr2a_pj;
    d.accel_pj = b.accel_pj - a.accel_pj;
    return d;
  }

 private:
  energy::EnergyMeter sys_meter_;
  energy::EnergyMeter accel_meter_;
  mem::SystemSram sram_;
  bus::AhbBus ahb_;
  cpu::M4Meter cpu_;
  accel::FftAccel accel_;
  cgra::Vwr2a vwr2a_;
  Cycle accel_cycles_ = 0;
};

} // namespace vwr2a::soc
