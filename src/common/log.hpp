#pragma once
// Minimal leveled logging. The simulator is silent by default; tests and
// debugging sessions raise the level. Not thread-safe by design: the
// simulator is single-threaded (a cycle-accurate model has a global order).

#include <sstream>
#include <string>

namespace vwr2a::log {

enum class Level { kOff = 0, kError, kWarn, kInfo, kTrace };

/// Global log threshold; messages above it are discarded.
Level threshold();

/// Sets the global threshold; returns the previous value.
Level set_threshold(Level lvl);

/// Emits one line to stderr if lvl <= threshold().
void emit(Level lvl, const std::string& msg);

/// Stream-style helper: LOG(kWarn) << "spm row " << r;
class Line {
 public:
  explicit Line(Level lvl) : lvl_(lvl) {}
  ~Line() { emit(lvl_, ss_.str()); }
  template <typename T>
  Line& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  Level lvl_;
  std::ostringstream ss_;
};

} // namespace vwr2a::log
