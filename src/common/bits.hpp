#pragma once
// Small bit-manipulation helpers used by the ISA encoders, the shuffle unit
// and the FFT kernels.

#include <cstdint>
#include <cassert>

#include "common/types.hpp"

namespace vwr2a {

/// Extracts bits [lo, lo+width) of w.
constexpr std::uint32_t bits(std::uint32_t w, unsigned lo, unsigned width) {
  return (w >> lo) & ((width >= 32) ? 0xFFFFFFFFu : ((1u << width) - 1u));
}

/// Inserts the low `width` bits of v into bits [lo, lo+width) of w.
constexpr std::uint32_t set_bits(std::uint32_t w, unsigned lo, unsigned width,
                                 std::uint32_t v) {
  const std::uint32_t mask =
      ((width >= 32) ? 0xFFFFFFFFu : ((1u << width) - 1u)) << lo;
  return (w & ~mask) | ((v << lo) & mask);
}

/// Sign-extends the low `width` bits of v to 32 bits.
constexpr std::int32_t sign_extend(std::uint32_t v, unsigned width) {
  const std::uint32_t m = 1u << (width - 1);
  const std::uint32_t x = v & ((width >= 32) ? 0xFFFFFFFFu : ((1u << width) - 1u));
  return static_cast<std::int32_t>((x ^ m) - m);
}

/// True if v is a power of two (v != 0).
constexpr bool is_pow2(std::uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// floor(log2(v)) for v >= 1.
constexpr unsigned ilog2(std::uint32_t v) {
  unsigned r = 0;
  while (v >>= 1) ++r;
  return r;
}

/// Reverses the low `nbits` bits of v (the FFT bit-reversal permutation).
constexpr std::uint32_t bit_reverse(std::uint32_t v, unsigned nbits) {
  std::uint32_t r = 0;
  for (unsigned i = 0; i < nbits; ++i) {
    r = (r << 1) | ((v >> i) & 1u);
  }
  return r;
}

/// Saturates a 64-bit value into `bits`-wide two's complement.
constexpr std::int64_t saturate(std::int64_t v, unsigned nbits) {
  const std::int64_t hi = (std::int64_t{1} << (nbits - 1)) - 1;
  const std::int64_t lo = -(std::int64_t{1} << (nbits - 1));
  return v > hi ? hi : (v < lo ? lo : v);
}

} // namespace vwr2a
