#include "common/fixed_point.hpp"

namespace vwr2a::fx {

std::vector<q15_t> vector_to_q15(const std::vector<double>& v, double scale) {
  std::vector<q15_t> out;
  out.reserve(v.size());
  for (double x : v) out.push_back(to_q15(x / scale));
  return out;
}

std::vector<double> vector_from_q15(const std::vector<q15_t>& v, double scale) {
  std::vector<double> out;
  out.reserve(v.size());
  for (q15_t x : v) out.push_back(from_q15(x) * scale);
  return out;
}

std::vector<std::int32_t> vector_to_q16_15(const std::vector<double>& v) {
  std::vector<std::int32_t> out;
  out.reserve(v.size());
  for (double x : v) out.push_back(to_q16_15(x));
  return out;
}

std::vector<double> vector_from_q16_15(const std::vector<std::int32_t>& v) {
  std::vector<double> out;
  out.reserve(v.size());
  for (std::int32_t x : v) out.push_back(from_q16_15(x));
  return out;
}

} // namespace vwr2a::fx
