#pragma once
// Error handling for the simulator. Architectural violations (structural
// hazards, out-of-range accesses, malformed configuration words) throw
// SimError: they indicate an invalid kernel or host program, which a real
// chip would turn into undefined behaviour. The simulator is strict instead.

#include <stdexcept>
#include <string>

namespace vwr2a {

/// Base class for all simulator-detected errors.
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

/// A structural hazard: two units contended for a single-ported resource
/// (SRF port, VWR write port, SPM array port) in the same cycle.
class StructuralHazard : public SimError {
 public:
  explicit StructuralHazard(const std::string& what) : SimError(what) {}
};

/// An access outside an architectural range (SPM row, VWR index, SRF entry,
/// program-memory address, ...).
class RangeError : public SimError {
 public:
  explicit RangeError(const std::string& what) : SimError(what) {}
};

/// A configuration word that does not decode to a legal instruction.
class DecodeError : public SimError {
 public:
  explicit DecodeError(const std::string& what) : SimError(what) {}
};

/// Kernel assembly error (bad label, program too long, operand misuse).
class AsmError : public SimError {
 public:
  explicit AsmError(const std::string& what) : SimError(what) {}
};

/// Host-side programming error (bad DMA descriptor, kernel id, ...).
class HostError : public SimError {
 public:
  explicit HostError(const std::string& what) : SimError(what) {}
};

} // namespace vwr2a
