#pragma once
// Fundamental machine types and the VWR2A architectural constants from the
// paper (DAC'22, Section 3). Every module derives its geometry from these
// constants so that ablation studies (e.g., VWR count or width sweeps) can
// override them through the runtime configuration structs instead.

#include <cstdint>
#include <cstddef>

namespace vwr2a {

/// A 32-bit datapath word. Stored unsigned; arithmetic interprets it as
/// two's-complement signed (see alu.hpp).
using Word = std::uint32_t;

/// Signed view of a datapath word.
using SWord = std::int32_t;

/// Cycle counter type. 64 bits: applications run for millions of cycles.
using Cycle = std::uint64_t;

namespace arch {

/// Bits per datapath word.
inline constexpr unsigned kWordBits = 32;

/// Very-wide-register width in bits (paper: 4096).
inline constexpr unsigned kVwrBits = 4096;

/// Words per VWR row: 4096 / 32 = 128.
inline constexpr unsigned kVwrWords = kVwrBits / kWordBits;

/// Reconfigurable cells per column (paper: 4).
inline constexpr unsigned kRcsPerColumn = 4;

/// Number of columns in the 4x2 array (paper: 2).
inline constexpr unsigned kNumColumns = 2;

/// Words of a VWR visible to one RC: 128 / 4 = 32.
inline constexpr unsigned kSliceWords = kVwrWords / kRcsPerColumn;

/// VWRs per column (paper: 3 -- A, B, C).
inline constexpr unsigned kVwrsPerColumn = 3;

/// Entries in the per-RC local register file (paper: 2).
inline constexpr unsigned kRcRegs = 2;

/// Entries in the per-column scalar register file (paper: 8).
inline constexpr unsigned kSrfEntries = 8;

/// Registers in the loop-control unit (reconstruction: 4 loop counters).
inline constexpr unsigned kLcuRegs = 4;

/// Program memory depth per unit, in configuration words (paper: 64).
inline constexpr unsigned kProgramWords = 64;

/// Shared scratchpad memory size (paper: 32 KiB).
inline constexpr unsigned kSpmBytes = 32 * 1024;

/// SPM size in words.
inline constexpr unsigned kSpmWords = kSpmBytes / 4;

/// SPM size in VWR-width rows: 8192 / 128 = 64.
inline constexpr unsigned kSpmRows = kSpmWords / kVwrWords;

/// Issue slots per column: LCU, LSU, MXCU, RC0..RC3.
inline constexpr unsigned kSlotsPerColumn = 3 + kRcsPerColumn;

/// System clock (paper: 80 MHz TSMC 40nm LP synthesis point).
inline constexpr double kClockHz = 80.0e6;

/// Clock period in nanoseconds.
inline constexpr double kClockPeriodNs = 1.0e9 / kClockHz;

/// System SRAM size on the host SoC (paper: 192 KiB in six banks).
inline constexpr unsigned kSramBytes = 192 * 1024;
inline constexpr unsigned kSramBanks = 6;

} // namespace arch

/// Identifies one of the three VWRs of a column.
enum class VwrSel : std::uint8_t { A = 0, B = 1, C = 2 };

/// Returns 'A', 'B' or 'C'.
constexpr char to_char(VwrSel v) {
  switch (v) {
    case VwrSel::A: return 'A';
    case VwrSel::B: return 'B';
    case VwrSel::C: return 'C';
  }
  return '?';
}

/// Index of an issue slot within a column. LCU/LSU/MXCU are the specialized
/// slots the paper borrows from VLIW; RCs are the datapath cells.
enum class Slot : std::uint8_t {
  LCU = 0,
  LSU = 1,
  MXCU = 2,
  RC0 = 3,
  RC1 = 4,
  RC2 = 5,
  RC3 = 6,
};

/// Returns a short mnemonic name ("LCU", "RC2", ...).
constexpr const char* to_string(Slot s) {
  switch (s) {
    case Slot::LCU: return "LCU";
    case Slot::LSU: return "LSU";
    case Slot::MXCU: return "MXCU";
    case Slot::RC0: return "RC0";
    case Slot::RC1: return "RC1";
    case Slot::RC2: return "RC2";
    case Slot::RC3: return "RC3";
  }
  return "???";
}

/// Slot index as an array subscript [0, kSlotsPerColumn).
constexpr unsigned slot_index(Slot s) { return static_cast<unsigned>(s); }

/// The RC slot for row r in [0,4).
constexpr Slot rc_slot(unsigned r) {
  return static_cast<Slot>(static_cast<unsigned>(Slot::RC0) + r);
}

} // namespace vwr2a
