#include "common/log.hpp"

#include <cstdio>

namespace vwr2a::log {
namespace {
Level g_threshold = Level::kError;

const char* prefix(Level lvl) {
  switch (lvl) {
    case Level::kError: return "[error] ";
    case Level::kWarn: return "[warn ] ";
    case Level::kInfo: return "[info ] ";
    case Level::kTrace: return "[trace] ";
    default: return "";
  }
}
} // namespace

Level threshold() { return g_threshold; }

Level set_threshold(Level lvl) {
  const Level prev = g_threshold;
  g_threshold = lvl;
  return prev;
}

void emit(Level lvl, const std::string& msg) {
  if (static_cast<int>(lvl) <= static_cast<int>(g_threshold) && lvl != Level::kOff) {
    std::fprintf(stderr, "%s%s\n", prefix(lvl), msg.c_str());
  }
}

} // namespace vwr2a::log
