#pragma once
// Deterministic xoshiro-style PRNG for tests, benches and the signal
// generator. We avoid <random> engines in library code so results are
// bit-identical across standard libraries.

#include <cstdint>

namespace vwr2a {

/// SplitMix64-seeded xorshift128+ generator. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 to spread the seed over both lanes.
    auto mix = [&seed]() {
      seed += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      return z ^ (z >> 31);
    };
    s0_ = mix();
    s1_ = mix();
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform 32-bit value.
  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint32_t next_below(std::uint32_t n) { return next_u32() % n; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double next_range(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Approximately normal sample (sum of 12 uniforms, mean 0, sigma 1).
  double next_gauss() {
    double s = 0.0;
    for (int i = 0; i < 12; ++i) s += next_double();
    return s - 6.0;
  }

 private:
  std::uint64_t s0_ = 0;
  std::uint64_t s1_ = 0;
};

} // namespace vwr2a
