#pragma once
// Fixed-point arithmetic helpers.
//
// Three formats appear in the reproduction:
//  * q1.15 ("q15")  -- the CMSIS-DSP CPU baseline data format (paper Sec 5.1).
//  * q16.15         -- the VWR2A fixed-point multiplier mode: "the lower 16
//                      bits are discarded, and the next 32 bits are kept",
//                      i.e. (a*b) >> 15 truncated to 32 bits... The paper
//                      says 16.15 format: 16 integer bits, 15 fractional.
//  * q17.1-like 18b -- the FFT accelerator internal format with dynamic
//                      scaling (block floating point).

#include <cstdint>
#include <vector>

#include "common/bits.hpp"

namespace vwr2a::fx {

/// Fractional bits of the VWR2A fixed-point multiplier mode (16.15 format).
inline constexpr unsigned kQ15Frac = 15;

/// VWR2A fixed-point multiply: full 64-bit product of two signed 32-bit
/// values; drop the lower 16 bits and keep the next 32 (paper Sec 3.1).
/// For operands in 16.15 this returns the 16.15 product (truncating).
constexpr std::int32_t fxp_mul(std::int32_t a, std::int32_t b) {
  const std::int64_t p = static_cast<std::int64_t>(a) * static_cast<std::int64_t>(b);
  return static_cast<std::int32_t>(p >> 16);
}

/// Converts a double to 16.15 fixed point (truncating, no saturation checks;
/// callers validate the dynamic range).
constexpr std::int32_t to_q16_15(double v) {
  return static_cast<std::int32_t>(v * 32768.0);
}

/// Converts 16.15 fixed point back to double.
constexpr double from_q16_15(std::int32_t v) { return static_cast<double>(v) / 32768.0; }

/// Coefficient format for the VWR2A fixed-point multiplier: since fxp_mul
/// discards the *16* low product bits (paper Sec 3.1), a coefficient stored
/// with 16 fractional bits keeps 16.15 data in format across a multiply:
///   (x * 2^15) * (c * 2^16) >> 16  ==  (x*c) * 2^15.
/// Twiddle factors, filter taps and SVM weights use this representation.
constexpr std::int32_t to_coeff(double v) {
  return static_cast<std::int32_t>(v * 65536.0);
}

/// Coefficient back to double.
constexpr double from_coeff(std::int32_t v) { return static_cast<double>(v) / 65536.0; }

/// q1.15 value (16-bit). CMSIS-DSP style.
using q15_t = std::int16_t;

/// q1.31 value (32-bit).
using q31_t = std::int32_t;

/// Saturating conversion double -> q15 (clamps to [-1, 1-2^-15]).
constexpr q15_t to_q15(double v) {
  const std::int64_t s = static_cast<std::int64_t>(v * 32768.0);
  return static_cast<q15_t>(saturate(s, 16));
}

/// q15 -> double.
constexpr double from_q15(q15_t v) { return static_cast<double>(v) / 32768.0; }

/// Saturating q15 addition (CMSIS __QADD16 semantics per lane).
constexpr q15_t add_q15(q15_t a, q15_t b) {
  return static_cast<q15_t>(saturate(std::int64_t{a} + b, 16));
}

/// Saturating q15 subtraction.
constexpr q15_t sub_q15(q15_t a, q15_t b) {
  return static_cast<q15_t>(saturate(std::int64_t{a} - b, 16));
}

/// q15 multiply with rounding and saturation: (a*b + 2^14) >> 15.
constexpr q15_t mul_q15(q15_t a, q15_t b) {
  const std::int32_t p = static_cast<std::int32_t>(a) * b;
  return static_cast<q15_t>(saturate((p + (1 << 14)) >> 15, 16));
}

/// Converts a real vector to q15 with the given scale (value/scale -> q15).
std::vector<q15_t> vector_to_q15(const std::vector<double>& v, double scale);

/// Converts a q15 vector to doubles with the given scale.
std::vector<double> vector_from_q15(const std::vector<q15_t>& v, double scale);

/// Converts a real vector to 16.15 words.
std::vector<std::int32_t> vector_to_q16_15(const std::vector<double>& v);

/// Converts 16.15 words to a real vector.
std::vector<double> vector_from_q16_15(const std::vector<std::int32_t>& v);

} // namespace vwr2a::fx
