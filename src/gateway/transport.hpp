#pragma once
// Byte-stream transports under the gateway protocol: a deterministic
// in-process loopback (bounded byte queues; what the bit-exact tests and
// the loopback soak run on) and TCP over 127.0.0.1 (POSIX sockets). Both
// present the same blocking Transport interface, so the server and client
// code is transport-agnostic.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace vwr2a::gateway {

/// One end of a bidirectional, blocking byte stream.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Writes all n bytes (blocking on flow control). Returns false once the
  /// peer is gone; partial writes never happen from the caller's view.
  virtual bool send(const std::uint8_t* data, std::size_t n) = 0;

  /// Reads 1..max bytes, blocking until data is available. Returns 0 on
  /// orderly close / shutdown.
  virtual std::size_t recv(std::uint8_t* data, std::size_t max) = 0;

  /// Unblocks and fails all current and future sends/recvs on both ends'
  /// pending calls of *this* end. Idempotent, thread-safe.
  virtual void shutdown() = 0;
};

/// An in-process connected pair: bytes sent on `first` arrive at `second`
/// and vice versa. `capacity` bounds each direction's queue, so a sender
/// outrunning the reader blocks -- the loopback analogue of TCP flow
/// control (and of a slow client, which the gateway's delivery path must
/// tolerate without stalling ingest).
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
make_loopback(std::size_t capacity = 1u << 20);

/// A listening socket handing out accepted connections.
class Listener {
 public:
  virtual ~Listener() = default;
  /// Blocks for the next connection; null once close() was called.
  virtual std::unique_ptr<Transport> accept() = 0;
  /// Stops accepting and unblocks pending accept() calls. Idempotent.
  virtual void close() = 0;
  /// The bound port (useful with an ephemeral bind).
  virtual std::uint16_t port() const = 0;
};

/// Binds 127.0.0.1:`port` (0 = ephemeral). Throws HostError on failure
/// (e.g. sockets unavailable in the environment).
std::unique_ptr<Listener> listen_tcp(std::uint16_t port = 0);

/// Connects to `host`:`port`. Throws HostError on failure.
std::unique_ptr<Transport> connect_tcp(const std::string& host,
                                       std::uint16_t port);

} // namespace vwr2a::gateway
