#include "gateway/server.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vwr2a::gateway {

// --- Connection ---------------------------------------------------------------

/// One served connection: reader thread (frame dispatch, session driving)
/// plus writer thread (bounded outbound queue -> transport).
class Server::Connection {
 public:
  Connection(Server& srv, std::unique_ptr<Transport> t,
             std::uint32_t journal_conn)
      : srv_(&srv), t_(std::move(t)), journal_conn_(journal_conn),
        bound_(srv.cfg_.writer_queue_frames) {}

  void start() {
    writer_ = std::thread([this] { writer_loop(); });
    reader_ = std::thread([this] { reader_loop(); });
  }

  /// Kicks the connection toward termination (unblocks reader and writer).
  void begin_stop() { t_->shutdown(); }

  void join() {
    if (reader_.joinable()) reader_.join();
    stop_pusher();  // backstop; the reader normally joined it already
    if (writer_.joinable()) writer_.join();
  }

  /// True once the reader exited (streams settled, quota released) and the
  /// writer is flushing its last frames: the connection is dead weight and
  /// safe to destroy without blocking on the peer.
  bool done() const { return done_.load(std::memory_order_acquire); }

  ~Connection() {
    begin_stop();
    join();
  }

 private:
  struct StreamState {
    stream::Session* session = nullptr;
    std::uint32_t tenant = 0;
    bool lossy = false;
  };

  // --- outbound ---------------------------------------------------------------

  /// Enqueues one encoded frame; blocks while the queue is full (this is
  /// where a slow client exerts backpressure on delivery lanes). Returns
  /// false once the connection is dead -- the frame is dropped.
  bool enqueue(const Frame& f) {
    std::vector<std::uint8_t> bytes = encode(f);
    std::unique_lock<std::mutex> lock(wmu_);
    wspace_cv_.wait(lock, [this] { return closed_ || wq_.size() < bound_; });
    if (closed_) return false;
    wq_.push_back(std::move(bytes));
    w_cv_.notify_one();
    return true;
  }

  void writer_loop() {
    for (;;) {
      std::vector<std::uint8_t> bytes;
      {
        std::unique_lock<std::mutex> lock(wmu_);
        w_cv_.wait(lock, [this] {
          return closed_ || finishing_ || !wq_.empty();
        });
        if (wq_.empty()) {
          if (closed_ || finishing_) return;
          continue;
        }
        bytes = std::move(wq_.front());
        wq_.pop_front();
      }
      wspace_cv_.notify_one();
      if (obs::metrics_enabled()) {
        static obs::Counter& out =
            obs::Registry::get().counter("gateway.bytes_out");
        out.add(bytes.size());
      }
      if (!t_->send(bytes.data(), bytes.size())) {
        std::lock_guard<std::mutex> lock(wmu_);
        closed_ = true;
        wq_.clear();
        wspace_cv_.notify_all();
        return;
      }
    }
  }

  void send_error(std::uint32_t stream, ErrorCode code,
                  const std::string& message) {
    srv_->note_error_sent();
    if (obs::metrics_enabled()) {
      static obs::Counter& errs =
          obs::Registry::get().counter("gateway.errors_sent");
      errs.add(1);
    }
    enqueue(Error{stream, static_cast<std::uint16_t>(code), message});
  }

  /// Sink of every session opened on this connection; runs on a delivery
  /// lane of the StreamServer, never on the reader.
  void send_result(std::uint32_t stream, const stream::WindowResult& r) {
    WindowResult f;
    f.stream = stream;
    f.index = r.index;
    f.device = r.job.device;
    f.cycles = r.job.cost.total_cycles();
    f.pj = r.job.cost.total_pj();
    f.output = r.job.output;
    // v6 span breakdown: filled only when the pool stamped the job (spans
    // enabled at run time); all-zero fields otherwise.
    const runtime::JobResult::Timing& tm = r.job.timing;
    if (tm.stamped()) {
      const std::uint64_t now = obs::now_ns();
      f.queue_ns = tm.run_begin_ns > tm.enq_ns && tm.enq_ns != 0
                       ? tm.run_begin_ns - tm.enq_ns
                       : 0;
      f.run_ns =
          tm.run_end_ns > tm.run_begin_ns ? tm.run_end_ns - tm.run_begin_ns : 0;
      f.deliver_ns = now > tm.run_end_ns ? now - tm.run_end_ns : 0;
      f.place_cycles = tm.place_cycles;
      f.sim_begin = tm.sim_begin;
    }
    if (enqueue(std::move(f))) {
      if (srv_->journal_ != nullptr) {
        srv_->journal_->result(journal_conn_, stream, r.job.output);
      }
      srv_->note_result_sent();
      if (obs::metrics_enabled()) {
        static obs::Counter& results =
            obs::Registry::get().counter("gateway.results_sent");
        results.add(1);
      }
    }
  }

  // --- inbound ----------------------------------------------------------------

  void reader_loop() {
    std::vector<std::uint8_t> buf(1u << 16);
    Decoder dec;
    try {
      for (;;) {
        const std::size_t n = t_->recv(buf.data(), buf.size());
        if (n == 0) break;  // EOF / shutdown
        if (obs::metrics_enabled()) {
          static obs::Counter& in =
              obs::Registry::get().counter("gateway.bytes_in");
          in.add(n);
        }
        dec.feed(buf.data(), n);
        while (auto f = dec.next()) {
          srv_->note_frame_in();
          if (srv_->journal_ != nullptr) {
            // The codec is canonical (strict framing, deterministic field
            // order), so re-encoding the decoded frame reproduces the
            // peer's bytes exactly -- and taps whole frames, never a
            // partial receive chunk.
            srv_->journal_->frame(journal_conn_, srv_->now_ns(), encode(*f));
          }
          if (obs::metrics_enabled()) {
            static obs::Counter& frames =
                obs::Registry::get().counter("gateway.frames_in");
            frames.add(1);
          }
          obs::Span sp("gateway.frame", 0,
                       static_cast<std::uint64_t>(frame_type(*f)));
          handle(*f);
        }
      }
    } catch (const ProtocolError& e) {
      // Malformed bytes are connection-fatal: report and stop reading (the
      // decoder is poisoned; resynchronization is impossible).
      send_error(kConnectionStream, e.code, e.what());
    } catch (const std::exception& e) {
      send_error(kConnectionStream, ErrorCode::kShutdown, e.what());
    }
    shutdown_streams();
    if (srv_->journal_ != nullptr) {
      srv_->journal_->conn_close(journal_conn_, srv_->now_ns());
    }
    // The stats pusher enqueues frames; it must be gone before the writer
    // is told no more producers exist.
    stop_pusher();
    {
      std::lock_guard<std::mutex> lock(wmu_);
      finishing_ = true;  // writer exits once the queue is flushed
    }
    w_cv_.notify_all();
    done_.store(true, std::memory_order_release);
  }

  void handle(const Frame& f) {
    if (const auto* open = std::get_if<OpenSession>(&f)) {
      handle_open(*open);
    } else if (const auto* push = std::get_if<PushSamples>(&f)) {
      handle_push(*push);
    } else if (const auto* flush = std::get_if<Flush>(&f)) {
      handle_flush(*flush);
    } else if (const auto* close = std::get_if<Close>(&f)) {
      handle_close(*close);
    } else if (std::get_if<StatsRequest>(&f) != nullptr) {
      enqueue(srv_->build_stats());
    } else if (const auto* sub = std::get_if<StatsSubscribe>(&f)) {
      handle_subscribe(*sub);
    } else {
      // A structurally valid frame of a server->client type: a confused
      // peer, not a framing corruption. Report, keep the connection.
      send_error(kConnectionStream, ErrorCode::kUnknownType,
                 "gateway: client sent a server-side frame type");
    }
  }

  void handle_open(const OpenSession& o) {
    if (o.stream == kConnectionStream) {
      send_error(o.stream, ErrorCode::kBadParams,
                 "gateway: stream id 0xffffffff is reserved for "
                 "connection-level errors");
      return;
    }
    if (streams_.count(o.stream) != 0) {
      send_error(o.stream, ErrorCode::kDuplicateStream,
                 "gateway: stream id already open on this connection");
      return;
    }
    Error err;
    if (!srv_->admit_session(o.tenant, o, &err)) {
      err.stream = o.stream;
      srv_->note_error_sent();
      enqueue(err);
      return;
    }
    stream::SessionConfig cfg;
    cfg.window = o.window;
    cfg.hop = o.hop;
    cfg.max_inflight = o.max_inflight;
    cfg.buffer_capacity = o.buffer_capacity;
    stream::Session* session = nullptr;
    try {
      if (o.kind > static_cast<std::uint8_t>(stream::SessionKind::kPipeline)) {
        throw HostError("gateway: unknown session kind");
      }
      if (o.target > static_cast<std::uint8_t>(app::Target::kCpuVwr2a)) {
        throw HostError("gateway: unknown bio target");
      }
      cfg.kind = static_cast<stream::SessionKind>(o.kind);
      cfg.target = static_cast<app::Target>(o.target);
      const std::uint32_t sid = o.stream;
      session = &srv_->stream_.open_session(
          cfg,
          [this, sid](const stream::WindowResult& r) { send_result(sid, r); },
          [this, sid](std::uint64_t, std::uint64_t index,
                      const std::string& msg) {
            send_error(sid, ErrorCode::kJobFailed,
                       "window " + std::to_string(index) + ": " + msg);
          });
    } catch (const std::exception& e) {
      srv_->release_session(o.tenant);
      send_error(o.stream, ErrorCode::kBadParams, e.what());
      return;
    }
    streams_.emplace(o.stream, StreamState{session, o.tenant, o.lossy != 0});
    enqueue(OpenOk{o.stream, session->id(), session->device()});
  }

  void handle_push(const PushSamples& p) {
    const auto it = streams_.find(p.stream);
    if (it == streams_.end()) {
      send_error(p.stream, ErrorCode::kUnknownStream,
                 "gateway: PUSH_SAMPLES on an unopened stream");
      return;
    }
    if (!srv_->charge_rate(it->second.tenant, 4 * p.samples.size())) {
      send_error(p.stream, ErrorCode::kQuotaRate,
                 "gateway: tenant byte-rate exceeded; push dropped");
      return;
    }
    if (it->second.lossy) {
      it->second.session->try_push(p.samples);  // drops are accounted
    } else {
      it->second.session->push(p.samples);  // backpressure blocks the reader
    }
  }

  void handle_flush(const Flush& f) {
    const auto it = streams_.find(f.stream);
    if (it == streams_.end()) {
      send_error(f.stream, ErrorCode::kUnknownStream,
                 "gateway: FLUSH on an unopened stream");
      return;
    }
    // drain() returns only after every sink call has returned, so all of
    // this stream's WINDOW_RESULT frames sit in the (FIFO) writer queue
    // before FLUSH_OK is enqueued: the ack is a barrier.
    it->second.session->flush();
    it->second.session->drain();
    enqueue(FlushOk{f.stream, it->second.session->stats().windows_delivered});
  }

  void handle_close(const Close& c) {
    const auto it = streams_.find(c.stream);
    if (it == streams_.end()) {
      send_error(c.stream, ErrorCode::kUnknownStream,
                 "gateway: CLOSE on an unopened stream");
      return;
    }
    it->second.session->finish();
    const stream::SessionStats st = it->second.session->stats();
    CloseOk ok;
    ok.stream = c.stream;
    ok.windows_submitted = st.windows_submitted;
    ok.windows_delivered = st.windows_delivered;
    ok.windows_failed = st.windows_failed;
    ok.samples_in = st.samples_in;
    ok.dropped_samples = st.dropped_samples;
    ok.dropped_pushes = st.dropped_pushes;
    ok.latency_cycles_total = st.latency_cycles_total;
    ok.latency_cycles_max = st.latency_cycles_max;
    srv_->release_session(it->second.tenant);
    streams_.erase(it);
    enqueue(ok);
  }

  // --- stats push (v4) --------------------------------------------------------

  void handle_subscribe(const StatsSubscribe& sub) {
    if (sub.enable != 0 && sub.cadence_ms == 0) {
      send_error(kConnectionStream, ErrorCode::kBadParams,
                 "gateway: STATS_SUBSCRIBE cadence_ms must be > 0");
      return;
    }
    const std::uint32_t cadence =
        sub.enable != 0
            ? std::max(sub.cadence_ms, srv_->cfg_.min_stats_cadence_ms)
            : 0;
    bool start = false;
    {
      std::lock_guard<std::mutex> lock(pmu_);
      cadence_ms_ = cadence;
      push_now_ = cadence != 0;  // first push immediately (the ack)
      start = cadence != 0 && !pusher_.joinable();
      if (start) pusher_ = std::thread([this] { pusher_loop(); });
    }
    p_cv_.notify_all();
  }

  /// Periodic server-initiated STATS_PUSH frames. One lazily-started
  /// thread per subscribed connection; lives until the reader exits.
  void pusher_loop() {
    std::uint64_t seq = 0;
    std::unique_lock<std::mutex> lock(pmu_);
    for (;;) {
      p_cv_.wait(lock, [this] { return pusher_stop_ || cadence_ms_ != 0; });
      if (pusher_stop_) return;
      push_now_ = false;
      const std::uint32_t cadence = cadence_ms_;
      lock.unlock();
      // Built and enqueued unlocked: build_stats_push takes server-side
      // snapshots and enqueue may block on writer backpressure.
      enqueue(srv_->build_stats_push(seq++));
      lock.lock();
      p_cv_.wait_for(lock, std::chrono::milliseconds(cadence),
                     [this, cadence] {
                       return pusher_stop_ || push_now_ ||
                              cadence_ms_ != cadence;
                     });
      if (pusher_stop_) return;
    }
  }

  void stop_pusher() {
    {
      std::lock_guard<std::mutex> lock(pmu_);
      pusher_stop_ = true;
    }
    p_cv_.notify_all();
    if (pusher_.joinable()) pusher_.join();
  }

  /// EOF/teardown: settle every live stream (deliver what was submitted;
  /// buffered-but-unsubmitted samples are discarded -- the peer is gone)
  /// and release its quota.
  void shutdown_streams() {
    for (auto& [id, st] : streams_) {
      try {
        st.session->drain();
      } catch (...) {
        // job failures were already routed to the error sink
      }
      srv_->release_session(st.tenant);
    }
    streams_.clear();
  }

  Server* srv_;
  std::unique_ptr<Transport> t_;
  std::uint32_t journal_conn_ = 0;  ///< journal connection id (0 when off)
  std::thread reader_;
  std::thread writer_;

  std::map<std::uint32_t, StreamState> streams_;  ///< reader-thread-owned

  std::mutex pmu_;                ///< pusher state below
  std::condition_variable p_cv_;  ///< cadence change / immediate push / stop
  std::thread pusher_;            ///< started on first STATS_SUBSCRIBE
  std::uint32_t cadence_ms_ = 0;  ///< 0 = not subscribed
  bool push_now_ = false;         ///< one immediate push requested
  bool pusher_stop_ = false;

  std::mutex wmu_;
  std::condition_variable w_cv_;       ///< writer: frames queued / stop
  std::condition_variable wspace_cv_;  ///< enqueuers: space freed / closed
  std::deque<std::vector<std::uint8_t>> wq_;
  std::size_t bound_;
  bool finishing_ = false;  ///< no more producers; flush and exit
  bool closed_ = false;     ///< transport dead; drop everything
  std::atomic<bool> done_{false};  ///< reader exited; reapable
};

// --- Server -------------------------------------------------------------------

namespace {

stream::StreamServer::Config make_stream_config(
    stream::StreamServer::Config cfg) {
  // The gateway depends on delivery lanes: results must reach connection
  // writers without any producer thread reaping them.
  if (cfg.completion_threads == 0) cfg.completion_threads = 2;
  return cfg;
}

} // namespace

Server::Server(Config cfg)
    : cfg_(std::move(cfg)), stream_(make_stream_config(cfg_.stream)) {
  if (!cfg_.journal_path.empty()) {
    journal_ = std::make_unique<obs::Journal>();
    std::string why;
    if (!journal_->open(cfg_.journal_path, kProtocolVersion, &why)) {
      throw HostError("gateway: " + why);
    }
  }
}

Server::~Server() { stop(); }

std::uint16_t Server::listen_tcp(std::uint16_t port) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) throw HostError("gateway: listen_tcp after stop");
    if (listener_ != nullptr) {
      throw HostError("gateway: listen_tcp called twice");
    }
    listener_ = gateway::listen_tcp(port);
  }
  acceptor_ = std::thread([this] { accept_loop(); });
  return listener_->port();
}

void Server::accept_loop() {
  for (;;) {
    std::unique_ptr<Transport> t = listener_->accept();
    if (t == nullptr) return;
    serve(std::move(t));
  }
}

std::unique_ptr<Transport> Server::connect_loopback(std::size_t capacity) {
  auto [client_end, server_end] = make_loopback(capacity);
  serve(std::move(server_end));
  return std::move(client_end);
}

void Server::serve(std::unique_ptr<Transport> t) {
  // Settled connections (client closed or vanished; reader exited, quota
  // already released) are reaped here, so a tenant that crash-loops
  // through abrupt reconnects cannot grow the connection list without
  // bound. Destruction (thread joins) happens outside the lock.
  std::vector<std::unique_ptr<Connection>> dead;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      t->shutdown();
      return;
    }
    for (auto& c : connections_) {
      if (c->done()) dead.push_back(std::move(c));
    }
    connections_.erase(
        std::remove(connections_.begin(), connections_.end(), nullptr),
        connections_.end());
    ++tel_.connections;
    const std::uint32_t journal_conn =
        journal_ != nullptr ? journal_->conn_open(now_ns()) : 0;
    connections_.push_back(
        std::make_unique<Connection>(*this, std::move(t), journal_conn));
    connections_.back()->start();
  }
  dead.clear();
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  if (listener_ != nullptr) listener_->close();
  if (acceptor_.joinable()) acceptor_.join();
  // Snapshot under the lock, stop/join outside it (readers draining
  // sessions call back into the server for quota release).
  std::vector<Connection*> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns.reserve(connections_.size());
    for (auto& c : connections_) conns.push_back(c.get());
  }
  for (Connection* c : conns) c->begin_stop();
  for (Connection* c : conns) c->join();
  // Delivery lanes hold sink lambdas pointing at the connections: drain
  // and join them before any Connection can be destroyed.
  if (stream_.completer() != nullptr) stream_.completer()->stop();
  stream_.pool().wait_idle();
  // Every producer (readers, delivery lanes) is quiet: seal the journal.
  if (journal_ != nullptr) journal_->finalize();
}

bool Server::admit_session(std::uint32_t tenant, const OpenSession& open,
                           Error* err) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) {
    err->code = static_cast<std::uint16_t>(ErrorCode::kShutdown);
    err->message = "gateway: server is stopping";
    return false;
  }
  if (open.max_inflight == 0 || open.max_inflight > cfg_.quotas.max_inflight) {
    err->code = static_cast<std::uint16_t>(ErrorCode::kQuotaInflight);
    err->message = "gateway: requested max_inflight outside [1, " +
                   std::to_string(cfg_.quotas.max_inflight) + "]";
    return false;
  }
  if (live_sessions_ >= cfg_.quotas.max_sessions) {
    err->code = static_cast<std::uint16_t>(ErrorCode::kQuotaSessions);
    err->message = "gateway: server session quota exhausted";
    return false;
  }
  Tenant& t = tenants_[tenant];
  if (t.live_sessions >= cfg_.quotas.max_sessions_per_tenant) {
    err->code = static_cast<std::uint16_t>(ErrorCode::kQuotaSessions);
    err->message = "gateway: tenant session quota exhausted";
    return false;
  }
  ++t.live_sessions;
  ++live_sessions_;
  ++tel_.sessions;
  ++tel_.open_streams;
  return true;
}

void Server::release_session(std::uint32_t tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  Tenant& t = tenants_[tenant];
  if (t.live_sessions > 0) --t.live_sessions;
  if (live_sessions_ > 0) --live_sessions_;
  if (tel_.open_streams > 0) --tel_.open_streams;
}

std::uint64_t Server::now_ns() const {
  if (cfg_.clock_ns) return cfg_.clock_ns();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool Server::charge_rate(std::uint32_t tenant, std::size_t bytes) {
  if (cfg_.quotas.bytes_per_second <= 0.0) return true;
  const std::uint64_t now = now_ns();
  std::lock_guard<std::mutex> lock(mu_);
  Tenant& t = tenants_[tenant];
  if (!t.bucket_init) {
    t.tokens = cfg_.quotas.burst_bytes;
    t.last_ns = now;
    t.bucket_init = true;
  }
  const double elapsed_s =
      now > t.last_ns ? static_cast<double>(now - t.last_ns) * 1e-9 : 0.0;
  t.tokens = std::min(cfg_.quotas.burst_bytes,
                      t.tokens + elapsed_s * cfg_.quotas.bytes_per_second);
  t.last_ns = now;
  if (t.tokens < static_cast<double>(bytes)) {
    ++tel_.rate_limited;
    return false;
  }
  t.tokens -= static_cast<double>(bytes);
  return true;
}

Server::Telemetry Server::telemetry() const {
  Telemetry t;
  {
    std::lock_guard<std::mutex> lock(mu_);
    t = tel_;
  }
  t.frames_in = frames_in_.load(std::memory_order_relaxed);
  t.results_sent = results_sent_.load(std::memory_order_relaxed);
  t.errors_sent = errors_sent_.load(std::memory_order_relaxed);
  return t;
}

void fold_fleet(Stats& s, const runtime::FleetStats& fleet) {
  s.jobs_completed = fleet.jobs_completed;
  s.jobs_failed = fleet.jobs_failed;
  s.fleet_makespan = fleet.fleet_makespan;
  s.total_device_cycles = fleet.total_device_cycles;
  s.stagings = fleet.stagings;
  s.total_pj = fleet.total_pj;
  s.images_hydrated = fleet.image_cache.hydrated;
  s.traces_hydrated = fleet.trace_cache.hydrated;
  s.artifact_attached = fleet.artifact_attached ? 1 : 0;
  s.devices_failed = fleet.devices_failed;
  s.devices_revived = fleet.devices_revived;
  s.devices_dead = fleet.devices_dead;
  s.jobs_rescued = fleet.jobs_rescued;
  s.checkpoints_restored = fleet.checkpoints_restored;
  s.traced_launches = fleet.traced_launches;
  s.traced_rollbacks = fleet.traced_rollbacks;
  s.batched_launches = fleet.batched_launches;
  s.jobs_batched = fleet.jobs_batched;
  s.replay_decoupled_cycles = fleet.replay_decoupled_cycles;
  s.replay_lockstep_cycles = fleet.replay_lockstep_cycles;
  s.replay_interpreted_cycles = fleet.replay_interpreted_cycles;
  s.replay_sync_points = fleet.replay_sync_points;
}

Stats Server::build_stats() const {
  return build_stats(stream_.pool().peek_stats());
}

Stats Server::build_stats(const runtime::FleetStats& fleet) const {
  Stats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.sessions = tel_.sessions;
    s.connections = tel_.connections;
  }
  s.windows_delivered = results_sent_.load(std::memory_order_relaxed);
  s.devices = stream_.pool().num_devices();
  fold_fleet(s, fleet);
  return s;
}

StatsPush Server::build_stats_push(std::uint64_t seq) const {
  const runtime::FleetStats fleet = stream_.pool().peek_stats();
  StatsPush p;
  p.seq = seq;
  p.stats = build_stats(fleet);
  p.devices.reserve(fleet.device_cycles.size());
  for (std::size_t d = 0; d < fleet.device_cycles.size(); ++d) {
    DeviceLoad load;
    load.cycles = fleet.device_cycles[d];
    load.jobs = d < fleet.device_jobs.size() ? fleet.device_jobs[d] : 0;
    load.dead = d < fleet.device_dead.size() ? fleet.device_dead[d] : 0;
    p.devices.push_back(load);
  }
  // StreamServer sessions are append-only (closed sessions keep their
  // final counters), so on a long-lived server the newest tail is the
  // live set -- and it bounds the frame size.
  std::vector<stream::SessionStats> sessions = stream_.peek_sessions();
  const std::size_t first =
      sessions.size() > StatsPush::kMaxSessionLoads
          ? sessions.size() - StatsPush::kMaxSessionLoads
          : 0;
  p.sessions.reserve(sessions.size() - first);
  for (std::size_t i = first; i < sessions.size(); ++i) {
    const stream::SessionStats& ss = sessions[i];
    SessionLoad l;
    l.id = ss.id;
    l.device = ss.device;
    l.windows_submitted = ss.windows_submitted;
    l.windows_delivered = ss.windows_delivered;
    l.dropped_samples = ss.dropped_samples;
    l.latency_cycles_total = ss.latency_cycles_total;
    p.sessions.push_back(l);
  }
  return p;
}

} // namespace vwr2a::gateway
