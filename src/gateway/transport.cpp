#include "gateway/transport.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/status.hpp"

namespace vwr2a::gateway {

namespace {

// --- loopback -----------------------------------------------------------------

/// One direction of the loopback pair: a bounded byte FIFO.
struct Pipe {
  std::mutex mu;
  std::condition_variable readable;
  std::condition_variable writable;
  std::deque<std::uint8_t> q;
  std::size_t capacity;
  bool closed = false;

  explicit Pipe(std::size_t cap) : capacity(cap) {}

  bool write(const std::uint8_t* data, std::size_t n) {
    std::size_t off = 0;
    std::unique_lock<std::mutex> lock(mu);
    while (off < n) {
      writable.wait(lock, [this] { return closed || q.size() < capacity; });
      if (closed) return false;
      const std::size_t take = std::min(n - off, capacity - q.size());
      q.insert(q.end(), data + off, data + off + take);
      off += take;
      readable.notify_one();
    }
    return true;
  }

  std::size_t read(std::uint8_t* data, std::size_t max) {
    std::unique_lock<std::mutex> lock(mu);
    readable.wait(lock, [this] { return closed || !q.empty(); });
    if (q.empty()) return 0;  // closed and drained
    const std::size_t take = std::min(max, q.size());
    std::copy_n(q.begin(), take, data);
    q.erase(q.begin(), q.begin() + static_cast<std::ptrdiff_t>(take));
    writable.notify_one();
    return take;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mu);
      closed = true;
    }
    readable.notify_all();
    writable.notify_all();
  }
};

/// Shared state of one loopback connection (two directed pipes).
struct LoopbackState {
  Pipe a_to_b;
  Pipe b_to_a;
  LoopbackState(std::size_t cap) : a_to_b(cap), b_to_a(cap) {}
};

class LoopbackEnd : public Transport {
 public:
  LoopbackEnd(std::shared_ptr<LoopbackState> state, bool is_a)
      : state_(std::move(state)), is_a_(is_a) {}
  ~LoopbackEnd() override { shutdown(); }

  bool send(const std::uint8_t* data, std::size_t n) override {
    return out().write(data, n);
  }
  std::size_t recv(std::uint8_t* data, std::size_t max) override {
    return in().read(data, max);
  }
  void shutdown() override {
    state_->a_to_b.close();
    state_->b_to_a.close();
  }

 private:
  Pipe& out() { return is_a_ ? state_->a_to_b : state_->b_to_a; }
  Pipe& in() { return is_a_ ? state_->b_to_a : state_->a_to_b; }
  std::shared_ptr<LoopbackState> state_;
  bool is_a_;
};

// --- TCP ----------------------------------------------------------------------

class TcpTransport : public Transport {
 public:
  explicit TcpTransport(int fd) : fd_(fd) {}
  ~TcpTransport() override {
    shutdown();
    ::close(fd_);
  }

  bool send(const std::uint8_t* data, std::size_t n) override {
    std::size_t off = 0;
    while (off < n) {
      const ssize_t k = ::send(fd_, data + off, n - off, MSG_NOSIGNAL);
      if (k <= 0) return false;
      off += static_cast<std::size_t>(k);
    }
    return true;
  }

  std::size_t recv(std::uint8_t* data, std::size_t max) override {
    const ssize_t k = ::recv(fd_, data, max, 0);
    return k > 0 ? static_cast<std::size_t>(k) : 0;
  }

  void shutdown() override { ::shutdown(fd_, SHUT_RDWR); }

 private:
  int fd_;
};

class TcpListener : public Listener {
 public:
  explicit TcpListener(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw HostError("gateway: socket() failed");
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(fd_, 64) != 0) {
      ::close(fd_);
      throw HostError("gateway: bind/listen on 127.0.0.1 failed");
    }
    socklen_t len = sizeof addr;
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
      ::close(fd_);
      throw HostError("gateway: getsockname failed");
    }
    port_ = ntohs(addr.sin_port);
  }
  ~TcpListener() override {
    close();
    ::close(fd_);
  }

  std::unique_ptr<Transport> accept() override {
    const int c = ::accept(fd_, nullptr, nullptr);
    if (c < 0) return nullptr;  // closed (or fatal); stop accepting
    const int one = 1;
    ::setsockopt(c, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return std::make_unique<TcpTransport>(c);
  }

  void close() override { ::shutdown(fd_, SHUT_RDWR); }

  std::uint16_t port() const override { return port_; }

 private:
  int fd_;
  std::uint16_t port_ = 0;
};

} // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
make_loopback(std::size_t capacity) {
  if (capacity == 0) throw HostError("gateway: loopback capacity must be > 0");
  auto state = std::make_shared<LoopbackState>(capacity);
  return {std::make_unique<LoopbackEnd>(state, true),
          std::make_unique<LoopbackEnd>(state, false)};
}

std::unique_ptr<Listener> listen_tcp(std::uint16_t port) {
  return std::make_unique<TcpListener>(port);
}

std::unique_ptr<Transport> connect_tcp(const std::string& host,
                                       std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw HostError("gateway: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw HostError("gateway: connect_tcp needs a numeric IPv4 host");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    throw HostError("gateway: connect to " + host + " failed");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return std::make_unique<TcpTransport>(fd);
}

} // namespace vwr2a::gateway
