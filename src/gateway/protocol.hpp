#pragma once
// The gateway wire protocol: length-prefixed binary frames over any
// byte-stream transport (TCP, in-process loopback). See docs/protocol.md
// for the normative layout. Summary:
//
//   u32 length   payload length + 2, little-endian (bounds the read)
//   u8  version  kProtocolVersion
//   u8  type     FrameType
//   ...          type-specific payload, little-endian scalars
//
// Strings are u32-length-prefixed UTF-8; sample/output arrays are
// u32-count-prefixed arrays of i32. The decoder is incremental (feed bytes
// as they arrive, poll complete frames) and hardened: every read is
// bounds-checked against the declared frame length, a malformed, truncated
// or oversized frame raises ProtocolError -- it never crashes, over-reads,
// or allocates more than kMaxFramePayload + a small constant.

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/status.hpp"

namespace vwr2a::gateway {

/// The versioning byte every frame carries (bumped on breaking changes).
/// v2: STATS gained the artifact-hydration fields (images_hydrated,
/// traces_hydrated, artifact_attached).
/// v3: STATS gained the fault-and-recovery fields (devices_failed,
/// devices_revived, devices_dead, jobs_rescued, checkpoints_restored) --
/// the DEVICE_LOST/RECOVERED picture a tenant polls for.
/// v4: push-mode stats -- STATS_SUBSCRIBE (client -> server: cadence +
/// enable) and STATS_PUSH (server-initiated: seq + the full STATS picture
/// + per-device and per-session load arrays), the router-tier feed that
/// replaces polling.
/// v5: STATS gained the replay-engine fields (traced_launches,
/// traced_rollbacks, batched_launches, jobs_batched, and the per-tier
/// replayed-cycle / sync-point counters) -- which execution tier the
/// fleet's accelerator work actually ran on.
/// v6: WINDOW_RESULT gained the server-side span breakdown (queue_ns,
/// run_ns, deliver_ns host wall-clock; place_cycles, sim_begin simulated)
/// -- the cross-wire trace propagation a remote client feeds into its
/// local flight recorder. All five are 0 unless the server runs with
/// obs spans enabled.
inline constexpr std::uint8_t kProtocolVersion = 6;
/// Hard bound on one frame's payload; larger length prefixes are rejected
/// before any allocation happens.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;
/// ERROR frames not tied to one stream use this stream id.
inline constexpr std::uint32_t kConnectionStream = 0xffffffffu;

/// Error codes carried by ERROR frames.
enum class ErrorCode : std::uint16_t {
  kBadFrame = 1,        ///< malformed frame from the peer
  kBadVersion = 2,      ///< version byte mismatch
  kUnknownType = 3,     ///< unknown frame type
  kBadParams = 4,       ///< OPEN_SESSION parameters rejected
  kQuotaSessions = 5,   ///< per-tenant or server session cap hit
  kQuotaInflight = 6,   ///< requested max_inflight above the cap
  kQuotaRate = 7,       ///< tenant byte-rate exceeded; frame dropped
  kUnknownStream = 8,   ///< frame names a stream id never opened (or closed)
  kDuplicateStream = 9, ///< OPEN_SESSION reuses a live stream id
  kJobFailed = 10,      ///< a window's job raised on the device
  kShutdown = 11,       ///< server is stopping
};

/// A malformed/truncated/oversized frame (decode side) or an attempt to
/// encode an invalid frame. Carries the ERROR code the gateway reports for
/// it (kBadFrame unless the decoder saw something more specific).
class ProtocolError : public SimError {
 public:
  explicit ProtocolError(const std::string& msg,
                         ErrorCode code = ErrorCode::kBadFrame)
      : SimError(msg), code(code) {}
  ErrorCode code;
};

/// Frame discriminator on the wire.
enum class FrameType : std::uint8_t {
  // client -> server
  kOpenSession = 0x01,
  kPushSamples = 0x02,
  kFlush = 0x03,
  kClose = 0x04,
  kStatsRequest = 0x05,
  kStatsSubscribe = 0x06,
  // server -> client
  kOpenOk = 0x81,
  kWindowResult = 0x82,
  kFlushOk = 0x83,
  kCloseOk = 0x84,
  kStats = 0x85,
  kError = 0x86,
  kStatsPush = 0x87,
};

// --- frame structs ------------------------------------------------------------

/// Opens one logical stream on the connection. `stream` is a client-chosen
/// id, unique among the connection's live streams.
struct OpenSession {
  std::uint32_t stream = 0;
  std::uint32_t tenant = 0;      ///< quota accounting key
  std::uint8_t kind = 0;         ///< stream::SessionKind
  std::uint8_t target = 0;       ///< app::Target for bio sessions
  std::uint8_t lossy = 0;        ///< 1: try_push semantics (drops counted)
  std::uint32_t window = 512;
  std::uint32_t hop = 512;
  std::uint32_t max_inflight = 4;
  std::uint32_t buffer_capacity = 0;  ///< staging samples; 0 = 4 * window
};

struct OpenOk {
  std::uint32_t stream = 0;
  std::uint64_t session = 0;  ///< server-side session id
  std::uint32_t device = 0;   ///< soft-pin device the session landed on
};

struct PushSamples {
  std::uint32_t stream = 0;
  std::vector<std::int32_t> samples;  ///< 16.15 fixed point
};

struct Flush {
  std::uint32_t stream = 0;
};

/// Sent after every window of a FLUSH (full windows + zero-padded tail)
/// has been delivered as WINDOW_RESULT frames.
struct FlushOk {
  std::uint32_t stream = 0;
  std::uint64_t windows_delivered = 0;  ///< stream-lifetime total
};

struct Close {
  std::uint32_t stream = 0;
};

/// Final per-stream accounting, sent after the stream's last window.
struct CloseOk {
  std::uint32_t stream = 0;
  std::uint64_t windows_submitted = 0;
  std::uint64_t windows_delivered = 0;
  std::uint64_t windows_failed = 0;
  std::uint64_t samples_in = 0;
  std::uint64_t dropped_samples = 0;
  std::uint64_t dropped_pushes = 0;
  std::uint64_t latency_cycles_total = 0;
  std::uint64_t latency_cycles_max = 0;
};

struct StatsRequest {};

/// Server + fleet telemetry (runtime::DevicePool::peek_stats picture: live,
/// non-blocking, batch-boundary freshness).
struct Stats {
  std::uint32_t devices = 0;
  std::uint64_t sessions = 0;           ///< sessions opened server-lifetime
  std::uint64_t connections = 0;        ///< connections accepted
  std::uint64_t windows_delivered = 0;  ///< WINDOW_RESULT frames sent
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t fleet_makespan = 0;       ///< max device-local clock, cycles
  std::uint64_t total_device_cycles = 0;  ///< sum of device-local clocks
  std::uint64_t stagings = 0;
  double total_pj = 0.0;  ///< fleet energy
  /// Artifact warm-start telemetry (v2): kernel images / compiled traces
  /// hydrated from the fleet's prebuilt artifact, and whether one is
  /// attached at all (0/1).
  std::uint64_t images_hydrated = 0;
  std::uint64_t traces_hydrated = 0;
  std::uint8_t artifact_attached = 0;
  /// Fault-and-recovery telemetry (v3): cumulative DEVICE_LOST/RECOVERED
  /// counts, the current dead-device count, and how the fleet coped
  /// (queued jobs re-placed, resident state adopted elsewhere).
  std::uint64_t devices_failed = 0;
  std::uint64_t devices_revived = 0;
  std::uint64_t devices_dead = 0;
  std::uint64_t jobs_rescued = 0;
  std::uint64_t checkpoints_restored = 0;
  /// Replay-engine telemetry (v5): launches replayed from compiled traces,
  /// replays rolled back by cross-column SPM conflicts, launches executed
  /// through the fleet batch replayer (and jobs dispatched in SIMD-over-
  /// devices groups), plus per-tier column-cycle counters -- decoupled
  /// free-run vs lockstep vs interpreter -- and the sync-block count of
  /// scheduled replays. Work pinned to the slow tiers is visible here.
  std::uint64_t traced_launches = 0;
  std::uint64_t traced_rollbacks = 0;
  std::uint64_t batched_launches = 0;
  std::uint64_t jobs_batched = 0;
  std::uint64_t replay_decoupled_cycles = 0;
  std::uint64_t replay_lockstep_cycles = 0;
  std::uint64_t replay_interpreted_cycles = 0;
  std::uint64_t replay_sync_points = 0;
};

struct WindowResult {
  std::uint32_t stream = 0;
  std::uint64_t index = 0;   ///< window index within the stream, from 0
  std::uint32_t device = 0;  ///< device the window ran on
  std::uint64_t cycles = 0;  ///< per-window service cost (simulated)
  double pj = 0.0;           ///< per-window energy
  std::vector<std::int32_t> output;  ///< kernel output words
  /// v6 server-side span breakdown, keyed by window_id(session, index)
  /// client-side. All zero when the server's obs spans are off (the
  /// fields still travel -- a v6 frame has one layout). Host spans are
  /// wall-clock ns measured on the server; the two cycle fields are
  /// simulated device-local clocks, the same timebase as `cycles`.
  std::uint64_t queue_ns = 0;      ///< pool submit -> device claimed the job
  std::uint64_t run_ns = 0;        ///< Device::run wall time
  std::uint64_t deliver_ns = 0;    ///< run end -> WINDOW_RESULT enqueued
  std::uint64_t place_cycles = 0;  ///< estimated device backlog at placement
  std::uint64_t sim_begin = 0;     ///< device-local cycle when the run began
};

struct Error {
  std::uint32_t stream = kConnectionStream;
  std::uint16_t code = 0;  ///< ErrorCode
  std::string message;
};

/// v4: starts (enable=1) or stops (enable=0) server-initiated STATS_PUSH
/// frames on this connection, every `cadence_ms` milliseconds. A fresh
/// subscribe while already subscribed re-configures the cadence. The first
/// push is sent immediately (it doubles as the subscribe ack).
/// enable=1 with cadence_ms=0 is rejected with ERROR kBadParams.
struct StatsSubscribe {
  std::uint32_t cadence_ms = 0;
  std::uint8_t enable = 1;
};

/// One device's live load in a STATS_PUSH (index in the array = device id).
struct DeviceLoad {
  std::uint64_t cycles = 0;  ///< device-local clock (simulated)
  std::uint64_t jobs = 0;    ///< jobs completed on this device
  std::uint8_t dead = 0;     ///< 1 while fail-stopped
};

/// One session's live load in a STATS_PUSH.
struct SessionLoad {
  std::uint64_t id = 0;
  std::uint32_t device = 0;  ///< device of the last delivered window
  std::uint64_t windows_submitted = 0;
  std::uint64_t windows_delivered = 0;
  std::uint64_t dropped_samples = 0;
  std::uint64_t latency_cycles_total = 0;
};

/// v4: server-initiated stats frame. A distinct type from STATS so pushes
/// can never be mistaken for the reply to an in-flight STATS_REQUEST.
/// `sessions` carries at most the newest kMaxSessionLoads sessions.
struct StatsPush {
  static constexpr std::size_t kMaxSessionLoads = 256;
  std::uint64_t seq = 0;  ///< per-connection push counter, from 0
  Stats stats;
  std::vector<DeviceLoad> devices;
  std::vector<SessionLoad> sessions;
};

// New frame alternatives are appended (after Error) so Frame::index()
// stays stable for the existing types; frame_type() maps the indices.
using Frame = std::variant<OpenSession, PushSamples, Flush, Close,
                           StatsRequest, OpenOk, WindowResult, FlushOk,
                           CloseOk, Stats, Error, StatsSubscribe, StatsPush>;

/// The FrameType a Frame alternative encodes as.
FrameType frame_type(const Frame& f);

// --- codec --------------------------------------------------------------------

/// Appends `f`'s wire encoding to `out`. Throws ProtocolError if the frame
/// would exceed kMaxFramePayload.
void encode(const Frame& f, std::vector<std::uint8_t>& out);

/// Convenience: encodes into a fresh buffer.
std::vector<std::uint8_t> encode(const Frame& f);

/// Incremental frame decoder: feed arbitrary byte chunks, poll frames.
class Decoder {
 public:
  /// Appends received bytes to the internal buffer.
  void feed(const std::uint8_t* data, std::size_t n);
  void feed(const std::vector<std::uint8_t>& data) {
    feed(data.data(), data.size());
  }

  /// Decodes the next complete frame, or nullopt when more bytes are
  /// needed. Throws ProtocolError on malformed input (oversized length
  /// prefix, bad version, unknown type, payload that under- or over-runs
  /// its declared length); the decoder is then poisoned and every further
  /// call throws, matching connection-fatal semantics.
  std::optional<Frame> next();

  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
  bool poisoned_ = false;
};

} // namespace vwr2a::gateway
