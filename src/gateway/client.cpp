#include "gateway/client.hpp"

#include <utility>

#include "common/status.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vwr2a::gateway {

namespace {

/// Feeds one v6 WINDOW_RESULT span breakdown into the local obs layer:
/// remote-stage histograms and synthetic "remote.*" spans keyed by
/// obs::window_id(session, index) -- the same key the server's own spans
/// use, which is what lets vwr2a_trace merge the two captures with
/// cross-process flow arrows. The client has no clock sync with the
/// server, so the span chain is anchored at the frame's receive time and
/// laid out backward by the reported durations.
void feed_remote_spans(const WindowResult& wr, std::uint64_t session) {
  if (wr.queue_ns == 0 && wr.run_ns == 0 && wr.deliver_ns == 0) {
    return;  // server ran with spans off; nothing to file
  }
  if (obs::metrics_enabled()) {
    static obs::Histogram& queue =
        obs::Registry::get().histogram("client.remote_queue_ns");
    static obs::Histogram& run =
        obs::Registry::get().histogram("client.remote_run_ns");
    static obs::Histogram& deliver =
        obs::Registry::get().histogram("client.remote_deliver_ns");
    queue.record(wr.queue_ns);
    run.record(wr.run_ns);
    deliver.record(wr.deliver_ns);
  }
  if (!obs::tracing_enabled()) return;
  const std::uint64_t window = obs::window_id(session, wr.index);
  const std::uint64_t end = obs::now_ns();
  const std::uint64_t deliver_b = end - wr.deliver_ns;
  const std::uint64_t run_b = deliver_b - wr.run_ns;
  const std::uint64_t queue_b = run_b - wr.queue_ns;
  obs::complete("remote.queue", window, queue_b, wr.queue_ns, wr.device,
                wr.place_cycles);
  obs::TraceEvent run_ev;
  run_ev.name = "remote.run";
  run_ev.window = window;
  run_ev.ts_ns = run_b;
  run_ev.dur_ns = wr.run_ns;
  run_ev.sim_begin = wr.sim_begin;
  run_ev.sim_dur = wr.cycles;
  run_ev.a1 = wr.device;
  obs::Tracer::get().emit(run_ev);
  obs::complete("remote.deliver", window, deliver_b, wr.deliver_ns,
                wr.device);
}

} // namespace

Client::Client(std::unique_ptr<Transport> t) : t_(std::move(t)) {
  if (t_ == nullptr) throw HostError("gateway: client needs a transport");
  reader_ = std::thread([this] { reader_loop(); });
}

Client::~Client() { close(); }

void Client::send_frame(const Frame& f) {
  const std::vector<std::uint8_t> bytes = encode(f);
  std::lock_guard<std::mutex> lock(send_mu_);
  if (!t_->send(bytes.data(), bytes.size())) {
    throw HostError("gateway: connection closed while sending");
  }
}

Frame Client::request(Frame f, std::uint32_t key) {
  // One control round trip at a time: the ack routing key is the stream
  // id (kConnectionStream for STATS), so overlapping requests on one
  // stream would be ambiguous.
  std::lock_guard<std::mutex> req_lock(req_mu_);
  std::future<Frame> ack;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) throw HostError("gateway: client is closed");
    if (pending_.count(key) != 0) {
      throw HostError("gateway: overlapping request on one stream");
    }
    ack = pending_[key].get_future();
  }
  try {
    send_frame(f);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.erase(key);
    throw;
  }
  Frame reply = ack.get();
  if (auto* err = std::get_if<Error>(&reply)) {
    throw GatewayError(std::move(*err));
  }
  return reply;
}

std::uint32_t Client::open(const StreamOpts& opts, ResultFn on_result,
                           ErrorFn on_error) {
  OpenSession o;
  {
    std::lock_guard<std::mutex> lock(mu_);
    o.stream = next_stream_++;
    // Register callbacks before OPEN_OK can possibly arrive.
    streams_[o.stream] =
        StreamCbs{std::move(on_result), std::move(on_error), 0};
  }
  o.tenant = opts.tenant;
  o.kind = opts.kind;
  o.target = opts.target;
  o.lossy = opts.lossy ? 1 : 0;
  o.window = opts.window;
  o.hop = opts.hop;
  o.max_inflight = opts.max_inflight;
  o.buffer_capacity = opts.buffer_capacity;
  try {
    const Frame reply = request(o, o.stream);
    const auto& ok = std::get<OpenOk>(reply);
    std::lock_guard<std::mutex> lock(mu_);
    streams_[o.stream].device = ok.device;
    streams_[o.stream].session = ok.session;
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    streams_.erase(o.stream);
    throw;
  }
  return o.stream;
}

std::uint32_t Client::device_of(std::uint32_t stream) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = streams_.find(stream);
  if (it == streams_.end()) throw HostError("gateway: unknown stream");
  return it->second.device;
}

std::uint64_t Client::session_of(std::uint32_t stream) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = streams_.find(stream);
  if (it == streams_.end()) throw HostError("gateway: unknown stream");
  return it->second.session;
}

void Client::push(std::uint32_t stream,
                  std::span<const std::int32_t> samples) {
  PushSamples p;
  p.stream = stream;
  p.samples.assign(samples.begin(), samples.end());
  send_frame(p);
}

FlushOk Client::flush(std::uint32_t stream) {
  return std::get<FlushOk>(request(Flush{stream}, stream));
}

CloseOk Client::close_stream(std::uint32_t stream) {
  auto ok = std::get<CloseOk>(request(Close{stream}, stream));
  std::lock_guard<std::mutex> lock(mu_);
  streams_.erase(stream);
  return ok;
}

Stats Client::stats() {
  return std::get<Stats>(request(StatsRequest{}, kConnectionStream));
}

void Client::subscribe_stats(std::uint32_t cadence_ms, StatsPushFn on_push) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) throw HostError("gateway: client is closed");
    // Registered before the frame goes out: the first push doubles as the
    // subscribe ack and may arrive immediately.
    on_stats_push_ = std::move(on_push);
  }
  send_frame(StatsSubscribe{cadence_ms, 1});
}

void Client::unsubscribe_stats() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    on_stats_push_ = nullptr;
  }
  send_frame(StatsSubscribe{0, 0});
}

void Client::fail_all_pending() {
  std::map<std::uint32_t, std::promise<Frame>> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    pending.swap(pending_);
  }
  for (auto& [key, promise] : pending) {
    Error e;
    e.stream = key;
    e.code = static_cast<std::uint16_t>(ErrorCode::kShutdown);
    e.message = "gateway: connection closed";
    promise.set_value(e);
  }
}

void Client::reader_loop() {
  std::vector<std::uint8_t> buf(1u << 16);
  Decoder dec;
  try {
    for (;;) {
      const std::size_t n = t_->recv(buf.data(), buf.size());
      if (n == 0) break;
      dec.feed(buf.data(), n);
      while (auto f = dec.next()) {
        if (auto* wr = std::get_if<WindowResult>(&*f)) {
          ResultFn cb;
          std::uint64_t session = 0;
          bool known = false;
          {
            std::lock_guard<std::mutex> lock(mu_);
            const auto it = streams_.find(wr->stream);
            if (it != streams_.end()) {
              cb = it->second.on_result;
              session = it->second.session;
              known = true;
            }
          }
          if (known) feed_remote_spans(*wr, session);
          if (cb) cb(*wr);
          continue;
        }
        if (auto* push = std::get_if<StatsPush>(&*f)) {
          StatsPushFn cb;
          {
            std::lock_guard<std::mutex> lock(mu_);
            cb = on_stats_push_;
          }
          if (cb) cb(*push);
          continue;
        }
        if (auto* err = std::get_if<Error>(&*f)) {
          // An ERROR answers the stream's pending request when one is
          // blocked -- except the inherently asynchronous codes (a window
          // job failing, a rate-limited push), which always go to the
          // stream's error callback: they may arrive while an unrelated
          // FLUSH/CLOSE on the same stream is in flight.
          const bool async_error =
              err->code == static_cast<std::uint16_t>(ErrorCode::kJobFailed) ||
              err->code == static_cast<std::uint16_t>(ErrorCode::kQuotaRate);
          std::promise<Frame> p;
          ErrorFn cb;
          bool have_promise = false;
          {
            std::lock_guard<std::mutex> lock(mu_);
            const auto pit =
                async_error ? pending_.end() : pending_.find(err->stream);
            if (pit != pending_.end()) {
              p = std::move(pit->second);
              pending_.erase(pit);
              have_promise = true;
            } else {
              const auto sit = streams_.find(err->stream);
              if (sit != streams_.end()) cb = sit->second.on_error;
            }
          }
          if (have_promise) {
            p.set_value(std::move(*f));
          } else if (cb) {
            cb(*err);
          }
          continue;
        }
        // Ack frames: route by stream key.
        std::uint32_t key = kConnectionStream;
        if (auto* ok = std::get_if<OpenOk>(&*f)) key = ok->stream;
        else if (auto* fk = std::get_if<FlushOk>(&*f)) key = fk->stream;
        else if (auto* ck = std::get_if<CloseOk>(&*f)) key = ck->stream;
        std::promise<Frame> p;
        bool have_promise = false;
        {
          std::lock_guard<std::mutex> lock(mu_);
          const auto pit = pending_.find(key);
          if (pit != pending_.end()) {
            p = std::move(pit->second);
            pending_.erase(pit);
            have_promise = true;
          }
        }
        if (have_promise) p.set_value(std::move(*f));
        // Unsolicited acks are dropped (the server never sends them).
      }
    }
  } catch (const std::exception&) {
    // Malformed server bytes: treat as connection loss.
  }
  fail_all_pending();
}

void Client::close() {
  t_->shutdown();
  if (reader_.joinable()) reader_.join();
  fail_all_pending();
}

} // namespace vwr2a::gateway
