#pragma once
// The serving front-end over the device fleet: a gateway::Server owns a
// stream::StreamServer (always in completion-lane delivery mode) and
// exposes it over the wire protocol (protocol.hpp) to remote clients on
// TCP and/or the deterministic in-process loopback transport.
//
// Connection model. Each accepted connection gets a reader thread (parses
// frames, drives sessions -- PUSH backpressure propagates to the peer as
// transport flow control) and a writer thread draining a bounded outbound
// frame queue. Window results are produced by the StreamServer's delivery
// lanes: the per-session sink encodes a WINDOW_RESULT frame and enqueues
// it on the owning connection's writer. A slow or stalled client therefore
// blocks -- at worst -- its own connection's sink calls on one delivery
// lane; every session's ingest and every other connection keep running
// (the ROADMAP "sinks may block" item, closed in stream/completer.hpp).
//
// Multiplexing & ordering. One connection can run many streams; stream ids
// are client-chosen. Per-stream WINDOW_RESULT order equals window order
// (delivery lanes preserve it; the writer queue is FIFO), and FLUSH_OK /
// CLOSE_OK are enqueued only after the drained windows' results, so a
// client can treat them as barriers.
//
// Admission control. OPEN_SESSION is checked against per-tenant and
// server-wide quotas (live sessions, requested in-flight bound) and
// PUSH_SAMPLES against a per-tenant byte-rate token bucket; violations get
// an ERROR frame (the connection survives; only protocol-malformed bytes
// are connection-fatal). The quota clock is injectable for deterministic
// tests.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "gateway/protocol.hpp"
#include "gateway/transport.hpp"
#include "obs/journal.hpp"
#include "stream/server.hpp"

namespace vwr2a::gateway {

/// The single runtime::FleetStats -> wire-Stats mapping. Both the v3 STATS
/// reply and the v4 STATS_PUSH scalar block go through it (the
/// stats-aggregation dedup: the frames can never drift from peek_stats).
void fold_fleet(Stats& s, const runtime::FleetStats& fleet);

/// The gateway.
class Server {
 public:
  /// Per-tenant/server admission limits.
  struct Quotas {
    std::uint32_t max_sessions = 1024;           ///< live streams, server-wide
    std::uint32_t max_sessions_per_tenant = 64;  ///< live streams per tenant
    std::uint32_t max_inflight = 64;   ///< cap on OPEN_SESSION.max_inflight
    /// Sustained per-tenant ingest budget in payload bytes/second (token
    /// bucket refilled from the quota clock); 0 disables rate limiting.
    double bytes_per_second = 0.0;
    double burst_bytes = 1u << 16;  ///< bucket capacity
  };

  struct Config {
    /// The streaming layer underneath (fleet size, arch mix, scheduling).
    /// completion_threads is forced to >= 1: the gateway requires delivery
    /// off the connection reader threads.
    stream::StreamServer::Config stream;
    Quotas quotas;
    /// Outbound frames buffered per connection before sinks block.
    std::size_t writer_queue_frames = 256;
    /// Floor on STATS_SUBSCRIBE cadence: subscriptions asking for a
    /// shorter period are clamped up to this, bounding the push load one
    /// connection can demand.
    std::uint32_t min_stats_cadence_ms = 1;
    /// Monotonic nanosecond clock the rate limiter reads; null = wall
    /// clock (std::chrono::steady_clock). Tests inject a fake.
    std::function<std::uint64_t()> clock_ns;
    /// When non-empty, records every inbound frame (plus per-stream
    /// delivered-output digests) to this .vwr2jrn black-box journal,
    /// written out on stop(). Empty = no journal, zero recording cost.
    std::string journal_path;
  };

  /// Gateway-level counters (frames/results are atomic snapshots).
  struct Telemetry {
    std::uint64_t connections = 0;    ///< accepted, lifetime
    std::uint64_t sessions = 0;       ///< streams opened, lifetime
    std::uint64_t open_streams = 0;   ///< currently live streams
    std::uint64_t frames_in = 0;      ///< frames parsed from peers
    std::uint64_t results_sent = 0;   ///< WINDOW_RESULT frames enqueued
    std::uint64_t errors_sent = 0;    ///< ERROR frames enqueued
    std::uint64_t rate_limited = 0;   ///< PUSH frames rejected by the bucket
  };

  Server() : Server(Config()) {}
  explicit Server(Config cfg);
  ~Server();  ///< stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Starts accepting TCP connections on 127.0.0.1 (0 = ephemeral port).
  /// Returns the bound port. Call at most once.
  std::uint16_t listen_tcp(std::uint16_t port = 0);

  /// Opens a deterministic in-process connection and returns the client
  /// end; the server serves it exactly like an accepted TCP connection.
  std::unique_ptr<Transport> connect_loopback(std::size_t capacity = 1u << 20);

  /// Stops accepting, shuts every connection down, joins all threads and
  /// waits for the fleet to go idle. Idempotent.
  void stop();

  /// The streaming layer underneath (tests/benches: direct access).
  stream::StreamServer& streams() { return stream_; }

  /// The black-box journal, or null when Config::journal_path is empty.
  obs::Journal* journal() { return journal_.get(); }

  Telemetry telemetry() const;

  /// The STATS-frame picture: gateway counters + the pool's non-blocking
  /// fleet aggregate (runtime::DevicePool::peek_stats).
  Stats build_stats() const;
  /// Same, over an already-fetched fleet snapshot (lets STATS_PUSH build
  /// the scalar block and the per-device array from one snapshot).
  Stats build_stats(const runtime::FleetStats& fleet) const;

  /// One v4 STATS_PUSH frame: build_stats() + per-device loads + the
  /// newest sessions' loads, all from live non-blocking snapshots.
  StatsPush build_stats_push(std::uint64_t seq) const;

 private:
  class Connection;

  void serve(std::unique_ptr<Transport> t);
  void accept_loop();

  /// OPEN_SESSION admission; fills `err` and returns false on rejection.
  bool admit_session(std::uint32_t tenant, const OpenSession& open,
                     Error* err);
  void release_session(std::uint32_t tenant);
  /// Charges `bytes` against the tenant's token bucket; false = rejected.
  bool charge_rate(std::uint32_t tenant, std::size_t bytes);
  std::uint64_t now_ns() const;
  // Per-frame counters are lock-free: every connection bumps them on its
  // hot path, so they must not contend on mu_.
  void note_frame_in() { frames_in_.fetch_add(1, std::memory_order_relaxed); }
  void note_result_sent() {
    results_sent_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_error_sent() {
    errors_sent_.fetch_add(1, std::memory_order_relaxed);
  }

  Config cfg_;
  stream::StreamServer stream_;
  std::unique_ptr<obs::Journal> journal_;  ///< null = journaling off
  std::unique_ptr<Listener> listener_;
  std::thread acceptor_;

  struct Tenant {
    std::uint32_t live_sessions = 0;
    double tokens = 0.0;
    std::uint64_t last_ns = 0;
    bool bucket_init = false;
  };

  mutable std::mutex mu_;  ///< connections_, tenants_, counters, stopping_
  std::vector<std::unique_ptr<Connection>> connections_;
  std::map<std::uint32_t, Tenant> tenants_;
  std::uint32_t live_sessions_ = 0;
  Telemetry tel_;  ///< low-rate counters (sessions, connections, quota)
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> results_sent_{0};
  std::atomic<std::uint64_t> errors_sent_{0};
  bool stopping_ = false;
};

} // namespace vwr2a::gateway
