#include "gateway/protocol.hpp"

#include <bit>
#include <cstring>

namespace vwr2a::gateway {

namespace {

// --- little-endian scalar append ---------------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}
void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}
void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}
void put_samples(std::vector<std::uint8_t>& out,
                 const std::vector<std::int32_t>& v) {
  put_u32(out, static_cast<std::uint32_t>(v.size()));
  for (std::int32_t x : v) put_u32(out, static_cast<std::uint32_t>(x));
}

// --- bounds-checked payload cursor -------------------------------------------

/// Reads one frame's payload. Every accessor checks the remaining length
/// first, so a lying length prefix can never cause an over-read.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t n) : p_(data), n_(n) {}

  std::size_t remaining() const { return n_ - off_; }

  std::uint8_t u8() {
    need(1);
    return p_[off_++];
  }
  std::uint16_t u16() {
    need(2);
    std::uint16_t v = static_cast<std::uint16_t>(p_[off_]) |
                      static_cast<std::uint16_t>(p_[off_ + 1]) << 8;
    off_ += 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(p_[off_ + i]) << (8 * i);
    }
    off_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(p_[off_ + i]) << (8 * i);
    }
    off_ += 8;
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string string() {
    const std::uint32_t len = u32();
    need(len);
    std::string s(reinterpret_cast<const char*>(p_ + off_), len);
    off_ += len;
    return s;
  }
  std::vector<std::int32_t> samples() {
    const std::uint32_t count = u32();
    // The count is validated against the *actual* remaining bytes before
    // any allocation: a frame claiming 2^31 samples in a 10-byte payload
    // is rejected here, not in the allocator.
    if (remaining() / 4 < count) {
      throw ProtocolError("gateway: sample array overruns its frame");
    }
    std::vector<std::int32_t> v(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      v[i] = static_cast<std::int32_t>(u32());
    }
    return v;
  }
  /// Strict framing: the payload must be consumed exactly.
  void done() const {
    if (off_ != n_) {
      throw ProtocolError("gateway: trailing bytes in frame payload");
    }
  }

 private:
  void need(std::size_t k) const {
    if (n_ - off_ < k) {
      throw ProtocolError("gateway: frame payload truncated");
    }
  }
  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t off_ = 0;
};

// The STATS field block appears in two frames (STATS and STATS_PUSH);
// one reader/writer pair keeps them from drifting.
Stats read_stats(Reader& r) {
  Stats f;
  f.devices = r.u32();
  f.sessions = r.u64();
  f.connections = r.u64();
  f.windows_delivered = r.u64();
  f.jobs_completed = r.u64();
  f.jobs_failed = r.u64();
  f.fleet_makespan = r.u64();
  f.total_device_cycles = r.u64();
  f.stagings = r.u64();
  f.total_pj = r.f64();
  f.images_hydrated = r.u64();
  f.traces_hydrated = r.u64();
  f.artifact_attached = r.u8();
  f.devices_failed = r.u64();
  f.devices_revived = r.u64();
  f.devices_dead = r.u64();
  f.jobs_rescued = r.u64();
  f.checkpoints_restored = r.u64();
  f.traced_launches = r.u64();
  f.traced_rollbacks = r.u64();
  f.batched_launches = r.u64();
  f.jobs_batched = r.u64();
  f.replay_decoupled_cycles = r.u64();
  f.replay_lockstep_cycles = r.u64();
  f.replay_interpreted_cycles = r.u64();
  f.replay_sync_points = r.u64();
  return f;
}

void put_stats(std::vector<std::uint8_t>& out, const Stats& v) {
  put_u32(out, v.devices);
  put_u64(out, v.sessions);
  put_u64(out, v.connections);
  put_u64(out, v.windows_delivered);
  put_u64(out, v.jobs_completed);
  put_u64(out, v.jobs_failed);
  put_u64(out, v.fleet_makespan);
  put_u64(out, v.total_device_cycles);
  put_u64(out, v.stagings);
  put_f64(out, v.total_pj);
  put_u64(out, v.images_hydrated);
  put_u64(out, v.traces_hydrated);
  put_u8(out, v.artifact_attached);
  put_u64(out, v.devices_failed);
  put_u64(out, v.devices_revived);
  put_u64(out, v.devices_dead);
  put_u64(out, v.jobs_rescued);
  put_u64(out, v.checkpoints_restored);
  put_u64(out, v.traced_launches);
  put_u64(out, v.traced_rollbacks);
  put_u64(out, v.batched_launches);
  put_u64(out, v.jobs_batched);
  put_u64(out, v.replay_decoupled_cycles);
  put_u64(out, v.replay_lockstep_cycles);
  put_u64(out, v.replay_interpreted_cycles);
  put_u64(out, v.replay_sync_points);
}

Frame decode_payload(FrameType type, Reader& r) {
  switch (type) {
    case FrameType::kOpenSession: {
      OpenSession f;
      f.stream = r.u32();
      f.tenant = r.u32();
      f.kind = r.u8();
      f.target = r.u8();
      f.lossy = r.u8();
      f.window = r.u32();
      f.hop = r.u32();
      f.max_inflight = r.u32();
      f.buffer_capacity = r.u32();
      return f;
    }
    case FrameType::kPushSamples: {
      PushSamples f;
      f.stream = r.u32();
      f.samples = r.samples();
      return f;
    }
    case FrameType::kFlush:
      return Flush{r.u32()};
    case FrameType::kClose:
      return Close{r.u32()};
    case FrameType::kStatsRequest:
      return StatsRequest{};
    case FrameType::kOpenOk: {
      OpenOk f;
      f.stream = r.u32();
      f.session = r.u64();
      f.device = r.u32();
      return f;
    }
    case FrameType::kWindowResult: {
      WindowResult f;
      f.stream = r.u32();
      f.index = r.u64();
      f.device = r.u32();
      f.cycles = r.u64();
      f.pj = r.f64();
      f.output = r.samples();
      f.queue_ns = r.u64();
      f.run_ns = r.u64();
      f.deliver_ns = r.u64();
      f.place_cycles = r.u64();
      f.sim_begin = r.u64();
      return f;
    }
    case FrameType::kFlushOk: {
      FlushOk f;
      f.stream = r.u32();
      f.windows_delivered = r.u64();
      return f;
    }
    case FrameType::kCloseOk: {
      CloseOk f;
      f.stream = r.u32();
      f.windows_submitted = r.u64();
      f.windows_delivered = r.u64();
      f.windows_failed = r.u64();
      f.samples_in = r.u64();
      f.dropped_samples = r.u64();
      f.dropped_pushes = r.u64();
      f.latency_cycles_total = r.u64();
      f.latency_cycles_max = r.u64();
      return f;
    }
    case FrameType::kStats:
      return read_stats(r);
    case FrameType::kError: {
      Error f;
      f.stream = r.u32();
      f.code = r.u16();
      f.message = r.string();
      return f;
    }
    case FrameType::kStatsSubscribe: {
      StatsSubscribe f;
      f.cadence_ms = r.u32();
      f.enable = r.u8();
      return f;
    }
    case FrameType::kStatsPush: {
      StatsPush f;
      f.seq = r.u64();
      f.stats = read_stats(r);
      // Both array counts are validated against the actual remaining bytes
      // before any allocation (DeviceLoad = 17 bytes, SessionLoad = 44).
      const std::uint32_t ndev = r.u32();
      if (r.remaining() / 17 < ndev) {
        throw ProtocolError("gateway: device-load array overruns its frame");
      }
      f.devices.reserve(ndev);
      for (std::uint32_t i = 0; i < ndev; ++i) {
        DeviceLoad d;
        d.cycles = r.u64();
        d.jobs = r.u64();
        d.dead = r.u8();
        f.devices.push_back(d);
      }
      const std::uint32_t nses = r.u32();
      if (r.remaining() / 44 < nses) {
        throw ProtocolError("gateway: session-load array overruns its frame");
      }
      f.sessions.reserve(nses);
      for (std::uint32_t i = 0; i < nses; ++i) {
        SessionLoad l;
        l.id = r.u64();
        l.device = r.u32();
        l.windows_submitted = r.u64();
        l.windows_delivered = r.u64();
        l.dropped_samples = r.u64();
        l.latency_cycles_total = r.u64();
        f.sessions.push_back(l);
      }
      return f;
    }
  }
  throw ProtocolError("gateway: unknown frame type", ErrorCode::kUnknownType);
}

void encode_payload(const Frame& f, std::vector<std::uint8_t>& out) {
  std::visit(
      [&out](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, OpenSession>) {
          put_u32(out, v.stream);
          put_u32(out, v.tenant);
          put_u8(out, v.kind);
          put_u8(out, v.target);
          put_u8(out, v.lossy);
          put_u32(out, v.window);
          put_u32(out, v.hop);
          put_u32(out, v.max_inflight);
          put_u32(out, v.buffer_capacity);
        } else if constexpr (std::is_same_v<T, PushSamples>) {
          put_u32(out, v.stream);
          put_samples(out, v.samples);
        } else if constexpr (std::is_same_v<T, Flush>) {
          put_u32(out, v.stream);
        } else if constexpr (std::is_same_v<T, Close>) {
          put_u32(out, v.stream);
        } else if constexpr (std::is_same_v<T, StatsRequest>) {
          // empty payload
        } else if constexpr (std::is_same_v<T, OpenOk>) {
          put_u32(out, v.stream);
          put_u64(out, v.session);
          put_u32(out, v.device);
        } else if constexpr (std::is_same_v<T, WindowResult>) {
          put_u32(out, v.stream);
          put_u64(out, v.index);
          put_u32(out, v.device);
          put_u64(out, v.cycles);
          put_f64(out, v.pj);
          put_samples(out, v.output);
          put_u64(out, v.queue_ns);
          put_u64(out, v.run_ns);
          put_u64(out, v.deliver_ns);
          put_u64(out, v.place_cycles);
          put_u64(out, v.sim_begin);
        } else if constexpr (std::is_same_v<T, FlushOk>) {
          put_u32(out, v.stream);
          put_u64(out, v.windows_delivered);
        } else if constexpr (std::is_same_v<T, CloseOk>) {
          put_u32(out, v.stream);
          put_u64(out, v.windows_submitted);
          put_u64(out, v.windows_delivered);
          put_u64(out, v.windows_failed);
          put_u64(out, v.samples_in);
          put_u64(out, v.dropped_samples);
          put_u64(out, v.dropped_pushes);
          put_u64(out, v.latency_cycles_total);
          put_u64(out, v.latency_cycles_max);
        } else if constexpr (std::is_same_v<T, Stats>) {
          put_stats(out, v);
        } else if constexpr (std::is_same_v<T, StatsSubscribe>) {
          put_u32(out, v.cadence_ms);
          put_u8(out, v.enable);
        } else if constexpr (std::is_same_v<T, StatsPush>) {
          put_u64(out, v.seq);
          put_stats(out, v.stats);
          put_u32(out, static_cast<std::uint32_t>(v.devices.size()));
          for (const DeviceLoad& d : v.devices) {
            put_u64(out, d.cycles);
            put_u64(out, d.jobs);
            put_u8(out, d.dead);
          }
          put_u32(out, static_cast<std::uint32_t>(v.sessions.size()));
          for (const SessionLoad& l : v.sessions) {
            put_u64(out, l.id);
            put_u32(out, l.device);
            put_u64(out, l.windows_submitted);
            put_u64(out, l.windows_delivered);
            put_u64(out, l.dropped_samples);
            put_u64(out, l.latency_cycles_total);
          }
        } else {  // Error
          put_u32(out, v.stream);
          put_u16(out, v.code);
          put_string(out, v.message);
        }
      },
      f);
}

} // namespace

FrameType frame_type(const Frame& f) {
  switch (f.index()) {
    case 0: return FrameType::kOpenSession;
    case 1: return FrameType::kPushSamples;
    case 2: return FrameType::kFlush;
    case 3: return FrameType::kClose;
    case 4: return FrameType::kStatsRequest;
    case 5: return FrameType::kOpenOk;
    case 6: return FrameType::kWindowResult;
    case 7: return FrameType::kFlushOk;
    case 8: return FrameType::kCloseOk;
    case 9: return FrameType::kStats;
    case 10: return FrameType::kError;
    case 11: return FrameType::kStatsSubscribe;
    default: return FrameType::kStatsPush;
  }
}

void encode(const Frame& f, std::vector<std::uint8_t>& out) {
  const std::size_t len_at = out.size();
  put_u32(out, 0);  // patched below
  put_u8(out, kProtocolVersion);
  put_u8(out, static_cast<std::uint8_t>(frame_type(f)));
  encode_payload(f, out);
  const std::size_t body = out.size() - len_at - 4;  // ver + type + payload
  if (body - 2 > kMaxFramePayload) {
    throw ProtocolError("gateway: frame payload exceeds kMaxFramePayload");
  }
  const auto len = static_cast<std::uint32_t>(body);
  for (int i = 0; i < 4; ++i) {
    out[len_at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(len >> (8 * i));
  }
}

std::vector<std::uint8_t> encode(const Frame& f) {
  std::vector<std::uint8_t> out;
  encode(f, out);
  return out;
}

void Decoder::feed(const std::uint8_t* data, std::size_t n) {
  // Compact once the consumed prefix dominates, so the buffer stays
  // O(one frame + one receive chunk).
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

std::optional<Frame> Decoder::next() {
  if (poisoned_) {
    throw ProtocolError("gateway: decoder poisoned by an earlier bad frame");
  }
  if (buffered() < 4) return std::nullopt;
  const std::uint8_t* p = buf_.data() + pos_;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  if (len < 2 || len - 2 > kMaxFramePayload) {
    poisoned_ = true;
    throw ProtocolError("gateway: frame length prefix out of bounds");
  }
  if (buffered() < 4ull + len) return std::nullopt;
  try {
    const std::uint8_t ver = p[4];
    if (ver != kProtocolVersion) {
      throw ProtocolError("gateway: protocol version mismatch",
                          ErrorCode::kBadVersion);
    }
    const auto type = static_cast<FrameType>(p[5]);
    Reader r(p + 6, len - 2);
    Frame f = decode_payload(type, r);
    r.done();
    pos_ += 4ull + len;
    return f;
  } catch (...) {
    poisoned_ = true;
    throw;
  }
}

} // namespace vwr2a::gateway
