#pragma once
// Client side of the gateway protocol: wraps one Transport (loopback or
// TCP) into a typed API -- open streams, push samples, flush/close with
// barrier semantics, query server stats. A background reader thread
// dispatches WINDOW_RESULT frames to per-stream callbacks and routes acks
// back to the blocked request.
//
// Threading. Control operations (open/flush/close_stream/stats) are
// blocking request->ack round trips, serialized internally; push() only
// writes (its backpressure is the transport's flow control). Different
// threads may drive different streams of one client. Result and error
// callbacks run on the client's reader thread: they must not call back
// into blocking client operations (post to your own queue instead).

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>

#include "gateway/protocol.hpp"
#include "gateway/transport.hpp"

namespace vwr2a::gateway {

/// An ERROR frame surfaced as an exception (control-request failures).
class GatewayError : public SimError {
 public:
  explicit GatewayError(Error err)
      : SimError("gateway error " + std::to_string(err.code) + ": " +
                 err.message),
        error(std::move(err)) {}
  Error error;
};

/// The client.
class Client {
 public:
  using ResultFn = std::function<void(const WindowResult&)>;
  using ErrorFn = std::function<void(const Error&)>;
  using StatsPushFn = std::function<void(const StatsPush&)>;

  /// Stream parameters (the OPEN_SESSION payload minus the stream id,
  /// which the client allocates).
  struct StreamOpts {
    std::uint32_t tenant = 0;
    std::uint8_t kind = 0;    ///< stream::SessionKind
    std::uint8_t target = 2;  ///< app::Target (default kCpuVwr2a)
    bool lossy = false;       ///< try_push semantics server-side
    std::uint32_t window = 512;
    std::uint32_t hop = 512;
    std::uint32_t max_inflight = 4;
    std::uint32_t buffer_capacity = 0;
  };

  explicit Client(std::unique_ptr<Transport> t);
  ~Client();  ///< close()

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Opens a stream; blocks for OPEN_OK. Returns the stream id. Throws
  /// GatewayError on an ERROR reply (quota, bad params, ...).
  std::uint32_t open(const StreamOpts& opts, ResultFn on_result,
                     ErrorFn on_error = nullptr);

  /// The device the server soft-pinned `stream` to (from its OPEN_OK).
  std::uint32_t device_of(std::uint32_t stream) const;

  /// The server-side session id of `stream` (from its OPEN_OK): the key a
  /// v6 span breakdown is filed under (obs::window_id(session, index)).
  std::uint64_t session_of(std::uint32_t stream) const;

  /// Sends one PUSH_SAMPLES frame (blocking only on transport flow
  /// control; results arrive asynchronously on the reader thread).
  void push(std::uint32_t stream, std::span<const std::int32_t> samples);

  /// FLUSH barrier: returns once every window pushed so far (full windows
  /// + zero-padded tail) has been received as a WINDOW_RESULT.
  FlushOk flush(std::uint32_t stream);

  /// CLOSE barrier: final per-stream accounting.
  CloseOk close_stream(std::uint32_t stream);

  /// Server/fleet telemetry snapshot.
  Stats stats();

  /// v4 push-mode stats: asks the server for a STATS_PUSH every
  /// `cadence_ms` ms and routes each to `on_push` (reader thread -- same
  /// rules as result callbacks). Fire-and-forget: the subscribe ack IS the
  /// first push, which arrives immediately. Re-subscribing re-configures
  /// the cadence. cadence_ms must be > 0 (the server rejects 0 with
  /// ERROR kBadParams on the connection stream).
  void subscribe_stats(std::uint32_t cadence_ms, StatsPushFn on_push);

  /// Stops the pushes (frames already in flight may still arrive and are
  /// dropped once the callback is cleared).
  void unsubscribe_stats();

  /// Shuts the connection down and joins the reader. Idempotent. Pending
  /// requests fail with GatewayError(kShutdown).
  void close();

 private:
  Frame request(Frame f, std::uint32_t key);
  void send_frame(const Frame& f);
  void reader_loop();
  void fail_all_pending();

  std::unique_ptr<Transport> t_;
  std::thread reader_;

  struct StreamCbs {
    ResultFn on_result;
    ErrorFn on_error;
    std::uint32_t device = 0;
    std::uint64_t session = 0;  ///< server-side session id (OPEN_OK)
  };

  mutable std::mutex mu_;  ///< pending_, streams_, next_stream_, closed_
  std::map<std::uint32_t, std::promise<Frame>> pending_;  ///< by stream key
  std::map<std::uint32_t, StreamCbs> streams_;
  StatsPushFn on_stats_push_;  ///< set while subscribed
  std::uint32_t next_stream_ = 1;
  bool closed_ = false;

  std::mutex req_mu_;   ///< serializes control round trips
  std::mutex send_mu_;  ///< frame-atomic transport writes
};

} // namespace vwr2a::gateway
