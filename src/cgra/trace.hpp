#pragma once
// Execution tracing: an optional per-cycle observer on the VWR2A top level.
// The TextTracer renders a Table-1-style listing of what each slot executed
// every cycle -- the tool used to debug the kernel mappings in this repo.

#include <cstdint>
#include <deque>
#include <string>

#include "common/types.hpp"

namespace vwr2a::cgra {

class Column;

/// Observer interface; attach with Vwr2a::set_tracer().
class Tracer {
 public:
  virtual ~Tracer() = default;
  /// Called once per executed cycle, before the columns step.
  virtual void on_cycle(Cycle cycle, const Column& col0, const Column& col1) = 0;
};

/// Keeps the last `depth` cycles as disassembled text lines.
class TextTracer final : public Tracer {
 public:
  explicit TextTracer(std::size_t depth = 64) : depth_(depth) {}

  void on_cycle(Cycle cycle, const Column& col0, const Column& col1) override;

  /// The captured window, one line per cycle per running column.
  std::string str() const;

  void clear() { lines_.clear(); }

 private:
  std::size_t depth_;
  std::deque<std::string> lines_;
};

} // namespace vwr2a::cgra
