#include "cgra/shuffle.hpp"

#include "common/bits.hpp"
#include "common/status.hpp"

namespace vwr2a::cgra {

namespace {
constexpr unsigned kN = arch::kVwrWords;       // 128
constexpr unsigned kConcat = 2 * kN;           // 256
constexpr unsigned kConcatBits = 8;            // log2(256)
constexpr unsigned kShift = arch::kSliceWords; // 32
} // namespace

unsigned shuffle_source_index(isa::ShufMode mode, unsigned i) {
  using isa::ShufMode;
  switch (mode) {
    case ShufMode::kInterleaveLo:
      // out256[2j] = A[j] = c[j]; out256[2j+1] = B[j] = c[128 + j].
      return (i % 2 == 0) ? (i / 2) : (kN + i / 2);
    case ShufMode::kInterleaveHi: {
      const unsigned j = i + kN;
      return (j % 2 == 0) ? (j / 2) : (kN + j / 2);
    }
    case ShufMode::kEvenPrune:
      // evens of A then evens of B.
      return (i < kN / 2) ? (2 * i) : (kN + 2 * (i - kN / 2));
    case ShufMode::kOddPrune:
      return (i < kN / 2) ? (2 * i + 1) : (kN + 2 * (i - kN / 2) + 1);
    case ShufMode::kBitRevLo:
      return bit_reverse(i, kConcatBits);
    case ShufMode::kBitRevHi:
      return bit_reverse(i + kN, kConcatBits);
    case ShufMode::kCircShiftLo:
      return (i + kShift) % kConcat;
    case ShufMode::kCircShiftHi:
      return (i + kN + kShift) % kConcat;
    default:
      throw DecodeError("shuffle: bad mode");
  }
}

VwrRow shuffle_eval(isa::ShufMode mode, const VwrRow& a, const VwrRow& b) {
  VwrRow out{};
  for (unsigned i = 0; i < kN; ++i) {
    const unsigned src = shuffle_source_index(mode, i);
    out[i] = (src < kN) ? a[src] : b[src - kN];
  }
  return out;
}

} // namespace vwr2a::cgra
