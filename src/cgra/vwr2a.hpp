#pragma once
// The VWR2A top level (paper Fig. 1): two columns, the shared SPM, the
// configuration memory, the DMA master, and the synchronizer that launches
// kernels, keeps multi-column PCs in step, and raises the completion
// interrupt.
//
// The block keeps its own cycle counter ("local time"). Host-side costs
// (CPU polling, bus writes to the slave port) are charged by the SoC layer;
// the slave-port register-write latency seen *inside* the block is modeled
// here so that standalone (non-SoC) measurements still include the kernel
// programming overhead the paper mentions in Sec 5.1.1.

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "bus/sys_port.hpp"
#include "cgra/column.hpp"
#include "cgra/trace.hpp"
#include "cgra/tracecache.hpp"
#include "common/types.hpp"
#include "dma/dma.hpp"
#include "energy/meter.hpp"
#include "isa/program.hpp"
#include "mem/config_mem.hpp"
#include "mem/spm.hpp"

namespace vwr2a::cgra {

/// Cycle cost of one host register write into the VWR2A slave port.
inline constexpr unsigned kSlavePortWriteCycles = 2;

/// Cycle cost of the synchronizer's kernel-launch sequence.
inline constexpr unsigned kLaunchCycles = 4;

/// Cycle cost of raising the completion interrupt line.
inline constexpr unsigned kIrqCycles = 2;

/// The VWR2A accelerator block.
class Vwr2a {
 public:
  /// Builds the block with its master port attached to the system bus.
  explicit Vwr2a(bus::SysPort& sys);

  // --- resources ------------------------------------------------------------
  energy::EnergyMeter& meter() { return meter_; }
  const energy::EnergyMeter& meter() const { return meter_; }
  mem::Spm& spm() { return spm_; }
  const mem::Spm& spm() const { return spm_; }
  mem::ConfigMem& config_mem() { return config_; }
  dma::Dma& dma() { return dma_; }
  Column& column(unsigned c);
  const Column& column(unsigned c) const;

  /// Local cycle counter (advances during DMA, configuration, execution).
  Cycle cycles() const { return cycles_; }

  /// Kernel launches completed via run_kernel() since construction.
  std::uint64_t launches() const { return launches_; }

  // --- host interface (slave port) -------------------------------------------
  /// Registers a kernel image in the configuration memory; returns its id.
  unsigned register_kernel(isa::KernelImage image) {
    return config_.add_kernel(std::move(image));
  }

  /// Registers a shared immutable image (e.g. from an isa::ImageCache) so
  /// many devices alias one assembled copy.
  unsigned register_kernel(std::shared_ptr<const isa::KernelImage> image) {
    return config_.add_kernel(std::move(image));
  }

  /// Host write of one kernel parameter into a column's SRF (slave port).
  void host_write_srf(unsigned col, unsigned idx, Word v);

  /// Host read of one result from a column's SRF (slave port).
  Word host_read_srf(unsigned col, unsigned idx);

  /// Programs and executes one DMA descriptor; the block is busy for the
  /// returned number of cycles (the host driver model is synchronous).
  Cycle dma_transfer(const dma::Descriptor& d);

  /// Loads (if not already resident) and runs a kernel to completion.
  /// Returns the cycles consumed, including configuration load, launch
  /// overhead, and the completion interrupt.
  Cycle run_kernel(unsigned kernel_id);

  /// Steps the occupied columns of a *started* kernel by one cycle. Exposed
  /// for tests that want to observe intermediate state; run_kernel is the
  /// normal path.
  void start_kernel(unsigned kernel_id);
  bool busy() const;
  void step();

  /// Attaches a per-cycle execution tracer (nullptr detaches). A tracer
  /// forces the interpreter (it observes per-cycle state).
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  // --- trace-cached execution (see cgra/tracecache.hpp) ----------------------

  /// Selects how run_kernel executes: the per-cycle interpreter (default)
  /// or compiled-trace replay. `variant` namespaces the trace-cache keys
  /// (soc::ArchConfig::name() when driven by a Platform).
  void set_exec_mode(ExecMode mode, std::string variant = "") {
    exec_mode_ = mode;
    trace_variant_ = std::move(variant);
  }
  ExecMode exec_mode() const { return exec_mode_; }

  /// Points this block at a shared trace cache (e.g. the DevicePool's
  /// isa::ImageCache::traces()), so a fleet compiles each program once.
  /// nullptr reverts to a private per-block cache.
  void set_trace_cache(TraceCache* cache) { trace_cache_ = cache; }

  /// The trace cache in use (shared if set, else the private one).
  TraceCache& trace_cache() {
    if (trace_cache_ != nullptr) return *trace_cache_;
    if (owned_traces_ == nullptr) owned_traces_ = std::make_unique<TraceCache>();
    return *owned_traces_;
  }

  /// Kernel launches that replayed compiled traces / fell back to the
  /// interpreter after a cross-column SPM conflict or replay fault.
  std::uint64_t traced_launches() const { return traced_launches_; }
  std::uint64_t traced_rollbacks() const { return traced_rollbacks_; }

  /// Per-engine column-cycle counters: how much simulated work each replay
  /// tier carried. Decoupled covers free-running block replay (whole-kernel
  /// decoupled runs, the free stretches of scheduled runs, and fleet-batched
  /// replay); lockstep covers per-line sync blocks and the per-cycle
  /// alternation tier; interpreted covers cycles stepped by the reference
  /// interpreter (interpret mode, tracers, and replay fallbacks alike). A
  /// kernel stuck on the slow tiers shows up here long before a profiler.
  std::uint64_t replayed_decoupled_cycles() const { return replayed_decoupled_; }
  std::uint64_t replayed_lockstep_cycles() const { return replayed_lockstep_; }
  std::uint64_t interpreted_cycles() const { return interpreted_cycles_; }

  /// Sync-block executions performed by scheduled replays, and kernel
  /// launches completed through the fleet batch replayer.
  std::uint64_t sync_points() const { return sync_points_; }
  std::uint64_t batched_launches() const { return batched_launches_; }

  /// Debug/benchmark knob: when set, two-column traced replays skip the
  /// decoupled and scheduled tiers and run the per-cycle lockstep tier
  /// unconditionally -- the pre-sync-plan behaviour of cross-column
  /// kernels. Results are identical by construction (lockstep is the
  /// conservative tier); only host-side replay throughput changes.
  /// Single-column replays are unaffected (free-running them is already
  /// conflict-free). Also makes the device ineligible for fleet-batched
  /// replay until cleared.
  void set_replay_lockstep_only(bool on) { replay_lockstep_only_ = on; }
  bool replay_lockstep_only() const { return replay_lockstep_only_; }

 private:
  friend struct tc::BatchReplayer;
  void advance(Cycle n);
  /// run_kernel body for ExecMode::kTraceCache: replays the kernel on the
  /// tier its compiled sync plan selects (decoupled free-run, scheduled
  /// free/sync stretches, or per-cycle lockstep), with copy-on-write SPM
  /// undo; rolls back to per-cycle lockstep on a runtime conflict, or to
  /// the interpreter on a replay fault.
  void run_kernel_traced();
  /// Per-cycle lockstep traced replay (columns alternate like step(), with
  /// per-cycle cross snapshots serving kCross operands).
  Cycle run_lockstep_traced();
  /// Scheduled replay: free blocks free-run whole (fused loops included),
  /// sync blocks advance one line per local cycle under the behind-column-
  /// first schedule, which reproduces the interpreter's cross-column access
  /// order for every sync/sync pair.
  Cycle run_scheduled_traced(const tc::SyncPlan& plan);
  /// Runs the started kernel interpreted until both columns exit.
  void run_interpreted() {
    while (busy()) step();
  }
  Tracer* tracer_ = nullptr;

  energy::EnergyMeter meter_;
  mem::Spm spm_;
  mem::ConfigMem config_;
  dma::Dma dma_;
  std::array<std::optional<unsigned>, arch::kNumColumns> loaded_{};
  Column col0_;
  Column col1_;
  Cycle cycles_ = 0;
  std::uint64_t launches_ = 0;

  /// Per-kernel predecoded programs and compiled traces, memoized so kernel
  /// switches (the per-launch common case in multi-kernel applications)
  /// alias instead of re-decoding / re-hashing on every reload.
  struct KernelRuntime {
    std::array<std::shared_ptr<const Column::DecodedProgram>,
               arch::kNumColumns> dec{};
    std::array<std::shared_ptr<const CompiledTrace>, arch::kNumColumns> trace{};
    /// Compiled sync schedule for this kernel's trace pair (recomputed from
    /// the memoized traces on every reload -- cheap mask intersections).
    tc::SyncPlan plan;
    bool plan_ready = false;
    /// Runtime hint: a *dynamically* addressed cross-column conflict (or a
    /// budget-expired cross-column poll) forced a rollback, so later
    /// launches go straight to per-cycle lockstep. Cleared on reload: trip
    /// counts and pointer parameters may have changed, so the free tiers
    /// get re-evaluated instead of pinning the slow path forever.
    bool lockstep_hint = false;
  };
  std::vector<KernelRuntime> kernel_rt_;
  unsigned cur_kernel_ = 0;  ///< kernel id of the last start_kernel()

  ExecMode exec_mode_ = ExecMode::kInterpret;
  std::string trace_variant_;
  TraceCache* trace_cache_ = nullptr;
  std::unique_ptr<TraceCache> owned_traces_;
  std::unique_ptr<tc::SpmUndo> undo_;  ///< lazily allocated (trace mode only)
  std::uint64_t traced_launches_ = 0;
  std::uint64_t traced_rollbacks_ = 0;
  std::uint64_t replayed_decoupled_ = 0;
  std::uint64_t replayed_lockstep_ = 0;
  std::uint64_t interpreted_cycles_ = 0;
  std::uint64_t sync_points_ = 0;
  std::uint64_t batched_launches_ = 0;
  bool replay_lockstep_only_ = false;
};

} // namespace vwr2a::cgra
