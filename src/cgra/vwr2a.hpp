#pragma once
// The VWR2A top level (paper Fig. 1): two columns, the shared SPM, the
// configuration memory, the DMA master, and the synchronizer that launches
// kernels, keeps multi-column PCs in step, and raises the completion
// interrupt.
//
// The block keeps its own cycle counter ("local time"). Host-side costs
// (CPU polling, bus writes to the slave port) are charged by the SoC layer;
// the slave-port register-write latency seen *inside* the block is modeled
// here so that standalone (non-SoC) measurements still include the kernel
// programming overhead the paper mentions in Sec 5.1.1.

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "bus/sys_port.hpp"
#include "cgra/column.hpp"
#include "cgra/trace.hpp"
#include "common/types.hpp"
#include "dma/dma.hpp"
#include "energy/meter.hpp"
#include "isa/program.hpp"
#include "mem/config_mem.hpp"
#include "mem/spm.hpp"

namespace vwr2a::cgra {

/// Cycle cost of one host register write into the VWR2A slave port.
inline constexpr unsigned kSlavePortWriteCycles = 2;

/// Cycle cost of the synchronizer's kernel-launch sequence.
inline constexpr unsigned kLaunchCycles = 4;

/// Cycle cost of raising the completion interrupt line.
inline constexpr unsigned kIrqCycles = 2;

/// The VWR2A accelerator block.
class Vwr2a {
 public:
  /// Builds the block with its master port attached to the system bus.
  explicit Vwr2a(bus::SysPort& sys);

  // --- resources ------------------------------------------------------------
  energy::EnergyMeter& meter() { return meter_; }
  const energy::EnergyMeter& meter() const { return meter_; }
  mem::Spm& spm() { return spm_; }
  mem::ConfigMem& config_mem() { return config_; }
  dma::Dma& dma() { return dma_; }
  Column& column(unsigned c);
  const Column& column(unsigned c) const;

  /// Local cycle counter (advances during DMA, configuration, execution).
  Cycle cycles() const { return cycles_; }

  /// Kernel launches completed via run_kernel() since construction.
  std::uint64_t launches() const { return launches_; }

  // --- host interface (slave port) -------------------------------------------
  /// Registers a kernel image in the configuration memory; returns its id.
  unsigned register_kernel(isa::KernelImage image) {
    return config_.add_kernel(std::move(image));
  }

  /// Registers a shared immutable image (e.g. from an isa::ImageCache) so
  /// many devices alias one assembled copy.
  unsigned register_kernel(std::shared_ptr<const isa::KernelImage> image) {
    return config_.add_kernel(std::move(image));
  }

  /// Host write of one kernel parameter into a column's SRF (slave port).
  void host_write_srf(unsigned col, unsigned idx, Word v);

  /// Host read of one result from a column's SRF (slave port).
  Word host_read_srf(unsigned col, unsigned idx);

  /// Programs and executes one DMA descriptor; the block is busy for the
  /// returned number of cycles (the host driver model is synchronous).
  Cycle dma_transfer(const dma::Descriptor& d);

  /// Loads (if not already resident) and runs a kernel to completion.
  /// Returns the cycles consumed, including configuration load, launch
  /// overhead, and the completion interrupt.
  Cycle run_kernel(unsigned kernel_id);

  /// Steps the occupied columns of a *started* kernel by one cycle. Exposed
  /// for tests that want to observe intermediate state; run_kernel is the
  /// normal path.
  void start_kernel(unsigned kernel_id);
  bool busy() const;
  void step();

  /// Attaches a per-cycle execution tracer (nullptr detaches).
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  void advance(Cycle n);
  Tracer* tracer_ = nullptr;

  energy::EnergyMeter meter_;
  mem::Spm spm_;
  mem::ConfigMem config_;
  dma::Dma dma_;
  std::array<std::optional<unsigned>, arch::kNumColumns> loaded_{};
  Column col0_;
  Column col1_;
  Cycle cycles_ = 0;
  std::uint64_t launches_ = 0;
};

} // namespace vwr2a::cgra
