#include "cgra/alu.hpp"

#include <limits>

#include "common/status.hpp"

namespace vwr2a::cgra {

namespace {

SWord as_signed(Word w) { return static_cast<SWord>(w); }
Word as_word(SWord s) { return static_cast<Word>(s); }

std::int16_t lane(Word w, unsigned i) {
  return static_cast<std::int16_t>((w >> (16 * i)) & 0xFFFFu);
}

Word pack(std::int16_t lo, std::int16_t hi) {
  return (static_cast<Word>(static_cast<std::uint16_t>(hi)) << 16) |
         static_cast<std::uint16_t>(lo);
}

} // namespace

Word alu_eval(isa::RcOp op, Word a, Word b) {
  using isa::RcOp;
  const SWord sa = as_signed(a);
  const SWord sb = as_signed(b);
  switch (op) {
    case RcOp::kNop:
      return 0;
    case RcOp::kSadd:
      return as_word(static_cast<SWord>(
          static_cast<std::int64_t>(sa) + static_cast<std::int64_t>(sb)));
    case RcOp::kSsub:
      return as_word(static_cast<SWord>(
          static_cast<std::int64_t>(sa) - static_cast<std::int64_t>(sb)));
    case RcOp::kSmul:
      return as_word(static_cast<SWord>(
          (static_cast<std::int64_t>(sa) * static_cast<std::int64_t>(sb)) &
          0xFFFFFFFFll));
    case RcOp::kFxpMul:
      // Fixed-point mode: drop the low 16 bits of the 64-bit product, keep
      // the next 32 (paper Sec 3.1).
      return as_word(static_cast<SWord>(
          (static_cast<std::int64_t>(sa) * static_cast<std::int64_t>(sb)) >> 16));
    case RcOp::kSll:
      return a << (b & 31u);
    case RcOp::kSrl:
      return a >> (b & 31u);
    case RcOp::kSra:
      return as_word(sa >> (b & 31u));
    case RcOp::kLand:
      return a & b;
    case RcOp::kLor:
      return a | b;
    case RcOp::kLxor:
      return a ^ b;
    case RcOp::kLnot:
      return ~a;
    case RcOp::kMv:
      return a;
    case RcOp::kCmpEq:
      return a == b ? 1u : 0u;
    case RcOp::kCmpLt:
      return sa < sb ? 1u : 0u;
    case RcOp::kCmpLe:
      return sa <= sb ? 1u : 0u;
    case RcOp::kMax:
      return sa >= sb ? a : b;
    case RcOp::kMin:
      return sa <= sb ? a : b;
    case RcOp::kAbs:
      if (sa == std::numeric_limits<SWord>::min()) {
        return as_word(std::numeric_limits<SWord>::max());
      }
      return as_word(sa < 0 ? -sa : sa);
    default:
      throw DecodeError("alu_eval: bad RC opcode");
  }
}

energy::Event alu_energy_event(isa::RcOp op) {
  using isa::RcOp;
  switch (op) {
    case RcOp::kSmul:
      return energy::Event::kAluMul;
    case RcOp::kFxpMul:
      return energy::Event::kAluFxpMul;
    default:
      return energy::Event::kAluOp;
  }
}

bool alu_is_unary(isa::RcOp op) {
  using isa::RcOp;
  return op == RcOp::kLnot || op == RcOp::kMv || op == RcOp::kAbs;
}

Word alu_eval_simd16(isa::RcOp op, Word a, Word b) {
  using isa::RcOp;
  switch (op) {
    case RcOp::kSadd:
    case RcOp::kSsub:
    case RcOp::kMax:
    case RcOp::kMin: {
      std::int16_t lo, hi;
      auto ev = [op](std::int16_t x, std::int16_t y) -> std::int16_t {
        switch (op) {
          case RcOp::kSadd: return static_cast<std::int16_t>(x + y);
          case RcOp::kSsub: return static_cast<std::int16_t>(x - y);
          case RcOp::kMax: return x >= y ? x : y;
          default: return x <= y ? x : y;
        }
      };
      lo = ev(lane(a, 0), lane(b, 0));
      hi = ev(lane(a, 1), lane(b, 1));
      return pack(lo, hi);
    }
    case RcOp::kSmul:
    case RcOp::kFxpMul: {
      // Two q15 x q15 -> q15 products (truncating), one per lane.
      const std::int32_t p0 = static_cast<std::int32_t>(lane(a, 0)) * lane(b, 0);
      const std::int32_t p1 = static_cast<std::int32_t>(lane(a, 1)) * lane(b, 1);
      return pack(static_cast<std::int16_t>(p0 >> 15),
                  static_cast<std::int16_t>(p1 >> 15));
    }
    default:
      return alu_eval(op, a, b);
  }
}

} // namespace vwr2a::cgra
