#include "cgra/tracecache.hpp"

#include <algorithm>
#include <optional>

#include "cgra/alu.hpp"
#include "common/status.hpp"

namespace vwr2a::cgra {

namespace {

using energy::Event;
using isa::LcuOp;
using isa::LsuAddrMode;
using isa::LsuOp;
using isa::MxcuOp;
using isa::RcDst;
using isa::RcOp;
using isa::RcSrc;

/// One column program's worth of decoded instructions.
struct DecodedLine {
  isa::LcuInstr lcu;
  isa::LsuInstr lsu;
  isa::MxcuInstr mxcu;
  std::array<isa::RcInstr, arch::kRcsPerColumn> rc;
};

bool is_lcu_control(LcuOp op) {
  switch (op) {
    case LcuOp::kB:
    case LcuOp::kBeq:
    case LcuOp::kBne:
    case LcuOp::kBlt:
    case LcuOp::kBge:
    case LcuOp::kBeqI:
    case LcuOp::kBneI:
    case LcuOp::kBltI:
    case LcuOp::kBgeI:
    case LcuOp::kBsrfZ:
    case LcuOp::kBsrfNz:
    case LcuOp::kDbnz:
    case LcuOp::kExit:
      return true;
    default:
      return false;
  }
}

/// True when the LSU op computes a memory address (and may read the SRF in
/// kSrfImm mode).
bool lsu_uses_address(LsuOp op) {
  switch (op) {
    case LsuOp::kLdVwr:
    case LsuOp::kStVwr:
    case LsuOp::kLdSrf:
    case LsuOp::kStSrf:
      return true;
    default:
      return false;
  }
}

/// Statically replays the SRF port-claim sequence of one line exactly as
/// the interpreter performs it. Returns false when the single-ported SRF
/// would raise a StructuralHazard (the program then stays interpreted).
bool srf_schedule_legal(const DecodedLine& L) {
  std::optional<unsigned> addr;
  bool was_write = false;
  auto claim = [&](unsigned idx, bool is_write) -> bool {
    if (!addr.has_value()) {
      addr = idx;
      was_write = is_write;
      return true;
    }
    return *addr == idx && !was_write && !is_write;
  };
  // Evaluate phase, interpreter order: LCU, LSU, MXCU, RCs.
  switch (L.lcu.op) {
    case LcuOp::kMvSrf:
    case LcuOp::kBsrfZ:
    case LcuOp::kBsrfNz:
      if (!claim(L.lcu.srf, false)) return false;
      break;
    default:
      break;
  }
  if (lsu_uses_address(L.lsu.op) && L.lsu.amode == LsuAddrMode::kSrfImm) {
    if (!claim(L.lsu.srf_base, false)) return false;
  }
  if (L.lsu.op == LsuOp::kStSrf) {
    if (!claim(L.lsu.srf_data, false)) return false;
  }
  if (L.lsu.op == LsuOp::kSetPtr) {
    if (!claim(L.lsu.srf_base, false)) return false;
  }
  switch (L.mxcu.op) {
    case MxcuOp::kSetIdxSrf:
    case MxcuOp::kAddIdxSrf:
    case MxcuOp::kAndIdxSrf:
      if (!claim(L.mxcu.srf, false)) return false;
      break;
    default:
      break;
  }
  for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) {
    const isa::RcInstr& I = L.rc[r];
    if (I.op == RcOp::kNop) continue;
    if (I.src_a == RcSrc::kSrf && !claim(I.srf, false)) return false;
    if (!alu_is_unary(I.op) && I.src_b == RcSrc::kSrf && !claim(I.srf, false)) {
      return false;
    }
  }
  // Commit phase, interpreter order: RC dsts, LSU, MXCU, LCU.
  for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) {
    const isa::RcInstr& I = L.rc[r];
    if (I.op == RcOp::kNop) continue;
    if (I.dst == RcDst::kSrf && !claim(I.srf, true)) return false;
  }
  if (L.lsu.op == LsuOp::kLdSrf && !claim(L.lsu.srf_data, true)) return false;
  if (L.mxcu.op == MxcuOp::kStIdxSrf && !claim(L.mxcu.srf, true)) return false;
  if (L.lcu.op == LcuOp::kStSrf && !claim(L.lcu.srf, true)) return false;
  return true;
}

/// Static VWR write-port check: an LSU whole-row write (load or shuffle
/// result) colliding with any RC word write into the same VWR is the
/// hazard the Vwr port model raises at runtime.
bool vwr_schedule_legal(const DecodedLine& L) {
  int row_write_vwr = -1;
  if (L.lsu.op == LsuOp::kLdVwr) {
    row_write_vwr = static_cast<int>(L.lsu.vwr);
  } else if (L.lsu.op == LsuOp::kShuf) {
    row_write_vwr = static_cast<int>(VwrSel::C);
  }
  if (row_write_vwr < 0) return true;
  for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) {
    const isa::RcInstr& I = L.rc[r];
    if (I.op == RcOp::kNop) continue;
    const int d = static_cast<int>(I.dst) - static_cast<int>(RcDst::kVwrA);
    if (d >= 0 && d < 3 && d == row_write_vwr) return false;
  }
  return true;
}

/// Appends the energy events one execution of this line raises -- an exact
/// static mirror of the adds Column::step() performs.
void add_line_energy(const DecodedLine& L,
                     std::array<std::uint64_t, static_cast<unsigned>(
                                                   Event::kCount)>& counts) {
  auto add = [&counts](Event e, std::uint64_t n = 1) {
    counts[static_cast<unsigned>(e)] += n;
  };
  add(Event::kInstrFetchRc, arch::kRcsPerColumn);
  add(Event::kInstrFetchCtrl, 3);
  add(Event::kPcUpdate);
  // LCU.
  switch (L.lcu.op) {
    case LcuOp::kMvSrf:
    case LcuOp::kBsrfZ:
    case LcuOp::kBsrfNz:
      add(Event::kSrfRead);
      break;
    case LcuOp::kStSrf:
      add(Event::kSrfWrite);
      break;
    default:
      break;
  }
  // LSU.
  if (lsu_uses_address(L.lsu.op) && L.lsu.amode == LsuAddrMode::kSrfImm) {
    add(Event::kSrfRead);
  }
  switch (L.lsu.op) {
    case LsuOp::kLdVwr:
      add(Event::kSpmRowRead);
      add(Event::kVwrRowWrite);
      break;
    case LsuOp::kStVwr:
      add(Event::kSpmRowWrite);
      break;
    case LsuOp::kLdSrf:
      add(Event::kSpmRowRead);
      add(Event::kSrfWrite);
      break;
    case LsuOp::kStSrf:
      add(Event::kSrfRead);
      add(Event::kSpmRowWrite);
      break;
    case LsuOp::kShuf:
      add(Event::kShuffleOp);
      add(Event::kVwrRowWrite);
      break;
    case LsuOp::kSetPtr:
      add(Event::kSrfRead);
      break;
    default:
      break;
  }
  // MXCU.
  switch (L.mxcu.op) {
    case MxcuOp::kSetIdxSrf:
    case MxcuOp::kAddIdxSrf:
    case MxcuOp::kAndIdxSrf:
      add(Event::kSrfRead);
      break;
    case MxcuOp::kStIdxSrf:
      add(Event::kSrfWrite);
      break;
    default:
      break;
  }
  // RCs.
  auto src_energy = [&add](RcSrc s) {
    switch (s) {
      case RcSrc::kR0:
      case RcSrc::kR1:
        add(Event::kRcRfRead);
        break;
      case RcSrc::kVwrA:
      case RcSrc::kVwrB:
      case RcSrc::kVwrC:
        add(Event::kVwrWordRead);
        break;
      case RcSrc::kSrf:
        add(Event::kSrfRead);
        break;
      default:
        break;
    }
  };
  for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) {
    const isa::RcInstr& I = L.rc[r];
    if (I.op == RcOp::kNop) continue;
    src_energy(I.src_a);
    if (!alu_is_unary(I.op)) src_energy(I.src_b);
    add(alu_energy_event(I.op));
    switch (I.dst) {
      case RcDst::kR0:
      case RcDst::kR1:
        add(Event::kRcRfWrite);
        break;
      case RcDst::kVwrA:
      case RcDst::kVwrB:
      case RcDst::kVwrC:
        add(Event::kVwrWordWrite);
        break;
      case RcDst::kSrf:
        add(Event::kSrfWrite);
        break;
      default:
        break;
    }
  }
}

/// Resolves one RC source. kRcCross resolves to the partner-snapshot slot:
/// it replays on the per-cycle lockstep tier (Column::set_cross) and faults
/// like the interpreter anywhere else.
bool resolve_src(RcSrc s, const isa::RcInstr& I, unsigned r, tc::Src& out) {
  using K = tc::Src::K;
  switch (s) {
    case RcSrc::kZero:
      out = {K::kImm, 0, 0, 0, 0, 0};
      return true;
    case RcSrc::kOne:
      out = {K::kImm, 0, 0, 0, 0, 1};
      return true;
    case RcSrc::kR0:
    case RcSrc::kR1:
      out.k = K::kRf;
      out.rc = static_cast<std::uint8_t>(r);
      out.idx = s == RcSrc::kR0 ? 0 : 1;
      return true;
    case RcSrc::kVwrA:
    case RcSrc::kVwrB:
    case RcSrc::kVwrC:
      out.k = K::kVwr;
      out.vwr = static_cast<std::uint8_t>(static_cast<unsigned>(s) -
                                          static_cast<unsigned>(RcSrc::kVwrA));
      out.base = static_cast<std::uint16_t>(r * arch::kSliceWords);
      return true;
    case RcSrc::kSrf:
      out.k = K::kSrf;
      out.idx = I.srf;
      return true;
    case RcSrc::kRcUp:
      out.k = K::kPrev;
      out.rc = static_cast<std::uint8_t>(
          (r + arch::kRcsPerColumn - 1) % arch::kRcsPerColumn);
      return true;
    case RcSrc::kRcDown:
      out.k = K::kPrev;
      out.rc = static_cast<std::uint8_t>((r + 1) % arch::kRcsPerColumn);
      return true;
    case RcSrc::kImm:
      out = {K::kImm, 0, 0, 0, 0,
             static_cast<Word>(static_cast<SWord>(I.imm))};
      return true;
    case RcSrc::kRcCross:
      out.k = K::kCross;
      out.rc = static_cast<std::uint8_t>(r);  // same lane, partner column
      return true;
    default:
      return false;
  }
}

bool resolve_rc(const isa::RcInstr& I, unsigned r, tc::RcUop& u) {
  u.op = I.op;
  u.unary = alu_is_unary(I.op);
  if (!resolve_src(I.src_a, I, r, u.a)) return false;
  if (!u.unary && !resolve_src(I.src_b, I, r, u.b)) return false;
  switch (I.dst) {
    case RcDst::kNone:
      u.d = tc::Dst::kNone;
      break;
    case RcDst::kR0:
    case RcDst::kR1:
      u.d = tc::Dst::kRf;
      u.idx = I.dst == RcDst::kR0 ? 0 : 1;
      break;
    case RcDst::kVwrA:
    case RcDst::kVwrB:
    case RcDst::kVwrC:
      u.d = tc::Dst::kVwr;
      u.vwr = static_cast<std::uint8_t>(static_cast<unsigned>(I.dst) -
                                        static_cast<unsigned>(RcDst::kVwrA));
      u.base = static_cast<std::uint16_t>(r * arch::kSliceWords);
      break;
    case RcDst::kSrf:
      u.d = tc::Dst::kSrf;
      u.idx = I.srf;
      break;
    default:
      return false;
  }
  return true;
}

/// Lane-uniform shape test: all four RCs run the same op with the same
/// source/destination kinds and shared indices, differing only in their
/// slice. The rc_all() idiom every kernel's inner loop uses.
/// Accumulates the statically-addressed SPM rows one execution of `line`
/// touches (LSU kImm address mode only). Dynamic modes (SRF/pointer)
/// contribute nothing: those accesses stay on the free tier and the runtime
/// masks validate them post hoc. Statically out-of-range rows contribute
/// nothing either -- replay faults there before the access lands, and the
/// launch reruns on the interpreter.
void add_static_spm(const tc::Line& line, std::uint64_t& sread,
                    std::uint64_t& swrite) {
  if (!line.has_lsu || line.lsu.amode != LsuAddrMode::kImm) return;
  const unsigned addr = static_cast<unsigned>(line.lsu.imm);
  unsigned row = 0;
  bool is_write = false;
  switch (line.lsu.op) {
    case LsuOp::kLdVwr:
      row = addr;
      break;
    case LsuOp::kStVwr:
      row = addr;
      is_write = true;
      break;
    case LsuOp::kLdSrf:
      row = addr / arch::kVwrWords;
      break;
    case LsuOp::kStSrf:
      row = addr / arch::kVwrWords;
      is_write = true;
      break;
    default:
      return;
  }
  if (row >= arch::kSpmRows) return;
  (is_write ? swrite : sread) |= 1ull << row;
}

/// True when any active RC of the line reads the partner column.
bool line_has_cross(const tc::Line& line) {
  using K = tc::Src::K;
  for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) {
    if (((line.rc_mask >> r) & 1u) == 0) continue;
    const tc::RcUop& u = line.rc[r];
    if (u.a.k == K::kCross || (!u.unary && u.b.k == K::kCross)) return true;
  }
  return false;
}

bool quad_shape(const tc::Line& line) {
  if (line.rc_mask != 0xF) return false;
  const tc::RcUop& a = line.rc[0];
  using K = tc::Src::K;
  auto lane_ok = [](const tc::Src& s) {
    return s.k != K::kPrev && s.k != K::kCross;  // lane-crossing sources
  };
  if (!lane_ok(a.a) || (!a.unary && !lane_ok(a.b))) return false;
  for (unsigned r = 1; r < arch::kRcsPerColumn; ++r) {
    const tc::RcUop& u = line.rc[r];
    if (u.op != a.op || u.d != a.d) return false;
    auto same_src = [](const tc::Src& x, const tc::Src& y) {
      if (x.k != y.k) return false;
      switch (x.k) {
        case K::kImm:
          return x.imm == y.imm;
        case K::kRf:
          return x.idx == y.idx;  // same rf entry, lane-relative rc
        case K::kVwr:
          return x.vwr == y.vwr;  // same VWR, lane-relative slice base
        case K::kSrf:
          return x.idx == y.idx;
        default:
          return false;
      }
    };
    if (!same_src(u.a, a.a)) return false;
    if (!a.unary && !same_src(u.b, a.b)) return false;
    switch (a.d) {
      case tc::Dst::kNone:
        break;
      case tc::Dst::kRf:
        if (u.idx != a.idx) return false;
        break;
      case tc::Dst::kVwr:
        if (u.vwr != a.vwr) return false;
        break;
      case tc::Dst::kSrf:
        return false;  // four SRF writes would be a hazard anyway
    }
  }
  return true;
}

} // namespace

std::shared_ptr<const CompiledTrace> compile_trace(
    const isa::ColumnProgram& prog) {
  auto trace = std::make_shared<CompiledTrace>();
  auto bail = [&trace](std::string why) {
    trace->ok = false;
    trace->bail_reason = std::move(why);
    trace->lines.clear();
    trace->blocks.clear();
    trace->block_of.clear();
    return std::shared_ptr<const CompiledTrace>(trace);
  };

  const unsigned len = prog.length();
  if (len == 0) return bail("empty program");

  // Decode every line (identically to Column::load_program).
  std::vector<DecodedLine> dec(len);
  try {
    for (unsigned pc = 0; pc < len; ++pc) {
      dec[pc].lcu = isa::decode_lcu(prog.word(Slot::LCU, pc));
      dec[pc].lsu = isa::decode_lsu(prog.word(Slot::LSU, pc));
      dec[pc].mxcu = isa::decode_mxcu(prog.word(Slot::MXCU, pc));
      for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) {
        dec[pc].rc[r] = isa::decode_rc(prog.word(rc_slot(r), pc));
      }
    }
  } catch (const SimError&) {
    return bail("undecodable configuration word");
  }

  // Legality: static hazards and branch targets. Anything the interpreter
  // would fault on at runtime keeps the program interpreted so the fault
  // surfaces with the documented behaviour and exact partial state.
  for (unsigned pc = 0; pc < len; ++pc) {
    const DecodedLine& L = dec[pc];
    if (!srf_schedule_legal(L)) return bail("static SRF port hazard");
    if (!vwr_schedule_legal(L)) return bail("static VWR write-port hazard");
    if (is_lcu_control(L.lcu.op) && L.lcu.op != LcuOp::kExit &&
        L.lcu.target >= len) {
      return bail("branch target past program end");
    }
  }

  // Flatten lines to micro-ops.
  trace->lines.resize(len);
  for (unsigned pc = 0; pc < len; ++pc) {
    const DecodedLine& L = dec[pc];
    tc::Line& line = trace->lines[pc];
    for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) {
      if (L.rc[r].op == RcOp::kNop) continue;
      if (!resolve_rc(L.rc[r], r, line.rc[r])) return bail("unresolvable RC");
      line.rc_mask |= 1u << r;
    }
    line.quad = quad_shape(line);
    const isa::LsuInstr& lsu = L.lsu;
    if (lsu.op != LsuOp::kNop) {
      line.has_lsu = true;
      line.lsu = {lsu.op,      lsu.amode, static_cast<std::uint8_t>(lsu.vwr),
                  lsu.srf_base, lsu.srf_data, lsu.mode,
                  static_cast<std::int32_t>(lsu.imm)};
    }
    if (L.mxcu.op != MxcuOp::kNop) {
      line.has_mxcu = true;
      line.mxcu = {L.mxcu.op, L.mxcu.srf, static_cast<std::int32_t>(L.mxcu.imm)};
    }
    if (L.lcu.op != LcuOp::kNop && !is_lcu_control(L.lcu.op)) {
      line.has_lcu = true;
      line.lcu = {L.lcu.op, L.lcu.rd, L.lcu.ra, L.lcu.srf,
                  static_cast<std::int32_t>(L.lcu.imm)};
    }
    // Replay dispatch class: the inner-loop shape (quad RC op, optionally a
    // register-only MXCU index update) gets the specialized fast path.
    const bool mxcu_simple =
        !line.has_mxcu ||
        (line.mxcu.op == MxcuOp::kSetIdx || line.mxcu.op == MxcuOp::kAddIdx ||
         line.mxcu.op == MxcuOp::kSetAux || line.mxcu.op == MxcuOp::kAddAux ||
         line.mxcu.op == MxcuOp::kIdxFromAux);
    line.kind = (line.quad && !line.has_lsu && !line.has_lcu && mxcu_simple)
                    ? tc::Line::Kind::kQuadFast
                    : tc::Line::Kind::kGeneric;
  }

  // Superblock construction. Leaders: entry, every branch target, and every
  // successor of a control line.
  std::vector<bool> leader(len, false);
  leader[0] = true;
  for (unsigned pc = 0; pc < len; ++pc) {
    const LcuOp op = dec[pc].lcu.op;
    if (!is_lcu_control(op)) continue;
    if (op != LcuOp::kExit) leader[dec[pc].lcu.target] = true;
    if (pc + 1 < len) leader[pc + 1] = true;
  }
  trace->block_of.assign(len, 0);
  for (unsigned pc = 0; pc < len;) {
    tc::Block b;
    b.first = static_cast<std::uint16_t>(pc);
    unsigned end = pc;  // inclusive index of the terminator line
    while (true) {
      if (is_lcu_control(dec[end].lcu.op)) break;
      if (end + 1 >= len || leader[end + 1]) break;
      ++end;
    }
    b.len = static_cast<std::uint16_t>(end - pc + 1);
    const isa::LcuInstr& T = dec[end].lcu;
    b.target = T.target;
    switch (T.op) {
      case LcuOp::kB:
        b.term = tc::Term::kB;
        break;
      case LcuOp::kBeq:
      case LcuOp::kBne:
      case LcuOp::kBlt:
      case LcuOp::kBge:
        b.term = tc::Term::kCond;
        b.cond = static_cast<tc::Cond>(static_cast<unsigned>(T.op) -
                                       static_cast<unsigned>(LcuOp::kBeq));
        b.ra = T.ra;
        b.rb = T.rb;
        break;
      case LcuOp::kBeqI:
      case LcuOp::kBneI:
      case LcuOp::kBltI:
      case LcuOp::kBgeI:
        b.term = tc::Term::kCond;
        b.cond = static_cast<tc::Cond>(
            static_cast<unsigned>(tc::Cond::kEqI) +
            (static_cast<unsigned>(T.op) - static_cast<unsigned>(LcuOp::kBeqI)));
        b.ra = T.ra;
        b.imm = T.imm;
        break;
      case LcuOp::kBsrfZ:
        b.term = tc::Term::kCond;
        b.cond = tc::Cond::kSrfZ;
        b.srf = T.srf;
        break;
      case LcuOp::kBsrfNz:
        b.term = tc::Term::kCond;
        b.cond = tc::Cond::kSrfNz;
        b.srf = T.srf;
        break;
      case LcuOp::kDbnz:
        b.term = tc::Term::kDbnz;
        b.rd = T.rd;
        break;
      case LcuOp::kExit:
        b.term = tc::Term::kExit;
        break;
      default:
        b.term = tc::Term::kFall;  // plain line cut at a leader boundary
        break;
    }

    // Energy of one full block replay, and the block's static SPM rows (the
    // dependence facts the sync scheduler partitions the kernel with).
    std::array<std::uint64_t, static_cast<unsigned>(Event::kCount)> counts{};
    for (unsigned i = pc; i <= end; ++i) {
      add_line_energy(dec[i], counts);
      add_static_spm(trace->lines[i], b.sread, b.swrite);
      if (line_has_cross(trace->lines[i])) trace->has_cross = true;
    }
    for (unsigned e = 0; e < counts.size(); ++e) {
      if (counts[e] != 0) {
        b.energy.push_back({static_cast<Event>(e), counts[e]});
      }
    }
    trace->static_reads |= b.sread;
    trace->static_writes |= b.swrite;

    // Hardware-loop fusion: a DBNZ back to this block's own start whose
    // body never touches the trip-count register elsewhere replays its
    // whole (runtime-read) trip count as one fused native loop.
    if (b.term == tc::Term::kDbnz && b.target == b.first) {
      bool clean = true;
      for (unsigned i = pc; i < end; ++i) {
        const isa::LcuInstr& I = dec[i].lcu;
        switch (I.op) {
          case LcuOp::kSetI:
          case LcuOp::kAddI:
          case LcuOp::kMvSrf:
            if (I.rd == b.rd) clean = false;
            break;
          case LcuOp::kMvR:
          case LcuOp::kAddR:
          case LcuOp::kSubR:
            if (I.rd == b.rd || I.ra == b.rd) clean = false;
            break;
          case LcuOp::kStSrf:
            if (I.ra == b.rd) clean = false;
            break;
          default:
            break;
        }
      }
      b.fuse_self_loop = clean;
    }

    const auto bi = static_cast<std::uint16_t>(trace->blocks.size());
    for (unsigned i = pc; i <= end; ++i) trace->block_of[i] = bi;
    trace->blocks.push_back(std::move(b));
    pc = end + 1;
  }

  trace->ok = true;
  return trace;
}

namespace tc {

SyncPlan make_sync_plan(const CompiledTrace* t0, const CompiledTrace* t1) {
  SyncPlan p;
  if (t0 == nullptr || t1 == nullptr || !t0->ok || !t1->ok) {
    // Single-column kernel (or a non-replayable partner, which the caller
    // gates on anyway): nothing to order against, free-run.
    return p;
  }
  if (t0->has_cross || t1->has_cross) {
    // The cross-column operand network needs per-cycle partner snapshots.
    p.mode = SyncPlan::Mode::kLockstep;
    return p;
  }
  const std::array<const CompiledTrace*, arch::kNumColumns> t{t0, t1};
  bool any = false;
  for (unsigned c = 0; c < arch::kNumColumns; ++c) {
    const CompiledTrace& self = *t[c];
    const CompiledTrace& peer = *t[1 - c];
    p.sync[c].assign(self.blocks.size(), 0);
    for (std::size_t i = 0; i < self.blocks.size(); ++i) {
      const Block& b = self.blocks[i];
      // Ordered iff the block's rows can carry data across columns: my
      // write vs any peer access, or my read vs a peer write. Read-read
      // sharing (e.g. both columns loading one coefficient row) stays free.
      if (((b.swrite & (peer.static_reads | peer.static_writes)) |
           (b.sread & peer.static_writes)) != 0) {
        p.sync[c][i] = 1;
        ++p.sync_blocks[c];
        any = true;
      }
    }
  }
  p.mode = any ? SyncPlan::Mode::kScheduled : SyncPlan::Mode::kDecoupled;
  return p;
}

} // namespace tc

} // namespace vwr2a::cgra
