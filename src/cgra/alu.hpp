#pragma once
// The RC ALU (paper Sec 3.1): 32-bit signed add/sub/multiply, bitwise logic,
// logical/arithmetic shifts, all single cycle. The multiplier has a standard
// mode (low 32 bits) and a fixed-point mode: the lower 16 bits of the 64-bit
// product are discarded and the next 32 bits kept, giving single-cycle 16.15
// fixed-point multiplication.
//
// Pure functions: the Rc unit model wraps them with operand routing, energy
// accounting and operand isolation (idle operators do not toggle).

#include <cstdint>

#include "common/types.hpp"
#include "energy/events.hpp"
#include "isa/opcodes.hpp"

namespace vwr2a::cgra {

/// Evaluates one RC ALU operation on two 32-bit words.
Word alu_eval(isa::RcOp op, Word a, Word b);

/// The energy event class of an RC operation (operand isolation: kNop maps
/// to no event; callers skip accounting for it).
energy::Event alu_energy_event(isa::RcOp op);

/// True if the operation ignores its second operand (unary).
bool alu_is_unary(isa::RcOp op);

/// Dual 16-bit SIMD evaluation used by the ablation study (paper Sec 5.1.1
/// suggests "a 16-bit mode with two simultaneous 16-bit operations" as a
/// datapath optimization). Packs two q15 lanes per word. Only defined for
/// add/sub/mul-like ops; others fall back to 32-bit semantics.
Word alu_eval_simd16(isa::RcOp op, Word a, Word b);

} // namespace vwr2a::cgra
