#include "cgra/vwr2a.hpp"

#include "common/status.hpp"

namespace vwr2a::cgra {

using energy::Event;

Vwr2a::Vwr2a(bus::SysPort& sys)
    : spm_(meter_),
      config_(meter_),
      dma_(spm_, sys, meter_),
      col0_(0, spm_, meter_),
      col1_(1, spm_, meter_) {}

Column& Vwr2a::column(unsigned c) {
  if (c >= arch::kNumColumns) throw RangeError("Vwr2a: bad column id");
  return c == 0 ? col0_ : col1_;
}

const Column& Vwr2a::column(unsigned c) const {
  if (c >= arch::kNumColumns) throw RangeError("Vwr2a: bad column id");
  return c == 0 ? col0_ : col1_;
}

void Vwr2a::advance(Cycle n) {
  cycles_ += n;
  meter_.add(Event::kLeakCycle, n);
}

void Vwr2a::host_write_srf(unsigned col, unsigned idx, Word v) {
  column(col).srf().poke(idx, v);
  meter_.add(Event::kSrfWrite);
  advance(kSlavePortWriteCycles);
}

Word Vwr2a::host_read_srf(unsigned col, unsigned idx) {
  meter_.add(Event::kSrfRead);
  advance(kSlavePortWriteCycles);
  return column(col).srf().peek(idx);
}

Cycle Vwr2a::dma_transfer(const dma::Descriptor& d) {
  const Cycle setup = kSlavePortWriteCycles * 4;  // descriptor registers
  const Cycle t = dma_.transfer(d);
  advance(setup + t);
  meter_.add(Event::kIrq);
  return setup + t;
}

void Vwr2a::start_kernel(unsigned kernel_id) {
  const isa::KernelImage& img = config_.kernel(kernel_id);
  cur_kernel_ = kernel_id;
  bool reload = false;
  for (unsigned c = 0; c < arch::kNumColumns; ++c) {
    if (isa::contains(img.columns, c) && loaded_[c] != kernel_id) reload = true;
  }
  if (reload) {
    advance(config_.charge_load(kernel_id));
    if (kernel_rt_.size() <= kernel_id) kernel_rt_.resize(kernel_id + 1);
    KernelRuntime& rt = kernel_rt_[kernel_id];
    const std::shared_ptr<const isa::KernelImage> img_sp =
        config_.kernel_ptr(kernel_id);
    for (unsigned c = 0; c < arch::kNumColumns; ++c) {
      if (isa::contains(img.columns, c)) {
        if (rt.dec[c] == nullptr) {
          rt.dec[c] = std::make_shared<const Column::DecodedProgram>(
              Column::decode_program(img.program[c]));
        }
        // Alias the image's program (no copy on reload).
        column(c).load_program(
            std::shared_ptr<const isa::ColumnProgram>(img_sp, &img.program[c]),
            rt.dec[c]);
        if (exec_mode_ == ExecMode::kTraceCache) {
          if (rt.trace[c] == nullptr) {
            rt.trace[c] =
                trace_cache().get_or_compile(trace_variant_, img.program[c]);
          }
          column(c).set_trace(rt.trace[c]);
        }
        loaded_[c] = kernel_id;
      }
    }
  }
  advance(kLaunchCycles);
  for (unsigned c = 0; c < arch::kNumColumns; ++c) {
    if (isa::contains(img.columns, c)) column(c).start();
  }
}

bool Vwr2a::busy() const { return col0_.running() || col1_.running(); }

void Vwr2a::step() {
  if (tracer_ != nullptr) tracer_->on_cycle(cycles_, col0_, col1_);
  const bool synced = col0_.running() && col1_.running();
  // Snapshot both columns' previous-cycle results before either commits, so
  // cross-column operands observe a consistent pre-cycle state.
  const Column::RcOutputs outs0 = col0_.rc_outputs();
  const Column::RcOutputs outs1 = col1_.rc_outputs();
  spm_.begin_cycle();
  if (col0_.running()) col0_.step(synced ? &outs1 : nullptr);
  if (col1_.running()) col1_.step(synced ? &outs0 : nullptr);
  advance(1);
}

Cycle Vwr2a::run_kernel(unsigned kernel_id) {
  const Cycle t0 = cycles_;
  start_kernel(kernel_id);
  if (exec_mode_ == ExecMode::kTraceCache && tracer_ == nullptr) {
    run_kernel_traced();
  } else {
    while (busy()) step();
  }
  meter_.add(Event::kIrq);
  advance(kIrqCycles);
  ++launches_;
  return cycles_ - t0;
}

Cycle Vwr2a::run_lockstep_traced() {
  // Per-cycle alternation, exactly the interpreter's interleaving: column 0
  // executes (and commits, including its SPM side effects) before column 1
  // each cycle, so cross-column SPM dataflow is observed identically.
  col0_.begin_traced(undo_.get());
  col1_.begin_traced(undo_.get());
  Cycle n = 0;
  while (col0_.running() || col1_.running()) {
    if (col0_.running()) col0_.step_traced();
    if (col1_.running()) col1_.step_traced();
    ++n;
  }
  col0_.end_traced();
  col1_.end_traced();
  return n;
}

void Vwr2a::run_kernel_traced() {
  const bool r0 = col0_.running();
  const bool r1 = col1_.running();
  if ((r0 && !col0_.has_trace()) || (r1 && !col1_.has_trace())) {
    // Non-traceable program (static hazard, kRcCross, ...): the interpreter
    // stays authoritative, including its documented runtime faults.
    while (busy()) step();
    return;
  }
  // Checkpoint everything the replay can touch, so a cross-column SPM
  // conflict (or a replay fault) can roll back and rerun. The SPM side is a
  // lazy copy-on-write undo log; the rest is small.
  if (undo_ == nullptr) undo_ = std::make_unique<tc::SpmUndo>();
  undo_->reset(spm_.write_gen());
  Column::Checkpoint ck0, ck1;
  if (r0) col0_.save_state(ck0);
  if (r1) col1_.save_state(ck1);
  const energy::EnergyMeter meter_ck = meter_;
  auto rollback = [&] {
    if (r0) col0_.restore_state(ck0);
    if (r1) col1_.restore_state(ck1);
    meter_ = meter_ck;
    for (unsigned row = 0; row < arch::kSpmRows; ++row) {
      if ((undo_->saved_mask >> row) & 1u) {
        spm_.trace_restore_row(row, undo_->rows[row], undo_->versions[row]);
      }
    }
    spm_.trace_restore_write_gen(undo_->write_gen);
    undo_->reset(spm_.write_gen());
  };

  if (kernel_rt_.size() <= cur_kernel_) kernel_rt_.resize(cur_kernel_ + 1);
  KernelRuntime& rt = kernel_rt_[cur_kernel_];
  if (!(r0 && r1 && rt.lockstep)) {
    // Decoupled replay: each column free-runs its compiled blocks to EXIT
    // (hardware-loop fusion applies). Valid unless the columns exchange
    // data through the SPM, which the access masks detect after the fact.
    bool conflict = false;
    try {
      Cycle n0 = 0, n1 = 0;
      // A per-column cycle budget (only needed with a partner: a column
      // polling the other's SPM writes would free-run forever).
      const Cycle budget = (r0 && r1) ? tc::kReplayBudget : ~Cycle{0};
      if (r0) n0 = col0_.run_traced(undo_.get(), budget);
      if (r1) n1 = col1_.run_traced(undo_.get(), budget);
      if (r0 && r1) {
        conflict = ((col0_.spm_write_mask() &
                     (col1_.spm_read_mask() | col1_.spm_write_mask())) |
                    (col1_.spm_write_mask() & col0_.spm_read_mask())) != 0;
      }
      if (!conflict) {
        advance(std::max(n0, n1));
        ++traced_launches_;
        return;
      }
    } catch (const tc::ReplayBudgetExceeded&) {
      // Undetectable-in-advance cross-column poll: handled exactly like a
      // detected conflict below (rollback, then lockstep).
    } catch (...) {
      // Replay fault: rerun interpreted so the documented error surfaces
      // with the interpreter's exact partial state.
      rollback();
      while (busy()) step();
      return;
    }
    ++traced_rollbacks_;
    rollback();
    rt.lockstep = true;  // sticky: this kernel's columns share SPM rows
  }
  // Lockstep traced replay (cross-column SPM dataflow preserved).
  try {
    advance(run_lockstep_traced());
    ++traced_launches_;
  } catch (...) {
    rollback();
    while (busy()) step();
  }
}

} // namespace vwr2a::cgra
