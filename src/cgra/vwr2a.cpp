#include "cgra/vwr2a.hpp"

#include <vector>

#include "common/status.hpp"

namespace vwr2a::cgra {

using energy::Event;

Vwr2a::Vwr2a(bus::SysPort& sys)
    : spm_(meter_),
      config_(meter_),
      dma_(spm_, sys, meter_),
      col0_(0, spm_, meter_),
      col1_(1, spm_, meter_) {}

Column& Vwr2a::column(unsigned c) {
  if (c >= arch::kNumColumns) throw RangeError("Vwr2a: bad column id");
  return c == 0 ? col0_ : col1_;
}

const Column& Vwr2a::column(unsigned c) const {
  if (c >= arch::kNumColumns) throw RangeError("Vwr2a: bad column id");
  return c == 0 ? col0_ : col1_;
}

void Vwr2a::advance(Cycle n) {
  cycles_ += n;
  meter_.add(Event::kLeakCycle, n);
}

void Vwr2a::host_write_srf(unsigned col, unsigned idx, Word v) {
  column(col).srf().poke(idx, v);
  meter_.add(Event::kSrfWrite);
  advance(kSlavePortWriteCycles);
}

Word Vwr2a::host_read_srf(unsigned col, unsigned idx) {
  meter_.add(Event::kSrfRead);
  advance(kSlavePortWriteCycles);
  return column(col).srf().peek(idx);
}

Cycle Vwr2a::dma_transfer(const dma::Descriptor& d) {
  const Cycle setup = kSlavePortWriteCycles * 4;  // descriptor registers
  const Cycle t = dma_.transfer(d);
  advance(setup + t);
  meter_.add(Event::kIrq);
  return setup + t;
}

void Vwr2a::start_kernel(unsigned kernel_id) {
  const isa::KernelImage& img = config_.kernel(kernel_id);
  cur_kernel_ = kernel_id;
  bool reload = false;
  for (unsigned c = 0; c < arch::kNumColumns; ++c) {
    if (isa::contains(img.columns, c) && loaded_[c] != kernel_id) reload = true;
  }
  if (reload) {
    advance(config_.charge_load(kernel_id));
    if (kernel_rt_.size() <= kernel_id) kernel_rt_.resize(kernel_id + 1);
    KernelRuntime& rt = kernel_rt_[kernel_id];
    const std::shared_ptr<const isa::KernelImage> img_sp =
        config_.kernel_ptr(kernel_id);
    for (unsigned c = 0; c < arch::kNumColumns; ++c) {
      if (isa::contains(img.columns, c)) {
        if (rt.dec[c] == nullptr) {
          rt.dec[c] = std::make_shared<const Column::DecodedProgram>(
              Column::decode_program(img.program[c]));
        }
        // Alias the image's program (no copy on reload).
        column(c).load_program(
            std::shared_ptr<const isa::ColumnProgram>(img_sp, &img.program[c]),
            rt.dec[c]);
        if (exec_mode_ == ExecMode::kTraceCache) {
          if (rt.trace[c] == nullptr) {
            rt.trace[c] =
                trace_cache().get_or_compile(trace_variant_, img.program[c]);
          }
          column(c).set_trace(rt.trace[c]);
        }
        loaded_[c] = kernel_id;
      }
    }
    if (exec_mode_ == ExecMode::kTraceCache) {
      // Re-evaluate the replay schedule on every (re)load: the sync plan is
      // a cheap mask intersection over the memoized traces, and clearing
      // the runtime lockstep hint here lets a kernel whose trip counts or
      // pointer parameters stopped conflicting leave the slow path again.
      rt.plan = tc::make_sync_plan(
          isa::contains(img.columns, 0) ? rt.trace[0].get() : nullptr,
          isa::contains(img.columns, 1) ? rt.trace[1].get() : nullptr);
      rt.plan_ready = true;
      rt.lockstep_hint = false;
    }
  }
  advance(kLaunchCycles);
  for (unsigned c = 0; c < arch::kNumColumns; ++c) {
    if (isa::contains(img.columns, c)) column(c).start();
  }
}

bool Vwr2a::busy() const { return col0_.running() || col1_.running(); }

void Vwr2a::step() {
  if (tracer_ != nullptr) tracer_->on_cycle(cycles_, col0_, col1_);
  const bool synced = col0_.running() && col1_.running();
  interpreted_cycles_ += static_cast<std::uint64_t>(col0_.running()) +
                         static_cast<std::uint64_t>(col1_.running());
  // Snapshot both columns' previous-cycle results before either commits, so
  // cross-column operands observe a consistent pre-cycle state.
  const Column::RcOutputs outs0 = col0_.rc_outputs();
  const Column::RcOutputs outs1 = col1_.rc_outputs();
  spm_.begin_cycle();
  if (col0_.running()) col0_.step(synced ? &outs1 : nullptr);
  if (col1_.running()) col1_.step(synced ? &outs0 : nullptr);
  advance(1);
}

Cycle Vwr2a::run_kernel(unsigned kernel_id) {
  const Cycle t0 = cycles_;
  start_kernel(kernel_id);
  if (exec_mode_ == ExecMode::kTraceCache && tracer_ == nullptr) {
    run_kernel_traced();
  } else {
    while (busy()) step();
  }
  meter_.add(Event::kIrq);
  advance(kIrqCycles);
  ++launches_;
  return cycles_ - t0;
}

Cycle Vwr2a::run_lockstep_traced() {
  // Per-cycle alternation, exactly the interpreter's interleaving: column 0
  // executes (and commits, including its SPM side effects) before column 1
  // each cycle, so cross-column SPM dataflow is observed identically. Both
  // columns' previous-cycle RC results are snapshotted before either
  // commits, so kCross operands observe a consistent pre-cycle state --
  // the slot that used to punt such kernels all the way to the interpreter.
  col0_.begin_traced(undo_.get());
  col1_.begin_traced(undo_.get());
  const KernelRuntime& rt = kernel_rt_[cur_kernel_];
  const bool cross = (rt.trace[0] != nullptr && rt.trace[0]->has_cross) ||
                     (rt.trace[1] != nullptr && rt.trace[1]->has_cross);
  Column::RcOutputs outs0{}, outs1{};
  Cycle n = 0;
  while (col0_.running() || col1_.running()) {
    if (cross) {
      const bool synced = col0_.running() && col1_.running();
      outs0 = col0_.rc_outputs();
      outs1 = col1_.rc_outputs();
      col0_.set_cross(synced ? &outs1 : nullptr);
      col1_.set_cross(synced ? &outs0 : nullptr);
    }
    if (col0_.running()) {
      col0_.step_traced();
      ++replayed_lockstep_;
    }
    if (col1_.running()) {
      col1_.step_traced();
      ++replayed_lockstep_;
    }
    ++n;
  }
  col0_.set_cross(nullptr);
  col1_.set_cross(nullptr);
  col0_.end_traced();
  col1_.end_traced();
  return n;
}

Cycle Vwr2a::run_scheduled_traced(const tc::SyncPlan& plan) {
  // Behind-column-first schedule over local clocks (a column's local time
  // equals its interpreter global cycle: columns launch together and never
  // stall). The behind column advances; ties go to column 0, matching the
  // interpreter's intra-cycle column order. Sync blocks advance one line
  // (one cycle) per pick, so for any two sync-classified accesses A (col 0,
  // time a) and B (col 1, time b): A executes only once t1 >= a and B only
  // once t0 > b, which forbids either from overtaking the other -- the
  // interpreter's (time, column) access order is reproduced exactly. Free
  // blocks leap whole (fused trip counts included); the rows they touch are
  // checked against the partner's totals after the run.
  col0_.begin_traced(undo_.get());
  col1_.begin_traced(undo_.get());
  const KernelRuntime& rt = kernel_rt_[cur_kernel_];
  const std::array<const CompiledTrace*, arch::kNumColumns> tr{
      rt.trace[0].get(), rt.trace[1].get()};
  Cycle t0 = 0, t1 = 0;
  while (col0_.running() || col1_.running()) {
    const bool pick0 = col0_.running() && (!col1_.running() || t0 <= t1);
    Column& col = pick0 ? col0_ : col1_;
    Cycle& t = pick0 ? t0 : t1;
    const unsigned c = pick0 ? 0u : 1u;
    if (t > tc::kReplayBudget) throw tc::ReplayBudgetExceeded{};
    const unsigned bi = tr[c]->block_of[col.pc()];
    if (plan.sync[c][bi] != 0) {
      if (!col.mid_block()) ++sync_points_;
      col.set_mask_tier(1);
      col.step_traced();
      ++t;
      ++replayed_lockstep_;
    } else {
      col.set_mask_tier(0);
      const Cycle n = col.step_block_traced(tc::kReplayBudget - t);
      t += n;
      replayed_decoupled_ += n;
    }
  }
  col0_.end_traced();
  col1_.end_traced();
  return std::max(t0, t1);
}

void Vwr2a::run_kernel_traced() {
  const bool r0 = col0_.running();
  const bool r1 = col1_.running();
  if ((r0 && !col0_.has_trace()) || (r1 && !col1_.has_trace())) {
    // Non-traceable program (static hazard, undecodable line, ...): the
    // interpreter stays authoritative, including its documented faults.
    run_interpreted();
    return;
  }
  // Checkpoint everything the replay can touch, so a cross-column SPM
  // conflict (or a replay fault) can roll back and rerun. The SPM side is a
  // lazy copy-on-write undo log; the rest is small.
  if (undo_ == nullptr) undo_ = std::make_unique<tc::SpmUndo>();
  undo_->reset(spm_.write_gen());
  Column::Checkpoint ck0, ck1;
  if (r0) col0_.save_state(ck0);
  if (r1) col1_.save_state(ck1);
  const energy::EnergyMeter meter_ck = meter_;
  auto rollback = [&] {
    if (r0) col0_.restore_state(ck0);
    if (r1) col1_.restore_state(ck1);
    meter_ = meter_ck;
    for (unsigned row = 0; row < arch::kSpmRows; ++row) {
      if ((undo_->saved_mask >> row) & 1u) {
        spm_.trace_restore_row(row, undo_->rows[row], undo_->versions[row]);
      }
    }
    spm_.trace_restore_write_gen(undo_->write_gen);
    undo_->reset(spm_.write_gen());
  };

  if (kernel_rt_.size() <= cur_kernel_) kernel_rt_.resize(cur_kernel_ + 1);
  KernelRuntime& rt = kernel_rt_[cur_kernel_];
  if (!rt.plan_ready) {
    rt.plan = tc::make_sync_plan(r0 ? rt.trace[0].get() : nullptr,
                                 r1 ? rt.trace[1].get() : nullptr);
    rt.plan_ready = true;
  }
  const tc::SyncPlan& plan = rt.plan;
  const bool both = r0 && r1;
  if (!both || (!replay_lockstep_only_ &&
                plan.mode != tc::SyncPlan::Mode::kLockstep &&
                !rt.lockstep_hint)) {
    // Free tiers: whole-kernel decoupled free-run, or the compiled sync
    // schedule when some blocks statically share SPM rows. Either way the
    // free-running accesses are validated against the partner's totals
    // after the fact; sync-scheduled accesses are already ordered.
    bool conflict = false;
    try {
      Cycle n = 0;
      if (both && plan.mode == tc::SyncPlan::Mode::kScheduled) {
        n = run_scheduled_traced(plan);
      } else {
        // Decoupled replay: each column free-runs its compiled blocks to
        // EXIT (hardware-loop fusion applies). A per-column cycle budget is
        // only needed with a partner: a column polling the other's SPM
        // writes would free-run forever.
        Cycle n0 = 0, n1 = 0;
        const Cycle budget = both ? tc::kReplayBudget : ~Cycle{0};
        if (r0) n0 = col0_.run_traced(undo_.get(), budget);
        if (r1) n1 = col1_.run_traced(undo_.get(), budget);
        replayed_decoupled_ += n0 + n1;
        n = std::max(n0, n1);
      }
      if (both) {
        const std::uint64_t t0r = col0_.spm_read_mask();
        const std::uint64_t t0w = col0_.spm_write_mask();
        const std::uint64_t t1r = col1_.spm_read_mask();
        const std::uint64_t t1w = col1_.spm_write_mask();
        conflict = ((col0_.spm_free_write_mask() & (t1r | t1w)) |
                    (col1_.spm_free_write_mask() & (t0r | t0w)) |
                    (col0_.spm_free_read_mask() & t1w) |
                    (col1_.spm_free_read_mask() & t0w)) != 0;
      }
      if (!conflict) {
        advance(n);
        ++traced_launches_;
        return;
      }
    } catch (const tc::ReplayBudgetExceeded&) {
      // Undetectable-in-advance cross-column poll: handled exactly like a
      // detected conflict below (rollback, then per-cycle lockstep).
    } catch (...) {
      // Replay fault: rerun interpreted so the documented error surfaces
      // with the interpreter's exact partial state.
      rollback();
      run_interpreted();
      return;
    }
    ++traced_rollbacks_;
    rollback();
    // Dynamically addressed rows carried data across columns this launch;
    // assume they will again until the next reload re-evaluates.
    rt.lockstep_hint = true;
  }
  // Per-cycle lockstep replay: cross-column SPM dataflow and kCross
  // operands preserved with the interpreter's exact interleaving.
  try {
    advance(run_lockstep_traced());
    ++traced_launches_;
  } catch (...) {
    rollback();
    run_interpreted();
  }
}

namespace tc {

bool BatchReplayer::identity(const Vwr2a& dev, unsigned kernel_id,
                             std::array<const void*, arch::kNumColumns>& key) {
  key.fill(nullptr);
  if (dev.exec_mode_ != ExecMode::kTraceCache || dev.tracer_ != nullptr ||
      dev.replay_lockstep_only_) {
    return false;
  }
  if (kernel_id >= dev.kernel_rt_.size()) return false;  // cold: never launched
  const Vwr2a::KernelRuntime& rt = dev.kernel_rt_[kernel_id];
  if (!rt.plan_ready || rt.lockstep_hint ||
      rt.plan.mode != SyncPlan::Mode::kDecoupled) {
    return false;
  }
  bool any = false;
  for (unsigned c = 0; c < arch::kNumColumns; ++c) {
    if (rt.trace[c] == nullptr) continue;  // column idle for this kernel
    if (!rt.trace[c]->ok) return false;    // interpreter-only program
    key[c] = rt.trace[c].get();
    any = true;
  }
  return any;
}

namespace {

/// Per-lane batch state: the device plus the rollback checkpoint taken
/// right after start_kernel (same snapshot the scalar path takes).
struct BatchLane {
  Vwr2a* dev = nullptr;
  std::array<Column::Checkpoint, arch::kNumColumns> ck{};
  energy::EnergyMeter meter_ck;
  std::array<bool, arch::kNumColumns> occ{};
  std::array<Cycle, arch::kNumColumns> cycles{};
  bool scalar = false;  ///< detached: finishes through the scalar ladder
};

} // namespace

void BatchReplayer::run(Vwr2a* const* devs, const unsigned* kids,
                        std::size_t n) {
  if (n == 0) return;
  std::vector<BatchLane> lanes(n);
  auto lane_rollback = [](BatchLane& lane) {
    Vwr2a& d = *lane.dev;
    for (unsigned c = 0; c < arch::kNumColumns; ++c) {
      if (lane.occ[c]) d.column(c).restore_state(lane.ck[c]);
    }
    d.meter_ = lane.meter_ck;
    for (unsigned row = 0; row < arch::kSpmRows; ++row) {
      if ((d.undo_->saved_mask >> row) & 1u) {
        d.spm_.trace_restore_row(row, d.undo_->rows[row],
                                 d.undo_->versions[row]);
      }
    }
    d.spm_.trace_restore_write_gen(d.undo_->write_gen);
    d.undo_->reset(d.spm_.write_gen());
  };
  // Completes one started lane through the standard scalar ladder -- the
  // exact tail of Vwr2a::run_kernel after start_kernel(), so a detached
  // lane's outcome is indistinguishable from never having been batched.
  auto lane_finish_scalar = [](Vwr2a& d) {
    d.run_kernel_traced();
    d.meter_.add(Event::kIrq);
    d.advance(kIrqCycles);
    ++d.launches_;
  };
  // Start every lane: per-device configuration-load / launch-cycle
  // accounting is exactly the scalar sequence, then checkpoint for rollback.
  for (std::size_t i = 0; i < n; ++i) {
    BatchLane& lane = lanes[i];
    lane.dev = devs[i];
    Vwr2a& d = *lane.dev;
    d.start_kernel(kids[i]);
    if (d.undo_ == nullptr) d.undo_ = std::make_unique<SpmUndo>();
    d.undo_->reset(d.spm_.write_gen());
    for (unsigned c = 0; c < arch::kNumColumns; ++c) {
      lane.occ[c] = d.column(c).running();
      if (lane.occ[c]) d.column(c).save_state(lane.ck[c]);
    }
    lane.meter_ck = d.meter_;
  }
  // Homogeneity: every lane must replay the identical trace pair. The
  // caller checked identity() before dispatching; re-verify against lane 0
  // (reloads in start_kernel recompute plans) and detach mismatches.
  std::array<const void*, arch::kNumColumns> key0{};
  const bool elig0 = identity(*devs[0], kids[0], key0);
  for (std::size_t i = 0; i < n; ++i) {
    std::array<const void*, arch::kNumColumns> k{};
    if (!elig0 || !identity(*devs[i], kids[i], k) || k != key0) {
      lanes[i].scalar = true;
    }
  }

  // Batched decoupled replay, column-major like the scalar path (column 0
  // free-runs to EXIT, then column 1). Within a column the lanes advance
  // block-lockstep: one superblock dispatch drives every aligned device
  // back to back, per-device trip counts included. A lane that takes a
  // different branch than the others drops to a scalar block-replay tail
  // (same engine, just not shared dispatch); a lane that faults or blows
  // its budget rolls back and detaches to the scalar ladder.
  for (unsigned c = 0; c < arch::kNumColumns; ++c) {
    std::vector<std::size_t> live;
    for (std::size_t i = 0; i < n; ++i) {
      if (!lanes[i].scalar && lanes[i].occ[c]) {
        devs[i]->column(c).begin_traced(devs[i]->undo_.get());
        live.push_back(i);
      }
    }
    auto budget_of = [&](const BatchLane& lane) {
      return (lane.occ[0] && lane.occ[1]) ? kReplayBudget : ~Cycle{0};
    };
    auto fault = [&](std::size_t i) {
      lane_rollback(lanes[i]);
      lanes[i].scalar = true;
    };
    // Block-lockstep phase: all running lanes share one pc.
    bool aligned = true;
    while (aligned) {
      // Prune lanes whose column exited.
      std::vector<std::size_t> run;
      for (std::size_t i : live) {
        if (devs[i]->column(c).running()) run.push_back(i);
      }
      live = run;
      if (live.empty()) break;
      const unsigned pc0 = devs[live[0]]->column(c).pc();
      for (std::size_t i : live) {
        if (devs[i]->column(c).pc() != pc0) aligned = false;
      }
      if (!aligned) break;
      std::vector<std::size_t> keep;
      for (std::size_t i : live) {
        BatchLane& lane = lanes[i];
        const Cycle budget = budget_of(lane);
        try {
          if (lane.cycles[c] > budget) throw ReplayBudgetExceeded{};
          lane.cycles[c] +=
              devs[i]->column(c).step_block_traced(budget - lane.cycles[c]);
          keep.push_back(i);
        } catch (...) {
          fault(i);
        }
      }
      live = keep;
    }
    // Scalar tails for lanes that diverged: finish this column block by
    // block on the same engine.
    for (std::size_t i : live) {
      BatchLane& lane = lanes[i];
      Column& col = devs[i]->column(c);
      const Cycle budget = budget_of(lane);
      try {
        while (col.running()) {
          if (lane.cycles[c] > budget) throw ReplayBudgetExceeded{};
          lane.cycles[c] += col.step_block_traced(budget - lane.cycles[c]);
        }
      } catch (...) {
        fault(i);
      }
    }
  }

  // Per-lane epilogue: close the replay, run the post-hoc conflict check,
  // commit cycles and counters -- the same sequence the scalar decoupled
  // path performs, one lane at a time.
  for (std::size_t i = 0; i < n; ++i) {
    BatchLane& lane = lanes[i];
    if (lane.scalar) continue;
    Vwr2a& d = *lane.dev;
    for (unsigned c = 0; c < arch::kNumColumns; ++c) {
      if (lane.occ[c]) d.column(c).end_traced();
    }
    bool conflict = false;
    if (lane.occ[0] && lane.occ[1]) {
      const std::uint64_t t0r = d.col0_.spm_read_mask();
      const std::uint64_t t0w = d.col0_.spm_write_mask();
      const std::uint64_t t1r = d.col1_.spm_read_mask();
      const std::uint64_t t1w = d.col1_.spm_write_mask();
      conflict = ((d.col0_.spm_free_write_mask() & (t1r | t1w)) |
                  (d.col1_.spm_free_write_mask() & (t0r | t0w)) |
                  (d.col0_.spm_free_read_mask() & t1w) |
                  (d.col1_.spm_free_read_mask() & t0w)) != 0;
    }
    if (conflict) {
      // Roll back and rerun through the scalar ladder, which re-detects the
      // conflict, counts the rollback, and takes per-cycle lockstep --
      // identical outcome to a scalar launch.
      lane_rollback(lane);
      lane.scalar = true;
      continue;
    }
    d.replayed_decoupled_ += lane.cycles[0] + lane.cycles[1];
    d.advance(std::max(lane.cycles[0], lane.cycles[1]));
    ++d.traced_launches_;
    ++d.batched_launches_;
    d.meter_.add(Event::kIrq);
    d.advance(kIrqCycles);
    ++d.launches_;
  }
  // Detached lanes finish through the scalar ladder. A faulting lane's
  // exception (the interpreter surfacing a documented fault with exact
  // partial state) is deferred until every other lane has completed, so one
  // bad lane never leaves its batch peers half-run.
  std::exception_ptr first_fault;
  for (std::size_t i = 0; i < n; ++i) {
    if (!lanes[i].scalar) continue;
    try {
      lane_finish_scalar(*lanes[i].dev);
    } catch (...) {
      if (first_fault == nullptr) first_fault = std::current_exception();
    }
  }
  if (first_fault != nullptr) std::rethrow_exception(first_fault);
}

} // namespace tc

} // namespace vwr2a::cgra
