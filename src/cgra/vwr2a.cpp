#include "cgra/vwr2a.hpp"

#include "common/status.hpp"

namespace vwr2a::cgra {

using energy::Event;

Vwr2a::Vwr2a(bus::SysPort& sys)
    : spm_(meter_),
      config_(meter_),
      dma_(spm_, sys, meter_),
      col0_(0, spm_, meter_),
      col1_(1, spm_, meter_) {}

Column& Vwr2a::column(unsigned c) {
  if (c >= arch::kNumColumns) throw RangeError("Vwr2a: bad column id");
  return c == 0 ? col0_ : col1_;
}

const Column& Vwr2a::column(unsigned c) const {
  if (c >= arch::kNumColumns) throw RangeError("Vwr2a: bad column id");
  return c == 0 ? col0_ : col1_;
}

void Vwr2a::advance(Cycle n) {
  cycles_ += n;
  meter_.add(Event::kLeakCycle, n);
}

void Vwr2a::host_write_srf(unsigned col, unsigned idx, Word v) {
  column(col).srf().poke(idx, v);
  meter_.add(Event::kSrfWrite);
  advance(kSlavePortWriteCycles);
}

Word Vwr2a::host_read_srf(unsigned col, unsigned idx) {
  meter_.add(Event::kSrfRead);
  advance(kSlavePortWriteCycles);
  return column(col).srf().peek(idx);
}

Cycle Vwr2a::dma_transfer(const dma::Descriptor& d) {
  const Cycle setup = kSlavePortWriteCycles * 4;  // descriptor registers
  const Cycle t = dma_.transfer(d);
  advance(setup + t);
  meter_.add(Event::kIrq);
  return setup + t;
}

void Vwr2a::start_kernel(unsigned kernel_id) {
  const isa::KernelImage& img = config_.kernel(kernel_id);
  bool reload = false;
  for (unsigned c = 0; c < arch::kNumColumns; ++c) {
    if (isa::contains(img.columns, c) && loaded_[c] != kernel_id) reload = true;
  }
  if (reload) {
    advance(config_.charge_load(kernel_id));
    for (unsigned c = 0; c < arch::kNumColumns; ++c) {
      if (isa::contains(img.columns, c)) {
        column(c).load_program(img.program[c]);
        loaded_[c] = kernel_id;
      }
    }
  }
  advance(kLaunchCycles);
  for (unsigned c = 0; c < arch::kNumColumns; ++c) {
    if (isa::contains(img.columns, c)) column(c).start();
  }
}

bool Vwr2a::busy() const { return col0_.running() || col1_.running(); }

void Vwr2a::step() {
  if (tracer_ != nullptr) tracer_->on_cycle(cycles_, col0_, col1_);
  const bool synced = col0_.running() && col1_.running();
  // Snapshot both columns' previous-cycle results before either commits, so
  // cross-column operands observe a consistent pre-cycle state.
  const Column::RcOutputs outs0 = col0_.rc_outputs();
  const Column::RcOutputs outs1 = col1_.rc_outputs();
  spm_.begin_cycle();
  if (col0_.running()) col0_.step(synced ? &outs1 : nullptr);
  if (col1_.running()) col1_.step(synced ? &outs0 : nullptr);
  advance(1);
}

Cycle Vwr2a::run_kernel(unsigned kernel_id) {
  const Cycle t0 = cycles_;
  start_kernel(kernel_id);
  while (busy()) step();
  meter_.add(Event::kIrq);
  advance(kIrqCycles);
  ++launches_;
  return cycles_ - t0;
}

} // namespace vwr2a::cgra
