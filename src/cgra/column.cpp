#include "cgra/column.hpp"

#include <string>

#include "cgra/alu.hpp"
#include "cgra/shuffle.hpp"
#include "common/status.hpp"

namespace vwr2a::cgra {

using energy::Event;

Column::Column(unsigned id, mem::Spm& spm, energy::EnergyMeter& meter)
    : id_(id),
      spm_(&spm),
      meter_(&meter),
      srf_(meter),
      vwrs_{mem::Vwr("col" + std::to_string(id) + ".A", meter),
            mem::Vwr("col" + std::to_string(id) + ".B", meter),
            mem::Vwr("col" + std::to_string(id) + ".C", meter)} {}

Column::DecodedProgram Column::decode_program(const isa::ColumnProgram& prog) {
  DecodedProgram out;
  out.reserve(prog.length());
  for (unsigned pc = 0; pc < prog.length(); ++pc) {
    DecodedLine line;
    line.lcu = isa::decode_lcu(prog.word(Slot::LCU, pc));
    line.lsu = isa::decode_lsu(prog.word(Slot::LSU, pc));
    line.mxcu = isa::decode_mxcu(prog.word(Slot::MXCU, pc));
    for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) {
      line.rc[r] = isa::decode_rc(prog.word(rc_slot(r), pc));
    }
    out.push_back(line);
  }
  return out;
}

void Column::load_program(const isa::ColumnProgram& prog) {
  load_program(std::make_shared<const isa::ColumnProgram>(prog),
               std::make_shared<const DecodedProgram>(decode_program(prog)));
}

void Column::load_program(std::shared_ptr<const isa::ColumnProgram> prog,
                          std::shared_ptr<const DecodedProgram> dec) {
  if (prog == nullptr || dec == nullptr || dec->size() != prog->length()) {
    throw HostError("Column: load_program with mismatched decode");
  }
  prog_ = std::move(dec);
  raw_prog_ = std::move(prog);
  trace_.reset();  // a new program invalidates any attached trace
  pc_ = 0;
  running_ = false;
}

std::string Column::line_asm(unsigned pc) const {
  if (raw_prog_ == nullptr || pc >= raw_prog_->length()) return "<past end>";
  const isa::ColumnProgram& rp = *raw_prog_;
  std::string out = "lcu: " + isa::to_asm(isa::decode_lcu(rp.word(Slot::LCU, pc)));
  out += " | lsu: " + isa::to_asm(isa::decode_lsu(rp.word(Slot::LSU, pc)));
  out += " | mxcu: " + isa::to_asm(isa::decode_mxcu(rp.word(Slot::MXCU, pc)));
  for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) {
    out += " | rc" + std::to_string(r) + ": " +
           isa::to_asm(isa::decode_rc(rp.word(rc_slot(r), pc)));
  }
  return out;
}

void Column::start() {
  if (prog_ == nullptr || prog_->empty()) {
    throw HostError("Column: start with no program loaded");
  }
  pc_ = 0;
  tb_ = nullptr;
  tb_line_ = 0;
  running_ = true;
}

Word Column::read_rc_src(isa::RcSrc src, const isa::RcInstr& instr, unsigned r,
                         const RcOutputs* cross) {
  using isa::RcSrc;
  switch (src) {
    case RcSrc::kZero:
      return 0;
    case RcSrc::kOne:
      return 1;
    case RcSrc::kR0:
      meter_->add(Event::kRcRfRead);
      return rcs_[r].rf[0];
    case RcSrc::kR1:
      meter_->add(Event::kRcRfRead);
      return rcs_[r].rf[1];
    case RcSrc::kVwrA:
      return vwrs_[0].read_word(r, idx_);
    case RcSrc::kVwrB:
      return vwrs_[1].read_word(r, idx_);
    case RcSrc::kVwrC:
      return vwrs_[2].read_word(r, idx_);
    case RcSrc::kSrf:
      return srf_.read(instr.srf);
    case RcSrc::kRcUp:
      return rc_prev_[(r + arch::kRcsPerColumn - 1) % arch::kRcsPerColumn];
    case RcSrc::kRcDown:
      return rc_prev_[(r + 1) % arch::kRcsPerColumn];
    case RcSrc::kRcCross:
      if (cross == nullptr) {
        throw SimError("RC: kRcCross operand used without a synchronized "
                       "partner column");
      }
      return (*cross)[r];
    case RcSrc::kImm:
      return static_cast<Word>(static_cast<SWord>(instr.imm));
    default:
      throw DecodeError("RC: bad operand source");
  }
}

unsigned Column::lsu_address(const isa::LsuInstr& instr) {
  using isa::LsuAddrMode;
  switch (instr.amode) {
    case LsuAddrMode::kImm:
      return static_cast<unsigned>(instr.imm);
    case LsuAddrMode::kSrfImm:
      return static_cast<unsigned>(srf_.read(instr.srf_base)) + instr.imm;
    case LsuAddrMode::kPtr0Post: {
      const unsigned a = lsu_ptr_[0];
      lsu_ptr_[0] = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(lsu_ptr_[0]) + instr.imm);
      return a;
    }
    case LsuAddrMode::kPtr1Post: {
      const unsigned a = lsu_ptr_[1];
      lsu_ptr_[1] = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(lsu_ptr_[1]) + instr.imm);
      return a;
    }
    default:
      throw DecodeError("LSU: bad addressing mode");
  }
}

void Column::step(const RcOutputs* cross) {
  if (!running_) return;
  if (pc_ >= prog_->size()) {
    throw SimError("Column: PC ran past the end of the program (missing EXIT?)");
  }

  srf_.begin_cycle();
  for (auto& v : vwrs_) v.begin_cycle();

  const DecodedLine& line = (*prog_)[pc_];

  meter_->add(Event::kInstrFetchRc, arch::kRcsPerColumn);
  meter_->add(Event::kInstrFetchCtrl, 3);
  meter_->add(Event::kPcUpdate);

  // ---------------- evaluate phase (reads observe pre-cycle state) ----------

  // LCU: next-PC decision and loop-register arithmetic.
  unsigned next_pc = pc_ + 1;
  bool exit = false;
  std::optional<std::pair<unsigned, Word>> lcu_reg_write;
  std::optional<std::pair<unsigned, Word>> lcu_srf_write;
  {
    using isa::LcuOp;
    const isa::LcuInstr& I = line.lcu;
    const SWord ra = static_cast<SWord>(lcu_rf_[I.ra]);
    const SWord rb = static_cast<SWord>(lcu_rf_[I.rb]);
    switch (I.op) {
      case LcuOp::kNop:
        break;
      case LcuOp::kSetI:
        lcu_reg_write = {I.rd, static_cast<Word>(static_cast<SWord>(I.imm))};
        break;
      case LcuOp::kAddI:
        lcu_reg_write = {I.rd, static_cast<Word>(static_cast<SWord>(lcu_rf_[I.rd]) +
                                                 I.imm)};
        break;
      case LcuOp::kMvR:
        lcu_reg_write = {I.rd, lcu_rf_[I.ra]};
        break;
      case LcuOp::kAddR:
        lcu_reg_write = {I.rd, static_cast<Word>(
                                   static_cast<SWord>(lcu_rf_[I.rd]) +
                                   static_cast<SWord>(lcu_rf_[I.ra]))};
        break;
      case LcuOp::kSubR:
        lcu_reg_write = {I.rd, static_cast<Word>(
                                   static_cast<SWord>(lcu_rf_[I.rd]) -
                                   static_cast<SWord>(lcu_rf_[I.ra]))};
        break;
      case LcuOp::kMvSrf:
        lcu_reg_write = {I.rd, srf_.read(I.srf)};
        break;
      case LcuOp::kStSrf:
        lcu_srf_write = {I.srf, lcu_rf_[I.ra]};
        break;
      case LcuOp::kB:
        next_pc = I.target;
        break;
      case LcuOp::kBeq:
        if (ra == rb) next_pc = I.target;
        break;
      case LcuOp::kBne:
        if (ra != rb) next_pc = I.target;
        break;
      case LcuOp::kBlt:
        if (ra < rb) next_pc = I.target;
        break;
      case LcuOp::kBge:
        if (ra >= rb) next_pc = I.target;
        break;
      case LcuOp::kBeqI:
        if (ra == I.imm) next_pc = I.target;
        break;
      case LcuOp::kBneI:
        if (ra != I.imm) next_pc = I.target;
        break;
      case LcuOp::kBltI:
        if (ra < I.imm) next_pc = I.target;
        break;
      case LcuOp::kBgeI:
        if (ra >= I.imm) next_pc = I.target;
        break;
      case LcuOp::kBsrfZ:
        if (srf_.read(I.srf) == 0) next_pc = I.target;
        break;
      case LcuOp::kBsrfNz:
        if (srf_.read(I.srf) != 0) next_pc = I.target;
        break;
      case LcuOp::kDbnz: {
        const Word nv = lcu_rf_[I.rd] - 1;
        lcu_reg_write = {I.rd, nv};
        if (nv != 0) next_pc = I.target;
        break;
      }
      case LcuOp::kExit:
        exit = true;
        break;
      default:
        throw DecodeError("LCU: bad opcode");
    }
  }

  // LSU: SPM transfers and shuffle operations.
  std::optional<std::pair<VwrSel, VwrRow>> lsu_vwr_write;
  std::optional<std::pair<unsigned, Word>> lsu_srf_write;
  {
    using isa::LsuOp;
    const isa::LsuInstr& I = line.lsu;
    switch (I.op) {
      case LsuOp::kNop:
        break;
      case LsuOp::kLdVwr: {
        const unsigned row = lsu_address(I);
        lsu_vwr_write = {I.vwr, spm_->read_row(id_, row)};
        break;
      }
      case LsuOp::kStVwr: {
        const unsigned row = lsu_address(I);
        spm_->write_row(id_, row, vwrs_[static_cast<unsigned>(I.vwr)].read_row());
        break;
      }
      case LsuOp::kLdSrf: {
        const unsigned word = lsu_address(I);
        lsu_srf_write = {I.srf_data, spm_->read_word_array(id_, word)};
        break;
      }
      case LsuOp::kStSrf: {
        const unsigned word = lsu_address(I);
        spm_->write_word_array(id_, word, srf_.read(I.srf_data));
        break;
      }
      case LsuOp::kShuf: {
        meter_->add(Event::kShuffleOp);
        lsu_vwr_write = {VwrSel::C,
                         shuffle_eval(I.mode, vwrs_[0].read_row(),
                                      vwrs_[1].read_row())};
        break;
      }
      case LsuOp::kSetPtr: {
        const unsigned p = static_cast<unsigned>(I.vwr) & 1u;
        lsu_ptr_[p] = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(srf_.read(I.srf_base)) + I.imm);
        break;
      }
      default:
        throw DecodeError("LSU: bad opcode");
    }
  }

  // MXCU: slice-index arithmetic.
  unsigned new_idx = idx_;
  SWord new_aux = aux_;
  std::optional<std::pair<unsigned, Word>> mxcu_srf_write;
  {
    using isa::MxcuOp;
    const isa::MxcuInstr& I = line.mxcu;
    switch (I.op) {
      case MxcuOp::kNop:
        break;
      case MxcuOp::kSetIdx:
        new_idx = static_cast<unsigned>(I.imm);
        break;
      case MxcuOp::kAddIdx:
        new_idx = static_cast<unsigned>(static_cast<SWord>(idx_) + I.imm);
        break;
      case MxcuOp::kSetIdxSrf:
        new_idx = srf_.read(I.srf);
        break;
      case MxcuOp::kAddIdxSrf:
        new_idx = idx_ + srf_.read(I.srf);
        break;
      case MxcuOp::kAndIdxSrf:
        new_idx = idx_ & srf_.read(I.srf);
        break;
      case MxcuOp::kSetAux:
        new_aux = I.imm;
        break;
      case MxcuOp::kAddAux:
        new_aux = aux_ + I.imm;
        break;
      case MxcuOp::kIdxFromAux:
        new_idx = static_cast<unsigned>(aux_);
        break;
      case MxcuOp::kStIdxSrf:
        mxcu_srf_write = {I.srf, idx_};
        break;
      default:
        throw DecodeError("MXCU: bad opcode");
    }
    new_idx %= arch::kSliceWords;  // the index addresses within a slice
  }

  // RCs: operand routing + ALU. Operand isolation: a NOP touches nothing and
  // the result register holds its value.
  struct RcPending {
    bool active = false;
    Word out = 0;
    isa::RcDst dst = isa::RcDst::kNone;
    std::uint8_t srf = 0;
  };
  std::array<RcPending, arch::kRcsPerColumn> rc_pend{};
  for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) {
    const isa::RcInstr& I = line.rc[r];
    if (I.op == isa::RcOp::kNop) continue;
    const Word a = read_rc_src(I.src_a, I, r, cross);
    const Word b = alu_is_unary(I.op) ? 0 : read_rc_src(I.src_b, I, r, cross);
    meter_->add(alu_energy_event(I.op));
    rc_pend[r] = {true, alu_eval(I.op, a, b), I.dst, I.srf};
  }

  // ---------------- commit phase (end-of-cycle register updates) ------------

  for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) {
    if (!rc_pend[r].active) continue;
    const RcPending& p = rc_pend[r];
    switch (p.dst) {
      case isa::RcDst::kNone:
        break;
      case isa::RcDst::kR0:
        meter_->add(Event::kRcRfWrite);
        rcs_[r].rf[0] = p.out;
        break;
      case isa::RcDst::kR1:
        meter_->add(Event::kRcRfWrite);
        rcs_[r].rf[1] = p.out;
        break;
      case isa::RcDst::kVwrA:
        vwrs_[0].write_word(r, idx_, p.out);
        break;
      case isa::RcDst::kVwrB:
        vwrs_[1].write_word(r, idx_, p.out);
        break;
      case isa::RcDst::kVwrC:
        vwrs_[2].write_word(r, idx_, p.out);
        break;
      case isa::RcDst::kSrf:
        srf_.write(p.srf, p.out);
        break;
      default:
        throw DecodeError("RC: bad destination");
    }
    rcs_[r].out = p.out;
  }

  if (lsu_vwr_write) {
    vwrs_[static_cast<unsigned>(lsu_vwr_write->first)].write_row(
        lsu_vwr_write->second);
  }
  if (lsu_srf_write) srf_.write(lsu_srf_write->first, lsu_srf_write->second);
  if (mxcu_srf_write) srf_.write(mxcu_srf_write->first, mxcu_srf_write->second);
  if (lcu_srf_write) srf_.write(lcu_srf_write->first, lcu_srf_write->second);
  if (lcu_reg_write) lcu_rf_[lcu_reg_write->first] = lcu_reg_write->second;

  idx_ = new_idx;
  aux_ = new_aux;

  for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) {
    rc_prev_[r] = rcs_[r].out;
  }

  ++executed_;
  if (exit) {
    running_ = false;
  } else {
    if (next_pc >= prog_->size()) {
      throw SimError("Column: branch past end of program");
    }
    pc_ = next_pc;
  }
}

// ---------------------------------------------------------------------------
// Trace-cache replay (see cgra/tracecache.hpp for the compilation model and
// the identity contract). Everything below must mirror step() bit for bit;
// the hazard checks and per-event meter adds are gone because the compiler
// proved the schedule and pre-aggregated the events per block.
// ---------------------------------------------------------------------------

namespace {

/// Precomputed shuffle permutations: replay resolves the per-word source
/// switch of shuffle_eval() once per mode instead of once per word.
struct ShuffleTables {
  // [mode][i] = source index into the A:B concatenation.
  std::array<std::array<std::uint16_t, arch::kVwrWords>, 8> map{};
  ShuffleTables() {
    for (unsigned m = 0; m < 8; ++m) {
      for (unsigned i = 0; i < arch::kVwrWords; ++i) {
        map[m][i] = static_cast<std::uint16_t>(
            shuffle_source_index(static_cast<isa::ShufMode>(m), i));
      }
    }
  }
};

const ShuffleTables& shuffle_tables() {
  static const ShuffleTables t;
  return t;
}

/// Four-lane ALU evaluation with the opcode switch hoisted out of the lane
/// loop. Per-lane semantics are exactly alu_eval() (alu.cpp); the
/// differential trace fuzz pins the two implementations to each other.
inline void alu_eval4(isa::RcOp op, const Word* a, const Word* b, Word* o) {
  using isa::RcOp;
  constexpr unsigned kN = arch::kRcsPerColumn;
  switch (op) {
    case RcOp::kSadd:
      for (unsigned r = 0; r < kN; ++r) {
        o[r] = static_cast<Word>(static_cast<SWord>(
            static_cast<std::int64_t>(static_cast<SWord>(a[r])) +
            static_cast<std::int64_t>(static_cast<SWord>(b[r]))));
      }
      break;
    case RcOp::kSsub:
      for (unsigned r = 0; r < kN; ++r) {
        o[r] = static_cast<Word>(static_cast<SWord>(
            static_cast<std::int64_t>(static_cast<SWord>(a[r])) -
            static_cast<std::int64_t>(static_cast<SWord>(b[r]))));
      }
      break;
    case RcOp::kSmul:
      for (unsigned r = 0; r < kN; ++r) {
        o[r] = static_cast<Word>(static_cast<SWord>(
            (static_cast<std::int64_t>(static_cast<SWord>(a[r])) *
             static_cast<std::int64_t>(static_cast<SWord>(b[r]))) &
            0xFFFFFFFFll));
      }
      break;
    case RcOp::kFxpMul:
      for (unsigned r = 0; r < kN; ++r) {
        o[r] = static_cast<Word>(static_cast<SWord>(
            (static_cast<std::int64_t>(static_cast<SWord>(a[r])) *
             static_cast<std::int64_t>(static_cast<SWord>(b[r]))) >> 16));
      }
      break;
    case RcOp::kSll:
      for (unsigned r = 0; r < kN; ++r) o[r] = a[r] << (b[r] & 31u);
      break;
    case RcOp::kSrl:
      for (unsigned r = 0; r < kN; ++r) o[r] = a[r] >> (b[r] & 31u);
      break;
    case RcOp::kSra:
      for (unsigned r = 0; r < kN; ++r) {
        o[r] = static_cast<Word>(static_cast<SWord>(a[r]) >> (b[r] & 31u));
      }
      break;
    case RcOp::kLand:
      for (unsigned r = 0; r < kN; ++r) o[r] = a[r] & b[r];
      break;
    case RcOp::kLor:
      for (unsigned r = 0; r < kN; ++r) o[r] = a[r] | b[r];
      break;
    case RcOp::kLxor:
      for (unsigned r = 0; r < kN; ++r) o[r] = a[r] ^ b[r];
      break;
    case RcOp::kLnot:
      for (unsigned r = 0; r < kN; ++r) o[r] = ~a[r];
      break;
    case RcOp::kMv:
      for (unsigned r = 0; r < kN; ++r) o[r] = a[r];
      break;
    case RcOp::kCmpEq:
      for (unsigned r = 0; r < kN; ++r) o[r] = a[r] == b[r] ? 1u : 0u;
      break;
    case RcOp::kCmpLt:
      for (unsigned r = 0; r < kN; ++r) {
        o[r] = static_cast<SWord>(a[r]) < static_cast<SWord>(b[r]) ? 1u : 0u;
      }
      break;
    case RcOp::kCmpLe:
      for (unsigned r = 0; r < kN; ++r) {
        o[r] = static_cast<SWord>(a[r]) <= static_cast<SWord>(b[r]) ? 1u : 0u;
      }
      break;
    case RcOp::kMax:
      for (unsigned r = 0; r < kN; ++r) {
        o[r] = static_cast<SWord>(a[r]) >= static_cast<SWord>(b[r]) ? a[r] : b[r];
      }
      break;
    case RcOp::kMin:
      for (unsigned r = 0; r < kN; ++r) {
        o[r] = static_cast<SWord>(a[r]) <= static_cast<SWord>(b[r]) ? a[r] : b[r];
      }
      break;
    case RcOp::kAbs:
      for (unsigned r = 0; r < kN; ++r) o[r] = alu_eval(RcOp::kAbs, a[r], 0);
      break;
    default:
      for (unsigned r = 0; r < kN; ++r) o[r] = alu_eval(op, a[r], b[r]);
      break;
  }
}

} // namespace

void Column::save_state(Checkpoint& ck) const {
  for (unsigned v = 0; v < arch::kVwrsPerColumn; ++v) {
    ck.vwr[v] = vwrs_[v].trace_row();
  }
  for (unsigned i = 0; i < arch::kSrfEntries; ++i) ck.srf[i] = srf_.trace_read(i);
  ck.rcs = rcs_;
  ck.rc_prev = rc_prev_;
  ck.lcu_rf = lcu_rf_;
  ck.lsu_ptr = lsu_ptr_;
  ck.idx = idx_;
  ck.aux = aux_;
  ck.pc = pc_;
  ck.running = running_;
  ck.executed = executed_;
}

void Column::restore_state(const Checkpoint& ck) {
  for (unsigned v = 0; v < arch::kVwrsPerColumn; ++v) {
    vwrs_[v].trace_row() = ck.vwr[v];
  }
  for (unsigned i = 0; i < arch::kSrfEntries; ++i) {
    srf_.trace_write(i, ck.srf[i]);
  }
  rcs_ = ck.rcs;
  rc_prev_ = ck.rc_prev;
  lcu_rf_ = ck.lcu_rf;
  lsu_ptr_ = ck.lsu_ptr;
  idx_ = ck.idx;
  aux_ = ck.aux;
  pc_ = ck.pc;
  running_ = ck.running;
  executed_ = ck.executed;
}

inline const Word* Column::spm_trace_read_row(unsigned row) {
  const Word* p = spm_->trace_row(row);  // range-checks like the interpreter
  spm_rmask_[mask_tier_] |= 1ull << row;
  return p;
}

inline void Column::spm_trace_write_row(unsigned row, const mem::Vwr::Row& v) {
  if (undo_ != nullptr && row < arch::kSpmRows &&
      ((undo_->saved_mask >> row) & 1u) == 0) {
    undo_->saved_mask |= 1ull << row;
    std::copy_n(spm_->trace_row(row), arch::kVwrWords,
                undo_->rows[row].begin());
    undo_->versions[row] = spm_->row_version(row);
  }
  spm_->trace_write_row(row, v);
  spm_wmask_[mask_tier_] |= 1ull << row;
}

inline Word Column::spm_trace_read_word(unsigned word) {
  const Word v = spm_->trace_read_word(word);
  spm_rmask_[mask_tier_] |= 1ull << (word / arch::kVwrWords);
  return v;
}

inline void Column::spm_trace_write_word(unsigned word, Word v) {
  const unsigned row = word / arch::kVwrWords;
  if (undo_ != nullptr && row < arch::kSpmRows &&
      ((undo_->saved_mask >> row) & 1u) == 0) {
    undo_->saved_mask |= 1ull << row;
    std::copy_n(spm_->trace_row(row), arch::kVwrWords,
                undo_->rows[row].begin());
    undo_->versions[row] = spm_->row_version(row);
  }
  spm_->trace_write_word(word, v);
  spm_wmask_[mask_tier_] |= 1ull << row;
}

inline Word Column::trace_src(const tc::Src& s) const {
  using K = tc::Src::K;
  switch (s.k) {
    case K::kImm:
      return s.imm;
    case K::kRf:
      return rcs_[s.rc].rf[s.idx];
    case K::kVwr:
      return vwrs_[s.vwr].trace_row()[s.base + idx_];
    case K::kSrf:
      return srf_.trace_read(s.idx);
    case K::kPrev:
      return rc_prev_[s.rc];
    case K::kCross:
      if (cross_ == nullptr) {
        // Same fault as the interpreter; the caller rolls back and reruns
        // interpreted so the error surfaces with the exact partial state.
        throw SimError("RC: kRcCross operand used without a synchronized "
                       "partner column");
      }
      return (*cross_)[s.rc];
    default:
      return 0;
  }
}

inline unsigned Column::trace_lsu_addr(const tc::LsuUop& u) {
  using isa::LsuAddrMode;
  switch (u.amode) {
    case LsuAddrMode::kImm:
      return static_cast<unsigned>(u.imm);
    case LsuAddrMode::kSrfImm:
      return static_cast<unsigned>(srf_.trace_read(u.srf_base)) +
             static_cast<unsigned>(u.imm);
    case LsuAddrMode::kPtr0Post: {
      const unsigned a = lsu_ptr_[0];
      lsu_ptr_[0] = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(lsu_ptr_[0]) + u.imm);
      return a;
    }
    default: {  // kPtr1Post (compiler rejects anything else)
      const unsigned a = lsu_ptr_[1];
      lsu_ptr_[1] = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(lsu_ptr_[1]) + u.imm);
      return a;
    }
  }
}

inline void Column::quad_load(const tc::Src& s, Word* v) const {
  using K = tc::Src::K;
  switch (s.k) {
    case K::kImm:
      v[0] = v[1] = v[2] = v[3] = s.imm;
      break;
    case K::kRf:
      for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) {
        v[r] = rcs_[r].rf[s.idx];
      }
      break;
    case K::kVwr: {
      const Word* row = vwrs_[s.vwr].trace_row().data() + idx_;
      for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) {
        v[r] = row[r * arch::kSliceWords];
      }
      break;
    }
    case K::kSrf: {
      const Word x = srf_.trace_read(s.idx);
      v[0] = v[1] = v[2] = v[3] = x;
      break;
    }
    default:
      v[0] = v[1] = v[2] = v[3] = 0;
      break;
  }
}

/// All four RCs share one shape; the source/dest dispatch and the ALU
/// opcode switch are hoisted out of the lane loop (the rc_all() idiom of
/// every kernel inner loop).
inline void Column::exec_quad_rcs(const tc::Line& L) {
  const tc::RcUop& q = L.rc[0];
  Word av[arch::kRcsPerColumn];
  Word bv[arch::kRcsPerColumn];
  quad_load(q.a, av);
  if (q.unary) {
    bv[0] = bv[1] = bv[2] = bv[3] = 0;
  } else {
    quad_load(q.b, bv);
  }
  Word outs[arch::kRcsPerColumn];
  alu_eval4(q.op, av, bv, outs);
  switch (q.d) {
    case tc::Dst::kRf:
      for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) {
        rcs_[r].rf[q.idx] = outs[r];
      }
      break;
    case tc::Dst::kVwr: {
      Word* row = vwrs_[q.vwr].trace_row().data() + idx_;
      for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) {
        row[r * arch::kSliceWords] = outs[r];
      }
      break;
    }
    default:
      break;  // kNone (kSrf never compiles as a quad)
  }
  for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) rc_prev_[r] = outs[r];
}

/// The inner-loop fast path: a quad RC op plus at most a register-only
/// MXCU index update. No LSU, no LCU, no SRF traffic outside the quad.
void Column::exec_quad_fast(const tc::Line& L) {
  exec_quad_rcs(L);
  if (L.has_mxcu) {
    using isa::MxcuOp;
    unsigned new_idx = idx_;
    switch (L.mxcu.op) {
      case MxcuOp::kSetIdx:
        new_idx = static_cast<unsigned>(L.mxcu.imm);
        break;
      case MxcuOp::kAddIdx:
        new_idx = static_cast<unsigned>(static_cast<SWord>(idx_) + L.mxcu.imm);
        break;
      case MxcuOp::kSetAux:
        aux_ = L.mxcu.imm;
        break;
      case MxcuOp::kAddAux:
        aux_ += L.mxcu.imm;
        break;
      case MxcuOp::kIdxFromAux:
        new_idx = static_cast<unsigned>(aux_);
        break;
      default:
        break;
    }
    idx_ = new_idx % arch::kSliceWords;
  }
}

void Column::exec_traced_line(const tc::Line& L) {
  using isa::LsuOp;
  using isa::MxcuOp;
  using isa::LcuOp;

  // ---- LSU: SPM side effects happen in the evaluate phase (they read the
  // pre-commit VWR/SRF state); VWR row writes commit after the RCs.
  int pend_row_vwr = -1;
  const Word* pend_row_src = nullptr;
  int pend_srf_idx = -1;
  Word pend_srf_val = 0;
  if (L.has_lsu) {
    const tc::LsuUop& u = L.lsu;
    switch (u.op) {
      case LsuOp::kLdVwr:
        pend_row_src = spm_trace_read_row(trace_lsu_addr(u));
        pend_row_vwr = u.vwr;
        break;
      case LsuOp::kStVwr: {
        const unsigned row = trace_lsu_addr(u);
        spm_trace_write_row(row, vwrs_[u.vwr].trace_row());
        break;
      }
      case LsuOp::kLdSrf:
        pend_srf_val = spm_trace_read_word(trace_lsu_addr(u));
        pend_srf_idx = u.srf_data;
        break;
      case LsuOp::kStSrf: {
        const unsigned word = trace_lsu_addr(u);
        spm_trace_write_word(word, srf_.trace_read(u.srf_data));
        break;
      }
      case LsuOp::kShuf: {
        const auto& map = shuffle_tables().map[static_cast<unsigned>(u.mode)];
        const Word* a = vwrs_[0].trace_row().data();
        const Word* b = vwrs_[1].trace_row().data();
        for (unsigned i = 0; i < arch::kVwrWords; ++i) {
          const unsigned s = map[i];
          shuf_scratch_[i] =
              s < arch::kVwrWords ? a[s] : b[s - arch::kVwrWords];
        }
        pend_row_src = shuf_scratch_.data();
        pend_row_vwr = static_cast<int>(VwrSel::C);
        break;
      }
      case LsuOp::kSetPtr: {
        const unsigned p = static_cast<unsigned>(u.vwr) & 1u;
        lsu_ptr_[p] = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(srf_.trace_read(u.srf_base)) + u.imm);
        break;
      }
      default:
        break;
    }
  }

  // ---- MXCU: evaluate against pre-cycle state, commit at the end.
  unsigned new_idx = idx_;
  SWord new_aux = aux_;
  int pend_mx_srf = -1;
  if (L.has_mxcu) {
    const tc::MxcuUop& u = L.mxcu;
    switch (u.op) {
      case MxcuOp::kSetIdx:
        new_idx = static_cast<unsigned>(u.imm);
        break;
      case MxcuOp::kAddIdx:
        new_idx = static_cast<unsigned>(static_cast<SWord>(idx_) + u.imm);
        break;
      case MxcuOp::kSetIdxSrf:
        new_idx = srf_.trace_read(u.srf);
        break;
      case MxcuOp::kAddIdxSrf:
        new_idx = idx_ + srf_.trace_read(u.srf);
        break;
      case MxcuOp::kAndIdxSrf:
        new_idx = idx_ & srf_.trace_read(u.srf);
        break;
      case MxcuOp::kSetAux:
        new_aux = u.imm;
        break;
      case MxcuOp::kAddAux:
        new_aux = aux_ + u.imm;
        break;
      case MxcuOp::kIdxFromAux:
        new_idx = static_cast<unsigned>(aux_);
        break;
      case MxcuOp::kStIdxSrf:
        pend_mx_srf = u.srf;
        break;
      default:
        break;
    }
    new_idx %= arch::kSliceWords;
  }

  // ---- LCU register op (control ops live in the block terminator).
  int pend_lcu_rd = -1;
  Word pend_lcu_val = 0;
  int pend_lcu_srf = -1;
  Word pend_lcu_srf_val = 0;
  if (L.has_lcu) {
    const tc::LcuUop& u = L.lcu;
    switch (u.op) {
      case LcuOp::kSetI:
        pend_lcu_rd = u.rd;
        pend_lcu_val = static_cast<Word>(static_cast<SWord>(u.imm));
        break;
      case LcuOp::kAddI:
        pend_lcu_rd = u.rd;
        pend_lcu_val =
            static_cast<Word>(static_cast<SWord>(lcu_rf_[u.rd]) + u.imm);
        break;
      case LcuOp::kMvR:
        pend_lcu_rd = u.rd;
        pend_lcu_val = lcu_rf_[u.ra];
        break;
      case LcuOp::kAddR:
        pend_lcu_rd = u.rd;
        pend_lcu_val = static_cast<Word>(static_cast<SWord>(lcu_rf_[u.rd]) +
                                         static_cast<SWord>(lcu_rf_[u.ra]));
        break;
      case LcuOp::kSubR:
        pend_lcu_rd = u.rd;
        pend_lcu_val = static_cast<Word>(static_cast<SWord>(lcu_rf_[u.rd]) -
                                         static_cast<SWord>(lcu_rf_[u.ra]));
        break;
      case LcuOp::kMvSrf:
        pend_lcu_rd = u.rd;
        pend_lcu_val = srf_.trace_read(u.srf);
        break;
      case LcuOp::kStSrf:
        pend_lcu_srf = u.srf;
        pend_lcu_srf_val = lcu_rf_[u.ra];
        break;
      default:
        break;
    }
  }

  // ---- RCs: evaluate (pre-cycle reads), then commit.
  if (L.quad) {
    exec_quad_rcs(L);
  } else if (L.rc_mask != 0) {
    Word outs[arch::kRcsPerColumn];
    for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) {
      if (((L.rc_mask >> r) & 1u) == 0) continue;
      const tc::RcUop& u = L.rc[r];
      const Word a = trace_src(u.a);
      const Word b = u.unary ? 0 : trace_src(u.b);
      outs[r] = alu_eval(u.op, a, b);
    }
    for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) {
      if (((L.rc_mask >> r) & 1u) == 0) continue;
      const tc::RcUop& u = L.rc[r];
      switch (u.d) {
        case tc::Dst::kRf:
          rcs_[r].rf[u.idx] = outs[r];
          break;
        case tc::Dst::kVwr:
          vwrs_[u.vwr].trace_row()[u.base + idx_] = outs[r];
          break;
        case tc::Dst::kSrf:
          srf_.trace_write(u.idx, outs[r]);
          break;
        default:
          break;
      }
      rc_prev_[r] = outs[r];
    }
  }

  // ---- end-of-cycle commits (interpreter order; at most one SRF write
  // exists per line, so the relative SRF order is immaterial).
  if (pend_row_vwr >= 0) {
    Word* dst = vwrs_[pend_row_vwr].trace_row().data();
    std::copy_n(pend_row_src, arch::kVwrWords, dst);
  }
  if (pend_srf_idx >= 0) srf_.trace_write(pend_srf_idx, pend_srf_val);
  if (pend_mx_srf >= 0) srf_.trace_write(pend_mx_srf, idx_);
  if (pend_lcu_srf >= 0) srf_.trace_write(pend_lcu_srf, pend_lcu_srf_val);
  if (pend_lcu_rd >= 0) lcu_rf_[pend_lcu_rd] = pend_lcu_val;
  idx_ = new_idx;
  aux_ = new_aux;
}

inline unsigned Column::eval_term(const tc::Block& b, bool& exit) {
  unsigned next = b.first + b.len;  // fallthrough
  switch (b.term) {
    case tc::Term::kFall:
      break;
    case tc::Term::kB:
      next = b.target;
      break;
    case tc::Term::kCond: {
      const SWord ra = static_cast<SWord>(lcu_rf_[b.ra]);
      const SWord rb = static_cast<SWord>(lcu_rf_[b.rb]);
      bool taken = false;
      switch (b.cond) {
        case tc::Cond::kEq: taken = ra == rb; break;
        case tc::Cond::kNe: taken = ra != rb; break;
        case tc::Cond::kLt: taken = ra < rb; break;
        case tc::Cond::kGe: taken = ra >= rb; break;
        case tc::Cond::kEqI: taken = ra == b.imm; break;
        case tc::Cond::kNeI: taken = ra != b.imm; break;
        case tc::Cond::kLtI: taken = ra < b.imm; break;
        case tc::Cond::kGeI: taken = ra >= b.imm; break;
        case tc::Cond::kSrfZ: taken = srf_.trace_read(b.srf) == 0; break;
        case tc::Cond::kSrfNz: taken = srf_.trace_read(b.srf) != 0; break;
      }
      if (taken) next = b.target;
      break;
    }
    case tc::Term::kDbnz: {
      const Word nv = lcu_rf_[b.rd] - 1;
      lcu_rf_[b.rd] = nv;
      if (nv != 0) next = b.target;
      break;
    }
    case tc::Term::kExit:
      exit = true;
      break;
  }
  return next;
}

void Column::step_traced() {
  const CompiledTrace& T = *trace_;
  if (tb_ == nullptr) {
    tb_ = &T.blocks[T.block_of[pc_]];
    tb_line_ = 0;
  }
  exec_dispatch(T.lines[tb_->first + tb_line_]);
  ++executed_;
  if (++tb_line_ < tb_->len) {
    ++pc_;
    return;
  }
  const tc::Block& b = *tb_;
  tb_ = nullptr;
  meter_->add_block(b.energy, 1);
  bool exit = false;
  const unsigned next = eval_term(b, exit);
  if (exit) {
    running_ = false;  // pc stays at the EXIT line, like the interpreter
    return;
  }
  if (next >= T.length()) {
    throw SimError("Column: branch past end of program");
  }
  pc_ = next;
}

bool Column::run_fused_quad1(const tc::Line& L, std::uint64_t iters) {
  using K = tc::Src::K;
  if (L.kind != tc::Line::Kind::kQuadFast) return false;
  const tc::RcUop& q = L.rc[0];
  if (q.d != tc::Dst::kVwr || q.a.k != K::kVwr) return false;
  const bool b_vwr = !q.unary && q.b.k == K::kVwr;
  if (!b_vwr && !q.unary && q.b.k != K::kImm && q.b.k != K::kSrf) {
    return false;
  }
  // Only a plain index step may ride along (aux/set forms stay generic).
  if (L.has_mxcu && L.mxcu.op != isa::MxcuOp::kAddIdx) return false;
  if (iters == 0) return true;  // dbnz with cnt handled by the caller

  // Loop-invariant routing: row bases cannot move and the SRF cannot be
  // written by a quad-fast body, so the broadcast operand is fixed too.
  const Word* const arow = vwrs_[q.a.vwr].trace_row().data();
  const Word* const brow = b_vwr ? vwrs_[q.b.vwr].trace_row().data() : nullptr;
  Word* const drow = vwrs_[q.vwr].trace_row().data();
  constexpr unsigned S = arch::kSliceWords;
  const std::int32_t step = L.has_mxcu ? L.mxcu.imm : 0;
  unsigned idx = idx_;
  Word av[arch::kRcsPerColumn];
  Word bv[arch::kRcsPerColumn];
  Word outs[arch::kRcsPerColumn];
  if (!b_vwr) {
    Word bc = 0;
    if (!q.unary) bc = q.b.k == K::kImm ? q.b.imm : srf_.trace_read(q.b.idx);
    bv[0] = bv[1] = bv[2] = bv[3] = bc;
  }
  for (std::uint64_t it = 0; it < iters; ++it) {
    av[0] = arow[idx];
    av[1] = arow[idx + S];
    av[2] = arow[idx + 2 * S];
    av[3] = arow[idx + 3 * S];
    if (b_vwr) {
      bv[0] = brow[idx];
      bv[1] = brow[idx + S];
      bv[2] = brow[idx + 2 * S];
      bv[3] = brow[idx + 3 * S];
    }
    alu_eval4(q.op, av, bv, outs);
    drow[idx] = outs[0];
    drow[idx + S] = outs[1];
    drow[idx + 2 * S] = outs[2];
    drow[idx + 3 * S] = outs[3];
    if (step != 0) {
      idx = static_cast<unsigned>(static_cast<SWord>(idx) + step) % S;
    }
  }
  // rc_prev_ is unobservable inside a quad-fast body (no kPrev operands
  // compile into one), so only the last iteration's outputs matter.
  for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) rc_prev_[r] = outs[r];
  idx_ = idx;
  return true;
}

Cycle Column::step_block_traced(Cycle budget_left) {
  const CompiledTrace& T = *trace_;
  const tc::Line* lines = T.lines.data();
  const tc::Block& b = T.blocks[T.block_of[pc_]];
  unsigned next = b.first + b.len;  // fallthrough
  Cycle n = 0;
  if (b.fuse_self_loop) {
    // Hardware loop: replay the whole (runtime-read) trip count fused.
    const Word cnt = lcu_rf_[b.rd];
    const std::uint64_t iters = cnt == 0 ? (1ull << 32) : cnt;
    if (iters * b.len > budget_left) throw tc::ReplayBudgetExceeded{};
    // Single-line elementwise bodies take the batched path (routing
    // hoisted out of the trip count); everything else replays per line.
    if (b.len != 1 || !run_fused_quad1(lines[b.first], iters)) {
      for (std::uint64_t it = 0; it < iters; ++it) {
        for (unsigned i = 0; i < b.len; ++i) {
          exec_dispatch(lines[b.first + i]);
        }
      }
    }
    lcu_rf_[b.rd] = 0;  // dbnz leaves the counter at zero
    meter_->add_block(b.energy, iters);
    executed_ += iters * b.len;
    n = iters * b.len;
  } else {
    for (unsigned i = 0; i < b.len; ++i) exec_dispatch(lines[b.first + i]);
    meter_->add_block(b.energy, 1);
    executed_ += b.len;
    n = b.len;
    bool exit = false;
    next = eval_term(b, exit);
    if (exit) running_ = false;
  }
  if (!running_) {
    pc_ = b.first + b.len - 1;  // the interpreter leaves pc at the EXIT line
    return n;
  }
  if (next >= T.length()) {
    throw SimError("Column: branch past end of program");
  }
  pc_ = next;
  return n;
}

Cycle Column::run_traced(tc::SpmUndo* undo, Cycle budget) {
  if (!has_trace()) throw HostError("Column: run_traced without a trace");
  begin_traced(undo);
  Cycle n = 0;
  while (running_) {
    if (n > budget) throw tc::ReplayBudgetExceeded{};  // caller rolls back
    n += step_block_traced(budget - n);
  }
  // Sync the per-RC result registers the replay tracked via rc_prev_.
  for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) rcs_[r].out = rc_prev_[r];
  undo_ = nullptr;
  return n;
}

} // namespace vwr2a::cgra
