#include "cgra/column.hpp"

#include <string>

#include "cgra/alu.hpp"
#include "cgra/shuffle.hpp"
#include "common/status.hpp"

namespace vwr2a::cgra {

using energy::Event;

Column::Column(unsigned id, mem::Spm& spm, energy::EnergyMeter& meter)
    : id_(id),
      spm_(&spm),
      meter_(&meter),
      srf_(meter),
      vwrs_{mem::Vwr("col" + std::to_string(id) + ".A", meter),
            mem::Vwr("col" + std::to_string(id) + ".B", meter),
            mem::Vwr("col" + std::to_string(id) + ".C", meter)} {}

void Column::load_program(const isa::ColumnProgram& prog) {
  prog_.clear();
  prog_.reserve(prog.length());
  for (unsigned pc = 0; pc < prog.length(); ++pc) {
    DecodedLine line;
    line.lcu = isa::decode_lcu(prog.word(Slot::LCU, pc));
    line.lsu = isa::decode_lsu(prog.word(Slot::LSU, pc));
    line.mxcu = isa::decode_mxcu(prog.word(Slot::MXCU, pc));
    for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) {
      line.rc[r] = isa::decode_rc(prog.word(rc_slot(r), pc));
    }
    prog_.push_back(line);
  }
  raw_prog_ = prog;
  pc_ = 0;
  running_ = false;
}

std::string Column::line_asm(unsigned pc) const {
  if (pc >= raw_prog_.length()) return "<past end>";
  std::string out = "lcu: " + isa::to_asm(isa::decode_lcu(raw_prog_.word(Slot::LCU, pc)));
  out += " | lsu: " + isa::to_asm(isa::decode_lsu(raw_prog_.word(Slot::LSU, pc)));
  out += " | mxcu: " + isa::to_asm(isa::decode_mxcu(raw_prog_.word(Slot::MXCU, pc)));
  for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) {
    out += " | rc" + std::to_string(r) + ": " +
           isa::to_asm(isa::decode_rc(raw_prog_.word(rc_slot(r), pc)));
  }
  return out;
}

void Column::start() {
  if (prog_.empty()) throw HostError("Column: start with no program loaded");
  pc_ = 0;
  running_ = true;
}

Word Column::read_rc_src(isa::RcSrc src, const isa::RcInstr& instr, unsigned r,
                         const RcOutputs* cross) {
  using isa::RcSrc;
  switch (src) {
    case RcSrc::kZero:
      return 0;
    case RcSrc::kOne:
      return 1;
    case RcSrc::kR0:
      meter_->add(Event::kRcRfRead);
      return rcs_[r].rf[0];
    case RcSrc::kR1:
      meter_->add(Event::kRcRfRead);
      return rcs_[r].rf[1];
    case RcSrc::kVwrA:
      return vwrs_[0].read_word(r, idx_);
    case RcSrc::kVwrB:
      return vwrs_[1].read_word(r, idx_);
    case RcSrc::kVwrC:
      return vwrs_[2].read_word(r, idx_);
    case RcSrc::kSrf:
      return srf_.read(instr.srf);
    case RcSrc::kRcUp:
      return rc_prev_[(r + arch::kRcsPerColumn - 1) % arch::kRcsPerColumn];
    case RcSrc::kRcDown:
      return rc_prev_[(r + 1) % arch::kRcsPerColumn];
    case RcSrc::kRcCross:
      if (cross == nullptr) {
        throw SimError("RC: kRcCross operand used without a synchronized "
                       "partner column");
      }
      return (*cross)[r];
    case RcSrc::kImm:
      return static_cast<Word>(static_cast<SWord>(instr.imm));
    default:
      throw DecodeError("RC: bad operand source");
  }
}

unsigned Column::lsu_address(const isa::LsuInstr& instr) {
  using isa::LsuAddrMode;
  switch (instr.amode) {
    case LsuAddrMode::kImm:
      return static_cast<unsigned>(instr.imm);
    case LsuAddrMode::kSrfImm:
      return static_cast<unsigned>(srf_.read(instr.srf_base)) + instr.imm;
    case LsuAddrMode::kPtr0Post: {
      const unsigned a = lsu_ptr_[0];
      lsu_ptr_[0] = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(lsu_ptr_[0]) + instr.imm);
      return a;
    }
    case LsuAddrMode::kPtr1Post: {
      const unsigned a = lsu_ptr_[1];
      lsu_ptr_[1] = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(lsu_ptr_[1]) + instr.imm);
      return a;
    }
    default:
      throw DecodeError("LSU: bad addressing mode");
  }
}

void Column::step(const RcOutputs* cross) {
  if (!running_) return;
  if (pc_ >= prog_.size()) {
    throw SimError("Column: PC ran past the end of the program (missing EXIT?)");
  }

  srf_.begin_cycle();
  for (auto& v : vwrs_) v.begin_cycle();

  const DecodedLine& line = prog_[pc_];

  meter_->add(Event::kInstrFetchRc, arch::kRcsPerColumn);
  meter_->add(Event::kInstrFetchCtrl, 3);
  meter_->add(Event::kPcUpdate);

  // ---------------- evaluate phase (reads observe pre-cycle state) ----------

  // LCU: next-PC decision and loop-register arithmetic.
  unsigned next_pc = pc_ + 1;
  bool exit = false;
  std::optional<std::pair<unsigned, Word>> lcu_reg_write;
  std::optional<std::pair<unsigned, Word>> lcu_srf_write;
  {
    using isa::LcuOp;
    const isa::LcuInstr& I = line.lcu;
    const SWord ra = static_cast<SWord>(lcu_rf_[I.ra]);
    const SWord rb = static_cast<SWord>(lcu_rf_[I.rb]);
    switch (I.op) {
      case LcuOp::kNop:
        break;
      case LcuOp::kSetI:
        lcu_reg_write = {I.rd, static_cast<Word>(static_cast<SWord>(I.imm))};
        break;
      case LcuOp::kAddI:
        lcu_reg_write = {I.rd, static_cast<Word>(static_cast<SWord>(lcu_rf_[I.rd]) +
                                                 I.imm)};
        break;
      case LcuOp::kMvR:
        lcu_reg_write = {I.rd, lcu_rf_[I.ra]};
        break;
      case LcuOp::kAddR:
        lcu_reg_write = {I.rd, static_cast<Word>(
                                   static_cast<SWord>(lcu_rf_[I.rd]) +
                                   static_cast<SWord>(lcu_rf_[I.ra]))};
        break;
      case LcuOp::kSubR:
        lcu_reg_write = {I.rd, static_cast<Word>(
                                   static_cast<SWord>(lcu_rf_[I.rd]) -
                                   static_cast<SWord>(lcu_rf_[I.ra]))};
        break;
      case LcuOp::kMvSrf:
        lcu_reg_write = {I.rd, srf_.read(I.srf)};
        break;
      case LcuOp::kStSrf:
        lcu_srf_write = {I.srf, lcu_rf_[I.ra]};
        break;
      case LcuOp::kB:
        next_pc = I.target;
        break;
      case LcuOp::kBeq:
        if (ra == rb) next_pc = I.target;
        break;
      case LcuOp::kBne:
        if (ra != rb) next_pc = I.target;
        break;
      case LcuOp::kBlt:
        if (ra < rb) next_pc = I.target;
        break;
      case LcuOp::kBge:
        if (ra >= rb) next_pc = I.target;
        break;
      case LcuOp::kBeqI:
        if (ra == I.imm) next_pc = I.target;
        break;
      case LcuOp::kBneI:
        if (ra != I.imm) next_pc = I.target;
        break;
      case LcuOp::kBltI:
        if (ra < I.imm) next_pc = I.target;
        break;
      case LcuOp::kBgeI:
        if (ra >= I.imm) next_pc = I.target;
        break;
      case LcuOp::kBsrfZ:
        if (srf_.read(I.srf) == 0) next_pc = I.target;
        break;
      case LcuOp::kBsrfNz:
        if (srf_.read(I.srf) != 0) next_pc = I.target;
        break;
      case LcuOp::kDbnz: {
        const Word nv = lcu_rf_[I.rd] - 1;
        lcu_reg_write = {I.rd, nv};
        if (nv != 0) next_pc = I.target;
        break;
      }
      case LcuOp::kExit:
        exit = true;
        break;
      default:
        throw DecodeError("LCU: bad opcode");
    }
  }

  // LSU: SPM transfers and shuffle operations.
  std::optional<std::pair<VwrSel, VwrRow>> lsu_vwr_write;
  std::optional<std::pair<unsigned, Word>> lsu_srf_write;
  {
    using isa::LsuOp;
    const isa::LsuInstr& I = line.lsu;
    switch (I.op) {
      case LsuOp::kNop:
        break;
      case LsuOp::kLdVwr: {
        const unsigned row = lsu_address(I);
        lsu_vwr_write = {I.vwr, spm_->read_row(id_, row)};
        break;
      }
      case LsuOp::kStVwr: {
        const unsigned row = lsu_address(I);
        spm_->write_row(id_, row, vwrs_[static_cast<unsigned>(I.vwr)].read_row());
        break;
      }
      case LsuOp::kLdSrf: {
        const unsigned word = lsu_address(I);
        lsu_srf_write = {I.srf_data, spm_->read_word_array(id_, word)};
        break;
      }
      case LsuOp::kStSrf: {
        const unsigned word = lsu_address(I);
        spm_->write_word_array(id_, word, srf_.read(I.srf_data));
        break;
      }
      case LsuOp::kShuf: {
        meter_->add(Event::kShuffleOp);
        lsu_vwr_write = {VwrSel::C,
                         shuffle_eval(I.mode, vwrs_[0].read_row(),
                                      vwrs_[1].read_row())};
        break;
      }
      case LsuOp::kSetPtr: {
        const unsigned p = static_cast<unsigned>(I.vwr) & 1u;
        lsu_ptr_[p] = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(srf_.read(I.srf_base)) + I.imm);
        break;
      }
      default:
        throw DecodeError("LSU: bad opcode");
    }
  }

  // MXCU: slice-index arithmetic.
  unsigned new_idx = idx_;
  SWord new_aux = aux_;
  std::optional<std::pair<unsigned, Word>> mxcu_srf_write;
  {
    using isa::MxcuOp;
    const isa::MxcuInstr& I = line.mxcu;
    switch (I.op) {
      case MxcuOp::kNop:
        break;
      case MxcuOp::kSetIdx:
        new_idx = static_cast<unsigned>(I.imm);
        break;
      case MxcuOp::kAddIdx:
        new_idx = static_cast<unsigned>(static_cast<SWord>(idx_) + I.imm);
        break;
      case MxcuOp::kSetIdxSrf:
        new_idx = srf_.read(I.srf);
        break;
      case MxcuOp::kAddIdxSrf:
        new_idx = idx_ + srf_.read(I.srf);
        break;
      case MxcuOp::kAndIdxSrf:
        new_idx = idx_ & srf_.read(I.srf);
        break;
      case MxcuOp::kSetAux:
        new_aux = I.imm;
        break;
      case MxcuOp::kAddAux:
        new_aux = aux_ + I.imm;
        break;
      case MxcuOp::kIdxFromAux:
        new_idx = static_cast<unsigned>(aux_);
        break;
      case MxcuOp::kStIdxSrf:
        mxcu_srf_write = {I.srf, idx_};
        break;
      default:
        throw DecodeError("MXCU: bad opcode");
    }
    new_idx %= arch::kSliceWords;  // the index addresses within a slice
  }

  // RCs: operand routing + ALU. Operand isolation: a NOP touches nothing and
  // the result register holds its value.
  struct RcPending {
    bool active = false;
    Word out = 0;
    isa::RcDst dst = isa::RcDst::kNone;
    std::uint8_t srf = 0;
  };
  std::array<RcPending, arch::kRcsPerColumn> rc_pend{};
  for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) {
    const isa::RcInstr& I = line.rc[r];
    if (I.op == isa::RcOp::kNop) continue;
    const Word a = read_rc_src(I.src_a, I, r, cross);
    const Word b = alu_is_unary(I.op) ? 0 : read_rc_src(I.src_b, I, r, cross);
    meter_->add(alu_energy_event(I.op));
    rc_pend[r] = {true, alu_eval(I.op, a, b), I.dst, I.srf};
  }

  // ---------------- commit phase (end-of-cycle register updates) ------------

  for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) {
    if (!rc_pend[r].active) continue;
    const RcPending& p = rc_pend[r];
    switch (p.dst) {
      case isa::RcDst::kNone:
        break;
      case isa::RcDst::kR0:
        meter_->add(Event::kRcRfWrite);
        rcs_[r].rf[0] = p.out;
        break;
      case isa::RcDst::kR1:
        meter_->add(Event::kRcRfWrite);
        rcs_[r].rf[1] = p.out;
        break;
      case isa::RcDst::kVwrA:
        vwrs_[0].write_word(r, idx_, p.out);
        break;
      case isa::RcDst::kVwrB:
        vwrs_[1].write_word(r, idx_, p.out);
        break;
      case isa::RcDst::kVwrC:
        vwrs_[2].write_word(r, idx_, p.out);
        break;
      case isa::RcDst::kSrf:
        srf_.write(p.srf, p.out);
        break;
      default:
        throw DecodeError("RC: bad destination");
    }
    rcs_[r].out = p.out;
  }

  if (lsu_vwr_write) {
    vwrs_[static_cast<unsigned>(lsu_vwr_write->first)].write_row(
        lsu_vwr_write->second);
  }
  if (lsu_srf_write) srf_.write(lsu_srf_write->first, lsu_srf_write->second);
  if (mxcu_srf_write) srf_.write(mxcu_srf_write->first, mxcu_srf_write->second);
  if (lcu_srf_write) srf_.write(lcu_srf_write->first, lcu_srf_write->second);
  if (lcu_reg_write) lcu_rf_[lcu_reg_write->first] = lcu_reg_write->second;

  idx_ = new_idx;
  aux_ = new_aux;

  for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) {
    rc_prev_[r] = rcs_[r].out;
  }

  ++executed_;
  if (exit) {
    running_ = false;
  } else {
    if (next_pc >= prog_.size()) {
      throw SimError("Column: branch past end of program");
    }
    pc_ = next_pc;
  }
}

} // namespace vwr2a::cgra
