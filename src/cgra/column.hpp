#pragma once
// One VWR2A column: four RCs plus the three specialized slots (LCU, LSU,
// MXCU) advancing in lock-step behind a shared program counter (paper
// Sec 3.1/3.3). The column owns its three VWRs, its SRF and its shuffle
// unit; the SPM is shared across columns and passed in by the top level.
//
// Cycle semantics (reconstructed from the paper's Table 1 flow):
//  * All register state (RC register files, RC result registers, LCU loop
//    counters, the MXCU slice index, VWR contents, the PC) commits at end of
//    cycle; every read during a cycle observes the pre-cycle state.
//  * Neighbour operands (kRcUp/kRcDown/kRcCross) read the neighbouring RC's
//    previous-cycle result register.
//  * The LCU resolves branches combinationally: the next PC takes effect in
//    the following cycle with no delay slot (zero-overhead loops, since the
//    LCU occupies its own slot).
//  * Structural hazards (SRF single port, VWR write port, SPM array port)
//    throw StructuralHazard: kernels must be scheduled hazard-free, as on
//    the real machine.

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "energy/meter.hpp"
#include "isa/instr.hpp"
#include "isa/program.hpp"
#include "mem/regfile.hpp"
#include "mem/spm.hpp"
#include "mem/srf.hpp"
#include "mem/vwr.hpp"

namespace vwr2a::cgra {

/// Per-RC architectural state.
struct RcState {
  std::array<Word, arch::kRcRegs> rf{};  ///< R0, R1
  Word out = 0;                          ///< previous-cycle ALU result
};

/// One column of the reconfigurable array.
class Column {
 public:
  using RcOutputs = std::array<Word, arch::kRcsPerColumn>;

  Column(unsigned id, mem::Spm& spm, energy::EnergyMeter& meter);

  /// Copies (predecodes) a program into the unit program memories. Resets
  /// the PC. Configuration-load cost is charged by the top level.
  void load_program(const isa::ColumnProgram& prog);

  /// Starts execution at PC 0.
  void start();

  /// True while the kernel has not executed EXIT.
  bool running() const { return running_; }

  /// Current program counter.
  unsigned pc() const { return pc_; }

  /// Executes one cycle. `cross` points at the other column's previous-cycle
  /// RC results when both columns run synchronized; nullptr otherwise (using
  /// a kRcCross operand then throws).
  void step(const RcOutputs* cross);

  /// Previous-cycle RC results (for the cross-column network).
  const RcOutputs& rc_outputs() const { return rc_prev_; }

  // --- state access for the host interface and tests ------------------------
  mem::Srf& srf() { return srf_; }
  const mem::Srf& srf() const { return srf_; }
  mem::Vwr& vwr(VwrSel v) { return vwrs_[static_cast<unsigned>(v)]; }
  const mem::Vwr& vwr(VwrSel v) const { return vwrs_[static_cast<unsigned>(v)]; }
  const RcState& rc_state(unsigned r) const { return rcs_.at(r); }
  unsigned mxcu_index() const { return idx_; }
  SWord mxcu_aux() const { return aux_; }
  Word lcu_reg(unsigned r) const { return lcu_rf_.at(r); }
  std::uint32_t lsu_ptr(unsigned p) const { return lsu_ptr_.at(p); }
  unsigned id() const { return id_; }

  /// Cycles this column has executed since construction (excludes stalls and
  /// configuration loads, which the top level accounts).
  Cycle executed_cycles() const { return executed_; }

  /// Disassembles the VLIW line at program address `pc` (tracing/debugging).
  std::string line_asm(unsigned pc) const;

 private:
  struct DecodedLine {
    isa::LcuInstr lcu;
    isa::LsuInstr lsu;
    isa::MxcuInstr mxcu;
    std::array<isa::RcInstr, arch::kRcsPerColumn> rc;
  };

  Word read_rc_src(isa::RcSrc src, const isa::RcInstr& instr, unsigned r,
                   const RcOutputs* cross);
  unsigned lsu_address(const isa::LsuInstr& instr);

  unsigned id_;
  mem::Spm* spm_;
  energy::EnergyMeter* meter_;

  mem::Srf srf_;
  std::array<mem::Vwr, arch::kVwrsPerColumn> vwrs_;
  std::array<RcState, arch::kRcsPerColumn> rcs_{};
  RcOutputs rc_prev_{};
  std::array<Word, arch::kLcuRegs> lcu_rf_{};
  std::array<std::uint32_t, 2> lsu_ptr_{};  ///< LSU pointer registers P0, P1
  unsigned idx_ = 0;   ///< MXCU shared VWR slice index (mod kSliceWords)
  SWord aux_ = 0;      ///< MXCU auxiliary register

  std::vector<DecodedLine> prog_;
  isa::ColumnProgram raw_prog_;  ///< encoded copy, kept for disassembly
  unsigned pc_ = 0;
  bool running_ = false;
  Cycle executed_ = 0;
};

} // namespace vwr2a::cgra
