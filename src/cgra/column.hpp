#pragma once
// One VWR2A column: four RCs plus the three specialized slots (LCU, LSU,
// MXCU) advancing in lock-step behind a shared program counter (paper
// Sec 3.1/3.3). The column owns its three VWRs, its SRF and its shuffle
// unit; the SPM is shared across columns and passed in by the top level.
//
// Cycle semantics (reconstructed from the paper's Table 1 flow):
//  * All register state (RC register files, RC result registers, LCU loop
//    counters, the MXCU slice index, VWR contents, the PC) commits at end of
//    cycle; every read during a cycle observes the pre-cycle state.
//  * Neighbour operands (kRcUp/kRcDown/kRcCross) read the neighbouring RC's
//    previous-cycle result register.
//  * The LCU resolves branches combinationally: the next PC takes effect in
//    the following cycle with no delay slot (zero-overhead loops, since the
//    LCU occupies its own slot).
//  * Structural hazards (SRF single port, VWR write port, SPM array port)
//    throw StructuralHazard: kernels must be scheduled hazard-free, as on
//    the real machine.

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cgra/tracecache.hpp"
#include "common/types.hpp"
#include "energy/meter.hpp"
#include "isa/instr.hpp"
#include "isa/program.hpp"
#include "mem/regfile.hpp"
#include "mem/spm.hpp"
#include "mem/srf.hpp"
#include "mem/vwr.hpp"

namespace vwr2a::cgra {

/// Per-RC architectural state.
struct RcState {
  std::array<Word, arch::kRcRegs> rf{};  ///< R0, R1
  Word out = 0;                          ///< previous-cycle ALU result
};

/// One column of the reconfigurable array.
class Column {
 public:
  using RcOutputs = std::array<Word, arch::kRcsPerColumn>;

  /// One predecoded VLIW line.
  struct DecodedLine {
    isa::LcuInstr lcu;
    isa::LsuInstr lsu;
    isa::MxcuInstr mxcu;
    std::array<isa::RcInstr, arch::kRcsPerColumn> rc;
  };
  using DecodedProgram = std::vector<DecodedLine>;

  Column(unsigned id, mem::Spm& spm, energy::EnergyMeter& meter);

  /// Decodes a whole program (what load_program does internally). Exposed
  /// so the synchronizer can predecode each kernel once and share the
  /// result across reloads instead of re-decoding on every kernel switch.
  static DecodedProgram decode_program(const isa::ColumnProgram& prog);

  /// Copies (predecodes) a program into the unit program memories. Resets
  /// the PC. Configuration-load cost is charged by the top level.
  void load_program(const isa::ColumnProgram& prog);

  /// Shared-ownership variant: aliases an already-decoded program (and the
  /// encoded image) instead of copying either. `dec` must be the decode of
  /// `prog`.
  void load_program(std::shared_ptr<const isa::ColumnProgram> prog,
                    std::shared_ptr<const DecodedProgram> dec);

  /// Starts execution at PC 0.
  void start();

  /// True while the kernel has not executed EXIT.
  bool running() const { return running_; }

  /// Current program counter.
  unsigned pc() const { return pc_; }

  /// Executes one cycle. `cross` points at the other column's previous-cycle
  /// RC results when both columns run synchronized; nullptr otherwise (using
  /// a kRcCross operand then throws).
  void step(const RcOutputs* cross);

  /// Previous-cycle RC results (for the cross-column network).
  const RcOutputs& rc_outputs() const { return rc_prev_; }

  // --- trace-cache replay (see cgra/tracecache.hpp) --------------------------

  /// Attaches (or detaches, with nullptr) the compiled trace of the loaded
  /// program. The trace is consulted only by run_traced(); step() stays the
  /// interpreter.
  void set_trace(std::shared_ptr<const CompiledTrace> trace) {
    trace_ = std::move(trace);
  }

  /// True when a replayable compiled trace is attached.
  bool has_trace() const { return trace_ != nullptr && trace_->ok; }

  /// Replays the compiled trace from the current PC to EXIT, recording SPM
  /// row-access masks (and, when `undo` is given, a copy-on-write SPM undo
  /// log for conflict rollback). Returns the cycles executed. Bit-, cycle-
  /// and energy-identical to stepping the interpreter the same number of
  /// cycles. Throws tc::ReplayBudgetExceeded past `budget` cycles (the
  /// caller rolls back): a decoupled column polling its partner's SPM
  /// writes would otherwise spin forever.
  Cycle run_traced(tc::SpmUndo* undo, Cycle budget = ~Cycle{0});

  /// Replays exactly one superblock from the current PC (a fused self-loop
  /// replays its whole trip count). Returns the cycles executed; clears
  /// running() at EXIT. Throws tc::ReplayBudgetExceeded when a fused loop
  /// alone would exceed `budget_left`. The caller brackets a sequence of
  /// these with begin_traced()/end_traced(); the sync scheduler and the
  /// fleet batch replayer drive free stretches through this entry point.
  Cycle step_block_traced(Cycle budget_left);

  /// SPM rows this column read / wrote during the last replay, across both
  /// mask tiers (free-running and sync-scheduled accesses).
  std::uint64_t spm_read_mask() const { return spm_rmask_[0] | spm_rmask_[1]; }
  std::uint64_t spm_write_mask() const { return spm_wmask_[0] | spm_wmask_[1]; }

  /// Free-tier-only masks: rows touched while free-running (decoupled
  /// blocks and dynamically addressed accesses). The post-hoc conflict
  /// check intersects these with the partner's totals; sync-tier accesses
  /// are excluded because the schedule already ordered them.
  std::uint64_t spm_free_read_mask() const { return spm_rmask_[0]; }
  std::uint64_t spm_free_write_mask() const { return spm_wmask_[0]; }

  /// Selects which mask tier subsequent traced SPM accesses accumulate
  /// into: 0 = free-running, 1 = sync-scheduled. begin_traced() resets to 0.
  void set_mask_tier(unsigned tier) { mask_tier_ = tier & 1u; }

  /// Publishes (or clears, nullptr) the partner column's previous-cycle RC
  /// results for kCross operands. Only the per-cycle lockstep tier keeps
  /// this current; anywhere else a kCross read faults like the interpreter.
  void set_cross(const RcOutputs* cross) { cross_ = cross; }

  /// True while a sync-scheduled block is mid-flight (between step_traced()
  /// calls); block classification cannot change until it completes.
  bool mid_block() const { return tb_ != nullptr; }

  /// Lockstep traced stepping, for kernels whose columns communicate
  /// through the SPM: begin_traced() arms the replay state, step_traced()
  /// executes one compiled line (one cycle of this column) with the same
  /// per-cycle interleaving as the interpreter, end_traced() syncs the
  /// observable state back. Bit-identical to step() for traceable programs.
  void begin_traced(tc::SpmUndo* undo) {
    undo_ = undo;
    spm_rmask_[0] = spm_rmask_[1] = 0;
    spm_wmask_[0] = spm_wmask_[1] = 0;
    mask_tier_ = 0;
    cross_ = nullptr;
    tb_ = nullptr;
  }
  void step_traced();
  void end_traced() {
    for (unsigned r = 0; r < arch::kRcsPerColumn; ++r) rcs_[r].out = rc_prev_[r];
    undo_ = nullptr;
  }

  /// Full architectural state of a column, snapshotted before a decoupled
  /// replay so a detected cross-column SPM conflict can roll back and rerun
  /// on the interpreter.
  struct Checkpoint {
    std::array<mem::Vwr::Row, arch::kVwrsPerColumn> vwr;
    std::array<Word, arch::kSrfEntries> srf;
    std::array<RcState, arch::kRcsPerColumn> rcs;
    RcOutputs rc_prev;
    std::array<Word, arch::kLcuRegs> lcu_rf;
    std::array<std::uint32_t, 2> lsu_ptr;
    unsigned idx = 0;
    SWord aux = 0;
    unsigned pc = 0;
    bool running = false;
    Cycle executed = 0;
  };
  void save_state(Checkpoint& ck) const;
  void restore_state(const Checkpoint& ck);

  // --- state access for the host interface and tests ------------------------
  mem::Srf& srf() { return srf_; }
  const mem::Srf& srf() const { return srf_; }
  mem::Vwr& vwr(VwrSel v) { return vwrs_[static_cast<unsigned>(v)]; }
  const mem::Vwr& vwr(VwrSel v) const { return vwrs_[static_cast<unsigned>(v)]; }
  const RcState& rc_state(unsigned r) const { return rcs_.at(r); }
  unsigned mxcu_index() const { return idx_; }
  SWord mxcu_aux() const { return aux_; }
  Word lcu_reg(unsigned r) const { return lcu_rf_.at(r); }
  std::uint32_t lsu_ptr(unsigned p) const { return lsu_ptr_.at(p); }
  unsigned id() const { return id_; }

  /// Cycles this column has executed since construction (excludes stalls and
  /// configuration loads, which the top level accounts).
  Cycle executed_cycles() const { return executed_; }

  /// Disassembles the VLIW line at program address `pc` (tracing/debugging).
  std::string line_asm(unsigned pc) const;

 private:
  Word read_rc_src(isa::RcSrc src, const isa::RcInstr& instr, unsigned r,
                   const RcOutputs* cross);
  unsigned lsu_address(const isa::LsuInstr& instr);

  // --- trace replay internals (column.cpp) -----------------------------------
  void exec_traced_line(const tc::Line& L);
  void exec_quad_fast(const tc::Line& L);
  void exec_quad_rcs(const tc::Line& L);
  void quad_load(const tc::Src& s, Word* v) const;
  /// Batched replay of a fused DBNZ self-loop whose whole body is one
  /// elementwise quad line (VWR source, VWR/SRF/imm second operand, VWR
  /// destination, at most a register-only index step): the operand routing,
  /// row base pointers and broadcast values are resolved once for the whole
  /// trip count instead of per iteration. Per-iteration load/compute/store
  /// order is preserved exactly, so results are bit-identical even when the
  /// destination row aliases a source. Returns false when the shape does
  /// not apply (caller falls back to the per-line loop).
  bool run_fused_quad1(const tc::Line& L, std::uint64_t iters);
  void exec_dispatch(const tc::Line& L) {
    L.kind == tc::Line::Kind::kQuadFast ? exec_quad_fast(L)
                                        : exec_traced_line(L);
  }
  /// Evaluates a block terminator; returns the next pc and sets `exit`.
  unsigned eval_term(const tc::Block& b, bool& exit);
  Word trace_src(const tc::Src& s) const;
  unsigned trace_lsu_addr(const tc::LsuUop& u);
  const Word* spm_trace_read_row(unsigned row);
  void spm_trace_write_row(unsigned row, const mem::Vwr::Row& v);
  Word spm_trace_read_word(unsigned word);
  void spm_trace_write_word(unsigned word, Word v);

  unsigned id_;
  mem::Spm* spm_;
  energy::EnergyMeter* meter_;

  mem::Srf srf_;
  std::array<mem::Vwr, arch::kVwrsPerColumn> vwrs_;
  std::array<RcState, arch::kRcsPerColumn> rcs_{};
  RcOutputs rc_prev_{};
  std::array<Word, arch::kLcuRegs> lcu_rf_{};
  std::array<std::uint32_t, 2> lsu_ptr_{};  ///< LSU pointer registers P0, P1
  unsigned idx_ = 0;   ///< MXCU shared VWR slice index (mod kSliceWords)
  SWord aux_ = 0;      ///< MXCU auxiliary register

  std::shared_ptr<const DecodedProgram> prog_;
  std::shared_ptr<const isa::ColumnProgram> raw_prog_;  ///< for disassembly
  unsigned pc_ = 0;
  bool running_ = false;
  Cycle executed_ = 0;

  // --- trace replay state ----------------------------------------------------
  std::shared_ptr<const CompiledTrace> trace_;
  tc::SpmUndo* undo_ = nullptr;      ///< active only during traced replay
  /// SPM row-access masks of the current replay, split by tier ([0] = free-
  /// running, [1] = sync-scheduled) so the post-hoc conflict check can
  /// exclude accesses the sync schedule already ordered. Indexed stores
  /// keep the hot accessors branch-free.
  std::uint64_t spm_rmask_[2] = {0, 0};
  std::uint64_t spm_wmask_[2] = {0, 0};
  unsigned mask_tier_ = 0;
  const RcOutputs* cross_ = nullptr; ///< partner snapshot for kCross operands
  mem::Vwr::Row shuf_scratch_{};     ///< pending shuffle result staging
  const tc::Block* tb_ = nullptr;    ///< lockstep replay: current block
  unsigned tb_line_ = 0;             ///< lockstep replay: line within block
};

} // namespace vwr2a::cgra
