#include "cgra/trace.hpp"

#include <sstream>

#include "cgra/column.hpp"

namespace vwr2a::cgra {

void TextTracer::on_cycle(Cycle cycle, const Column& col0, const Column& col1) {
  std::ostringstream os;
  for (const Column* c : {&col0, &col1}) {
    if (!c->running()) continue;
    os.str("");
    os << "c" << cycle << " col" << c->id() << " pc=" << c->pc()
       << " idx=" << c->mxcu_index() << "  " << c->line_asm(c->pc());
    lines_.push_back(os.str());
    if (lines_.size() > depth_) lines_.pop_front();
  }
}

std::string TextTracer::str() const {
  std::string out;
  for (const auto& l : lines_) {
    out += l;
    out += '\n';
  }
  return out;
}

} // namespace vwr2a::cgra
