#pragma once
// Trace-cached kernel execution (the interpreter -> trace-cache move).
//
// Column::step() is a decode-everything switch interpreter: every simulated
// cycle re-resolves operand routing, re-checks the single-port structural
// hazards and issues a dozen EnergyMeter::add() calls -- for loop bodies
// that the LCU's zero-overhead loops (paper Sec 3.1) replay thousands of
// times per kernel completely unchanged. The trace compiler here hoists all
// of that invariant work out of the hot loop:
//
//   * each VLIW line is flattened into a micro-op line with operand sources
//     pre-resolved (register/VWR-slice indices computed, immediates
//     sign-extended, SRF addresses bound);
//   * the structural-hazard schedule (single-ported SRF, VWR write ports)
//     is validated once at compile time -- programs that would trip a
//     hazard at runtime simply fail to compile and fall back to the
//     interpreter, which raises the documented StructuralHazard;
//   * straight-line runs between LCU control-flow decisions become
//     superblocks whose energy events are pre-aggregated into one
//     EnergyMeter::add_block() delta per block replay;
//   * self-loop DBNZ blocks (the hardware-loop idiom every kernel uses)
//     additionally replay their whole trip count in one fused native loop.
//
// Identity contract: a traced run must be bit-identical to the interpreted
// run -- same outputs, same cycle counts, same energy event counts (hence
// exactly equal energy totals: equal integer counts give equal sums), and
// the same SPM row-stamp predicates (write sets are identical; only the
// interleaving of stamp values between decoupled columns may differ, which
// the residency logic is insensitive to). Anything the compiler cannot
// prove faithful -- kRcCross operands, static hazards, branch targets past
// the program end -- makes the program non-traceable and the block falls
// back to the interpreter for that kernel.
//
// Sharing: compiled traces are cached process-wide (or pool-wide, via
// isa::ImageCache::traces()) keyed by the ArchConfig variant name plus the
// program's encoded content, so every device of a DevicePool compiles each
// hot loop body once. Content keying is sound because architecture variants
// share the functional model (soc/platform.hpp): they adjust reported
// cycle/energy at snapshot time, never the executed semantics.

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "energy/meter.hpp"
#include "isa/instr.hpp"
#include "isa/program.hpp"

namespace vwr2a::cgra {

/// How Vwr2a::run_kernel executes kernels (soc::ArchConfig::exec_mode).
enum class ExecMode : std::uint8_t {
  kInterpret = 0,  ///< per-cycle switch interpreter (the reference model)
  kTraceCache,     ///< compiled micro-op block replay (bit/cycle/energy-identical)
};

namespace tc {

/// A pre-resolved RC operand source.
struct Src {
  enum class K : std::uint8_t {
    kImm = 0,  ///< constant (imm8 sign-extended, or the 0/1 constants)
    kRf,       ///< rcs_[rc].rf[entry]
    kVwr,      ///< vwrs_[vwr] word at slice base + shared index
    kSrf,      ///< SRF[idx]
    kPrev,     ///< rc_prev_[idx] (neighbour result, index pre-wrapped)
    kCross,    ///< partner column's previous-cycle RC result, read from the
               ///< per-cycle snapshot the lockstep tier publishes via
               ///< Column::set_cross (decoupled tiers have no snapshot and
               ///< fault exactly like the interpreter)
  };
  K k = K::kImm;
  std::uint8_t vwr = 0;    ///< VWR select for kVwr
  std::uint8_t rc = 0;     ///< RC index for kRf; rc_prev index for kPrev
  std::uint8_t idx = 0;    ///< rf entry for kRf; SRF entry for kSrf
  std::uint16_t base = 0;  ///< slice word base (rc * kSliceWords) for kVwr
  Word imm = 0;            ///< value for kImm
};

/// A pre-resolved RC destination.
enum class Dst : std::uint8_t { kNone = 0, kRf, kVwr, kSrf };

/// One RC micro-op.
struct RcUop {
  isa::RcOp op = isa::RcOp::kNop;
  bool unary = false;
  Src a, b;
  Dst d = Dst::kNone;
  std::uint8_t vwr = 0;    ///< VWR select for Dst::kVwr
  std::uint8_t idx = 0;    ///< rf entry for kRf; SRF entry for kSrf
  std::uint16_t base = 0;  ///< slice word base for Dst::kVwr
};

/// One LSU micro-op (address mode folded; imm pre-widened).
struct LsuUop {
  isa::LsuOp op = isa::LsuOp::kNop;
  isa::LsuAddrMode amode = isa::LsuAddrMode::kImm;
  std::uint8_t vwr = 0;       ///< VWR select / pointer select
  std::uint8_t srf_base = 0;
  std::uint8_t srf_data = 0;
  isa::ShufMode mode = isa::ShufMode::kInterleaveLo;
  std::int32_t imm = 0;
};

/// One MXCU micro-op.
struct MxcuUop {
  isa::MxcuOp op = isa::MxcuOp::kNop;
  std::uint8_t srf = 0;
  std::int32_t imm = 0;
};

/// One LCU register micro-op (control ops live in the block terminator).
struct LcuUop {
  isa::LcuOp op = isa::LcuOp::kNop;  ///< kSetI..kStSrf only
  std::uint8_t rd = 0, ra = 0, srf = 0;
  std::int32_t imm = 0;
};

/// One flattened VLIW line.
struct Line {
  /// Replay dispatch class, precomputed so the hot loop takes one branch.
  enum class Kind : std::uint8_t {
    kQuadFast = 0,  ///< quad RC op, at most a register-only MXCU op
    kGeneric,       ///< anything else (full evaluate/commit machinery)
  };
  Kind kind = Kind::kGeneric;
  std::uint8_t rc_mask = 0;  ///< bit r set when RC r is active
  bool quad = false;  ///< all 4 RCs identical shape: rc[0] is lane-relative
  bool has_lsu = false, has_mxcu = false, has_lcu = false;
  std::array<RcUop, arch::kRcsPerColumn> rc{};
  LsuUop lsu;
  MxcuUop mxcu;
  LcuUop lcu;
};

/// Block terminator kinds (the LCU control-flow decision re-evaluated each
/// replay; everything else in the block is straight-line).
enum class Term : std::uint8_t {
  kFall = 0,  ///< no control op: fall through to the next block
  kB,         ///< unconditional branch
  kCond,      ///< conditional branch (cond re-evaluated every replay)
  kDbnz,      ///< decrement-and-branch-if-nonzero (hardware loop)
  kExit,      ///< kernel end
};

/// Condition kinds for Term::kCond.
enum class Cond : std::uint8_t {
  kEq = 0, kNe, kLt, kGe,          ///< register-register
  kEqI, kNeI, kLtI, kGeI,          ///< register-immediate
  kSrfZ, kSrfNz,                   ///< SRF zero test
};

/// One superblock: a straight-line run of lines plus its terminator and the
/// pre-aggregated energy of one full replay.
struct Block {
  std::uint16_t first = 0;  ///< program address of the first line
  std::uint16_t len = 0;    ///< lines in the block (terminator included)
  Term term = Term::kFall;
  Cond cond = Cond::kEq;
  std::uint8_t ra = 0, rb = 0, rd = 0, srf = 0;
  std::int32_t imm = 0;
  std::uint16_t target = 0;     ///< branch-taken program address
  bool fuse_self_loop = false;  ///< DBNZ back to `first`, trip-count fusable
  std::vector<energy::EventDelta> energy;  ///< one full block replay
  /// Statically-addressed SPM rows one replay of this block reads / writes
  /// (LSU kImm address mode; kSpmRows = 64, one word each). Dynamically
  /// addressed accesses (SRF/pointer modes) are absent here -- they stay on
  /// the free-running tier and are validated post hoc by the runtime masks.
  std::uint64_t sread = 0;
  std::uint64_t swrite = 0;
};

} // namespace tc

/// A compiled column program: micro-op lines indexed by program address,
/// superblocks, and the pc -> block map. Immutable once built; shared
/// across every device whose configuration memory holds the same program.
class CompiledTrace {
 public:
  bool ok = false;           ///< false: program is non-traceable (see reason)
  std::string bail_reason;   ///< why compilation fell back to the interpreter
  std::vector<tc::Line> lines;
  std::vector<tc::Block> blocks;
  std::vector<std::uint16_t> block_of;  ///< pc -> index into blocks
  /// Whole-trace unions of the per-block static SPM row masks, and whether
  /// any kRcCross operand survives into the micro-ops (such a trace replays
  /// only on the per-cycle lockstep tier, which has partner snapshots).
  std::uint64_t static_reads = 0;
  std::uint64_t static_writes = 0;
  bool has_cross = false;

  unsigned length() const { return static_cast<unsigned>(lines.size()); }
};

/// Compiles one column program. Never throws on untraceable input: the
/// result carries ok = false and the interpreter stays authoritative.
std::shared_ptr<const CompiledTrace> compile_trace(const isa::ColumnProgram& prog);

/// A read-only provider of precompiled traces consulted on cache miss
/// (implemented by artifact::Store, the mmap'd binary artifact). Must be
/// safe to call concurrently. Returning nullptr means "not in the
/// artifact": the caller compiles in-process, transparently.
class TraceSource {
 public:
  virtual ~TraceSource() = default;
  virtual std::shared_ptr<const CompiledTrace> load_trace(
      const std::string& variant, const isa::ColumnProgram& prog) = 0;
};

/// Thread-safe cache of compiled traces, keyed by (variant namespace,
/// program content). Negative results (ok = false) are cached too, so a
/// non-traceable kernel costs one compile attempt fleet-wide, not one per
/// launch. Owned by isa::ImageCache so a DevicePool's devices share it.
class TraceCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;      ///< lookups served from the cache
    std::uint64_t compiled = 0;  ///< programs compiled to replayable traces
    std::uint64_t bailed = 0;    ///< programs that stayed on the interpreter
    std::uint64_t hydrated = 0;  ///< misses served by the artifact source
  };

  /// Returns the compiled trace for `prog` under the `variant` namespace
  /// (soc::ArchConfig::name()), on first use loading it from the attached
  /// artifact source (when it has the entry) or compiling it in-process.
  std::shared_ptr<const CompiledTrace> get_or_compile(
      const std::string& variant, const isa::ColumnProgram& prog) {
    const std::uint64_t h = hash_program(variant, prog);
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, end] = entries_.equal_range(h);
    for (; it != end; ++it) {
      if (it->second.variant == variant && it->second.prog == prog) {
        ++hits_;
        return it->second.trace;
      }
    }
    std::shared_ptr<const CompiledTrace> trace;
    if (source_ != nullptr) trace = source_->load_trace(variant, prog);
    if (trace != nullptr) {
      ++hydrated_;
    } else {
      trace = compile_trace(prog);
      trace->ok ? ++compiled_ : ++bailed_;
    }
    entries_.emplace(h, Entry{variant, prog, trace});
    return trace;
  }

  /// Attaches (or detaches, nullptr) the precompiled-trace source. Attach
  /// before the cache goes concurrent (see ImageCache::set_source).
  void set_source(TraceSource* source) {
    std::lock_guard<std::mutex> lock(mu_);
    source_ = source;
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return Stats{hits_, compiled_, bailed_, hydrated_};
  }

  /// Visits every cached trace (hash order; the artifact builder re-sorts
  /// by content). Runs under the cache lock with the cache quiescent by
  /// contract -- the builder's enumeration hook, not a runtime path.
  void for_each_trace(
      const std::function<void(const std::string&, const isa::ColumnProgram&,
                               const std::shared_ptr<const CompiledTrace>&)>&
          fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [h, e] : entries_) fn(e.variant, e.prog, e.trace);
  }

 private:
  struct Entry {
    std::string variant;
    isa::ColumnProgram prog;  ///< full copy: collision-proof equality check
    std::shared_ptr<const CompiledTrace> trace;
  };

  static std::uint64_t hash_program(const std::string& variant,
                                    const isa::ColumnProgram& prog) {
    std::uint64_t h = 1469598103934665603ull;  // FNV-1a
    auto mix = [&h](std::uint64_t v) {
      h = (h ^ v) * 1099511628211ull;
    };
    for (char c : variant) mix(static_cast<unsigned char>(c));
    mix(prog.length());
    for (unsigned s = 0; s < arch::kSlotsPerColumn; ++s) {
      for (std::uint32_t w : prog.stream(static_cast<Slot>(s))) mix(w);
    }
    return h;
  }

  mutable std::mutex mu_;
  std::multimap<std::uint64_t, Entry> entries_;
  TraceSource* source_ = nullptr;
  std::uint64_t hits_ = 0;
  std::uint64_t compiled_ = 0;
  std::uint64_t bailed_ = 0;
  std::uint64_t hydrated_ = 0;
};

namespace tc {

/// Thrown by Column::run_traced when a decoupled replay exceeds its cycle
/// budget. A column polling SPM state its partner has not produced yet
/// (cross-column dataflow the conflict masks would only catch after the
/// fact) spins forever when free-run alone; the budget turns that into a
/// rollback + lockstep rerun, which interleaves the columns like the
/// interpreter and therefore terminates exactly when it does. The thrower
/// abandons mid-kernel state -- the caller always rolls back.
struct ReplayBudgetExceeded {};

/// Decoupled-replay cycle budget per column: ~40x the largest catalog
/// kernel (~10^5 cycles), so only pathological cross-column polls or
/// runaway loops ever hit it -- and when they do, the wasted replay stays
/// in the tens of milliseconds before lockstep takes over.
inline constexpr Cycle kReplayBudget = 1ull << 22;

/// Copy-on-write SPM undo log for one traced kernel launch: decoupled
/// two-column replay saves each row (data + stamp) before its first write,
/// so a detected cross-column conflict can roll the SPM back and rerun the
/// kernel on the interpreter. kSpmRows = 64, so access masks are one word.
struct SpmUndo {
  std::uint64_t saved_mask = 0;
  std::uint64_t write_gen = 0;
  std::array<std::array<Word, arch::kVwrWords>, arch::kSpmRows> rows;
  std::array<std::uint64_t, arch::kSpmRows> versions{};

  void reset(std::uint64_t gen) {
    saved_mask = 0;
    write_gen = gen;
  }
};

/// The compiled sync schedule of one two-column kernel: which replay tier
/// the launch takes, and -- on the scheduled tier -- which superblocks of
/// each column are sync points. A block is a sync point when its static SPM
/// rows intersect the partner trace's static unions (write/write,
/// write/read or read/write); such blocks replay one line per local cycle
/// under the behind-column-first schedule, which reproduces the
/// interpreter's access order exactly. All other blocks free-run (fused
/// loops included) and their runtime access masks are validated post hoc.
struct SyncPlan {
  enum class Mode : std::uint8_t {
    kDecoupled = 0,  ///< no static overlap: whole-kernel free-run per column
    kScheduled,      ///< static overlap: free stretches + per-line sync blocks
    kLockstep,       ///< kRcCross present: per-cycle alternation, cross snapshots
  };
  Mode mode = Mode::kDecoupled;
  std::array<std::vector<std::uint8_t>, arch::kNumColumns> sync;  ///< [col][block]
  std::array<std::uint32_t, arch::kNumColumns> sync_blocks{};     ///< SYNC count
};

/// Builds the sync schedule for a kernel occupying the given column traces
/// (nullptr = column idle). Null/non-ok traces yield the decoupled plan:
/// the caller gates on has_trace() before replaying at all.
SyncPlan make_sync_plan(const CompiledTrace* t0, const CompiledTrace* t1);

} // namespace tc

class Vwr2a;

namespace tc {

/// Fleet-batched replay: one compiled trace driven across N devices' SPM /
/// VWR state in a single host loop (the Ara-style "one decode, many lanes"
/// move lifted to the fleet dimension). Lanes advance block-lockstep --
/// each superblock is dispatched once and executed across every aligned
/// device back to back, with per-device trip counts in fused loops -- and
/// any lane that diverges on a data-dependent branch, faults, or fails the
/// post-hoc conflict check detaches and finishes through the standard
/// scalar rollback ladder. Every lane's result is bit/cycle/energy-
/// identical to devs[i]->run_kernel(kids[i]) run alone, so batching is
/// invisible to everything but host wall-clock.
struct BatchReplayer {
  /// Batch-eligibility probe, side-effect free. True when `kernel_id` on
  /// `dev` is warm (memoized compiled traces from a previous launch), fully
  /// decoupled (SyncPlan::kDecoupled, no kRcCross, no runtime lockstep
  /// hint) and trace-mode with no tracer attached. `key` receives the
  /// per-column trace identities: two devices may share a batch iff their
  /// keys are equal (the content-keyed TraceCache makes identical programs
  /// pointer-identical fleet-wide).
  static bool identity(const Vwr2a& dev, unsigned kernel_id,
                       std::array<const void*, arch::kNumColumns>& key);

  /// Runs kernel kids[i] on devs[i] for all n lanes. Requires every lane to
  /// have passed identity() with equal keys; falls back to scalar
  /// completion per lane otherwise (correct, just not batched).
  static void run(Vwr2a* const* devs, const unsigned* kids, std::size_t n);
};

} // namespace tc

} // namespace vwr2a::cgra
