#pragma once
// The shuffle unit (paper Sec 3.3.1): takes the contents of VWRs A and B,
// applies one of four hard-wired data reorderings to their 256-word
// concatenation, and writes a selected 128-word half of the conceptual
// result to VWR C. It exists because moving data across RC slices through
// the connection matrix is "highly inefficient in terms of performance and
// energy".

#include <array>

#include "common/types.hpp"
#include "isa/opcodes.hpp"

namespace vwr2a::cgra {

using VwrRow = std::array<Word, arch::kVwrWords>;

/// Evaluates one shuffle operation; pure function of the two input rows.
///
/// With c = A:B (c[0..127] = A, c[128..255] = B) and N = 128:
///  * kInterleave{Lo,Hi}: out256[2i] = A[i], out256[2i+1] = B[i];
///    Lo returns out256[0..127], Hi returns out256[128..255].
///  * kEvenPrune: evens of A followed by evens of B (one 128-word row).
///  * kOddPrune: odds of A followed by odds of B.
///  * kBitRev{Lo,Hi}: out256[i] = c[bit_reverse_8(i)]; Lo/Hi halves.
///  * kCircShift{Lo,Hi}: out256[i] = c[(i + 32) mod 256] -- "the upper 32
///    words are moved to the lower 32 words"; Lo/Hi halves.
VwrRow shuffle_eval(isa::ShufMode mode, const VwrRow& a, const VwrRow& b);

/// The permutation/selection as an index map into the concatenation A:B:
/// result[i] = concat[shuffle_source_index(mode, i)]. Used by property tests.
unsigned shuffle_source_index(isa::ShufMode mode, unsigned i);

} // namespace vwr2a::cgra
