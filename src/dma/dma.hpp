#pragma once
// The VWR2A DMA engine (paper Sec 3.2/4.2): the block's master port, moving
// data between the shared SPM (system-side word interface) and the system
// memory over the AHB bus. Descriptor-based with signed strides on both
// sides; strided descriptors implement the data-layout staging ("careful
// data placement", Sec 3.3.2) and the bit-reversal copy-out used by the FFT
// kernels.
//
// Timing is transaction-level: a transfer consumes
//   setup + ceil(count / burst) * burst_setup + count * beat
// cycles; data moves functionally at submission. The host driver model is
// synchronous (program DMA, wait for the interrupt), matching how the
// paper's CPU uses the accelerators.

#include <cstdint>
#include <vector>

#include "bus/sys_port.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "energy/meter.hpp"
#include "mem/spm.hpp"

namespace vwr2a::dma {

/// Transfer direction.
enum class Dir : std::uint8_t {
  kSysToSpm,  ///< system memory -> SPM (input staging)
  kSpmToSys,  ///< SPM -> system memory (result copy-back)
};

/// One DMA descriptor. Addresses are word-granular; strides are in words and
/// may be negative (reversed copies) or zero (broadcast/fill patterns).
struct Descriptor {
  Dir dir = Dir::kSysToSpm;
  std::uint32_t sys_word = 0;
  std::uint32_t spm_word = 0;
  std::uint32_t count = 0;
  std::int32_t sys_stride = 1;
  std::int32_t spm_stride = 1;
};

/// Fixed descriptor-programming latency (slave-port register writes).
inline constexpr unsigned kDmaSetupCycles = 8;

/// The DMA engine.
class Dma {
 public:
  Dma(mem::Spm& spm, bus::SysPort& sys, energy::EnergyMeter& meter)
      : spm_(&spm), sys_(&sys), meter_(&meter) {}

  /// Executes one descriptor; returns the cycles it occupies the engine.
  Cycle transfer(const Descriptor& d);

  /// Cumulative beats moved (tests / reports).
  std::uint64_t total_beats() const { return beats_; }

  /// Cumulative cycles spent transferring.
  Cycle total_cycles() const { return cycles_; }

 private:
  mem::Spm* spm_;
  bus::SysPort* sys_;
  energy::EnergyMeter* meter_;
  std::uint64_t beats_ = 0;
  Cycle cycles_ = 0;
  std::vector<Word> scratch_;  ///< staging for the stride-1 bulk fast path
};

} // namespace vwr2a::dma
