#include "dma/dma.hpp"

namespace vwr2a::dma {

Cycle Dma::transfer(const Descriptor& d) {
  if (d.count == 0) throw HostError("DMA: empty descriptor");
  meter_->add(energy::Event::kDmaSetup);

  // Bulk fast path: move the whole descriptor without per-beat virtual
  // calls. Event counts, stamp values and data are identical to the
  // per-beat loop below (bulk meter adds; stamps advance per written word
  // in beat order); any descriptor that could fault (range, power-gated
  // bank) takes the loop instead, so faults surface at the exact beat they
  // would have. Stride 1 moves via memcpy-style blocks, other strides via
  // gather/scatter loops.
  const bool unit = d.sys_stride == 1 && d.spm_stride == 1;
  const bool sys_ok = unit ? sys_->block_ok(d.sys_word, d.count)
                           : sys_->strided_ok(d.sys_word, d.sys_stride, d.count);
  if (sys_ok && spm_->words_system_ok(d.spm_word, d.spm_stride, d.count)) {
    if (scratch_.size() < d.count) scratch_.resize(d.count);
    if (d.dir == Dir::kSysToSpm) {
      if (unit) {
        sys_->read_block(d.sys_word, scratch_.data(), d.count);
        spm_->write_words_system(d.spm_word, scratch_.data(), d.count);
      } else {
        sys_->read_strided(d.sys_word, d.sys_stride, d.count, scratch_.data());
        spm_->write_words_system_strided(d.spm_word, d.spm_stride, d.count,
                                         scratch_.data());
      }
    } else {
      if (unit) {
        spm_->read_words_system(d.spm_word, scratch_.data(), d.count);
        sys_->write_block(d.sys_word, scratch_.data(), d.count);
      } else {
        spm_->read_words_system_strided(d.spm_word, d.spm_stride, d.count,
                                        scratch_.data());
        sys_->write_strided(d.sys_word, d.sys_stride, d.count, scratch_.data());
      }
    }
    meter_->add(energy::Event::kDmaBeat, d.count);
    beats_ += d.count;
    const unsigned bursts =
        (d.count + sys_->burst_beats() - 1) / sys_->burst_beats();
    const Cycle cycles =
        kDmaSetupCycles +
        static_cast<Cycle>(bursts) * sys_->burst_setup_cycles() +
        static_cast<Cycle>(d.count) * sys_->beat_cycles();
    cycles_ += cycles;
    return cycles;
  }

  std::int64_t sys = d.sys_word;
  std::int64_t spm = d.spm_word;
  for (std::uint32_t i = 0; i < d.count; ++i) {
    if (sys < 0) throw RangeError("DMA: negative system address");
    if (spm < 0) throw RangeError("DMA: negative SPM address");
    const auto sys_addr = static_cast<std::uint32_t>(sys);
    const auto spm_addr = static_cast<std::uint32_t>(spm);
    if (d.dir == Dir::kSysToSpm) {
      spm_->write_word_system(spm_addr, sys_->read(sys_addr));
    } else {
      sys_->write(sys_addr, spm_->read_word_system(spm_addr));
    }
    meter_->add(energy::Event::kDmaBeat);
    sys += d.sys_stride;
    spm += d.spm_stride;
  }
  beats_ += d.count;

  const unsigned bursts =
      (d.count + sys_->burst_beats() - 1) / sys_->burst_beats();
  const Cycle cycles = kDmaSetupCycles +
                       static_cast<Cycle>(bursts) * sys_->burst_setup_cycles() +
                       static_cast<Cycle>(d.count) * sys_->beat_cycles();
  cycles_ += cycles;
  return cycles;
}

} // namespace vwr2a::dma
