#include "dma/dma.hpp"

namespace vwr2a::dma {

Cycle Dma::transfer(const Descriptor& d) {
  if (d.count == 0) throw HostError("DMA: empty descriptor");
  meter_->add(energy::Event::kDmaSetup);

  std::int64_t sys = d.sys_word;
  std::int64_t spm = d.spm_word;
  for (std::uint32_t i = 0; i < d.count; ++i) {
    if (sys < 0) throw RangeError("DMA: negative system address");
    if (spm < 0) throw RangeError("DMA: negative SPM address");
    const auto sys_addr = static_cast<std::uint32_t>(sys);
    const auto spm_addr = static_cast<std::uint32_t>(spm);
    if (d.dir == Dir::kSysToSpm) {
      spm_->write_word_system(spm_addr, sys_->read(sys_addr));
    } else {
      sys_->write(sys_addr, spm_->read_word_system(spm_addr));
    }
    meter_->add(energy::Event::kDmaBeat);
    sys += d.sys_stride;
    spm += d.spm_stride;
  }
  beats_ += d.count;

  const unsigned bursts =
      (d.count + sys_->burst_beats() - 1) / sys_->burst_beats();
  const Cycle cycles = kDmaSetupCycles +
                       static_cast<Cycle>(bursts) * sys_->burst_setup_cycles() +
                       static_cast<Cycle>(d.count) * sys_->beat_cycles();
  cycles_ += cycles;
  return cycles;
}

} // namespace vwr2a::dma
