#pragma once
// Cortex-M4-like CPU timing and energy model.
//
// The paper's baseline is the SoC's ARM Cortex-M4F running CMSIS-DSP q15
// kernels (Sec 4.4, 5.1). An ARM ISS is out of scope offline, so the model
// is an instruction-class cost model: kernels are implemented functionally
// (bit-exact q15 arithmetic) and instrumented with the instruction mix a
// compiled M4 binary would execute; the mix is priced with the documented
// M4 cycle costs. Energy is charged per executed cycle (core) plus per
// memory access (system SRAM over the AHB bus).

#include <cstdint>

#include "common/types.hpp"
#include "energy/meter.hpp"

namespace vwr2a::cpu {

/// Instruction classes priced by the model.
enum class Op : std::uint8_t {
  kAlu = 0,        ///< 1 cycle: add/sub/logic/shift/compare/move
  kMul,            ///< 1 cycle: 32x32 multiply (M4 single-cycle multiplier)
  kMac,            ///< 1 cycle: multiply-accumulate (SMLABB/SMLAD...)
  kLoad,           ///< 2 cycles: LDR/LDRH from SRAM (AHB, no cache)
  kStore,          ///< 1 cycle: STR (write buffer)
  kBranch,         ///< 3 cycles: taken branch (pipeline refill)
  kBranchNt,       ///< 1 cycle: not-taken branch
  kCall,           ///< 4 cycles: call + return overhead, amortized
  kDiv,            ///< 7 cycles: SDIV (2..12, mid estimate)
  kCount,
};

/// Cycle cost of one op of each class.
constexpr unsigned op_cycles(Op op) {
  switch (op) {
    case Op::kAlu: return 1;
    case Op::kMul: return 1;
    case Op::kMac: return 1;
    case Op::kLoad: return 2;
    case Op::kStore: return 1;
    case Op::kBranch: return 3;
    case Op::kBranchNt: return 1;
    case Op::kCall: return 4;
    case Op::kDiv: return 7;
    default: return 1;
  }
}

/// Accumulates the executed instruction mix, converts it to cycles, and
/// charges core/memory energy onto an EnergyMeter as it goes.
class M4Meter {
 public:
  explicit M4Meter(energy::EnergyMeter& meter) : meter_(&meter) {}

  /// Records n ops of one class.
  void op(Op o, std::uint64_t n = 1) {
    const std::uint64_t cyc = static_cast<std::uint64_t>(op_cycles(o)) * n;
    cycles_ += cyc;
    meter_->add(energy::Event::kCpuCycle, cyc);
    if (o == Op::kLoad) meter_->add(energy::Event::kSramRead, n);
    if (o == Op::kStore) meter_->add(energy::Event::kSramWrite, n);
  }

  /// Adds raw busy cycles (e.g., polling a status register).
  void idle_cycles(std::uint64_t n) {
    cycles_ += n;
    meter_->add(energy::Event::kCpuCycle, n);
  }

  /// Total executed cycles.
  Cycle cycles() const { return cycles_; }

  energy::EnergyMeter& energy() { return *meter_; }

 private:
  energy::EnergyMeter* meter_;
  Cycle cycles_ = 0;
};

} // namespace vwr2a::cpu
