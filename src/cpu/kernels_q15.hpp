#pragma once
// CMSIS-DSP-style q15 kernels for the CPU baseline (paper Sec 4.4/5.1: the
// processor uses the CMSIS-DSP library with 16-bit data in q15 format).
// Functionally bit-exact q15 arithmetic; every routine takes an M4Meter and
// records the instruction mix an optimized-but-scalar M4 build executes.

#include <cstdint>
#include <vector>

#include "common/fixed_point.hpp"
#include "cpu/m4.hpp"
#include "dsp/reference.hpp"

namespace vwr2a::cpu {

using fx::q15_t;

/// A q15 complex sample packed as {re, im} (CMSIS interleaved layout).
struct CplxQ15 {
  q15_t re = 0;
  q15_t im = 0;
  bool operator==(const CplxQ15&) const = default;
};

/// Direct-form FIR (arm_fir_q15-like, scalar form): y[n] = sum h[t] x[n-t]
/// with a 64-bit accumulator truncated to q15 with saturation.
std::vector<q15_t> fir_q15(M4Meter& m, const std::vector<q15_t>& x,
                           const std::vector<q15_t>& h);

/// In-place radix-2 complex FFT with per-stage >>1 scaling (CMSIS
/// arm_cfft_q15-style). Returns the scaled spectrum in natural order; the
/// total scaling is 1/N.
std::vector<CplxQ15> cfft_q15(M4Meter& m, const std::vector<CplxQ15>& x);

/// Real FFT via the N/2 complex trick + split (arm_rfft_q15-style). Input N
/// reals, output N/2+1 bins, total scaling 1/N.
std::vector<CplxQ15> rfft_q15(M4Meter& m, const std::vector<q15_t>& x);

/// Mean with truncating division.
q15_t mean_q15(M4Meter& m, const std::vector<q15_t>& x);

/// RMS: sqrt of the mean square (integer Newton iterations, as CMSIS
/// arm_rms_q15 does via arm_sqrt_q15).
q15_t rms_q15(M4Meter& m, const std::vector<q15_t>& x);

/// Median by in-place shell sort of a scratch copy (a typical embedded
/// implementation; heap allocation is excluded from the cost model).
q15_t median_q15(M4Meter& m, const std::vector<q15_t>& x);

/// Threshold-hysteresis delineation, identical semantics to
/// dsp::delineate() but in q15 and with per-sample branch costs.
std::vector<dsp::Extremum> delineate_q15(M4Meter& m, const std::vector<q15_t>& x,
                                         q15_t threshold);

/// Linear SVM decision: sign(w . f + b) with a q15 dot product.
std::int32_t svm_q15(M4Meter& m, const std::vector<q15_t>& features,
                     const std::vector<q15_t>& weights, q15_t bias);

/// Sum of |X_k|^2 over a bin range of an rfft_q15 spectrum (band power for
/// the frequency features).
std::int64_t band_power_q15(M4Meter& m, const std::vector<CplxQ15>& spectrum,
                            unsigned lo_bin, unsigned hi_bin);

} // namespace vwr2a::cpu
