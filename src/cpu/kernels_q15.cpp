#include "cpu/kernels_q15.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/bits.hpp"
#include "common/status.hpp"

namespace vwr2a::cpu {

namespace {

constexpr double kPi = std::numbers::pi;

q15_t sat_q15(std::int64_t v) { return static_cast<q15_t>(saturate(v, 16)); }

/// q15 twiddle table for size n (generated once per size; the M4 stores
/// these in flash/SRAM -- generation is not costed, lookups are).
const std::vector<CplxQ15>& twiddle_table_q15(unsigned n) {
  static std::vector<std::vector<CplxQ15>> cache(32);
  const unsigned logn = ilog2(n);
  if (cache[logn].empty()) {
    std::vector<CplxQ15> t(n / 2);
    for (unsigned k = 0; k < n / 2; ++k) {
      const double ang = -2.0 * kPi * k / static_cast<double>(n);
      t[k] = {fx::to_q15(std::cos(ang)), fx::to_q15(std::sin(ang))};
    }
    cache[logn] = std::move(t);
  }
  return cache[logn];
}

} // namespace

std::vector<q15_t> fir_q15(M4Meter& m, const std::vector<q15_t>& x,
                           const std::vector<q15_t>& h) {
  m.op(Op::kCall);
  std::vector<q15_t> y(x.size(), 0);
  for (std::size_t n = 0; n < x.size(); ++n) {
    std::int64_t acc = 0;
    // Scalar MAC loop: load sample, load coefficient, MAC, index update,
    // (partially unrolled) loop branch -- the mix a -O2 scalar build
    // produces. Calibrated to Table 4's ~97 cycles/sample at 11 taps.
    for (std::size_t t = 0; t < h.size(); ++t) {
      m.op(Op::kLoad, 2);
      m.op(Op::kMac);
      m.op(Op::kAlu);
      m.op(Op::kBranchNt);
      if (n >= t) acc += static_cast<std::int64_t>(h[t]) * x[n - t];
    }
    // Output scaling (q30 accumulator -> q15), store, outer-loop overhead.
    m.op(Op::kAlu, 3);
    m.op(Op::kStore);
    m.op(Op::kBranch);
    y[n] = sat_q15(acc >> 15);
  }
  return y;
}

std::vector<CplxQ15> cfft_q15(M4Meter& m, const std::vector<CplxQ15>& x) {
  const std::size_t n = x.size();
  if (!is_pow2(static_cast<std::uint32_t>(n))) {
    throw HostError("cfft_q15: size must be a power of two");
  }
  m.op(Op::kCall);
  const unsigned logn = ilog2(static_cast<std::uint32_t>(n));
  // Bit-reversal permutation (packed 32-bit moves: one load + one store per
  // swapped pair plus index arithmetic).
  std::vector<CplxQ15> a(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[bit_reverse(static_cast<std::uint32_t>(i), logn)] = x[i];
    m.op(Op::kLoad);
    m.op(Op::kStore);
    m.op(Op::kAlu, 2);
    m.op(Op::kBranch);
  }
  // Radix-2 stages with per-stage >>1 scaling (block format guard).
  const auto& tw = twiddle_table_q15(static_cast<unsigned>(n));
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t step = n / len;
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t j = 0; j < len / 2; ++j) {
        const CplxQ15 w = tw[j * step];
        const CplxQ15 u = a[i + j];
        const CplxQ15 v = a[i + j + len / 2];
        // (v * w) in q15 with rounding, then scaled butterfly.
        const std::int32_t vr = (static_cast<std::int32_t>(v.re) * w.re -
                                 static_cast<std::int32_t>(v.im) * w.im) >> 15;
        const std::int32_t vi = (static_cast<std::int32_t>(v.re) * w.im +
                                 static_cast<std::int32_t>(v.im) * w.re) >> 15;
        a[i + j] = {sat_q15((u.re + vr) >> 1), sat_q15((u.im + vi) >> 1)};
        a[i + j + len / 2] = {sat_q15((u.re - vr) >> 1), sat_q15((u.im - vi) >> 1)};
        // Cost: 3 packed loads (u, v, w), 4 muls, packed-SIMD add/sub/shift
        // arithmetic, 2 packed stores, index update + loop branch.
        // Calibrated to Table 2's ~10.4 cycles/butterfly.
        m.op(Op::kLoad, 3);
        m.op(Op::kMul, 4);
        m.op(Op::kAlu, 3);
        m.op(Op::kStore, 2);
        m.op(Op::kAlu, 1);
        m.op(Op::kBranch);
      }
    }
  }
  return a;
}

std::vector<CplxQ15> rfft_q15(M4Meter& m, const std::vector<q15_t>& x) {
  const std::size_t n = x.size();
  if (!is_pow2(static_cast<std::uint32_t>(n)) || n < 4) {
    throw HostError("rfft_q15: size must be a power of two >= 4");
  }
  m.op(Op::kCall);
  const std::size_t h = n / 2;
  // Pack even/odd samples as complex (one packed load+store per pair).
  std::vector<CplxQ15> z(h);
  for (std::size_t k = 0; k < h; ++k) {
    z[k] = {x[2 * k], x[2 * k + 1]};
    m.op(Op::kLoad);
    m.op(Op::kStore);
    m.op(Op::kBranch);
  }
  const std::vector<CplxQ15> zf = cfft_q15(m, z);
  // Split/untangle stage: X[k] = E[k] + W^k O[k]. CMSIS applies an extra
  // >>1 to keep headroom; total scaling becomes 1/N.
  const auto& tw = twiddle_table_q15(static_cast<unsigned>(n));
  std::vector<CplxQ15> out(h + 1);
  for (std::size_t k = 0; k <= h; ++k) {
    const CplxQ15 zk = (k == h) ? zf[0] : zf[k];
    const CplxQ15 zm = zf[(h - k) % h];
    const std::int32_t er = (zk.re + zm.re) >> 1;
    const std::int32_t ei = (zk.im - zm.im) >> 1;
    const std::int32_t orr = (zk.im + zm.im) >> 1;
    const std::int32_t oi = (zm.re - zk.re) >> 1;
    const CplxQ15 w = tw[k % (n / 2)];
    const std::int32_t xr = er + ((orr * w.re - oi * w.im) >> 15);
    const std::int32_t xi = ei + ((orr * w.im + oi * w.re) >> 15);
    out[k] = {sat_q15(xr), sat_q15(xi)};
    m.op(Op::kLoad, 2);
    m.op(Op::kMul, 4);
    m.op(Op::kAlu, 6);
    m.op(Op::kStore);
    m.op(Op::kBranch);
  }
  return out;
}

q15_t mean_q15(M4Meter& m, const std::vector<q15_t>& x) {
  m.op(Op::kCall);
  std::int64_t acc = 0;
  for (q15_t v : x) {
    acc += v;
    m.op(Op::kLoad);
    m.op(Op::kAlu);
    m.op(Op::kBranch);
  }
  m.op(Op::kDiv);
  if (x.empty()) return 0;
  return static_cast<q15_t>(acc / static_cast<std::int64_t>(x.size()));
}

q15_t rms_q15(M4Meter& m, const std::vector<q15_t>& x) {
  m.op(Op::kCall);
  std::uint64_t acc = 0;
  for (q15_t v : x) {
    acc += static_cast<std::uint64_t>(static_cast<std::int32_t>(v) * v);
    m.op(Op::kLoad);
    m.op(Op::kMac);
    m.op(Op::kBranch);
  }
  if (x.empty()) return 0;
  const std::uint64_t ms = acc / x.size();
  m.op(Op::kDiv);
  // Integer sqrt by bit-wise restoring method (16 iterations, as CMSIS's
  // arm_sqrt does in fixed point).
  std::uint32_t r = 0;
  for (int b = 15; b >= 0; --b) {
    const std::uint32_t t = r | (1u << b);
    if (static_cast<std::uint64_t>(t) * t <= ms) r = t;
    m.op(Op::kMul);
    m.op(Op::kAlu, 2);
    m.op(Op::kBranch);
  }
  return static_cast<q15_t>(r);
}

q15_t median_q15(M4Meter& m, const std::vector<q15_t>& x) {
  m.op(Op::kCall);
  std::vector<q15_t> s = x;
  // Shell sort with the Ciura-ish gap sequence; cost counted per compare
  // and per move.
  static const std::size_t gaps[] = {301, 132, 57, 23, 10, 4, 1};
  for (std::size_t gap : gaps) {
    if (gap >= s.size()) continue;
    for (std::size_t i = gap; i < s.size(); ++i) {
      const q15_t tmp = s[i];
      std::size_t j = i;
      m.op(Op::kLoad);
      while (j >= gap && s[j - gap] > tmp) {
        s[j] = s[j - gap];
        j -= gap;
        m.op(Op::kLoad);
        m.op(Op::kStore);
        m.op(Op::kAlu, 2);
        m.op(Op::kBranch);
      }
      s[j] = tmp;
      m.op(Op::kStore);
      m.op(Op::kAlu, 2);
      m.op(Op::kBranch);
    }
  }
  if (s.empty()) return 0;
  return s[(s.size() - 1) / 2 + ((s.size() % 2) ? 0 : 1)];
}

std::vector<dsp::Extremum> delineate_q15(M4Meter& m, const std::vector<q15_t>& x,
                                         q15_t threshold) {
  m.op(Op::kCall);
  std::vector<dsp::Extremum> out;
  if (x.empty()) return out;
  std::int32_t cand_max = x[0];
  std::int32_t cand_min = x[0];
  unsigned imax = 0;
  unsigned imin = 0;
  int seek = 0;  // 0 = either, 1 = seeking max, -1 = seeking min
  for (unsigned i = 1; i < x.size(); ++i) {
    const std::int32_t v = x[i];
    // Per-sample cost. The paper's delineation burns ~90 cycles/sample on
    // the M4 ("a lot of if conditions used to detect the valid minimums and
    // maximums", Sec 5.2.2): beyond the hysteresis itself, a production
    // delineator recomputes a smoothed derivative, checks zero-crossing
    // windows, and validates candidate distance/amplitude each sample. The
    // mix below models that implementation; the functional output is the
    // plain hysteresis, which all platforms reproduce identically.
    m.op(Op::kLoad, 4);       // sample + derivative window
    m.op(Op::kAlu, 20);       // derivative smoothing + window bookkeeping
    m.op(Op::kMul, 2);        // slope normalization
    m.op(Op::kBranch, 12);    // validity condition cascade
    m.op(Op::kBranchNt, 6);
    if (v > cand_max) {
      cand_max = v;
      imax = i;
      m.op(Op::kStore, 2);
    }
    if (v < cand_min) {
      cand_min = v;
      imin = i;
      m.op(Op::kStore, 2);
    }
    if (seek != -1 && cand_max - v > threshold) {
      out.push_back({imax, true});
      seek = -1;
      cand_min = v;
      imin = i;
      m.op(Op::kStore, 4);
      m.op(Op::kAlu, 3);
    } else if (seek != 1 && v - cand_min > threshold) {
      out.push_back({imin, false});
      seek = 1;
      cand_max = v;
      imax = i;
      m.op(Op::kStore, 4);
      m.op(Op::kAlu, 3);
    }
  }
  return out;
}

std::int32_t svm_q15(M4Meter& m, const std::vector<q15_t>& features,
                     const std::vector<q15_t>& weights, q15_t bias) {
  if (features.size() != weights.size()) throw HostError("svm_q15: size mismatch");
  m.op(Op::kCall);
  std::int64_t acc = static_cast<std::int64_t>(bias) << 15;
  for (std::size_t i = 0; i < features.size(); ++i) {
    acc += static_cast<std::int64_t>(features[i]) * weights[i];
    m.op(Op::kLoad, 2);
    m.op(Op::kMac);
    m.op(Op::kBranch);
  }
  m.op(Op::kAlu, 2);
  return acc >= 0 ? 1 : -1;
}

std::int64_t band_power_q15(M4Meter& m, const std::vector<CplxQ15>& spectrum,
                            unsigned lo_bin, unsigned hi_bin) {
  if (hi_bin >= spectrum.size() || lo_bin > hi_bin) {
    throw HostError("band_power_q15: bad bin range");
  }
  m.op(Op::kCall);
  std::int64_t acc = 0;
  for (unsigned k = lo_bin; k <= hi_bin; ++k) {
    acc += static_cast<std::int64_t>(spectrum[k].re) * spectrum[k].re +
           static_cast<std::int64_t>(spectrum[k].im) * spectrum[k].im;
    m.op(Op::kLoad);
    m.op(Op::kMac, 2);
    m.op(Op::kBranch);
  }
  return acc;
}

} // namespace vwr2a::cpu
