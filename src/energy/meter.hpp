#pragma once
// Event counting and energy/power reporting.

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "common/types.hpp"
#include "energy/events.hpp"

namespace vwr2a::energy {

/// One entry of a pre-aggregated event block: `n` occurrences of `e`.
/// The trace-cache compiler folds every event a micro-op block raises into
/// a short list of these, so replaying the block costs one add_block()
/// instead of one add() per event occurrence.
struct EventDelta {
  Event e = Event::kCount;
  std::uint64_t n = 0;
};

/// Counts architectural events and converts them to energy. One meter per
/// engine (VWR2A, FFT accelerator, CPU, system) keeps the Table-3 style
/// breakdowns separable; meters can be merged for SoC-level totals.
class EnergyMeter {
 public:
  /// Records n occurrences of event e.
  void add(Event e, std::uint64_t n = 1) {
    counts_[static_cast<unsigned>(e)] += n;
  }

  /// Records a pre-aggregated block of events `times` over: exactly
  /// equivalent to calling add(d.e, d.n * times) for every delta, which is
  /// what keeps trace-cache replay energy bit-identical to the interpreter
  /// (counts are integers; equal counts give equal energy sums).
  void add_block(std::span<const EventDelta> deltas, std::uint64_t times = 1) {
    for (const EventDelta& d : deltas) {
      counts_[static_cast<unsigned>(d.e)] += d.n * times;
    }
  }

  /// Occurrences recorded for e.
  std::uint64_t count(Event e) const { return counts_[static_cast<unsigned>(e)]; }

  /// Energy contributed by event e, in pJ.
  double event_pj(Event e) const { return static_cast<double>(count(e)) * energy_pj(e); }

  /// Total energy in pJ.
  double total_pj() const;

  /// Total energy in µJ.
  double total_uj() const { return total_pj() * 1e-6; }

  /// Energy in pJ for one Table-3 category.
  double category_pj(Category c) const;

  /// Clears all counts.
  void reset() { counts_.fill(0); }

  /// Accumulates another meter into this one.
  EnergyMeter& operator+=(const EnergyMeter& other);

 private:
  std::array<std::uint64_t, static_cast<unsigned>(Event::kCount)> counts_{};
};

/// A Table-3 style power breakdown for a run of `cycles` cycles at the
/// architectural clock.
struct PowerReport {
  double total_mw = 0.0;
  std::array<double, static_cast<unsigned>(Category::kCount)> category_mw{};
  double seconds = 0.0;
  double total_uj = 0.0;

  double category_fraction(Category c) const {
    return total_mw > 0 ? category_mw[static_cast<unsigned>(c)] / total_mw : 0.0;
  }
};

/// Builds a power report from a meter and a cycle count (80 MHz clock).
PowerReport make_power_report(const EnergyMeter& meter, Cycle cycles);

/// Multi-line human-readable dump: per-category power and percentage, in the
/// layout of the paper's Table 3.
std::string format_power_report(const PowerReport& report, const std::string& title);

/// Per-event count/energy dump for debugging and calibration.
std::string format_event_counts(const EnergyMeter& meter);

} // namespace vwr2a::energy
