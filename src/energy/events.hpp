#pragma once
// Architectural energy events. The reproduction cannot run PrimePower on
// post-synthesis netlists (paper Sec 4.3), so energy is accounted per
// architectural event: every time a component does observable work, the
// simulator adds one event to an EnergyMeter. Per-event energies live in
// calibration.hpp; the mapping event -> Table-3 category lives in table.cpp.

#include <cstdint>

namespace vwr2a::energy {

/// Every energy-bearing architectural event in the model.
enum class Event : std::uint8_t {
  // --- VWR2A scratchpad (array-wide 4096-bit side / word-wide system side)
  kSpmRowRead = 0,  ///< 4096-bit row read (LSU load, shuffle source refill)
  kSpmRowWrite,     ///< 4096-bit row write (LSU store)
  kSpmWordRead,     ///< 32-bit system-side read (DMA out of SPM)
  kSpmWordWrite,    ///< 32-bit system-side write (DMA into SPM)
  // --- Very-wide registers
  kVwrRowWrite,     ///< whole-row VWR update (LSU load or shuffle result)
  kVwrWordRead,     ///< one word through the RC mux network (the mux output
                    ///< switching is what costs energy, paper Sec 2)
  kVwrWordWrite,    ///< one word written back by an RC into its slice
  // --- Scalar register file and RC register files
  kSrfRead,
  kSrfWrite,
  kRcRfRead,
  kRcRfWrite,
  // --- RC datapath
  kAluOp,           ///< add/sub/logic/shift/compare (operand-isolated)
  kAluMul,          ///< standard 32-bit multiply
  kAluFxpMul,       ///< fixed-point 16.15 multiply
  // --- Shuffle unit
  kShuffleOp,       ///< one 256-word shuffle operation
  // --- Control (fetch is a program-memory register read; no decode stage)
  kInstrFetchRc,
  kInstrFetchCtrl,  ///< LCU/LSU/MXCU fetch
  kPcUpdate,
  kConfigWord,      ///< one configuration word copied into a program memory
  kLeakCycle,       ///< VWR2A leakage per active (non-gated) cycle
  // --- VWR2A DMA
  kDmaSetup,        ///< descriptor programming
  kDmaBeat,         ///< one 32-bit beat moved by the DMA
  // --- System bus (AMBA-AHB-like)
  kBusSetup,        ///< arbitration + address phase of a burst
  kBusBeat,         ///< one data beat on the bus
  // --- System SRAM (the 192 KiB six-bank host memory)
  kSramRead,
  kSramWrite,
  // --- Host CPU (Cortex-M4-like model)
  kCpuCycle,        ///< core energy per executed cycle
  kCpuFlashFetch,   ///< reserved; program assumed in SRAM/cache, unused
  // --- Fixed-function FFT accelerator
  kAccelBfly,       ///< one radix-4 (or 2x radix-2) butterfly group, 18-bit
  kAccelMemAccess,  ///< one 18-bit access to the accelerator dual-port RAM
  kAccelRomRead,    ///< one twiddle ROM read
  kAccelCtrlCycle,  ///< accelerator sequencer energy per active cycle
  kAccelLeakCycle,  ///< accelerator leakage per non-gated cycle
  kAccelIoWord,     ///< one word through the accelerator bus interface
  kAccelDmaBeat,    ///< accelerator-side DMA beat
  // --- Misc
  kIrq,
  kCount,
};

/// Power-breakdown category, matching the rows of the paper's Table 3.
enum class Category : std::uint8_t {
  kDma = 0,
  kMemories,
  kControl,
  kDatapath,
  kOther,   ///< bus / host-side events outside the accelerator breakdown
  kCount,
};

/// Human-readable event name.
const char* to_string(Event e);

/// Human-readable category name.
const char* to_string(Category c);

/// The Table-3 category an event belongs to.
Category category(Event e);

/// Calibrated energy of one occurrence, in picojoules.
double energy_pj(Event e);

} // namespace vwr2a::energy
