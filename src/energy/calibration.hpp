#pragma once
// Per-event energy calibration, in picojoules per event.
//
// The paper characterizes power with Synopsys PrimePower on a TSMC 40 nm LP
// post-synthesis netlist at 80 MHz (Sec 4.3). That flow is not reproducible
// in software, so this table carries the energy model instead. Values are
// engineering estimates for 40 nm LP standard-cell/SRAM-macro implementations
// chosen so that the *activity-weighted* totals land on the paper's Table 3
// power breakdown (VWR2A total 5.41 mW, FFT accelerator 0.983 mW, both while
// executing a 512-point real-valued FFT), and on the ~1.2 mW CPU+SRAM
// operating point implied by Tables 4 and 5.
//
// The absolute joules are NOT the claim of this reproduction; the claim is
// the shape: per-component ratios, kernel-level gaps, and application-level
// crossovers. See EXPERIMENTS.md for measured-vs-paper deltas.

namespace vwr2a::energy::cal {

// --- VWR2A SPM: 32 KiB built from concatenated narrow macros (Sec 5.1.1).
// A 4096-bit row access activates every macro at once.
inline constexpr double kSpmRowReadPj = 140.0;
inline constexpr double kSpmRowWritePj = 150.0;
// System-side narrow port (one macro).
inline constexpr double kSpmWordReadPj = 6.0;
inline constexpr double kSpmWordWritePj = 7.0;

// --- VWRs: latch arrays; the paper notes only the mux outputs switch each
// cycle, so the per-word read is cheap and the row write is the big cost.
inline constexpr double kVwrRowWritePj = 42.0;
inline constexpr double kVwrWordReadPj = 0.9;
inline constexpr double kVwrWordWritePj = 1.2;

// --- Register files.
inline constexpr double kSrfReadPj = 0.8;
inline constexpr double kSrfWritePj = 1.0;
inline constexpr double kRcRfReadPj = 0.3;
inline constexpr double kRcRfWritePj = 0.4;

// --- RC datapath (32-bit, operand isolation on idle operators).
inline constexpr double kAluOpPj = 2.2;
inline constexpr double kAluMulPj = 5.5;
inline constexpr double kAluFxpMulPj = 6.5;

// --- Shuffle unit: a 256-word wire permutation plus the VWR C row write is
// charged separately (kVwrRowWrite).
inline constexpr double kShuffleOpPj = 28.0;

// --- Control. Fetch is one 32-bit register-file read out of the 64-word
// program memory; there is no decoder (bits drive control signals directly).
inline constexpr double kInstrFetchRcPj = 0.22;
inline constexpr double kInstrFetchCtrlPj = 0.22;
inline constexpr double kPcUpdatePj = 0.15;
inline constexpr double kConfigWordPj = 1.0;

// --- Leakage: dominated by the VWR latches and the SPM periphery; 40 nm LP
// is a low-leak process. Charged per active cycle (power gating stops it).
inline constexpr double kLeakCyclePj = 4.0;

// --- VWR2A DMA.
inline constexpr double kDmaSetupPj = 30.0;
inline constexpr double kDmaBeatPj = 4.0;

// --- AMBA-AHB-like system bus.
inline constexpr double kBusSetupPj = 12.0;
inline constexpr double kBusBeatPj = 9.0;

// --- System SRAM (192 KiB in six 32 KiB banks).
inline constexpr double kSramReadPj = 13.0;
inline constexpr double kSramWritePj = 14.0;

// --- Host CPU (Cortex-M4F-like @ 40 nm LP). Core-only energy per cycle;
// memory traffic is charged through kSram*/kBus* events. The combination
// lands on the ~1.2 mW CPU+SRAM operating point implied by Tables 4/5.
inline constexpr double kCpuCyclePj = 11.5;
inline constexpr double kCpuFlashFetchPj = 0.0;

// --- FFT accelerator (18-bit datapath, 17 KiB dual-port memory, twiddle
// ROMs; Sec 4.1). Calibrated against Table 3's FFT ACCEL column.
inline constexpr double kAccelBflyPj = 42.0;
inline constexpr double kAccelMemAccessPj = 2.4;
inline constexpr double kAccelRomReadPj = 0.7;
inline constexpr double kAccelCtrlCyclePj = 0.8;
inline constexpr double kAccelLeakCyclePj = 0.6;
inline constexpr double kAccelIoWordPj = 0.25;
inline constexpr double kAccelDmaBeatPj = 0.15;

inline constexpr double kIrqPj = 5.0;

} // namespace vwr2a::energy::cal
