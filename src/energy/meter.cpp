#include "energy/meter.hpp"

#include <sstream>
#include <iomanip>

#include "energy/calibration.hpp"

namespace vwr2a::energy {

namespace {

struct EventInfo {
  const char* name;
  Category cat;
  double pj;
};

constexpr unsigned kNumEvents = static_cast<unsigned>(Event::kCount);

const std::array<EventInfo, kNumEvents>& table() {
  using namespace cal;
  static const std::array<EventInfo, kNumEvents> t = {{
      {"spm_row_read", Category::kMemories, kSpmRowReadPj},
      {"spm_row_write", Category::kMemories, kSpmRowWritePj},
      {"spm_word_read", Category::kMemories, kSpmWordReadPj},
      {"spm_word_write", Category::kMemories, kSpmWordWritePj},
      {"vwr_row_write", Category::kMemories, kVwrRowWritePj},
      {"vwr_word_read", Category::kMemories, kVwrWordReadPj},
      {"vwr_word_write", Category::kMemories, kVwrWordWritePj},
      {"srf_read", Category::kMemories, kSrfReadPj},
      {"srf_write", Category::kMemories, kSrfWritePj},
      {"rc_rf_read", Category::kDatapath, kRcRfReadPj},
      {"rc_rf_write", Category::kDatapath, kRcRfWritePj},
      {"alu_op", Category::kDatapath, kAluOpPj},
      {"alu_mul", Category::kDatapath, kAluMulPj},
      {"alu_fxpmul", Category::kDatapath, kAluFxpMulPj},
      {"shuffle_op", Category::kDatapath, kShuffleOpPj},
      {"instr_fetch_rc", Category::kControl, kInstrFetchRcPj},
      {"instr_fetch_ctrl", Category::kControl, kInstrFetchCtrlPj},
      {"pc_update", Category::kControl, kPcUpdatePj},
      {"config_word", Category::kControl, kConfigWordPj},
      {"leak_cycle", Category::kMemories, kLeakCyclePj},
      {"dma_setup", Category::kDma, kDmaSetupPj},
      {"dma_beat", Category::kDma, kDmaBeatPj},
      {"bus_setup", Category::kOther, kBusSetupPj},
      {"bus_beat", Category::kOther, kBusBeatPj},
      {"sram_read", Category::kOther, kSramReadPj},
      {"sram_write", Category::kOther, kSramWritePj},
      {"cpu_cycle", Category::kOther, kCpuCyclePj},
      {"cpu_flash_fetch", Category::kOther, kCpuFlashFetchPj},
      {"accel_bfly", Category::kDatapath, kAccelBflyPj},
      {"accel_mem_access", Category::kMemories, kAccelMemAccessPj},
      {"accel_rom_read", Category::kMemories, kAccelRomReadPj},
      {"accel_ctrl_cycle", Category::kControl, kAccelCtrlCyclePj},
      {"accel_leak_cycle", Category::kMemories, kAccelLeakCyclePj},
      {"accel_io_word", Category::kDma, kAccelIoWordPj},
      {"accel_dma_beat", Category::kDma, kAccelDmaBeatPj},
      {"irq", Category::kControl, kIrqPj},
  }};
  return t;
}

} // namespace

const char* to_string(Event e) { return table()[static_cast<unsigned>(e)].name; }

const char* to_string(Category c) {
  switch (c) {
    case Category::kDma: return "DMA";
    case Category::kMemories: return "Memories";
    case Category::kControl: return "Control";
    case Category::kDatapath: return "Datapath";
    case Category::kOther: return "Other";
    default: return "?";
  }
}

Category category(Event e) { return table()[static_cast<unsigned>(e)].cat; }

double energy_pj(Event e) { return table()[static_cast<unsigned>(e)].pj; }

double EnergyMeter::total_pj() const {
  double sum = 0.0;
  for (unsigned i = 0; i < kNumEvents; ++i) {
    sum += static_cast<double>(counts_[i]) * table()[i].pj;
  }
  return sum;
}

double EnergyMeter::category_pj(Category c) const {
  double sum = 0.0;
  for (unsigned i = 0; i < kNumEvents; ++i) {
    if (table()[i].cat == c) sum += static_cast<double>(counts_[i]) * table()[i].pj;
  }
  return sum;
}

EnergyMeter& EnergyMeter::operator+=(const EnergyMeter& other) {
  for (unsigned i = 0; i < kNumEvents; ++i) counts_[i] += other.counts_[i];
  return *this;
}

PowerReport make_power_report(const EnergyMeter& meter, Cycle cycles) {
  PowerReport r;
  r.seconds = static_cast<double>(cycles) / arch::kClockHz;
  r.total_uj = meter.total_uj();
  if (r.seconds > 0) {
    r.total_mw = (meter.total_pj() * 1e-12) / r.seconds * 1e3;
    for (unsigned c = 0; c < static_cast<unsigned>(Category::kCount); ++c) {
      r.category_mw[c] =
          (meter.category_pj(static_cast<Category>(c)) * 1e-12) / r.seconds * 1e3;
    }
  }
  return r;
}

std::string format_power_report(const PowerReport& report, const std::string& title) {
  std::ostringstream os;
  os << title << "\n";
  os << "  " << std::left << std::setw(10) << "Instance" << std::right
     << std::setw(14) << "Power (mW)" << std::setw(8) << "%" << "\n";
  for (unsigned c = 0; c < static_cast<unsigned>(Category::kCount); ++c) {
    const auto cat = static_cast<Category>(c);
    if (cat == Category::kOther && report.category_mw[c] == 0.0) continue;
    os << "  " << std::left << std::setw(10) << to_string(cat) << std::right
       << std::setw(14) << std::scientific << std::setprecision(2)
       << report.category_mw[c] << std::setw(7) << std::fixed
       << std::setprecision(0) << 100.0 * report.category_fraction(cat) << "%\n";
  }
  os << "  " << std::left << std::setw(10) << "Total" << std::right
     << std::setw(14) << std::scientific << std::setprecision(2) << report.total_mw
     << std::setw(8) << "100%" << "\n";
  return os.str();
}

std::string format_event_counts(const EnergyMeter& meter) {
  std::ostringstream os;
  for (unsigned i = 0; i < kNumEvents; ++i) {
    const auto e = static_cast<Event>(i);
    if (meter.count(e) == 0) continue;
    os << "  " << std::left << std::setw(18) << to_string(e) << std::right
       << std::setw(12) << meter.count(e) << std::setw(14) << std::fixed
       << std::setprecision(1) << meter.event_pj(e) << " pJ\n";
  }
  return os.str();
}

} // namespace vwr2a::energy
