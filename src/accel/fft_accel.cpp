#include "accel/fft_accel.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numbers>

#include "common/bits.hpp"
#include "common/status.hpp"

namespace vwr2a::accel {

namespace {

constexpr double kPi = std::numbers::pi;
constexpr std::int64_t kMax18 = (1 << (kAccelBits - 1)) - 1;

/// 18-bit twiddle ROM entry (the engine stores weights in internal ROMs).
struct RomTwiddle {
  std::int64_t re;
  std::int64_t im;
};

RomTwiddle rom_twiddle(unsigned n, unsigned k) {
  const double ang = -2.0 * kPi * k / static_cast<double>(n);
  const double s = static_cast<double>(1 << (kAccelBits - 2));  // q2.16-ish
  return {static_cast<std::int64_t>(std::lround(std::cos(ang) * s)),
          static_cast<std::int64_t>(std::lround(std::sin(ang) * s))};
}

/// Truncating rescale after an 18-bit x 18-bit twiddle product.
std::int64_t tw_scale(std::int64_t v) { return v >> (kAccelBits - 2); }

} // namespace

unsigned FftAccel::butterfly_slots(unsigned n) {
  unsigned logn = ilog2(n);
  unsigned slots = 0;
  while (logn >= 2) {
    slots += n / 4;  // one radix-4 stage
    logn -= 2;
  }
  if (logn == 1) slots += n / 2;  // trailing radix-2 stage
  return slots;
}

void FftAccel::cfft_core(std::vector<std::int64_t>& re,
                         std::vector<std::int64_t>& im, int& scale_exp) {
  const unsigned n = static_cast<unsigned>(re.size());
  const unsigned logn = ilog2(n);
  // Bit-reversal reorder (the dual-port memory allows conflict-free
  // read/write; charged as memory accesses).
  for (unsigned i = 0; i < n; ++i) {
    const unsigned j = bit_reverse(i, logn);
    if (j > i) {
      std::swap(re[i], re[j]);
      std::swap(im[i], im[j]);
    }
  }
  meter_->add(energy::Event::kAccelMemAccess, 2 * n);

  for (unsigned len = 2; len <= n; len <<= 1) {
    // Dynamic scaling: if the block is about to outgrow 18 bits, shift
    // right by one and bump the exponent (block floating point).
    std::int64_t mx = 0;
    for (unsigned i = 0; i < n; ++i) {
      mx = std::max({mx, std::abs(re[i]), std::abs(im[i])});
    }
    if (mx > kMax18 / 2) {
      for (unsigned i = 0; i < n; ++i) {
        re[i] >>= 1;
        im[i] >>= 1;
      }
      ++scale_exp;
      meter_->add(energy::Event::kAccelMemAccess, 2 * n);
    }
    const unsigned step = n / len;
    for (unsigned i = 0; i < n; i += len) {
      for (unsigned j = 0; j < len / 2; ++j) {
        const RomTwiddle w = rom_twiddle(n, j * step);
        meter_->add(energy::Event::kAccelRomRead);
        const std::int64_t ur = re[i + j];
        const std::int64_t ui = im[i + j];
        const std::int64_t vr0 = re[i + j + len / 2];
        const std::int64_t vi0 = im[i + j + len / 2];
        const std::int64_t vr = tw_scale(vr0 * w.re - vi0 * w.im);
        const std::int64_t vi = tw_scale(vr0 * w.im + vi0 * w.re);
        re[i + j] = saturate(ur + vr, kAccelBits + 8);
        im[i + j] = saturate(ui + vi, kAccelBits + 8);
        re[i + j + len / 2] = saturate(ur - vr, kAccelBits + 8);
        im[i + j + len / 2] = saturate(ui - vi, kAccelBits + 8);
        meter_->add(energy::Event::kAccelMemAccess, 8);
      }
    }
  }
}

FftAccelResult FftAccel::cfft(const std::vector<cpu::CplxQ15>& x) {
  const unsigned n = static_cast<unsigned>(x.size());
  if (!is_pow2(n) || n < 4 || n > kMaxPoints) {
    throw HostError("FftAccel::cfft: size must be a power of two in [4, 4096]");
  }
  gated_ = false;

  std::vector<std::int64_t> re(n), im(n);
  for (unsigned i = 0; i < n; ++i) {
    re[i] = x[i].re;
    im[i] = x[i].im;
  }
  int scale_exp = 0;
  cfft_core(re, im, scale_exp);

  FftAccelResult out;
  out.re.resize(n);
  out.im.resize(n);
  for (unsigned i = 0; i < n; ++i) {
    out.re[i] = static_cast<std::int32_t>(saturate(re[i], kAccelBits));
    out.im[i] = static_cast<std::int32_t>(saturate(im[i], kAccelBits));
  }
  out.scale_exp = scale_exp;

  const unsigned slots = butterfly_slots(n);
  out.cycles = timing_.setup_cycles +
               static_cast<Cycle>(timing_.io_cycles_per_point * n) +
               static_cast<Cycle>(timing_.cycles_per_bfly * slots);
  meter_->add(energy::Event::kAccelBfly, slots);
  meter_->add(energy::Event::kAccelIoWord, 4ull * n);  // 2N words in, 2N out
  meter_->add(energy::Event::kAccelDmaBeat, 4ull * n);
  meter_->add(energy::Event::kAccelCtrlCycle, out.cycles);
  meter_->add(energy::Event::kAccelLeakCycle, out.cycles);
  meter_->add(energy::Event::kIrq);
  return out;
}

FftAccelResult FftAccel::rfft(const std::vector<fx::q15_t>& x) {
  const unsigned n = static_cast<unsigned>(x.size());
  if (!is_pow2(n) || n < 8 || n > kMaxPoints) {
    throw HostError("FftAccel::rfft: size must be a power of two in [8, 4096]");
  }
  gated_ = false;
  const unsigned h = n / 2;

  // Optimized real flow: N/2-point complex FFT of packed even/odd samples,
  // then the split stage (paper Sec 3.4 describes the same trick for VWR2A).
  std::vector<std::int64_t> re(h), im(h);
  for (unsigned k = 0; k < h; ++k) {
    re[k] = x[2 * k];
    im[k] = x[2 * k + 1];
  }
  int scale_exp = 0;
  cfft_core(re, im, scale_exp);

  FftAccelResult out;
  out.re.resize(h + 1);
  out.im.resize(h + 1);
  for (unsigned k = 0; k <= h; ++k) {
    const std::int64_t zkr = (k == h) ? re[0] : re[k];
    const std::int64_t zki = (k == h) ? im[0] : im[k];
    const std::int64_t zmr = re[(h - k) % h];
    const std::int64_t zmi = im[(h - k) % h];
    const std::int64_t er = (zkr + zmr) >> 1;
    const std::int64_t ei = (zki - zmi) >> 1;
    const std::int64_t orr = (zki + zmi) >> 1;
    const std::int64_t oi = (zmr - zkr) >> 1;
    const RomTwiddle w = rom_twiddle(n, k);
    meter_->add(energy::Event::kAccelRomRead);
    const std::int64_t xr = er + tw_scale(orr * w.re - oi * w.im);
    const std::int64_t xi = ei + tw_scale(orr * w.im + oi * w.re);
    out.re[k] = static_cast<std::int32_t>(saturate(xr, kAccelBits));
    out.im[k] = static_cast<std::int32_t>(saturate(xi, kAccelBits));
    meter_->add(energy::Event::kAccelMemAccess, 5);
  }
  out.scale_exp = scale_exp;

  const unsigned slots = butterfly_slots(h);
  // The real flow moves half the complex I/O volume (n real words in,
  // n/2+1 bins out), so the per-point I/O term applies to h, not n.
  out.cycles = timing_.setup_cycles +
               static_cast<Cycle>(timing_.io_cycles_per_point * h) +
               static_cast<Cycle>(timing_.cycles_per_bfly * slots) +
               static_cast<Cycle>(timing_.split_cycles_per_point * h);
  meter_->add(energy::Event::kAccelBfly, slots);
  meter_->add(energy::Event::kAccelIoWord, 2ull * n);
  meter_->add(energy::Event::kAccelDmaBeat, 2ull * n);
  meter_->add(energy::Event::kAccelCtrlCycle, out.cycles);
  meter_->add(energy::Event::kAccelLeakCycle, out.cycles);
  meter_->add(energy::Event::kIrq);
  return out;
}

} // namespace vwr2a::accel
