#pragma once
// Model of the SoC's fixed-function FFT accelerator (paper Sec 4.1): a
// MUSEIC-style engine computing FFTs and inverse FFTs up to 4096 points
// with a mixed radix-2/radix-4 flow, an optimized path for real-valued
// inputs, twiddle ROMs, a dual-port working memory, and an 18-bit internal
// representation with dynamic scaling (block floating point) to avoid
// overflow.
//
// The real engine is closed; this model is functional (18-bit saturating
// datapath, per-stage block scaling) with an analytic cycle model whose
// constants are fitted to the paper's Table 2 FFT ACCEL column, and
// event-based energy calibrated against Table 3. See DESIGN.md Sec 3.

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "cpu/kernels_q15.hpp"
#include "energy/meter.hpp"

namespace vwr2a::accel {

/// Internal datapath width (bits) of the engine.
inline constexpr unsigned kAccelBits = 18;

/// Maximum transform size.
inline constexpr unsigned kMaxPoints = 4096;

/// Cycle-model constants (fitted to Table 2; see EXPERIMENTS.md).
struct FftAccelTiming {
  /// Host programming + start + completion interrupt handling.
  unsigned setup_cycles = 90;
  /// Per input/output point: AHB transfer + dual-port memory fill/drain.
  double io_cycles_per_point = 9.0;
  /// Per butterfly slot (a radix-4 butterfly, or one radix-2 pair).
  double cycles_per_bfly = 3.5;
  /// Per point of the real-FFT split stage.
  double split_cycles_per_point = 1.0;
};

/// Result of one accelerator run.
struct FftAccelResult {
  std::vector<std::int32_t> re;  ///< 18-bit spectrum, natural order
  std::vector<std::int32_t> im;
  int scale_exp = 0;             ///< X_true = X * 2^scale_exp (input q15 scale)
  Cycle cycles = 0;              ///< end-to-end occupancy incl. I/O and setup
};

/// The accelerator.
class FftAccel {
 public:
  explicit FftAccel(energy::EnergyMeter& meter, FftAccelTiming timing = {})
      : meter_(&meter), timing_(timing) {}

  /// Complex FFT of a q15 interleaved input (size a power of two <= 4096).
  FftAccelResult cfft(const std::vector<cpu::CplxQ15>& x);

  /// Real-valued FFT (optimized flow): N q15 reals in, N/2+1 bins out.
  FftAccelResult rfft(const std::vector<fx::q15_t>& x);

  /// Power gating: while gated the engine consumes no leakage. run() calls
  /// implicitly wake the engine.
  void set_gated(bool gated) { gated_ = gated; }
  bool gated() const { return gated_; }

  /// Number of butterfly slots the mixed radix-2/4 flow executes for an
  /// n-point complex transform (radix-4 stages first, one radix-2 stage if
  /// log2(n) is odd).
  static unsigned butterfly_slots(unsigned n);

 private:
  /// Runs the 18-bit block-floating-point complex FFT core.
  void cfft_core(std::vector<std::int64_t>& re, std::vector<std::int64_t>& im,
                 int& scale_exp);

  energy::EnergyMeter* meter_;
  FftAccelTiming timing_;
  bool gated_ = true;
};

} // namespace vwr2a::accel
