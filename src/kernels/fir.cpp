#include "kernels/fir.hpp"

#include "casm/builder.hpp"
#include "casm/factories.hpp"
#include "common/status.hpp"

namespace vwr2a::kernels {

namespace {

using namespace casm;
using isa::ColumnProgram;

constexpr unsigned kRowWords = arch::kVwrWords;
/// SPM word region holding the 11 staged taps.
constexpr unsigned kTapMem = kFirTapRow * kRowWords;

/// Builds the FIR program for one column. `col` selects the starting staged
/// row (host also writes SRF0 = col); `nrows_total` staged rows live at SPM
/// rows [0, nrows_total) with outputs at [nrows_total, 2*nrows_total).
ColumnProgram fir_program(unsigned col, unsigned nrows_total) {
  const unsigned my_rows = (nrows_total + 1 - col) / 2;  // rows col, col+2, ...
  if (my_rows == 0) throw AsmError("fir_program: column has no rows");
  ProgramBuilder pb;
  // Prologue: taps 0..6 -> SRF1..7.
  for (unsigned t = 0; t < 7; ++t) {
    pb.line().lsu(lsu_ld_srf(static_cast<std::uint8_t>(1 + t), kTapMem + t)).emit();
  }
  pb.line().lcu(lcu_set(2, static_cast<int>(my_rows))).emit();

  Label row = pb.make_label();
  pb.bind(row);
  pb.line()
      .lsu(lsu_ld_vwr_srf(VwrSel::A, 0, 0))
      .lcu(lcu_set(0, static_cast<int>(kFirOutsPerSlice)))
      .mxcu(mxcu_set_idx(10))
      .emit();

  // Software-pipelined 11-tap MAC, 2 cycles/tap. Tap t reads in-slice word
  // (k + 10 - t); the SRF entry map rotates taps 7..10 (and back 0..3)
  // through SRF1..4 on accumulate cycles.
  Label kloop = pb.make_label();
  pb.bind(kloop);
  // t = 0: R1 = x * tap0, and start walking the index down.
  pb.line()
      .rc_all(rc_fxpmul(RcDst::kR1, RcSrc::kVwrA, RcSrc::kSrf, 1))
      .mxcu(mxcu_add_idx(-1))
      .emit();
  for (unsigned t = 1; t <= 10; ++t) {
    const std::uint8_t entry = static_cast<std::uint8_t>(t <= 6 ? 1 + t : t - 6);
    // multiply cycle.
    pb.line().rc_all(rc_fxpmul(RcDst::kR0, RcSrc::kVwrA, RcSrc::kSrf, entry)).emit();
    // accumulate cycle (the final one writes straight into VWR C at word k).
    auto line = pb.line();
    if (t < 10) {
      line.rc_all(rc_add(RcDst::kR1, RcSrc::kR1, RcSrc::kR0)).mxcu(mxcu_add_idx(-1));
    } else {
      line.rc_all(rc_add(RcDst::kVwrC, RcSrc::kR1, RcSrc::kR0))
          .mxcu(mxcu_add_idx(11))
          .lcu(lcu_dbnz(0), kloop);
    }
    // SRF rotation on the free accumulate-cycle port.
    switch (t) {
      case 1: line.lsu(lsu_ld_srf(1, kTapMem + 7)); break;
      case 2: line.lsu(lsu_ld_srf(2, kTapMem + 8)); break;
      case 3: line.lsu(lsu_ld_srf(3, kTapMem + 9)); break;
      case 4: line.lsu(lsu_ld_srf(4, kTapMem + 10)); break;
      case 7: line.lsu(lsu_ld_srf(1, kTapMem + 0)); break;
      case 8: line.lsu(lsu_ld_srf(2, kTapMem + 1)); break;
      case 9: line.lsu(lsu_ld_srf(3, kTapMem + 2)); break;
      case 10: line.lsu(lsu_ld_srf(4, kTapMem + 3)); break;
      default: break;
    }
    line.emit();
  }
  // Row epilogue: store outputs, advance SRF0 by two rows, loop.
  pb.line().lsu(lsu_st_vwr_srf(VwrSel::C, 0, static_cast<int>(nrows_total))).emit();
  pb.line().lcu(lcu_mv_srf(1, 0)).emit();
  pb.line().lcu(lcu_add(1, 2)).emit();
  pb.line().lcu(lcu_st_srf(0, 1)).emit();
  pb.line().lcu(lcu_dbnz(2), row).emit();
  pb.line().lcu(lcu_exit()).emit();
  return pb.build();
}

} // namespace

FirKernels::FirKernels(Host host, isa::ImageCache* cache)
    : host_(host), cache_(cache) {}

void FirKernels::prepare(unsigned zeros_base) {
  zeros_base_ = zeros_base;
  for (unsigned i = 0; i < 16; ++i) host_.sram().poke(zeros_base_ + i, 0);
  prepared_ = true;
}

unsigned FirKernels::kernel_for_rows(unsigned nrows) {
  if (nrows == 0 || nrows >= kernels_.size()) {
    throw HostError("FirKernels: unsupported row count");
  }
  if (kernels_[nrows] < 0) {
    const std::string name = "fir11_rows" + std::to_string(nrows);
    auto build = [&]() {
      if (nrows == 1) {
        // A single staged row: column 0 alone.
        return make_kernel(name, 0, fir_program(0, 1));
      }
      return make_kernel2(name, fir_program(0, nrows), fir_program(1, nrows));
    };
    kernels_[nrows] = static_cast<int>(host_.register_image(cache_, name, build));
  }
  return static_cast<unsigned>(kernels_[nrows]);
}

unsigned FirKernels::fir11_begin(unsigned n,
                                 const std::vector<std::int32_t>& taps,
                                 unsigned sys_in, bool taps_resident) {
  if (!prepared_) throw HostError("FirKernels: prepare() not called");
  if (taps.size() != kFirTaps) throw HostError("FirKernels: need 11 taps");
  if (n == 0 || n > 12 * kFirOutsPerRow) throw HostError("FirKernels: bad n");

  // Tap constants live next to the zero block; place and stage them, unless
  // the caller proved the staged copy is still resident.
  if (!taps_resident) {
    for (unsigned t = 0; t < kFirTaps; ++t) {
      host_.sram().poke(zeros_base_ + 16 + t, static_cast<Word>(taps[t]));
    }
    host_.dma({dma::Dir::kSysToSpm, zeros_base_ + 16, kTapMem, kFirTaps, 1, 1});
  }

  // Stage the overlapped input windows.
  const unsigned rows = (n + kFirOutsPerRow - 1) / kFirOutsPerRow;
  for (unsigned r = 0; r < rows; ++r) {
    for (unsigned j = 0; j < 4; ++j) {
      const unsigned o = kFirOutsPerSlice * (4 * r + j);  // first output
      if (o >= n) continue;
      const unsigned spm = r * kRowWords + 32 * j;
      if (o == 0) {
        // x[-10..-1] are zeros; x[0..21] from the input.
        host_.dma({dma::Dir::kSysToSpm, zeros_base_ + 6, spm, 10, 1, 1});
        const unsigned cnt = std::min(22u, n);
        host_.dma({dma::Dir::kSysToSpm, sys_in, spm + 10, cnt, 1, 1});
      } else {
        const unsigned first = o - 10;
        const unsigned cnt = std::min(32u, n - first);
        host_.dma({dma::Dir::kSysToSpm, sys_in + first, spm, cnt, 1, 1});
      }
    }
  }

  // Launch parameters for both columns (column c starts at staged row c).
  host_.srf(0, 0, 0);
  host_.srf(1, 0, 1);
  return kernel_for_rows(rows);
}

void FirKernels::fir11_finish(unsigned n, unsigned sys_out) {
  const unsigned rows = (n + kFirOutsPerRow - 1) / kFirOutsPerRow;
  for (unsigned r = 0; r < rows; ++r) {
    for (unsigned j = 0; j < 4; ++j) {
      const unsigned o = kFirOutsPerSlice * (4 * r + j);
      if (o >= n) continue;
      const unsigned cnt = std::min(kFirOutsPerSlice, n - o);
      host_.dma({dma::Dir::kSpmToSys, sys_out + o, (rows + r) * kRowWords + 32 * j,
                 cnt, 1, 1});
    }
  }
}

FirRunStats FirKernels::fir11(unsigned n, const std::vector<std::int32_t>& taps,
                              unsigned sys_in, unsigned sys_out,
                              bool taps_resident) {
  FirRunStats stats;
  const Cycle t0 = host_.acc().cycles();
  host_.run(fir11_begin(n, taps, sys_in, taps_resident));
  ++stats.launches;
  fir11_finish(n, sys_out);
  stats.cycles = host_.acc().cycles() - t0;
  return stats;
}

} // namespace vwr2a::kernels
