#include "kernels/reduce.hpp"

#include "casm/builder.hpp"
#include "casm/factories.hpp"
#include "common/status.hpp"

namespace vwr2a::kernels {

namespace {

using namespace casm;
using isa::ColumnProgram;

void emit_loop_lines(ProgramBuilder& pb, const std::vector<isa::RcInstr>& body) {
  Label l = pb.make_label();
  pb.bind(l);
  for (std::size_t i = 0; i < body.size(); ++i) {
    auto line = pb.line().rc_all(body[i]);
    if (i + 1 == body.size()) {
      line.mxcu(mxcu_add_idx(1)).lcu(lcu_dbnz(0), l);
    }
    line.emit();
  }
}

/// Shared reduction skeleton: zero R1, loop over rows accumulating with the
/// given per-element body, merge across RCs, publish via SRF7.
/// Rows advance through SRF0 (+1 per row, LCU-maintained).
ColumnProgram reduce_program(Reduce r, unsigned nrows) {
  ProgramBuilder pb;
  pb.line().rc_all(rc_mv(RcDst::kR1, RcSrc::kZero)).lcu(lcu_set(2, static_cast<int>(nrows))).emit();
  Label row = pb.make_label();
  pb.bind(row);
  pb.line()
      .lsu(lsu_ld_vwr_srf(VwrSel::A, 0, 0))
      .lcu(lcu_set(0, 32))
      .mxcu(mxcu_set_idx(0))
      .emit();
  if (r == Reduce::kMaskedSq) {
    pb.line().lsu(lsu_ld_vwr_srf(VwrSel::B, 1, 0)).emit();
  }
  switch (r) {
    case Reduce::kSum:
      emit_loop_lines(pb, {rc_add(RcDst::kR1, RcSrc::kR1, RcSrc::kVwrA)});
      break;
    case Reduce::kSumSq:
      emit_loop_lines(pb, {rc_fxpmul(RcDst::kR0, RcSrc::kVwrA, RcSrc::kVwrA),
                           rc_add(RcDst::kR1, RcSrc::kR1, RcSrc::kR0)});
      break;
    case Reduce::kCountLe:
      // pivot in SRF2 (broadcast read by all four RCs).
      emit_loop_lines(pb, {rc_op(RcOp::kCmpLe, RcDst::kR0, RcSrc::kVwrA,
                                 RcSrc::kSrf, 2),
                           rc_add(RcDst::kR1, RcSrc::kR1, RcSrc::kR0)});
      break;
    case Reduce::kMaskedSq:
      emit_loop_lines(pb, {rc_fxpmul(RcDst::kR0, RcSrc::kVwrA, RcSrc::kVwrA),
                           rc_fxpmul(RcDst::kR0, RcSrc::kR0, RcSrc::kVwrB),
                           rc_add(RcDst::kR1, RcSrc::kR1, RcSrc::kR0)});
      break;
  }
  // Advance the data row (and the mask row for the masked flavour).
  pb.line().lcu(lcu_mv_srf(1, 0)).emit();
  pb.line().lcu(lcu_add(1, 1)).emit();
  pb.line().lcu(lcu_st_srf(0, 1)).emit();
  if (r == Reduce::kMaskedSq) {
    pb.line().lcu(lcu_mv_srf(1, 1)).emit();
    pb.line().lcu(lcu_add(1, 1)).emit();
    pb.line().lcu(lcu_st_srf(1, 1)).emit();
  }
  pb.line().lcu(lcu_dbnz(2), row).emit();
  // Merge across RCs through the neighbour network, publish via SRF7.
  pb.line().rc_all(rc_mv(RcDst::kR0, RcSrc::kR1)).emit();  // out := R1
  pb.line().rc(1, rc_add(RcDst::kR1, RcSrc::kR1, RcSrc::kRcUp)).emit();
  pb.line().rc(2, rc_add(RcDst::kR1, RcSrc::kR1, RcSrc::kRcUp)).emit();
  pb.line().rc(3, rc_add(RcDst::kR1, RcSrc::kR1, RcSrc::kRcUp)).emit();
  pb.line().rc(3, rc_mv(RcDst::kSrf, RcSrc::kR1, 7)).emit();
  pb.line().lcu(lcu_exit()).emit();
  return pb.build();
}

/// Zero kernel: writes 0 to a full row through the RC write-back path and
/// stores it to `nrows` consecutive rows at SRF0.
ColumnProgram zero_program(unsigned nrows) {
  ProgramBuilder pb;
  pb.line().lcu(lcu_set(0, 32)).mxcu(mxcu_set_idx(0)).emit();
  Label fill = pb.make_label();
  pb.bind(fill);
  pb.line()
      .rc_all(rc_mv(RcDst::kVwrC, RcSrc::kZero))
      .mxcu(mxcu_add_idx(1))
      .lcu(lcu_dbnz(0), fill)
      .emit();
  pb.line().lcu(lcu_set(2, static_cast<int>(nrows))).emit();
  Label row = pb.make_label();
  pb.bind(row);
  pb.line().lsu(lsu_st_vwr_srf(VwrSel::C, 0, 0)).emit();
  pb.line().lcu(lcu_mv_srf(1, 0)).emit();
  pb.line().lcu(lcu_add(1, 1)).emit();
  pb.line().lcu(lcu_st_srf(0, 1)).emit();
  pb.line().lcu(lcu_dbnz(2), row).emit();
  pb.line().lcu(lcu_exit()).emit();
  return pb.build();
}

/// Serial dot product on RC0: features in slice 0 of the row at SRF0,
/// weights at SPM words [w_base + t] (immediate addresses baked per nf).
/// Result in SRF7. The weight for term t is loaded into SRF1 one line
/// before its multiply (single-ported SRF: load and use never collide).
ColumnProgram dot_program(unsigned nf, unsigned w_base) {
  ProgramBuilder pb;
  pb.line().lsu(lsu_ld_vwr_srf(VwrSel::A, 0, 0)).mxcu(mxcu_set_idx(0)).emit();
  pb.line().rc(0, rc_mv(RcDst::kR1, RcSrc::kZero)).emit();
  for (unsigned t = 0; t < nf; ++t) {
    pb.line().lsu(lsu_ld_srf(1, w_base + t)).emit();
    pb.line().rc(0, rc_fxpmul(RcDst::kR0, RcSrc::kVwrA, RcSrc::kSrf, 1)).emit();
    pb.line().rc(0, rc_add(RcDst::kR1, RcSrc::kR1, RcSrc::kR0)).mxcu(mxcu_add_idx(1)).emit();
  }
  pb.line().rc(0, rc_mv(RcDst::kSrf, RcSrc::kR1, 7)).emit();
  pb.line().lcu(lcu_exit()).emit();
  return pb.build();
}

} // namespace

ReduceKernels::ReduceKernels(Host host, isa::ImageCache* cache)
    : host_(host), cache_(cache), reduce_ids_(4, std::vector<int>(33, -1)) {}

unsigned ReduceKernels::reduce_kernel(Reduce r, unsigned nrows) {
  if (nrows == 0 || nrows > 32) throw HostError("ReduceKernels: bad row count");
  int& slot = reduce_ids_[static_cast<unsigned>(r)][nrows];
  if (slot < 0) {
    const char* names[] = {"reduce_sum", "reduce_sumsq", "reduce_countle",
                           "reduce_maskedsq"};
    const std::string name = std::string(names[static_cast<unsigned>(r)]) +
                             "_r" + std::to_string(nrows);
    slot = static_cast<int>(host_.register_image(cache_, name, [&] {
      return make_kernel(name, 0, reduce_program(r, nrows));
    }));
  }
  return static_cast<unsigned>(slot);
}

std::int32_t ReduceKernels::run_reduce(unsigned kernel, unsigned row0,
                                       unsigned extra_srf1, Cycle* cycles) {
  const Cycle t0 = host_.acc().cycles();
  host_.srf(0, 0, row0);
  if (extra_srf1 != ~0u) host_.srf(0, 1, extra_srf1);
  host_.run(kernel);
  const std::int32_t v = static_cast<std::int32_t>(host_.acc().host_read_srf(0, 7));
  if (cycles != nullptr) *cycles += host_.acc().cycles() - t0;
  return v;
}

std::int32_t ReduceKernels::sum_rows(unsigned row0, unsigned nrows, Cycle* cycles) {
  return run_reduce(reduce_kernel(Reduce::kSum, nrows), row0, ~0u, cycles);
}

std::int32_t ReduceKernels::sumsq_rows(unsigned row0, unsigned nrows, Cycle* cycles) {
  return run_reduce(reduce_kernel(Reduce::kSumSq, nrows), row0, ~0u, cycles);
}

std::int32_t ReduceKernels::count_le_rows(unsigned row0, unsigned nrows,
                                          std::int32_t pivot, Cycle* cycles) {
  const Cycle t0 = host_.acc().cycles();
  host_.srf(0, 2, static_cast<Word>(pivot));
  const std::int32_t v =
      run_reduce(reduce_kernel(Reduce::kCountLe, nrows), row0, ~0u, nullptr);
  if (cycles != nullptr) *cycles += host_.acc().cycles() - t0;
  return v;
}

std::int32_t ReduceKernels::masked_power(unsigned row0, unsigned mask_row0,
                                         unsigned nrows, Cycle* cycles) {
  return run_reduce(reduce_kernel(Reduce::kMaskedSq, nrows), row0, mask_row0,
                    cycles);
}

std::int32_t ReduceKernels::bisect_count(unsigned row0, unsigned nrows,
                                         std::int32_t need, Cycle* cycles) {
  // Bisection: find the smallest m with count(x <= m) >= need. Signal range
  // is (-2, 2) in 16.15, i.e. 18 significant bits (kBisectLaunches probes).
  std::int32_t lo = -(1 << 17);
  std::int32_t hi = (1 << 17) - 1;
  while (lo < hi) {
    const std::int32_t mid = lo + (hi - lo) / 2;
    const std::int32_t cnt = count_le_rows(row0, nrows, mid, cycles);
    if (cnt >= need) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

std::int32_t ReduceKernels::median_rows(unsigned row0, unsigned nrows,
                                        Cycle* cycles) {
  const std::int32_t n = static_cast<std::int32_t>(nrows) * 128;
  return bisect_count(row0, nrows, n / 2 + 1, cycles);
}

std::int32_t ReduceKernels::min_rows(unsigned row0, unsigned nrows,
                                     Cycle* cycles) {
  return bisect_count(row0, nrows, 1, cycles);
}

std::int32_t ReduceKernels::max_rows(unsigned row0, unsigned nrows,
                                     Cycle* cycles) {
  const std::int32_t n = static_cast<std::int32_t>(nrows) * 128;
  return bisect_count(row0, nrows, n, cycles);
}

void ReduceKernels::zero_rows(unsigned row0, unsigned nrows, Cycle* cycles) {
  if (nrows == 0 || nrows > 32) throw HostError("ReduceKernels: bad row count");
  if (zero_ids_[nrows] < 0) {
    const std::string name = "zero_rows" + std::to_string(nrows);
    zero_ids_[nrows] = static_cast<int>(host_.register_image(cache_, name, [&] {
      return make_kernel(name, 0, zero_program(nrows));
    }));
  }
  const Cycle t0 = host_.acc().cycles();
  host_.srf(0, 0, row0);
  host_.run(static_cast<unsigned>(zero_ids_[nrows]));
  if (cycles != nullptr) *cycles += host_.acc().cycles() - t0;
}

unsigned ReduceKernels::dot_kernel(unsigned nf) {
  if (nf == 0 || nf > 16) throw HostError("ReduceKernels: bad feature count");
  if (dot_ids_[nf] < 0) {
    const std::string name = "svm_dot" + std::to_string(nf);
    dot_ids_[nf] = static_cast<int>(host_.register_image(cache_, name, [&] {
      return make_kernel(name, 0, dot_program(nf, /*w_base=*/52 * arch::kVwrWords));
    }));
  }
  return static_cast<unsigned>(dot_ids_[nf]);
}

std::int32_t ReduceKernels::dot(unsigned feat_row, unsigned w_words, unsigned nf,
                                Cycle* cycles) {
  const Cycle t0 = host_.acc().cycles();
  // Weights are staged to the fixed word block the program addresses.
  host_.dma({dma::Dir::kSysToSpm, w_words, 52 * arch::kVwrWords, nf, 1, 1});
  host_.srf(0, 0, feat_row);
  host_.run(dot_kernel(nf));
  const std::int32_t v = static_cast<std::int32_t>(host_.acc().host_read_srf(0, 7));
  if (cycles != nullptr) *cycles += host_.acc().cycles() - t0;
  return v;
}

} // namespace vwr2a::kernels
