#pragma once
// VWR2A delineation kernel (paper Sec 4.4.2/5.2.2): min/max detection with
// threshold hysteresis -- the paper's showcase of control-intensive code on
// the architecture.
//
// Mapping (two kernels):
//  1. `flags`: a data-parallel candidate pass. For every sample the RCs
//     compute d_prev * d <= 0 (sign change of the discrete derivative),
//     which is a superset of the local extrema; slice-boundary samples are
//     conservatively flagged (their neighbours live in another RC's slice).
//     dsp::delineate_candidates proves hysteresis over any superset of the
//     local extrema equals the full serial scan.
//  2. `scan`: a serial pass owned by the LCU: a two-cycle skip loop over the
//     flag words (LSU pointer-addressed loads + branch-on-SRF), with the
//     full hysteresis state machine executed only at candidates. Records
//     (index*2 | is_max) are pushed into VWR C through RC0 with the MXCU
//     index acting as the record counter.
//
// Output matches dsp::delineate() exactly.

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.hpp"
#include "dsp/reference.hpp"
#include "isa/image_cache.hpp"
#include "kernels/host.hpp"

namespace vwr2a::kernels {

/// Run statistics.
struct DelineationStats {
  Cycle cycles = 0;
  unsigned candidates = 0;  ///< flagged samples visited by the serial scan
};

/// Maximum records per run (records live in one VWR slice).
inline constexpr unsigned kMaxExtrema = 32;

/// Delineation kernel family.
class DelineationKernels {
 public:
  /// `cache`, when given, shares assembled kernel images across instances
  /// (keys are namespaced by the Host's key prefix).
  explicit DelineationKernels(Host host, isa::ImageCache* cache = nullptr);

  /// Delineates n samples (n a multiple of 128, data resident in SPM rows
  /// [x_row0, x_row0 + n/128)), writing flag rows right above the data.
  /// `x0` is the first sample's value (the hysteresis seed; the host knows
  /// its own input). sys_scratch: >= 8 words for state initialization and
  /// record copy-out.
  std::vector<dsp::Extremum> run(unsigned n, unsigned x_row0, std::int32_t threshold,
                                 std::int32_t x0, unsigned sys_scratch,
                                 DelineationStats* stats = nullptr);

 private:
  unsigned flags_kernel(unsigned nrows);
  unsigned scan_kernel(unsigned n, unsigned x_row0);

  Host host_;
  isa::ImageCache* cache_ = nullptr;
  std::map<unsigned, unsigned> flags_ids_;
  std::map<std::uint64_t, unsigned> scan_ids_;
};

} // namespace vwr2a::kernels
