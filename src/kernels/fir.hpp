#pragma once
// VWR2A FIR filter kernel (paper Sec 4.4.1/5.1.2: 11 taps, both columns
// working on different slices of the input array).
//
// Mapping. The shared slice index forces all RCs to read the same in-slice
// word, so the input is *staged* with per-slice overlap ("careful data
// placement", Sec 3.3.2): each 32-word slice holds the full input window
// for 22 outputs -- slice j of staged row r contains
// x[22*(4r+j) - 10 .. 22*(4r+j) + 21]. For output k of a slice, tap t reads
// in-slice word (k + 10 - t); that index is identical across slices, so one
// MXCU walk serves all four RCs.
//
// The 11-tap MAC runs software-pipelined at 2 cycles/tap (the RC ALU has no
// fused MAC): multiply into R0, accumulate into R1, with the final
// accumulate steering straight into VWR C at in-slice word k. The 8-entry
// single-ported SRF cannot hold 11 coefficients plus the row pointer, so
// the LSU rotates taps 7..10 and 0..3 through SRF1..4 during the accumulate
// cycles (whose SRF port is free) -- an instructive case of the paper's
// single-ported-SRF constraint.
//
// Numerics: x in 16.15, taps in the q.16 coefficient format, truncating
// multiplies, matching dsp::fir_fx bit-for-bit.

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "isa/image_cache.hpp"
#include "kernels/host.hpp"

namespace vwr2a::kernels {

/// Outputs produced per slice per staged row.
inline constexpr unsigned kFirOutsPerSlice = 22;
/// Outputs per staged row (4 slices).
inline constexpr unsigned kFirOutsPerRow = 4 * kFirOutsPerSlice;
/// Number of filter taps.
inline constexpr unsigned kFirTaps = 11;

/// SPM row the staged taps occupy (word region 53*128..): callers that
/// track tap residency across runs watch this row's write stamp.
inline constexpr unsigned kFirTapRow = 53;

/// Run statistics.
struct FirRunStats {
  Cycle cycles = 0;
  unsigned launches = 0;
};

/// FIR-11 kernel family.
class FirKernels {
 public:
  /// `cache`, when given, shares assembled kernel images across instances
  /// (one assembly fleet-wide; each device still registers/loads its copy
  /// of the configuration state through its own config memory).
  explicit FirKernels(Host host, isa::ImageCache* cache = nullptr);

  /// One-time placement of a 16-word zero block (for the left boundary of
  /// the staging windows) at sys word address zeros_base.
  void prepare(unsigned zeros_base);

  /// Filters n samples of 16.15 data at sys_in with the 11 coefficient-
  /// format taps, writing n outputs to sys_out. n up to 1024.
  /// `taps_resident` skips the tap staging (poke + DMA into kFirTapRow):
  /// only pass true when `taps` are the ones staged by the previous call
  /// and the tap row's write stamp is unchanged since.
  FirRunStats fir11(unsigned n, const std::vector<std::int32_t>& taps,
                    unsigned sys_in, unsigned sys_out,
                    bool taps_resident = false);

  /// The launch-free prefix of fir11: validates, stages the taps and the
  /// overlapped input windows, writes the SRF parameters, and returns the
  /// kernel id ready to run -- everything up to (but not including) the
  /// kernel launch. The fleet batch path uses this to bring N devices to
  /// the launch point, replay them together, then finish each with
  /// fir11_finish; fir11() itself is begin + run + finish.
  unsigned fir11_begin(unsigned n, const std::vector<std::int32_t>& taps,
                       unsigned sys_in, bool taps_resident = false);

  /// The post-launch suffix of fir11: DMAs the n valid outputs back to
  /// sys_out. Only valid after the kernel returned by fir11_begin(n, ...)
  /// ran to completion.
  void fir11_finish(unsigned n, unsigned sys_out);

 private:
  unsigned kernel_for_rows(unsigned nrows);

  Host host_;
  isa::ImageCache* cache_ = nullptr;
  unsigned zeros_base_ = 0;
  bool prepared_ = false;
  // Kernels keyed by staged-row count (1..12); built lazily.
  std::vector<int> kernels_ = std::vector<int>(13, -1);
};

} // namespace vwr2a::kernels
