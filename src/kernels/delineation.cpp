#include "kernels/delineation.hpp"

#include "casm/builder.hpp"
#include "casm/factories.hpp"
#include "common/status.hpp"

namespace vwr2a::kernels {

namespace {

using namespace casm;
using isa::ColumnProgram;

constexpr unsigned kRowWords = arch::kVwrWords;
/// Record row (VWR C dumped here by the scan epilogue).
constexpr unsigned kRecRow = 51;
/// Hysteresis state words (row 52, after the SVM weight block).
constexpr unsigned kStImax = 52 * kRowWords + 16;
constexpr unsigned kStImin = 52 * kRowWords + 17;
constexpr unsigned kStArm = 52 * kRowWords + 18;  // 0 = either, 1 = last max,
                                                  // 2 = last min

// ---------------------------------------------------------------------------
// Flags pass (per column): per sample w in [1,30] of each slice,
//   flag[w] = (x[w]-x[w-1]) * (x[w+1]-x[w]) <= 0;
// slice-boundary samples (w = 0, 31) are flagged unconditionally.
// SRF0 = current data row (absolute); flags stored nrows above the data.
// ---------------------------------------------------------------------------
ColumnProgram flags_program(unsigned col, unsigned nrows_total) {
  const unsigned my_rows = (nrows_total + 1 - col) / 2;
  if (my_rows == 0) throw AsmError("flags_program: column has no rows");
  ProgramBuilder pb;
  pb.line().lcu(lcu_set(2, static_cast<int>(my_rows))).emit();
  Label row = pb.make_label();
  pb.bind(row);
  pb.line()
      .lsu(lsu_ld_vwr_srf(VwrSel::A, 0, 0))
      .lcu(lcu_set(0, 30))
      .mxcu(mxcu_set_idx(0))
      .emit();
  // Boundary w = 0.
  pb.line().rc_all(rc_mv(RcDst::kVwrC, RcSrc::kOne)).emit();
  // Interior w = 1..30; index walk per element: w-1, w, w, w+1, w+1, w.
  Label el = pb.make_label();
  pb.bind(el);
  pb.line().rc_all(rc_mv(RcDst::kR0, RcSrc::kVwrA)).mxcu(mxcu_add_idx(1)).emit();
  pb.line().rc_all(rc_sub(RcDst::kR0, RcSrc::kVwrA, RcSrc::kR0)).emit();
  pb.line().rc_all(rc_mv(RcDst::kR1, RcSrc::kVwrA)).mxcu(mxcu_add_idx(1)).emit();
  pb.line().rc_all(rc_sub(RcDst::kR1, RcSrc::kVwrA, RcSrc::kR1)).mxcu(mxcu_add_idx(-1)).emit();
  pb.line().rc_all(rc_op(RcOp::kSmul, RcDst::kR0, RcSrc::kR0, RcSrc::kR1)).emit();
  pb.line()
      .rc_all(rc_op(RcOp::kCmpLe, RcDst::kVwrC, RcSrc::kR0, RcSrc::kZero))
      .lcu(lcu_dbnz(0), el)
      .emit();
  // Boundary w = 31.
  pb.line().mxcu(mxcu_set_idx(31)).emit();
  pb.line().rc_all(rc_mv(RcDst::kVwrC, RcSrc::kOne)).emit();
  pb.line().lsu(lsu_st_vwr_srf(VwrSel::C, 0, static_cast<int>(nrows_total))).emit();
  pb.line().lcu(lcu_mv_srf(1, 0)).emit();
  pb.line().lcu(lcu_add(1, 2)).emit();
  pb.line().lcu(lcu_st_srf(0, 1)).emit();
  pb.line().lcu(lcu_dbnz(2), row).emit();
  pb.line().lcu(lcu_exit()).emit();
  return pb.build();
}

// ---------------------------------------------------------------------------
// Serial scan (column 0). SRF: 0 = flag word base, 1/2 = spills,
// 3 = threshold, 4 = cand_max, 5 = cand_min, 7 = loaded flag.
// LCU: r0 = v, r1/r2 = scratch, r3 = element countdown.
// Records -> VWR C slice 0 via RC0, MXCU idx = record count.
// ---------------------------------------------------------------------------
ColumnProgram scan_program(unsigned n, unsigned x_row0) {
  (void)n;  // element count reaches the kernel through SRF6 (imm10 is too
            // narrow for n - 1 at n >= 512); kept for the cache key
  const unsigned xbase = x_row0 * kRowWords;
  ProgramBuilder pb;
  Label skip = pb.make_label(), next = pb.make_label(), done = pb.make_label();
  Label cand = pb.make_label(), r1l = pb.make_label(), r2l = pb.make_label();
  Label chkmin = pb.make_label(), updmax = pb.make_label(), updmin = pb.make_label();
  Label recmax = pb.make_label(), recmin = pb.make_label();

  pb.line().lsu(lsu_setptr(0, 0, 1)).mxcu(mxcu_set_idx(0)).emit();
  // Element count n-1 exceeds the 10-bit LCU immediate; SRF6 carries it.
  pb.line().lcu(lcu_mv_srf(3, 6)).emit();
  pb.bind(skip);
  pb.line().lsu(lsu_ld_srf_ptr(7, 0, 1)).emit();
  pb.line().lcu(lcu_bsrfnz(7), cand).emit();
  pb.bind(next);
  pb.line().lcu(lcu_dbnz(3), skip).emit();
  pb.bind(done);
  pb.line().mxcu(MxcuInstr{MxcuOp::kStIdxSrf, 7, 0}).emit();  // count -> SRF7
  pb.line().lsu(lsu_st_vwr(VwrSel::C, kRecRow)).emit();
  pb.line().lcu(lcu_exit()).emit();

  pb.bind(cand);
  pb.line().lcu(lcu_mv_srf(1, 6)).emit();        // r1 = n - 1
  pb.line().lcu(lcu_subr(1, 3)).emit();
  pb.line().lcu(lcu_add(1, 1)).emit();           // r1 = i = n - r3
  pb.line().lcu(lcu_st_srf(1, 1)).emit();        // srf1 = i
  pb.line().lsu(lsu_setptr(1, 1, static_cast<int>(xbase))).emit();
  pb.line().lsu(lsu_ld_srf_ptr(2, 1, 0)).emit(); // srf2 = v
  pb.line().lcu(lcu_mv_srf(0, 2)).emit();        // r0 = v
  pb.line().lcu(lcu_mv_srf(2, 4)).emit();        // r2 = cand_max
  pb.line().lcu(lcu_blt(2, 0), updmax).emit();   // v > cand_max ?
  pb.bind(r1l);
  pb.line().lcu(lcu_mv_srf(2, 5)).emit();        // r2 = cand_min
  pb.line().lcu(lcu_blt(0, 2), updmin).emit();   // v < cand_min ?
  pb.bind(r2l);
  pb.line().lsu(lsu_ld_srf(2, kStArm)).emit();   // srf2 = arm state
  pb.line().lcu(lcu_mv_srf(2, 2)).emit();        // r2 = arm
  pb.line().lcu(lcu_beq_imm(2, 1), chkmin).emit();  // last was max -> skip
  pb.line().lcu(lcu_mv_srf(2, 4)).emit();        // r2 = cand_max
  pb.line().lcu(lcu_subr(2, 0)).emit();          // r2 = cand_max - v
  pb.line().lcu(lcu_mv_srf(1, 3)).emit();        // r1 = T
  pb.line().lcu(lcu_blt(1, 2), recmax).emit();   // cand_max - v > T ?
  pb.bind(chkmin);
  pb.line().lsu(lsu_ld_srf(2, kStArm)).emit();   // reload arm (r2 clobbered)
  pb.line().lcu(lcu_mv_srf(2, 2)).emit();
  pb.line().lcu(lcu_beq_imm(2, 2), next).emit();  // last was min -> skip
  pb.line().lcu(lcu_mv_srf(1, 5)).emit();        // r1 = cand_min
  pb.line().lcu(lcu_mvr(2, 0)).emit();
  pb.line().lcu(lcu_subr(2, 1)).emit();          // r2 = v - cand_min
  pb.line().lcu(lcu_mv_srf(1, 3)).emit();        // r1 = T
  pb.line().lcu(lcu_blt(1, 2), recmin).emit();   // v - cand_min > T ?
  pb.line().lcu(lcu_b(), next).emit();

  pb.bind(updmax);
  pb.line().lcu(lcu_st_srf(4, 0)).emit();        // cand_max = v
  pb.line().lsu(lsu_st_srf(1, kStImax)).emit();  // imax = i
  pb.line().lcu(lcu_b(), r1l).emit();
  pb.bind(updmin);
  pb.line().lcu(lcu_st_srf(5, 0)).emit();        // cand_min = v
  pb.line().lsu(lsu_st_srf(1, kStImin)).emit();  // imin = i
  pb.line().lcu(lcu_b(), r2l).emit();

  pb.bind(recmax);
  pb.line().lsu(lsu_ld_srf(2, kStImax)).emit();  // srf2 = imax
  pb.line().lcu(lcu_mv_srf(2, 2)).emit();
  pb.line().lcu(lcu_addr(2, 2)).emit();          // r2 = 2*imax
  pb.line().lcu(lcu_add(2, 1)).emit();           // | 1 (max tag)
  pb.line().lcu(lcu_st_srf(2, 2)).emit();        // srf2 = record
  pb.line()
      .rc(0, rc_mv(RcDst::kVwrC, RcSrc::kSrf, 2))
      .mxcu(mxcu_add_idx(1))
      .emit();                                    // push record
  pb.line().lcu(lcu_set(2, 1)).emit();
  pb.line().lcu(lcu_st_srf(2, 2)).emit();
  pb.line().lsu(lsu_st_srf(2, kStArm)).emit();   // arm = 1 (last was max)
  pb.line().lcu(lcu_st_srf(5, 0)).emit();        // cand_min = v
  pb.line().lsu(lsu_st_srf(1, kStImin)).emit();  // imin = i
  pb.line().lcu(lcu_b(), next).emit();

  pb.bind(recmin);
  pb.line().lsu(lsu_ld_srf(2, kStImin)).emit();
  pb.line().lcu(lcu_mv_srf(2, 2)).emit();
  pb.line().lcu(lcu_addr(2, 2)).emit();          // r2 = 2*imin (min tag 0)
  pb.line().lcu(lcu_st_srf(2, 2)).emit();
  pb.line()
      .rc(0, rc_mv(RcDst::kVwrC, RcSrc::kSrf, 2))
      .mxcu(mxcu_add_idx(1))
      .emit();
  pb.line().lcu(lcu_set(2, 2)).emit();
  pb.line().lcu(lcu_st_srf(2, 2)).emit();
  pb.line().lsu(lsu_st_srf(2, kStArm)).emit();   // arm = 2 (last was min)
  pb.line().lcu(lcu_st_srf(4, 0)).emit();        // cand_max = v
  pb.line().lsu(lsu_st_srf(1, kStImax)).emit();  // imax = i
  pb.line().lcu(lcu_b(), next).emit();

  return pb.build();
}

} // namespace

DelineationKernels::DelineationKernels(Host host, isa::ImageCache* cache)
    : host_(host), cache_(cache) {}

unsigned DelineationKernels::flags_kernel(unsigned nrows) {
  auto it = flags_ids_.find(nrows);
  if (it != flags_ids_.end()) return it->second;
  const std::string name = "delin_flags_r" + std::to_string(nrows);
  const unsigned id = host_.register_image(cache_, name, [&] {
    if (nrows == 1) return make_kernel(name, 0, flags_program(0, 1));
    return make_kernel2(name, flags_program(0, nrows), flags_program(1, nrows));
  });
  flags_ids_.emplace(nrows, id);
  return id;
}

unsigned DelineationKernels::scan_kernel(unsigned n, unsigned x_row0) {
  const std::uint64_t key = (static_cast<std::uint64_t>(n) << 32) | x_row0;
  auto it = scan_ids_.find(key);
  if (it != scan_ids_.end()) return it->second;
  const std::string name = "delin_scan_n" + std::to_string(n) + "_r" +
                           std::to_string(x_row0);
  const unsigned id = host_.register_image(cache_, name, [&] {
    return make_kernel(name, 0, scan_program(n, x_row0));
  });
  scan_ids_.emplace(key, id);
  return id;
}

std::vector<dsp::Extremum> DelineationKernels::run(unsigned n, unsigned x_row0,
                                                   std::int32_t threshold,
                                                   std::int32_t x0,
                                                   unsigned sys_scratch,
                                                   DelineationStats* stats) {
  if (n % kRowWords != 0 || n < kRowWords) {
    throw HostError("DelineationKernels: n must be a multiple of 128");
  }
  const unsigned nrows = n / kRowWords;
  const Cycle t0 = host_.acc().cycles();

  // Phase 1: candidate flags (both columns).
  host_.srf(0, 0, x_row0);
  if (nrows > 1) host_.srf(1, 0, x_row0 + 1);
  host_.run(flags_kernel(nrows));

  // Hysteresis state init (imax = imin = 0, arm = either).
  for (unsigned i = 0; i < 3; ++i) host_.sram().poke(sys_scratch + i, 0);
  host_.dma({dma::Dir::kSysToSpm, sys_scratch, kStImax, 3, 1, 1});

  // Phase 2: serial scan on column 0.
  host_.srf(0, 0, (x_row0 + nrows) * kRowWords);
  host_.srf(0, 6, n - 1);
  host_.srf(0, 3, static_cast<Word>(threshold));
  host_.srf(0, 4, static_cast<Word>(x0));
  host_.srf(0, 5, static_cast<Word>(x0));
  host_.run(scan_kernel(n, x_row0));

  const unsigned count = host_.acc().host_read_srf(0, 7);
  if (count > kMaxExtrema) {
    throw SimError("DelineationKernels: record buffer overflow");
  }
  std::vector<dsp::Extremum> out;
  if (count > 0) {
    host_.dma({dma::Dir::kSpmToSys, sys_scratch + 8, kRecRow * kRowWords,
               count, 1, 1});
    for (unsigned i = 0; i < count; ++i) {
      const Word w = host_.sram().peek(sys_scratch + 8 + i);
      out.push_back({w >> 1, (w & 1u) != 0});
    }
  }
  if (stats != nullptr) {
    stats->cycles += host_.acc().cycles() - t0;
  }
  return out;
}

} // namespace vwr2a::kernels
