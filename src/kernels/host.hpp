#pragma once
// Host-side driver context shared by all VWR2A kernels: the accelerator,
// the system SRAM it DMAs against, and an optional CPU meter that charges
// the Cortex-M4's programming/interrupt overhead (the paper notes this
// overhead is what makes VWR2A slightly slower than the FFT accelerator at
// small sizes, Sec 5.1.1).

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "cgra/vwr2a.hpp"
#include "cpu/m4.hpp"
#include "dma/dma.hpp"
#include "isa/image_cache.hpp"
#include "mem/sram.hpp"

namespace vwr2a::kernels {

/// CPU cycles to program one accelerator request (slave-port writes).
inline constexpr unsigned kHostProgramCycles = 18;
/// CPU cycles to service one completion interrupt.
inline constexpr unsigned kHostIrqCycles = 10;

/// Driver context. Does not own anything.
///
/// `key_prefix` namespaces every image-cache key issued through this host
/// (see register_image): devices of different architecture variants must
/// not alias one another's cache entries, so a fleet prefixes keys with the
/// device's soc::ArchConfig::name().
class Host {
 public:
  Host(cgra::Vwr2a& acc, mem::SystemSram& sram, cpu::M4Meter* cpu = nullptr,
       std::string key_prefix = "")
      : acc_(&acc), sram_(&sram), cpu_(cpu), key_prefix_(std::move(key_prefix)) {}

  cgra::Vwr2a& acc() { return *acc_; }
  mem::SystemSram& sram() { return *sram_; }

  /// Charges one programming + interrupt round trip on the CPU.
  void charge_control() {
    if (cpu_ != nullptr) cpu_->idle_cycles(kHostProgramCycles + kHostIrqCycles);
  }

  /// Runs one DMA descriptor (synchronous driver model).
  Cycle dma(const dma::Descriptor& d) {
    charge_control();
    return acc_->dma_transfer(d);
  }

  /// Writes a kernel parameter into a column's SRF.
  void srf(unsigned col, unsigned idx, Word v) { acc_->host_write_srf(col, idx, v); }

  /// Registers `build()`'s image with the device -- via `cache` (keyed by
  /// `key`) when one is given, so a fleet of devices assembles each kernel
  /// once and shares the immutable image. The common path for every kernel
  /// family's lazy registration.
  unsigned register_image(isa::ImageCache* cache, const std::string& key,
                          const std::function<isa::KernelImage()>& build) {
    if (cache != nullptr) {
      return acc_->register_kernel(cache->get_or_build(key_prefix_ + key, build));
    }
    return acc_->register_kernel(build());
  }

  /// Launches a kernel and runs it to completion.
  Cycle run(unsigned kernel_id) {
    charge_control();
    return acc_->run_kernel(kernel_id);
  }

  // --- host data movement into/out of system SRAM (CPU-owned buffers; the
  // cost of producing the data belongs to the application, not the driver,
  // so these are free backdoors used by benches/tests to place inputs).
  void to_sram(unsigned word_addr, std::span<const std::int32_t> data) {
    for (std::size_t i = 0; i < data.size(); ++i) {
      sram_->poke(word_addr + static_cast<unsigned>(i),
                  static_cast<Word>(data[i]));
    }
  }
  std::vector<std::int32_t> from_sram(unsigned word_addr, std::size_t n) const {
    std::vector<std::int32_t> out(n);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = static_cast<std::int32_t>(sram_->peek(word_addr + static_cast<unsigned>(i)));
    }
    return out;
  }

 private:
  cgra::Vwr2a* acc_;
  mem::SystemSram* sram_;
  cpu::M4Meter* cpu_;
  std::string key_prefix_;
};

} // namespace vwr2a::kernels
