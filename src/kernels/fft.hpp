#pragma once
// VWR2A FFT kernels (paper Sec 3.4) -- the reproduction's centerpiece.
//
// Algorithm: the in-place radix-2 FFT of the paper is realized in its
// constant-geometry (Pease) form, because the CG stage's data reordering is
// the perfect shuffle -- exactly the shuffle unit's "words interleaving"
// operation, which the paper says "creates the correct data layout for the
// next stage". Data lives in the SPM as separate re/im planes (SoA) so
// every stage is a sequence of whole-row elementwise passes:
//
//   per 128-butterfly chunk:  sum   = a + b            (VWR elementwise)
//                             diff  = a - b
//                             t     = diff * w          (16.15 multiplies)
//                             out   = interleave(sum, t)  (shuffle unit)
//
// Twiddles: stage 0's plane is DMA'd from system memory once; each next
// stage's plane satisfies T_{s+1}[i] = T_s[i & ~1], which the shuffle unit
// computes in place (even-prune then interleave) -- no further DMA.
//
// Output appears bit-reversed (as the paper notes); the bit-reversal
// shuffle fixes each 256-word block and a strided DMA completes the global
// permutation on copy-out.
//
// Sizes: complex 256/512/1024 points SPM-resident; 2048 points via the
// two-level decomposition FFT2048 = combine(FFT1024(evens), FFT1024(odds))
// with DMA streaming (the SPM cannot hold 2048 x 2 x 32-bit in+out buffers,
// matching the paper's in-place motivation). Real-valued sizes 512/1024/
// 2048 use the N/2-complex packing plus an untangling pass (Sec 3.4).
//
// Numerics are bit-exact against dsp::pease_fft_fx / dsp::rfft_fx (same
// 16.15 truncating multiplies and 32-bit wrap adds as the RC ALU).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "isa/image_cache.hpp"
#include "kernels/host.hpp"

namespace vwr2a::kernels {

/// Result of one FFT run.
struct FftRunStats {
  Cycle cycles = 0;        ///< VWR2A-side cycles (DMA + config + execute)
  unsigned launches = 0;   ///< kernel launches issued by the driver
};

/// FFT kernel family: builds and registers the stage/expand/bitrev/untangle
/// /combine kernel images against one Vwr2a instance and drives them.
class FftKernels {
 public:
  /// Registers the kernel images (configuration memory is written at boot).
  /// `cache`, when given, shares assembled images across instances so a
  /// fleet of devices assembles each program once.
  explicit FftKernels(Host host, isa::ImageCache* cache = nullptr);

  /// One-time placement of the twiddle tables in system memory (the CPU
  /// image carries them as constant data; placement is not charged).
  /// Reserves [tw_base, tw_base + table_words()) system words.
  void prepare(unsigned tw_base);

  /// Words of system memory used by the twiddle tables.
  static unsigned table_words();

  /// Complex FFT, n in {256, 512, 1024, 2048}. Input: 2n words at sys_in
  /// (interleaved re,im in 16.15). Output: 2n words at sys_out, natural
  /// order, interleaved. sys_scratch: 4n words of workspace (used only for
  /// n == 2048).
  FftRunStats cfft(unsigned n, unsigned sys_in, unsigned sys_out,
                   unsigned sys_scratch);

  /// Real FFT, n in {512, 1024, 2048}: n reals at sys_in (16.15), n/2+1
  /// complex bins at sys_out (interleaved), natural order. sys_scratch:
  /// 2n words.
  FftRunStats rfft(unsigned n, unsigned sys_in, unsigned sys_out,
                   unsigned sys_scratch);

  /// Inverse complex FFT (the fixed-function engine also offers inverse
  /// transforms, Sec 4.1): conjugate -> forward CG-FFT -> conjugate and
  /// shift by log2(n). n in {256, 512, 1024}. Matches dsp::pease_ifft_fx.
  FftRunStats cifft(unsigned n, unsigned sys_in, unsigned sys_out);

  /// Runs only the SPM-resident stage pipeline on data already loaded in
  /// the SPM planes (used by the application, which keeps the filtered
  /// signal resident; see paper Sec 5.2.3). Input/output in SPM buffers.
  /// Returns the buffer index (0/1) holding the bit-reversed result.
  unsigned run_stages(unsigned n, FftRunStats& stats);

  /// SPM row of plane base: buffer b (0/1), plane p (0 = re, 1 = im),
  /// for transform size n.
  static unsigned plane_row(unsigned n, unsigned buf, unsigned plane);

  /// Test hook: runs exactly one CG stage (data already in buf_in planes,
  /// twiddle plane for the stage already in the T rows).
  void run_single_stage(unsigned n, unsigned buf_in, unsigned buf_out,
                        FftRunStats& stats) {
    stage_chunk(n, buf_in, buf_out, 0, rows_of_public(n) / 2, stats);
  }
  /// Test hook: DMA the stage-0 twiddle plane into the T rows.
  void load_t0_public(unsigned n, FftRunStats& stats) { load_t0(n, stats); }
  /// Test hook: expand the resident twiddle plane to the next stage.
  void expand_public(unsigned n, FftRunStats& stats) { expand_twiddles(n, stats); }
  static unsigned rows_of_public(unsigned n) { return n / 128; }

 private:
  void stage_chunk(unsigned n, unsigned stage_buf_in, unsigned stage_buf_out,
                   unsigned chunk0, unsigned nchunks, FftRunStats& stats);
  void expand_twiddles(unsigned n, FftRunStats& stats);
  void load_t0(unsigned n, FftRunStats& stats);
  /// Bit-reversal copy-out of an SPM-resident plane pair to system memory.
  /// `interleave`: write re/im interleaved (stride 2M) or planar (stride M).
  void bitrev_out(unsigned n, unsigned buf, unsigned sys_out, bool interleave,
                  FftRunStats& stats);
  FftRunStats cfft_resident(unsigned n, unsigned sys_in, unsigned sys_out,
                            bool planar_out);
  FftRunStats cfft2048(unsigned sys_in, unsigned sys_out, unsigned sys_scratch);

  /// Unary in-place row kernels used by the inverse transform.
  unsigned neg_kernel(unsigned nrows);
  unsigned negsar_kernel(unsigned nrows, unsigned shift);
  unsigned sar_kernel(unsigned nrows, unsigned shift);

  /// Registers `build()`'s image with the device, via the shared cache when
  /// one is attached (the cache key is `key`).
  unsigned register_image(const std::string& key,
                          const std::function<isa::KernelImage()>& build);

  Host host_;
  isa::ImageCache* cache_ = nullptr;
  unsigned k_stage_pair_ = 0;    ///< two-column stage-chunk kernel
  unsigned k_stage_single_ = 0;  ///< single-column variant
  unsigned k_expand_ = 0;        ///< twiddle-plane expansion
  unsigned k_bitrev_ = 0;        ///< bit-reversal of one row pair
  unsigned k_untangle_ = 0;      ///< real-FFT untangling chunk
  unsigned k_combine_ = 0;       ///< 2048-point combining chunk
  unsigned tw_base_ = 0;         ///< system-memory twiddle tables
  bool prepared_ = false;
  std::vector<int> unary_ids_ = std::vector<int>(4 * 33, -1);
};

} // namespace vwr2a::kernels
