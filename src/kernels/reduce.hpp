#pragma once
// Reduction and small-vector kernels used by the feature-extraction step
// (paper Sec 4.4.2): sum (mean), sum of squares (RMS / spectral power),
// count-below-pivot (median by bisection), masked spectral power (band
// features straight from the bit-reversed resident spectrum), a plane
// zeroing kernel, and a serial dot product (linear SVM).
//
// All reductions accumulate per-RC in R1 across rows, then merge across the
// column through the neighbour network (RC1 += RC0, RC2 += RC1, RC3 += RC2)
// and publish the scalar through the SRF, where the host reads it.

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "isa/image_cache.hpp"
#include "kernels/host.hpp"

namespace vwr2a::kernels {

/// Kernel launches of one host-driven bisection over count_le (the signal
/// range is (-2, 2) in 16.15 -- 18 significant bits, so 18 probes resolve
/// any min/max/median exactly).
inline constexpr unsigned kBisectLaunches = 18;

/// Reduction flavour.
enum class Reduce : std::uint8_t {
  kSum = 0,     ///< sum of elements
  kSumSq,       ///< sum of fxp squares
  kCountLe,     ///< count of elements <= SRF pivot
  kMaskedSq,    ///< sum of mask[i] * x[i]^2 (mask rows parallel to data rows)
};

/// Reduction / SVM kernel family.
class ReduceKernels {
 public:
  /// `cache`, when given, shares assembled kernel images across instances
  /// (keys are namespaced by the Host's key prefix).
  explicit ReduceKernels(Host host, isa::ImageCache* cache = nullptr);

  /// Sum of `nrows` SPM rows starting at `row0`.
  std::int32_t sum_rows(unsigned row0, unsigned nrows, Cycle* cycles = nullptr);

  /// Sum of fxp squares of `nrows` rows.
  std::int32_t sumsq_rows(unsigned row0, unsigned nrows, Cycle* cycles = nullptr);

  /// Count of elements <= pivot over `nrows` rows.
  std::int32_t count_le_rows(unsigned row0, unsigned nrows, std::int32_t pivot,
                             Cycle* cycles = nullptr);

  /// Sum of mask * x^2 with data rows at row0 and mask rows at mask_row0
  /// (same count). Mask entries are q.16 coefficients (0 / 65536 for plain
  /// band selection).
  std::int32_t masked_power(unsigned row0, unsigned mask_row0, unsigned nrows,
                            Cycle* cycles = nullptr);

  /// Median of n = nrows*128 values (16.15) resident in SPM rows, by
  /// host-driven bisection over count_le (kBisectLaunches iterations for
  /// the [-2,2) signal range). Matches dsp::median_i32 on the same data.
  std::int32_t median_rows(unsigned row0, unsigned nrows, Cycle* cycles = nullptr);

  /// Minimum of the resident values: the smallest m with count(x <= m) >= 1,
  /// by the same bisection. Values must lie in the 18-bit signal range
  /// [-2^17, 2^17). Matches *std::min_element on the same data.
  std::int32_t min_rows(unsigned row0, unsigned nrows, Cycle* cycles = nullptr);

  /// Maximum of the resident values: the smallest m with count(x <= m) >= n.
  /// Same range contract as min_rows; matches *std::max_element.
  std::int32_t max_rows(unsigned row0, unsigned nrows, Cycle* cycles = nullptr);

  /// Zeroes `nrows` rows starting at row0 (used to clear the imaginary
  /// plane before a real-input resident FFT).
  void zero_rows(unsigned row0, unsigned nrows, Cycle* cycles = nullptr);

  /// Serial dot product: nf features in slice 0 of `feat_row`, nf q.16
  /// weights at SPM word address `w_words`. Returns sum(f[i]*w[i]) in 16.15.
  std::int32_t dot(unsigned feat_row, unsigned w_words, unsigned nf,
                   Cycle* cycles = nullptr);

 private:
  std::int32_t run_reduce(unsigned kernel, unsigned row0, unsigned extra_srf1,
                          Cycle* cycles);
  /// Smallest m in [-2^17, 2^17) with count(x <= m) >= need.
  std::int32_t bisect_count(unsigned row0, unsigned nrows, std::int32_t need,
                            Cycle* cycles);
  unsigned reduce_kernel(Reduce r, unsigned nrows);
  unsigned dot_kernel(unsigned nf);
  unsigned zero_kernel(unsigned nrows);

  Host host_;
  isa::ImageCache* cache_ = nullptr;
  // Lazily built kernels keyed by (flavour, nrows) / nf.
  std::vector<std::vector<int>> reduce_ids_;
  std::vector<int> dot_ids_ = std::vector<int>(33, -1);
  std::vector<int> zero_ids_ = std::vector<int>(33, -1);
};

} // namespace vwr2a::kernels
