#include "kernels/fft.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "casm/builder.hpp"
#include "casm/factories.hpp"
#include "common/bits.hpp"
#include "common/status.hpp"
#include "dsp/reference.hpp"

namespace vwr2a::kernels {

namespace {

using namespace casm;
using isa::ColumnProgram;

// Scratch SPM rows, per column (disjoint so both columns can run).
constexpr unsigned kScr0 = 54;  // col0: rows 54..58
constexpr unsigned kScr1 = 59;  // col1: rows 59..63

constexpr unsigned kRowWords = arch::kVwrWords;  // 128

unsigned rows_of(unsigned n) { return n / kRowWords; }

/// Rows allocated per twiddle plane (re or im): the expansion kernel always
/// writes destination row pairs, so at least two rows are reserved.
unsigned tw_rows(unsigned n) { return std::max(2u, rows_of(n) / 2); }

/// One-line 32-iteration elementwise loop. A previous line must have set
/// LCU r0 = 32 and MXCU idx = 0.
void emit_loop1(ProgramBuilder& pb, const isa::RcInstr& op) {
  Label l = pb.make_label();
  pb.bind(l);
  pb.line().rc_all(op).mxcu(mxcu_add_idx(1)).lcu(lcu_dbnz(0), l).emit();
}

/// Two-line 32-iteration loop (both ops applied per element, same index).
void emit_loop2(ProgramBuilder& pb, const isa::RcInstr& op_a,
                const isa::RcInstr& op_b) {
  Label l = pb.make_label();
  pb.bind(l);
  pb.line().rc_all(op_a).emit();
  pb.line().rc_all(op_b).mxcu(mxcu_add_idx(1)).lcu(lcu_dbnz(0), l).emit();
}

/// Four-line 32-iteration loop.
void emit_loop4(ProgramBuilder& pb, const isa::RcInstr& a, const isa::RcInstr& b,
                const isa::RcInstr& c, const isa::RcInstr& d) {
  Label l = pb.make_label();
  pb.bind(l);
  pb.line().rc_all(a).emit();
  pb.line().rc_all(b).emit();
  pb.line().rc_all(c).emit();
  pb.line().rc_all(d).mxcu(mxcu_add_idx(1)).lcu(lcu_dbnz(0), l).emit();
}

LsuInstr ld(VwrSel v, std::uint8_t srf_base, int off = 0) {
  return lsu_ld_vwr_srf(v, srf_base, off);
}
LsuInstr st(VwrSel v, std::uint8_t srf_base, int off = 0) {
  return lsu_st_vwr_srf(v, srf_base, off);
}
LsuInstr ldi(VwrSel v, unsigned row) { return lsu_ld_vwr(v, row); }
LsuInstr sti(VwrSel v, unsigned row) { return lsu_st_vwr(v, row); }

// ---------------------------------------------------------------------------
// Stage-chunk program: one column processes one 128-butterfly CG-DIF stage
// chunk:  out[2i] = a+b, out[2i+1] = (a-b)*w, outputs interleaved into the
// two destination rows by the shuffle unit.
// SRF: 0=a_re 1=a_im 2=b_re 3=b_im 4=w_re 5=w_im 6=out_re 7=out_im.
// ---------------------------------------------------------------------------
ColumnProgram stage_chunk_program(unsigned scr) {
  const unsigned S_SUMRE = scr + 0, S_SUMIM = scr + 1, S_P1 = scr + 2,
                 S_P2 = scr + 3, S_P3 = scr + 4;
  ProgramBuilder pb;
  // Real plane: C = a+b (sum), A = a-b (diff).
  pb.line().lsu(ld(VwrSel::A, 0)).lcu(lcu_set(0, 32)).emit();
  pb.line().lsu(ld(VwrSel::B, 2)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop2(pb, rc_add(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kVwrB),
             rc_sub(RcDst::kVwrA, RcSrc::kVwrA, RcSrc::kVwrB));
  pb.line().lsu(sti(VwrSel::C, S_SUMRE)).emit();
  // p1 = diff_re * w_re; p2 = diff_re * w_im.
  pb.line().lsu(ld(VwrSel::B, 4)).lcu(lcu_set(0, 32)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_fxpmul(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kVwrB));
  pb.line().lsu(sti(VwrSel::C, S_P1)).lcu(lcu_set(0, 32)).emit();
  pb.line().lsu(ld(VwrSel::B, 5)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_fxpmul(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kVwrB));
  pb.line().lsu(sti(VwrSel::C, S_P2)).emit();
  // Imaginary plane: C = sum_im, A = diff_im.
  pb.line().lsu(ld(VwrSel::A, 1)).lcu(lcu_set(0, 32)).emit();
  pb.line().lsu(ld(VwrSel::B, 3)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop2(pb, rc_add(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kVwrB),
             rc_sub(RcDst::kVwrA, RcSrc::kVwrA, RcSrc::kVwrB));
  pb.line().lsu(sti(VwrSel::C, S_SUMIM)).emit();
  // p3 = diff_im * w_im; p4 = diff_im * w_re (left in C).
  pb.line().lsu(ld(VwrSel::B, 5)).lcu(lcu_set(0, 32)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_fxpmul(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kVwrB));
  pb.line().lsu(sti(VwrSel::C, S_P3)).emit();
  pb.line().lsu(ld(VwrSel::B, 4)).lcu(lcu_set(0, 32)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_fxpmul(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kVwrB));
  // t_im = p2 + p4 -> B; out_im = interleave(sum_im, t_im).
  pb.line().lsu(ldi(VwrSel::A, S_P2)).lcu(lcu_set(0, 32)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_add(RcDst::kVwrB, RcSrc::kVwrA, RcSrc::kVwrC));
  pb.line().lsu(ldi(VwrSel::A, S_SUMIM)).emit();
  pb.line().lsu(lsu_shuf(ShufMode::kInterleaveLo)).emit();
  pb.line().lsu(st(VwrSel::C, 7, 0)).emit();
  pb.line().lsu(lsu_shuf(ShufMode::kInterleaveHi)).emit();
  pb.line().lsu(st(VwrSel::C, 7, 1)).emit();
  // t_re = p1 - p3 -> B; out_re = interleave(sum_re, t_re).
  pb.line().lsu(ldi(VwrSel::A, S_P1)).lcu(lcu_set(0, 32)).emit();
  pb.line().lsu(ldi(VwrSel::B, S_P3)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_sub(RcDst::kVwrB, RcSrc::kVwrA, RcSrc::kVwrB));
  pb.line().lsu(ldi(VwrSel::A, S_SUMRE)).emit();
  pb.line().lsu(lsu_shuf(ShufMode::kInterleaveLo)).emit();
  pb.line().lsu(st(VwrSel::C, 6, 0)).emit();
  pb.line().lsu(lsu_shuf(ShufMode::kInterleaveHi)).emit();
  pb.line().lsu(st(VwrSel::C, 6, 1)).emit();
  pb.line().lcu(lcu_exit()).emit();
  return pb.build();
}

// ---------------------------------------------------------------------------
// Split-chunk programs: the two columns cooperate on ONE chunk (used when a
// stage has a single chunk, e.g. the 256-point FFT). Column 0 owns the real
// plane, column 1 the imaginary plane; the two cross products are exchanged
// through the SPM under the lock-step PC. Programs are line-aligned so the
// exchange timing is deterministic.
// ---------------------------------------------------------------------------
ColumnProgram split_chunk_re_program() {
  const unsigned S_SUM = kScr0 + 0, S_P1 = kScr0 + 1, S_P2 = kScr0 + 2;
  const unsigned S1_P3 = kScr1 + 1;  // written by column 1
  ProgramBuilder pb;
  pb.line().lsu(ld(VwrSel::A, 0)).lcu(lcu_set(0, 32)).emit();
  pb.line().lsu(ld(VwrSel::B, 2)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop2(pb, rc_add(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kVwrB),
             rc_sub(RcDst::kVwrA, RcSrc::kVwrA, RcSrc::kVwrB));
  pb.line().lsu(sti(VwrSel::C, S_SUM)).emit();
  pb.line().lsu(ld(VwrSel::B, 4)).lcu(lcu_set(0, 32)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_fxpmul(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kVwrB));
  pb.line().lsu(sti(VwrSel::C, S_P1)).lcu(lcu_set(0, 32)).emit();
  pb.line().lsu(ld(VwrSel::B, 5)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_fxpmul(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kVwrB));
  pb.line().lsu(sti(VwrSel::C, S_P2)).emit();
  // Column 1 stored p3 = diff_im*w_im at its line 10 (cycle-aligned, both
  // columns execute the same loop structure); safe to read from line 11 on.
  pb.line().lsu(ldi(VwrSel::A, S_P1)).lcu(lcu_set(0, 32)).emit();
  pb.line().lsu(ldi(VwrSel::B, S1_P3)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_sub(RcDst::kVwrB, RcSrc::kVwrA, RcSrc::kVwrB));
  pb.line().lsu(ldi(VwrSel::A, S_SUM)).emit();
  pb.line().lsu(lsu_shuf(ShufMode::kInterleaveLo)).emit();
  pb.line().lsu(st(VwrSel::C, 6, 0)).emit();
  pb.line().lsu(lsu_shuf(ShufMode::kInterleaveHi)).emit();
  pb.line().lsu(st(VwrSel::C, 6, 1)).emit();
  pb.line().lcu(lcu_exit()).emit();
  return pb.build();
}

ColumnProgram split_chunk_im_program() {
  const unsigned S_SUM = kScr1 + 0, S_P3 = kScr1 + 1, S_P4 = kScr1 + 2;
  const unsigned S0_P2 = kScr0 + 2;  // written by column 0
  ProgramBuilder pb;
  pb.line().lsu(ld(VwrSel::A, 1)).lcu(lcu_set(0, 32)).emit();
  pb.line().lsu(ld(VwrSel::B, 3)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop2(pb, rc_add(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kVwrB),
             rc_sub(RcDst::kVwrA, RcSrc::kVwrA, RcSrc::kVwrB));
  pb.line().lsu(sti(VwrSel::C, S_SUM)).emit();
  pb.line().lsu(ld(VwrSel::B, 5)).lcu(lcu_set(0, 32)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_fxpmul(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kVwrB));
  pb.line().lsu(sti(VwrSel::C, S_P3)).lcu(lcu_set(0, 32)).emit();
  pb.line().lsu(ld(VwrSel::B, 4)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_fxpmul(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kVwrB));
  pb.line().lsu(sti(VwrSel::C, S_P4)).emit();
  // t_im = p2 (from column 0) + p4.
  pb.line().lsu(ldi(VwrSel::A, S0_P2)).lcu(lcu_set(0, 32)).emit();
  pb.line().lsu(ldi(VwrSel::B, S_P4)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_add(RcDst::kVwrB, RcSrc::kVwrA, RcSrc::kVwrB));
  pb.line().lsu(ldi(VwrSel::A, S_SUM)).emit();
  pb.line().lsu(lsu_shuf(ShufMode::kInterleaveLo)).emit();
  pb.line().lsu(st(VwrSel::C, 7, 0)).emit();
  pb.line().lsu(lsu_shuf(ShufMode::kInterleaveHi)).emit();
  pb.line().lsu(st(VwrSel::C, 7, 1)).emit();
  pb.line().lcu(lcu_exit()).emit();
  return pb.build();
}

// ---------------------------------------------------------------------------
// Twiddle-plane expansion: the stage-s plane has runs of 2^s equal twiddles
// and satisfies T_{s+1} = interleave(D, D) with D[m] = T_s[m]^2 (complex
// square). One launch squares source row r' of both planes and interleaves
// the result into destination rows (2r', 2r'+1).
// SRF: 0 = src re row, 1 = src im row, 2 = dst re pair, 3 = dst im pair.
// ---------------------------------------------------------------------------
ColumnProgram expand_program() {
  const unsigned S1 = kScr0 + 0, S2 = kScr0 + 1, S3 = kScr0 + 2;
  ProgramBuilder pb;
  // re^2 -> S1.
  pb.line().lsu(ld(VwrSel::A, 0)).lcu(lcu_set(0, 32)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_fxpmul(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kVwrA));
  pb.line().lsu(sti(VwrSel::C, S1)).emit();
  // im^2 -> C; D_re = S1 - C -> B -> S2.
  pb.line().lsu(ld(VwrSel::A, 1)).lcu(lcu_set(0, 32)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_fxpmul(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kVwrA));
  pb.line().lsu(ldi(VwrSel::A, S1)).lcu(lcu_set(0, 32)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_sub(RcDst::kVwrB, RcSrc::kVwrA, RcSrc::kVwrC));
  pb.line().lsu(sti(VwrSel::B, S2)).emit();
  // D_im = 2 * re * im -> S3.
  pb.line().lsu(ld(VwrSel::A, 0)).lcu(lcu_set(0, 32)).emit();
  pb.line().lsu(ld(VwrSel::B, 1)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_fxpmul(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kVwrB));
  pb.line().lcu(lcu_set(0, 32)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_add(RcDst::kVwrB, RcSrc::kVwrC, RcSrc::kVwrC));
  pb.line().lsu(sti(VwrSel::B, S3)).emit();
  // T_re pair = interleave(D_re, D_re).
  pb.line().lsu(ldi(VwrSel::A, S2)).emit();
  pb.line().lsu(ldi(VwrSel::B, S2)).emit();
  pb.line().lsu(lsu_shuf(ShufMode::kInterleaveLo)).emit();
  pb.line().lsu(st(VwrSel::C, 2, 0)).emit();
  pb.line().lsu(lsu_shuf(ShufMode::kInterleaveHi)).emit();
  pb.line().lsu(st(VwrSel::C, 2, 1)).emit();
  // T_im pair = interleave(D_im, D_im).
  pb.line().lsu(ldi(VwrSel::A, S3)).emit();
  pb.line().lsu(ldi(VwrSel::B, S3)).emit();
  pb.line().lsu(lsu_shuf(ShufMode::kInterleaveLo)).emit();
  pb.line().lsu(st(VwrSel::C, 3, 0)).emit();
  pb.line().lsu(lsu_shuf(ShufMode::kInterleaveHi)).emit();
  pb.line().lsu(st(VwrSel::C, 3, 1)).emit();
  pb.line().lcu(lcu_exit()).emit();
  return pb.build();
}

// ---------------------------------------------------------------------------
// Bit-reversal of one 256-word row pair: srf0 = source pair, srf1 = dest.
// ---------------------------------------------------------------------------
ColumnProgram bitrev_program() {
  ProgramBuilder pb;
  pb.line().lsu(ld(VwrSel::A, 0, 0)).emit();
  pb.line().lsu(ld(VwrSel::B, 0, 1)).emit();
  pb.line().lsu(lsu_shuf(ShufMode::kBitRevLo)).emit();
  pb.line().lsu(st(VwrSel::C, 1, 0)).emit();
  pb.line().lsu(lsu_shuf(ShufMode::kBitRevHi)).emit();
  pb.line().lsu(st(VwrSel::C, 1, 1)).emit();
  pb.line().lcu(lcu_exit()).emit();
  return pb.build();
}

// ---------------------------------------------------------------------------
// Real-FFT untangling chunk (per column):
//   E = (Z + conj-mirror terms)/2, O likewise, X = E + W*O, for 128 bins.
// SRF: 0=z_re 1=z_im 2=m_re 3=m_im 4=w_re 5=w_im 6=x_re 7=x_im.
// Matches dsp::rfft_fx bit-for-bit.
// ---------------------------------------------------------------------------
ColumnProgram untangle_program(unsigned scr) {
  const unsigned S_ERE = scr + 0, S_P3 = scr + 1, S_P4 = scr + 2,
                 S_EIM = scr + 3, S_P1 = scr + 4;
  ProgramBuilder pb;
  pb.line().lsu(ld(VwrSel::A, 0)).lcu(lcu_set(0, 32)).emit();   // Zre
  pb.line().lsu(ld(VwrSel::B, 2)).mxcu(mxcu_set_idx(0)).emit(); // Mre
  // C = Ere = (Zre+Mre)>>1 ; A = Oim = (Mre-Zre)>>1.
  emit_loop4(pb, rc_add(RcDst::kR0, RcSrc::kVwrA, RcSrc::kVwrB),
             rc_sra(RcDst::kVwrC, RcSrc::kR0, RcSrc::kOne),
             rc_sub(RcDst::kR1, RcSrc::kVwrB, RcSrc::kVwrA),
             rc_sra(RcDst::kVwrA, RcSrc::kR1, RcSrc::kOne));
  pb.line().lsu(sti(VwrSel::C, S_ERE)).emit();
  pb.line().lsu(ld(VwrSel::B, 5)).lcu(lcu_set(0, 32)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_fxpmul(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kVwrB));  // p3=Oim*Wim
  pb.line().lsu(sti(VwrSel::C, S_P3)).lcu(lcu_set(0, 32)).emit();
  pb.line().lsu(ld(VwrSel::B, 4)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_fxpmul(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kVwrB));  // p4=Oim*Wre
  pb.line().lsu(sti(VwrSel::C, S_P4)).emit();
  pb.line().lsu(ld(VwrSel::A, 1)).lcu(lcu_set(0, 32)).emit();   // Zim
  pb.line().lsu(ld(VwrSel::B, 3)).mxcu(mxcu_set_idx(0)).emit(); // Mim
  // C = Eim = (Zim-Mim)>>1 ; A = Ore = (Zim+Mim)>>1.
  emit_loop4(pb, rc_sub(RcDst::kR0, RcSrc::kVwrA, RcSrc::kVwrB),
             rc_sra(RcDst::kVwrC, RcSrc::kR0, RcSrc::kOne),
             rc_add(RcDst::kR1, RcSrc::kVwrA, RcSrc::kVwrB),
             rc_sra(RcDst::kVwrA, RcSrc::kR1, RcSrc::kOne));
  pb.line().lsu(sti(VwrSel::C, S_EIM)).emit();
  pb.line().lsu(ld(VwrSel::B, 4)).lcu(lcu_set(0, 32)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_fxpmul(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kVwrB));  // p1=Ore*Wre
  pb.line().lsu(sti(VwrSel::C, S_P1)).lcu(lcu_set(0, 32)).emit();
  pb.line().lsu(ld(VwrSel::B, 5)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_fxpmul(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kVwrB));  // p2 in C
  // t_im = p4 + p2 -> B ; X_im = Eim + t_im.
  pb.line().lsu(ldi(VwrSel::A, S_P4)).lcu(lcu_set(0, 32)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_add(RcDst::kVwrB, RcSrc::kVwrA, RcSrc::kVwrC));
  pb.line().lsu(ldi(VwrSel::A, S_EIM)).lcu(lcu_set(0, 32)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_add(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kVwrB));
  pb.line().lsu(st(VwrSel::C, 7, 0)).emit();
  // t_re = p1 - p3 -> B ; X_re = Ere + t_re.
  pb.line().lsu(ldi(VwrSel::A, S_P1)).lcu(lcu_set(0, 32)).emit();
  pb.line().lsu(ldi(VwrSel::B, S_P3)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_sub(RcDst::kVwrB, RcSrc::kVwrA, RcSrc::kVwrB));
  pb.line().lsu(ldi(VwrSel::A, S_ERE)).lcu(lcu_set(0, 32)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_add(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kVwrB));
  pb.line().lsu(st(VwrSel::C, 6, 0)).emit();
  pb.line().lcu(lcu_exit()).emit();
  return pb.build();
}

// ---------------------------------------------------------------------------
// 2048-point combining chunk (per column): Xlo = E + W*O, Xhi = E - W*O for
// 128 bins. Rows at srf0: +0 E_re, +1 E_im, +2 O_re, +3 O_im, +4 W_re,
// +5 W_im, +6 Xlo_re, +7 Xlo_im, +8 Xhi_re, +9 Xhi_im.
// ---------------------------------------------------------------------------
ColumnProgram combine_program(unsigned scr) {
  const unsigned S_P1 = scr + 0, S_P2 = scr + 1, S_P3 = scr + 2;
  ProgramBuilder pb;
  pb.line().lsu(ld(VwrSel::A, 0, 2)).lcu(lcu_set(0, 32)).emit();  // O_re
  pb.line().lsu(ld(VwrSel::B, 0, 4)).mxcu(mxcu_set_idx(0)).emit(); // W_re
  emit_loop1(pb, rc_fxpmul(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kVwrB));  // p1
  pb.line().lsu(sti(VwrSel::C, S_P1)).lcu(lcu_set(0, 32)).emit();
  pb.line().lsu(ld(VwrSel::B, 0, 5)).mxcu(mxcu_set_idx(0)).emit(); // W_im
  emit_loop1(pb, rc_fxpmul(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kVwrB));  // p2
  pb.line().lsu(sti(VwrSel::C, S_P2)).emit();
  pb.line().lsu(ld(VwrSel::A, 0, 3)).lcu(lcu_set(0, 32)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_fxpmul(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kVwrB));  // p3=Oim*Wim
  pb.line().lsu(sti(VwrSel::C, S_P3)).emit();
  pb.line().lsu(ld(VwrSel::B, 0, 4)).lcu(lcu_set(0, 32)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_fxpmul(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kVwrB));  // p4 in C
  // t_im = p2 + p4 -> B; Xlo_im = Eim + t_im; Xhi_im = Eim - t_im.
  pb.line().lsu(ldi(VwrSel::A, S_P2)).lcu(lcu_set(0, 32)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_add(RcDst::kVwrB, RcSrc::kVwrA, RcSrc::kVwrC));
  pb.line().lsu(ld(VwrSel::A, 0, 1)).lcu(lcu_set(0, 32)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_add(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kVwrB));
  pb.line().lsu(st(VwrSel::C, 0, 7)).lcu(lcu_set(0, 32)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_sub(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kVwrB));
  pb.line().lsu(st(VwrSel::C, 0, 9)).emit();
  // t_re = p1 - p3 -> B; Xlo_re, Xhi_re.
  pb.line().lsu(ldi(VwrSel::A, S_P1)).lcu(lcu_set(0, 32)).emit();
  pb.line().lsu(ldi(VwrSel::B, S_P3)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_sub(RcDst::kVwrB, RcSrc::kVwrA, RcSrc::kVwrB));
  pb.line().lsu(ld(VwrSel::A, 0, 0)).lcu(lcu_set(0, 32)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_add(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kVwrB));
  pb.line().lsu(st(VwrSel::C, 0, 6)).lcu(lcu_set(0, 32)).mxcu(mxcu_set_idx(0)).emit();
  emit_loop1(pb, rc_sub(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kVwrB));
  pb.line().lsu(st(VwrSel::C, 0, 8)).emit();
  pb.line().lcu(lcu_exit()).emit();
  return pb.build();
}

// ---------------------------------------------------------------------------
// Unary in-place row kernels for the inverse transform: per row at SRF0
// (advancing by one), negate, negate+shift, or shift every word.
// ---------------------------------------------------------------------------
enum class UnaryOp { kNeg, kNegSar, kSar };

ColumnProgram unary_rows_program(UnaryOp op, unsigned nrows, unsigned shift) {
  ProgramBuilder pb;
  pb.line().lcu(lcu_set(2, static_cast<int>(nrows))).emit();
  Label row = pb.make_label();
  pb.bind(row);
  pb.line()
      .lsu(lsu_ld_vwr_srf(VwrSel::A, 0, 0))
      .lcu(lcu_set(0, 32))
      .mxcu(mxcu_set_idx(0))
      .emit();
  const auto sh = static_cast<std::int8_t>(shift);
  switch (op) {
    case UnaryOp::kNeg:
      emit_loop1(pb, rc_sub(RcDst::kVwrC, RcSrc::kZero, RcSrc::kVwrA));
      break;
    case UnaryOp::kSar:
      emit_loop1(pb, rc_sra(RcDst::kVwrC, RcSrc::kVwrA, RcSrc::kImm, 0, sh));
      break;
    case UnaryOp::kNegSar:
      emit_loop2(pb, rc_sub(RcDst::kR0, RcSrc::kZero, RcSrc::kVwrA),
                 rc_sra(RcDst::kVwrC, RcSrc::kR0, RcSrc::kImm, 0, sh));
      break;
  }
  pb.line().lsu(lsu_st_vwr_srf(VwrSel::C, 0, 0)).emit();
  pb.line().lcu(lcu_mv_srf(1, 0)).emit();
  pb.line().lcu(lcu_add(1, 1)).emit();
  pb.line().lcu(lcu_st_srf(0, 1)).emit();
  pb.line().lcu(lcu_dbnz(2), row).emit();
  pb.line().lcu(lcu_exit()).emit();
  return pb.build();
}

// --- system-memory twiddle table layout ---------------------------------------

struct TwLayout {
  unsigned t0_256, t0_512, t0_1024;   ///< CG stage-0 planes (re then im)
  unsigned w_512, w_1024, w_2048;     ///< untangle/combine planes (re then im)
  unsigned total;
};

TwLayout tw_layout() {
  TwLayout l{};
  unsigned off = 0;
  l.t0_256 = off; off += 256;    // n/2 re + n/2 im
  l.t0_512 = off; off += 512;
  l.t0_1024 = off; off += 1024;
  l.w_512 = off; off += 512;     // h re + h im
  l.w_1024 = off; off += 1024;
  l.w_2048 = off; off += 2048;
  l.total = off;
  return l;
}

unsigned t0_offset(unsigned n) {
  const TwLayout l = tw_layout();
  switch (n) {
    case 256: return l.t0_256;
    case 512: return l.t0_512;
    case 1024: return l.t0_1024;
    default: throw HostError("fft: unsupported resident size");
  }
}

unsigned w_offset(unsigned n) {
  const TwLayout l = tw_layout();
  switch (n) {
    case 512: return l.w_512;
    case 1024: return l.w_1024;
    case 2048: return l.w_2048;
    default: throw HostError("fft: unsupported untangle size");
  }
}

} // namespace

unsigned FftKernels::table_words() { return tw_layout().total; }

unsigned FftKernels::plane_row(unsigned n, unsigned buf, unsigned plane) {
  const unsigned r = rows_of(n);
  return buf * 2 * r + plane * r;
}

unsigned FftKernels::register_image(
    const std::string& key, const std::function<isa::KernelImage()>& build) {
  return host_.register_image(cache_, key, build);
}

FftKernels::FftKernels(Host host, isa::ImageCache* cache)
    : host_(host), cache_(cache) {
  k_stage_pair_ = register_image("fft_stage_pair", [] {
    return make_kernel2("fft_stage_pair", stage_chunk_program(kScr0),
                        stage_chunk_program(kScr1));
  });
  k_stage_single_ = register_image("fft_stage_split", [] {
    return make_kernel2("fft_stage_split", split_chunk_re_program(),
                        split_chunk_im_program());
  });
  k_expand_ = register_image("fft_tw_expand", [] {
    return make_kernel("fft_tw_expand", 0, expand_program());
  });
  k_bitrev_ = register_image("fft_bitrev", [] {
    return make_kernel("fft_bitrev", 0, bitrev_program());
  });
  k_untangle_ = register_image("rfft_untangle", [] {
    return make_kernel2("rfft_untangle", untangle_program(kScr0),
                        untangle_program(kScr1));
  });
  k_combine_ = register_image("fft2048_combine", [] {
    return make_kernel2("fft2048_combine", combine_program(kScr0),
                        combine_program(kScr1));
  });
}

void FftKernels::prepare(unsigned tw_base) {
  tw_base_ = tw_base;
  mem::SystemSram& sram = host_.sram();
  auto put_plane = [&sram](unsigned base, const std::vector<dsp::CplxFx>& v) {
    for (std::size_t i = 0; i < v.size(); ++i) {
      sram.poke(base + static_cast<unsigned>(i), static_cast<Word>(v[i].re));
      sram.poke(base + static_cast<unsigned>(v.size() + i),
                static_cast<Word>(v[i].im));
    }
  };
  for (unsigned n : {256u, 512u, 1024u}) {
    put_plane(tw_base_ + t0_offset(n), dsp::pease_twiddles_fx(n, 0));
  }
  constexpr double kPi = std::numbers::pi;
  for (unsigned n : {512u, 1024u, 2048u}) {
    const unsigned h = n / 2;
    std::vector<dsp::CplxFx> w(h);
    for (unsigned k = 0; k < h; ++k) {
      const double ang = -2.0 * kPi * k / static_cast<double>(n);
      w[k].re = fx::to_coeff(std::cos(ang));
      w[k].im = fx::to_coeff(std::sin(ang));
    }
    put_plane(tw_base_ + w_offset(n), w);
  }
  prepared_ = true;
}

void FftKernels::load_t0(unsigned n, FftRunStats& stats) {
  if (!prepared_) throw HostError("FftKernels: prepare() not called");
  const unsigned r = rows_of(n);
  const unsigned t_re = 4 * r;
  const unsigned t_im = t_re + tw_rows(n);
  const unsigned base = tw_base_ + t0_offset(n);
  host_.dma({dma::Dir::kSysToSpm, base, t_re * kRowWords, n / 2, 1, 1});
  host_.dma({dma::Dir::kSysToSpm, base + n / 2, t_im * kRowWords, n / 2, 1, 1});
  stats.launches += 2;
}

void FftKernels::expand_twiddles(unsigned n, FftRunStats& stats) {
  const unsigned r = rows_of(n);
  const unsigned t_re = 4 * r;
  const unsigned t_im = t_re + tw_rows(n);
  // Source rows r' (squared halves) written to row pairs (2r', 2r'+1);
  // descending order so destination rows never clobber unread sources.
  const unsigned src_rows = std::max(1u, r / 4);
  for (unsigned i = 0; i < src_rows; ++i) {
    const unsigned rp = src_rows - 1 - i;
    host_.srf(0, 0, t_re + rp);
    host_.srf(0, 1, t_im + rp);
    host_.srf(0, 2, t_re + 2 * rp);
    host_.srf(0, 3, t_im + 2 * rp);
    host_.run(k_expand_);
    ++stats.launches;
  }
}

void FftKernels::stage_chunk(unsigned n, unsigned buf_in, unsigned buf_out,
                             unsigned chunk0, unsigned nchunks,
                             FftRunStats& stats) {
  const unsigned r = rows_of(n);
  const unsigned in_re = plane_row(n, buf_in, 0);
  const unsigned in_im = plane_row(n, buf_in, 1);
  const unsigned out_re = plane_row(n, buf_out, 0);
  const unsigned out_im = plane_row(n, buf_out, 1);
  const unsigned t_re = 4 * r;
  const unsigned t_im = t_re + tw_rows(n);
  auto set_srf = [&](unsigned col, unsigned c) {
    host_.srf(col, 0, in_re + c);
    host_.srf(col, 1, in_im + c);
    host_.srf(col, 2, in_re + r / 2 + c);
    host_.srf(col, 3, in_im + r / 2 + c);
    host_.srf(col, 4, t_re + c);
    host_.srf(col, 5, t_im + c);
    host_.srf(col, 6, out_re + 2 * c);
    host_.srf(col, 7, out_im + 2 * c);
  };
  if (nchunks == 1) {
    // Both columns cooperate on the single chunk (re/im split).
    set_srf(0, chunk0);
    set_srf(1, chunk0);
    host_.run(k_stage_single_);
    ++stats.launches;
    return;
  }
  for (unsigned c = chunk0; c < chunk0 + nchunks; c += 2) {
    set_srf(0, c);
    set_srf(1, c + 1);
    host_.run(k_stage_pair_);
    ++stats.launches;
  }
}

unsigned FftKernels::run_stages(unsigned n, FftRunStats& stats) {
  if (n != 256 && n != 512 && n != 1024) {
    throw HostError("FftKernels::run_stages: resident sizes are 256/512/1024");
  }
  load_t0(n, stats);
  const unsigned stages = ilog2(n);
  const unsigned nchunks = rows_of(n) / 2;
  unsigned buf = 0;
  for (unsigned s = 0; s < stages; ++s) {
    if (s > 0) expand_twiddles(n, stats);
    stage_chunk(n, buf, 1 - buf, 0, nchunks, stats);
    buf = 1 - buf;
  }
  return buf;
}

void FftKernels::bitrev_out(unsigned n, unsigned buf, unsigned sys_out,
                            bool interleave, FftRunStats& stats) {
  const unsigned r = rows_of(n);
  const unsigned m = n / 256;  // 256-word blocks per plane
  const unsigned hi_bits = ilog2(std::max(1u, m));
  const unsigned other = 1 - buf;
  for (unsigned plane = 0; plane < 2; ++plane) {
    const unsigned src = plane_row(n, buf, plane);
    const unsigned dst = plane_row(n, other, plane);
    for (unsigned p = 0; p < r / 2; ++p) {
      host_.srf(0, 0, src + 2 * p);
      host_.srf(0, 1, dst + 2 * p);
      host_.run(k_bitrev_);
      ++stats.launches;
      const unsigned rev = (m > 1) ? bit_reverse(p, hi_bits) : 0;
      dma::Descriptor d;
      d.dir = dma::Dir::kSpmToSys;
      d.spm_word = (dst + 2 * p) * kRowWords;
      d.count = 256;
      d.spm_stride = 1;
      if (interleave) {
        d.sys_word = sys_out + 2 * rev + plane;
        d.sys_stride = static_cast<std::int32_t>(2 * m);
      } else {
        d.sys_word = sys_out + plane * n + rev;
        d.sys_stride = static_cast<std::int32_t>(m);
      }
      host_.dma(d);
    }
  }
}

FftRunStats FftKernels::cfft_resident(unsigned n, unsigned sys_in,
                                      unsigned sys_out, bool planar_out) {
  FftRunStats stats;
  const Cycle t0 = host_.acc().cycles();
  const unsigned re = plane_row(n, 0, 0) * kRowWords;
  const unsigned im = plane_row(n, 0, 1) * kRowWords;
  // Deinterleave input re/im into the SoA planes.
  host_.dma({dma::Dir::kSysToSpm, sys_in, re, n, 2, 1});
  host_.dma({dma::Dir::kSysToSpm, sys_in + 1, im, n, 2, 1});
  const unsigned buf = run_stages(n, stats);
  bitrev_out(n, buf, sys_out, !planar_out, stats);
  stats.cycles = host_.acc().cycles() - t0;
  return stats;
}

FftRunStats FftKernels::cfft2048(unsigned sys_in, unsigned sys_out,
                                 unsigned sys_scratch) {
  FftRunStats stats;
  const Cycle t0 = host_.acc().cycles();
  const unsigned n1 = 1024;
  const unsigned e_base = sys_scratch;            // E planes: re 1024, im 1024
  const unsigned o_base = sys_scratch + 2 * n1;   // O planes
  // E = FFT1024 of even samples; O = FFT1024 of odd samples.
  for (unsigned half = 0; half < 2; ++half) {
    const unsigned re = plane_row(n1, 0, 0) * kRowWords;
    const unsigned im = plane_row(n1, 0, 1) * kRowWords;
    host_.dma({dma::Dir::kSysToSpm, sys_in + 2 * half, re, n1, 4, 1});
    host_.dma({dma::Dir::kSysToSpm, sys_in + 2 * half + 1, im, n1, 4, 1});
    FftRunStats sub;
    const unsigned buf = run_stages(n1, sub);
    bitrev_out(n1, buf, half == 0 ? e_base : o_base, /*interleave=*/false, sub);
    stats.launches += sub.launches;
  }
  // Combining pass, two chunks (columns) per launch, DMA-streamed.
  const unsigned w_base = tw_base_ + w_offset(2048);
  for (unsigned pair = 0; pair < 4; ++pair) {
    for (unsigned side = 0; side < 2; ++side) {
      const unsigned c = 2 * pair + side;
      const unsigned g = side * 10;  // row group base for this column
      const unsigned off = c * 128;
      host_.dma({dma::Dir::kSysToSpm, e_base + off, (g + 0) * kRowWords, 128, 1, 1});
      host_.dma({dma::Dir::kSysToSpm, e_base + n1 + off, (g + 1) * kRowWords, 128, 1, 1});
      host_.dma({dma::Dir::kSysToSpm, o_base + off, (g + 2) * kRowWords, 128, 1, 1});
      host_.dma({dma::Dir::kSysToSpm, o_base + n1 + off, (g + 3) * kRowWords, 128, 1, 1});
      host_.dma({dma::Dir::kSysToSpm, w_base + off, (g + 4) * kRowWords, 128, 1, 1});
      host_.dma({dma::Dir::kSysToSpm, w_base + n1 + off, (g + 5) * kRowWords, 128, 1, 1});
      host_.srf(side, 0, g);
    }
    host_.run(k_combine_);
    ++stats.launches;
    for (unsigned side = 0; side < 2; ++side) {
      const unsigned c = 2 * pair + side;
      const unsigned g = side * 10;
      const unsigned off = c * 128;
      // Xlo -> bins off..off+127; Xhi -> bins 1024+off.., interleaved out.
      host_.dma({dma::Dir::kSpmToSys, sys_out + 2 * off, (g + 6) * kRowWords, 128, 2, 1});
      host_.dma({dma::Dir::kSpmToSys, sys_out + 2 * off + 1, (g + 7) * kRowWords, 128, 2, 1});
      host_.dma({dma::Dir::kSpmToSys, sys_out + 2 * (n1 + off), (g + 8) * kRowWords, 128, 2, 1});
      host_.dma({dma::Dir::kSpmToSys, sys_out + 2 * (n1 + off) + 1, (g + 9) * kRowWords, 128, 2, 1});
    }
  }
  stats.cycles = host_.acc().cycles() - t0;
  return stats;
}

FftRunStats FftKernels::cfft(unsigned n, unsigned sys_in, unsigned sys_out,
                             unsigned sys_scratch) {
  if (n == 2048) return cfft2048(sys_in, sys_out, sys_scratch);
  return cfft_resident(n, sys_in, sys_out, /*planar_out=*/false);
}

unsigned FftKernels::neg_kernel(unsigned nrows) {
  int& slot = unary_ids_[nrows];
  if (slot < 0) {
    const std::string name = "neg_rows" + std::to_string(nrows);
    slot = static_cast<int>(register_image(name, [&] {
      return make_kernel(name, 0, unary_rows_program(UnaryOp::kNeg, nrows, 0));
    }));
  }
  return static_cast<unsigned>(slot);
}

unsigned FftKernels::negsar_kernel(unsigned nrows, unsigned shift) {
  int& slot = unary_ids_[33 + nrows];
  if (slot < 0) {
    const std::string name = "negsar_rows" + std::to_string(nrows);
    // The cache key carries the shift (the per-instance memo slot does not
    // need to: each transform size pairs one nrows with one shift).
    slot = static_cast<int>(register_image(name + "_s" + std::to_string(shift), [&] {
      return make_kernel(name, 0,
                         unary_rows_program(UnaryOp::kNegSar, nrows, shift));
    }));
  }
  return static_cast<unsigned>(slot);
}

unsigned FftKernels::sar_kernel(unsigned nrows, unsigned shift) {
  int& slot = unary_ids_[66 + nrows];
  if (slot < 0) {
    const std::string name = "sar_rows" + std::to_string(nrows);
    slot = static_cast<int>(register_image(name + "_s" + std::to_string(shift), [&] {
      return make_kernel(name, 0,
                         unary_rows_program(UnaryOp::kSar, nrows, shift));
    }));
  }
  return static_cast<unsigned>(slot);
}

FftRunStats FftKernels::cifft(unsigned n, unsigned sys_in, unsigned sys_out) {
  if (n != 256 && n != 512 && n != 1024) {
    throw HostError("FftKernels::cifft: resident sizes are 256/512/1024");
  }
  FftRunStats stats;
  const Cycle t0 = host_.acc().cycles();
  const unsigned r = rows_of(n);
  const unsigned logn = ilog2(n);
  const unsigned re = plane_row(n, 0, 0);
  const unsigned im = plane_row(n, 0, 1);
  host_.dma({dma::Dir::kSysToSpm, sys_in, re * kRowWords, n, 2, 1});
  host_.dma({dma::Dir::kSysToSpm, sys_in + 1, im * kRowWords, n, 2, 1});
  // Conjugate the input: negate the imaginary plane in place.
  host_.srf(0, 0, im);
  host_.run(neg_kernel(r));
  ++stats.launches;
  const unsigned buf = run_stages(n, stats);
  // Conjugate and scale the spectrum: im = (-im) >> logn, re = re >> logn.
  host_.srf(0, 0, plane_row(n, buf, 1));
  host_.run(negsar_kernel(r, logn));
  host_.srf(0, 0, plane_row(n, buf, 0));
  host_.run(sar_kernel(r, logn));
  stats.launches += 2;
  bitrev_out(n, buf, sys_out, /*interleave=*/true, stats);
  stats.cycles = host_.acc().cycles() - t0;
  return stats;
}

FftRunStats FftKernels::rfft(unsigned n, unsigned sys_in, unsigned sys_out,
                             unsigned sys_scratch) {
  if (n != 512 && n != 1024 && n != 2048) {
    throw HostError("FftKernels::rfft: sizes are 512/1024/2048");
  }
  FftRunStats stats;
  const Cycle t0 = host_.acc().cycles();
  const unsigned h = n / 2;
  // Pack z[k] = x[2k] + j x[2k+1] straight from system memory.
  const unsigned re = plane_row(h, 0, 0) * kRowWords;
  const unsigned im = plane_row(h, 0, 1) * kRowWords;
  host_.dma({dma::Dir::kSysToSpm, sys_in, re, h, 2, 1});
  host_.dma({dma::Dir::kSysToSpm, sys_in + 1, im, h, 2, 1});
  const unsigned buf = run_stages(h, stats);
  bitrev_out(h, buf, sys_scratch, /*interleave=*/false, stats);
  // Untangle layout: Z, M (mirror), W planes, each h words re + h words im.
  const unsigned rh = rows_of(h);
  const unsigned z_re = 0, z_im = rh, m_re = 2 * rh, m_im = 3 * rh,
                 w_re = 4 * rh, w_im = 5 * rh;
  host_.dma({dma::Dir::kSysToSpm, sys_scratch, z_re * kRowWords, h, 1, 1});
  host_.dma({dma::Dir::kSysToSpm, sys_scratch + h, z_im * kRowWords, h, 1, 1});
  // Mirror: M[0] = Z[0]; M[k] = Z[h-k] (negative-stride DMA).
  host_.dma({dma::Dir::kSysToSpm, sys_scratch, m_re * kRowWords, 1, 1, 1});
  host_.dma({dma::Dir::kSysToSpm, sys_scratch + h - 1, m_re * kRowWords + 1,
             h - 1, -1, 1});
  host_.dma({dma::Dir::kSysToSpm, sys_scratch + h, m_im * kRowWords, 1, 1, 1});
  host_.dma({dma::Dir::kSysToSpm, sys_scratch + 2 * h - 1, m_im * kRowWords + 1,
             h - 1, -1, 1});
  const unsigned wb = tw_base_ + w_offset(n);
  host_.dma({dma::Dir::kSysToSpm, wb, w_re * kRowWords, h, 1, 1});
  host_.dma({dma::Dir::kSysToSpm, wb + h, w_im * kRowWords, h, 1, 1});
  // Untangle chunk pairs; X overwrites the M planes.
  for (unsigned c = 0; c < rh; c += 2) {
    for (unsigned side = 0; side < 2; ++side) {
      const unsigned cc = c + side;
      host_.srf(side, 0, z_re + cc);
      host_.srf(side, 1, z_im + cc);
      host_.srf(side, 2, m_re + cc);
      host_.srf(side, 3, m_im + cc);
      host_.srf(side, 4, w_re + cc);
      host_.srf(side, 5, w_im + cc);
      host_.srf(side, 6, m_re + cc);
      host_.srf(side, 7, m_im + cc);
    }
    host_.run(k_untangle_);
    ++stats.launches;
  }
  // Copy out bins 0..h-1 interleaved; bin h is computed by the host from
  // Z[0] (X[h] = Zre[0] - Zim[0]).
  host_.dma({dma::Dir::kSpmToSys, sys_out, m_re * kRowWords, h, 2, 1});
  host_.dma({dma::Dir::kSpmToSys, sys_out + 1, m_im * kRowWords, h, 2, 1});
  const std::int32_t z0re = static_cast<std::int32_t>(host_.sram().peek(sys_scratch));
  const std::int32_t z0im =
      static_cast<std::int32_t>(host_.sram().peek(sys_scratch + h));
  host_.sram().poke(sys_out + 2 * h,
                    static_cast<Word>(z0re - z0im));
  host_.sram().poke(sys_out + 2 * h + 1, 0);
  stats.cycles = host_.acc().cycles() - t0;
  return stats;
}

} // namespace vwr2a::kernels
