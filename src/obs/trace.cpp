#include "obs/trace.hpp"

#include <memory>
#include <mutex>

#include "obs/capture.hpp"

namespace vwr2a::obs {

// One ring per emitting thread. head counts events ever emitted; the live
// window is the last min(head, buf.size()) events, so the exact number of
// drop-oldest evictions is head - buf.size() once the ring has wrapped.
// The per-ring mutex is only ever contended by snapshot()/reset(); an
// emitting thread otherwise takes it uncontended.
struct Tracer::Ring {
  mutable std::mutex mu;
  std::vector<TraceEvent> buf;  // sized once at creation, never reallocated
  std::uint64_t head = 0;
  std::uint32_t tid = 0;
};

struct Tracer::Impl {
  mutable std::mutex mu;  // guards rings (registration) and cap
  std::vector<std::unique_ptr<Ring>> rings;
  std::size_t cap = 32768;
};

Tracer& Tracer::get() {
  static Tracer* t = new Tracer();  // leaked: emitters may outlive main
  return *t;
}

Tracer::Impl& Tracer::impl() const {
  static Impl* i = new Impl();
  return *i;
}

Tracer::Ring& Tracer::ring() {
  thread_local Ring* r = nullptr;
  if (r == nullptr) {
    Impl& im = impl();
    auto owned = std::make_unique<Ring>();
    owned->tid = thread_slot();
    std::lock_guard<std::mutex> lock(im.mu);
    owned->buf.resize(im.cap);
    r = owned.get();
    im.rings.push_back(std::move(owned));
  }
  return *r;
}

void Tracer::emit(TraceEvent e) {
  if (!tracing_enabled()) return;
  Ring& r = ring();
  if (e.ts_ns == 0) e.ts_ns = now_ns();
  e.tid = r.tid;
  std::lock_guard<std::mutex> lock(r.mu);
  if (r.buf.empty()) return;
  r.buf[r.head % r.buf.size()] = e;
  ++r.head;
}

void Tracer::set_ring_capacity(std::size_t cap) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.cap = cap == 0 ? 1 : cap;
}

Tracer::Snapshot Tracer::snapshot() const {
  Impl& im = impl();
  Snapshot out;
  std::lock_guard<std::mutex> lock(im.mu);
  for (const auto& rp : im.rings) {
    const Ring& r = *rp;
    std::lock_guard<std::mutex> rlock(r.mu);
    if (r.head == 0) continue;
    ++out.threads;
    const std::size_t cap = r.buf.size();
    const std::uint64_t kept = r.head < cap ? r.head : cap;
    out.dropped += r.head - kept;
    // Oldest-to-newest: the oldest surviving event sits at head % cap once
    // wrapped, at 0 before.
    const std::uint64_t first = r.head - kept;
    for (std::uint64_t i = 0; i < kept; ++i) {
      out.events.push_back(r.buf[(first + i) % cap]);
    }
  }
  return out;
}

void Tracer::reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (const auto& rp : im.rings) {
    Ring& r = *rp;
    std::lock_guard<std::mutex> rlock(r.mu);
    r.head = 0;
  }
}

bool Tracer::save(const std::string& path, std::string* why) const {
  return save_capture(snapshot(), path, why);
}

} // namespace vwr2a::obs
