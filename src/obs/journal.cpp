#include "obs/journal.hpp"

#include <cstdio>
#include <fstream>

#include "artifact/format.hpp"

namespace vwr2a::obs {

namespace {

// Digest FNV constants (per output word, offset-basis seed) -- the same
// per-stream hash the soak benches print.
constexpr std::uint64_t kFnvBasis = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

// Header field offsets (see journal.hpp for the layout).
constexpr std::uint64_t kHeaderBytes = 48;
constexpr std::uint64_t kOffMagic = 0;
constexpr std::uint64_t kOffVersion = 8;
constexpr std::uint64_t kOffProtocol = 12;
constexpr std::uint64_t kOffFileSize = 16;
constexpr std::uint64_t kOffPayloadFnv = 24;
constexpr std::uint64_t kOffHeaderFnv = 32;
constexpr std::uint64_t kOffTrailerOff = 40;

bool fail(std::string* why, const std::string& msg) {
  if (why != nullptr) *why = msg;
  return false;
}

} // namespace

bool Journal::open(const std::string& path, std::uint32_t protocol,
                   std::string* why) {
  std::lock_guard<std::mutex> lock(mu_);
  // Fail fast on an unwritable path: a journal that silently records to
  // nowhere is worse than a refused one.
  std::ofstream probe(path, std::ios::binary | std::ios::trunc);
  if (!probe) {
    failed_ = true;
    return fail(why, "journal: cannot open '" + path + "' for writing");
  }
  path_ = path;
  protocol_ = protocol;
  return true;
}

std::uint32_t Journal::conn_open(std::uint64_t ts_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint32_t conn = next_conn_++;
  if (failed_ || finalized_) return conn;
  artifact::Writer w(records_);
  w.u8(JournalRecord::kConnOpen);
  w.u32(conn);
  w.u64(next_seq_++);
  w.u64(ts_ns);
  return conn;
}

void Journal::conn_close(std::uint32_t conn, std::uint64_t ts_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  if (failed_ || finalized_) return;
  artifact::Writer w(records_);
  w.u8(JournalRecord::kConnClose);
  w.u32(conn);
  w.u64(next_seq_++);
  w.u64(ts_ns);
}

void Journal::frame(std::uint32_t conn, std::uint64_t ts_ns,
                    const std::vector<std::uint8_t>& bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (failed_ || finalized_) return;
  artifact::Writer w(records_);
  w.u8(JournalRecord::kFrame);
  w.u32(conn);
  w.u64(next_seq_++);
  w.u64(ts_ns);
  w.u32(static_cast<std::uint32_t>(bytes.size()));
  records_.insert(records_.end(), bytes.begin(), bytes.end());
}

void Journal::result(std::uint32_t conn, std::uint32_t stream,
                     const std::vector<std::int32_t>& output) {
  std::lock_guard<std::mutex> lock(mu_);
  if (failed_ || finalized_) return;
  JournalDigest* d = nullptr;
  for (JournalDigest& cand : digests_) {
    if (cand.conn == conn && cand.stream == stream) {
      d = &cand;
      break;
    }
  }
  if (d == nullptr) {
    digests_.push_back(JournalDigest{conn, stream, 0, kFnvBasis});
    d = &digests_.back();
  }
  ++d->windows;
  for (std::int32_t word : output) {
    d->fnv = (d->fnv ^ static_cast<std::uint32_t>(word)) * kFnvPrime;
  }
}

bool Journal::finalize(std::string* why) {
  std::lock_guard<std::mutex> lock(mu_);
  if (finalized_) return !failed_;
  if (failed_) return fail(why, "journal: open() failed; nothing recorded");
  finalized_ = true;

  std::vector<std::uint8_t> file;
  file.reserve(kHeaderBytes + records_.size() + 16 + 24 * digests_.size());
  artifact::Writer w(file);
  w.u64(kJournalMagic);
  w.u32(kJournalVersion);
  w.u32(protocol_);
  w.u64(0);  // file_size, patched below
  w.u64(0);  // payload_fnv, patched below
  w.u64(0);  // header_fnv, patched last
  w.u64(0);  // trailer_off, patched below
  file.insert(file.end(), records_.begin(), records_.end());
  const std::uint64_t trailer_off = file.size();
  w.u32(static_cast<std::uint32_t>(digests_.size()));
  for (const JournalDigest& d : digests_) {
    w.u32(d.conn);
    w.u32(d.stream);
    w.u64(d.windows);
    w.u64(d.fnv);
  }
  artifact::patch_u64(file, kOffFileSize, file.size());
  artifact::patch_u64(file, kOffTrailerOff, trailer_off);
  artifact::patch_u64(
      file, kOffPayloadFnv,
      artifact::fnv1a(file.data() + kHeaderBytes, file.size() - kHeaderBytes));
  // header_fnv is computed with its own field still zero.
  artifact::patch_u64(file, kOffHeaderFnv,
                      artifact::fnv1a(file.data(), kHeaderBytes));

  std::ofstream f(path_, std::ios::binary | std::ios::trunc);
  if (!f) return fail(why, "journal: cannot reopen '" + path_ + "'");
  f.write(reinterpret_cast<const char*>(file.data()),
          static_cast<std::streamsize>(file.size()));
  f.flush();
  if (!f) return fail(why, "journal: short write to '" + path_ + "'");
  return true;
}

bool load_journal(const std::string& path, JournalFile* out,
                  std::string* why) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return fail(why, "journal: cannot open '" + path + "'");
  std::vector<std::uint8_t> buf((std::istreambuf_iterator<char>(f)),
                                std::istreambuf_iterator<char>());
  if (buf.size() < kHeaderBytes) {
    return fail(why, "journal: file shorter than the header");
  }

  artifact::Reader hdr(buf.data(), kHeaderBytes);
  if (hdr.u64() != kJournalMagic) {
    return fail(why, "journal: bad magic (not a .vwr2jrn file)");
  }
  if (hdr.u32() != kJournalVersion) {
    return fail(why, "journal: unsupported format version");
  }
  JournalFile jf;
  jf.protocol = hdr.u32();
  const std::uint64_t file_size = hdr.u64();
  const std::uint64_t payload_fnv = hdr.u64();
  const std::uint64_t header_fnv = hdr.u64();
  const std::uint64_t trailer_off = hdr.u64();
  if (file_size != buf.size()) {
    return fail(why, "journal: file size mismatch (truncated or appended)");
  }
  // Verify the header checksum over a copy with its field zeroed.
  std::uint8_t hcopy[kHeaderBytes];
  std::memcpy(hcopy, buf.data(), kHeaderBytes);
  for (unsigned i = 0; i < 8; ++i) hcopy[kOffHeaderFnv + i] = 0;
  if (artifact::fnv1a(hcopy, kHeaderBytes) != header_fnv) {
    return fail(why, "journal: header checksum mismatch");
  }
  if (artifact::fnv1a(buf.data() + kHeaderBytes, buf.size() - kHeaderBytes) !=
      payload_fnv) {
    return fail(why, "journal: payload checksum mismatch");
  }
  if (trailer_off < kHeaderBytes || trailer_off > buf.size()) {
    return fail(why, "journal: trailer offset out of bounds");
  }

  // Record stream: bytes [kHeaderBytes, trailer_off).
  artifact::Reader r(buf.data() + kHeaderBytes, trailer_off - kHeaderBytes);
  std::uint64_t expect_seq = 0;
  while (!r.at_end()) {
    JournalRecord rec;
    rec.kind = r.u8();
    rec.conn = r.u32();
    rec.seq = r.u64();
    rec.ts_ns = r.u64();
    if (!r.ok()) return fail(why, "journal: truncated record");
    if (rec.kind != JournalRecord::kConnOpen &&
        rec.kind != JournalRecord::kFrame &&
        rec.kind != JournalRecord::kConnClose) {
      return fail(why, "journal: unknown record kind");
    }
    if (rec.seq != expect_seq++) {
      return fail(why, "journal: arrival sequence out of order");
    }
    if (rec.kind == JournalRecord::kFrame) {
      const std::uint32_t len = r.u32();
      if (!r.ok() || len > r.remaining()) {
        return fail(why, "journal: frame record overruns the file");
      }
      const std::size_t consumed =
          (trailer_off - kHeaderBytes) - r.remaining();
      const std::uint8_t* p = buf.data() + kHeaderBytes + consumed;
      rec.bytes.assign(p, p + len);
      for (std::uint32_t i = 0; i < len; ++i) r.u8();
    }
    jf.records.push_back(std::move(rec));
  }

  // Trailer: bytes [trailer_off, file end).
  artifact::Reader t(buf.data() + trailer_off, buf.size() - trailer_off);
  const std::uint32_t count = t.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    JournalDigest d;
    d.conn = t.u32();
    d.stream = t.u32();
    d.windows = t.u64();
    d.fnv = t.u64();
    if (!t.ok()) return fail(why, "journal: truncated digest trailer");
    jf.digests.push_back(d);
  }
  if (!t.ok() || !t.at_end()) {
    return fail(why, "journal: trailing bytes after the digest trailer");
  }

  *out = std::move(jf);
  return true;
}

} // namespace vwr2a::obs
