#pragma once
// Bit-exact replay of a .vwr2jrn black-box journal against a fresh
// gateway::Server. The replayer opens one loopback connection per recorded
// connection and re-sends the recorded frames in global arrival order from
// a single thread: per-connection frame order and the cross-connection
// arrival interleave are both preserved at the transport level. Each
// connection's responses are decoded by a dedicated reader thread that
// folds every WINDOW_RESULT's output words into a per-stream FNV -- the
// same digest the recording server wrote into the journal trailer -- and
// the report compares the two per stream.
//
// Why this reproduces: simulation outputs are bit-identical regardless of
// device count, placement and worker interleave (the repo's determinism
// invariant, gated by the soak benches), so the replay server does not
// need the recorded fleet shape -- any fleet produces the recorded output
// words, in the recorded per-stream window order. What legitimately
// differs (wall-clock v6 span fields, stats snapshots) is outside the
// digest by construction.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/journal.hpp"

namespace vwr2a::gateway {
class Server;
}

namespace vwr2a::obs {

/// Per-stream verdict of one replay.
struct ReplayStream {
  std::uint32_t conn = 0;
  std::uint32_t stream = 0;
  std::uint64_t expected_windows = 0;
  std::uint64_t got_windows = 0;
  std::uint64_t expected_fnv = 0;
  std::uint64_t got_fnv = 0;
  bool ok() const {
    return got_windows == expected_windows && got_fnv == expected_fnv;
  }
};

struct ReplayReport {
  bool ok = false;           ///< every stream reproduced bit-exactly
  std::string error;         ///< non-empty on a structural failure
  std::uint64_t connections = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t errors_received = 0;  ///< ERROR frames seen during replay
  std::vector<ReplayStream> streams;
};

/// Drives one journal through `server` (which must accept loopback
/// connections and should be freshly constructed -- replaying into a busy
/// server mixes digests).
class JournalReplayer {
 public:
  explicit JournalReplayer(gateway::Server& server) : server_(&server) {}

  /// Replays `journal` and gates the per-stream digests. Blocks until all
  /// expected windows were delivered or `timeout_ms` passed without
  /// progress.
  ReplayReport replay(const JournalFile& journal,
                      std::uint64_t timeout_ms = 120000);

 private:
  gateway::Server* server_;
};

} // namespace vwr2a::obs
