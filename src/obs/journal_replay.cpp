#include "obs/journal_replay.hpp"

#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "gateway/protocol.hpp"
#include "gateway/server.hpp"
#include "gateway/transport.hpp"

namespace vwr2a::obs {

namespace {

constexpr std::uint64_t kFnvBasis = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Digest accumulator for one replayed stream.
struct StreamAcc {
  std::uint64_t windows = 0;
  std::uint64_t fnv = kFnvBasis;
};

} // namespace

ReplayReport JournalReplayer::replay(const JournalFile& journal,
                                     std::uint64_t timeout_ms) {
  ReplayReport report;
  if (journal.protocol != gateway::kProtocolVersion) {
    report.error = "journal records protocol v" +
                   std::to_string(journal.protocol) + ", this build speaks v" +
                   std::to_string(gateway::kProtocolVersion);
    return report;
  }

  // Shared accumulation state: reader threads fold WINDOW_RESULT outputs
  // in, the replay thread waits on the cv for the expected window counts.
  std::mutex mu;
  std::condition_variable cv;
  std::map<std::pair<std::uint32_t, std::uint32_t>, StreamAcc> got;
  std::uint64_t errors_received = 0;

  struct Conn {
    std::unique_ptr<gateway::Transport> t;
    std::thread reader;
  };
  std::map<std::uint32_t, Conn> conns;

  auto reader_loop = [&](std::uint32_t conn_id, gateway::Transport* t) {
    std::vector<std::uint8_t> buf(1u << 16);
    gateway::Decoder dec;
    try {
      for (;;) {
        const std::size_t n = t->recv(buf.data(), buf.size());
        if (n == 0) return;
        dec.feed(buf.data(), n);
        while (auto f = dec.next()) {
          if (const auto* wr = std::get_if<gateway::WindowResult>(&*f)) {
            std::lock_guard<std::mutex> lock(mu);
            StreamAcc& acc = got[{conn_id, wr->stream}];
            ++acc.windows;
            for (std::int32_t w : wr->output) {
              acc.fnv = (acc.fnv ^ static_cast<std::uint32_t>(w)) * kFnvPrime;
            }
            cv.notify_all();
          } else if (std::get_if<gateway::Error>(&*f) != nullptr) {
            std::lock_guard<std::mutex> lock(mu);
            ++errors_received;
          }
          // Acks (OPEN_OK/FLUSH_OK/CLOSE_OK/STATS) need no routing: the
          // recorded client's blocking round trips already shaped the
          // frame order the journal preserves.
        }
      }
    } catch (const std::exception&) {
      // Malformed response bytes: the digest comparison below will report
      // the shortfall; nothing useful to do here.
    }
  };

  // Send every record in global arrival order from this one thread --
  // each transport send completes (bytes in the peer's ring) before the
  // next record goes out, so arrival interleave matches the recording.
  for (const JournalRecord& rec : journal.records) {
    switch (rec.kind) {
      case JournalRecord::kConnOpen: {
        Conn c;
        c.t = server_->connect_loopback();
        gateway::Transport* t = c.t.get();
        c.reader = std::thread([&reader_loop, conn = rec.conn, t] {
          reader_loop(conn, t);
        });
        conns.emplace(rec.conn, std::move(c));
        ++report.connections;
        break;
      }
      case JournalRecord::kFrame: {
        const auto it = conns.find(rec.conn);
        if (it == conns.end()) {
          report.error = "journal: frame for a connection never opened";
          break;
        }
        if (!it->second.t->send(rec.bytes.data(), rec.bytes.size())) {
          report.error = "replay: connection " + std::to_string(rec.conn) +
                         " died mid-replay";
          break;
        }
        ++report.frames_sent;
        break;
      }
      case JournalRecord::kConnClose:
        // Deferred: the transport stays open until the expected windows
        // arrived, else in-flight WINDOW_RESULTs would be dropped.
        break;
    }
    if (!report.error.empty()) break;
  }

  // Wait (with an idle timeout) until every digest's expected window count
  // is delivered.
  if (report.error.empty()) {
    std::unique_lock<std::mutex> lock(mu);
    const auto deadline = [&] {
      return std::chrono::steady_clock::now() +
             std::chrono::milliseconds(timeout_ms);
    };
    const bool all = cv.wait_until(lock, deadline(), [&] {
      for (const JournalDigest& d : journal.digests) {
        const auto it = got.find({d.conn, d.stream});
        if (it == got.end() || it->second.windows < d.windows) return false;
      }
      return true;
    });
    if (!all) report.error = "replay: timed out waiting for window delivery";
  }

  for (auto& [id, c] : conns) c.t->shutdown();
  for (auto& [id, c] : conns) {
    if (c.reader.joinable()) c.reader.join();
  }

  {
    std::lock_guard<std::mutex> lock(mu);
    report.errors_received = errors_received;
    for (const JournalDigest& d : journal.digests) {
      ReplayStream s;
      s.conn = d.conn;
      s.stream = d.stream;
      s.expected_windows = d.windows;
      s.expected_fnv = d.fnv;
      const auto it = got.find({d.conn, d.stream});
      if (it != got.end()) {
        s.got_windows = it->second.windows;
        s.got_fnv = it->second.fnv;
      } else {
        s.got_fnv = kFnvBasis;
      }
      report.streams.push_back(s);
    }
    // Streams the replay delivered that the recording never did (can only
    // happen on a divergent replay) fail the gate too.
    for (const auto& [key, acc] : got) {
      bool known = false;
      for (const JournalDigest& d : journal.digests) {
        if (d.conn == key.first && d.stream == key.second) {
          known = true;
          break;
        }
      }
      if (!known) {
        ReplayStream s;
        s.conn = key.first;
        s.stream = key.second;
        s.expected_fnv = kFnvBasis;
        s.got_windows = acc.windows;
        s.got_fnv = acc.fnv;
        report.streams.push_back(s);
      }
    }
  }

  report.ok = report.error.empty();
  for (const ReplayStream& s : report.streams) {
    if (!s.ok()) report.ok = false;
  }
  return report;
}

} // namespace vwr2a::obs
