#pragma once
// Trace capture files (.vwr2trc): the on-disk form of a Tracer snapshot.
// A capture is a string table (event names) plus fixed-size little-endian
// event records; load/save, Chrome trace_event JSON export and window-chain
// analysis live here so the vwr2a_trace tool, gateway_soak and the obs
// tests all share one implementation. Format (all little-endian):
//
//   magic   "VWR2ATRC"                     8 bytes
//   u32     format version (1)
//   u32     threads (rings that recorded)
//   u64     dropped (exact drop-oldest total)
//   u32     name count, then per name: u32 length + bytes
//   u64     event count, then per event:
//           u32 name index, u32 tid, u8 kind,
//           u64 ts_ns, dur_ns, window, sim_begin, sim_dur, a1, a2, a3

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace vwr2a::obs {

struct Capture {
  struct Ev {
    std::uint32_t name = 0;  ///< index into names
    std::uint32_t tid = 0;
    std::uint8_t kind = 0;   ///< 0 complete, 1 instant
    std::uint64_t ts_ns = 0;
    std::uint64_t dur_ns = 0;
    std::uint64_t window = 0;
    std::uint64_t sim_begin = 0;
    std::uint64_t sim_dur = 0;
    std::uint64_t a1 = 0;
    std::uint64_t a2 = 0;
    std::uint64_t a3 = 0;
  };
  std::vector<std::string> names;
  std::vector<Ev> events;
  std::uint64_t dropped = 0;
  std::uint32_t threads = 0;

  const std::string& name_of(const Ev& e) const { return names[e.name]; }
};

/// Intern a live snapshot into the string-table form (no I/O).
Capture to_capture(const Tracer::Snapshot& snap);

bool save_capture(const Tracer::Snapshot& snap, const std::string& path,
                  std::string* why = nullptr);
bool load_capture(const std::string& path, Capture* out,
                  std::string* why = nullptr);

/// Chrome trace_event JSON ("X" complete events, "i" instants, flow arrows
/// chaining each window id across threads). Open in chrome://tracing or
/// https://ui.perfetto.dev.
void write_chrome_json(const Capture& cap, std::ostream& os);

/// Per-window lifecycle reconstructed from the propagated window ids.
/// The synthetic client-side "remote.queue"/"remote.run"/"remote.deliver"
/// spans a gateway client reconstructs from a v6 WINDOW_RESULT breakdown
/// feed the same queue/run/deliver accumulators, so a pure client capture
/// analyzes with the identical per-stage arithmetic.
struct WindowChain {
  std::uint64_t window = 0;
  std::vector<std::size_t> events;  ///< indices into Capture::events, by ts
  bool has_push = false;     ///< a session.push/flush span encloses the slice
  bool has_slice = false;    ///< window.slice
  bool has_place = false;    ///< window.place
  bool has_queue = false;    ///< window.queue (or remote.queue)
  bool has_run = false;      ///< device.run (or remote.run)
  bool has_complete = false; ///< window.complete
  bool has_deliver = false;  ///< window.deliver (or remote.deliver)
  std::uint32_t distinct_tids = 0;
  std::uint64_t place_ns = 0;    ///< summed window.place host duration
  std::uint64_t queue_ns = 0;    ///< summed window.queue host duration
  std::uint64_t run_ns = 0;      ///< summed device.run host duration
  std::uint64_t deliver_ns = 0;  ///< summed window.deliver host duration
  std::uint64_t run_cycles = 0;  ///< summed device.run simulated cycles
  bool complete() const {
    return has_push && has_slice && has_place && has_queue && has_run &&
           has_complete && has_deliver;
  }
};

/// One chain per distinct non-zero window id, sorted by window id.
std::vector<WindowChain> analyze_windows(const Capture& cap);

/// Multi-process Chrome trace: each (label, capture) pair becomes one pid
/// (1, 2, ...) with process_name metadata, and flow arrows chain every
/// shared window id ACROSS the processes -- the client/server merge view
/// of one cross-wire window. Labels are free text ("client", "server").
void write_chrome_json_merged(
    const std::vector<std::pair<std::string, const Capture*>>& procs,
    std::ostream& os);

} // namespace vwr2a::obs
