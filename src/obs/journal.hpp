#pragma once
// Black-box traffic journal (.vwr2jrn): the gateway's wire-level flight
// recorder. While gateway::Server runs with Config::journal_path set, every
// inbound frame of every connection is recorded -- re-encoded through the
// canonical codec, so the recorded bytes are exactly what the peer sent --
// together with its connection id, a global arrival sequence number and an
// injectable-clock timestamp. Alongside the traffic the journal accumulates
// a per-(connection, stream) digest of the *outputs* the server delivered
// (window count + FNV-1a over the output words in index order): the
// bit-identity contract a replay is gated against.
//
// Why outputs, not response frames: the simulation is bit/cycle/energy
// deterministic in its outputs regardless of placement and thread
// interleave (the repo's core invariant), but response *frames* carry
// wall-clock v6 span fields that legitimately differ run to run. Hashing
// output words makes "replay reproduces the soak" a meaningful bit-exact
// gate on any machine and any fleet shape.
//
// File layout (all little-endian; artifact-codec conventions -- see
// src/artifact/format.hpp and docs/observability.md):
//
//   header (48 bytes)
//     u64 magic      "VWR2AJRN"
//     u32 version    kJournalVersion
//     u32 protocol   gateway wire version the traffic was recorded under
//     u64 file_size  total bytes, trailing-garbage/truncation check
//     u64 payload_fnv  artifact::fnv1a over bytes [48, file_size)
//     u64 header_fnv   artifact::fnv1a over the header, this field zeroed
//     u64 trailer_off  absolute offset of the digest trailer
//   records, in global arrival order
//     u8 kind (1 conn-open, 2 frame, 3 conn-close), u32 conn, u64 seq,
//     u64 ts_ns; kind 2 adds u32 len + the encoded frame bytes
//   trailer
//     u32 count, then per stream: u32 conn, u32 stream, u64 windows,
//     u64 fnv (offset-basis FNV-1a folding each output word:
//     h = (h ^ u32(word)) * prime)
//
// Every byte is covered by header_fnv or payload_fnv, so any single-bit
// flip or truncation is rejected at load -- cleanly (false + reason),
// never an exception or over-read.
//
// The writer buffers records in memory and emits the whole checksummed
// file in finalize() (called from Server::stop()): a journal is a
// post-mortem artifact, not a crash-safe WAL. All writer entry points are
// thread-safe (connection readers and delivery lanes call in
// concurrently); when no journal is configured the server skips the calls
// entirely -- the disabled cost is one pointer test per frame.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace vwr2a::obs {

/// File magic: "VWR2AJRN" little-endian.
inline constexpr std::uint64_t kJournalMagic = 0x4e524a4132525756ull;
/// Journal format version; bump on any layout change.
inline constexpr std::uint32_t kJournalVersion = 1;

/// One recorded event, in global arrival order.
struct JournalRecord {
  enum Kind : std::uint8_t {
    kConnOpen = 1,   ///< a connection was accepted
    kFrame = 2,      ///< one inbound frame (bytes = canonical encoding)
    kConnClose = 3,  ///< the connection's reader exited (EOF/teardown)
  };
  std::uint8_t kind = kFrame;
  std::uint32_t conn = 0;   ///< journal-assigned connection id, from 0
  std::uint64_t seq = 0;    ///< global arrival sequence, from 0
  std::uint64_t ts_ns = 0;  ///< Server::now_ns() at the event
  std::vector<std::uint8_t> bytes;  ///< kFrame only: the full wire frame
};

/// Delivered-output digest of one stream: the replay identity contract.
struct JournalDigest {
  std::uint32_t conn = 0;
  std::uint32_t stream = 0;      ///< client-chosen stream id
  std::uint64_t windows = 0;     ///< WINDOW_RESULT frames delivered
  std::uint64_t fnv = 0;         ///< FNV-1a over output words, index order
};

/// A fully validated journal, as loaded from disk.
struct JournalFile {
  std::uint32_t protocol = 0;  ///< wire version the traffic speaks
  std::vector<JournalRecord> records;
  std::vector<JournalDigest> digests;
};

/// The recording side, owned by gateway::Server.
class Journal {
 public:
  /// Creates/truncates `path` (fail-fast on an unwritable location) and
  /// starts recording traffic of wire version `protocol`. False + reason
  /// on failure; the journal is then inert.
  bool open(const std::string& path, std::uint32_t protocol,
            std::string* why = nullptr);

  /// Registers a new connection; returns its journal connection id.
  std::uint32_t conn_open(std::uint64_t ts_ns);
  void conn_close(std::uint32_t conn, std::uint64_t ts_ns);

  /// Records one inbound frame (its canonical wire encoding).
  void frame(std::uint32_t conn, std::uint64_t ts_ns,
             const std::vector<std::uint8_t>& bytes);

  /// Folds one delivered window's output words into the stream's digest.
  void result(std::uint32_t conn, std::uint32_t stream,
              const std::vector<std::int32_t>& output);

  /// Writes the checksummed file. Idempotent; false + reason on I/O error.
  bool finalize(std::string* why = nullptr);

  const std::string& path() const { return path_; }

 private:
  mutable std::mutex mu_;
  std::string path_;
  std::uint32_t protocol_ = 0;
  std::uint32_t next_conn_ = 0;
  std::uint64_t next_seq_ = 0;
  std::vector<std::uint8_t> records_;  ///< serialized record stream
  /// Digest accumulators in first-delivery order (keyed linearly: stream
  /// counts are small and the order makes the trailer deterministic given
  /// one delivery order).
  std::vector<JournalDigest> digests_;
  bool finalized_ = false;
  bool failed_ = false;  ///< open() failed; all recording is a no-op
};

/// Loads and fully validates a journal. False + reason on any corruption
/// (bad magic/version/checksum, truncation, malformed record stream).
bool load_journal(const std::string& path, JournalFile* out,
                  std::string* why = nullptr);

} // namespace vwr2a::obs
