#include "obs/capture.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <unordered_map>

namespace vwr2a::obs {

namespace {

constexpr char kMagic[8] = {'V', 'W', 'R', '2', 'A', 'T', 'R', 'C'};
constexpr std::uint32_t kFormatVersion = 1;

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}
void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) put_u8(out, static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) put_u8(out, static_cast<std::uint8_t>(v >> (8 * i)));
}

// Bounds-checked little-endian reader over the loaded file bytes.
class Reader {
 public:
  explicit Reader(const std::string& buf) : buf_(buf) {}
  bool u8(std::uint8_t* v) {
    if (pos_ + 1 > buf_.size()) return false;
    *v = static_cast<std::uint8_t>(buf_[pos_++]);
    return true;
  }
  bool u32(std::uint32_t* v) {
    if (pos_ + 4 > buf_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf_[pos_++]))
            << (8 * i);
    }
    return true;
  }
  bool u64(std::uint64_t* v) {
    if (pos_ + 8 > buf_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(buf_[pos_++]))
            << (8 * i);
    }
    return true;
  }
  bool bytes(std::string* v, std::size_t n) {
    if (pos_ + n > buf_.size()) return false;
    v->assign(buf_, pos_, n);
    pos_ += n;
    return true;
  }
  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  const std::string& buf_;
  std::size_t pos_ = 0;
};

bool fail(std::string* why, const char* msg) {
  if (why != nullptr) *why = msg;
  return false;
}

// JSON string escaping for event names (names are source literals, but the
// exporter should never emit broken JSON regardless).
void put_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
             << "0123456789abcdef"[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

} // namespace

Capture to_capture(const Tracer::Snapshot& snap) {
  Capture cap;
  cap.dropped = snap.dropped;
  cap.threads = snap.threads;
  std::unordered_map<const char*, std::uint32_t> interned;
  cap.events.reserve(snap.events.size());
  for (const TraceEvent& e : snap.events) {
    const char* name = e.name != nullptr ? e.name : "";
    auto [it, fresh] =
        interned.try_emplace(name, static_cast<std::uint32_t>(cap.names.size()));
    if (fresh) cap.names.emplace_back(name);
    Capture::Ev ev;
    ev.name = it->second;
    ev.tid = e.tid;
    ev.kind = e.kind;
    ev.ts_ns = e.ts_ns;
    ev.dur_ns = e.dur_ns;
    ev.window = e.window;
    ev.sim_begin = e.sim_begin;
    ev.sim_dur = e.sim_dur;
    ev.a1 = e.a1;
    ev.a2 = e.a2;
    ev.a3 = e.a3;
    cap.events.push_back(ev);
  }
  return cap;
}

bool save_capture(const Tracer::Snapshot& snap, const std::string& path,
                  std::string* why) {
  const Capture cap = to_capture(snap);
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, kFormatVersion);
  put_u32(out, cap.threads);
  put_u64(out, cap.dropped);
  put_u32(out, static_cast<std::uint32_t>(cap.names.size()));
  for (const std::string& n : cap.names) {
    put_u32(out, static_cast<std::uint32_t>(n.size()));
    out.append(n);
  }
  put_u64(out, cap.events.size());
  for (const Capture::Ev& e : cap.events) {
    put_u32(out, e.name);
    put_u32(out, e.tid);
    put_u8(out, e.kind);
    put_u64(out, e.ts_ns);
    put_u64(out, e.dur_ns);
    put_u64(out, e.window);
    put_u64(out, e.sim_begin);
    put_u64(out, e.sim_dur);
    put_u64(out, e.a1);
    put_u64(out, e.a2);
    put_u64(out, e.a3);
  }
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return fail(why, "cannot open capture file for writing");
  f.write(out.data(), static_cast<std::streamsize>(out.size()));
  f.flush();
  if (!f) return fail(why, "short write to capture file");
  return true;
}

bool load_capture(const std::string& path, Capture* out, std::string* why) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return fail(why, "cannot open capture file");
  std::string buf((std::istreambuf_iterator<char>(f)),
                  std::istreambuf_iterator<char>());
  Reader r(buf);
  std::string magic;
  if (!r.bytes(&magic, sizeof(kMagic)) ||
      std::memcmp(magic.data(), kMagic, sizeof(kMagic)) != 0) {
    return fail(why, "bad magic (not a .vwr2trc capture)");
  }
  std::uint32_t version = 0;
  if (!r.u32(&version)) return fail(why, "truncated header");
  if (version != kFormatVersion) return fail(why, "unsupported capture version");
  Capture cap;
  std::uint64_t nevents = 0;
  std::uint32_t nnames = 0;
  if (!r.u32(&cap.threads) || !r.u64(&cap.dropped) || !r.u32(&nnames)) {
    return fail(why, "truncated header");
  }
  // Every name needs at least its 4-byte length on disk.
  if (nnames > r.remaining() / 4) return fail(why, "name count exceeds file");
  cap.names.reserve(nnames);
  for (std::uint32_t i = 0; i < nnames; ++i) {
    std::uint32_t len = 0;
    std::string n;
    if (!r.u32(&len) || len > r.remaining() || !r.bytes(&n, len)) {
      return fail(why, "truncated string table");
    }
    cap.names.push_back(std::move(n));
  }
  if (!r.u64(&nevents)) return fail(why, "truncated event count");
  constexpr std::size_t kEvBytes = 4 + 4 + 1 + 8 * 8;
  if (nevents > r.remaining() / kEvBytes) {
    return fail(why, "event count exceeds file");
  }
  cap.events.reserve(nevents);
  for (std::uint64_t i = 0; i < nevents; ++i) {
    Capture::Ev e;
    if (!r.u32(&e.name) || !r.u32(&e.tid) || !r.u8(&e.kind) ||
        !r.u64(&e.ts_ns) || !r.u64(&e.dur_ns) || !r.u64(&e.window) ||
        !r.u64(&e.sim_begin) || !r.u64(&e.sim_dur) || !r.u64(&e.a1) ||
        !r.u64(&e.a2) || !r.u64(&e.a3)) {
      return fail(why, "truncated event record");
    }
    if (e.name >= cap.names.size()) return fail(why, "event name out of range");
    cap.events.push_back(e);
  }
  *out = std::move(cap);
  return true;
}

void write_chrome_json(const Capture& cap, std::ostream& os) {
  // Rebase timestamps so the viewer opens at t=0 with microsecond units.
  std::uint64_t t0 = ~std::uint64_t{0};
  for (const Capture::Ev& e : cap.events) t0 = std::min(t0, e.ts_ns);
  if (cap.events.empty()) t0 = 0;
  auto us = [&](std::uint64_t ns) {
    return static_cast<double>(ns - t0) / 1000.0;
  };
  auto dus = [](std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; };

  os << "{\"traceEvents\":[";
  bool first = true;
  for (const Capture::Ev& e : cap.events) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":";
    put_json_string(os, cap.name_of(e));
    os << ",\"ph\":\"" << (e.kind == 1 ? "i" : "X") << "\"";
    os << ",\"ts\":" << us(e.ts_ns);
    if (e.kind != 1) os << ",\"dur\":" << dus(e.dur_ns);
    if (e.kind == 1) os << ",\"s\":\"t\"";
    os << ",\"pid\":1,\"tid\":" << e.tid;
    os << ",\"args\":{";
    os << "\"window\":" << e.window;
    os << ",\"a1\":" << e.a1 << ",\"a2\":" << e.a2 << ",\"a3\":" << e.a3;
    if (e.sim_dur != 0 || e.sim_begin != 0) {
      os << ",\"sim_begin\":" << e.sim_begin << ",\"sim_cycles\":" << e.sim_dur;
    }
    os << "}}";
  }
  // Flow arrows: one chain per window id, start/step/finish through every
  // window-bound complete span in timestamp order.
  std::map<std::uint64_t, std::vector<std::size_t>> chains;
  for (std::size_t i = 0; i < cap.events.size(); ++i) {
    if (cap.events[i].window != 0 && cap.events[i].kind == 0) {
      chains[cap.events[i].window].push_back(i);
    }
  }
  for (auto& [window, idx] : chains) {
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return cap.events[a].ts_ns < cap.events[b].ts_ns;
    });
    if (idx.size() < 2) continue;
    for (std::size_t k = 0; k < idx.size(); ++k) {
      const Capture::Ev& e = cap.events[idx[k]];
      const char* ph = k == 0 ? "s" : (k + 1 == idx.size() ? "f" : "t");
      os << ",{\"name\":\"window\",\"cat\":\"window\",\"ph\":\"" << ph
         << "\",\"id\":" << window << ",\"ts\":" << us(e.ts_ns)
         << ",\"pid\":1,\"tid\":" << e.tid;
      if (*ph == 'f') os << ",\"bp\":\"e\"";
      os << "}";
    }
  }
  os << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":"
     << cap.dropped << ",\"threads\":" << cap.threads << "}}\n";
}

void write_chrome_json_merged(
    const std::vector<std::pair<std::string, const Capture*>>& procs,
    std::ostream& os) {
  // One shared timebase: all captures came from obs::now_ns on one host
  // (the loopback/TCP client and server are co-resident in this repo), so
  // the global minimum rebases every process onto the same t=0.
  std::uint64_t t0 = ~std::uint64_t{0};
  for (const auto& [label, cap] : procs) {
    for (const Capture::Ev& e : cap->events) t0 = std::min(t0, e.ts_ns);
  }
  if (t0 == ~std::uint64_t{0}) t0 = 0;
  auto us = [&](std::uint64_t ns) {
    return static_cast<double>(ns - t0) / 1000.0;
  };
  auto dus = [](std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; };

  os << "{\"traceEvents\":[";
  bool first = true;
  for (std::size_t p = 0; p < procs.size(); ++p) {
    const std::uint32_t pid = static_cast<std::uint32_t>(p + 1);
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"args\":{\"name\":";
    put_json_string(os, procs[p].first);
    os << "}}";
    for (const Capture::Ev& e : procs[p].second->events) {
      os << ",{\"name\":";
      put_json_string(os, procs[p].second->name_of(e));
      os << ",\"ph\":\"" << (e.kind == 1 ? "i" : "X") << "\"";
      os << ",\"ts\":" << us(e.ts_ns);
      if (e.kind != 1) os << ",\"dur\":" << dus(e.dur_ns);
      if (e.kind == 1) os << ",\"s\":\"t\"";
      os << ",\"pid\":" << pid << ",\"tid\":" << e.tid;
      os << ",\"args\":{\"window\":" << e.window;
      os << ",\"a1\":" << e.a1 << ",\"a2\":" << e.a2 << ",\"a3\":" << e.a3;
      if (e.sim_dur != 0 || e.sim_begin != 0) {
        os << ",\"sim_begin\":" << e.sim_begin
           << ",\"sim_cycles\":" << e.sim_dur;
      }
      os << "}}";
    }
  }
  // Cross-process flow arrows: one chain per window id over every process'
  // window-bound complete spans, in timestamp order. A window that appears
  // in both the client and the server capture gets arrows crossing the
  // process boundary -- the merge's whole point.
  struct Site {
    std::uint32_t pid, tid;
    std::uint64_t ts_ns;
  };
  std::map<std::uint64_t, std::vector<Site>> chains;
  for (std::size_t p = 0; p < procs.size(); ++p) {
    for (const Capture::Ev& e : procs[p].second->events) {
      if (e.window != 0 && e.kind == 0) {
        chains[e.window].push_back(
            {static_cast<std::uint32_t>(p + 1), e.tid, e.ts_ns});
      }
    }
  }
  for (auto& [window, sites] : chains) {
    std::sort(sites.begin(), sites.end(),
              [](const Site& a, const Site& b) { return a.ts_ns < b.ts_ns; });
    if (sites.size() < 2) continue;
    for (std::size_t k = 0; k < sites.size(); ++k) {
      const char* ph = k == 0 ? "s" : (k + 1 == sites.size() ? "f" : "t");
      os << ",{\"name\":\"window\",\"cat\":\"window\",\"ph\":\"" << ph
         << "\",\"id\":" << window << ",\"ts\":" << us(sites[k].ts_ns)
         << ",\"pid\":" << sites[k].pid << ",\"tid\":" << sites[k].tid;
      if (*ph == 'f') os << ",\"bp\":\"e\"";
      os << "}";
    }
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

std::vector<WindowChain> analyze_windows(const Capture& cap) {
  std::map<std::uint64_t, WindowChain> by_window;
  for (std::size_t i = 0; i < cap.events.size(); ++i) {
    const Capture::Ev& e = cap.events[i];
    if (e.window == 0) continue;
    WindowChain& c = by_window[e.window];
    c.window = e.window;
    c.events.push_back(i);
    const std::string& n = cap.name_of(e);
    if (n == "window.slice") c.has_slice = true;
    else if (n == "window.place") { c.has_place = true; c.place_ns += e.dur_ns; }
    else if (n == "window.queue" || n == "remote.queue") {
      c.has_queue = true;
      c.queue_ns += e.dur_ns;
    } else if (n == "device.run" || n == "remote.run") {
      c.has_run = true;
      c.run_ns += e.dur_ns;
      c.run_cycles += e.sim_dur;
    } else if (n == "window.complete") c.has_complete = true;
    else if (n == "window.deliver" || n == "remote.deliver") {
      c.has_deliver = true;
      c.deliver_ns += e.dur_ns;
    }
  }
  // "push" is not window-bound (one push feeds many windows): credit a
  // chain when a session.push/session.flush span on the slice's thread
  // encloses the slice's begin timestamp.
  struct PushSpan { std::uint32_t tid; std::uint64_t b, e; };
  std::vector<PushSpan> pushes;
  for (const Capture::Ev& e : cap.events) {
    const std::string& n = cap.name_of(e);
    if (n == "session.push" || n == "session.flush") {
      pushes.push_back({e.tid, e.ts_ns, e.ts_ns + e.dur_ns});
    }
  }
  std::vector<WindowChain> out;
  out.reserve(by_window.size());
  for (auto& [window, c] : by_window) {
    std::sort(c.events.begin(), c.events.end(),
              [&](std::size_t a, std::size_t b) {
                return cap.events[a].ts_ns < cap.events[b].ts_ns;
              });
    std::set<std::uint32_t> tids;
    for (std::size_t i : c.events) tids.insert(cap.events[i].tid);
    c.distinct_tids = static_cast<std::uint32_t>(tids.size());
    for (std::size_t i : c.events) {
      const Capture::Ev& e = cap.events[i];
      if (cap.name_of(e) != "window.slice") continue;
      for (const PushSpan& p : pushes) {
        if (p.tid == e.tid && p.b <= e.ts_ns && e.ts_ns <= p.e) {
          c.has_push = true;
          break;
        }
      }
    }
    out.push_back(std::move(c));
  }
  return out;
}

} // namespace vwr2a::obs
