#pragma once
// Flight recorder: per-thread ring-buffered span events following a window
// across threads. Each thread owns a fixed-capacity ring (drop-oldest when
// full, drops counted exactly); events carry both host-monotonic
// nanoseconds and, for device spans, simulated-cycle begin/duration, plus a
// propagated window id (obs::window_id) that lets the offline tools chain
// push -> slice -> place -> queue -> run -> complete -> deliver even though
// the stages run on different threads. Recording is gated on
// obs::tracing_enabled(); with tracing off a Span is inert after one
// relaxed load. See docs/observability.md for the span taxonomy.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace vwr2a::obs {

/// One recorded event. `name` must point at static-storage strings (string
/// literals at the instrumentation sites): rings store the pointer, the
/// capture writer builds a string table.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t ts_ns = 0;      ///< host-monotonic begin (obs::now_ns)
  std::uint64_t dur_ns = 0;     ///< 0 for instants
  std::uint64_t window = 0;     ///< obs::window_id(...), 0 = not window-bound
  std::uint64_t sim_begin = 0;  ///< device-local simulated cycle at begin
  std::uint64_t sim_dur = 0;    ///< simulated cycles covered by the span
  std::uint64_t a1 = 0;         ///< per-name args, see docs/observability.md
  std::uint64_t a2 = 0;
  std::uint64_t a3 = 0;
  std::uint32_t tid = 0;        ///< obs::thread_slot() of the emitting thread
  std::uint8_t kind = 0;        ///< 0 = complete span, 1 = instant
};

/// Stable id for window `index` of session `session`: chains one window's
/// spans across producer, worker and completer threads. Unique while a
/// capture covers a single StreamServer (session ids are per-server).
constexpr std::uint64_t window_id(std::uint64_t session, std::uint64_t index) {
  return ((session + 1) << 24) | (index & 0xffffffu);
}
constexpr std::uint64_t window_session(std::uint64_t id) {
  return (id >> 24) - 1;
}
constexpr std::uint64_t window_index(std::uint64_t id) {
  return id & 0xffffffu;
}

/// Process-wide tracer: owns one ring per thread that ever emitted.
/// emit() locks only the emitting thread's own ring mutex (uncontended
/// except while a snapshot drains it); rings never reallocate after
/// creation. snapshot()/save() may run concurrently with emitters.
class Tracer {
 public:
  static Tracer& get();

  /// Record into this thread's ring (creates it on first use). The caller
  /// is expected to have checked tracing_enabled(); emit() re-checks and
  /// drops when disabled. tid/ts_ns are stamped here if left 0.
  void emit(TraceEvent e);

  /// Capacity (events) for rings created after this call. Existing rings
  /// keep their size. Default 32768 events/thread (~2.6 MB).
  void set_ring_capacity(std::size_t cap);

  struct Snapshot {
    std::vector<TraceEvent> events;  ///< per-ring oldest-to-newest order
    std::uint64_t dropped = 0;       ///< total drop-oldest evictions, exact
    std::uint32_t threads = 0;       ///< rings that recorded >= 1 event
  };
  Snapshot snapshot() const;

  /// Clear every ring's contents and drop counters (rings stay attached to
  /// their threads). Use between runs sharing a process.
  void reset();

  /// Write snapshot() as a binary .vwr2trc capture (see obs/capture.hpp).
  /// Returns false and fills *why on I/O failure.
  bool save(const std::string& path, std::string* why = nullptr) const;

 private:
  Tracer() = default;
  struct Ring;
  Ring& ring();
  struct Impl;
  Impl& impl() const;
};

/// RAII complete-span: stamps begin at construction, emits at destruction
/// with the measured host duration. Inert (one relaxed load) when tracing
/// is off at construction.
class Span {
 public:
  explicit Span(const char* name, std::uint64_t window = 0,
                std::uint64_t a1 = 0, std::uint64_t a2 = 0,
                std::uint64_t a3 = 0) {
    if (tracing_enabled()) {
      active_ = true;
      e_.name = name;
      e_.window = window;
      e_.a1 = a1;
      e_.a2 = a2;
      e_.a3 = a3;
      e_.ts_ns = now_ns();
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (active_) {
      e_.dur_ns = now_ns() - e_.ts_ns;
      Tracer::get().emit(e_);
    }
  }

  bool active() const { return active_; }
  /// Attach simulated-cycle begin/duration (device spans).
  void set_sim(std::uint64_t begin, std::uint64_t dur) {
    e_.sim_begin = begin;
    e_.sim_dur = dur;
  }
  void set_args(std::uint64_t a1, std::uint64_t a2, std::uint64_t a3 = 0) {
    e_.a1 = a1;
    e_.a2 = a2;
    e_.a3 = a3;
  }

 private:
  TraceEvent e_{};
  bool active_ = false;
};

/// Zero-duration event at now.
inline void instant(const char* name, std::uint64_t window = 0,
                    std::uint64_t a1 = 0, std::uint64_t a2 = 0,
                    std::uint64_t a3 = 0) {
  if (!tracing_enabled()) return;
  TraceEvent e;
  e.name = name;
  e.window = window;
  e.a1 = a1;
  e.a2 = a2;
  e.a3 = a3;
  e.kind = 1;
  Tracer::get().emit(e);
}

/// Complete span whose begin predates the call (e.g. queue wait stamped at
/// enqueue, emitted by the dequeuing worker).
inline void complete(const char* name, std::uint64_t window,
                     std::uint64_t ts_ns, std::uint64_t dur_ns,
                     std::uint64_t a1 = 0, std::uint64_t a2 = 0,
                     std::uint64_t a3 = 0) {
  if (!tracing_enabled()) return;
  TraceEvent e;
  e.name = name;
  e.window = window;
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  e.a1 = a1;
  e.a2 = a2;
  e.a3 = a3;
  Tracer::get().emit(e);
}

} // namespace vwr2a::obs
