#pragma once
// Global observability gate. The whole obs layer (metrics registry,
// tracer) is always compiled in and off by default; every instrumentation
// site in the hot path is guarded by metrics_enabled()/tracing_enabled(),
// which cost exactly one relaxed atomic load when the layer is disabled --
// the hard budget bench/obs_overhead.cpp gates. Observability only ever
// *reads* the simulation: no placement decision, job cost or output may
// depend on whether it is on (bit/cycle/energy identity is asserted by the
// overhead bench).

#include <atomic>
#include <chrono>
#include <cstdint>

namespace vwr2a::obs {

/// Feature bits of the single global flag word.
enum Feature : std::uint32_t {
  kMetrics = 1u << 0,  ///< counters/gauges/histograms record
  kTracing = 1u << 1,  ///< span events are written to the thread rings
  /// Cross-wire span propagation (protocol v6): the runtime stamps
  /// JobResult::Timing and the gateway ships the per-window breakdown in
  /// WINDOW_RESULT. Orthogonal to kTracing so a remote client can get the
  /// server-side breakdown without the server recording local rings.
  kSpans = 1u << 2,
};

namespace detail {
/// The only state a disabled hot path touches. constinit: no init guard.
inline constinit std::atomic<std::uint32_t> g_flags{0};
} // namespace detail

/// True while the metrics registry records. One relaxed load.
inline bool metrics_enabled() {
  return (detail::g_flags.load(std::memory_order_relaxed) & kMetrics) != 0;
}

/// True while the tracer records. One relaxed load.
inline bool tracing_enabled() {
  return (detail::g_flags.load(std::memory_order_relaxed) & kTracing) != 0;
}

/// True while wire-span propagation is on (v6 WINDOW_RESULT breakdown).
/// One relaxed load.
inline bool spans_enabled() {
  return (detail::g_flags.load(std::memory_order_relaxed) & kSpans) != 0;
}

inline void set_metrics(bool on) {
  if (on) {
    detail::g_flags.fetch_or(kMetrics, std::memory_order_relaxed);
  } else {
    detail::g_flags.fetch_and(~std::uint32_t{kMetrics},
                              std::memory_order_relaxed);
  }
}

inline void set_tracing(bool on) {
  if (on) {
    detail::g_flags.fetch_or(kTracing, std::memory_order_relaxed);
  } else {
    detail::g_flags.fetch_and(~std::uint32_t{kTracing},
                              std::memory_order_relaxed);
  }
}

inline void set_spans(bool on) {
  if (on) {
    detail::g_flags.fetch_or(kSpans, std::memory_order_relaxed);
  } else {
    detail::g_flags.fetch_and(~std::uint32_t{kSpans},
                              std::memory_order_relaxed);
  }
}

/// Small dense per-thread id (0, 1, 2, ... in thread-creation order):
/// shard selector for the metrics and the `tid` of trace events. Only
/// called on enabled paths, so the thread_local init guard is off the
/// disabled budget.
inline std::uint32_t thread_slot() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

/// Host-monotonic nanoseconds (std::chrono::steady_clock).
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace vwr2a::obs
