#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

namespace vwr2a::obs {

// ---------------------------------------------------------------- Histogram

std::size_t Histogram::bucket_of(std::uint64_t v) {
  if (v < 8) return static_cast<std::size_t>(v);
  // msb >= 3. Sub-bucket = the two bits below the msb: bucket widths grow
  // with the value, keeping relative error < 1/4.
  const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(v));
  const std::size_t sub = static_cast<std::size_t>((v >> (msb - 2)) & 3u);
  return 8 + static_cast<std::size_t>(msb - 3) * 4 + sub;
}

std::uint64_t Histogram::bucket_upper(std::size_t i) {
  if (i < 8) return static_cast<std::uint64_t>(i);
  const unsigned msb = static_cast<unsigned>((i - 8) / 4) + 3;
  const std::uint64_t sub = (i - 8) % 4;
  const std::uint64_t lower =
      (std::uint64_t{1} << msb) + (sub << (msb - 2));
  return lower + (std::uint64_t{1} << (msb - 2)) - 1;
}

std::uint64_t Histogram::count() const {
  std::uint64_t n = 0;
  for (const Shard& s : shards_) n += s.count.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t Histogram::sum() const {
  std::uint64_t n = 0;
  for (const Shard& s : shards_) n += s.sum.load(std::memory_order_relaxed);
  return n;
}

std::vector<std::uint64_t> Histogram::buckets() const {
  std::vector<std::uint64_t> out(kBuckets, 0);
  for (const Shard& s : shards_) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      out[i] += s.bucket[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::uint64_t Histogram::quantile(double p) const {
  const std::vector<std::uint64_t> b = buckets();
  std::uint64_t total = 0;
  for (std::uint64_t c : b) total += c;
  if (total == 0) return 0;
  p = std::min(std::max(p, 0.0), 1.0);
  // Rank of the requested quantile, 1-based; p=0 maps to the first sample.
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                     std::ceil(p * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += b[i];
    if (seen >= rank) return bucket_upper(i);
  }
  return bucket_upper(kBuckets - 1);
}

void Histogram::reset() {
  for (Shard& s : shards_) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      s.bucket[i].store(0, std::memory_order_relaxed);
    }
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
  }
}

// ----------------------------------------------------------------- Registry

struct Registry::Impl {
  mutable std::mutex mu;
  // unique_ptr values: the maps may rehash/rebalance but metric addresses
  // are stable, which is what lets call sites cache references.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry& Registry::get() {
  static Registry* r = new Registry();  // leaked: references outlive main
  return *r;
}

Registry::Impl& Registry::impl() const {
  static Impl* i = new Impl();
  return *i;
}

Counter& Registry::counter(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& slot = im.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& slot = im.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& slot = im.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<Registry::Entry> Registry::entries() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::vector<Entry> out;
  out.reserve(im.counters.size() + im.gauges.size() + im.histograms.size());
  for (const auto& [name, c] : im.counters) {
    out.push_back({name, Entry::Kind::kCounter, c.get(), nullptr, nullptr});
  }
  for (const auto& [name, g] : im.gauges) {
    out.push_back({name, Entry::Kind::kGauge, nullptr, g.get(), nullptr});
  }
  for (const auto& [name, h] : im.histograms) {
    out.push_back({name, Entry::Kind::kHistogram, nullptr, nullptr, h.get()});
  }
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.name < b.name; });
  return out;
}

namespace {
std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    if (!ok) c = '_';
  }
  return out;
}
} // namespace

std::string Registry::dump_prometheus() const {
  std::ostringstream os;
  for (const Entry& e : entries()) {
    const std::string n = sanitize(e.name);
    switch (e.kind) {
      case Entry::Kind::kCounter:
        os << "# TYPE " << n << " counter\n"
           << n << " " << e.counter->value() << "\n";
        break;
      case Entry::Kind::kGauge:
        os << "# TYPE " << n << " gauge\n"
           << n << " " << e.gauge->value() << "\n";
        break;
      case Entry::Kind::kHistogram:
        os << "# TYPE " << n << " summary\n";
        os << n << "{quantile=\"0.5\"} " << e.histogram->quantile(0.5) << "\n";
        os << n << "{quantile=\"0.95\"} " << e.histogram->quantile(0.95)
           << "\n";
        os << n << "{quantile=\"0.99\"} " << e.histogram->quantile(0.99)
           << "\n";
        os << n << "_sum " << e.histogram->sum() << "\n";
        os << n << "_count " << e.histogram->count() << "\n";
        break;
    }
  }
  return os.str();
}

void Registry::reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (auto& [name, c] : im.counters) c->reset();
  for (auto& [name, g] : im.gauges) g->reset();
  for (auto& [name, h] : im.histograms) h->reset();
}

} // namespace vwr2a::obs
