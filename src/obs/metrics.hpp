#pragma once
// Typed metrics registry: counters, gauges and log-bucketed histograms
// behind one enumerable dot-separated namespace ("fleet.jobs_rescued",
// "session.3.windows_delivered", "gateway.bytes_in", ...). Counters and
// histograms record through cache-line-aligned per-thread shards (a relaxed
// fetch_add on the shard picked by obs::thread_slot()) so concurrent
// recording never contends on one line; reads sum the shards and are exact
// for counters. Registration hands out stable references -- a metric, once
// created, lives until process exit, so hot paths may cache `static
// Counter&` locals. Reads (value(), quantile(), dump_prometheus()) are
// approximate-in-time snapshots, safe to call concurrently with writers.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace vwr2a::obs {

/// Monotonic counter. add() is lock-free: one relaxed fetch_add on a
/// per-thread shard. value() sums the shards (exact: adds never get lost,
/// a snapshot may merely trail in-flight adds).
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    shards_[thread_slot() & (kShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }
  void reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kShards = 16;  // power of two
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  Shard shards_[kShards];
};

/// Point-in-time signed value (occupancy, queue depth).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { set(0); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log-bucketed histogram over the full u64 range: values 0..7 get exact
/// buckets, every later power of two is split into 4 sub-buckets (bucket
/// width = value's power of two / 4, so a reported bound overestimates by
/// < 25%), 248 + 8 = 256 buckets total. record() is one
/// relaxed fetch_add per field on a per-thread shard; quantile() walks the
/// summed bucket CDF and returns the inclusive upper bound of the bucket
/// holding the requested rank, so reported percentiles never understate.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 256;

  void record(std::uint64_t v) {
    Shard& s = shards_[thread_slot() & (kShards - 1)];
    s.bucket[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }

  std::uint64_t count() const;
  std::uint64_t sum() const;
  /// Value at quantile p in [0,1]; 0 when empty. p=0.5 -> p50, etc.
  std::uint64_t quantile(double p) const;
  void reset();

  /// Summed per-bucket counts (for exposition / tests).
  std::vector<std::uint64_t> buckets() const;

  static std::size_t bucket_of(std::uint64_t v);
  /// Inclusive upper bound of bucket i (the value quantile() reports).
  static std::uint64_t bucket_upper(std::size_t i);

 private:
  static constexpr std::size_t kShards = 4;  // power of two
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> bucket[kBuckets]{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };
  Shard shards_[kShards];
};

/// Process-wide named-metric registry. counter()/gauge()/histogram()
/// find-or-create under a mutex (registration is off the hot path -- sites
/// cache the returned reference in a function-local static) and the
/// returned references stay valid forever. Names are free-form
/// dot-separated paths; dump_prometheus() sanitizes them for exposition.
class Registry {
 public:
  static Registry& get();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  struct Entry {
    enum class Kind { kCounter, kGauge, kHistogram };
    std::string name;
    Kind kind;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };
  /// Snapshot of every registered metric, sorted by name.
  std::vector<Entry> entries() const;

  /// Prometheus text exposition: counters/gauges as plain samples,
  /// histograms as summaries (quantile 0.5/0.95/0.99 + _sum + _count).
  /// '.' and any other non-[a-zA-Z0-9_] byte in names becomes '_'.
  std::string dump_prometheus() const;

  /// Zero every registered metric (benches/tests between runs). Metrics
  /// stay registered; cached references stay valid.
  void reset();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

} // namespace vwr2a::obs
