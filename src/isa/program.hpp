#pragma once
// Kernel program containers. A ColumnProgram is one column's worth of
// per-slot instruction streams, already encoded to configuration words; a
// KernelImage is what the configuration memory stores for one kernel
// (programs for one or both columns plus metadata).

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace vwr2a::isa {

/// One column's instruction streams: for each of the 7 slots (LCU, LSU,
/// MXCU, RC0..RC3) a vector of encoded configuration words, all the same
/// length (the slots advance in lock-step behind the shared PC).
class ColumnProgram {
 public:
  ColumnProgram() = default;

  /// Number of configuration words per slot stream.
  unsigned length() const { return length_; }

  /// Appends one VLIW line (one word per slot). Throws AsmError past the
  /// 64-word program memory.
  void append_line(const std::array<std::uint32_t, arch::kSlotsPerColumn>& line) {
    if (length_ >= arch::kProgramWords) {
      throw AsmError("ColumnProgram: program exceeds 64-word program memory");
    }
    for (unsigned s = 0; s < arch::kSlotsPerColumn; ++s) {
      streams_[s].push_back(line[s]);
    }
    ++length_;
  }

  /// The encoded word for `slot` at program address `pc`.
  std::uint32_t word(Slot slot, unsigned pc) const {
    if (pc >= length_) throw RangeError("ColumnProgram: pc out of range");
    return streams_[slot_index(slot)][pc];
  }

  /// Full stream for one slot.
  const std::vector<std::uint32_t>& stream(Slot slot) const {
    return streams_[slot_index(slot)];
  }

  /// Overwrites one word (used by the builder's label fix-ups).
  void patch(Slot slot, unsigned pc, std::uint32_t w) {
    if (pc >= length_) throw RangeError("ColumnProgram: patch pc out of range");
    streams_[slot_index(slot)][pc] = w;
  }

  bool operator==(const ColumnProgram&) const = default;

 private:
  std::array<std::vector<std::uint32_t>, arch::kSlotsPerColumn> streams_{};
  unsigned length_ = 0;
};

/// Which columns a kernel occupies.
enum class ColumnSet : std::uint8_t {
  kCol0 = 1,
  kCol1 = 2,
  kBoth = 3,  ///< both columns, PCs synchronized (paper Sec 3.3.3)
};

/// True if the set contains column c (0 or 1).
constexpr bool contains(ColumnSet s, unsigned c) {
  return (static_cast<unsigned>(s) >> c) & 1u;
}

/// A kernel as stored in the configuration memory: a name (debug only), the
/// column occupancy, and one program per occupied column. Both-column kernels
/// may use distinct per-column programs of equal length.
struct KernelImage {
  std::string name;
  ColumnSet columns = ColumnSet::kCol0;
  std::array<ColumnProgram, arch::kNumColumns> program{};

  /// Longest slot stream over occupied columns: the configuration-load cost
  /// in cycles (unit program memories are filled in parallel, one word per
  /// unit per cycle).
  unsigned load_cycles() const {
    unsigned n = 0;
    for (unsigned c = 0; c < arch::kNumColumns; ++c) {
      if (contains(columns, c)) n = std::max(n, program[c].length());
    }
    return n;
  }

  /// Total configuration words across occupied columns and slots (energy).
  unsigned total_words() const {
    unsigned n = 0;
    for (unsigned c = 0; c < arch::kNumColumns; ++c) {
      if (contains(columns, c)) n += program[c].length() * arch::kSlotsPerColumn;
    }
    return n;
  }
};

} // namespace vwr2a::isa
