#pragma once
// Decoded instruction structs for the four slot types, plus encode/decode
// between the structs and 32-bit configuration words. The structs are the
// working representation used by the assembler and the simulator; the encoded
// words are what the configuration memory stores and what the energy model
// charges fetches for.

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "isa/opcodes.hpp"

namespace vwr2a::isa {

/// A decoded RC (reconfigurable-cell) instruction.
struct RcInstr {
  RcOp op = RcOp::kNop;
  RcSrc src_a = RcSrc::kZero;
  RcSrc src_b = RcSrc::kZero;
  RcDst dst = RcDst::kNone;
  std::uint8_t srf = 0;    ///< SRF entry used by kSrf source or kSrf dst
  std::int8_t imm = 0;     ///< value of the kImm source

  bool operator==(const RcInstr&) const = default;
};

/// A decoded LSU instruction.
struct LsuInstr {
  LsuOp op = LsuOp::kNop;
  VwrSel vwr = VwrSel::A;       ///< target VWR for kLdVwr/kStVwr; for
                                ///< kSetPtr, bit 0 selects P0/P1
  ShufMode mode = ShufMode::kInterleaveLo;  ///< shuffle mode for kShuf
  LsuAddrMode amode = LsuAddrMode::kImm;    ///< address computation
  std::uint8_t srf_base = 0;    ///< SRF entry holding the address base
  std::uint8_t srf_data = 0;    ///< SRF entry read/written by kLdSrf/kStSrf
  std::int16_t imm = 0;         ///< row/word index, or post-increment stride

  bool operator==(const LsuInstr&) const = default;
};

/// A decoded MXCU instruction.
struct MxcuInstr {
  MxcuOp op = MxcuOp::kNop;
  std::uint8_t srf = 0;
  std::int16_t imm = 0;   ///< 12-bit signed immediate

  bool operator==(const MxcuInstr&) const = default;
};

/// A decoded LCU instruction.
struct LcuInstr {
  LcuOp op = LcuOp::kNop;
  std::uint8_t rd = 0;       ///< destination loop register
  std::uint8_t ra = 0;       ///< comparison lhs
  std::uint8_t rb = 0;       ///< comparison rhs
  std::uint8_t srf = 0;      ///< SRF entry for kMvSrf/kStSrf/kBsrf*
  std::uint8_t target = 0;   ///< branch target (program address, 0..63)
  std::int16_t imm = 0;      ///< 10-bit signed immediate

  bool operator==(const LcuInstr&) const = default;
};

// --- encode: struct -> 32-bit configuration word ---------------------------
std::uint32_t encode(const RcInstr& i);
std::uint32_t encode(const LsuInstr& i);
std::uint32_t encode(const MxcuInstr& i);
std::uint32_t encode(const LcuInstr& i);

// --- decode: 32-bit configuration word -> struct. Throws DecodeError on an
// illegal opcode or field value. ---------------------------------------------
RcInstr decode_rc(std::uint32_t w);
LsuInstr decode_lsu(std::uint32_t w);
MxcuInstr decode_mxcu(std::uint32_t w);
LcuInstr decode_lcu(std::uint32_t w);

/// Decodes the word for the given slot and returns a one-line disassembly.
std::string disassemble(Slot slot, std::uint32_t w);

// --- per-format disassembly -------------------------------------------------
std::string to_asm(const RcInstr& i);
std::string to_asm(const LsuInstr& i);
std::string to_asm(const MxcuInstr& i);
std::string to_asm(const LcuInstr& i);

// --- validation: throws AsmError if a field is out of range (e.g., SRF index
// >= 8, branch target >= 64, immediate does not fit its field). --------------
void validate(const RcInstr& i);
void validate(const LsuInstr& i);
void validate(const MxcuInstr& i);
void validate(const LcuInstr& i);

} // namespace vwr2a::isa
