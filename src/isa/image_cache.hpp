#pragma once
// Shared kernel-image cache. Assembling a CASM program into an encoded
// KernelImage is pure host-side work (it costs simulator time, not modeled
// cycles), but it is the dominant setup cost when a fleet of simulated
// VWR2A devices all need the same kernels. The cache assembles each image
// once, keyed by a caller-chosen string, and hands out shared ownership of
// the immutable result; every device's configuration memory then aliases
// the same image instead of keeping a private copy.
//
// Thread-safe, compile-once. Worker threads of the runtime pool race
// through get_or_build() when they lazily instantiate kernels. Each key
// owns a once-flag: the first thread to miss a key runs the builder (or the
// artifact source, below) outside the cache-wide lock, every other thread
// racing on the *same* key blocks on that key's flag, and threads missing
// *different* keys assemble concurrently. Exactly one build per key ever
// runs -- Stats::builds counts actual builder executions, so a duplicate
// build would be observable, and tests/test_artifact.cpp pins builds == 1
// under a deliberate many-thread race.
//
// Hydration. An ImageSource (e.g. artifact::Store, a mmap'd prebuilt
// binary artifact) can be attached with set_source(): a miss first asks the
// source for a prebuilt image and only falls back to the in-process builder
// when the source has no entry. Hydrated and built images are
// indistinguishable to callers (the builder is deterministic and the
// artifact stores its exact output); Stats splits misses into builds vs
// hydrated so cold-start telemetry can see the artifact working.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "cgra/tracecache.hpp"
#include "isa/program.hpp"

namespace vwr2a::isa {

/// A read-only provider of prebuilt kernel images consulted on cache miss
/// (implemented by artifact::Store). Must be safe to call concurrently.
/// Returning nullptr means "not in the artifact": the caller assembles
/// in-process, transparently.
class ImageSource {
 public:
  virtual ~ImageSource() = default;
  virtual std::shared_ptr<const KernelImage> load_image(
      const std::string& key) = 0;
};

/// Process-wide (or pool-wide) cache of assembled kernel images.
class ImageCache {
 public:
  /// Cache effectiveness counters.
  struct Stats {
    std::uint64_t hits = 0;    ///< lookups that found the key present
    std::uint64_t misses = 0;  ///< lookups that created the key's entry
    std::size_t entries = 0;   ///< images currently cached
    std::uint64_t builds = 0;    ///< in-process builder executions
    std::uint64_t hydrated = 0;  ///< misses served by the artifact source
  };

  /// Returns the image cached under `key`, building (and caching) it on
  /// first use -- from the attached artifact source when it has the key,
  /// via `build` otherwise. The returned image is immutable and shared.
  /// Concurrent callers of the same key run `build` exactly once.
  std::shared_ptr<const KernelImage> get_or_build(
      const std::string& key, const std::function<KernelImage()>& build) {
    std::shared_ptr<Entry> e;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = images_.find(key);
      if (it != images_.end()) {
        ++hits_;
        e = it->second;
      } else {
        ++misses_;
        e = std::make_shared<Entry>();
        images_.emplace(key, e);
      }
    }
    std::call_once(e->once, [&] {
      std::shared_ptr<const KernelImage> image;
      if (source_ != nullptr) image = source_->load_image(key);
      if (image != nullptr) {
        hydrated_.fetch_add(1, std::memory_order_relaxed);
      } else {
        image = std::make_shared<const KernelImage>(build());
        builds_.fetch_add(1, std::memory_order_relaxed);
      }
      e->image = std::move(image);
    });
    return e->image;
  }

  /// Attaches (or detaches, nullptr) the prebuilt-image source. Not
  /// synchronized against in-flight lookups: attach before the cache goes
  /// concurrent (the DevicePool attaches in its constructor, before any
  /// job can run). Keys already cached are unaffected.
  void set_source(ImageSource* source) { source_ = source; }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return Stats{hits_, misses_, images_.size(),
                 builds_.load(std::memory_order_relaxed),
                 hydrated_.load(std::memory_order_relaxed)};
  }

  /// Visits every completed image in key order (in-flight builds are
  /// skipped). Runs under the cache lock with the cache quiescent by
  /// contract -- this is the artifact builder's enumeration hook, not a
  /// runtime path.
  void for_each_image(
      const std::function<void(const std::string&,
                               const std::shared_ptr<const KernelImage>&)>& fn)
      const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, entry] : images_) {
      if (entry->image != nullptr) fn(key, entry->image);
    }
  }

  /// Compiled-trace cache living next to the encoded images: every device
  /// of a pool that runs in ExecMode::kTraceCache shares compilation work
  /// here, exactly as it shares assembled images above.
  cgra::TraceCache& traces() { return traces_; }
  const cgra::TraceCache& traces() const { return traces_; }

 private:
  /// One key's slot. The once-flag serializes that key's build; the image
  /// pointer is written exactly once, inside call_once, and is safe to read
  /// by any thread that passed the flag.
  struct Entry {
    std::once_flag once;
    std::shared_ptr<const KernelImage> image;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Entry>> images_;
  ImageSource* source_ = nullptr;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::atomic<std::uint64_t> builds_{0};
  std::atomic<std::uint64_t> hydrated_{0};
  cgra::TraceCache traces_;  ///< thread-safe on its own lock
};

} // namespace vwr2a::isa
