#pragma once
// Shared kernel-image cache. Assembling a CASM program into an encoded
// KernelImage is pure host-side work (it costs simulator time, not modeled
// cycles), but it is the dominant setup cost when a fleet of simulated
// VWR2A devices all need the same kernels. The cache assembles each image
// once, keyed by a caller-chosen string, and hands out shared ownership of
// the immutable result; every device's configuration memory then aliases
// the same image instead of keeping a private copy.
//
// Thread-safe: worker threads of the runtime pool race through
// get_or_build() when they lazily instantiate kernels. The builder runs
// under the lock, which serializes assembly; builds are deterministic and
// fast, so contention is preferable to double-building.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "cgra/tracecache.hpp"
#include "isa/program.hpp"

namespace vwr2a::isa {

/// Process-wide (or pool-wide) cache of assembled kernel images.
class ImageCache {
 public:
  /// Cache effectiveness counters.
  struct Stats {
    std::uint64_t hits = 0;    ///< lookups served from the cache
    std::uint64_t misses = 0;  ///< lookups that ran the builder
    std::size_t entries = 0;   ///< images currently cached
  };

  /// Returns the image cached under `key`, building (and caching) it with
  /// `build` on first use. The returned image is immutable and shared.
  std::shared_ptr<const KernelImage> get_or_build(
      const std::string& key, const std::function<KernelImage()>& build) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = images_.find(key);
    if (it != images_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
    auto image = std::make_shared<const KernelImage>(build());
    images_.emplace(key, image);
    return image;
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return Stats{hits_, misses_, images_.size()};
  }

  /// Compiled-trace cache living next to the encoded images: every device
  /// of a pool that runs in ExecMode::kTraceCache shares compilation work
  /// here, exactly as it shares assembled images above.
  cgra::TraceCache& traces() { return traces_; }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const KernelImage>> images_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  cgra::TraceCache traces_;  ///< thread-safe on its own lock
};

} // namespace vwr2a::isa
