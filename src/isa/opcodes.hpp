#pragma once
// Instruction-set definition for the four VWR2A slot types.
//
// The paper (Sec 3.1) states that "the bits of the configuration words
// ('instructions') correspond directly to the control signals in the cell
// datapaths, without an actual decoding process". It does not publish the
// binary layouts, so this header defines a concrete reconstruction. Each
// slot type has a 32-bit configuration word; value 0 is NOP in every format.
//
// RC word layout (reconstruction):
//   [31:27] opcode        [26:23] srcA          [22:19] srcB
//   [18:16] dst           [15:13] srf index     [12:8] reserved
//   [7:0]   imm8 (signed, used when a source is IMM)
//
// LSU word layout:
//   [31:28] opcode        [27:26] vwr select / pointer select
//   [25:23] shuffle mode  [22:21] addressing mode
//   [20:18] srf base      [17:15] srf data      [13:0] imm14 (row or word)
//
// MXCU word layout:
//   [31:28] opcode        [26:24] srf index     [11:0] imm12 (signed)
//
// LCU word layout:
//   [31:27] opcode        [26:25] rd            [24:23] ra
//   [22:21] rb            [20:18] srf index     [17:12] branch target
//   [9:0]   imm10 (signed)

#include <cstdint>

namespace vwr2a::isa {

// ---------------------------------------------------------------------------
// RC: reconfigurable cell (datapath slot)
// ---------------------------------------------------------------------------

/// RC ALU operations (paper Sec 3.1: signed add/sub/mul, logic, shifts, and
/// the two multiplier modes). Comparison ops produce 0/1 predicates that the
/// LCU can branch on after the RC stores them to the SRF.
enum class RcOp : std::uint8_t {
  kNop = 0,
  kSadd,    ///< dst = a + b (signed, wrap)
  kSsub,    ///< dst = a - b
  kSmul,    ///< dst = low 32 bits of a * b (standard multiplier mode)
  kFxpMul,  ///< dst = bits [47:16] of a * b (fixed-point 16.15 mode)
  kSll,     ///< dst = a << (b & 31)
  kSrl,     ///< dst = logical a >> (b & 31)
  kSra,     ///< dst = arithmetic a >> (b & 31)
  kLand,    ///< dst = a & b
  kLor,     ///< dst = a | b
  kLxor,    ///< dst = a ^ b
  kLnot,    ///< dst = ~a
  kMv,      ///< dst = a
  kCmpEq,   ///< dst = (a == b) ? 1 : 0
  kCmpLt,   ///< dst = (a < b) ? 1 : 0   (signed)
  kCmpLe,   ///< dst = (a <= b) ? 1 : 0  (signed)
  kMax,     ///< dst = max(a, b) (signed)
  kMin,     ///< dst = min(a, b) (signed)
  kAbs,     ///< dst = |a| (signed; INT_MIN saturates to INT_MAX)
  kCount,
};

/// RC operand sources. VWR reads go through the multiplexer network at the
/// column's shared slice index; neighbour sources read the previous-cycle
/// ALU result of the adjacent cell (paper Sec 3.1).
enum class RcSrc : std::uint8_t {
  kZero = 0,  ///< constant 0
  kOne,       ///< constant 1
  kR0,        ///< local register file entry 0
  kR1,        ///< local register file entry 1
  kVwrA,      ///< word [slice, index] of VWR A
  kVwrB,      ///< word [slice, index] of VWR B
  kVwrC,      ///< word [slice, index] of VWR C
  kSrf,       ///< SRF[srf] (consumes the column SRF port)
  kRcUp,      ///< previous-cycle result of the RC above (wraps)
  kRcDown,    ///< previous-cycle result of the RC below (wraps)
  kRcCross,   ///< previous-cycle result of the same-row RC in the other column
  kImm,       ///< sign-extended imm8 from the configuration word
  kCount,
};

/// RC result destinations. VWR writes land in the RC's own slice at the
/// shared index; SRF writes consume the column SRF port.
enum class RcDst : std::uint8_t {
  kNone = 0,  ///< discard (operand isolation keeps datapath quiet on NOP)
  kR0,
  kR1,
  kVwrA,
  kVwrB,
  kVwrC,
  kSrf,
  kCount,
};

// ---------------------------------------------------------------------------
// LSU: load-store unit (paper Sec 3.3.1)
// ---------------------------------------------------------------------------

/// LSU operations: whole-row transfers between the SPM and a VWR, scalar
/// transfers between the SPM and the SRF, shuffle-unit operations, and
/// pointer-register management.
///
/// The LSU has two private pointer registers (P0, P1) with post-increment
/// addressing. This is a reconstruction choice: serial scans (delineation,
/// Sec 5.2.2) need per-element addresses, and routing those through the
/// single-ported SRF every cycle would conflict with the SRF data accesses
/// of the same instructions. A load-store unit with auto-increment pointers
/// is standard practice in DSP datapaths.
enum class LsuOp : std::uint8_t {
  kNop = 0,
  kLdVwr,   ///< VWR[vwr] = SPM.row[addr]
  kStVwr,   ///< SPM.row[addr] = VWR[vwr]
  kLdSrf,   ///< SRF[srf_data] = SPM.word[addr]
  kStSrf,   ///< SPM.word[addr] = SRF[srf_data]
  kShuf,    ///< VWR C = shuffle(VWR A, VWR B, mode)
  kSetPtr,  ///< P[ptr] = SRF[srf_base] + imm
  kCount,
};

/// LSU addressing modes.
enum class LsuAddrMode : std::uint8_t {
  kImm = 0,     ///< addr = imm
  kSrfImm,      ///< addr = SRF[srf_base] + imm
  kPtr0Post,    ///< addr = P0; P0 += signed imm after the access
  kPtr1Post,    ///< addr = P1; P1 += signed imm after the access
  kCount,
};

/// Hard-wired shuffle operations (paper Sec 3.3.1). All operate on the
/// 256-word concatenation of VWRs A and B; LO/HI selects which 128-word half
/// of the conceptual 256-word result is written to VWR C.
enum class ShufMode : std::uint8_t {
  kInterleaveLo = 0,  ///< out[2i] = A[i], out[2i+1] = B[i]; lower half
  kInterleaveHi,      ///< upper half of the interleaving
  kEvenPrune,         ///< evens of A then evens of B
  kOddPrune,          ///< odds of A then odds of B
  kBitRevLo,          ///< bit-reversal permutation of A:B; lower half
  kBitRevHi,          ///< bit-reversal permutation of A:B; upper half
  kCircShiftLo,       ///< (A:B) circularly shifted up by 32 words; lower half
  kCircShiftHi,       ///< circular shift; upper half
  kCount,
};

// ---------------------------------------------------------------------------
// MXCU: multiplexer-control unit (paper Sec 3.3.2)
// ---------------------------------------------------------------------------

/// MXCU operations: arithmetic on the shared VWR slice index register and an
/// auxiliary register. "Masking values for the VWRs index computation" live
/// in the SRF (paper Sec 3.2), hence the SRF-masked forms.
enum class MxcuOp : std::uint8_t {
  kNop = 0,
  kSetIdx,     ///< idx = imm
  kAddIdx,     ///< idx += imm (signed; wraps mod slice words)
  kSetIdxSrf,  ///< idx = SRF[srf]
  kAddIdxSrf,  ///< idx += SRF[srf]
  kAndIdxSrf,  ///< idx &= SRF[srf] (masked index computation)
  kSetAux,     ///< aux = imm
  kAddAux,     ///< aux += imm
  kIdxFromAux, ///< idx = aux (mod slice words)
  kStIdxSrf,   ///< SRF[srf] = idx
  kCount,
};

// ---------------------------------------------------------------------------
// LCU: loop-control unit (paper Sec 3.3.3)
// ---------------------------------------------------------------------------

/// LCU operations: loop-counter arithmetic on a small local register file,
/// branches that drive the column program counter, and kernel termination
/// (EXIT notifies the synchronizer). The register-register forms (kMvR,
/// kAddR, kSubR) are part of the reconstruction: the paper states the LCU
/// exists so "control-intensive code [can] be efficiently executed on
/// VWR2A" (Sec 3.3.3), which requires a small adder on the loop registers.
enum class LcuOp : std::uint8_t {
  kNop = 0,
  kSetI,     ///< rd = imm
  kAddI,     ///< rd += imm
  kMvR,      ///< rd = ra
  kAddR,     ///< rd = rd + ra
  kSubR,     ///< rd = rd - ra
  kMvSrf,    ///< rd = SRF[srf]
  kStSrf,    ///< SRF[srf] = ra
  kB,        ///< pc = target
  kBeq,      ///< if (ra == rb) pc = target
  kBne,      ///< if (ra != rb) pc = target
  kBlt,      ///< if (ra <  rb) pc = target (signed)
  kBge,      ///< if (ra >= rb) pc = target (signed)
  kBeqI,     ///< if (ra == imm) pc = target
  kBneI,     ///< if (ra != imm) pc = target
  kBltI,     ///< if (ra <  imm) pc = target
  kBgeI,     ///< if (ra >= imm) pc = target
  kBsrfZ,    ///< if (SRF[srf] == 0) pc = target
  kBsrfNz,   ///< if (SRF[srf] != 0) pc = target
  kDbnz,     ///< rd -= 1; if (rd != 0) pc = target  (hardware loop op)
  kExit,     ///< halt the column; notify the synchronizer
  kCount,
};

/// Names for disassembly. Defined in disasm.cpp.
const char* to_string(RcOp op);
const char* to_string(RcSrc s);
const char* to_string(RcDst d);
const char* to_string(LsuOp op);
const char* to_string(ShufMode m);
const char* to_string(MxcuOp op);
const char* to_string(LcuOp op);

} // namespace vwr2a::isa
