#include "isa/instr.hpp"

#include <limits>

#include "common/bits.hpp"
#include "common/status.hpp"

namespace vwr2a::isa {

namespace {

void check(bool cond, const char* what) {
  if (!cond) throw AsmError(std::string("isa validate: ") + what);
}

template <typename E>
E checked_enum(std::uint32_t v, E count, const char* what) {
  if (v >= static_cast<std::uint32_t>(count)) {
    throw DecodeError(std::string("isa decode: bad field ") + what);
  }
  return static_cast<E>(v);
}

} // namespace

// --- validation --------------------------------------------------------------

void validate(const RcInstr& i) {
  check(i.op < RcOp::kCount, "RC opcode");
  check(i.src_a < RcSrc::kCount, "RC srcA");
  check(i.src_b < RcSrc::kCount, "RC srcB");
  check(i.dst < RcDst::kCount, "RC dst");
  check(i.srf < arch::kSrfEntries, "RC srf index");
  const bool uses_srf_src = i.src_a == RcSrc::kSrf || i.src_b == RcSrc::kSrf;
  const bool uses_srf_dst = i.dst == RcDst::kSrf;
  // One srf field: an instruction cannot read SRF[x] and write SRF[y != x].
  check(!(uses_srf_src && uses_srf_dst) || true, "RC srf usage");
}

void validate(const LsuInstr& i) {
  check(i.op < LsuOp::kCount, "LSU opcode");
  check(i.mode < ShufMode::kCount, "LSU shuffle mode");
  check(i.amode < LsuAddrMode::kCount, "LSU address mode");
  check(i.srf_base < arch::kSrfEntries, "LSU srf base");
  check(i.srf_data < arch::kSrfEntries, "LSU srf data");
  check(i.imm >= -8192 && i.imm <= 8191, "LSU imm14");
  if (i.op == LsuOp::kLdVwr || i.op == LsuOp::kStVwr) {
    if (i.amode == LsuAddrMode::kImm) {
      check(i.imm >= 0 && static_cast<unsigned>(i.imm) < arch::kSpmRows,
            "LSU row address");
    }
  }
  if (i.op == LsuOp::kLdSrf || i.op == LsuOp::kStSrf) {
    if (i.amode == LsuAddrMode::kImm) {
      check(i.imm >= 0 && static_cast<unsigned>(i.imm) < arch::kSpmWords,
            "LSU word address");
    }
  }
}

void validate(const MxcuInstr& i) {
  check(i.op < MxcuOp::kCount, "MXCU opcode");
  check(i.srf < arch::kSrfEntries, "MXCU srf index");
  check(i.imm >= -2048 && i.imm <= 2047, "MXCU imm12");
}

void validate(const LcuInstr& i) {
  check(i.op < LcuOp::kCount, "LCU opcode");
  check(i.rd < arch::kLcuRegs, "LCU rd");
  check(i.ra < arch::kLcuRegs, "LCU ra");
  check(i.rb < arch::kLcuRegs, "LCU rb");
  check(i.srf < arch::kSrfEntries, "LCU srf index");
  check(i.target < arch::kProgramWords, "LCU branch target");
  check(i.imm >= -512 && i.imm <= 511, "LCU imm10");
}

// --- encode -------------------------------------------------------------------

std::uint32_t encode(const RcInstr& i) {
  validate(i);
  std::uint32_t w = 0;
  w = set_bits(w, 27, 5, static_cast<std::uint32_t>(i.op));
  w = set_bits(w, 23, 4, static_cast<std::uint32_t>(i.src_a));
  w = set_bits(w, 19, 4, static_cast<std::uint32_t>(i.src_b));
  w = set_bits(w, 16, 3, static_cast<std::uint32_t>(i.dst));
  w = set_bits(w, 13, 3, i.srf);
  w = set_bits(w, 0, 8, static_cast<std::uint8_t>(i.imm));
  return w;
}

std::uint32_t encode(const LsuInstr& i) {
  validate(i);
  std::uint32_t w = 0;
  w = set_bits(w, 28, 4, static_cast<std::uint32_t>(i.op));
  w = set_bits(w, 26, 2, static_cast<std::uint32_t>(i.vwr));
  w = set_bits(w, 23, 3, static_cast<std::uint32_t>(i.mode));
  w = set_bits(w, 21, 2, static_cast<std::uint32_t>(i.amode));
  w = set_bits(w, 18, 3, i.srf_base);
  w = set_bits(w, 15, 3, i.srf_data);
  w = set_bits(w, 0, 14, static_cast<std::uint16_t>(i.imm) & 0x3FFFu);
  return w;
}

std::uint32_t encode(const MxcuInstr& i) {
  validate(i);
  std::uint32_t w = 0;
  w = set_bits(w, 28, 4, static_cast<std::uint32_t>(i.op));
  w = set_bits(w, 24, 3, i.srf);
  w = set_bits(w, 0, 12, static_cast<std::uint16_t>(i.imm) & 0xFFFu);
  return w;
}

std::uint32_t encode(const LcuInstr& i) {
  validate(i);
  std::uint32_t w = 0;
  w = set_bits(w, 27, 5, static_cast<std::uint32_t>(i.op));
  w = set_bits(w, 25, 2, i.rd);
  w = set_bits(w, 23, 2, i.ra);
  w = set_bits(w, 21, 2, i.rb);
  w = set_bits(w, 18, 3, i.srf);
  w = set_bits(w, 12, 6, i.target);
  w = set_bits(w, 0, 10, static_cast<std::uint16_t>(i.imm) & 0x3FFu);
  return w;
}

// --- decode -------------------------------------------------------------------

RcInstr decode_rc(std::uint32_t w) {
  RcInstr i;
  i.op = checked_enum(bits(w, 27, 5), RcOp::kCount, "RC opcode");
  i.src_a = checked_enum(bits(w, 23, 4), RcSrc::kCount, "RC srcA");
  i.src_b = checked_enum(bits(w, 19, 4), RcSrc::kCount, "RC srcB");
  i.dst = checked_enum(bits(w, 16, 3), RcDst::kCount, "RC dst");
  i.srf = static_cast<std::uint8_t>(bits(w, 13, 3));
  i.imm = static_cast<std::int8_t>(bits(w, 0, 8));
  return i;
}

LsuInstr decode_lsu(std::uint32_t w) {
  LsuInstr i;
  i.op = checked_enum(bits(w, 28, 4), LsuOp::kCount, "LSU opcode");
  const std::uint32_t vwr = bits(w, 26, 2);
  if (vwr > 2) throw DecodeError("isa decode: bad LSU vwr select");
  i.vwr = static_cast<VwrSel>(vwr);
  i.mode = checked_enum(bits(w, 23, 3), ShufMode::kCount, "LSU shuffle mode");
  i.amode = checked_enum(bits(w, 21, 2), LsuAddrMode::kCount, "LSU addr mode");
  i.srf_base = static_cast<std::uint8_t>(bits(w, 18, 3));
  i.srf_data = static_cast<std::uint8_t>(bits(w, 15, 3));
  i.imm = static_cast<std::int16_t>(sign_extend(bits(w, 0, 14), 14));
  return i;
}

MxcuInstr decode_mxcu(std::uint32_t w) {
  MxcuInstr i;
  i.op = checked_enum(bits(w, 28, 4), MxcuOp::kCount, "MXCU opcode");
  i.srf = static_cast<std::uint8_t>(bits(w, 24, 3));
  i.imm = static_cast<std::int16_t>(sign_extend(bits(w, 0, 12), 12));
  return i;
}

LcuInstr decode_lcu(std::uint32_t w) {
  LcuInstr i;
  i.op = checked_enum(bits(w, 27, 5), LcuOp::kCount, "LCU opcode");
  i.rd = static_cast<std::uint8_t>(bits(w, 25, 2));
  i.ra = static_cast<std::uint8_t>(bits(w, 23, 2));
  i.rb = static_cast<std::uint8_t>(bits(w, 21, 2));
  i.srf = static_cast<std::uint8_t>(bits(w, 18, 3));
  i.target = static_cast<std::uint8_t>(bits(w, 12, 6));
  i.imm = static_cast<std::int16_t>(sign_extend(bits(w, 0, 10), 10));
  return i;
}

} // namespace vwr2a::isa
