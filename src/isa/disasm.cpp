#include <sstream>

#include "common/status.hpp"
#include "isa/instr.hpp"

namespace vwr2a::isa {

const char* to_string(RcOp op) {
  switch (op) {
    case RcOp::kNop: return "nop";
    case RcOp::kSadd: return "sadd";
    case RcOp::kSsub: return "ssub";
    case RcOp::kSmul: return "smul";
    case RcOp::kFxpMul: return "fxpmul";
    case RcOp::kSll: return "sll";
    case RcOp::kSrl: return "srl";
    case RcOp::kSra: return "sra";
    case RcOp::kLand: return "land";
    case RcOp::kLor: return "lor";
    case RcOp::kLxor: return "lxor";
    case RcOp::kLnot: return "lnot";
    case RcOp::kMv: return "mv";
    case RcOp::kCmpEq: return "cmpeq";
    case RcOp::kCmpLt: return "cmplt";
    case RcOp::kCmpLe: return "cmple";
    case RcOp::kMax: return "max";
    case RcOp::kMin: return "min";
    case RcOp::kAbs: return "abs";
    default: return "?";
  }
}

const char* to_string(RcSrc s) {
  switch (s) {
    case RcSrc::kZero: return "zero";
    case RcSrc::kOne: return "one";
    case RcSrc::kR0: return "r0";
    case RcSrc::kR1: return "r1";
    case RcSrc::kVwrA: return "vwra";
    case RcSrc::kVwrB: return "vwrb";
    case RcSrc::kVwrC: return "vwrc";
    case RcSrc::kSrf: return "srf";
    case RcSrc::kRcUp: return "rcu";
    case RcSrc::kRcDown: return "rcd";
    case RcSrc::kRcCross: return "rcx";
    case RcSrc::kImm: return "imm";
    default: return "?";
  }
}

const char* to_string(RcDst d) {
  switch (d) {
    case RcDst::kNone: return "none";
    case RcDst::kR0: return "r0";
    case RcDst::kR1: return "r1";
    case RcDst::kVwrA: return "vwra";
    case RcDst::kVwrB: return "vwrb";
    case RcDst::kVwrC: return "vwrc";
    case RcDst::kSrf: return "srf";
    default: return "?";
  }
}

const char* to_string(LsuOp op) {
  switch (op) {
    case LsuOp::kNop: return "nop";
    case LsuOp::kLdVwr: return "ld.vwr";
    case LsuOp::kStVwr: return "st.vwr";
    case LsuOp::kLdSrf: return "ld.srf";
    case LsuOp::kStSrf: return "st.srf";
    case LsuOp::kShuf: return "shuf";
    case LsuOp::kSetPtr: return "setptr";
    default: return "?";
  }
}

const char* to_string(ShufMode m) {
  switch (m) {
    case ShufMode::kInterleaveLo: return "il.lo";
    case ShufMode::kInterleaveHi: return "il.hi";
    case ShufMode::kEvenPrune: return "even";
    case ShufMode::kOddPrune: return "odd";
    case ShufMode::kBitRevLo: return "brev.lo";
    case ShufMode::kBitRevHi: return "brev.hi";
    case ShufMode::kCircShiftLo: return "cshift.lo";
    case ShufMode::kCircShiftHi: return "cshift.hi";
    default: return "?";
  }
}

const char* to_string(MxcuOp op) {
  switch (op) {
    case MxcuOp::kNop: return "nop";
    case MxcuOp::kSetIdx: return "seti";
    case MxcuOp::kAddIdx: return "addi";
    case MxcuOp::kSetIdxSrf: return "seti.srf";
    case MxcuOp::kAddIdxSrf: return "addi.srf";
    case MxcuOp::kAndIdxSrf: return "andi.srf";
    case MxcuOp::kSetAux: return "setaux";
    case MxcuOp::kAddAux: return "addaux";
    case MxcuOp::kIdxFromAux: return "idx.aux";
    case MxcuOp::kStIdxSrf: return "st.srf";
    default: return "?";
  }
}

const char* to_string(LcuOp op) {
  switch (op) {
    case LcuOp::kNop: return "nop";
    case LcuOp::kSetI: return "seti";
    case LcuOp::kAddI: return "addi";
    case LcuOp::kMvR: return "mvr";
    case LcuOp::kAddR: return "addr";
    case LcuOp::kSubR: return "subr";
    case LcuOp::kMvSrf: return "mv.srf";
    case LcuOp::kStSrf: return "st.srf";
    case LcuOp::kB: return "b";
    case LcuOp::kBeq: return "beq";
    case LcuOp::kBne: return "bne";
    case LcuOp::kBlt: return "blt";
    case LcuOp::kBge: return "bge";
    case LcuOp::kBeqI: return "beqi";
    case LcuOp::kBneI: return "bnei";
    case LcuOp::kBltI: return "blti";
    case LcuOp::kBgeI: return "bgei";
    case LcuOp::kBsrfZ: return "bsrfz";
    case LcuOp::kBsrfNz: return "bsrfnz";
    case LcuOp::kDbnz: return "dbnz";
    case LcuOp::kExit: return "exit";
    default: return "?";
  }
}

namespace {

std::string src_operand(RcSrc s, std::uint8_t srf, std::int8_t imm) {
  std::ostringstream os;
  if (s == RcSrc::kSrf) {
    os << "srf" << int(srf);
  } else if (s == RcSrc::kImm) {
    os << "#" << int(imm);
  } else {
    os << to_string(s);
  }
  return os.str();
}

std::string dst_operand(RcDst d, std::uint8_t srf) {
  std::ostringstream os;
  if (d == RcDst::kSrf) {
    os << "srf" << int(srf);
  } else {
    os << to_string(d);
  }
  return os.str();
}

bool is_unary(RcOp op) {
  return op == RcOp::kLnot || op == RcOp::kMv || op == RcOp::kAbs;
}

} // namespace

std::string to_asm(const RcInstr& i) {
  if (i.op == RcOp::kNop) return "nop";
  std::ostringstream os;
  os << to_string(i.op) << " " << dst_operand(i.dst, i.srf) << ", "
     << src_operand(i.src_a, i.srf, i.imm);
  if (!is_unary(i.op)) os << ", " << src_operand(i.src_b, i.srf, i.imm);
  return os.str();
}

namespace {

std::string lsu_addr_str(const LsuInstr& i) {
  std::ostringstream os;
  switch (i.amode) {
    case LsuAddrMode::kImm:
      os << "[" << i.imm << "]";
      break;
    case LsuAddrMode::kSrfImm:
      os << "[srf" << int(i.srf_base) << "+" << i.imm << "]";
      break;
    case LsuAddrMode::kPtr0Post:
      os << "[p0+=" << i.imm << "]";
      break;
    case LsuAddrMode::kPtr1Post:
      os << "[p1+=" << i.imm << "]";
      break;
    default:
      break;
  }
  return os.str();
}

} // namespace

std::string to_asm(const LsuInstr& i) {
  if (i.op == LsuOp::kNop) return "nop";
  std::ostringstream os;
  os << to_string(i.op);
  switch (i.op) {
    case LsuOp::kLdVwr:
    case LsuOp::kStVwr:
      os << " " << to_char(i.vwr) << ", " << lsu_addr_str(i);
      break;
    case LsuOp::kLdSrf:
    case LsuOp::kStSrf:
      os << " srf" << int(i.srf_data) << ", " << lsu_addr_str(i);
      break;
    case LsuOp::kShuf:
      os << " " << to_string(i.mode);
      break;
    case LsuOp::kSetPtr:
      os << " p" << (static_cast<unsigned>(i.vwr) & 1u) << ", srf"
         << int(i.srf_base) << ", #" << i.imm;
      break;
    default:
      break;
  }
  return os.str();
}

std::string to_asm(const MxcuInstr& i) {
  if (i.op == MxcuOp::kNop) return "nop";
  std::ostringstream os;
  os << to_string(i.op);
  switch (i.op) {
    case MxcuOp::kSetIdx:
    case MxcuOp::kAddIdx:
    case MxcuOp::kSetAux:
    case MxcuOp::kAddAux:
      os << " #" << i.imm;
      break;
    case MxcuOp::kSetIdxSrf:
    case MxcuOp::kAddIdxSrf:
    case MxcuOp::kAndIdxSrf:
    case MxcuOp::kStIdxSrf:
      os << " srf" << int(i.srf);
      break;
    default:
      break;
  }
  return os.str();
}

std::string to_asm(const LcuInstr& i) {
  if (i.op == LcuOp::kNop) return "nop";
  std::ostringstream os;
  os << to_string(i.op);
  switch (i.op) {
    case LcuOp::kSetI:
    case LcuOp::kAddI:
      os << " r" << int(i.rd) << ", #" << i.imm;
      break;
    case LcuOp::kMvR:
    case LcuOp::kAddR:
    case LcuOp::kSubR:
      os << " r" << int(i.rd) << ", r" << int(i.ra);
      break;
    case LcuOp::kMvSrf:
      os << " r" << int(i.rd) << ", srf" << int(i.srf);
      break;
    case LcuOp::kStSrf:
      os << " srf" << int(i.srf) << ", r" << int(i.ra);
      break;
    case LcuOp::kB:
      os << " @" << int(i.target);
      break;
    case LcuOp::kBeq:
    case LcuOp::kBne:
    case LcuOp::kBlt:
    case LcuOp::kBge:
      os << " r" << int(i.ra) << ", r" << int(i.rb) << ", @" << int(i.target);
      break;
    case LcuOp::kBeqI:
    case LcuOp::kBneI:
    case LcuOp::kBltI:
    case LcuOp::kBgeI:
      os << " r" << int(i.ra) << ", #" << i.imm << ", @" << int(i.target);
      break;
    case LcuOp::kBsrfZ:
    case LcuOp::kBsrfNz:
      os << " srf" << int(i.srf) << ", @" << int(i.target);
      break;
    case LcuOp::kDbnz:
      os << " r" << int(i.rd) << ", @" << int(i.target);
      break;
    case LcuOp::kExit:
      break;
    default:
      break;
  }
  return os.str();
}

std::string disassemble(Slot slot, std::uint32_t w) {
  switch (slot) {
    case Slot::LCU: return to_asm(decode_lcu(w));
    case Slot::LSU: return to_asm(decode_lsu(w));
    case Slot::MXCU: return to_asm(decode_mxcu(w));
    default: return to_asm(decode_rc(w));
  }
}

} // namespace vwr2a::isa
