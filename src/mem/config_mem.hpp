#pragma once
// Configuration memory: stores kernel images; configuration words are copied
// into the units' 64-word program memories when a kernel execution starts
// (paper Sec 3.1). The synchronizer tracks which kernel each column currently
// holds so that re-launching the same kernel skips the reload.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "energy/meter.hpp"
#include "isa/program.hpp"

namespace vwr2a::mem {

/// Kernel image store with load-cost accounting.
class ConfigMem {
 public:
  explicit ConfigMem(energy::EnergyMeter& meter) : meter_(&meter) {}

  /// Registers a kernel image; returns its id. Host-side operation (images
  /// are written at system boot in the paper's platform).
  unsigned add_kernel(isa::KernelImage image) {
    return add_kernel(std::make_shared<const isa::KernelImage>(std::move(image)));
  }

  /// Registers a shared (typically cache-owned) image without copying it;
  /// a fleet of simulated devices aliases one assembled image this way.
  unsigned add_kernel(std::shared_ptr<const isa::KernelImage> image) {
    if (image == nullptr) throw HostError("ConfigMem: null kernel image");
    kernels_.push_back(std::move(image));
    return static_cast<unsigned>(kernels_.size() - 1);
  }

  /// The image for `id`.
  const isa::KernelImage& kernel(unsigned id) const {
    if (id >= kernels_.size()) throw HostError("ConfigMem: bad kernel id");
    return *kernels_[id];
  }

  /// Shared ownership of the image for `id` (lets the synchronizer alias
  /// per-column programs without copying them on every reload).
  std::shared_ptr<const isa::KernelImage> kernel_ptr(unsigned id) const {
    if (id >= kernels_.size()) throw HostError("ConfigMem: bad kernel id");
    return kernels_[id];
  }

  /// Number of registered kernels.
  unsigned size() const { return static_cast<unsigned>(kernels_.size()); }

  /// Charges the energy of copying the image into the program memories and
  /// returns the load latency in cycles (streams fill in parallel; the
  /// longest stream bounds the latency).
  unsigned charge_load(unsigned id) {
    const auto& k = kernel(id);
    meter_->add(energy::Event::kConfigWord, k.total_words());
    return k.load_cycles();
  }

 private:
  energy::EnergyMeter* meter_;
  std::vector<std::shared_ptr<const isa::KernelImage>> kernels_;
};

} // namespace vwr2a::mem
