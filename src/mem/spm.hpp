#pragma once
// Shared scratchpad memory: 32 KiB with a double interface (paper Sec 3.2):
// a 4096-bit row interface on the array side and a 32-bit word port on the
// system side used by the DMA (the interfaces are independent -- "double
// interface").
//
// Array-side banking: the SPM is built by concatenating narrow macros
// (Sec 5.1.1); this model gives each column its own row access per cycle
// (per-column banking), which is what lets the two columns run synchronized
// kernels with identical LSU schedules. One row access per column per cycle
// is enforced; the LSU can only issue one operation per cycle anyway, so a
// violation indicates a simulator bug rather than a kernel bug.

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "energy/meter.hpp"

namespace vwr2a::mem {

/// The VWR2A scratchpad. Word addresses are in words (not bytes).
class Spm {
 public:
  using Row = std::array<Word, arch::kVwrWords>;

  explicit Spm(energy::EnergyMeter& meter) : meter_(&meter) {
    data_.resize(arch::kSpmWords, 0);
    row_version_.resize(arch::kSpmRows, 0);
  }

  /// Resets per-cycle port bookkeeping (array side).
  void begin_cycle() { array_port_used_.fill(false); }

  /// Array-side row read (into a VWR), by column `col`.
  Row read_row(unsigned col, unsigned row) {
    claim_array_port(col, "row read");
    check_row(row);
    meter_->add(energy::Event::kSpmRowRead);
    Row out;
    std::copy_n(data_.begin() + row * arch::kVwrWords, arch::kVwrWords,
                out.begin());
    return out;
  }

  /// Array-side row write (from a VWR).
  void write_row(unsigned col, unsigned row, const Row& v) {
    claim_array_port(col, "row write");
    check_row(row);
    meter_->add(energy::Event::kSpmRowWrite);
    touch_row(row);
    std::copy_n(v.begin(), arch::kVwrWords, data_.begin() + row * arch::kVwrWords);
  }

  /// Array-side scalar read (LSU -> SRF path). Uses the column's row port.
  Word read_word_array(unsigned col, unsigned word) {
    claim_array_port(col, "word read");
    check_word(word);
    meter_->add(energy::Event::kSpmRowRead);
    return data_[word];
  }

  /// Array-side scalar write (SRF -> SPM path).
  void write_word_array(unsigned col, unsigned word, Word v) {
    claim_array_port(col, "word write");
    check_word(word);
    meter_->add(energy::Event::kSpmRowWrite);
    touch_row(word / arch::kVwrWords);
    data_[word] = v;
  }

  /// System-side word read (DMA out). Independent interface.
  Word read_word_system(unsigned word) {
    check_word(word);
    meter_->add(energy::Event::kSpmWordRead);
    return data_[word];
  }

  /// System-side word write (DMA in).
  void write_word_system(unsigned word, Word v) {
    check_word(word);
    meter_->add(energy::Event::kSpmWordWrite);
    touch_row(word / arch::kVwrWords);
    data_[word] = v;
  }

  // --- system-side bulk transfers (stride-1 DMA fast path) --------------------
  // Exactly equivalent to n calls of the word methods above: same energy
  // counts, and -- crucially for the residency machinery -- the same row
  // stamp values (each written word advances the shared generation; a row's
  // stamp ends at the generation of the last word written into it).

  /// Reads n consecutive words (caller checked the range).
  void read_words_system(unsigned first, Word* dst, unsigned n) {
    meter_->add(energy::Event::kSpmWordRead, n);
    std::copy_n(data_.begin() + first, n, dst);
  }

  /// Writes n consecutive words (caller checked the range).
  void write_words_system(unsigned first, const Word* src, unsigned n) {
    meter_->add(energy::Event::kSpmWordWrite, n);
    const std::uint64_t gen0 = write_gen_;
    write_gen_ += n;
    const unsigned last = first + n - 1;
    for (unsigned r = first / arch::kVwrWords; r <= last / arch::kVwrWords; ++r) {
      // Index (within the transfer) of the last word landing in row r.
      const unsigned li = std::min(last, (r + 1) * arch::kVwrWords - 1) - first;
      row_version_[r] = gen0 + li + 1;
    }
    std::copy_n(src, n, data_.begin() + first);
  }

  /// True when all n strided words lie inside the SPM.
  bool words_system_ok(unsigned first, std::int32_t stride,
                       std::uint32_t n) const {
    if (n == 0) return false;
    const std::int64_t last =
        static_cast<std::int64_t>(first) +
        static_cast<std::int64_t>(stride) * (static_cast<std::int64_t>(n) - 1);
    return std::min<std::int64_t>(first, last) >= 0 &&
           std::max<std::int64_t>(first, last) <
               static_cast<std::int64_t>(arch::kSpmWords);
  }

  /// Strided system-side read (caller checked words_system_ok).
  void read_words_system_strided(unsigned first, std::int32_t stride,
                                 std::uint32_t n, Word* dst) {
    meter_->add(energy::Event::kSpmWordRead, n);
    std::int64_t a = first;
    for (std::uint32_t i = 0; i < n; ++i, a += stride) dst[i] = data_[a];
  }

  /// Strided system-side write (caller checked words_system_ok). Row stamps
  /// advance per word in beat order, exactly like write_word_system.
  void write_words_system_strided(unsigned first, std::int32_t stride,
                                  std::uint32_t n, const Word* src) {
    meter_->add(energy::Event::kSpmWordWrite, n);
    std::int64_t a = first;
    for (std::uint32_t i = 0; i < n; ++i, a += stride) {
      data_[a] = src[i];
      row_version_[static_cast<unsigned>(a) / arch::kVwrWords] = ++write_gen_;
    }
  }

  // --- trace-replay backdoors -------------------------------------------------
  // Direct array access for trace-cache replay: port claims are skipped
  // (the compiler proved the schedule hazard-free) and energy is charged in
  // pre-aggregated blocks by the replayer. Writes still advance the row
  // stamps -- the residency/dedup machinery must observe identical write
  // sets in both execution modes. Range checks throw the same errors as the
  // accounted paths so malformed address arithmetic behaves identically.

  /// Row data pointer for a whole-row read.
  const Word* trace_row(unsigned row) const {
    check_row(row);
    return data_.data() + row * arch::kVwrWords;
  }

  /// Whole-row write.
  void trace_write_row(unsigned row, const Row& v) {
    check_row(row);
    touch_row(row);
    std::copy_n(v.begin(), arch::kVwrWords, data_.begin() + row * arch::kVwrWords);
  }

  /// Scalar word read (LSU -> SRF path).
  Word trace_read_word(unsigned word) const {
    check_word(word);
    return data_[word];
  }

  /// Scalar word write (SRF -> SPM path).
  void trace_write_word(unsigned word, Word v) {
    check_word(word);
    touch_row(word / arch::kVwrWords);
    data_[word] = v;
  }

  // --- rollback support -------------------------------------------------------
  // The trace replayer runs a two-column kernel with the columns decoupled
  // and rolls the SPM back when the row-access masks turn out to conflict
  // (see cgra/tracecache.hpp). Restoring is pure simulator bookkeeping.

  /// Current global write generation (for checkpointing).
  std::uint64_t write_gen() const { return write_gen_; }

  /// Restores one row's data and stamp from a checkpoint.
  void trace_restore_row(unsigned row, const Row& data, std::uint64_t version) {
    check_row(row);
    std::copy_n(data.begin(), arch::kVwrWords,
                data_.begin() + row * arch::kVwrWords);
    row_version_[row] = version;
  }

  /// Restores the global write generation from a checkpoint.
  void trace_restore_write_gen(std::uint64_t gen) { write_gen_ = gen; }

  /// Debug/testing backdoor, no port or energy accounting.
  Word peek(unsigned word) const {
    check_word(word);
    return data_[word];
  }
  void poke(unsigned word, Word v) {
    check_word(word);
    touch_row(word / arch::kVwrWords);
    data_[word] = v;
  }

  // --- write stamps -----------------------------------------------------------
  // Every write path bumps a monotone per-row stamp (a shared generation
  // counter), so a driver that staged a region can later prove "nothing
  // touched these rows since" by comparing stamps -- the mechanism behind
  // runtime::Device's SPM residency tracking and cross-job staging dedup.
  // Stamps are simulator bookkeeping, not architectural state: they cost no
  // cycles or energy.

  /// Write stamp of one row (0 = never written).
  std::uint64_t row_version(unsigned row) const {
    check_row(row);
    return row_version_[row];
  }

  /// Newest write stamp over rows [first_row, first_row + nrows).
  std::uint64_t region_version(unsigned first_row, unsigned nrows) const {
    if (first_row + nrows > arch::kSpmRows) {
      throw RangeError("SPM: region_version out of range");
    }
    std::uint64_t v = 0;
    for (unsigned r = first_row; r < first_row + nrows; ++r) {
      v = std::max(v, row_version_[r]);
    }
    return v;
  }

 private:
  void touch_row(unsigned row) { row_version_[row] = ++write_gen_; }

  void claim_array_port(unsigned col, const char* what) {
    if (col >= arch::kNumColumns) throw RangeError("SPM: bad column id");
    if (array_port_used_[col]) {
      throw StructuralHazard(std::string("SPM: second array-side ") + what +
                             " by column " + std::to_string(col) +
                             " in one cycle");
    }
    array_port_used_[col] = true;
  }

  static void check_row(unsigned row) {
    if (row >= arch::kSpmRows) throw RangeError("SPM: row out of range");
  }
  static void check_word(unsigned word) {
    if (word >= arch::kSpmWords) throw RangeError("SPM: word out of range");
  }

  energy::EnergyMeter* meter_;
  std::vector<Word> data_;
  std::vector<std::uint64_t> row_version_;
  std::uint64_t write_gen_ = 0;
  std::array<bool, arch::kNumColumns> array_port_used_{};
};

} // namespace vwr2a::mem
