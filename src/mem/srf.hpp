#pragma once
// Scalar register file: 8 x 32-bit, single-ported (paper Sec 3.2). One
// address per cycle across all units of the column; several consumers may
// observe the same read (the data bus broadcasts), but a second address --
// read or write -- in the same cycle is a structural hazard.

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "common/status.hpp"
#include "common/types.hpp"
#include "energy/meter.hpp"

namespace vwr2a::mem {

/// The per-column scalar register file.
class Srf {
 public:
  explicit Srf(energy::EnergyMeter& meter) : meter_(&meter) {}

  /// Resets per-cycle port bookkeeping.
  void begin_cycle() {
    cycle_addr_.reset();
    cycle_was_write_ = false;
  }

  /// Reads entry `idx` through the single port.
  Word read(unsigned idx) {
    check(idx);
    claim(idx, /*is_write=*/false);
    meter_->add(energy::Event::kSrfRead);
    return regs_[idx];
  }

  /// Writes entry `idx` through the single port.
  void write(unsigned idx, Word v) {
    check(idx);
    claim(idx, /*is_write=*/true);
    meter_->add(energy::Event::kSrfWrite);
    regs_[idx] = v;
  }

  // --- trace-replay backdoor --------------------------------------------------
  // Direct register access for trace-cache replay (port schedule validated
  // and energy pre-aggregated at trace-compile time).
  Word trace_read(unsigned idx) const { return regs_[idx]; }
  void trace_write(unsigned idx, Word v) { regs_[idx] = v; }
  std::array<Word, arch::kSrfEntries>& trace_regs() { return regs_; }

  /// Debug/testing backdoor (host-side initialization), no port accounting.
  Word peek(unsigned idx) const {
    check(idx);
    return regs_[idx];
  }
  void poke(unsigned idx, Word v) {
    check(idx);
    regs_[idx] = v;
  }

 private:
  static void check(unsigned idx) {
    if (idx >= arch::kSrfEntries) throw RangeError("SRF: index out of range");
  }

  void claim(unsigned idx, bool is_write) {
    if (!cycle_addr_.has_value()) {
      cycle_addr_ = idx;
      cycle_was_write_ = is_write;
      return;
    }
    // Same-address repeated reads share the broadcast; anything else is a
    // port conflict on the single-ported SRF.
    if (*cycle_addr_ == idx && !cycle_was_write_ && !is_write) return;
    throw StructuralHazard("SRF: port conflict (single-ported, one address "
                           "per cycle per column)");
  }

  energy::EnergyMeter* meter_;
  std::array<Word, arch::kSrfEntries> regs_{};
  std::optional<unsigned> cycle_addr_;
  bool cycle_was_write_ = false;
};

} // namespace vwr2a::mem
