#pragma once
// Very-wide register: a single-ported 4096-bit latch array, the paper's
// replacement for a multi-ported register file (Sec 2, Sec 3.2).
//
// Port model (strict): datapath word *reads* go through the multiplexer
// network and do not use the array port -- the paper notes that only the mux
// outputs switch each cycle. Writes use the port: per cycle, a VWR accepts
// either one whole-row write (LSU load or shuffle result) or any set of
// word writes from RCs (each RC owns a disjoint slice, so the row write
// combines the per-slice write enables). Mixing a row write and RC word
// writes in the same cycle is a structural hazard.

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "common/status.hpp"
#include "common/types.hpp"
#include "energy/meter.hpp"

namespace vwr2a::mem {

/// One 128x32-bit very-wide register.
class Vwr {
 public:
  using Row = std::array<Word, arch::kVwrWords>;

  Vwr(std::string name, energy::EnergyMeter& meter)
      : name_(std::move(name)), meter_(&meter) {}

  /// Resets per-cycle port bookkeeping. Called by the column each cycle.
  void begin_cycle() {
    row_written_ = false;
    word_written_ = false;
  }

  /// Datapath read of word `index` of slice `slice` (mux network; free port).
  Word read_word(unsigned slice, unsigned index) const {
    check_word(slice, index);
    meter_->add(energy::Event::kVwrWordRead);
    return row_[slice * arch::kSliceWords + index];
  }

  /// RC write-back of one word into slice `slice` at `index`.
  void write_word(unsigned slice, unsigned index, Word v) {
    check_word(slice, index);
    if (row_written_) {
      throw StructuralHazard("VWR " + name_ +
                             ": word write collides with row write");
    }
    word_written_ = true;
    meter_->add(energy::Event::kVwrWordWrite);
    row_[slice * arch::kSliceWords + index] = v;
  }

  /// Whole-row write (LSU load from SPM or shuffle-unit result).
  void write_row(const Row& data) {
    if (row_written_ || word_written_) {
      throw StructuralHazard("VWR " + name_ + ": second write in one cycle");
    }
    row_written_ = true;
    meter_->add(energy::Event::kVwrRowWrite);
    row_ = data;
  }

  /// Whole-row read (LSU store to SPM or shuffle-unit source). The latch
  /// outputs are continuously available; no port or energy is charged beyond
  /// the consumer's own cost.
  const Row& read_row() const { return row_; }

  // --- trace-replay backdoor --------------------------------------------------
  // Direct access to the latch array for trace-cache replay: the compiler
  // has already validated the port schedule and pre-aggregated the energy
  // events, so replay reads/writes the row storage directly.
  Row& trace_row() { return row_; }
  const Row& trace_row() const { return row_; }

  /// Debug/testing backdoor: writes without port accounting or energy.
  void poke(unsigned slice, unsigned index, Word v) {
    check_word(slice, index);
    row_[slice * arch::kSliceWords + index] = v;
  }

  /// Debug/testing backdoor: reads without energy accounting.
  Word peek(unsigned slice, unsigned index) const {
    check_word(slice, index);
    return row_[slice * arch::kSliceWords + index];
  }

  /// Debug name ("col0.A", ...).
  const std::string& name() const { return name_; }

 private:
  static void check_word(unsigned slice, unsigned index) {
    if (slice >= arch::kRcsPerColumn) throw RangeError("VWR: bad slice");
    if (index >= arch::kSliceWords) throw RangeError("VWR: bad word index");
  }

  std::string name_;
  energy::EnergyMeter* meter_;
  Row row_{};
  bool row_written_ = false;
  bool word_written_ = false;
};

} // namespace vwr2a::mem
