#pragma once
// System SRAM: the host SoC's 192 KiB memory, divided into six banks that
// can be individually power gated (paper Sec 4.1). Word-addressed.

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "energy/meter.hpp"

namespace vwr2a::mem {

/// The six-bank system SRAM on the AHB bus.
class SystemSram {
 public:
  explicit SystemSram(energy::EnergyMeter& meter) : meter_(&meter) {
    data_.resize(arch::kSramBytes / 4, 0);
    gated_.fill(false);
  }

  /// Words in the SRAM.
  unsigned size_words() const { return static_cast<unsigned>(data_.size()); }

  /// Reads one word (bus transaction side).
  Word read(unsigned word) {
    check_access(word);
    meter_->add(energy::Event::kSramRead);
    return data_[word];
  }

  /// Writes one word.
  void write(unsigned word, Word v) {
    check_access(word);
    meter_->add(energy::Event::kSramWrite);
    data_[word] = v;
  }

  /// Power-gates or wakes one bank. Accessing a gated bank throws.
  void set_bank_gated(unsigned bank, bool gated) {
    if (bank >= arch::kSramBanks) throw RangeError("SRAM: bad bank");
    gated_[bank] = gated;
  }

  bool bank_gated(unsigned bank) const {
    if (bank >= arch::kSramBanks) throw RangeError("SRAM: bad bank");
    return gated_[bank];
  }

  /// The bank containing a word address.
  static unsigned bank_of(unsigned word) {
    return word / (arch::kSramBytes / 4 / arch::kSramBanks);
  }

  // --- bulk transfers (bus block operations) ---------------------------------

  /// True when every word of [first, first + n) is in range and ungated.
  bool block_ok(unsigned first, std::uint64_t n) const {
    if (n == 0 || first + n > data_.size()) return false;
    for (unsigned b = bank_of(first); b <= bank_of(static_cast<unsigned>(first + n - 1)); ++b) {
      if (gated_[b]) return false;
    }
    return true;
  }

  /// Reads n consecutive words with per-word energy accounting (bulk add).
  void read_block(unsigned first, Word* dst, unsigned n) {
    meter_->add(energy::Event::kSramRead, n);
    std::copy_n(data_.begin() + first, n, dst);
  }

  /// Writes n consecutive words with per-word energy accounting (bulk add).
  void write_block(unsigned first, const Word* src, unsigned n) {
    meter_->add(energy::Event::kSramWrite, n);
    std::copy_n(src, n, data_.begin() + first);
  }

  /// True when all n strided words are in range and ungated.
  bool strided_ok(unsigned first, std::int32_t stride, std::uint32_t n) const {
    if (n == 0) return false;
    const std::int64_t last =
        static_cast<std::int64_t>(first) +
        static_cast<std::int64_t>(stride) * (static_cast<std::int64_t>(n) - 1);
    const std::int64_t lo = std::min<std::int64_t>(first, last);
    const std::int64_t hi = std::max<std::int64_t>(first, last);
    if (lo < 0 || hi >= static_cast<std::int64_t>(data_.size())) return false;
    for (unsigned b = bank_of(static_cast<unsigned>(lo));
         b <= bank_of(static_cast<unsigned>(hi)); ++b) {
      if (gated_[b]) return false;  // conservative: any gated bank in span
    }
    return true;
  }

  /// Strided read with per-word energy accounting (caller checked).
  void read_strided(unsigned first, std::int32_t stride, std::uint32_t n,
                    Word* dst) {
    meter_->add(energy::Event::kSramRead, n);
    std::int64_t a = first;
    for (std::uint32_t i = 0; i < n; ++i, a += stride) dst[i] = data_[a];
  }

  /// Strided write with per-word energy accounting (caller checked).
  void write_strided(unsigned first, std::int32_t stride, std::uint32_t n,
                     const Word* src) {
    meter_->add(energy::Event::kSramWrite, n);
    std::int64_t a = first;
    for (std::uint32_t i = 0; i < n; ++i, a += stride) data_[a] = src[i];
  }

  /// Debug/testing backdoor.
  Word peek(unsigned word) const {
    check_range(word);
    return data_[word];
  }
  void poke(unsigned word, Word v) {
    check_range(word);
    data_[word] = v;
  }

 private:
  void check_access(unsigned word) const {
    check_range(word);
    if (gated_[bank_of(word)]) {
      throw HostError("SRAM: access to power-gated bank");
    }
  }
  void check_range(unsigned word) const {
    if (word >= data_.size()) throw RangeError("SRAM: word out of range");
  }

  energy::EnergyMeter* meter_;
  std::vector<Word> data_;
  std::array<bool, arch::kSramBanks> gated_{};
};

} // namespace vwr2a::mem
