#pragma once
// System SRAM: the host SoC's 192 KiB memory, divided into six banks that
// can be individually power gated (paper Sec 4.1). Word-addressed.

#include <array>
#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "energy/meter.hpp"

namespace vwr2a::mem {

/// The six-bank system SRAM on the AHB bus.
class SystemSram {
 public:
  explicit SystemSram(energy::EnergyMeter& meter) : meter_(&meter) {
    data_.resize(arch::kSramBytes / 4, 0);
    gated_.fill(false);
  }

  /// Words in the SRAM.
  unsigned size_words() const { return static_cast<unsigned>(data_.size()); }

  /// Reads one word (bus transaction side).
  Word read(unsigned word) {
    check_access(word);
    meter_->add(energy::Event::kSramRead);
    return data_[word];
  }

  /// Writes one word.
  void write(unsigned word, Word v) {
    check_access(word);
    meter_->add(energy::Event::kSramWrite);
    data_[word] = v;
  }

  /// Power-gates or wakes one bank. Accessing a gated bank throws.
  void set_bank_gated(unsigned bank, bool gated) {
    if (bank >= arch::kSramBanks) throw RangeError("SRAM: bad bank");
    gated_[bank] = gated;
  }

  bool bank_gated(unsigned bank) const {
    if (bank >= arch::kSramBanks) throw RangeError("SRAM: bad bank");
    return gated_[bank];
  }

  /// The bank containing a word address.
  static unsigned bank_of(unsigned word) {
    return word / (arch::kSramBytes / 4 / arch::kSramBanks);
  }

  /// Debug/testing backdoor.
  Word peek(unsigned word) const {
    check_range(word);
    return data_[word];
  }
  void poke(unsigned word, Word v) {
    check_range(word);
    data_[word] = v;
  }

 private:
  void check_access(unsigned word) const {
    check_range(word);
    if (gated_[bank_of(word)]) {
      throw HostError("SRAM: access to power-gated bank");
    }
  }
  void check_range(unsigned word) const {
    if (word >= data_.size()) throw RangeError("SRAM: word out of range");
  }

  energy::EnergyMeter* meter_;
  std::vector<Word> data_;
  std::array<bool, arch::kSramBanks> gated_{};
};

} // namespace vwr2a::mem
