#pragma once
// Tiny per-RC register file (two 32-bit entries, paper Sec 3.1) and the
// LCU's loop-counter register file. Register writes commit at end of cycle
// (the unit models handle that); this class is plain storage with energy
// accounting.

#include <array>
#include <cstdint>

#include "common/status.hpp"
#include "common/types.hpp"
#include "energy/meter.hpp"

namespace vwr2a::mem {

/// An N-entry 32-bit register file with read/write energy events.
template <unsigned N>
class RegFile {
 public:
  explicit RegFile(energy::EnergyMeter& meter) : meter_(&meter) {}

  Word read(unsigned idx) const {
    check(idx);
    meter_->add(energy::Event::kRcRfRead);
    return regs_[idx];
  }

  void write(unsigned idx, Word v) {
    check(idx);
    meter_->add(energy::Event::kRcRfWrite);
    regs_[idx] = v;
  }

  /// Backdoor without energy accounting.
  Word peek(unsigned idx) const {
    check(idx);
    return regs_[idx];
  }
  void poke(unsigned idx, Word v) {
    check(idx);
    regs_[idx] = v;
  }

 private:
  static void check(unsigned idx) {
    if (idx >= N) throw RangeError("RegFile: index out of range");
  }

  energy::EnergyMeter* meter_;
  std::array<Word, N> regs_{};
};

using RcRegFile = RegFile<arch::kRcRegs>;
using LcuRegFile = RegFile<arch::kLcuRegs>;

} // namespace vwr2a::mem
