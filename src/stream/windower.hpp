#pragma once
// Sample ring buffer + window slicer of one streaming session: arbitrary-
// length pushes of 16.15 samples in, fixed-size (possibly overlapping)
// analysis windows out. Window w covers absolute sample indices
// [w * hop, w * hop + window); hop < window overlaps consecutive windows,
// hop == window tiles the stream. A final partial window (samples past the
// last full window's end) can be flushed zero-padded.
//
// The ring is the session's backpressure boundary: free_space() is what a
// non-blocking push may accept; everything else is dropped and accounted
// upstream. Single-producer; not thread-safe.

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"

namespace vwr2a::stream {

/// The ring buffer / slicer.
class Windower {
 public:
  /// `capacity` is the ring size in samples and must hold at least one
  /// window; 1 <= hop <= window.
  Windower(unsigned window, unsigned hop, std::size_t capacity)
      : window_(window), hop_(hop), buf_(capacity) {
    if (window == 0) throw HostError("Windower: window must be positive");
    if (hop == 0 || hop > window) {
      throw HostError("Windower: need 1 <= hop <= window");
    }
    if (capacity < window) {
      throw HostError("Windower: capacity must hold one window");
    }
  }

  unsigned window() const { return window_; }
  unsigned hop() const { return hop_; }
  std::size_t capacity() const { return buf_.size(); }
  std::size_t size() const { return count_; }
  std::size_t free_space() const { return buf_.size() - count_; }
  std::uint64_t windows_emitted() const { return emitted_; }

  /// Appends samples; the caller must have checked free_space().
  void push(std::span<const std::int32_t> samples) {
    if (samples.size() > free_space()) {
      throw HostError("Windower: push past capacity");
    }
    for (std::size_t i = 0; i < samples.size(); ++i) {
      buf_[(head_ + count_ + i) % buf_.size()] = samples[i];
    }
    count_ += samples.size();
  }

  /// True when a full window is buffered.
  bool has_window() const { return count_ >= window_; }

  /// Copies out the next window and advances the stream by `hop` samples
  /// (overlap stays buffered).
  std::vector<std::int32_t> pop_window() {
    if (!has_window()) throw HostError("Windower: no full window buffered");
    std::vector<std::int32_t> w(window_);
    for (unsigned i = 0; i < window_; ++i) {
      w[i] = buf_[(head_ + i) % buf_.size()];
    }
    head_ = (head_ + hop_) % buf_.size();
    count_ -= hop_;
    covered_ = window_ - hop_;  // the overlap stays buffered, already seen
    ++emitted_;
    return w;
  }

  /// True when buffered samples exist that no emitted window has covered
  /// (more than the overlap the last pop_window left behind; a tail flush
  /// empties the ring, so after one the next segment starts fresh).
  bool has_tail() const { return count_ > covered_; }

  /// Flushes the remaining samples as one zero-padded window and empties
  /// the ring.
  std::vector<std::int32_t> pop_tail() {
    if (!has_tail()) throw HostError("Windower: no tail to flush");
    std::vector<std::int32_t> w(window_, 0);
    for (std::size_t i = 0; i < count_; ++i) {
      w[i] = buf_[(head_ + i) % buf_.size()];
    }
    head_ = (head_ + count_) % buf_.size();
    count_ = 0;
    covered_ = 0;  // the ring is empty: nothing buffered is pre-covered
    ++emitted_;
    return w;
  }

 private:
  unsigned window_;
  unsigned hop_;
  std::vector<std::int32_t> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t covered_ = 0;  ///< leading buffered samples a window covered
  std::uint64_t emitted_ = 0;
};

} // namespace vwr2a::stream
