#pragma once
// Sample staging + window slicer of one streaming session: arbitrary-
// length pushes of 16.15 samples in, fixed-size (possibly overlapping)
// analysis windows out. Window w covers absolute sample indices
// [w * hop, w * hop + window); hop < window overlaps consecutive windows,
// hop == window tiles the stream. A final partial window (samples past the
// last full window's end) can be flushed zero-padded.
//
// Staging model: samples are appended contiguously into a shared *segment*
// buffer, and each window is emitted as a WindowView -- a (segment, offset)
// pair aliasing that buffer -- instead of being copied into its own fresh
// allocation. With hop < window the overlapping region between consecutive
// windows is therefore staged exactly once; the old ring design copied it
// once per window that covered it (twice for hop = window/2). When the
// segment fills, the live (not-yet-fully-consumed) region is re-staged once
// at the front of a fresh segment -- one overlap copy per segment, not per
// window. In-flight jobs keep old segments alive through shared ownership;
// the producer only ever writes *beyond* every emitted window, so aliasing
// is race-free.
//
// The staging buffer is the session's backpressure boundary: free_space()
// is what a non-blocking push may accept; everything else is dropped and
// accounted upstream. Single-producer; not thread-safe.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "runtime/job.hpp"

namespace vwr2a::stream {

/// One emitted window: `window` samples of `segment` starting at `offset`.
/// The segment is shared and immutable over the window's range.
struct WindowView {
  runtime::SharedBuffer segment;
  unsigned offset = 0;

  /// Materializes the window as a plain vector (tests, legacy callers).
  std::vector<std::int32_t> to_vector(unsigned window) const {
    return {segment->begin() + offset, segment->begin() + offset + window};
  }
};

/// The segment stager / slicer.
class Windower {
 public:
  /// `capacity` is the staging size in samples and must hold at least one
  /// window; 1 <= hop <= window.
  Windower(unsigned window, unsigned hop, std::size_t capacity)
      : window_(window), hop_(hop), capacity_(capacity) {
    if (window == 0) throw HostError("Windower: window must be positive");
    if (hop == 0 || hop > window) {
      throw HostError("Windower: need 1 <= hop <= window");
    }
    if (capacity < window) {
      throw HostError("Windower: capacity must hold one window");
    }
  }

  unsigned window() const { return window_; }
  unsigned hop() const { return hop_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return end_ - start_; }
  std::size_t free_space() const { return capacity_ - size(); }
  std::uint64_t windows_emitted() const { return emitted_; }
  /// Segments allocated so far (each re-stages the overlap exactly once).
  std::uint64_t segments_staged() const { return segments_; }

  /// Appends samples; the caller must have checked free_space().
  void push(std::span<const std::int32_t> samples) {
    if (samples.size() > free_space()) {
      throw HostError("Windower: push past capacity");
    }
    if (seg_ == nullptr || end_ + samples.size() > capacity_) {
      new_segment();
    }
    std::copy(samples.begin(), samples.end(), seg_->begin() + end_);
    end_ += samples.size();
  }

  /// True when a full window is buffered.
  bool has_window() const { return size() >= window_; }

  /// Emits the next window as a view into the shared segment and advances
  /// the stream by `hop` samples (the overlap stays staged in place).
  WindowView pop_window_view() {
    if (!has_window()) throw HostError("Windower: no full window buffered");
    WindowView v{runtime::SharedBuffer(seg_), static_cast<unsigned>(start_)};
    start_ += hop_;
    covered_ = window_ - hop_;  // the overlap stays staged, already seen
    ++emitted_;
    return v;
  }

  /// Copy-out variant of pop_window_view() (tests, legacy callers).
  std::vector<std::int32_t> pop_window() {
    return pop_window_view().to_vector(window_);
  }

  /// True when buffered samples exist that no emitted window has covered
  /// (more than the overlap the last pop_window left behind; a tail flush
  /// empties the stager, so after one the next segment starts fresh).
  bool has_tail() const { return size() > covered_; }

  /// Flushes the remaining samples as one zero-padded window. The pad must
  /// stay immutable under later pushes, so the tail gets its own
  /// exact-sized segment (tails are rare: one per stream end).
  WindowView pop_tail_view() {
    if (!has_tail()) throw HostError("Windower: no tail to flush");
    auto tail = std::make_shared<std::vector<std::int32_t>>(window_, 0);
    std::copy(seg_->begin() + start_, seg_->begin() + end_, tail->begin());
    start_ = end_;  // the stager is empty: nothing buffered is pre-covered
    covered_ = 0;
    ++emitted_;
    return WindowView{runtime::SharedBuffer(std::move(tail)), 0};
  }

  /// Copy-out variant of pop_tail_view().
  std::vector<std::int32_t> pop_tail() {
    return pop_tail_view().to_vector(window_);
  }

 private:
  /// Starts a fresh segment, re-staging the live region once at its front.
  void new_segment() {
    auto seg = std::make_shared<std::vector<std::int32_t>>(capacity_);
    const std::size_t live = size();
    if (seg_ != nullptr && live > 0) {
      std::copy(seg_->begin() + start_, seg_->begin() + end_, seg->begin());
    }
    seg_ = std::move(seg);
    start_ = 0;
    end_ = live;
    ++segments_;
  }

  unsigned window_;
  unsigned hop_;
  std::size_t capacity_;
  /// Mutable only beyond end_; every emitted view aliases [0, end_).
  std::shared_ptr<std::vector<std::int32_t>> seg_;
  std::size_t start_ = 0;    ///< first live sample within seg_
  std::size_t end_ = 0;      ///< fill index within seg_
  std::size_t covered_ = 0;  ///< leading live samples a window covered
  std::uint64_t emitted_ = 0;
  std::uint64_t segments_ = 0;
};

} // namespace vwr2a::stream
