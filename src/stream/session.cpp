#include "stream/session.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "common/status.hpp"
#include "dsp/signal.hpp"

namespace vwr2a::stream {

namespace {

SessionConfig validate(SessionConfig cfg) {
  if (cfg.kind == SessionKind::kBioTracker && cfg.window != app::kWindow) {
    throw HostError("Session: bio-tracker sessions need window == 512");
  }
  if (cfg.kind == SessionKind::kPipeline && cfg.window != 512 &&
      cfg.window != 1024) {
    throw HostError("Session: pipeline sessions need window 512 or 1024");
  }
  if (cfg.hop == 0 || cfg.hop > cfg.window) {
    throw HostError("Session: need 1 <= hop <= window");
  }
  if (cfg.max_inflight == 0) {
    throw HostError("Session: max_inflight must be positive");
  }
  if (cfg.buffer_capacity == 0) cfg.buffer_capacity = 4ull * cfg.window;
  if (cfg.kind == SessionKind::kPipeline && cfg.taps == nullptr) {
    cfg.taps = runtime::make_buffer(dsp::fir11_lowpass_q15());
  }
  return cfg;
}

} // namespace

Session::Session(std::uint64_t id, runtime::DevicePool& pool, unsigned device,
                 SessionConfig cfg, Sink sink)
    : id_(id),
      pool_(&pool),
      device_(device),
      cfg_(validate(std::move(cfg))),
      sink_(std::move(sink)),
      win_(cfg_.window, cfg_.hop, cfg_.buffer_capacity) {
  stats_.id = id_;
  stats_.device = device_;
}

runtime::Job Session::window_job(const SessionConfig& cfg) {
  runtime::Job job;
  if (cfg.kind == SessionKind::kPipeline) {
    job.work = runtime::PipelineJob{cfg.window, nullptr, nullptr};
  } else {
    job.work = runtime::BioTrackerJob{cfg.target, nullptr};
  }
  return job;
}

Cycle Session::window_estimate(const SessionConfig& cfg) {
  return runtime::DevicePool::estimate_cost(window_job(cfg));
}

runtime::Job Session::make_job(WindowView window) {
  runtime::Job job;
  if (cfg_.kind == SessionKind::kPipeline) {
    job.work = runtime::PipelineJob{cfg_.window, cfg_.taps,
                                    std::move(window.segment), window.offset};
  } else {
    job.work = runtime::BioTrackerJob{cfg_.target, std::move(window.segment),
                                      window.offset};
  }
  job.tag = "s" + std::to_string(id_) + "/w" +
            std::to_string(stats_.windows_submitted);
  job.pin = static_cast<int>(device_);
  return job;
}

void Session::submit_window(WindowView window) {
  inflight_.push_back(pool_->submit(make_job(std::move(window))));
  ++stats_.windows_submitted;
}

void Session::reap_front() {
  if (inflight_.empty()) throw HostError("Session: nothing in flight");
  runtime::JobHandle h = std::move(inflight_.front());
  inflight_.pop_front();
  WindowResult r;
  r.session = id_;
  r.index = stats_.windows_delivered;
  r.job = h.get();  // rethrows job failures on the producer thread
  const Cycle lat = r.job.cost.total_cycles();
  stats_.latency_cycles_total += lat;
  stats_.latency_cycles_max = std::max(stats_.latency_cycles_max, lat);
  ++stats_.windows_delivered;
  if (sink_) sink_(r);
}

void Session::reap_ready() {
  using namespace std::chrono_literals;
  while (!inflight_.empty() &&
         inflight_.front().wait_for(0s) == std::future_status::ready) {
    reap_front();
  }
}

bool Session::pump(bool may_block) {
  while (win_.has_window()) {
    if (inflight_.size() >= cfg_.max_inflight) {
      if (!may_block) return false;
      reap_front();  // backpressure: deliver the oldest window first
    }
    submit_window(win_.pop_window_view());
  }
  return true;
}

void Session::push(std::span<const std::int32_t> samples) {
  std::size_t off = 0;
  while (off < samples.size()) {
    reap_ready();
    pump(/*may_block=*/true);  // frees at least `hop` ring samples per window
    const std::size_t take =
        std::min(samples.size() - off, win_.free_space());
    win_.push(samples.subspan(off, take));
    stats_.samples_in += take;
    off += take;
  }
  pump(/*may_block=*/true);
  reap_ready();
}

bool Session::try_push(std::span<const std::int32_t> samples) {
  reap_ready();
  pump(/*may_block=*/false);
  if (win_.free_space() < samples.size()) {
    stats_.dropped_samples += samples.size();
    ++stats_.dropped_pushes;
    return false;
  }
  win_.push(samples);
  stats_.samples_in += samples.size();
  pump(/*may_block=*/false);
  return true;
}

void Session::flush() {
  pump(/*may_block=*/true);
  if (win_.has_tail()) {
    if (inflight_.size() >= cfg_.max_inflight) reap_front();
    submit_window(win_.pop_tail_view());
  }
}

void Session::drain() {
  while (!inflight_.empty()) reap_front();
}

void Session::finish() {
  flush();
  drain();
}

SessionStats Session::stats() const { return stats_; }

} // namespace vwr2a::stream
