#include "stream/session.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "common/status.hpp"
#include "dsp/signal.hpp"
#include "obs/trace.hpp"
#include "stream/completer.hpp"

namespace vwr2a::stream {

namespace {

SessionConfig validate(SessionConfig cfg) {
  if (cfg.kind == SessionKind::kBioTracker && cfg.window != app::kWindow) {
    throw HostError("Session: bio-tracker sessions need window == 512");
  }
  if (cfg.kind == SessionKind::kPipeline && cfg.window != 512 &&
      cfg.window != 1024) {
    throw HostError("Session: pipeline sessions need window 512 or 1024");
  }
  if (cfg.hop == 0 || cfg.hop > cfg.window) {
    throw HostError("Session: need 1 <= hop <= window");
  }
  if (cfg.max_inflight == 0) {
    throw HostError("Session: max_inflight must be positive");
  }
  if (cfg.buffer_capacity == 0) cfg.buffer_capacity = 4ull * cfg.window;
  if (cfg.kind == SessionKind::kPipeline && cfg.taps == nullptr) {
    cfg.taps = runtime::make_buffer(dsp::fir11_lowpass_q15());
  }
  return cfg;
}

} // namespace

Session::Session(std::uint64_t id, runtime::DevicePool& pool, unsigned device,
                 SessionConfig cfg, Sink sink, Completer* completer,
                 ErrorSink on_error)
    : id_(id),
      pool_(&pool),
      device_(device),
      cfg_(validate(std::move(cfg))),
      sink_(std::move(sink)),
      error_sink_(std::move(on_error)),
      completer_(completer),
      win_(cfg_.window, cfg_.hop, cfg_.buffer_capacity) {
  stats_.id = id_;
  stats_.device = device_;
  if (obs::metrics_enabled()) {
    m_delivered_ = &obs::Registry::get().counter(
        "session." + std::to_string(id_) + ".windows_delivered");
  }
}

runtime::Job Session::window_job(const SessionConfig& cfg) {
  runtime::Job job;
  if (cfg.kind == SessionKind::kPipeline) {
    job.work = runtime::PipelineJob{cfg.window, nullptr, nullptr};
  } else {
    job.work = runtime::BioTrackerJob{cfg.target, nullptr};
  }
  return job;
}

Cycle Session::window_estimate(const SessionConfig& cfg) {
  return runtime::DevicePool::estimate_cost(window_job(cfg));
}

runtime::Job Session::make_job(WindowView window) {
  runtime::Job job;
  if (cfg_.kind == SessionKind::kPipeline) {
    job.work = runtime::PipelineJob{cfg_.window, cfg_.taps,
                                    std::move(window.segment), window.offset};
  } else {
    job.work = runtime::BioTrackerJob{cfg_.target, std::move(window.segment),
                                      window.offset};
  }
  job.tag = "s" + std::to_string(id_) + "/w" +
            std::to_string(stats_.windows_submitted);
  job.pin = static_cast<int>(device_);
  // Flight-recorder correlation id: stable across the window's whole life
  // (placement, queue, device run, completion, delivery). windows_submitted
  // is producer-owned, so this unlocked read matches the tag above.
  if (obs::tracing_enabled()) {
    job.trace_id = obs::window_id(id_, stats_.windows_submitted);
  }
  return job;
}

void Session::submit_window(WindowView window) {
  runtime::Job job = make_job(std::move(window));
  const std::uint64_t wid = job.trace_id;
  runtime::JobHandle h = [&] {
    obs::Span slice("window.slice", wid, id_, stats_.windows_submitted);
    return pool_->submit(std::move(job));
  }();
  if (completer_ != nullptr) {
    {
      std::lock_guard<std::mutex> lock(smu_);
      ++inflight_n_;
      ++stats_.windows_submitted;
    }
    // The slot is claimed before the lane can see the handle, so a drain
    // can never observe zero in-flight while an item sits queued. If the
    // enqueue itself fails (completer stopping), no delivery will ever
    // release the slot -- roll it back or a later drain() hangs.
    try {
      completer_->enqueue(this, std::move(h));
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(smu_);
        --inflight_n_;
        --stats_.windows_submitted;
      }
      // The failed slot may be the one a concurrent drain()/wait_slot() is
      // blocked on; no delivery will ever come to wake it.
      slot_cv_.notify_all();
      throw;
    }
  } else {
    inflight_.push_back(std::move(h));
    std::lock_guard<std::mutex> lock(smu_);
    ++stats_.windows_submitted;
  }
}

void Session::account_delivery_locked(const runtime::JobResult& job) {
  const Cycle lat = job.cost.total_cycles();
  stats_.latency_cycles_total += lat;
  stats_.latency_cycles_max = std::max(stats_.latency_cycles_max, lat);
  if (stats_.windows_delivered > 0 && job.device != stats_.device) {
    ++stats_.windows_migrated;  // the pin's failover chain moved us
  }
  stats_.device = job.device;
  ++stats_.windows_delivered;
  if (obs::metrics_enabled()) {
    static obs::Counter& delivered =
        obs::Registry::get().counter("session.windows_delivered");
    delivered.add(1);
    static obs::Histogram& latency =
        obs::Registry::get().histogram("session.latency_cycles");
    latency.record(lat);
    if (m_delivered_ != nullptr) m_delivered_->add(1);
  }
}

void Session::reap_front() {
  if (inflight_.empty()) throw HostError("Session: nothing in flight");
  runtime::JobHandle h = std::move(inflight_.front());
  inflight_.pop_front();
  WindowResult r;
  r.session = id_;
  r.index = stats_.windows_delivered;
  const std::uint64_t wid =
      obs::tracing_enabled() ? obs::window_id(id_, r.index) : 0;
  {
    obs::Span sp("window.complete", wid, id_);
    r.job = h.get();  // rethrows job failures on the producer thread
  }
  {
    std::lock_guard<std::mutex> lock(smu_);
    account_delivery_locked(r.job);
  }
  obs::Span sp("window.deliver", wid, id_, 1);
  if (sink_) sink_(r);
}

void Session::reap_ready() {
  if (completer_ != nullptr) return;  // the lane delivers
  using namespace std::chrono_literals;
  while (!inflight_.empty() &&
         inflight_.front().wait_for(0s) == std::future_status::ready) {
    reap_front();
  }
}

void Session::deliver_async(runtime::JobHandle h) {
  WindowResult r;
  r.session = id_;
  bool ok = true;
  std::string err;
  // next_delivery_ is only ever advanced by this session's lane (the
  // thread running here), so reading it early for the trace id is safe.
  const std::uint64_t wid =
      obs::tracing_enabled() ? obs::window_id(id_, next_delivery_) : 0;
  {
    obs::Span sp("window.complete", wid, id_);
    try {
      r.job = h.get();
    } catch (const std::exception& e) {
      ok = false;
      err = e.what();
    }
  }
  // Only this session's lane assigns indices, in enqueue (= submission)
  // order; failed windows consume their index too.
  r.index = next_delivery_++;
  // The sink runs before the slot is released (and unlocked): a producer
  // blocked on backpressure resumes only once the delivery fully happened,
  // and drain() returning means every sink call has returned.
  {
    obs::Span sp("window.deliver", wid, id_, ok ? 1 : 0);
    if (ok && sink_) sink_(r);
    if (!ok && error_sink_) error_sink_(id_, r.index, err);
  }
  {
    std::lock_guard<std::mutex> lock(smu_);
    if (ok) {
      account_delivery_locked(r.job);
    } else {
      ++stats_.windows_failed;
      if (first_error_.empty() && !error_sink_) {
        first_error_ = err;
        error_pending_ = true;
      }
    }
    --inflight_n_;
  }
  slot_cv_.notify_all();
}

bool Session::at_inflight_limit() const {
  if (completer_ != nullptr) {
    std::lock_guard<std::mutex> lock(smu_);
    return inflight_n_ >= cfg_.max_inflight;
  }
  return inflight_.size() >= cfg_.max_inflight;
}

void Session::wait_slot() {
  std::unique_lock<std::mutex> lock(smu_);
  slot_cv_.wait(lock, [this] { return inflight_n_ < cfg_.max_inflight; });
}

bool Session::pump(bool may_block) {
  while (win_.has_window()) {
    if (at_inflight_limit()) {
      if (!may_block) return false;
      if (completer_ != nullptr) {
        wait_slot();
      } else {
        reap_front();  // backpressure: deliver the oldest window first
      }
    }
    submit_window(win_.pop_window_view());
  }
  return true;
}

void Session::push(std::span<const std::int32_t> samples) {
  obs::Span sp("session.push", 0, id_, samples.size());
  if (obs::metrics_enabled()) {
    static obs::Counter& c = obs::Registry::get().counter("session.samples_in");
    c.add(samples.size());
  }
  std::size_t off = 0;
  while (off < samples.size()) {
    reap_ready();
    pump(/*may_block=*/true);  // frees at least `hop` staged samples per window
    const std::size_t take =
        std::min(samples.size() - off, win_.free_space());
    win_.push(samples.subspan(off, take));
    {
      std::lock_guard<std::mutex> lock(smu_);
      stats_.samples_in += take;
    }
    off += take;
  }
  pump(/*may_block=*/true);
  reap_ready();
}

bool Session::try_push(std::span<const std::int32_t> samples) {
  obs::Span sp("session.push", 0, id_, samples.size());
  reap_ready();
  pump(/*may_block=*/false);
  if (win_.free_space() < samples.size()) {
    if (obs::metrics_enabled()) {
      static obs::Counter& c =
          obs::Registry::get().counter("session.dropped_samples");
      c.add(samples.size());
    }
    std::lock_guard<std::mutex> lock(smu_);
    stats_.dropped_samples += samples.size();
    ++stats_.dropped_pushes;
    return false;
  }
  if (obs::metrics_enabled()) {
    static obs::Counter& c = obs::Registry::get().counter("session.samples_in");
    c.add(samples.size());
  }
  win_.push(samples);
  {
    std::lock_guard<std::mutex> lock(smu_);
    stats_.samples_in += samples.size();
  }
  pump(/*may_block=*/false);
  return true;
}

void Session::flush() {
  obs::Span sp("session.flush", 0, id_);
  pump(/*may_block=*/true);
  if (win_.has_tail()) {
    if (at_inflight_limit()) {
      if (completer_ != nullptr) {
        wait_slot();
      } else {
        reap_front();
      }
    }
    submit_window(win_.pop_tail_view());
  }
}

void Session::drain() {
  if (completer_ != nullptr) {
    std::unique_lock<std::mutex> lock(smu_);
    slot_cv_.wait(lock, [this] { return inflight_n_ == 0; });
    if (error_pending_) {
      error_pending_ = false;
      throw HostError("Session: window job failed: " + first_error_);
    }
    return;
  }
  while (!inflight_.empty()) reap_front();
}

void Session::finish() {
  flush();
  drain();
}

std::size_t Session::inflight() const {
  if (completer_ != nullptr) {
    std::lock_guard<std::mutex> lock(smu_);
    return inflight_n_;
  }
  return inflight_.size();
}

SessionStats Session::stats() const {
  std::lock_guard<std::mutex> lock(smu_);
  return stats_;
}

} // namespace vwr2a::stream
