#pragma once
// Telemetry of the streaming service layer: per-session counters plus the
// fleet aggregate. All figures are in *simulated* units (cycles of the
// device-local clocks), matching runtime::FleetStats semantics.

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "runtime/pool.hpp"

namespace vwr2a::stream {

/// One session's counters (a point-in-time copy, see Session::stats()).
struct SessionStats {
  std::uint64_t id = 0;
  unsigned device = 0;  ///< device that ran the last delivered window (the
                        ///< soft-pin until a fault re-places the session)
  std::uint64_t windows_migrated = 0;  ///< deliveries from a device other
                                       ///< than the previous window's

  std::uint64_t samples_in = 0;        ///< samples accepted into the ring
  std::uint64_t dropped_samples = 0;   ///< samples rejected by try_push
  std::uint64_t dropped_pushes = 0;    ///< try_push calls that dropped
  std::uint64_t windows_submitted = 0; ///< windows turned into jobs
  std::uint64_t windows_delivered = 0; ///< results handed to the sink
  std::uint64_t windows_failed = 0;    ///< jobs that raised instead (lanes)

  /// Per-window service latency on the device (job cycle deltas).
  Cycle latency_cycles_total = 0;
  Cycle latency_cycles_max = 0;
  double mean_latency_cycles() const {
    return windows_delivered > 0
               ? static_cast<double>(latency_cycles_total) /
                     static_cast<double>(windows_delivered)
               : 0.0;
  }
};

/// The server-wide snapshot: every session plus the fleet underneath.
struct ServerStats {
  std::vector<SessionStats> sessions;
  runtime::FleetStats fleet;

  std::uint64_t windows_delivered = 0;  ///< over all sessions
  std::uint64_t windows_failed = 0;     ///< over all sessions
  std::uint64_t dropped_samples = 0;    ///< over all sessions

  /// Folds one session into the aggregate. This is the single place the
  /// per-session -> server-totals mapping lives: StreamServer::stats() and
  /// the gateway's STATS/STATS_PUSH assembly both go through it, so the
  /// wire frames and local telemetry cannot drift.
  void fold(const SessionStats& s) {
    sessions.push_back(s);
    windows_delivered += s.windows_delivered;
    windows_failed += s.windows_failed;
    dropped_samples += s.dropped_samples;
  }

  /// Fleet throughput in delivered windows per simulated second.
  double windows_per_sim_second() const {
    const double s = fleet.sim_seconds();
    return s > 0 ? static_cast<double>(windows_delivered) / s : 0.0;
  }

  /// Mean fraction of the fleet makespan each device spent busy (1.0 =
  /// perfectly balanced, lower = devices idled waiting for the laggard).
  double fleet_occupancy() const {
    if (fleet.fleet_makespan == 0 || fleet.device_cycles.empty()) return 0.0;
    return static_cast<double>(fleet.total_device_cycles) /
           (static_cast<double>(fleet.fleet_makespan) *
            static_cast<double>(fleet.device_cycles.size()));
  }
};

} // namespace vwr2a::stream
