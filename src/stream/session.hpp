#pragma once
// One streaming tenant (a simulated patient feeding a biosignal): accepts
// arbitrary-length sample pushes, slices them into (possibly overlapping)
// windows, turns each window into a runtime job soft-pinned to the
// session's device, and delivers results in window order through a sink
// callback.
//
// Ordering. Every job of a session is pinned to one device, and a device
// runs its FIFO in submission order, so the session's futures complete in
// window order; they are reaped front-first, which makes sink delivery
// ordered by construction. Soft-pinning also keeps the device's resident
// MBioTracker state (band masks, tables) local, so consecutive windows hit
// the SPM-residency fast path.
//
// Delivery modes. Who reaps depends on the owning server's configuration:
//   * producer-thread reaping (the default): push/flush/drain reap the
//     futures and run the sink on the producer's thread -- the original
//     single-threaded behavior, bit-identical to PR 3;
//   * completion lanes (StreamServer::Config::completion_threads > 0): the
//     session hands every submitted handle to a Completer lane, which
//     waits, builds the WindowResult and runs the sink on a dedicated
//     delivery thread. A sink may then block indefinitely without stalling
//     this or any other session's ingest. Job failures are routed to the
//     error sink when one is set, otherwise the first failure is rethrown
//     from drain()/finish().
//
// Backpressure. At most `max_inflight` windows of a session are queued or
// running at once, and the staging buffer bounds the buffered samples:
//   * push() blocks -- when a bound is hit it waits for the oldest window
//     to deliver before submitting more;
//   * try_push() never blocks -- samples that do not fit the staging buffer
//     are dropped whole and counted (SessionStats::dropped_*).
//
// Threading. A session is single-producer: push/try_push/flush/drain must
// come from one thread at a time (different sessions are independent; the
// pool underneath is thread-safe). stats() may be called from any thread.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "app/mbiotracker.hpp"
#include "obs/metrics.hpp"
#include "runtime/pool.hpp"
#include "stream/stats.hpp"
#include "stream/windower.hpp"

namespace vwr2a::stream {

class Completer;

/// What a session runs per window.
enum class SessionKind : std::uint8_t {
  kBioTracker = 0,  ///< whole MBioTracker application window (default)
  kPipeline,        ///< FIR -> energy -> rFFT feature pipeline
};

/// Per-session configuration.
struct SessionConfig {
  unsigned window = app::kWindow;  ///< samples per analysis window
  unsigned hop = app::kWindow;     ///< stream advance per window (<= window)
  SessionKind kind = SessionKind::kBioTracker;
  app::Target target = app::Target::kCpuVwr2a;  ///< bio-tracker target
  runtime::SharedBuffer taps;  ///< pipeline FIR taps; null = paper's FIR-11
  std::size_t max_inflight = 4;       ///< queued-or-running window bound
  std::size_t buffer_capacity = 0;    ///< staging samples; 0 = 4 * window
};

/// One delivered window.
struct WindowResult {
  std::uint64_t session = 0;  ///< owning session id
  std::uint64_t index = 0;    ///< window index within the session, from 0
  runtime::JobResult job;     ///< output words + cycle/energy cost
};

/// The session. Created by StreamServer::open_session().
class Session {
 public:
  using Sink = std::function<void(const WindowResult&)>;
  /// Failed-window report (completion-lane mode): session id, window index,
  /// error message. Runs on the delivery thread.
  using ErrorSink =
      std::function<void(std::uint64_t, std::uint64_t, const std::string&)>;

  /// `device` is the soft-pin target (the server places sessions);
  /// `completer` switches the session to completion-lane delivery (null:
  /// producer-thread reaping).
  Session(std::uint64_t id, runtime::DevicePool& pool, unsigned device,
          SessionConfig cfg, Sink sink, Completer* completer = nullptr,
          ErrorSink on_error = nullptr);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Blocking ingest: accepts every sample, waiting for window deliveries
  /// whenever the staging buffer or the in-flight bound requires.
  void push(std::span<const std::int32_t> samples);

  /// Non-blocking ingest: submits whatever full windows fit under the
  /// in-flight bound, then accepts the samples only if the staging buffer
  /// has room -- otherwise the whole push is dropped and counted. Returns
  /// false on a drop.
  bool try_push(std::span<const std::int32_t> samples);

  /// Submits all buffered full windows, then the zero-padded partial tail
  /// (if any samples past the last window remain). Blocking.
  void flush();

  /// Blocks until every submitted window has been delivered. In
  /// completion-lane mode, rethrows the first job failure (once) when no
  /// error sink was installed.
  void drain();

  /// flush() + drain(): end-of-stream.
  void finish();

  std::uint64_t id() const { return id_; }
  unsigned device() const { return device_; }
  const SessionConfig& config() const { return cfg_; }
  std::size_t inflight() const;

  /// Counter snapshot. Thread-safe.
  SessionStats stats() const;

  /// Completion-lane entry point: waits for `h`, delivers the result to the
  /// sink (or the failure to the error sink) and releases one in-flight
  /// slot. Called only by the owning Completer's lane thread.
  void deliver_async(runtime::JobHandle h);

  /// A template of the per-window job this session will submit (null
  /// buffers), for cost estimation against the pool's online estimator.
  static runtime::Job window_job(const SessionConfig& cfg);

  /// The shortest-local-clock reservation one window of this session is
  /// worth under the analytic prior (window_job + pool.estimate() folds in
  /// the learned per-family correction when a pool is at hand).
  static Cycle window_estimate(const SessionConfig& cfg);

 private:
  /// Builds the per-window job (kind-dependent), pinned to device_. The
  /// window is a view into the windower's shared staging segment, so the
  /// hop-overlap between consecutive windows is never copied per window.
  runtime::Job make_job(WindowView window);
  void submit_window(WindowView window);
  /// Delivers the oldest in-flight result to the sink (producer-thread
  /// reaping; blocking).
  void reap_front();
  /// Producer-reaping mode: delivers every already-completed front result
  /// without blocking. Completion-lane mode: no-op (the lane delivers).
  void reap_ready();
  /// Blocks until an in-flight slot frees (completion-lane mode).
  void wait_slot();
  /// True when the in-flight bound is currently met.
  bool at_inflight_limit() const;
  /// Submits buffered full windows; blocks on backpressure when allowed,
  /// stops early otherwise. Returns false if it stopped early.
  bool pump(bool may_block);
  /// Folds one delivered result into stats_ (caller holds smu_ or is the
  /// single producer in producer-reaping mode).
  void account_delivery_locked(const runtime::JobResult& job);

  std::uint64_t id_;
  runtime::DevicePool* pool_;
  unsigned device_;
  SessionConfig cfg_;
  Sink sink_;
  ErrorSink error_sink_;
  Completer* completer_;  ///< null: producer-thread reaping
  Windower win_;
  /// Producer-reaping mode only: the session's own in-flight FIFO.
  std::deque<runtime::JobHandle> inflight_;

  /// Counter + in-flight-slot state. In producer-reaping mode only the
  /// producer touches it; in completion-lane mode the producer and the lane
  /// share it under smu_.
  mutable std::mutex smu_;
  std::condition_variable slot_cv_;   ///< in-flight slot freed / drained
  std::size_t inflight_n_ = 0;        ///< completion-lane in-flight count
  std::uint64_t next_delivery_ = 0;   ///< lane-side window index counter
  /// Per-session delivered-window counter ("session.<id>.windows_delivered"),
  /// bound at construction iff metrics were enabled then; observability only.
  obs::Counter* m_delivered_ = nullptr;
  std::string first_error_;           ///< first job failure (lane mode)
  bool error_pending_ = false;        ///< first_error_ not yet rethrown
  SessionStats stats_;
};

} // namespace vwr2a::stream
