#pragma once
// One streaming tenant (a simulated patient feeding a biosignal): accepts
// arbitrary-length sample pushes, slices them into (possibly overlapping)
// windows, turns each window into a runtime job soft-pinned to the
// session's device, and delivers results in window order through a sink
// callback.
//
// Ordering. Every job of a session is pinned to one device, and a device
// runs its FIFO in submission order, so the session's futures complete in
// window order; the session reaps them front-first, which makes sink
// delivery ordered by construction. Soft-pinning also keeps the device's
// resident MBioTracker state (band masks, tables) local, so consecutive
// windows hit the SPM-residency fast path.
//
// Backpressure. At most `max_inflight` windows of a session are queued or
// running at once, and the ring buffer bounds the buffered samples:
//   * push() blocks -- when the bound is hit it reaps the oldest result
//     (delivering it to the sink) before submitting more;
//   * try_push() never blocks -- samples that do not fit the ring are
//     dropped whole and counted (SessionStats::dropped_*).
//
// Threading. A session is single-producer: push/try_push/flush/drain must
// come from one thread at a time (different sessions are independent; the
// pool underneath is thread-safe). The sink runs on the producer's thread,
// during push/flush/drain calls.

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "app/mbiotracker.hpp"
#include "runtime/pool.hpp"
#include "stream/stats.hpp"
#include "stream/windower.hpp"

namespace vwr2a::stream {

/// What a session runs per window.
enum class SessionKind : std::uint8_t {
  kBioTracker = 0,  ///< whole MBioTracker application window (default)
  kPipeline,        ///< FIR -> energy -> rFFT feature pipeline
};

/// Per-session configuration.
struct SessionConfig {
  unsigned window = app::kWindow;  ///< samples per analysis window
  unsigned hop = app::kWindow;     ///< stream advance per window (<= window)
  SessionKind kind = SessionKind::kBioTracker;
  app::Target target = app::Target::kCpuVwr2a;  ///< bio-tracker target
  runtime::SharedBuffer taps;  ///< pipeline FIR taps; null = paper's FIR-11
  std::size_t max_inflight = 4;       ///< queued-or-running window bound
  std::size_t buffer_capacity = 0;    ///< ring samples; 0 = 4 * window
};

/// One delivered window.
struct WindowResult {
  std::uint64_t session = 0;  ///< owning session id
  std::uint64_t index = 0;    ///< window index within the session, from 0
  runtime::JobResult job;     ///< output words + cycle/energy cost
};

/// The session. Created by StreamServer::open_session().
class Session {
 public:
  using Sink = std::function<void(const WindowResult&)>;

  /// `device` is the soft-pin target (the server places sessions).
  Session(std::uint64_t id, runtime::DevicePool& pool, unsigned device,
          SessionConfig cfg, Sink sink);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Blocking ingest: accepts every sample, reaping completed windows (and
  /// running the sink) whenever the ring or the in-flight bound requires.
  void push(std::span<const std::int32_t> samples);

  /// Non-blocking ingest: submits whatever full windows fit under the
  /// in-flight bound, then accepts the samples only if the ring has room --
  /// otherwise the whole push is dropped and counted. Returns false on a
  /// drop.
  bool try_push(std::span<const std::int32_t> samples);

  /// Submits all buffered full windows, then the zero-padded partial tail
  /// (if any samples past the last window remain). Blocking.
  void flush();

  /// Blocks until every submitted window has been delivered to the sink.
  void drain();

  /// flush() + drain(): end-of-stream.
  void finish();

  std::uint64_t id() const { return id_; }
  unsigned device() const { return device_; }
  const SessionConfig& config() const { return cfg_; }
  std::size_t inflight() const { return inflight_.size(); }

  /// Counter snapshot (call from the producer thread, or quiesced).
  SessionStats stats() const;

  /// A template of the per-window job this session will submit (null
  /// buffers), for cost estimation against the pool's online estimator.
  static runtime::Job window_job(const SessionConfig& cfg);

  /// The shortest-local-clock reservation one window of this session is
  /// worth under the analytic prior (window_job + pool.estimate() folds in
  /// the learned per-family correction when a pool is at hand).
  static Cycle window_estimate(const SessionConfig& cfg);

 private:
  /// Builds the per-window job (kind-dependent), pinned to device_. The
  /// window is a view into the windower's shared staging segment, so the
  /// hop-overlap between consecutive windows is never copied per window.
  runtime::Job make_job(WindowView window);
  void submit_window(WindowView window);
  /// Delivers the oldest in-flight result to the sink (blocking).
  void reap_front();
  /// Delivers every already-completed front result without blocking.
  void reap_ready();
  /// Submits buffered full windows; blocks on backpressure when allowed,
  /// stops early otherwise. Returns false if it stopped early.
  bool pump(bool may_block);

  std::uint64_t id_;
  runtime::DevicePool* pool_;
  unsigned device_;
  SessionConfig cfg_;
  Sink sink_;
  Windower win_;
  std::deque<runtime::JobHandle> inflight_;
  SessionStats stats_;
};

} // namespace vwr2a::stream
