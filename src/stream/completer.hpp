#pragma once
// Dedicated completion/delivery lanes for the stream layer: with
// StreamServer::Config::completion_threads > 0, reaping a session's
// finished windows -- and running its sink -- moves off the producer thread
// onto this small pool of delivery threads, so a sink that blocks (a slow
// network peer, a stalled file) no longer stalls ingest.
//
// Ordering. Sessions are statically assigned to lanes (session id modulo
// lane count) and a session's handles are enqueued in submission order, so
// one lane delivers each session's windows front-first: per-session
// delivery stays ordered by construction, exactly as in producer-thread
// reaping. A blocked sink stalls only its own lane's sessions' *delivery*;
// every session's ingest, and delivery on other lanes, keeps running.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/job.hpp"

namespace vwr2a::stream {

class Session;

/// The delivery-thread pool (owned by StreamServer; one per server).
class Completer {
 public:
  explicit Completer(unsigned threads);
  ~Completer();  ///< drains every lane, then joins

  Completer(const Completer&) = delete;
  Completer& operator=(const Completer&) = delete;

  unsigned threads() const { return static_cast<unsigned>(threads_.size()); }

  /// The lane session `id` delivers on.
  unsigned lane_of(std::uint64_t id) const {
    return static_cast<unsigned>(id % lanes_.size());
  }

  /// Queues one submitted window of `s` for delivery. Called by the
  /// session's producer in submission order (which is what makes the
  /// per-session delivery order a construction property, not a race).
  void enqueue(Session* s, runtime::JobHandle h);

  /// Delivers everything queued so far, then stops the lanes. Idempotent.
  void stop();

 private:
  struct Item {
    Session* session;
    runtime::JobHandle handle;
  };
  struct Lane {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Item> q;
    bool stopping = false;
  };

  void lane_loop(Lane& lane);

  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::thread> threads_;
};

} // namespace vwr2a::stream
