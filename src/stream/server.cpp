#include "stream/server.hpp"

#include <utility>

namespace vwr2a::stream {

StreamServer::StreamServer(Config cfg)
    : cfg_(std::move(cfg)),
      pool_(cfg_.pool),
      completer_(cfg_.completion_threads > 0
                     ? std::make_unique<Completer>(cfg_.completion_threads)
                     : nullptr) {}

StreamServer::~StreamServer() {
  // Lanes hold raw Session pointers and pool futures: stop them (delivering
  // whatever is queued) before sessions_ and pool_ go away.
  if (completer_) completer_->stop();
}

Session& StreamServer::open_session(SessionConfig cfg, Session::Sink sink,
                                    Session::ErrorSink on_error) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = sessions_.size();
  unsigned device;
  if (pool_.schedule() == runtime::Schedule::kShortestLocalClock) {
    // Shortest-local-clock placement with a reservation of the session's
    // expected per-window cost, so the next open_session (or unpinned job)
    // sees the claim -- deterministic greedy spreading by tenant weight,
    // refined later by the real submissions. The estimate runs through the
    // pool's online per-family EWMA, so long-lived servers place new
    // tenants with measured costs, not just the analytic prior.
    device = pool_.place_load(pool_.estimate(Session::window_job(cfg)));
  } else {
    device = static_cast<unsigned>(id % pool_.num_devices());
  }
  sessions_.push_back(std::make_unique<Session>(
      id, pool_, device, std::move(cfg), std::move(sink), completer_.get(),
      std::move(on_error)));
  return *sessions_.back();
}

void StreamServer::finish() {
  // Snapshot under the lock, reap outside it: finishing a session runs its
  // sink on this thread, and a sink is allowed to call back into the
  // server (stats, open_session). sessions_ only grows and the pointers
  // are stable, so we loop until no session opened by a sink mid-finish is
  // left unfinished.
  std::size_t done = 0;
  for (;;) {
    std::vector<Session*> pending;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (std::size_t i = done; i < sessions_.size(); ++i) {
        pending.push_back(sessions_[i].get());
      }
    }
    if (pending.empty()) break;
    done += pending.size();
    for (Session* s : pending) s->finish();
  }
  pool_.wait_idle();
}

ServerStats StreamServer::stats() {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStats out;
  out.sessions.reserve(sessions_.size());
  for (const auto& s : sessions_) out.fold(s->stats());
  out.fleet = pool_.stats();
  return out;
}

std::vector<SessionStats> StreamServer::peek_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SessionStats> out;
  out.reserve(sessions_.size());
  for (const auto& s : sessions_) out.push_back(s->stats());
  return out;
}

std::size_t StreamServer::num_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

} // namespace vwr2a::stream
