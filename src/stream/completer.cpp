#include "stream/completer.hpp"

#include <utility>

#include "common/status.hpp"
#include "obs/metrics.hpp"
#include "stream/session.hpp"

namespace vwr2a::stream {

Completer::Completer(unsigned threads) {
  if (threads == 0) throw HostError("Completer: need at least one thread");
  lanes_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  threads_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    threads_.emplace_back([this, i] { lane_loop(*lanes_[i]); });
  }
}

Completer::~Completer() { stop(); }

void Completer::enqueue(Session* s, runtime::JobHandle h) {
  Lane& lane = *lanes_[lane_of(s->id())];
  {
    std::lock_guard<std::mutex> lock(lane.mu);
    if (lane.stopping) {
      throw HostError("Completer: enqueue after stop");
    }
    lane.q.push_back(Item{s, std::move(h)});
  }
  if (obs::metrics_enabled()) {
    static obs::Gauge& depth =
        obs::Registry::get().gauge("completer.queue_depth");
    depth.add(1);
  }
  lane.cv.notify_one();
}

void Completer::stop() {
  for (auto& lane : lanes_) {
    {
      std::lock_guard<std::mutex> lock(lane->mu);
      lane->stopping = true;
    }
    lane->cv.notify_all();
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void Completer::lane_loop(Lane& lane) {
  std::unique_lock<std::mutex> lock(lane.mu);
  for (;;) {
    lane.cv.wait(lock, [&lane] { return lane.stopping || !lane.q.empty(); });
    if (lane.q.empty()) return;  // stopping and drained
    Item item = std::move(lane.q.front());
    lane.q.pop_front();
    lock.unlock();
    if (obs::metrics_enabled()) {
      static obs::Gauge& depth =
          obs::Registry::get().gauge("completer.queue_depth");
      depth.add(-1);
      static obs::Counter& items =
          obs::Registry::get().counter("completer.items");
      items.add(1);
    }
    // The wait on the future and the sink both run unlocked: a blocking
    // sink holds up only this lane, never an enqueue.
    item.session->deliver_async(std::move(item.handle));
    lock.lock();
  }
}

} // namespace vwr2a::stream
