#pragma once
// The streaming service layer on top of runtime::DevicePool: a StreamServer
// owns the fleet and many Sessions (one per tenant). Each session is
// soft-pinned to a device at open time:
//   * Schedule::kShortestLocalClock (recommended for streaming): the
//     session lands on the device with the smallest estimated local clock
//     and reserves its expected per-window cost there, so heavy and light
//     tenants spread deterministically instead of clustering;
//   * Schedule::kRoundRobin: session i lands on device i % devices (the
//     blind baseline).
// Soft-pinning keeps a session's windows on one device, which (a) makes
// per-session result delivery ordered by construction and (b) lets the
// device's SPM-residency tracking skip re-staging the resident MBioTracker
// image between windows of any bio session.
//
// Lifecycle: open sessions (thread-safe), feed each from its producer
// thread, then finish() and read stats(). The server outlives its sessions'
// producers; destroying it drains the pool.

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/pool.hpp"
#include "stream/completer.hpp"
#include "stream/session.hpp"
#include "stream/stats.hpp"

namespace vwr2a::stream {

/// The server.
class StreamServer {
 public:
  struct Config {
    runtime::DevicePool::Config pool;
    /// Dedicated completion/delivery threads. 0 (the default) reaps results
    /// on each session's producer thread -- bit-identical to the original
    /// behavior. > 0 moves delivery onto Completer lanes: sinks may block
    /// without stalling any session's ingest, per-session order preserved
    /// by construction (see completer.hpp).
    unsigned completion_threads = 0;
    Config() { pool.schedule = runtime::Schedule::kShortestLocalClock; }
  };

  StreamServer() : StreamServer(Config()) {}
  explicit StreamServer(Config cfg);

  StreamServer(const StreamServer&) = delete;
  StreamServer& operator=(const StreamServer&) = delete;

  ~StreamServer();  ///< drains the delivery lanes, then the pool

  /// Opens a tenant session and soft-pins it to a device (see above).
  /// Thread-safe. The returned reference lives as long as the server.
  /// `on_error` receives failed-window reports in completion-lane mode
  /// (ignored under producer-thread reaping, where failures rethrow).
  Session& open_session(SessionConfig cfg = {}, Session::Sink sink = nullptr,
                        Session::ErrorSink on_error = nullptr);

  /// Ends every session's stream (flush + drain) and waits for the fleet
  /// to go idle. Call after the producers have stopped pushing.
  void finish();

  /// Telemetry snapshot: per-session counters + fleet aggregate. Call with
  /// the producers quiesced (e.g. after finish()).
  ServerStats stats();

  /// Non-blocking per-session snapshots (Session::stats() is thread-safe):
  /// safe to call while producers stream. Feeds the v4 STATS_PUSH
  /// per-session load array.
  std::vector<SessionStats> peek_sessions() const;

  runtime::DevicePool& pool() { return pool_; }
  const runtime::DevicePool& pool() const { return pool_; }
  std::size_t num_sessions() const;
  /// The delivery-lane pool, or null under producer-thread reaping.
  Completer* completer() { return completer_.get(); }

 private:
  Config cfg_;
  runtime::DevicePool pool_;
  std::unique_ptr<Completer> completer_;  ///< null: producer-thread reaping
  mutable std::mutex mu_;  ///< guards sessions_
  std::vector<std::unique_ptr<Session>> sessions_;
};

} // namespace vwr2a::stream
