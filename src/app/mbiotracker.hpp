#pragma once
// MBioTracker-like cognitive-workload application (paper Sec 4.4.2): FIR
// preprocessing of a respiration signal, min/max delineation, time- and
// frequency-feature extraction, and an SVM prediction. Runnable on three
// platform configurations, matching Table 5's columns:
//   * CPU only            (Cortex-M4-like model, CMSIS-style q15 kernels)
//   * CPU + FFT ACCEL     (the fixed-function engine computes the FFT)
//   * CPU + VWR2A         (the whole pipeline on the reconfigurable array;
//                          the CPU only orchestrates, paper Sec 5.2)
//
// The recordings behind the paper are not public; the synthetic respiration
// generator (dsp/signal.hpp) produces slow/deep ("relaxed") vs fast/shallow
// ("loaded") breathing, and a fixed linear SVM separates the two classes.
// All three platforms must agree on the class output.

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "isa/image_cache.hpp"
#include "dsp/reference.hpp"
#include "kernels/delineation.hpp"
#include "kernels/fft.hpp"
#include "kernels/fir.hpp"
#include "kernels/reduce.hpp"
#include "soc/platform.hpp"

namespace vwr2a::app {

/// Samples per processing window (paper Sec 5.2: a 512-sample FFT window).
inline constexpr unsigned kWindow = 512;

/// Delineation hysteresis threshold (normalized units).
inline constexpr double kThreshold = 0.08;

/// Frequency bands (bins of the 512-point transform, DC excluded).
inline constexpr unsigned kRespLo = 1, kRespHi = 8;   // ~0.06..0.44 Hz @32 Hz
inline constexpr unsigned kHfLo = 16, kHfHi = 64;     // ~1..4 Hz
inline constexpr unsigned kTotLo = 1, kTotHi = 255;

/// SPM rows owned by the resident band-mask image (resp / hf / total, 4
/// rows each -- see the row map in mbiotracker.cpp). Everything else init()
/// stages lives in system SRAM above the kernel-job region, so these rows
/// are the only resident state another job can clobber; runtime::Device's
/// residency tracking watches their write stamps to skip re-init.
inline constexpr unsigned kMaskRowFirst = 28;
inline constexpr unsigned kMaskRowCount = 12;

/// Normalized feature vector (platform-independent semantics).
struct Features {
  double mean = 0.0;        ///< mean of the filtered window
  double rms = 0.0;         ///< RMS of the filtered window
  double median = 0.0;      ///< median of the filtered window
  double breath_rate = 0.0; ///< detected maxima per window / 8
  double resp_ratio = 0.0;  ///< respiration-band power fraction
  double hf_ratio = 0.0;    ///< high-band power fraction

  std::vector<double> as_vector() const {
    return {mean, rms, median, breath_rate, resp_ratio, hf_ratio};
  }
};

/// Fixed SVM (weights in natural units; each platform quantizes them).
struct SvmModel {
  std::vector<double> weights = {0.1, 0.2, 0.1, 2.0, 0.5, -0.5};
  double bias = -2.0;
};

/// Per-step and total cost of one window (cycles on the active engines and
/// energy over all meters), mirroring Table 5's rows.
struct StepCost {
  Cycle cycles = 0;
  double uj = 0.0;
};

struct AppResult {
  int svm_class = 0;  ///< +1 = high workload, -1 = low
  Features feat;
  StepCost preprocessing;
  StepCost delineation;
  StepCost features;  ///< feature extraction + SVM prediction
  StepCost total;
  unsigned extrema = 0;
};

/// Which engine accelerates the pipeline.
enum class Target {
  kCpu,          ///< everything on the M4 model
  kCpuFftAccel,  ///< FFT on the fixed-function engine, rest on the CPU
  kCpuVwr2a,     ///< everything on VWR2A (CPU orchestrates)
};

/// The application. Owns the VWR2A kernel families (registered once, like a
/// firmware image) but not the platform.
class MBioTracker {
 public:
  /// `cache` shares assembled kernel images across application instances
  /// (e.g. a fleet of runtime devices each hosting the app); `key_prefix`
  /// namespaces the cache keys per architecture variant.
  explicit MBioTracker(soc::Platform& platform,
                       isa::ImageCache* cache = nullptr,
                       std::string key_prefix = "");

  /// Setup: twiddle/zero tables, band masks and SVM weights in system
  /// memory starting at word `sys_base`, resident mask rows in the SPM.
  /// Charged separately from the windows. Safe to call again to re-stage
  /// the resident SPM state (e.g. after other kernels clobbered the mask
  /// rows); repeated calls keep the same memory map.
  void init(unsigned sys_base = 0);

  /// Adopts an image another instance already staged at `sys_base` (the
  /// checkpoint-restore path, runtime/checkpoint.hpp): lays out the same
  /// memory map and prepares the kernel drivers, but stages nothing -- the
  /// SRAM words and SPM mask rows are assumed restored out-of-band. Charges
  /// no cycles or energy. After adopt(), run() works exactly as after
  /// init(); if the restored mask rows were not intact, call init() to
  /// re-stage them (same base).
  void adopt(unsigned sys_base);

  /// System-SRAM words init() reserves above sys_base (the resident app
  /// footprint a device checkpoint serializes): tables, zero block, masks,
  /// weights, window I/O and driver scratch.
  static unsigned footprint_words();

  /// Processes one window of kWindow samples (natural units in [-1, 1])
  /// on the selected target.
  AppResult run(Target target, const std::vector<double>& x);

 private:
  AppResult run_cpu(const std::vector<double>& x, bool use_accel);
  AppResult run_vwr2a(const std::vector<double>& x);
  int svm_class_from(const Features& f) const;

  soc::Platform* plat_;
  kernels::Host host_;
  kernels::FirKernels fir_;
  kernels::FftKernels fft_;
  kernels::DelineationKernels delin_;
  kernels::ReduceKernels reduce_;
  SvmModel model_;
  bool inited_ = false;

  // System-memory map (word addresses).
  unsigned sys_tw_ = 0;       ///< FFT twiddle tables
  unsigned sys_zeros_ = 0;    ///< FIR zero block + taps
  unsigned sys_masks_ = 0;    ///< band masks (3 x 512 words, bitrev order)
  unsigned sys_weights_ = 0;  ///< quantized SVM weights
  unsigned sys_io_ = 0;       ///< window input/output staging
  unsigned sys_scratch_ = 0;  ///< driver scratch
};

} // namespace vwr2a::app
