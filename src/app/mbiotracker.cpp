#include "app/mbiotracker.hpp"

#include <cmath>
#include <utility>

#include "common/bits.hpp"
#include "common/status.hpp"
#include "dsp/signal.hpp"

namespace vwr2a::app {

namespace {

using cpu::M4Meter;
using cpu::Op;
using fx::q15_t;

// SPM row map for the 512-sample window (see DESIGN.md):
//   0..3   filtered window  (= FFT buffer-0 real plane)
//   4..7   delineation flags, later zeroed as the FFT imaginary plane
//   8..15  FFT buffer 1 (the spectrum lands here: re 8..11, im 12..15)
//   16..19 twiddle planes
//   28..39 resident band masks (resp / hf / total, 4 rows each)
//   50     feature vector (slice 0)
//   51..53 delineation records / SVM weights / FIR taps
//   54..63 per-column kernel scratch
constexpr unsigned kMaskResp = kMaskRowFirst, kMaskHf = kMaskRowFirst + 4,
                   kMaskTot = kMaskRowFirst + 8;
constexpr unsigned kFeatRow = 50;

/// Window bin of spectrum-plane position p (bit-reversed resident layout).
unsigned bin_of_position(unsigned p) { return bit_reverse(p, 9); }

bool in_band(unsigned k, unsigned lo, unsigned hi) {
  // Band [lo, hi) plus the conjugate mirror bins of the real signal.
  if (k >= lo && k < hi) return true;
  const unsigned m = (kWindow - k) % kWindow;
  return m >= lo && m < hi;
}

} // namespace

MBioTracker::MBioTracker(soc::Platform& platform, isa::ImageCache* cache,
                         std::string key_prefix)
    : plat_(&platform),
      host_(platform.vwr2a(), platform.sram(), &platform.cpu(),
            std::move(key_prefix)),
      fir_(host_, cache),
      fft_(host_, cache),
      delin_(host_, cache),
      reduce_(host_, cache) {}

void MBioTracker::adopt(unsigned sys_base) {
  if (inited_ && sys_base != sys_tw_) {
    throw HostError("MBioTracker: adopt() must reuse the same sys_base");
  }
  sys_tw_ = sys_base;
  sys_zeros_ = sys_tw_ + kernels::FftKernels::table_words();
  sys_masks_ = sys_zeros_ + 32;
  sys_weights_ = sys_masks_ + 3 * kWindow;
  sys_io_ = sys_weights_ + 8;
  sys_scratch_ = sys_io_ + 2 * kWindow + 16;
  // The drivers need their table bases; prepare() places constants through
  // uncharged pokes, so re-placing over a restored image costs nothing and
  // writes the identical values.
  fft_.prepare(sys_tw_);
  fir_.prepare(sys_zeros_);
  inited_ = true;
}

unsigned MBioTracker::footprint_words() {
  // The map adopt()/init() lay out, plus the scratch tail the delineation
  // and SVM steps use past sys_scratch_ (16 scan words + 8 feature words,
  // rounded up).
  return kernels::FftKernels::table_words() + 32 + 3 * kWindow + 8 +
         (2 * kWindow + 16) + 64;
}

void MBioTracker::init(unsigned sys_base) {
  if (inited_ && sys_base != sys_tw_) {
    throw HostError("MBioTracker: init() must reuse the same sys_base");
  }
  adopt(sys_base);

  // Band masks in bit-reversed spectrum order (weight 1 = 2^-16: keeps the
  // squared 16.15 bins inside 32 bits; ratios are scale-free).
  auto build_mask = [this](unsigned base, unsigned lo, unsigned hi) {
    for (unsigned p = 0; p < kWindow; ++p) {
      const unsigned k = bin_of_position(p);
      plat_->sram().poke(base + p, in_band(k, lo, hi) ? 1u : 0u);
    }
  };
  build_mask(sys_masks_, kRespLo, kRespHi);
  build_mask(sys_masks_ + kWindow, kHfLo, kHfHi);
  build_mask(sys_masks_ + 2 * kWindow, kTotLo, kTotHi);
  host_.dma({dma::Dir::kSysToSpm, sys_masks_, kMaskResp * 128, kWindow, 1, 1});
  host_.dma({dma::Dir::kSysToSpm, sys_masks_ + kWindow, kMaskHf * 128, kWindow, 1, 1});
  host_.dma({dma::Dir::kSysToSpm, sys_masks_ + 2 * kWindow, kMaskTot * 128,
             kWindow, 1, 1});

  // Quantized SVM weights (q.16 coefficients).
  for (unsigned i = 0; i < model_.weights.size(); ++i) {
    plat_->sram().poke(sys_weights_ + i, static_cast<Word>(
                                             fx::to_coeff(model_.weights[i])));
  }
  inited_ = true;
}

int MBioTracker::svm_class_from(const Features& f) const {
  double acc = model_.bias;
  const auto fv = f.as_vector();
  for (std::size_t i = 0; i < fv.size(); ++i) acc += model_.weights[i] * fv[i];
  return acc >= 0 ? 1 : -1;
}

AppResult MBioTracker::run(Target target, const std::vector<double>& x) {
  if (!inited_) throw HostError("MBioTracker: init() not called");
  if (x.size() != kWindow) throw HostError("MBioTracker: window must be 512");
  switch (target) {
    case Target::kCpu:
      return run_cpu(x, false);
    case Target::kCpuFftAccel:
      return run_cpu(x, true);
    case Target::kCpuVwr2a:
      return run_vwr2a(x);
  }
  throw HostError("MBioTracker: bad target");
}

// ---------------------------------------------------------------------------
// CPU (and CPU + FFT accelerator) pipeline, CMSIS-style q15.
// ---------------------------------------------------------------------------
AppResult MBioTracker::run_cpu(const std::vector<double>& x, bool use_accel) {
  M4Meter& m4 = plat_->cpu();
  AppResult out;

  // Quantize input (the ADC/front-end provides q15 samples; not charged).
  std::vector<q15_t> xq(kWindow);
  for (unsigned i = 0; i < kWindow; ++i) xq[i] = fx::to_q15(x[i]);
  std::vector<q15_t> taps(kernels::kFirTaps);
  {
    const auto coeff = dsp::fir11_lowpass_q15();
    for (unsigned i = 0; i < taps.size(); ++i) {
      taps[i] = fx::to_q15(fx::from_coeff(coeff[i]));
    }
  }

  // --- preprocessing --------------------------------------------------------
  auto s0 = plat_->snapshot();
  const auto y = cpu::fir_q15(m4, xq, taps);
  auto s1 = plat_->snapshot();

  // --- delineation ----------------------------------------------------------
  const q15_t thr = fx::to_q15(kThreshold);
  const auto ext = cpu::delineate_q15(m4, y, thr);
  auto s2 = plat_->snapshot();

  // --- features + prediction ------------------------------------------------
  Features f;
  f.mean = fx::from_q15(cpu::mean_q15(m4, y));
  f.rms = fx::from_q15(cpu::rms_q15(m4, y));
  f.median = fx::from_q15(cpu::median_q15(m4, y));
  unsigned maxima = 0;
  for (const auto& e : ext) {
    m4.op(Op::kLoad);
    m4.op(Op::kBranch);
    if (e.is_max) ++maxima;
  }
  f.breath_rate = static_cast<double>(maxima) / 8.0;

  std::int64_t p_resp = 0, p_hf = 0, p_tot = 0;
  if (use_accel) {
    plat_->charge_host_control();
    const auto spec = plat_->fft_accel().rfft(y);
    plat_->add_accel_cycles(spec.cycles);
    auto band = [&spec, &m4](unsigned lo, unsigned hi) {
      std::int64_t acc = 0;
      for (unsigned k = lo; k < hi; ++k) {
        acc += static_cast<std::int64_t>(spec.re[k]) * spec.re[k] +
               static_cast<std::int64_t>(spec.im[k]) * spec.im[k];
        m4.op(Op::kLoad);
        m4.op(Op::kMac, 2);
        m4.op(Op::kBranch);
      }
      return acc;
    };
    p_resp = band(kRespLo, kRespHi);
    p_hf = band(kHfLo, kHfHi);
    p_tot = band(kTotLo, kTotHi);
  } else {
    const auto spec = cpu::rfft_q15(m4, y);
    p_resp = cpu::band_power_q15(m4, spec, kRespLo, kRespHi - 1);
    p_hf = cpu::band_power_q15(m4, spec, kHfLo, kHfHi - 1);
    p_tot = cpu::band_power_q15(m4, spec, kTotLo, kTotHi - 1);
  }
  m4.op(Op::kDiv, 2);
  m4.op(Op::kAlu, 12);
  f.resp_ratio = p_tot > 0 ? static_cast<double>(p_resp) / static_cast<double>(p_tot) : 0.0;
  f.hf_ratio = p_tot > 0 ? static_cast<double>(p_hf) / static_cast<double>(p_tot) : 0.0;

  // q15 SVM: features/4 and weights/2 keep everything inside q15.
  std::vector<q15_t> fq, wq;
  for (double v : f.as_vector()) fq.push_back(fx::to_q15(v / 4.0));
  for (double w : model_.weights) wq.push_back(fx::to_q15(w / 2.0));
  out.svm_class = cpu::svm_q15(m4, fq, wq, fx::to_q15(model_.bias / 8.0));
  auto s3 = plat_->snapshot();

  out.feat = f;
  out.extrema = static_cast<unsigned>(ext.size());
  auto cost = [](const soc::Platform::Snapshot& a, const soc::Platform::Snapshot& b) {
    const auto d = soc::Platform::delta(a, b);
    return StepCost{d.total_cycles(), d.total_uj()};
  };
  out.preprocessing = cost(s0, s1);
  out.delineation = cost(s1, s2);
  out.features = cost(s2, s3);
  out.total = cost(s0, s3);
  return out;
}

// ---------------------------------------------------------------------------
// CPU + VWR2A pipeline: the CPU only programs kernels and reads results
// (paper Sec 5.2: "the processor only manages the high-level control").
// ---------------------------------------------------------------------------
AppResult MBioTracker::run_vwr2a(const std::vector<double>& x) {
  M4Meter& m4 = plat_->cpu();
  AppResult out;

  std::vector<std::int32_t> xq(kWindow);
  for (unsigned i = 0; i < kWindow; ++i) xq[i] = fx::to_q16_15(x[i]);
  host_.to_sram(sys_io_, xq);

  // --- preprocessing: FIR on VWR2A, result resident in SPM rows 0..3 --------
  auto s0 = plat_->snapshot();
  fir_.fir11(kWindow, dsp::fir11_lowpass_q15(), sys_io_, sys_io_ + kWindow);
  host_.dma({dma::Dir::kSysToSpm, sys_io_ + kWindow, 0, kWindow, 1, 1});
  auto s1 = plat_->snapshot();

  // --- delineation -----------------------------------------------------------
  const std::int32_t thr = fx::to_q16_15(kThreshold);
  const std::int32_t x0 =
      static_cast<std::int32_t>(plat_->sram().peek(sys_io_ + kWindow));
  const auto ext = delin_.run(kWindow, 0, thr, x0, sys_scratch_);
  unsigned maxima = 0;
  for (const auto& e : ext) {
    m4.op(Op::kLoad);
    m4.op(Op::kBranch);
    if (e.is_max) ++maxima;
  }
  auto s2 = plat_->snapshot();

  // --- features: reductions + resident FFT + masked band powers --------------
  Features f;
  const std::int32_t sum = reduce_.sum_rows(0, 4);
  const std::int32_t sumsq = reduce_.sumsq_rows(0, 4);
  const std::int32_t med = reduce_.median_rows(0, 4);
  m4.op(Op::kDiv, 2);
  m4.op(Op::kAlu, 10);
  f.mean = static_cast<double>(sum) / kWindow / 32768.0;
  f.rms = std::sqrt(static_cast<double>(sumsq) / kWindow / 16384.0);
  f.median = fx::from_q16_15(med);
  f.breath_rate = static_cast<double>(maxima) / 8.0;

  // Resident FFT: real plane is the filtered window; clear the flags rows to
  // zero the imaginary plane, then run the constant-geometry stages. The
  // spectrum stays in the SPM in bit-reversed order; the masks are stored in
  // the same order, so no reordering or copy-out is needed (paper Sec 5.2.3).
  reduce_.zero_rows(4, 4);
  kernels::FftRunStats fstats;
  const unsigned buf = fft_.run_stages(kWindow, fstats);
  const unsigned xre = kernels::FftKernels::plane_row(kWindow, buf, 0);
  const unsigned xim = kernels::FftKernels::plane_row(kWindow, buf, 1);
  auto band = [this, xre, xim](unsigned mask_row) {
    return static_cast<std::int64_t>(reduce_.masked_power(xre, mask_row, 4)) +
           static_cast<std::int64_t>(reduce_.masked_power(xim, mask_row, 4));
  };
  const std::int64_t p_resp = band(kMaskResp);
  const std::int64_t p_hf = band(kMaskHf);
  const std::int64_t p_tot = band(kMaskTot);
  m4.op(Op::kDiv, 2);
  m4.op(Op::kAlu, 12);
  f.resp_ratio = p_tot > 0 ? static_cast<double>(p_resp) / static_cast<double>(p_tot) : 0.0;
  f.hf_ratio = p_tot > 0 ? static_cast<double>(p_hf) / static_cast<double>(p_tot) : 0.0;

  // SVM on the array: quantized features into the feature row, dot product
  // through RC0, bias and sign on the host.
  std::vector<std::int32_t> fq;
  for (double v : f.as_vector()) fq.push_back(fx::to_q16_15(v));
  host_.to_sram(sys_scratch_ + 16, fq);
  host_.dma({dma::Dir::kSysToSpm, sys_scratch_ + 16, kFeatRow * 128,
             static_cast<std::uint32_t>(fq.size()), 1, 1});
  const std::int32_t dot = reduce_.dot(kFeatRow, sys_weights_,
                                       static_cast<unsigned>(fq.size()));
  m4.op(Op::kAlu, 4);
  out.svm_class = (dot + fx::to_q16_15(model_.bias)) >= 0 ? 1 : -1;
  auto s3 = plat_->snapshot();

  out.feat = f;
  out.extrema = static_cast<unsigned>(ext.size());
  auto cost = [](const soc::Platform::Snapshot& a, const soc::Platform::Snapshot& b) {
    const auto d = soc::Platform::delta(a, b);
    return StepCost{d.total_cycles(), d.total_uj()};
  };
  out.preprocessing = cost(s0, s1);
  out.delineation = cost(s1, s2);
  out.features = cost(s2, s3);
  out.total = cost(s0, s3);
  return out;
}

} // namespace vwr2a::app
