#include "artifact/codec.hpp"

#include "energy/events.hpp"
#include "isa/opcodes.hpp"

namespace vwr2a::artifact {

namespace {

using cgra::tc::Block;
using cgra::tc::Cond;
using cgra::tc::Dst;
using cgra::tc::LcuUop;
using cgra::tc::Line;
using cgra::tc::LsuUop;
using cgra::tc::MxcuUop;
using cgra::tc::RcUop;
using cgra::tc::Src;
using cgra::tc::Term;

/// True when a u8 tag is a valid value of an enum whose last valid value
/// is `max` (inclusive).
template <typename E>
bool tag_ok(std::uint8_t v, E max) {
  return v <= static_cast<std::uint8_t>(max);
}

/// Enums with a kCount sentinel: valid strictly below it.
template <typename E>
bool tag_lt_count(std::uint8_t v) {
  return v < static_cast<std::uint8_t>(E::kCount);
}

// --- trace sub-structures -----------------------------------------------------

void encode_src(const Src& s, Writer& w) {
  w.u8(static_cast<std::uint8_t>(s.k));
  w.u8(s.vwr);
  w.u8(s.rc);
  w.u8(s.idx);
  w.u16(s.base);
  w.u32(s.imm);
}

bool parse_src(Reader& r, Src& s) {
  const std::uint8_t k = r.u8();
  s.vwr = r.u8();
  s.rc = r.u8();
  s.idx = r.u8();
  s.base = r.u16();
  s.imm = r.u32();
  if (!r.ok() || !tag_ok(k, Src::K::kCross)) return false;
  s.k = static_cast<Src::K>(k);
  // Every field that later indexes a simulator array is bounded here, so a
  // hostile payload cannot place an access outside the column's state.
  if (s.vwr >= arch::kVwrsPerColumn || s.rc >= arch::kRcsPerColumn ||
      s.idx >= arch::kSrfEntries || s.base >= arch::kVwrWords) {
    return false;
  }
  if (s.k == Src::K::kRf && s.idx >= arch::kRcRegs) return false;
  return true;
}

void encode_rc_uop(const RcUop& u, Writer& w) {
  w.u8(static_cast<std::uint8_t>(u.op));
  w.u8(u.unary ? 1 : 0);
  encode_src(u.a, w);
  encode_src(u.b, w);
  w.u8(static_cast<std::uint8_t>(u.d));
  w.u8(u.vwr);
  w.u8(u.idx);
  w.u16(u.base);
}

bool parse_rc_uop(Reader& r, RcUop& u) {
  const std::uint8_t op = r.u8();
  u.unary = r.u8() != 0;
  if (!parse_src(r, u.a) || !parse_src(r, u.b)) return false;
  const std::uint8_t d = r.u8();
  u.vwr = r.u8();
  u.idx = r.u8();
  u.base = r.u16();
  if (!r.ok() || !tag_lt_count<isa::RcOp>(op) || !tag_ok(d, Dst::kSrf)) {
    return false;
  }
  u.op = static_cast<isa::RcOp>(op);
  u.d = static_cast<Dst>(d);
  if (u.vwr >= arch::kVwrsPerColumn || u.idx >= arch::kSrfEntries ||
      u.base >= arch::kVwrWords) {
    return false;
  }
  if (u.d == Dst::kRf && u.idx >= arch::kRcRegs) return false;
  return true;
}

void encode_lsu_uop(const LsuUop& u, Writer& w) {
  w.u8(static_cast<std::uint8_t>(u.op));
  w.u8(static_cast<std::uint8_t>(u.amode));
  w.u8(u.vwr);
  w.u8(u.srf_base);
  w.u8(u.srf_data);
  w.u8(static_cast<std::uint8_t>(u.mode));
  w.i32(u.imm);
}

bool parse_lsu_uop(Reader& r, LsuUop& u) {
  const std::uint8_t op = r.u8();
  const std::uint8_t amode = r.u8();
  u.vwr = r.u8();
  u.srf_base = r.u8();
  u.srf_data = r.u8();
  const std::uint8_t mode = r.u8();
  u.imm = r.i32();
  if (!r.ok() || !tag_lt_count<isa::LsuOp>(op) ||
      !tag_lt_count<isa::LsuAddrMode>(amode) ||
      !tag_lt_count<isa::ShufMode>(mode)) {
    return false;
  }
  u.op = static_cast<isa::LsuOp>(op);
  u.amode = static_cast<isa::LsuAddrMode>(amode);
  u.mode = static_cast<isa::ShufMode>(mode);
  if (u.vwr >= arch::kVwrsPerColumn || u.srf_base >= arch::kSrfEntries ||
      u.srf_data >= arch::kSrfEntries) {
    return false;
  }
  return true;
}

void encode_mxcu_uop(const MxcuUop& u, Writer& w) {
  w.u8(static_cast<std::uint8_t>(u.op));
  w.u8(u.srf);
  w.i32(u.imm);
}

bool parse_mxcu_uop(Reader& r, MxcuUop& u) {
  const std::uint8_t op = r.u8();
  u.srf = r.u8();
  u.imm = r.i32();
  if (!r.ok() || !tag_lt_count<isa::MxcuOp>(op) || u.srf >= arch::kSrfEntries) {
    return false;
  }
  u.op = static_cast<isa::MxcuOp>(op);
  return true;
}

void encode_lcu_uop(const LcuUop& u, Writer& w) {
  w.u8(static_cast<std::uint8_t>(u.op));
  w.u8(u.rd);
  w.u8(u.ra);
  w.u8(u.srf);
  w.i32(u.imm);
}

bool parse_lcu_uop(Reader& r, LcuUop& u) {
  const std::uint8_t op = r.u8();
  u.rd = r.u8();
  u.ra = r.u8();
  u.srf = r.u8();
  u.imm = r.i32();
  if (!r.ok() || !tag_lt_count<isa::LcuOp>(op) || u.rd >= arch::kLcuRegs ||
      u.ra >= arch::kLcuRegs || u.srf >= arch::kSrfEntries) {
    return false;
  }
  u.op = static_cast<isa::LcuOp>(op);
  return true;
}

void encode_line(const Line& l, Writer& w) {
  w.u8(static_cast<std::uint8_t>(l.kind));
  w.u8(l.rc_mask);
  w.u8(l.quad ? 1 : 0);
  w.u8(l.has_lsu ? 1 : 0);
  w.u8(l.has_mxcu ? 1 : 0);
  w.u8(l.has_lcu ? 1 : 0);
  for (const RcUop& u : l.rc) encode_rc_uop(u, w);
  encode_lsu_uop(l.lsu, w);
  encode_mxcu_uop(l.mxcu, w);
  encode_lcu_uop(l.lcu, w);
}

bool parse_line(Reader& r, Line& l) {
  const std::uint8_t kind = r.u8();
  l.rc_mask = r.u8();
  l.quad = r.u8() != 0;
  l.has_lsu = r.u8() != 0;
  l.has_mxcu = r.u8() != 0;
  l.has_lcu = r.u8() != 0;
  if (!tag_ok(kind, Line::Kind::kGeneric)) return false;
  l.kind = static_cast<Line::Kind>(kind);
  if (l.rc_mask >= (1u << arch::kRcsPerColumn)) return false;
  for (RcUop& u : l.rc) {
    if (!parse_rc_uop(r, u)) return false;
  }
  return parse_lsu_uop(r, l.lsu) && parse_mxcu_uop(r, l.mxcu) &&
         parse_lcu_uop(r, l.lcu);
}

void encode_block(const Block& b, Writer& w) {
  w.u16(b.first);
  w.u16(b.len);
  w.u8(static_cast<std::uint8_t>(b.term));
  w.u8(static_cast<std::uint8_t>(b.cond));
  w.u8(b.ra);
  w.u8(b.rb);
  w.u8(b.rd);
  w.u8(b.srf);
  w.i32(b.imm);
  w.u16(b.target);
  w.u8(b.fuse_self_loop ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(b.energy.size()));
  for (const energy::EventDelta& d : b.energy) {
    w.u8(static_cast<std::uint8_t>(d.e));
    w.u64(d.n);
  }
}

bool parse_block(Reader& r, Block& b, std::size_t nlines) {
  b.first = r.u16();
  b.len = r.u16();
  const std::uint8_t term = r.u8();
  const std::uint8_t cond = r.u8();
  b.ra = r.u8();
  b.rb = r.u8();
  b.rd = r.u8();
  b.srf = r.u8();
  b.imm = r.i32();
  b.target = r.u16();
  b.fuse_self_loop = r.u8() != 0;
  const std::uint32_t ne = r.u32();
  if (!r.ok() || !tag_ok(term, Term::kExit) || !tag_ok(cond, Cond::kSrfNz)) {
    return false;
  }
  b.term = static_cast<Term>(term);
  b.cond = static_cast<Cond>(cond);
  // Block geometry and branch target must stay inside the line array the
  // replay loop will index.
  if (b.len == 0 || b.first >= nlines || b.first + b.len > nlines ||
      b.target >= nlines) {
    return false;
  }
  if (b.ra >= arch::kLcuRegs || b.rb >= arch::kLcuRegs ||
      b.rd >= arch::kLcuRegs || b.srf >= arch::kSrfEntries) {
    return false;
  }
  // 9 bytes per delta; bound the count by the remaining payload before
  // reserving anything.
  if (ne > r.remaining() / 9) return false;
  b.energy.resize(ne);
  for (energy::EventDelta& d : b.energy) {
    const std::uint8_t e = r.u8();
    d.n = r.u64();
    // EnergyMeter::add_block indexes counts_[e]: out-of-range here would
    // be an out-of-bounds write, so this check is load-bearing.
    if (!r.ok() || !tag_lt_count<energy::Event>(e)) return false;
    d.e = static_cast<energy::Event>(e);
  }
  return true;
}

} // namespace

// --- programs -----------------------------------------------------------------

void encode_program(const isa::ColumnProgram& prog,
                    std::vector<std::uint8_t>& out) {
  Writer w(out);
  w.u32(prog.length());
  for (unsigned s = 0; s < arch::kSlotsPerColumn; ++s) {
    for (std::uint32_t word : prog.stream(static_cast<Slot>(s))) w.u32(word);
  }
}

bool parse_program(Reader& r, isa::ColumnProgram& out) {
  const std::uint32_t len = r.u32();
  if (!r.ok() || len > arch::kProgramWords) return false;
  std::array<std::vector<std::uint32_t>, arch::kSlotsPerColumn> streams;
  for (auto& stream : streams) {
    stream.resize(len);
    for (std::uint32_t& word : stream) word = r.u32();
  }
  if (!r.ok()) return false;
  out = isa::ColumnProgram();
  for (std::uint32_t pc = 0; pc < len; ++pc) {
    std::array<std::uint32_t, arch::kSlotsPerColumn> line;
    for (unsigned s = 0; s < arch::kSlotsPerColumn; ++s) {
      line[s] = streams[s][pc];
    }
    out.append_line(line);
  }
  return true;
}

// --- kernel images ------------------------------------------------------------

void encode_image(const isa::KernelImage& image, std::vector<std::uint8_t>& out) {
  Writer w(out);
  w.str(image.name);
  w.u8(static_cast<std::uint8_t>(image.columns));
  for (const isa::ColumnProgram& p : image.program) encode_program(p, out);
}

bool parse_image(Reader& r, isa::KernelImage& out) {
  out.name = r.str();
  const std::uint8_t columns = r.u8();
  if (!r.ok() ||
      columns < static_cast<std::uint8_t>(isa::ColumnSet::kCol0) ||
      columns > static_cast<std::uint8_t>(isa::ColumnSet::kBoth)) {
    return false;
  }
  out.columns = static_cast<isa::ColumnSet>(columns);
  for (isa::ColumnProgram& p : out.program) {
    if (!parse_program(r, p)) return false;
  }
  return true;
}

// --- compiled traces ----------------------------------------------------------

void encode_trace(const cgra::CompiledTrace& trace,
                  std::vector<std::uint8_t>& out) {
  Writer w(out);
  w.u8(trace.ok ? 1 : 0);
  w.str(trace.bail_reason);
  w.u32(static_cast<std::uint32_t>(trace.lines.size()));
  for (const Line& l : trace.lines) encode_line(l, w);
  w.u32(static_cast<std::uint32_t>(trace.blocks.size()));
  for (const Block& b : trace.blocks) encode_block(b, w);
  w.u32(static_cast<std::uint32_t>(trace.block_of.size()));
  for (std::uint16_t b : trace.block_of) w.u16(b);
}

bool parse_trace(Reader& r, cgra::CompiledTrace& out) {
  out.ok = r.u8() != 0;
  out.bail_reason = r.str();
  const std::uint32_t nlines = r.u32();
  if (!r.ok() || nlines > arch::kProgramWords) return false;
  out.lines.resize(nlines);
  for (Line& l : out.lines) {
    if (!parse_line(r, l)) return false;
  }
  const std::uint32_t nblocks = r.u32();
  if (!r.ok() || nblocks > nlines) return false;
  out.blocks.resize(nblocks);
  for (Block& b : out.blocks) {
    if (!parse_block(r, b, nlines)) return false;
  }
  const std::uint32_t nmap = r.u32();
  if (!r.ok() || nmap != nlines) return false;
  out.block_of.resize(nmap);
  for (std::uint16_t& b : out.block_of) {
    b = r.u16();
    if (b >= nblocks) return false;
  }
  if (!r.ok()) return false;
  // A replayable trace with no lines or no blocks would send the replay
  // loop straight out of bounds.
  if (out.ok && (nlines == 0 || nblocks == 0)) return false;
  return true;
}

} // namespace vwr2a::artifact
