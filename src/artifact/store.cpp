#include "artifact/store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "artifact/codec.hpp"
#include "artifact/format.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vwr2a::artifact {

namespace {

bool set_error(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

} // namespace

std::shared_ptr<Store> Store::open(const std::string& path,
                                   std::string* error) {
  // make_shared needs a public constructor; new + shared_ptr keeps the
  // constructor private so a Store can only exist fully validated.
  std::shared_ptr<Store> s(new Store());
  if (!s->init(path, error)) return nullptr;
  return s;
}

bool Store::init(const std::string& path, std::string* error) {
  path_ = path;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return set_error(error, "artifact: cannot open " + path + ": " +
                                std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return set_error(error, "artifact: not a regular file: " + path);
  }
  size_ = static_cast<std::uint64_t>(st.st_size);
  if (size_ < kHeaderBytes) {
    ::close(fd);
    return set_error(error, "artifact: file shorter than the header");
  }
  void* m = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  if (m != MAP_FAILED) {
    map_ = static_cast<const std::uint8_t*>(m);
    mmapped_ = true;
  } else {
    // Filesystems without mmap support still get a working (if less
    // shareable) artifact: read the bytes into memory.
    fallback_.resize(size_);
    std::uint64_t got = 0;
    while (got < size_) {
      const ssize_t n = ::read(fd, fallback_.data() + got, size_ - got);
      if (n <= 0) {
        ::close(fd);
        return set_error(error, "artifact: short read of " + path);
      }
      got += static_cast<std::uint64_t>(n);
    }
    map_ = fallback_.data();
  }
  ::close(fd);  // the mapping (or the fallback buffer) keeps the bytes alive

  // --- header ----------------------------------------------------------------
  Reader h(map_, kHeaderBytes);
  const std::uint64_t magic = h.u64();
  const std::uint32_t version = h.u32();
  const std::uint32_t tag = h.u32();
  const std::uint64_t file_size = h.u64();
  const std::uint64_t payload_fnv = h.u64();
  const std::uint64_t header_fnv = h.u64();
  const std::uint64_t image_index_off = h.u64();
  const std::uint64_t image_count = h.u64();
  const std::uint64_t trace_index_off = h.u64();
  const std::uint64_t trace_count = h.u64();
  const std::uint64_t blob_off = h.u64();
  const std::uint64_t reserved = h.u64();
  if (magic != kMagic) return set_error(error, "artifact: bad magic");
  if (version != kFormatVersion) {
    return set_error(error, "artifact: format version " +
                                std::to_string(version) + ", expected " +
                                std::to_string(kFormatVersion));
  }
  if (tag != arch_tag()) {
    return set_error(error, "artifact: architecture fingerprint mismatch");
  }
  if (file_size != size_) {
    return set_error(error,
                     "artifact: header file size " + std::to_string(file_size) +
                         " != actual " + std::to_string(size_) +
                         " (truncated or extended)");
  }
  if (reserved != 0) return set_error(error, "artifact: bad reserved field");

  // Header checksum: header bytes with the checksum field zeroed.
  std::uint8_t hdr[kHeaderBytes];
  std::memcpy(hdr, map_, kHeaderBytes);
  std::memset(hdr + kOffHeaderFnv, 0, 8);
  if (fnv1a(hdr, kHeaderBytes) != header_fnv) {
    return set_error(error, "artifact: header checksum mismatch");
  }
  // Payload checksum: everything after the header. This is the line that
  // catches random corruption; entry parsing below is defense in depth.
  if (fnv1a(map_ + kHeaderBytes, size_ - kHeaderBytes) != payload_fnv) {
    return set_error(error, "artifact: payload checksum mismatch");
  }

  // --- index bounds ----------------------------------------------------------
  auto in_payload = [this](std::uint64_t off, std::uint64_t len) {
    return off >= kHeaderBytes && off <= size_ && len <= size_ - off;
  };
  if (blob_off != kHeaderBytes) {
    return set_error(error, "artifact: bad blob offset");
  }
  if (image_count > size_ / kImageEntryBytes ||
      !in_payload(image_index_off, image_count * kImageEntryBytes)) {
    return set_error(error, "artifact: image index out of bounds");
  }
  if (trace_count > size_ / kTraceEntryBytes ||
      !in_payload(trace_index_off, trace_count * kTraceEntryBytes)) {
    return set_error(error, "artifact: trace index out of bounds");
  }

  Reader ii(map_ + image_index_off, image_count * kImageEntryBytes);
  for (std::uint64_t i = 0; i < image_count; ++i) {
    const std::uint64_t key_off = ii.u64();
    const std::uint64_t key_len = ii.u64();
    const std::uint64_t pay_off = ii.u64();
    const std::uint64_t pay_len = ii.u64();
    if (!ii.ok() || !in_payload(key_off, key_len) ||
        !in_payload(pay_off, pay_len)) {
      return set_error(error, "artifact: image entry out of bounds");
    }
    const std::string_view key = bytes(key_off, key_len);
    // Strictly ascending keys: rejects duplicates and non-canonical order
    // (the builder always writes sorted -- anything else is corruption).
    if (!images_.empty() && key <= images_.rbegin()->first) {
      return set_error(error, "artifact: image index not sorted");
    }
    images_.emplace(key, Span{pay_off, pay_len});
  }

  Reader ti(map_ + trace_index_off, trace_count * kTraceEntryBytes);
  for (std::uint64_t i = 0; i < trace_count; ++i) {
    const std::uint64_t var_off = ti.u64();
    const std::uint64_t var_len = ti.u64();
    const std::uint64_t prog_off = ti.u64();
    const std::uint64_t prog_len = ti.u64();
    const std::uint64_t pay_off = ti.u64();
    const std::uint64_t pay_len = ti.u64();
    if (!ti.ok() || !in_payload(var_off, var_len) ||
        !in_payload(prog_off, prog_len) || !in_payload(pay_off, pay_len)) {
      return set_error(error, "artifact: trace entry out of bounds");
    }
    const auto key =
        std::make_pair(bytes(var_off, var_len), bytes(prog_off, prog_len));
    if (!traces_.empty() && key <= traces_.rbegin()->first) {
      return set_error(error, "artifact: trace index not sorted");
    }
    traces_.emplace(key, Span{pay_off, pay_len});
  }
  return true;
}

Store::~Store() {
  if (mmapped_ && map_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(map_), size_);
  }
}

std::shared_ptr<const isa::KernelImage> Store::load_image(
    const std::string& key) {
  const auto it = images_.find(std::string_view(key));
  if (it == images_.end()) {
    lookups_missed_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Reader r(map_ + it->second.off, it->second.len);
  auto image = std::make_shared<isa::KernelImage>();
  if (!parse_image(r, *image) || !r.at_end()) {
    parse_rejects_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  images_served_.fetch_add(1, std::memory_order_relaxed);
  obs::instant("artifact.image", 0, it->second.len);
  if (obs::metrics_enabled()) {
    static obs::Counter& m =
        obs::Registry::get().counter("artifact.images_hydrated");
    m.add(1);
  }
  return image;
}

std::shared_ptr<const cgra::CompiledTrace> Store::load_trace(
    const std::string& variant, const isa::ColumnProgram& prog) {
  std::vector<std::uint8_t> prog_bytes;
  encode_program(prog, prog_bytes);
  const auto key = std::make_pair(
      std::string_view(variant),
      std::string_view(reinterpret_cast<const char*>(prog_bytes.data()),
                       prog_bytes.size()));
  const auto it = traces_.find(key);
  if (it == traces_.end()) {
    lookups_missed_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Reader r(map_ + it->second.off, it->second.len);
  auto trace = std::make_shared<cgra::CompiledTrace>();
  if (!parse_trace(r, *trace) || !r.at_end()) {
    parse_rejects_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  traces_served_.fetch_add(1, std::memory_order_relaxed);
  obs::instant("artifact.trace", 0, it->second.len);
  if (obs::metrics_enabled()) {
    static obs::Counter& m =
        obs::Registry::get().counter("artifact.traces_hydrated");
    m.add(1);
  }
  return trace;
}

std::pair<std::size_t, std::size_t> Store::prewarm(isa::ImageCache& cache,
                                                   const std::string& variant) {
  std::pair<std::size_t, std::size_t> done{0, 0};
  const std::string prefix = variant + "/";
  for (const auto& [key, span] : images_) {
    if (key.substr(0, prefix.size()) != prefix) continue;
    // Parse once up front so a rejected entry is skipped instead of
    // poisoning the cache; the builder closure below only runs if the
    // second (in-cache) parse somehow fails, and then serves this copy.
    const auto image = load_image(std::string(key));
    if (image == nullptr) continue;
    cache.get_or_build(std::string(key), [&image] { return *image; });
    ++done.first;
  }
  for (const auto& [key, span] : traces_) {
    if (key.first != variant) continue;
    Reader r(reinterpret_cast<const std::uint8_t*>(key.second.data()),
             key.second.size());
    isa::ColumnProgram prog;
    if (!parse_program(r, prog) || !r.at_end()) {
      parse_rejects_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // The cache misses, consults this store, and hydrates (or, for a
    // rejected payload, compiles the just-parsed program -- still correct).
    cache.traces().get_or_compile(variant, prog);
    ++done.second;
  }
  return done;
}

Store::Counters Store::counters() const {
  return Counters{images_served_.load(std::memory_order_relaxed),
                  traces_served_.load(std::memory_order_relaxed),
                  lookups_missed_.load(std::memory_order_relaxed),
                  parse_rejects_.load(std::memory_order_relaxed)};
}

std::vector<std::string_view> Store::image_keys() const {
  std::vector<std::string_view> keys;
  keys.reserve(images_.size());
  for (const auto& [key, span] : images_) keys.push_back(key);
  return keys;
}

std::vector<std::pair<std::string_view, std::uint64_t>>
Store::trace_summaries() const {
  std::vector<std::pair<std::string_view, std::uint64_t>> out;
  out.reserve(traces_.size());
  for (const auto& [key, span] : traces_) out.emplace_back(key.first, span.len);
  return out;
}

bool Store::verify_all(std::string* error) const {
  for (const auto& [key, span] : images_) {
    Reader r(map_ + span.off, span.len);
    isa::KernelImage image;
    if (!parse_image(r, image) || !r.at_end()) {
      set_error(error, "artifact: image entry fails to parse: " +
                           std::string(key));
      return false;
    }
  }
  std::size_t i = 0;
  for (const auto& [key, span] : traces_) {
    Reader r(map_ + span.off, span.len);
    cgra::CompiledTrace trace;
    if (!parse_trace(r, trace) || !r.at_end()) {
      set_error(error, "artifact: trace entry " + std::to_string(i) +
                           " (variant " + std::string(key.first) +
                           ") fails to parse");
      return false;
    }
    ++i;
  }
  return true;
}

} // namespace vwr2a::artifact
