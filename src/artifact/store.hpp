#pragma once
// The artifact loader: validates and memory-maps a prebuilt binary
// artifact read-only, then serves kernel images and compiled traces out of
// it on cache miss (it implements isa::ImageSource and cgra::TraceSource,
// the hydration hooks of isa::ImageCache / cgra::TraceCache).
//
// Zero-copy where it matters: the file is mmap'd once (many processes
// share the page cache of one read-only artifact -- the shard-federation
// deployment model), the index keys are string_views into the mapping, and
// nothing is parsed until a key is actually requested. Hydrating an entry
// is a flat bounds-checked parse of the mapped bytes -- a small memcpy-
// class cost, against the CASM assembly or trace compilation it replaces.
//
// Failure model: open() returns nullptr (with a reason) on *any* problem
// -- absent file, bad magic/version/arch, size mismatch, checksum failure,
// malformed index -- and lookups return nullptr for entries that fail
// their (defense-in-depth) payload parse. Callers fall back to in-process
// assembly/compilation transparently; a corrupt artifact can cost the warm
// start, never correctness (tests/test_artifact.cpp fuzzes exactly this).
//
// Thread-safe: lookups only read the immutable mapping and bump atomic
// counters.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cgra/tracecache.hpp"
#include "isa/image_cache.hpp"

namespace vwr2a::artifact {

/// The mmap'd read-only artifact.
class Store : public isa::ImageSource, public cgra::TraceSource {
 public:
  /// Hydration counters (atomic snapshots).
  struct Counters {
    std::uint64_t images_served = 0;  ///< load_image hits
    std::uint64_t traces_served = 0;  ///< load_trace hits
    std::uint64_t lookups_missed = 0; ///< keys the artifact does not hold
    std::uint64_t parse_rejects = 0;  ///< entries that failed payload parse
  };

  /// Opens, validates and maps `path`. Returns nullptr on any validation
  /// failure, with a one-line reason in *error (when non-null). Never
  /// throws for file- or content-level problems.
  static std::shared_ptr<Store> open(const std::string& path,
                                     std::string* error = nullptr);

  ~Store() override;
  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  // --- hydration hooks --------------------------------------------------------
  std::shared_ptr<const isa::KernelImage> load_image(
      const std::string& key) override;
  std::shared_ptr<const cgra::CompiledTrace> load_trace(
      const std::string& variant, const isa::ColumnProgram& prog) override;

  /// Eagerly hydrates every image and trace of architecture variant
  /// `variant` (an soc::ArchConfig::name() string, the key namespace) into
  /// `cache`, through the cache's normal miss paths. After prewarm the
  /// device's whole working set is resident: no first-touch assembly or
  /// trace-compilation hiccup remains -- the fleet is warm without having
  /// executed a single job, which is the artifact's cold-start win
  /// (bench/cold_start.cpp gates it). Entries that fail their payload
  /// parse are skipped (counted in Counters::parse_rejects); returns
  /// (images, traces) hydrated.
  std::pair<std::size_t, std::size_t> prewarm(isa::ImageCache& cache,
                                              const std::string& variant);

  // --- introspection (CLI inspect/verify, tests) ------------------------------
  const std::string& path() const { return path_; }
  std::uint64_t file_size() const { return size_; }
  std::size_t image_count() const { return images_.size(); }
  std::size_t trace_count() const { return traces_.size(); }
  Counters counters() const;

  /// All image keys, in index (= sorted) order.
  std::vector<std::string_view> image_keys() const;
  /// All trace entries as (variant, payload byte count), in index order.
  std::vector<std::pair<std::string_view, std::uint64_t>> trace_summaries()
      const;

  /// Parses every entry in the file (verify subcommand): returns false and
  /// fills *error on the first entry that fails to hydrate.
  bool verify_all(std::string* error = nullptr) const;

 private:
  Store() = default;

  /// Maps the file and validates header + checksums + index bounds;
  /// returns false with a reason on any violation.
  bool init(const std::string& path, std::string* error);
  std::string_view bytes(std::uint64_t off, std::uint64_t len) const {
    return {reinterpret_cast<const char*>(map_) + off,
            static_cast<std::size_t>(len)};
  }

  std::string path_;
  const std::uint8_t* map_ = nullptr;
  std::uint64_t size_ = 0;
  bool mmapped_ = false;          ///< mmap vs read-into-memory fallback
  std::vector<std::uint8_t> fallback_;  ///< owns the bytes when !mmapped_

  struct Span {
    std::uint64_t off = 0;
    std::uint64_t len = 0;
  };
  /// key (view into the mapping) -> payload span.
  std::map<std::string_view, Span, std::less<>> images_;
  /// (variant, canonical program bytes) -> payload span.
  std::map<std::pair<std::string_view, std::string_view>, Span, std::less<>>
      traces_;

  mutable std::atomic<std::uint64_t> images_served_{0};
  mutable std::atomic<std::uint64_t> traces_served_{0};
  mutable std::atomic<std::uint64_t> lookups_missed_{0};
  mutable std::atomic<std::uint64_t> parse_rejects_{0};
};

} // namespace vwr2a::artifact
