#pragma once
// On-disk layout of the VWR2A binary artifact (the nextpnr-"chipdb"-style
// persistent cache of assembled kernel images and compiled trace
// superblocks). docs/artifact.md is the normative spec; this header is its
// code mirror: layout constants, the header fields, the FNV-1a checksum,
// and the bounds-checked little-endian readers/writers every parse in the
// subsystem goes through.
//
// Integrity model, in two layers:
//   1. checksums -- the header carries an FNV-1a 64 over itself (with the
//      checksum field zeroed) and one over the entire payload, both
//      verified by Store::open before any entry is trusted. Random
//      corruption (bit flips, truncation, appended garbage) is rejected
//      here, before an index is built.
//   2. bounded parsing -- every read goes through Reader, which can never
//      read outside the mapped file, and every enum tag / index loaded
//      into a simulator structure is range-validated. Even a corruption
//      the checksum misses cannot produce out-of-bounds access.
// Rejection is always clean: open() returns null with a reason, never
// throws through the loader, and callers fall back to in-process
// assembly/compilation.
//
// Determinism: the writer emits entries in sorted key order with no
// timestamps, absolute paths, pointers or floats, so the same inputs
// produce a byte-identical file (CI cmp-gates two independent builds).

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace vwr2a::artifact {

/// File magic: "VWR2ART\0" little-endian.
inline constexpr std::uint64_t kMagic = 0x0054524132525756ull;

/// Format version. Bump on any layout or serialized-structure change
/// (including enum renumbering in isa/opcodes.hpp or cgra/tracecache.hpp:
/// serialized tags are the enums' numeric values).
inline constexpr std::uint32_t kFormatVersion = 1;

/// Architecture fingerprint baked into the header: an artifact built
/// against different architectural constants is rejected wholesale.
inline constexpr std::uint32_t arch_tag() {
  return (arch::kSlotsPerColumn << 24) | (arch::kRcsPerColumn << 16) |
         (arch::kNumColumns << 8) | arch::kProgramWords;
}

/// Fixed header size in bytes (the payload begins right after).
inline constexpr std::uint64_t kHeaderBytes = 88;

/// Header field offsets (all scalars little-endian).
inline constexpr std::uint64_t kOffMagic = 0;
inline constexpr std::uint64_t kOffVersion = 8;
inline constexpr std::uint64_t kOffArchTag = 12;
inline constexpr std::uint64_t kOffFileSize = 16;
inline constexpr std::uint64_t kOffPayloadFnv = 24;
inline constexpr std::uint64_t kOffHeaderFnv = 32;
inline constexpr std::uint64_t kOffImageIndexOff = 40;
inline constexpr std::uint64_t kOffImageCount = 48;
inline constexpr std::uint64_t kOffTraceIndexOff = 56;
inline constexpr std::uint64_t kOffTraceCount = 64;
inline constexpr std::uint64_t kOffBlobOff = 72;
inline constexpr std::uint64_t kOffReserved = 80;

/// Index entry sizes (see docs/artifact.md).
inline constexpr std::uint64_t kImageEntryBytes = 32;  ///< 4 x u64
inline constexpr std::uint64_t kTraceEntryBytes = 48;  ///< 6 x u64

/// Checksum: 8 interleaved FNV-1a 64 lanes (byte i feeds lane i mod 8,
/// lane l seeded with offset-basis + l), folded FNV-style into one value.
/// Interleaving breaks the serial multiply dependency of plain FNV-1a, so
/// wide cores run ~8 lanes in parallel -- Store::open checksums the whole
/// payload before trusting anything, and that scan sits directly on the
/// warm-start path. Detection quality for random corruption is unchanged:
/// every byte still feeds a full FNV chain.
inline std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n) {
  constexpr std::uint64_t kBasis = 1469598103934665603ull;
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t lane[8];
  for (unsigned l = 0; l < 8; ++l) lane[l] = kBasis + l;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (unsigned l = 0; l < 8; ++l) {
      lane[l] = (lane[l] ^ data[i + l]) * kPrime;
    }
  }
  for (unsigned l = 0; i < n; ++i, ++l) lane[l] = (lane[l] ^ data[i]) * kPrime;
  std::uint64_t h = kBasis;
  for (unsigned l = 0; l < 8; ++l) {
    for (unsigned b = 0; b < 8; ++b) {
      h = (h ^ static_cast<std::uint8_t>(lane[l] >> (8 * b))) * kPrime;
    }
  }
  return h;
}

// --- little-endian writer -----------------------------------------------------

/// Appends little-endian scalars to a byte vector. The single encoder used
/// by the builder, so byte order and field packing cannot drift between
/// sections.
class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(&out) {}

  void u8(std::uint8_t v) { out_->push_back(v); }
  void u16(std::uint16_t v) { put(v, 2); }
  void u32(std::uint32_t v) { put(v, 4); }
  void u64(std::uint64_t v) { put(v, 8); }
  void i32(std::int32_t v) { put(static_cast<std::uint32_t>(v), 4); }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_->insert(out_->end(), s.begin(), s.end());
  }

  std::size_t size() const { return out_->size(); }

 private:
  void put(std::uint64_t v, unsigned bytes) {
    for (unsigned i = 0; i < bytes; ++i) {
      out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<std::uint8_t>* out_;
};

/// Patches a u64 already written at `off` (header fix-ups).
inline void patch_u64(std::vector<std::uint8_t>& buf, std::uint64_t off,
                      std::uint64_t v) {
  for (unsigned i = 0; i < 8; ++i) {
    buf[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

// --- bounds-checked little-endian reader --------------------------------------

/// A cursor over a byte range that can never read outside it: every
/// primitive sets `ok = false` (and returns 0) instead of over-reading.
/// Callers check ok once at the end of a parse -- sticky-failure style, so
/// a truncated or lying buffer degrades to a clean reject, never UB.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t n) : p_(data), n_(n) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return n_ - pos_; }
  bool at_end() const { return pos_ == n_; }

  std::uint8_t u8() { return static_cast<std::uint8_t>(get(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(get(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(get(4)); }
  std::uint64_t u64() { return get(8); }
  std::int32_t i32() { return static_cast<std::int32_t>(get(4)); }

  /// Length-prefixed string; the length is validated against the remaining
  /// bytes before anything is copied, so a lying prefix cannot
  /// over-allocate.
  std::string str() {
    const std::uint32_t len = u32();
    if (!ok_ || len > remaining()) {
      ok_ = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(p_ + pos_), len);
    pos_ += len;
    return s;
  }

  /// Marks the parse failed (semantic validation, e.g. an enum tag out of
  /// range).
  void fail() { ok_ = false; }

 private:
  std::uint64_t get(unsigned bytes) {
    if (!ok_ || bytes > remaining()) {
      ok_ = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (unsigned i = 0; i < bytes; ++i) {
      v |= static_cast<std::uint64_t>(p_[pos_ + i]) << (8 * i);
    }
    pos_ += bytes;
    return v;
  }

  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

} // namespace vwr2a::artifact
