#pragma once
// The artifact builder: enumerates the kernel catalog across architecture
// variants and emits the single-file binary artifact deterministically
// (same inputs -> byte-identical file; CI builds it twice in separate
// processes and cmp's the results).
//
// Enumeration is by construction, not by a hand-maintained kernel list:
// the builder instantiates one runtime::Device per variant (in trace-cache
// execution mode) against a fresh, source-less isa::ImageCache and runs a
// fixed job sweep covering every Job alternative at every size class the
// drivers key kernels by (FIR staged-row counts 1..12, all FFT sizes, all
// reduction flavours, both pipeline widths, the whole-app window). Every
// image the drivers lazily assemble and every trace the engine compiles
// lands in the cache; serialization then walks the cache in sorted key
// order. A kernel the sweep misses is not an error -- runtime lookups that
// miss the artifact fall back to in-process assembly transparently -- it
// just stays cold.

#include <cstdint>
#include <string>
#include <vector>

#include "isa/image_cache.hpp"
#include "runtime/job.hpp"
#include "soc/platform.hpp"

namespace vwr2a::artifact {

/// The default variant set: every architecture point the cost model covers
/// (VWR count 2/3/4 x SIMD width 32/16), the full heterogeneous-fleet
/// spread. Execution mode is forced to trace-cache during population so
/// compiled traces are captured; the artifact itself is engine-agnostic.
std::vector<soc::ArchConfig> default_variants();

/// The deterministic catalog sweep: one job per (kernel family, size
/// class) the drivers key kernels by, with fixed synthetic inputs. Running
/// these on a device touches its entire kernel working set -- the builder's
/// enumeration mechanism, and the cold-start bench's first-touch wave.
std::vector<runtime::Job> catalog_jobs();

/// Runs the catalog sweep for each variant, filling `cache` (which must
/// have no artifact source attached) with every image and trace the sweep
/// touches. Deterministic: fixed synthetic inputs, serial execution.
void populate_catalog(isa::ImageCache& cache,
                      const std::vector<soc::ArchConfig>& variants);

/// Serializes the cache's images and traces into the on-disk format
/// (format.hpp / docs/artifact.md): header, blobs, sorted indices,
/// checksums. Deterministic for a deterministically populated cache.
std::vector<std::uint8_t> serialize_cache(isa::ImageCache& cache);

/// Build summary returned by build_artifact.
struct BuildInfo {
  std::size_t images = 0;
  std::size_t traces = 0;
  std::size_t bytes = 0;
  std::uint64_t payload_fnv = 0;
};

/// populate + serialize + atomic write (temp file + rename, so a reader
/// can never map a half-written artifact). Throws HostError on I/O
/// failure.
BuildInfo build_artifact(const std::string& path,
                         const std::vector<soc::ArchConfig>& variants =
                             default_variants());

} // namespace vwr2a::artifact
