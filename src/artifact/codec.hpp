#pragma once
// Field-by-field serialization of the two payload types the artifact
// stores: assembled isa::KernelImage and compiled cgra::CompiledTrace
// (plus the canonical isa::ColumnProgram encoding that doubles as the
// trace-index match key). Explicitly little-endian and field-ordered --
// never a struct memcpy -- so the encoding is identical across compilers
// and padding rules, which is what the byte-determinism CI gate relies on.
//
// Parsing is the exact inverse and is paranoid: every enum tag and every
// index that will later be used to address a simulator array (energy event
// ids, block/pc references, RC/slot indices) is range-validated, so even a
// buffer that defeats the file checksums cannot drive out-of-bounds
// access. Parse functions return false on any violation and leave the
// output in an unspecified-but-safe state; callers treat false as "entry
// absent" and fall back to in-process work.

#include <cstdint>
#include <vector>

#include "artifact/format.hpp"
#include "cgra/tracecache.hpp"
#include "isa/program.hpp"

namespace vwr2a::artifact {

/// Canonical program encoding: u32 length, then per slot (LCU, LSU, MXCU,
/// RC0..RC3) `length` u32 configuration words. Used both as a trace-entry
/// payload prefix and as the exact-match key of the trace index (mirroring
/// TraceCache's collision-proof full-program comparison).
void encode_program(const isa::ColumnProgram& prog, std::vector<std::uint8_t>& out);
bool parse_program(Reader& r, isa::ColumnProgram& out);

/// KernelImage: string name, u8 columns, then both columns' programs
/// (unoccupied columns encode as length-0 programs).
void encode_image(const isa::KernelImage& image, std::vector<std::uint8_t>& out);
bool parse_image(Reader& r, isa::KernelImage& out);

/// CompiledTrace: u8 ok, string bail_reason, lines, blocks, block_of.
/// Negative results (ok = false) are stored too, so the warm path skips
/// even the failed compile attempts.
void encode_trace(const cgra::CompiledTrace& trace, std::vector<std::uint8_t>& out);
bool parse_trace(Reader& r, cgra::CompiledTrace& out);

} // namespace vwr2a::artifact
