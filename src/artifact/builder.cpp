#include "artifact/builder.hpp"

#include <algorithm>
#include <cstdio>
#include <tuple>

#include "artifact/codec.hpp"
#include "artifact/format.hpp"
#include "common/status.hpp"
#include "kernels/fir.hpp"
#include "runtime/device.hpp"

namespace vwr2a::artifact {

namespace {

using runtime::Job;
using runtime::SharedBuffer;

/// Deterministic synthetic 16.15 samples, small enough for every consumer
/// (FFT inputs stay well inside (-0.5, 0.5), reductions inside the 18-bit
/// signal range). Data values never influence which kernels are built --
/// they only have to be *valid* for every job family.
SharedBuffer ramp(unsigned n) {
  std::vector<std::int32_t> v(n);
  for (unsigned i = 0; i < n; ++i) {
    v[i] = static_cast<std::int32_t>((i * 37) % 4096) - 2048;
  }
  return runtime::make_buffer(std::move(v));
}

/// Slow triangle wave (period 512, amplitude 0.25 in 16.15): few extrema,
/// so delineation and the whole-app window stay far from kMaxExtrema.
SharedBuffer triangle(unsigned n) {
  std::vector<std::int32_t> v(n);
  for (unsigned i = 0; i < n; ++i) {
    const unsigned p = i % 512;
    const int up = p < 256 ? static_cast<int>(p) : 511 - static_cast<int>(p);
    v[i] = (up - 128) * 64;
  }
  return runtime::make_buffer(std::move(v));
}

SharedBuffer taps11() {
  std::vector<std::int32_t> t(kernels::kFirTaps);
  for (unsigned i = 0; i < kernels::kFirTaps; ++i) {
    t[i] = 1024 + static_cast<std::int32_t>(i) * 512;  // q.16 coefficients
  }
  return runtime::make_buffer(std::move(t));
}

} // namespace

std::vector<Job> catalog_jobs() {
  std::vector<Job> jobs;
  const SharedBuffer taps = taps11();
  // FIR: the driver keys kernels by staged-row count (1..12 rows of
  // kFirOutsPerRow outputs); n = 1024 is the 12-row driver cap.
  for (unsigned rows = 1; rows <= 12; ++rows) {
    const unsigned n = std::min(rows * kernels::kFirOutsPerRow, 1024u);
    jobs.push_back(Job{runtime::FirJob{n, taps, ramp(n)}, "fir", -1});
  }
  for (unsigned n : {256u, 512u, 1024u, 2048u}) {
    jobs.push_back(Job{runtime::CfftJob{n, ramp(2 * n)}, "cfft", -1});
  }
  for (unsigned n : {512u, 1024u, 2048u}) {
    jobs.push_back(Job{runtime::RfftJob{n, ramp(n)}, "rfft", -1});
  }
  for (unsigned n : {256u, 512u, 1024u}) {
    jobs.push_back(Job{runtime::IfftJob{n, ramp(2 * n)}, "ifft", -1});
  }
  for (auto op : {runtime::ReduceOp::kMin, runtime::ReduceOp::kMax,
                  runtime::ReduceOp::kMean, runtime::ReduceOp::kEnergy}) {
    for (unsigned n : {128u, 1024u, 4096u}) {
      jobs.push_back(Job{runtime::ReduceJob{op, n, ramp(n)}, "reduce", -1});
    }
  }
  for (unsigned n : {128u, 512u, 2048u}) {
    jobs.push_back(
        Job{runtime::DelineationJob{n, 4096, triangle(n)}, "delin", -1});
  }
  for (unsigned n : {512u, 1024u}) {
    jobs.push_back(Job{runtime::PipelineJob{n, taps, triangle(n), 0},
                       "pipeline", -1});
  }
  jobs.push_back(Job{runtime::BioTrackerJob{app::Target::kCpuVwr2a,
                                            triangle(app::kWindow), 0},
                     "bio", -1});
  return jobs;
}

std::vector<soc::ArchConfig> default_variants() {
  std::vector<soc::ArchConfig> variants;
  for (unsigned vwr : {2u, 3u, 4u}) {
    for (unsigned width : {32u, 16u}) {
      soc::ArchConfig a;
      a.vwr_count = vwr;
      a.simd_width = width;
      a.exec_mode = cgra::ExecMode::kTraceCache;
      variants.push_back(a);
    }
  }
  return variants;
}

void populate_catalog(isa::ImageCache& cache,
                      const std::vector<soc::ArchConfig>& variants) {
  const std::vector<Job> jobs = catalog_jobs();
  for (const soc::ArchConfig& v : variants) {
    soc::ArchConfig arch = v;
    // Trace-cache execution so compiled traces are captured alongside the
    // images (a trace-mode fleet is the serving configuration; interpret
    // fleets simply ignore the trace section).
    arch.exec_mode = cgra::ExecMode::kTraceCache;
    runtime::Device device(0, cache, arch);
    std::uint64_t seq = 0;
    for (const Job& job : jobs) device.run(job, seq++);
  }
}

std::vector<std::uint8_t> serialize_cache(isa::ImageCache& cache) {
  std::vector<std::uint8_t> buf(kHeaderBytes, 0);

  struct ImageEntry {
    std::uint64_t key_off, key_len, pay_off, pay_len;
  };
  struct TraceEntry {
    std::uint64_t var_off, var_len, prog_off, prog_len, pay_off, pay_len;
  };
  std::vector<ImageEntry> image_entries;
  std::vector<TraceEntry> trace_entries;

  // Images: ImageCache::for_each_image visits in key order (std::map), the
  // canonical order of the index.
  cache.for_each_image([&](const std::string& key,
                           const std::shared_ptr<const isa::KernelImage>& img) {
    ImageEntry e{};
    e.key_off = buf.size();
    e.key_len = key.size();
    buf.insert(buf.end(), key.begin(), key.end());
    e.pay_off = buf.size();
    encode_image(*img, buf);
    e.pay_len = buf.size() - e.pay_off;
    image_entries.push_back(e);
  });

  // Traces are cached in hash order; re-sort by (variant, canonical
  // program bytes) so the file never depends on hash-seed or insertion
  // order details.
  struct TraceItem {
    std::string variant;
    std::vector<std::uint8_t> prog;
    std::vector<std::uint8_t> payload;
  };
  std::vector<TraceItem> items;
  cache.traces().for_each_trace(
      [&](const std::string& variant, const isa::ColumnProgram& prog,
          const std::shared_ptr<const cgra::CompiledTrace>& trace) {
        TraceItem it;
        it.variant = variant;
        encode_program(prog, it.prog);
        encode_trace(*trace, it.payload);
        items.push_back(std::move(it));
      });
  std::sort(items.begin(), items.end(),
            [](const TraceItem& a, const TraceItem& b) {
              return std::tie(a.variant, a.prog) < std::tie(b.variant, b.prog);
            });
  for (const TraceItem& it : items) {
    TraceEntry e{};
    e.var_off = buf.size();
    e.var_len = it.variant.size();
    buf.insert(buf.end(), it.variant.begin(), it.variant.end());
    e.prog_off = buf.size();
    e.prog_len = it.prog.size();
    buf.insert(buf.end(), it.prog.begin(), it.prog.end());
    e.pay_off = buf.size();
    e.pay_len = it.payload.size();
    buf.insert(buf.end(), it.payload.begin(), it.payload.end());
    trace_entries.push_back(e);
  }

  const std::uint64_t image_index_off = buf.size();
  {
    Writer w(buf);
    for (const ImageEntry& e : image_entries) {
      w.u64(e.key_off);
      w.u64(e.key_len);
      w.u64(e.pay_off);
      w.u64(e.pay_len);
    }
  }
  const std::uint64_t trace_index_off = buf.size();
  {
    Writer w(buf);
    for (const TraceEntry& e : trace_entries) {
      w.u64(e.var_off);
      w.u64(e.var_len);
      w.u64(e.prog_off);
      w.u64(e.prog_len);
      w.u64(e.pay_off);
      w.u64(e.pay_len);
    }
  }

  // Header, then both checksums (header last: it covers the final header
  // bytes with its own checksum field zeroed).
  patch_u64(buf, kOffMagic, kMagic);
  patch_u64(buf, kOffVersion,
            static_cast<std::uint64_t>(kFormatVersion) |
                (static_cast<std::uint64_t>(arch_tag()) << 32));
  patch_u64(buf, kOffFileSize, buf.size());
  patch_u64(buf, kOffImageIndexOff, image_index_off);
  patch_u64(buf, kOffImageCount, image_entries.size());
  patch_u64(buf, kOffTraceIndexOff, trace_index_off);
  patch_u64(buf, kOffTraceCount, trace_entries.size());
  patch_u64(buf, kOffBlobOff, kHeaderBytes);
  patch_u64(buf, kOffReserved, 0);
  patch_u64(buf, kOffPayloadFnv,
            fnv1a(buf.data() + kHeaderBytes, buf.size() - kHeaderBytes));
  patch_u64(buf, kOffHeaderFnv, 0);
  patch_u64(buf, kOffHeaderFnv, fnv1a(buf.data(), kHeaderBytes));
  return buf;
}

BuildInfo build_artifact(const std::string& path,
                         const std::vector<soc::ArchConfig>& variants) {
  isa::ImageCache cache;
  populate_catalog(cache, variants);
  std::vector<std::uint8_t> bytes = serialize_cache(cache);

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw HostError("artifact: cannot write " + tmp);
  }
  const std::size_t wrote = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (wrote != bytes.size() || !flushed ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw HostError("artifact: failed to write " + path);
  }

  BuildInfo info;
  cache.for_each_image([&](const std::string&, const auto&) { ++info.images; });
  cache.traces().for_each_trace(
      [&](const std::string&, const isa::ColumnProgram&, const auto&) {
        ++info.traces;
      });
  info.bytes = bytes.size();
  info.payload_fnv = fnv1a(bytes.data() + kHeaderBytes,
                           bytes.size() - kHeaderBytes);
  return info;
}

} // namespace vwr2a::artifact
