// Simulator micro-benchmarks (google-benchmark): how fast the cycle-level
// model itself runs. Useful when sweeping parameters or fuzzing kernels.

#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"

namespace {

using namespace vwr2a;
using namespace vwr2a::bench;

void BM_Cfft512(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    Rig rig;
    kernels::FftKernels fft(rig.host);
    fft.prepare(0);
    const unsigned in = kernels::FftKernels::table_words();
    place_complex_input(rig, 512, in, rng);
    const auto stats = fft.cfft(512, in, in + 1026, in + 2052);
    benchmark::DoNotOptimize(stats.cycles);
    state.counters["sim_cycles"] = static_cast<double>(stats.cycles);
  }
}
BENCHMARK(BM_Cfft512)->Unit(benchmark::kMillisecond);

void BM_Fir1024(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    Rig rig;
    kernels::FirKernels fir(rig.host);
    fir.prepare(0);
    for (unsigned i = 0; i < 1024; ++i) {
      rig.sram.poke(64 + i, static_cast<Word>(fx::to_q16_15(rng.next_range(-0.8, 0.8))));
    }
    const auto stats = fir.fir11(1024, dsp::fir11_lowpass_q15(), 64, 64 + 1024);
    benchmark::DoNotOptimize(stats.cycles);
  }
}
BENCHMARK(BM_Fir1024)->Unit(benchmark::kMillisecond);

void BM_AppWindowVwr2a(benchmark::State& state) {
  Rng rng(3);
  const auto x = dsp::respiration(app::kWindow, dsp::RespirationParams{}, rng);
  for (auto _ : state) {
    soc::Platform p;
    app::MBioTracker a(p);
    a.init();
    const auto r = a.run(app::Target::kCpuVwr2a, x);
    benchmark::DoNotOptimize(r.total.cycles);
  }
}
BENCHMARK(BM_AppWindowVwr2a)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
