// Architecture ablation sweep as ONE heterogeneous runtime batch: a fleet
// of six devices -- VWR count {2, 3, 4} x SIMD width {32, 16} -- each
// serving the full kernel catalog (FIR, cFFT, rFFT, iFFT, reduction,
// delineation, whole-app window) pinned to its variant. Per-job costs come
// back through the normal future path; per-variant fleet stats close the
// loop the ROADMAP asks for (Sec 3.2 / 5.1.1 ablations in a single run).
//
// Outputs are bit-identical across variants (the variants share the
// functional model); only the modeled cycles/energy move, reproducing the
// U-shape in energy*delay the paper reports for the VWR count.

#include <cstdio>
#include <string>
#include <vector>

#include "common/fixed_point.hpp"
#include "common/rng.hpp"
#include "dsp/reference.hpp"
#include "dsp/signal.hpp"
#include "runtime/pool.hpp"

int main() {
  using namespace vwr2a;

  const std::vector<soc::ArchConfig> variants = {
      {.vwr_count = 2, .simd_width = 32}, {.vwr_count = 3, .simd_width = 32},
      {.vwr_count = 4, .simd_width = 32}, {.vwr_count = 2, .simd_width = 16},
      {.vwr_count = 3, .simd_width = 16}, {.vwr_count = 4, .simd_width = 16},
  };

  runtime::DevicePool::Config cfg;
  cfg.devices = static_cast<unsigned>(variants.size());
  cfg.device_arch = variants;
  runtime::DevicePool pool(cfg);

  // One shared input set for every variant (buffers alias fleet-wide).
  Rng rng(21);
  auto q15 = [&rng](unsigned n, double lim) {
    std::vector<std::int32_t> x(n);
    for (auto& v : x) v = fx::to_q16_15(rng.next_range(-lim, lim));
    return runtime::make_buffer(std::move(x));
  };
  const auto taps = runtime::make_buffer(dsp::fir11_lowpass_q15());
  const auto fir_x = q15(512, 0.9);
  const auto cfft_x = q15(2 * 512, 0.4);
  const auto rfft_x = q15(512, 0.4);
  const auto ifft_x = q15(2 * 256, 0.4);
  const auto red_x = q15(512, 0.9);
  dsp::RespirationParams rp;
  Rng sig(22);
  const auto delin_x = runtime::make_buffer(dsp::respiration_q16_15(512, rp, sig));
  Rng sigw(23);
  const auto win = dsp::respiration(app::kWindow, rp, sigw);
  std::vector<std::int32_t> winq(app::kWindow);
  for (unsigned i = 0; i < app::kWindow; ++i) winq[i] = fx::to_q16_15(win[i]);
  const auto bio_x = runtime::make_buffer(std::move(winq));

  struct CatalogEntry {
    const char* name;
    runtime::Job job;
  };
  const std::vector<CatalogEntry> catalog = {
      {"fir-512", {runtime::FirJob{512, taps, fir_x}, ""}},
      {"cfft-512", {runtime::CfftJob{512, cfft_x}, ""}},
      {"rfft-512", {runtime::RfftJob{512, rfft_x}, ""}},
      {"ifft-256", {runtime::IfftJob{256, ifft_x}, ""}},
      {"energy-512", {runtime::ReduceJob{runtime::ReduceOp::kEnergy, 512, red_x}, ""}},
      {"delin-512", {runtime::DelineationJob{512, fx::to_q16_15(0.08), delin_x}, ""}},
      {"bioapp-512", {runtime::BioTrackerJob{app::Target::kCpuVwr2a, bio_x}, ""}},
  };

  // The whole sweep is one batch: catalog x variants, each job pinned.
  std::vector<runtime::Job> jobs;
  for (unsigned d = 0; d < cfg.devices; ++d) {
    for (const CatalogEntry& e : catalog) {
      runtime::Job job = e.job;
      job.tag = e.name;
      job.pin = static_cast<int>(d);
      jobs.push_back(std::move(job));
    }
  }
  auto handles = pool.submit_batch(std::move(jobs));
  std::vector<runtime::JobResult> results;
  results.reserve(handles.size());
  for (auto& h : handles) results.push_back(h.get());

  std::printf("==== Runtime ablation sweep: VWR count x SIMD width, one "
              "heterogeneous batch ====\n");
  std::printf("  %-10s", "job");
  for (const auto& v : variants) std::printf(" | %14s", v.name().c_str());
  std::printf("\n");
  const std::size_t per = catalog.size();
  for (std::size_t j = 0; j < per; ++j) {
    std::printf("  %-10s", catalog[j].name);
    for (std::size_t d = 0; d < variants.size(); ++d) {
      const auto& r = results[d * per + j];
      std::printf(" | %8llu cyc",
                  static_cast<unsigned long long>(r.cost.total_cycles()));
    }
    std::printf("\n  %-10s", "");
    for (std::size_t d = 0; d < variants.size(); ++d) {
      const auto& r = results[d * per + j];
      std::printf(" | %11.3f uJ", r.cost.total_uj());
    }
    std::printf("\n");
  }

  // Outputs must be bit-identical across variants.
  unsigned mismatches = 0;
  for (std::size_t j = 0; j < per; ++j) {
    for (std::size_t d = 1; d < variants.size(); ++d) {
      if (results[d * per + j].output != results[j].output) ++mismatches;
    }
  }
  std::printf("\n  cross-variant output mismatches: %u (must be 0)\n",
              mismatches);

  const runtime::FleetStats s = pool.stats();
  std::printf("\n  per-variant fleet stats (%llu jobs total):\n",
              static_cast<unsigned long long>(s.jobs_completed));
  std::printf("  %-14s | %6s | %12s | %12s | %14s\n", "variant", "jobs",
              "cycles", "energy uJ", "energy*delay");
  const double base_c = static_cast<double>(s.device_cycles[1]);
  const double base_e = s.device_pj[1] * 1e-6;
  for (std::size_t d = 0; d < variants.size(); ++d) {
    const double c = static_cast<double>(s.device_cycles[d]);
    const double e = s.device_pj[d] * 1e-6;
    std::printf("  %-14s | %6llu | %12.0f | %12.3f | %13.1f%%\n",
                s.device_arch[d].name().c_str(),
                static_cast<unsigned long long>(s.device_jobs[d]), c, e,
                100.0 * (c * e) / (base_c * base_e));
  }
  std::printf("  (energy*delay relative to the paper's vwr3.w32 design "
              "point; the VWR-count U-shape of Sec 3.2 appears per column)\n");
  std::printf("  image cache: %llu hits, %llu misses, %zu images "
              "(namespaced per variant)\n",
              static_cast<unsigned long long>(s.image_cache.hits),
              static_cast<unsigned long long>(s.image_cache.misses),
              s.image_cache.entries);
  return mismatches == 0 ? 0 : 1;
}
