// Table 4: FIR filter kernel (11 taps) performance and energy comparison,
// CPU vs VWR2A, 256/512/1024 points.

#include "bench/bench_util.hpp"

namespace vwr2a::bench {
namespace {

struct PaperRow {
  unsigned n;
  double cpu_cycles, cpu_uj, vwr_cycles, vwr_uj, speedup, savings_pct;
};
const PaperRow kPaper[] = {
    {256, 24747, 0.37, 1849, 0.11, 13.4, 69.9},
    {512, 49253, 0.73, 3260, 0.21, 15.1, 71.7},
    {1024, 98283, 1.45, 6091, 0.40, 16.1, 72.4},
};

} // namespace
} // namespace vwr2a::bench

int main() {
  using namespace vwr2a;
  using namespace vwr2a::bench;
  Rng rng(5);
  header("Table 4: FIR-11 performance and energy");
  std::printf("  %-8s | %10s %8s | %10s %8s | %8s %9s\n", "points", "CPU cyc",
              "CPU uJ", "VWR2A cyc", "VWR2A uJ", "speedup", "savings");
  for (const auto& p : kPaper) {
    // CPU (q15 CMSIS-style).
    Cycle cpu_cycles = 0;
    double cpu_uj = 0;
    {
      energy::EnergyMeter m;
      cpu::M4Meter m4(m);
      std::vector<fx::q15_t> x(p.n);
      for (auto& v : x) v = fx::to_q15(rng.next_range(-0.8, 0.8));
      std::vector<fx::q15_t> taps(kernels::kFirTaps);
      const auto coeff = dsp::fir11_lowpass_q15();
      for (unsigned i = 0; i < taps.size(); ++i) {
        taps[i] = fx::to_q15(fx::from_coeff(coeff[i]));
      }
      cpu::fir_q15(m4, x, taps);
      cpu_cycles = m4.cycles();
      cpu_uj = m.total_uj();
    }
    // VWR2A.
    Cycle vwr_cycles = 0;
    double vwr_uj = 0;
    {
      Rig rig;
      kernels::FirKernels fir(rig.host);
      fir.prepare(0);
      for (unsigned i = 0; i < p.n; ++i) {
        rig.sram.poke(64 + i, static_cast<Word>(fx::to_q16_15(rng.next_range(-0.8, 0.8))));
      }
      const auto stats = fir.fir11(p.n, dsp::fir11_lowpass_q15(), 64, 64 + p.n);
      vwr_cycles = stats.cycles;
      vwr_uj = rig.acc.meter().total_uj();
    }
    std::printf("  %-8u | %10llu %8.3f | %10llu %8.3f | %7.1fx %8.1f%%\n", p.n,
                static_cast<unsigned long long>(cpu_cycles), cpu_uj,
                static_cast<unsigned long long>(vwr_cycles), vwr_uj,
                static_cast<double>(cpu_cycles) / static_cast<double>(vwr_cycles),
                100.0 * (1.0 - vwr_uj / cpu_uj));
    std::printf("    paper  | %10.0f %8.3f | %10.0f %8.3f | %7.1fx %8.1f%%\n",
                p.cpu_cycles, p.cpu_uj, p.vwr_cycles, p.vwr_uj, p.speedup,
                p.savings_pct);
  }
  return 0;
}
