// Figure 2: FFT kernel energy comparison for various sizes -- the energy
// ratio VWR2A / FFT ACCEL per size (the paper plots per-kernel energy and
// notes the accelerator stays ahead on isolated kernels), plus the in-text
// CMSIS-CPU comparison (86.0% / 40.8% savings for the accelerator and
// VWR2A respectively).

#include "accel/fft_accel.hpp"
#include "bench/bench_util.hpp"

namespace vwr2a::bench {
namespace {

struct Energies {
  double cpu_uj, accel_uj, vwr2a_uj;
};

Energies measure(unsigned n, bool real, Rng& rng) {
  Energies e{};
  {
    energy::EnergyMeter m;
    cpu::M4Meter m4(m);
    if (real) {
      std::vector<fx::q15_t> x(n);
      for (auto& v : x) v = fx::to_q15(rng.next_range(-0.4, 0.4));
      cpu::rfft_q15(m4, x);
    } else {
      std::vector<cpu::CplxQ15> x(n);
      for (auto& v : x) {
        v = {fx::to_q15(rng.next_range(-0.4, 0.4)),
             fx::to_q15(rng.next_range(-0.4, 0.4))};
      }
      cpu::cfft_q15(m4, x);
    }
    e.cpu_uj = m.total_uj();
  }
  {
    energy::EnergyMeter m;
    accel::FftAccel fa(m);
    if (real) {
      std::vector<fx::q15_t> x(n);
      for (auto& v : x) v = fx::to_q15(rng.next_range(-0.4, 0.4));
      fa.rfft(x);
    } else {
      std::vector<cpu::CplxQ15> x(n);
      for (auto& v : x) {
        v = {fx::to_q15(rng.next_range(-0.4, 0.4)),
             fx::to_q15(rng.next_range(-0.4, 0.4))};
      }
      fa.cfft(x);
    }
    e.accel_uj = m.total_uj();
  }
  {
    Rig rig;
    kernels::FftKernels fft(rig.host);
    fft.prepare(0);
    const unsigned in = kernels::FftKernels::table_words();
    const unsigned out = in + 2 * n + 2;
    const unsigned scratch = out + 2 * n + 2;
    if (real) {
      for (unsigned i = 0; i < n; ++i) {
        rig.sram.poke(in + i,
                      static_cast<Word>(fx::to_q16_15(rng.next_range(-0.4, 0.4))));
      }
      fft.rfft(n, in, out, scratch);
    } else {
      place_complex_input(rig, n, in, rng);
      fft.cfft(n, in, out, scratch);
    }
    e.vwr2a_uj = rig.acc.meter().total_uj();
  }
  return e;
}

} // namespace
} // namespace vwr2a::bench

int main() {
  using namespace vwr2a;
  using namespace vwr2a::bench;
  Rng rng(3);
  header("Figure 2: FFT kernel energy (uJ) and VWR2A/ACCEL ratio");
  // The paper's figure shows the accelerator ahead by roughly 4-6x on
  // isolated FFT kernels (its text: complete-SoC factor 4-5x).
  std::printf("  %-16s | %9s | %9s | %9s | %6s\n", "kernel", "CPU uJ",
              "ACCEL uJ", "VWR2A uJ", "V/A");
  for (bool real : {false, true}) {
    for (unsigned n : {512u, 1024u, 2048u}) {
      const Energies e = measure(n, real, rng);
      std::printf("  %-8s %6u   | %9.3f | %9.3f | %9.3f | %5.1fx\n",
                  real ? "real" : "complex", n, e.cpu_uj, e.accel_uj,
                  e.vwr2a_uj, e.vwr2a_uj / e.accel_uj);
    }
  }
  header("In-text CMSIS-CPU comparison (energy savings vs CPU FFT)");
  const Energies e = measure(512, true, rng);
  row("FFT ACCEL savings", 86.0, 100.0 * (1.0 - e.accel_uj / e.cpu_uj), "%");
  row("VWR2A savings", 40.8, 100.0 * (1.0 - e.vwr2a_uj / e.cpu_uj), "%");
  return 0;
}
