// Table 3: FFT accelerator and VWR2A power breakdown while executing a
// 512-point real-valued FFT (DMA / Memories / Control / Datapath, mW and %).

#include "accel/fft_accel.hpp"
#include "bench/bench_util.hpp"

int main() {
  using namespace vwr2a;
  using namespace vwr2a::bench;
  Rng rng(4);

  header("Table 3: power breakdown @ 512-point real FFT");

  {
    energy::EnergyMeter m;
    accel::FftAccel fa(m);
    std::vector<fx::q15_t> x(512);
    for (auto& v : x) v = fx::to_q15(rng.next_range(-0.4, 0.4));
    const auto res = fa.rfft(x);
    const auto rep = energy::make_power_report(m, res.cycles);
    std::printf("%s", energy::format_power_report(rep, "FFT ACCEL (measured)").c_str());
    std::printf("  paper: DMA 1.07e-2 (1%%)  Memories 6.68e-1 (68%%)  "
                "Control 6.25e-2 (6%%)  Datapath 2.42e-1 (25%%)  "
                "Total 9.83e-1 mW\n");
  }

  {
    Rig rig;
    kernels::FftKernels fft(rig.host);
    fft.prepare(0);
    const unsigned in = kernels::FftKernels::table_words();
    const unsigned out = in + 1026;
    const unsigned scratch = out + 1026;
    for (unsigned i = 0; i < 512; ++i) {
      rig.sram.poke(in + i, static_cast<Word>(fx::to_q16_15(rng.next_range(-0.4, 0.4))));
    }
    const auto stats = fft.rfft(512, in, out, scratch);
    const auto rep = energy::make_power_report(rig.acc.meter(), stats.cycles);
    std::printf("%s", energy::format_power_report(rep, "VWR2A (measured)").c_str());
    std::printf("  paper: DMA 9.47e-2 (2%%)  Memories 3.49e+0 (64%%)  "
                "Control 1.00e-1 (2%%)  Datapath 1.72e+0 (32%%)  "
                "Total 5.41 mW\n");
    std::printf("\n  VWR2A event counts (calibration audit):\n%s",
                energy::format_event_counts(rig.acc.meter()).c_str());
  }
  return 0;
}
