// Table 2: FFT kernel performance comparison for various sizes.
// Columns: CPU cycles, FFT ACCEL cycles (+speedup), VWR2A cycles (+speedup),
// complex- and real-valued, 512/1024/2048 points, next to the paper's rows.

#include "accel/fft_accel.hpp"
#include "bench/bench_util.hpp"

namespace vwr2a::bench {
namespace {

struct PaperRow {
  unsigned n;
  bool real;
  double cpu, accel, vwr2a;
};

const PaperRow kPaper[] = {
    {512, false, 47926, 7099, 7125},   {1024, false, 84753, 13629, 12405},
    {2048, false, 219667, 31299, 30217}, {512, true, 24927, 3523, 3666},
    {1024, true, 62326, 8007, 7133},   {2048, true, 113489, 16490, 14427},
};

Cycle cpu_fft_cycles(unsigned n, bool real, Rng& rng) {
  energy::EnergyMeter m;
  cpu::M4Meter m4(m);
  if (real) {
    std::vector<fx::q15_t> x(n);
    for (auto& v : x) v = fx::to_q15(rng.next_range(-0.4, 0.4));
    cpu::rfft_q15(m4, x);
  } else {
    std::vector<cpu::CplxQ15> x(n);
    for (auto& v : x) {
      v = {fx::to_q15(rng.next_range(-0.4, 0.4)),
           fx::to_q15(rng.next_range(-0.4, 0.4))};
    }
    cpu::cfft_q15(m4, x);
  }
  return m4.cycles();
}

Cycle accel_fft_cycles(unsigned n, bool real, Rng& rng) {
  energy::EnergyMeter m;
  accel::FftAccel fa(m);
  if (real) {
    std::vector<fx::q15_t> x(n);
    for (auto& v : x) v = fx::to_q15(rng.next_range(-0.4, 0.4));
    return fa.rfft(x).cycles;
  }
  std::vector<cpu::CplxQ15> x(n);
  for (auto& v : x) {
    v = {fx::to_q15(rng.next_range(-0.4, 0.4)),
         fx::to_q15(rng.next_range(-0.4, 0.4))};
  }
  return fa.cfft(x).cycles;
}

Cycle vwr2a_fft_cycles(unsigned n, bool real, Rng& rng) {
  Rig rig;
  kernels::FftKernels fft(rig.host);
  fft.prepare(0);
  const unsigned in = kernels::FftKernels::table_words();
  const unsigned out = in + 2 * n + 2;
  const unsigned scratch = out + 2 * n + 2;
  if (real) {
    for (unsigned i = 0; i < n; ++i) {
      rig.sram.poke(in + i, static_cast<Word>(fx::to_q16_15(rng.next_range(-0.4, 0.4))));
    }
    return fft.rfft(n, in, out, scratch).cycles;
  }
  place_complex_input(rig, n, in, rng);
  return fft.cfft(n, in, out, scratch).cycles;
}

} // namespace
} // namespace vwr2a::bench

int main() {
  using namespace vwr2a;
  using namespace vwr2a::bench;
  Rng rng(2);
  header("Table 2: FFT kernel performance (cycles)");
  std::printf("  %-16s | %10s | %10s %8s | %10s %8s\n", "kernel", "CPU",
              "FFT ACCEL", "speedup", "VWR2A", "speedup");
  for (const auto& p : kPaper) {
    const Cycle c = cpu_fft_cycles(p.n, p.real, rng);
    const Cycle a = accel_fft_cycles(p.n, p.real, rng);
    const Cycle v = vwr2a_fft_cycles(p.n, p.real, rng);
    std::printf("  %-8s %6u   | %10llu | %10llu %7.1fx | %10llu %7.1fx\n",
                p.real ? "real" : "complex", p.n,
                static_cast<unsigned long long>(c),
                static_cast<unsigned long long>(a),
                static_cast<double>(c) / static_cast<double>(a),
                static_cast<unsigned long long>(v),
                static_cast<double>(c) / static_cast<double>(v));
    std::printf("    paper          | %10.0f | %10.0f %7.1fx | %10.0f %7.1fx\n",
                p.cpu, p.accel, p.cpu / p.accel, p.vwr2a, p.cpu / p.vwr2a);
  }
  return 0;
}
