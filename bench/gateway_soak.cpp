// Gateway soak: the serving-path headline benchmark. 64 concurrent
// loopback clients (one connection + one stream each, bio and feature-
// pipeline tenants alternating) push fixed biosignal streams into a
// gateway over a 16-device mixed-architecture trace-cache fleet, then the
// identical workload is submitted directly through stream::StreamServer on
// an identical fleet. Gates (exit status):
//   * window outputs bit-identical between gateway and direct runs, per
//     stream, in per-stream window order;
//   * per-stream WINDOW_RESULT indices strictly ordered 0..n-1;
//   * every window delivered, nothing dropped or failed.
// Reported: client-observed end-to-end window latency percentiles (last
// sample pushed -> result callback, wall clock) and windows/s, appended to
// BENCH_runtime.json for the nightly perf-trajectory artifact.
//
// Flight recorder: set VWR2A_TRACE=<path.vwr2trc> to record the gateway
// run with obs tracing enabled and save the capture there (convert with
// `vwr2a_trace convert`). Tracing is switched off again before the direct
// run, so the bit-identical gate doubles as the observer-effect gate: the
// traced gateway run must produce the same outputs as the untraced direct
// run.
//
// Black box: set VWR2A_JOURNAL=<path.vwr2jrn> to record the gateway run's
// full inbound traffic (with v6 spans enabled -- the heavier recording
// posture) as a replayable journal; `vwr2a_replay verify <path>` then
// re-drives the whole 64-client soak against a fresh server and gates
// per-stream output identity against the journal trailer.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "gateway/client.hpp"
#include "gateway/server.hpp"
#include "obs/capture.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "stream/server.hpp"

int main() {
  using namespace vwr2a;
  using Clock = std::chrono::steady_clock;

  constexpr unsigned kClients = 64;
  constexpr unsigned kWindowsPerClient = 6;
  constexpr unsigned kChunk = 256;  // push granularity (samples)
  constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
  constexpr std::uint64_t kFnvPrime = 1099511628211ull;

  // Fixed per-tenant streams (even: whole-app bio; odd: feature pipeline).
  std::vector<std::vector<std::int32_t>> streams;
  for (unsigned i = 0; i < kClients; ++i) {
    dsp::RespirationParams p;
    p.breath_hz = 0.12 + 0.04 * (i % 12);
    Rng rng(8000 + i);
    streams.push_back(dsp::respiration_q16_15(
        kWindowsPerClient * app::kWindow, p, rng));
  }

  auto fleet_cfg = [] {
    stream::StreamServer::Config scfg;
    scfg.pool.devices = 16;
    scfg.pool.schedule = runtime::Schedule::kShortestLocalClock;
    const std::vector<soc::ArchConfig> mix = {
        soc::ArchConfig{.exec_mode = cgra::ExecMode::kTraceCache},
        soc::ArchConfig{.vwr_count = 2,
                        .exec_mode = cgra::ExecMode::kTraceCache},
        soc::ArchConfig{.vwr_count = 4,
                        .exec_mode = cgra::ExecMode::kTraceCache},
        soc::ArchConfig{.simd_width = 16,
                        .exec_mode = cgra::ExecMode::kTraceCache}};
    for (unsigned d = 0; d < 16; ++d) {
      scfg.pool.device_arch.push_back(mix[d % 4]);
    }
    return scfg;
  };

  bench::header("Gateway soak: 64 loopback clients, 16-device mixed fleet");

  const char* trace_path = std::getenv("VWR2A_TRACE");
  if (trace_path != nullptr) obs::set_tracing(true);
  const char* journal_path = std::getenv("VWR2A_JOURNAL");
  if (journal_path != nullptr) obs::set_spans(true);

  // --- gateway run ------------------------------------------------------------
  std::vector<std::uint64_t> gw_hash(kClients, kFnvOffset);
  std::vector<std::uint64_t> gw_windows(kClients, 0);
  std::atomic<bool> ordered{true};
  std::vector<double> latencies_ms;  // merged after the threads join
  std::vector<std::vector<double>> per_client_lat(kClients);
  double gw_wall_s = 0.0;
  double gw_windows_per_sim_s = 0.0;
  std::atomic<std::uint64_t> gw_failed{0}, gw_dropped{0};
  {
    gateway::Server::Config cfg;
    cfg.stream = fleet_cfg();
    cfg.stream.completion_threads = 4;
    if (journal_path != nullptr) cfg.journal_path = journal_path;
    gateway::Server server(cfg);

    const auto t0 = Clock::now();
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (unsigned i = 0; i < kClients; ++i) {
      threads.emplace_back([&, i] {
        gateway::Client client(server.connect_loopback());
        // Wall timestamps at which each window's final sample was pushed
        // (hop == window: window w completes at sample (w+1) * 512).
        std::vector<Clock::time_point> pushed(kWindowsPerClient);
        gateway::Client::StreamOpts opts;
        opts.tenant = i;
        if (i % 2 == 1) opts.kind = 1;  // pipeline
        const std::uint32_t sid = client.open(
            opts, [&, i](const gateway::WindowResult& r) {
              const auto now = Clock::now();
              if (r.index != gw_windows[i]) ordered = false;
              ++gw_windows[i];
              for (std::int32_t w : r.output) {
                gw_hash[i] =
                    (gw_hash[i] ^ static_cast<std::uint32_t>(w)) * kFnvPrime;
              }
              if (r.index < pushed.size()) {
                per_client_lat[i].push_back(
                    std::chrono::duration<double, std::milli>(
                        now - pushed[r.index])
                        .count());
              }
            });
        std::size_t sent = 0;
        while (sent < streams[i].size()) {
          const std::size_t take =
              std::min<std::size_t>(kChunk, streams[i].size() - sent);
          // Stamp every window boundary this chunk will cross BEFORE the
          // push: the result callback (client reader thread) may fire the
          // moment the bytes are queued, and the transport's internal
          // locks give the stamp a happens-before edge to that callback.
          for (std::size_t w = sent / app::kWindow + 1;
               w <= (sent + take) / app::kWindow; ++w) {
            if (w - 1 < pushed.size()) pushed[w - 1] = Clock::now();
          }
          client.push(sid, std::span<const std::int32_t>(streams[i])
                               .subspan(sent, take));
          sent += take;
        }
        client.flush(sid);
        const gateway::CloseOk co = client.close_stream(sid);
        gw_failed += co.windows_failed;
        gw_dropped += co.dropped_samples;
      });
    }
    for (auto& t : threads) t.join();
    gw_wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
    const stream::ServerStats st = server.streams().stats();
    gw_windows_per_sim_s = st.windows_per_sim_second();
    server.stop();
  }
  if (journal_path != nullptr) {
    // Spans off before the direct run (symmetry with tracing below): the
    // bit-identical gate must compare a spans-on gateway run against a
    // spans-off direct run -- the observer-effect check for the v6 path.
    obs::set_spans(false);
    std::printf("  journal: recorded to %s (replay with `vwr2a_replay "
                "verify`)\n", journal_path);
  }
  if (trace_path != nullptr) {
    // Off before the direct run: its (differently-numbered) sessions would
    // otherwise emit colliding window ids into the same rings.
    obs::set_tracing(false);
    const obs::Tracer::Snapshot snap = obs::Tracer::get().snapshot();
    std::string why;
    if (!obs::save_capture(snap, trace_path, &why)) {
      std::fprintf(stderr, "trace capture failed: %s\n", why.c_str());
      return 1;
    }
    const obs::Capture cap = obs::to_capture(snap);
    const auto chains = obs::analyze_windows(cap);
    std::size_t complete_chains = 0;
    for (const auto& c : chains) {
      if (c.complete() && c.distinct_tids >= 3) ++complete_chains;
    }
    std::printf("  trace: %zu events -> %s (%zu/%zu windows chained, "
                "%llu dropped)\n",
                cap.events.size(), trace_path, complete_chains, chains.size(),
                static_cast<unsigned long long>(cap.dropped));
  }
  for (auto& v : per_client_lat) {
    latencies_ms.insert(latencies_ms.end(), v.begin(), v.end());
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  auto pct = [&latencies_ms](double p) {
    if (latencies_ms.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(latencies_ms.size() - 1));
    return latencies_ms[idx];
  };

  // --- direct run (same fleet, no wire) ---------------------------------------
  std::vector<std::uint64_t> direct_hash(kClients, kFnvOffset);
  std::vector<std::uint64_t> direct_windows(kClients, 0);
  double direct_wall_s = 0.0;
  {
    stream::StreamServer server(fleet_cfg());
    const auto t0 = Clock::now();
    std::vector<stream::Session*> sessions;
    for (unsigned i = 0; i < kClients; ++i) {
      stream::SessionConfig scfg;
      if (i % 2 == 1) scfg.kind = stream::SessionKind::kPipeline;
      sessions.push_back(&server.open_session(
          scfg, [&direct_hash, &direct_windows, i](
                    const stream::WindowResult& r) {
            ++direct_windows[i];
            for (std::int32_t w : r.job.output) {
              direct_hash[i] =
                  (direct_hash[i] ^ static_cast<std::uint32_t>(w)) * kFnvPrime;
            }
          }));
    }
    for (std::size_t off = 0;; off += kChunk) {
      bool any = false;
      for (unsigned i = 0; i < kClients; ++i) {
        if (off >= streams[i].size()) continue;
        const std::size_t take =
            std::min<std::size_t>(kChunk, streams[i].size() - off);
        sessions[i]->push(
            std::span<const std::int32_t>(streams[i]).subspan(off, take));
        any = true;
      }
      if (!any) break;
    }
    server.finish();
    direct_wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  }

  // --- report & gates ---------------------------------------------------------
  const std::uint64_t total_windows =
      std::uint64_t{kClients} * kWindowsPerClient;
  std::uint64_t gw_total = 0, direct_total = 0;
  for (unsigned i = 0; i < kClients; ++i) {
    gw_total += gw_windows[i];
    direct_total += direct_windows[i];
  }
  const bool identical = gw_hash == direct_hash;
  const bool complete = gw_total == total_windows &&
                        direct_total == total_windows && gw_failed == 0 &&
                        gw_dropped == 0;

  std::printf("  %-22s | %10s %12s %10s\n", "path", "windows", "wall s",
              "win/s");
  std::printf("  %-22s | %10llu %12.2f %10.0f\n", "gateway (64 clients)",
              static_cast<unsigned long long>(gw_total), gw_wall_s,
              gw_wall_s > 0 ? static_cast<double>(gw_total) / gw_wall_s : 0.0);
  std::printf("  %-22s | %10llu %12.2f %10.0f\n", "direct StreamServer",
              static_cast<unsigned long long>(direct_total), direct_wall_s,
              direct_wall_s > 0
                  ? static_cast<double>(direct_total) / direct_wall_s
                  : 0.0);
  std::printf("\n  e2e window latency (wall): p50 %.1f ms, p95 %.1f ms, "
              "p99 %.1f ms\n",
              pct(0.50), pct(0.95), pct(0.99));
  std::printf("  outputs: %s; delivery: %s; ordering: %s\n",
              identical ? "bit-identical to direct" : "MISMATCH",
              complete ? "complete, no drops/failures" : "INCOMPLETE",
              ordered.load() ? "per-stream ordered" : "OUT OF ORDER");

  bench::JsonRecord("gateway_soak")
      .field("config", std::string("loopback_64c_16d_trace"))
      .field("clients", std::uint64_t{kClients})
      .field("windows", gw_total)
      .field("wall_seconds", gw_wall_s)
      .field("windows_per_wall_second",
             gw_wall_s > 0 ? static_cast<double>(gw_total) / gw_wall_s : 0.0)
      .field("windows_per_sim_second", gw_windows_per_sim_s)
      .field("latency_p50_ms", pct(0.50))
      .field("latency_p95_ms", pct(0.95))
      .field("latency_p99_ms", pct(0.99))
      .field("bit_identical", identical)
      .write();
  bench::JsonRecord("gateway_soak")
      .field("config", std::string("direct_16d_trace"))
      .field("windows", direct_total)
      .field("wall_seconds", direct_wall_s)
      .field("windows_per_wall_second",
             direct_wall_s > 0
                 ? static_cast<double>(direct_total) / direct_wall_s
                 : 0.0)
      .write();

  return identical && complete && ordered.load() ? 0 : 1;
}
