// In-text comparison (Sec 5.1.1): VWR2A vs the Ultra-Low Power Samsung
// Reconfigurable Processor (ULP-SRP, an ADRES instantiation in the same
// TSMC 40nm LP node) on a 256-point complex FFT. The paper reports ULP-SRP
// at 839.1 us / 19.9 uJ and VWR2A at 35.6 us / 0.3 uJ (23x / 66x).

#include "bench/bench_util.hpp"

int main() {
  using namespace vwr2a;
  using namespace vwr2a::bench;
  Rng rng(8);
  Rig rig;
  kernels::FftKernels fft(rig.host);
  fft.prepare(0);
  const unsigned n = 256;
  const unsigned in = kernels::FftKernels::table_words();
  const unsigned out = in + 2 * n + 2;
  place_complex_input(rig, n, in, rng);
  const auto stats = fft.cfft(n, in, out, out + 2 * n + 2);
  const double t_us = us(stats.cycles);
  const double e_uj = rig.acc.meter().total_uj();

  header("ULP-SRP comparison: 256-point complex FFT");
  row("ULP-SRP time (reported)", 839.1, 839.1, "us");
  row("VWR2A time", 35.6, t_us, "us");
  row("VWR2A energy", 0.3, e_uj, "uJ");
  row("speedup vs ULP-SRP", 23.0, 839.1 / t_us, "x");
  row("energy gain vs ULP-SRP", 66.0, 19.9 / e_uj, "x");
  return 0;
}
