// Table 5: biosignal application performance and energy comparison --
// per-step cycles and energy for CPU, CPU + FFT ACCEL, and CPU + VWR2A,
// with savings relative to the CPU column.

#include "bench/bench_util.hpp"

namespace {

void print_step(const char* name, double paper_cpu, double paper_accel_sav,
                double paper_vwr_sav, vwr2a::app::StepCost cpu,
                vwr2a::app::StepCost accel, vwr2a::app::StepCost vwr,
                bool energy) {
  auto val = [energy](const vwr2a::app::StepCost& s) {
    return energy ? s.uj : static_cast<double>(s.cycles);
  };
  const double c = val(cpu), a = val(accel), v = val(vwr);
  std::printf("  %-16s | %10.2f | %10.2f %6.1f%% | %10.2f %6.1f%%\n", name, c,
              a, 100.0 * (1.0 - a / c), v, 100.0 * (1.0 - v / c));
  std::printf("    paper          | %10.2f | %10s %6.1f%% | %10s %6.1f%%\n",
              paper_cpu, "", paper_accel_sav, "", paper_vwr_sav);
}

} // namespace

int main() {
  using namespace vwr2a;
  using namespace vwr2a::bench;
  Rng rng(6);
  dsp::RespirationParams params;
  const auto x = dsp::respiration(app::kWindow, params, rng);

  soc::Platform p_cpu, p_accel, p_vwr;
  app::MBioTracker a_cpu(p_cpu), a_accel(p_accel), a_vwr(p_vwr);
  a_cpu.init();
  a_accel.init();
  a_vwr.init();
  const auto r_cpu = a_cpu.run(app::Target::kCpu, x);
  const auto r_accel = a_accel.run(app::Target::kCpuFftAccel, x);
  const auto r_vwr = a_vwr.run(app::Target::kCpuVwr2a, x);

  header("Table 5: biosignal application, cycles");
  std::printf("  %-16s | %10s | %10s %7s | %10s %7s\n", "step", "CPU",
              "CPU+ACCEL", "savings", "CPU+VWR2A", "savings");
  print_step("Preprocessing", 49760, 0.0, 92.4, r_cpu.preprocessing,
             r_accel.preprocessing, r_vwr.preprocessing, false);
  print_step("Delineation", 46268, 0.0, 94.1, r_cpu.delineation,
             r_accel.delineation, r_vwr.delineation, false);
  print_step("Feat. extraction", 70639, 23.2, 87.8, r_cpu.features,
             r_accel.features, r_vwr.features, false);
  print_step("Total", 166667, 9.8, 90.9, r_cpu.total, r_accel.total,
             r_vwr.total, false);

  header("Table 5: biosignal application, energy (uJ)");
  print_step("Preprocessing", 0.74, 0.0, 64.7, r_cpu.preprocessing,
             r_accel.preprocessing, r_vwr.preprocessing, true);
  print_step("Delineation", 0.74, 0.0, 82.9, r_cpu.delineation,
             r_accel.delineation, r_vwr.delineation, true);
  print_step("Feat. extraction", 1.1, 9.3, 56.0, r_cpu.features,
             r_accel.features, r_vwr.features, true);
  print_step("Total", 2.6, 3.9, 66.3, r_cpu.total, r_accel.total, r_vwr.total,
             true);

  std::printf("\n  class: cpu=%+d accel=%+d vwr2a=%+d (must agree); extrema "
              "cpu=%u vwr2a=%u\n",
              r_cpu.svm_class, r_accel.svm_class, r_vwr.svm_class,
              r_cpu.extrema, r_vwr.extrema);
  return 0;
}
