// Observability overhead gate: the flight recorder must be free when off
// and must never steer the simulation when on. A fixed streaming workload
// (8 gateway streams x 10 windows on a 4-device mixed trace-cache fleet,
// driven through gateway::Server over loopback so the full wire path --
// codec, journal tap, v6 span stamps -- is inside the measurement) runs in
// interleaved modes [off, on, off, on]. "on" enables everything at once:
// metrics, tracing, spans AND the black-box traffic journal.
//   * HARD gate -- observer effect: per-stream output hashes, fleet
//     makespan, total device cycles and total energy are exactly equal
//     across every mode. Metrics, tracing, spans and the journal read the
//     simulation; they never steer it.
//   * SOFT gate -- disabled-mode cost: the best disabled wall time is
//     within 2% of the best overall wall time (the disabled hot path is
//     one relaxed atomic load per site plus one null-pointer check at the
//     journal tap, which must be unmeasurable). Wall clocks are noisy in
//     CI, so a miss warns and is recorded but only a gross regression
//     (> 25%) fails the run.
// Both figures land in BENCH_runtime.json for the nightly trajectory.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <span>
#include <vector>

#include "bench/bench_util.hpp"
#include "gateway/client.hpp"
#include "gateway/server.hpp"
#include "stream/server.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

int main() {
  using namespace vwr2a;
  using Clock = std::chrono::steady_clock;

  constexpr unsigned kStreams = 8;
  constexpr unsigned kWindowsPerStream = 10;
  constexpr unsigned kChunk = 256;
  const char* kJournalPath = "obs_overhead.vwr2jrn";

  std::vector<std::vector<std::int32_t>> streams;
  for (unsigned i = 0; i < kStreams; ++i) {
    dsp::RespirationParams p;
    p.breath_hz = 0.16 + 0.05 * (i % 6);
    Rng rng(6100 + i);
    streams.push_back(dsp::respiration_q16_15(
        kWindowsPerStream * app::kWindow, p, rng));
  }

  struct Run {
    std::vector<std::uint64_t> output_hash;
    std::uint64_t makespan = 0;
    std::uint64_t total_cycles = 0;
    double total_pj = 0.0;
    double wall_ms = 0.0;
  };
  auto soak = [&streams, kJournalPath](bool journal) {
    gateway::Server::Config cfg;
    cfg.stream.pool.devices = 4;
    cfg.stream.pool.schedule = runtime::Schedule::kShortestLocalClock;
    const std::vector<soc::ArchConfig> mix = {
        soc::ArchConfig{.exec_mode = cgra::ExecMode::kTraceCache},
        soc::ArchConfig{.vwr_count = 2,
                        .exec_mode = cgra::ExecMode::kTraceCache},
        soc::ArchConfig{.vwr_count = 4,
                        .exec_mode = cgra::ExecMode::kTraceCache},
        soc::ArchConfig{.simd_width = 16,
                        .exec_mode = cgra::ExecMode::kTraceCache}};
    for (unsigned d = 0; d < 4; ++d) {
      cfg.stream.pool.device_arch.push_back(mix[d]);
    }
    if (journal) cfg.journal_path = kJournalPath;
    gateway::Server server(cfg);
    gateway::Client client(server.connect_loopback());

    std::vector<std::uint64_t> hashes(streams.size(), 1469598103934665603ull);
    std::vector<std::uint32_t> sids;
    for (unsigned i = 0; i < streams.size(); ++i) {
      gateway::Client::StreamOpts opts;
      opts.tenant = i;
      if (i % 2 == 1) opts.kind = 1;
      sids.push_back(client.open(
          opts, [&hashes, i](const gateway::WindowResult& wr) {
            std::uint64_t& h = hashes[i];
            for (std::int32_t w : wr.output) {
              h = (h ^ static_cast<std::uint32_t>(w)) * 1099511628211ull;
            }
          }));
    }

    const auto t0 = Clock::now();
    for (std::size_t off = 0;; off += kChunk) {
      bool any = false;
      for (std::size_t i = 0; i < streams.size(); ++i) {
        if (off >= streams[i].size()) continue;
        const std::size_t take =
            std::min<std::size_t>(kChunk, streams[i].size() - off);
        client.push(sids[i], std::span<const std::int32_t>(streams[i])
                                 .subspan(off, take));
        any = true;
      }
      if (!any) break;
    }
    for (std::uint32_t sid : sids) client.flush(sid);
    Run r;
    r.wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    // CLOSE_OK rides the same FIFO as WINDOW_RESULT, so once every close
    // returns, every result callback has fired and the hashes are final.
    for (std::uint32_t sid : sids) client.close_stream(sid);
    // The wire STATS frame is a live *peek* (batch-boundary freshness);
    // the identity gate needs the exact quiescent picture, so read the
    // fleet totals in-process, which blocks until the pool is idle.
    const stream::ServerStats st = server.streams().stats();
    r.makespan = st.fleet.fleet_makespan;
    r.total_cycles = st.fleet.total_device_cycles;
    r.total_pj = st.fleet.total_pj;
    r.output_hash = std::move(hashes);
    server.stop();
    return r;
  };

  bench::header(
      "Observability overhead: 8 streams x 10 windows via gateway, "
      "modes off/on/off/on (on = metrics+tracing+spans+journal)");
  std::printf("  %-10s | %13s %13s %11s | %8s\n", "mode", "makespan cyc",
              "total cyc", "energy uJ", "wall ms");

  // Interleaved so CPU frequency drift hits both modes equally. Session
  // ids restart per run, so identical runs would emit colliding window
  // ids; reset the recorder between runs to keep each capture clean.
  const bool enabled_mode[4] = {false, true, false, true};
  Run runs[4];
  for (int m = 0; m < 4; ++m) {
    obs::Registry::get().reset();
    obs::Tracer::get().reset();
    obs::set_metrics(enabled_mode[m]);
    obs::set_tracing(enabled_mode[m]);
    obs::set_spans(enabled_mode[m]);
    runs[m] = soak(enabled_mode[m]);
    std::printf("  %-10s | %13llu %13llu %11.1f | %8.2f\n",
                enabled_mode[m] ? "on" : "off",
                static_cast<unsigned long long>(runs[m].makespan),
                static_cast<unsigned long long>(runs[m].total_cycles),
                runs[m].total_pj * 1e-6, runs[m].wall_ms);
  }
  obs::set_metrics(false);
  obs::set_tracing(false);
  obs::set_spans(false);

  // HARD: bit/cycle/energy identity across every mode.
  bool identical = true;
  for (int m = 1; m < 4; ++m) {
    identical = identical && runs[m].output_hash == runs[0].output_hash &&
                runs[m].makespan == runs[0].makespan &&
                runs[m].total_cycles == runs[0].total_cycles &&
                runs[m].total_pj == runs[0].total_pj;
  }

  // SOFT: disabled must not be slower than the best run by > 2%.
  const double best_off = std::min(runs[0].wall_ms, runs[2].wall_ms);
  const double best_any = std::min(
      {runs[0].wall_ms, runs[1].wall_ms, runs[2].wall_ms, runs[3].wall_ms});
  const double overhead = best_any > 0 ? best_off / best_any - 1.0 : 0.0;
  const bool within_budget = overhead <= 0.02;

  std::printf("\n  observer effect: %s (outputs/makespan/cycles/energy)\n",
              identical ? "none -- all modes identical" : "DETECTED");
  std::printf("  disabled-mode overhead: %.2f%% vs best run (budget 2%%)%s\n",
              overhead * 100.0, within_budget ? "" : "  ** over budget **");

  bench::JsonRecord("obs_overhead")
      .field("config", std::string("gateway_8s_4d_trace_journal"))
      .field("modes", std::uint64_t{4})
      .field("identical_across_modes", identical)
      .field("disabled_overhead_pct", overhead * 100.0)
      .field("best_disabled_wall_ms", best_off)
      .field("best_enabled_wall_ms", std::min(runs[1].wall_ms, runs[3].wall_ms))
      .write();

  return identical && overhead <= 0.25 ? 0 : 1;
}
