// Gateway chaos soak: the fault-tolerance headline benchmark. 32 loopback
// clients push fixed biosignal streams into a gateway over a 16-device
// mixed-architecture trace-cache fleet while a scripted FaultPlan fail-stops
// two devices mid-soak and revives one of them (kills land at job-count
// boundaries; queued work is re-placed along failover chains, resident
// per-device state travels by checkpoint). The identical workload then runs
// on an identical fleet with no faults. Gates (exit status):
//   * devices_failed == 2 and devices_revived == 1 actually happened;
//   * per-stream WINDOW_RESULT indices strictly ordered 0..n-1 -- one miss
//     is a lost, duplicated, or misordered window;
//   * every window delivered, nothing dropped or failed;
//   * window outputs bit-identical to the fault-free run, per stream --
//     re-placed windows included (outputs are placement-independent).
// Reported: chaos-run throughput, the fleet's rescue counters, and the
// chaos run's client-observed end-to-end window latency percentiles (last
// sample pushed -> result callback), recorded through the obs metrics
// registry's log-bucketed histogram -- the same instrument the serving
// stack exports -- and appended to BENCH_runtime.json for the nightly
// perf-trajectory artifact.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "gateway/client.hpp"
#include "gateway/server.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "stream/server.hpp"

int main() {
  using namespace vwr2a;
  using Clock = std::chrono::steady_clock;

  constexpr unsigned kClients = 32;
  constexpr unsigned kWindowsPerClient = 6;
  constexpr unsigned kChunk = 256;  // push granularity (samples)
  constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
  constexpr std::uint64_t kFnvPrime = 1099511628211ull;
  const unsigned kVictimA = 3;  // killed, later revived
  const unsigned kVictimB = 7;  // killed, stays dead

  // Fixed per-tenant streams (even: whole-app bio; odd: feature pipeline).
  std::vector<std::vector<std::int32_t>> streams;
  for (unsigned i = 0; i < kClients; ++i) {
    dsp::RespirationParams p;
    p.breath_hz = 0.12 + 0.04 * (i % 12);
    Rng rng(8600 + i);
    streams.push_back(dsp::respiration_q16_15(
        kWindowsPerClient * app::kWindow, p, rng));
  }

  auto fleet_cfg = [&](bool chaos) {
    stream::StreamServer::Config scfg;
    scfg.pool.devices = 16;
    scfg.pool.schedule = runtime::Schedule::kShortestLocalClock;
    const std::vector<soc::ArchConfig> mix = {
        soc::ArchConfig{.exec_mode = cgra::ExecMode::kTraceCache},
        soc::ArchConfig{.vwr_count = 2,
                        .exec_mode = cgra::ExecMode::kTraceCache},
        soc::ArchConfig{.vwr_count = 4,
                        .exec_mode = cgra::ExecMode::kTraceCache},
        soc::ArchConfig{.simd_width = 16,
                        .exec_mode = cgra::ExecMode::kTraceCache}};
    for (unsigned d = 0; d < 16; ++d) {
      scfg.pool.device_arch.push_back(mix[d % 4]);
    }
    if (chaos) {
      // Roughly a quarter of the soak in, device 3 dies; at the halfway
      // mark device 7 follows; device 3 comes back at ~5/8. Boundaries
      // are fleet job counts, so the kills always land mid-workload.
      const std::uint64_t total =
          std::uint64_t{kClients} * kWindowsPerClient;
      scfg.pool.faults.events = {
          runtime::FaultEvent{kVictimA, total / 4, (total * 5) / 8},
          runtime::FaultEvent{kVictimB, total / 2, 0}};
    }
    return scfg;
  };

  bench::header(
      "Gateway chaos soak: 32 clients, 16 devices, kill 2 / revive 1");

  auto run_gateway = [&](bool chaos, std::vector<std::uint64_t>& hash,
                         std::vector<std::uint64_t>& windows,
                         std::atomic<bool>& ordered,
                         std::atomic<std::uint64_t>& failed,
                         std::atomic<std::uint64_t>& dropped,
                         runtime::FleetStats& fleet,
                         obs::Histogram* latency_us) -> double {
    gateway::Server::Config cfg;
    cfg.stream = fleet_cfg(chaos);
    cfg.stream.completion_threads = 4;
    gateway::Server server(cfg);

    const auto t0 = Clock::now();
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (unsigned i = 0; i < kClients; ++i) {
      threads.emplace_back([&, i] {
        gateway::Client client(server.connect_loopback());
        // Wall stamp of each window's final pushed sample (hop == window).
        std::vector<Clock::time_point> pushed(kWindowsPerClient);
        gateway::Client::StreamOpts opts;
        opts.tenant = i;
        if (i % 2 == 1) opts.kind = 1;  // pipeline
        const std::uint32_t sid = client.open(
            opts, [&, i](const gateway::WindowResult& r) {
              const auto now = Clock::now();
              if (r.index != windows[i]) ordered = false;
              ++windows[i];
              for (std::int32_t w : r.output) {
                hash[i] =
                    (hash[i] ^ static_cast<std::uint32_t>(w)) * kFnvPrime;
              }
              if (latency_us != nullptr && r.index < pushed.size()) {
                latency_us->record(static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::microseconds>(
                        now - pushed[r.index])
                        .count()));
              }
            });
        std::size_t sent = 0;
        while (sent < streams[i].size()) {
          const std::size_t take =
              std::min<std::size_t>(kChunk, streams[i].size() - sent);
          // Stamped BEFORE the push: the result callback may fire as soon
          // as the bytes are queued (see gateway_soak for the ordering
          // argument).
          for (std::size_t w = sent / app::kWindow + 1;
               w <= (sent + take) / app::kWindow; ++w) {
            if (w - 1 < pushed.size()) pushed[w - 1] = Clock::now();
          }
          client.push(sid, std::span<const std::int32_t>(streams[i])
                               .subspan(sent, take));
          sent += take;
        }
        client.flush(sid);
        const gateway::CloseOk co = client.close_stream(sid);
        failed += co.windows_failed;
        dropped += co.dropped_samples;
      });
    }
    for (auto& t : threads) t.join();
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    fleet = server.streams().pool().stats();
    server.stop();
    return wall_s;
  };

  // --- chaos run --------------------------------------------------------------
  // E2e latency under faults goes through the obs registry histogram (the
  // instrument the serving stack itself exports), so the percentiles here
  // and a live Prometheus dump can never disagree on bucketing.
  obs::set_metrics(true);
  obs::Histogram& lat_us =
      obs::Registry::get().histogram("bench.chaos_e2e_us");
  std::vector<std::uint64_t> chaos_hash(kClients, kFnvOffset);
  std::vector<std::uint64_t> chaos_windows(kClients, 0);
  std::atomic<bool> chaos_ordered{true};
  std::atomic<std::uint64_t> chaos_failed{0}, chaos_dropped{0};
  runtime::FleetStats chaos_fleet;
  const double chaos_wall_s =
      run_gateway(true, chaos_hash, chaos_windows, chaos_ordered,
                  chaos_failed, chaos_dropped, chaos_fleet, &lat_us);

  // --- fault-free reference (identical fleet, identical workload) -------------
  std::vector<std::uint64_t> ref_hash(kClients, kFnvOffset);
  std::vector<std::uint64_t> ref_windows(kClients, 0);
  std::atomic<bool> ref_ordered{true};
  std::atomic<std::uint64_t> ref_failed{0}, ref_dropped{0};
  runtime::FleetStats ref_fleet;
  const double ref_wall_s =
      run_gateway(false, ref_hash, ref_windows, ref_ordered, ref_failed,
                  ref_dropped, ref_fleet, nullptr);
  obs::set_metrics(false);

  const double lat_p50_ms = static_cast<double>(lat_us.quantile(0.50)) / 1e3;
  const double lat_p95_ms = static_cast<double>(lat_us.quantile(0.95)) / 1e3;
  const double lat_p99_ms = static_cast<double>(lat_us.quantile(0.99)) / 1e3;

  // --- report & gates ---------------------------------------------------------
  const std::uint64_t total_windows =
      std::uint64_t{kClients} * kWindowsPerClient;
  std::uint64_t chaos_total = 0, ref_total = 0;
  for (unsigned i = 0; i < kClients; ++i) {
    chaos_total += chaos_windows[i];
    ref_total += ref_windows[i];
  }
  const bool faults_fired =
      chaos_fleet.devices_failed == 2 && chaos_fleet.devices_revived == 1 &&
      chaos_fleet.devices_dead == 1;
  const bool identical = chaos_hash == ref_hash;
  const bool complete = chaos_total == total_windows &&
                        ref_total == total_windows && chaos_failed == 0 &&
                        chaos_dropped == 0 && ref_failed == 0 &&
                        ref_dropped == 0;
  const bool ordered = chaos_ordered.load() && ref_ordered.load();

  std::printf("  %-22s | %10s %12s %10s\n", "path", "windows", "wall s",
              "win/s");
  std::printf("  %-22s | %10llu %12.2f %10.0f\n", "chaos (2 kills)",
              static_cast<unsigned long long>(chaos_total), chaos_wall_s,
              chaos_wall_s > 0
                  ? static_cast<double>(chaos_total) / chaos_wall_s
                  : 0.0);
  std::printf("  %-22s | %10llu %12.2f %10.0f\n", "fault-free reference",
              static_cast<unsigned long long>(ref_total), ref_wall_s,
              ref_wall_s > 0 ? static_cast<double>(ref_total) / ref_wall_s
                             : 0.0);
  std::printf("\n  faults: %llu killed, %llu revived, %llu dead at end; "
              "%llu jobs rescued, %llu ckpt taken, %llu restored\n",
              static_cast<unsigned long long>(chaos_fleet.devices_failed),
              static_cast<unsigned long long>(chaos_fleet.devices_revived),
              static_cast<unsigned long long>(chaos_fleet.devices_dead),
              static_cast<unsigned long long>(chaos_fleet.jobs_rescued),
              static_cast<unsigned long long>(chaos_fleet.checkpoints_taken),
              static_cast<unsigned long long>(
                  chaos_fleet.checkpoints_restored));
  std::printf("\n  chaos e2e window latency (wall): p50 %.1f ms, "
              "p95 %.1f ms, p99 %.1f ms (%llu windows)\n",
              lat_p50_ms, lat_p95_ms, lat_p99_ms,
              static_cast<unsigned long long>(lat_us.count()));
  std::printf("  outputs: %s; delivery: %s; ordering: %s; plan: %s\n",
              identical ? "bit-identical to fault-free" : "MISMATCH",
              complete ? "complete, no drops/failures" : "INCOMPLETE",
              ordered ? "per-stream ordered" : "OUT OF ORDER",
              faults_fired ? "2 kills + 1 revive fired" : "FAULTS DID NOT FIRE");

  bench::JsonRecord("gateway_chaos")
      .field("config", std::string("loopback_32c_16d_kill2_revive1"))
      .field("clients", std::uint64_t{kClients})
      .field("windows", chaos_total)
      .field("wall_seconds", chaos_wall_s)
      .field("windows_per_wall_second",
             chaos_wall_s > 0
                 ? static_cast<double>(chaos_total) / chaos_wall_s
                 : 0.0)
      .field("devices_failed", chaos_fleet.devices_failed)
      .field("devices_revived", chaos_fleet.devices_revived)
      .field("jobs_rescued", chaos_fleet.jobs_rescued)
      .field("checkpoints_taken", chaos_fleet.checkpoints_taken)
      .field("checkpoints_restored", chaos_fleet.checkpoints_restored)
      .field("latency_p50_ms", lat_p50_ms)
      .field("latency_p95_ms", lat_p95_ms)
      .field("latency_p99_ms", lat_p99_ms)
      .field("bit_identical", identical)
      .write();

  return identical && complete && ordered && faults_fired ? 0 : 1;
}
