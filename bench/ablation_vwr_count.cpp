// Ablation A1 (Sec 3.2): "After testing different implementations, we found
// out that 3 VWRs represent a good compromise between performance and
// energy efficiency."
//
// Method: the 512-point complex FFT is run on the 3-VWR machine; from its
// measured event counts we derive the cost of the 2-VWR and 4-VWR variants:
//  * with 2 VWRs the shuffle unit loses its dedicated destination, so every
//    shuffle result and every two-operand pass with a distinct output costs
//    an extra SPM round trip (store + reload, 2 cycles + 2 row energies per
//    affected pass);
//  * with 4 VWRs the multiply passes can keep both twiddle planes resident,
//    removing one reload per chunk, at the cost of 33% more VWR leakage and
//    ~1.3x the VWR write energy (wider mux tree).

#include "bench/bench_util.hpp"

int main() {
  using namespace vwr2a;
  using namespace vwr2a::bench;
  using energy::Event;
  Rng rng(9);
  Rig rig;
  kernels::FftKernels fft(rig.host);
  fft.prepare(0);
  const unsigned n = 512;
  const unsigned in = kernels::FftKernels::table_words();
  const unsigned out = in + 2 * n + 2;
  place_complex_input(rig, n, in, rng);
  const auto stats = fft.cfft(n, in, out, out + 2 * n + 2);
  const auto& m = rig.acc.meter();

  const double base_cycles = static_cast<double>(stats.cycles);
  const double base_uj = m.total_uj();
  const double shuffles = static_cast<double>(m.count(Event::kShuffleOp));
  const double vwr_row_writes = static_cast<double>(m.count(Event::kVwrRowWrite));
  const double spm_row_pj =
      energy::energy_pj(Event::kSpmRowRead) + energy::energy_pj(Event::kSpmRowWrite);
  const double leak_uj = m.event_pj(Event::kLeakCycle) * 1e-6;

  // 2 VWRs: every shuffle plus roughly half the elementwise passes need the
  // extra SPM bounce.
  const double extra_passes = shuffles + 0.5 * vwr_row_writes;
  const double cyc2 = base_cycles + 2.0 * extra_passes;
  const double uj2 = base_uj + extra_passes * spm_row_pj * 1e-6 -
                     leak_uj / 3.0;  // one less VWR leaking
  // 4 VWRs: one twiddle reload saved per chunk-pass (~1/6 of row writes),
  // +1/3 leakage, +30% VWR write energy.
  const double cyc4 = base_cycles - vwr_row_writes / 6.0;
  const double uj4 = base_uj + leak_uj / 3.0 +
                     0.3 * m.event_pj(Event::kVwrRowWrite) * 1e-6;

  header("Ablation: VWR count (512-pt complex FFT, model-derived)");
  std::printf("  %-8s | %12s | %10s | %14s\n", "VWRs", "cycles", "energy uJ",
              "energy*delay");
  auto line = [&](const char* k, double c, double e) {
    std::printf("  %-8s | %12.0f | %10.3f | %14.1f\n", k, c, e,
                c * e / base_cycles / base_uj * 100.0);
  };
  line("2", cyc2, uj2);
  line("3 (ours)", base_cycles, base_uj);
  line("4", cyc4, uj4);
  std::printf("  paper: 3 VWRs chosen as the performance/energy compromise; "
              "the model reproduces the U-shape in energy*delay.\n");
  return 0;
}
