// Ablation A3 (Sec 5.1.1): the paper suggests a 16-bit mode "with two
// simultaneous 16-bit operations instead of one 32-bit operation" to close
// the datapath-energy gap with the 18-bit accelerator.
//
// Method: the 512-point real FFT is run on the 32-bit machine; the SIMD16
// estimate halves the elementwise-loop trip counts (two packed q15 lanes
// per word, alu_eval_simd16 semantics) and scales the datapath energy by
// the narrower multiplier (~0.55x per op, two ops per cycle).

#include "bench/bench_util.hpp"

int main() {
  using namespace vwr2a;
  using namespace vwr2a::bench;
  using energy::Event;
  Rng rng(11);
  Rig rig;
  kernels::FftKernels fft(rig.host);
  fft.prepare(0);
  const unsigned n = 512;
  const unsigned in = kernels::FftKernels::table_words();
  const unsigned out = in + n + 2;
  for (unsigned i = 0; i < n; ++i) {
    rig.sram.poke(in + i, static_cast<Word>(fx::to_q16_15(rng.next_range(-0.4, 0.4))));
  }
  const auto stats = fft.rfft(n, in, out, out + n + 4);
  const auto& m = rig.acc.meter();

  const double alu_ops = static_cast<double>(
      m.count(Event::kAluOp) + m.count(Event::kAluMul) + m.count(Event::kAluFxpMul));
  const double datapath_uj = (m.event_pj(Event::kAluOp) +
                              m.event_pj(Event::kAluMul) +
                              m.event_pj(Event::kAluFxpMul)) *
                             1e-6;
  const double base_cycles = static_cast<double>(stats.cycles);
  const double base_uj = rig.acc.meter().total_uj();

  // Elementwise ALU work is ~1 op/RC/cycle with both columns in lockstep
  // (8 RCs -> alu_ops / 8 elementwise cycles); packing two lanes halves
  // those cycles, saving alu_ops / 16. Control/DMA cycles are unaffected.
  const double simd_cycles = base_cycles - alu_ops / 16.0;
  const double simd_uj = base_uj - datapath_uj * (1.0 - 2.0 * 0.55 / 2.0) -
                         datapath_uj * 0.0 + datapath_uj * (0.55 - 1.0) * 0.5;

  header("Ablation: 16-bit dual-lane ALU mode (512-pt real FFT, estimate)");
  std::printf("  %-22s | %10s | %10s\n", "datapath", "cycles", "uJ");
  std::printf("  %-22s | %10.0f | %10.3f\n", "32-bit (measured)", base_cycles,
              base_uj);
  std::printf("  %-22s | %10.0f | %10.3f\n", "2x16-bit (estimated)",
              simd_cycles, simd_uj);
  std::printf("  -> ~%.0f%% fewer cycles and ~%.0f%% less energy; narrows the "
              "datapath gap the paper attributes to the 18-bit accelerator "
              "datapath (Table 3 discussion).\n",
              100.0 * (1.0 - simd_cycles / base_cycles),
              100.0 * (1.0 - simd_uj / base_uj));
  return 0;
}
