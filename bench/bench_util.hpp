#pragma once
// Shared rig and formatting for the experiment-reproduction benches. Every
// bench binary regenerates one table or figure of the paper and prints the
// measured values next to the paper's, with the ratio, so EXPERIMENTS.md
// can be audited from the bench output alone.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "app/mbiotracker.hpp"
#include "bus/ahb.hpp"
#include "cgra/vwr2a.hpp"
#include "common/fixed_point.hpp"
#include "common/rng.hpp"
#include "cpu/kernels_q15.hpp"
#include "dsp/reference.hpp"
#include "dsp/signal.hpp"
#include "energy/meter.hpp"
#include "kernels/fft.hpp"
#include "kernels/fir.hpp"
#include "kernels/host.hpp"
#include "mem/sram.hpp"
#include "soc/platform.hpp"

namespace vwr2a::bench {

/// A standalone VWR2A rig (block + bus + system SRAM), as used for the
/// kernel-level experiments.
struct Rig {
  energy::EnergyMeter sys_meter;
  mem::SystemSram sram{sys_meter};
  bus::AhbBus ahb{sram, sys_meter};
  cgra::Vwr2a acc{ahb};
  kernels::Host host{acc, sram, nullptr};
};

inline void header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// One row of a paper-vs-measured comparison.
inline void row(const char* label, double paper, double measured,
                const char* unit) {
  std::printf("  %-28s paper %10.1f %-6s measured %10.1f %-6s ratio %5.2f\n",
              label, paper, unit, measured, unit,
              paper > 0 ? measured / paper : 0.0);
}

/// Random 16.15 complex input placed interleaved at `base`.
inline void place_complex_input(Rig& rig, unsigned n, unsigned base, Rng& rng) {
  for (unsigned i = 0; i < 2 * n; ++i) {
    rig.sram.poke(base + i, static_cast<Word>(
                                fx::to_q16_15(rng.next_range(-0.4, 0.4))));
  }
}

/// Microseconds at the 80 MHz architectural clock.
inline double us(Cycle cycles) {
  return static_cast<double>(cycles) / arch::kClockHz * 1e6;
}

// --- machine-readable perf records (BENCH_runtime.json) ----------------------
// Each runtime bench appends one JSON object per measured configuration, so
// nightly CI can upload the file as an artifact and the perf trajectory
// (host wall-clock, simulated cycles per host second, makespan) is tracked
// run over run. The file is a valid JSON array; appending rewrites only the
// closing bracket.

/// One record under construction. Finish with write().
class JsonRecord {
 public:
  explicit JsonRecord(std::string bench) {
    os_ << "  {\"bench\": \"" << bench << "\"";
  }

  JsonRecord& field(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    os_ << ", \"" << key << "\": " << buf;
    return *this;
  }
  JsonRecord& field(const std::string& key, std::uint64_t v) {
    os_ << ", \"" << key << "\": " << v;
    return *this;
  }
  JsonRecord& field(const std::string& key, const std::string& v) {
    os_ << ", \"" << key << "\": \"" << v << "\"";
    return *this;
  }
  JsonRecord& field(const std::string& key, bool v) {
    os_ << ", \"" << key << "\": " << (v ? "true" : "false");
    return *this;
  }

  /// Appends the record to the report file (default BENCH_runtime.json in
  /// the working directory; override with $BENCH_RUNTIME_JSON).
  void write() const {
    const char* env = std::getenv("BENCH_RUNTIME_JSON");
    const std::string path = env != nullptr ? env : "BENCH_runtime.json";
    std::string body;
    {
      std::ifstream in(path);
      if (in) {
        std::ostringstream all;
        all << in.rdbuf();
        body = all.str();
      }
    }
    // Strip the closing "\n]\n" of an existing array, or start a new one.
    const std::string tail = "\n]\n";
    if (body.size() >= tail.size() &&
        body.compare(body.size() - tail.size(), tail.size(), tail) == 0) {
      body.resize(body.size() - tail.size());
      body += ",\n";
    } else {
      body = "[\n";
    }
    body += os_.str() + "}" + tail;
    std::ofstream out(path, std::ios::trunc);
    out << body;
  }

 private:
  std::ostringstream os_;
};

} // namespace vwr2a::bench
