#pragma once
// Shared rig and formatting for the experiment-reproduction benches. Every
// bench binary regenerates one table or figure of the paper and prints the
// measured values next to the paper's, with the ratio, so EXPERIMENTS.md
// can be audited from the bench output alone.

#include <cstdio>
#include <string>
#include <vector>

#include "app/mbiotracker.hpp"
#include "bus/ahb.hpp"
#include "cgra/vwr2a.hpp"
#include "common/fixed_point.hpp"
#include "common/rng.hpp"
#include "cpu/kernels_q15.hpp"
#include "dsp/reference.hpp"
#include "dsp/signal.hpp"
#include "energy/meter.hpp"
#include "kernels/fft.hpp"
#include "kernels/fir.hpp"
#include "kernels/host.hpp"
#include "mem/sram.hpp"
#include "soc/platform.hpp"

namespace vwr2a::bench {

/// A standalone VWR2A rig (block + bus + system SRAM), as used for the
/// kernel-level experiments.
struct Rig {
  energy::EnergyMeter sys_meter;
  mem::SystemSram sram{sys_meter};
  bus::AhbBus ahb{sram, sys_meter};
  cgra::Vwr2a acc{ahb};
  kernels::Host host{acc, sram, nullptr};
};

inline void header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// One row of a paper-vs-measured comparison.
inline void row(const char* label, double paper, double measured,
                const char* unit) {
  std::printf("  %-28s paper %10.1f %-6s measured %10.1f %-6s ratio %5.2f\n",
              label, paper, unit, measured, unit,
              paper > 0 ? measured / paper : 0.0);
}

/// Random 16.15 complex input placed interleaved at `base`.
inline void place_complex_input(Rig& rig, unsigned n, unsigned base, Rng& rng) {
  for (unsigned i = 0; i < 2 * n; ++i) {
    rig.sram.poke(base + i, static_cast<Word>(
                                fx::to_q16_15(rng.next_range(-0.4, 0.4))));
  }
}

/// Microseconds at the 80 MHz architectural clock.
inline double us(Cycle cycles) {
  return static_cast<double>(cycles) / arch::kClockHz * 1e6;
}

} // namespace vwr2a::bench
