// Streaming soak: the headline scaling benchmark of the stream layer.
// 16 tenant sessions (heavy whole-app BioTracker streams alternating with
// lighter FIR->energy->rFFT feature pipelines) push a fixed number of
// windows each onto a 4-device heterogeneous fleet, three times:
//   * baseline: round-robin session placement, SPM residency tracking and
//     cross-job staging dedup disabled (the PR-2 runtime);
//   * tuned: shortest-local-clock placement + residency + dedup;
//   * trace: the tuned config on ExecMode::kTraceCache -- identical
//     simulated behaviour (outputs, makespan, stagings), >= 5x less host
//     wall-clock per simulated cycle;
//   * trace @ fleet 16: the tuned trace config scaled to a 16-device
//     mixed fleet -- the host driver-path tracking config (per-descriptor
//     DMA programming, per-window session bookkeeping). Its
//     sim_cycles_per_host_second record tracks that path run over run:
//     measured at PR 5, ~85% of its host time is inside Device::run (the
//     simulated kernels), so the driver path is no longer the ceiling.
// Same sample streams, same windows, bit-identical outputs across all
// configs. Exit status enforces tuned < baseline (simulated), the
// trace/tuned identity (and fleet-16 output identity), and the 5x host
// speedup. Machine-readable records land in BENCH_runtime.json for the
// nightly perf-trajectory artifact.

#include <chrono>
#include <cstdio>
#include <span>
#include <vector>

#include "bench/bench_util.hpp"
#include "stream/server.hpp"

int main() {
  using namespace vwr2a;
  using Clock = std::chrono::steady_clock;

  constexpr unsigned kSessions = 16;
  constexpr unsigned kWindowsPerSession = 12;
  constexpr unsigned kChunk = 160;  // push granularity (samples)

  // Fixed per-tenant streams: even sessions run the whole application
  // (heavy), odd sessions the feature pipeline (light).
  std::vector<std::vector<std::int32_t>> streams;
  for (unsigned i = 0; i < kSessions; ++i) {
    dsp::RespirationParams p;
    p.breath_hz = 0.15 + 0.05 * (i % 8);
    Rng rng(4000 + i);
    streams.push_back(dsp::respiration_q16_15(
        kWindowsPerSession * app::kWindow, p, rng));
  }

  struct Run {
    stream::ServerStats stats;
    /// FNV-1a over every delivered output word, per session in window
    /// order: the configs must agree bit-for-bit.
    std::vector<std::uint64_t> output_hash;
    double wall_ms = 0.0;
  };
  auto soak = [&streams](runtime::Schedule sched, bool residency,
                         cgra::ExecMode mode, unsigned devices = 4) {
    stream::StreamServer::Config cfg;
    cfg.pool.devices = devices;
    cfg.pool.schedule = sched;
    cfg.pool.device_opts.residency = residency;
    cfg.pool.device_opts.dedup = residency;
    const std::vector<soc::ArchConfig> mix = {
        soc::ArchConfig{.exec_mode = mode},
        soc::ArchConfig{.vwr_count = 2, .exec_mode = mode},
        soc::ArchConfig{.vwr_count = 4, .exec_mode = mode},
        soc::ArchConfig{.simd_width = 16, .exec_mode = mode}};
    for (unsigned d = 0; d < devices; ++d) {
      cfg.pool.device_arch.push_back(mix[d % 4]);
    }
    stream::StreamServer server(cfg);

    // One shared taps buffer across every pipeline tenant: cross-job dedup
    // stages it once per device per residency interval.
    const auto taps = runtime::make_buffer(dsp::fir11_lowpass_q15());
    std::vector<std::uint64_t> hashes(streams.size(), 1469598103934665603ull);
    std::vector<stream::Session*> sessions;
    for (unsigned i = 0; i < streams.size(); ++i) {
      stream::SessionConfig scfg;
      if (i % 2 == 1) {
        scfg.kind = stream::SessionKind::kPipeline;
        scfg.taps = taps;
      }
      sessions.push_back(
          &server.open_session(scfg, [&hashes](const stream::WindowResult& r) {
            std::uint64_t& h = hashes[r.session];
            for (std::int32_t w : r.job.output) {
              h = (h ^ static_cast<std::uint32_t>(w)) * 1099511628211ull;
            }
          }));
    }

    const auto t0 = Clock::now();
    for (std::size_t off = 0;; off += kChunk) {
      bool any = false;
      for (std::size_t i = 0; i < streams.size(); ++i) {
        if (off >= streams[i].size()) continue;
        const std::size_t take =
            std::min<std::size_t>(kChunk, streams[i].size() - off);
        sessions[i]->push(
            std::span<const std::int32_t>(streams[i]).subspan(off, take));
        any = true;
      }
      if (!any) break;
    }
    server.finish();
    Run r;
    r.wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    r.stats = server.stats();
    r.output_hash = std::move(hashes);
    return r;
  };

  bench::header("Stream soak: 16 sessions x 12 windows, 4-device mixed fleet");
  std::printf("  %-28s | %13s %11s %9s %9s | %8s\n", "config", "makespan cyc",
              "windows/s", "occup", "stagings", "wall ms");

  const Run base =
      soak(runtime::Schedule::kRoundRobin, false, cgra::ExecMode::kInterpret);
  const Run tuned = soak(runtime::Schedule::kShortestLocalClock, true,
                         cgra::ExecMode::kInterpret);
  const Run traced = soak(runtime::Schedule::kShortestLocalClock, true,
                          cgra::ExecMode::kTraceCache);
  const Run fleet16 = soak(runtime::Schedule::kShortestLocalClock, true,
                           cgra::ExecMode::kTraceCache, /*devices=*/16);
  auto row = [](const char* name, const Run& r) {
    std::printf("  %-28s | %13llu %11.0f %9.2f %9llu | %8.1f\n", name,
                static_cast<unsigned long long>(r.stats.fleet.fleet_makespan),
                r.stats.windows_per_sim_second(), r.stats.fleet_occupancy(),
                static_cast<unsigned long long>(r.stats.fleet.stagings),
                r.wall_ms);
  };
  row("round-robin, no residency", base);
  row("shortest-clock + residency", tuned);
  row("  + trace-cache engine", traced);
  row("  trace engine, fleet 16", fleet16);

  const double gain =
      base.stats.fleet.fleet_makespan > 0
          ? 1.0 - static_cast<double>(tuned.stats.fleet.fleet_makespan) /
                      static_cast<double>(base.stats.fleet.fleet_makespan)
          : 0.0;
  std::printf("\n  per-session mean latency (tuned, cycles):\n    ");
  for (const auto& s : tuned.stats.sessions) {
    std::printf("s%llu:%.0f ", static_cast<unsigned long long>(s.id),
                s.mean_latency_cycles());
  }
  std::printf("\n\n  makespan reduction: %.1f%% (%s)\n", gain * 100.0,
              gain > 0.0 ? "tuned wins" : "REGRESSION");

  const bool identical = tuned.output_hash == base.output_hash;
  if (!identical) std::printf("  OUTPUT MISMATCH between configs\n");

  // Trace-cache identity: same simulated universe as the tuned config --
  // outputs, makespan, stagings, fleet energy -- at a fraction of the host
  // wall-clock.
  const bool trace_identical =
      traced.output_hash == tuned.output_hash &&
      traced.stats.fleet.fleet_makespan == tuned.stats.fleet.fleet_makespan &&
      traced.stats.fleet.stagings == tuned.stats.fleet.stagings &&
      traced.stats.fleet.total_pj == tuned.stats.fleet.total_pj &&
      traced.stats.windows_delivered == tuned.stats.windows_delivered;
  const double trace_speedup =
      traced.wall_ms > 0 ? tuned.wall_ms / traced.wall_ms : 0.0;
  std::printf("  trace-cache: %s identity, %.2fx host speedup (%s 5x target)\n",
              trace_identical ? "bit/cycle/energy" : "BROKEN",
              trace_speedup, trace_speedup >= 5.0 ? "meets" : "MISSES");

  struct Named {
    const char* name;
    const Run* run;
  };
  for (const Named& n : {Named{"round_robin_interpret", &base},
                         Named{"tuned_interpret", &tuned},
                         Named{"tuned_trace_cache", &traced},
                         Named{"tuned_trace_cache_fleet16", &fleet16}}) {
    const Run& r = *n.run;
    bench::JsonRecord("stream_soak")
        .field("config", std::string(n.name))
        .field("windows",
               static_cast<std::uint64_t>(r.stats.windows_delivered))
        .field("makespan_cycles",
               static_cast<std::uint64_t>(r.stats.fleet.fleet_makespan))
        .field("stagings", static_cast<std::uint64_t>(r.stats.fleet.stagings))
        .field("wall_seconds", r.wall_ms * 1e-3)
        .field("sim_cycles_per_host_second",
               static_cast<double>(r.stats.fleet.total_device_cycles) /
                   (r.wall_ms * 1e-3))
        .field("windows_per_sim_second", r.stats.windows_per_sim_second())
        .write();
  }

  // Outputs are device-count-invariant: the fleet-16 run must agree bit
  // for bit with the 4-device tuned run.
  const bool fleet16_identical = fleet16.output_hash == tuned.output_hash &&
                                 fleet16.stats.windows_delivered ==
                                     tuned.stats.windows_delivered;
  if (!fleet16_identical) std::printf("  FLEET-16 OUTPUT MISMATCH\n");

  const bool ok =
      identical &&
      tuned.stats.fleet.fleet_makespan < base.stats.fleet.fleet_makespan &&
      tuned.stats.fleet.stagings < base.stats.fleet.stagings &&
      tuned.stats.windows_delivered == base.stats.windows_delivered &&
      trace_identical && fleet16_identical && trace_speedup >= 5.0;
  return ok ? 0 : 1;
}
