// Cold-start latency: process start -> fleet fully warm, with and without
// the prebuilt binary artifact (src/artifact/).
//
// "Warm" means every kernel image and compiled trace a device can ever use
// is resident, so no job pays a first-touch assembly or trace-compilation
// hiccup. A cold fleet can only get there one way: execute the whole
// catalog (the warm-up wave IS simulated work). A fleet with the artifact
// attached gets there in the constructor -- Config::artifact_prewarm
// hydrates every entry with a flat bounds-checked parse of the mmap, no
// simulation at all. That asymmetry is the artifact's reason to exist, and
// this bench gates it: fleet-ready time must improve by >= 2x.
//
// After both fleets are warm the same catalog wave is executed and the
// output hashes compared -- hydration must be bit-identical (the
// cycle/energy identity is pinned by tests/test_runtime_jobs.cpp).
//
// Appends cold_start_cold / cold_start_warm records to BENCH_runtime.json
// for the nightly perf-trajectory artifact. Exit 1 on gate or identity
// failure.

#include <chrono>
#include <cstdio>
#include <vector>

#include "artifact/builder.hpp"
#include "bench/bench_util.hpp"
#include "runtime/pool.hpp"

int main() {
  using namespace vwr2a;
  using Clock = std::chrono::steady_clock;

  const std::vector<soc::ArchConfig> variants = artifact::default_variants();
  const std::string path = "/tmp/vwr2a_cold_start.vwr2art";

  const auto tb0 = Clock::now();
  const artifact::BuildInfo built = artifact::build_artifact(path, variants);
  const double build_s =
      std::chrono::duration<double>(Clock::now() - tb0).count();
  std::printf("artifact: %zu images, %zu traces, %.1f KiB, built in %.2fs\n",
              built.images, built.traces, built.bytes / 1024.0, build_s);

  // The first-touch wave: the full catalog, once per device (pinned), so
  // every device assembles/compiles -- or hydrates -- its whole working set.
  auto make_wave = [&](unsigned devices) {
    std::vector<runtime::Job> jobs;
    for (unsigned d = 0; d < devices; ++d) {
      for (runtime::Job job : artifact::catalog_jobs()) {
        job.pin = static_cast<int>(d);
        jobs.push_back(std::move(job));
      }
    }
    return jobs;
  };

  struct Run {
    double ready_s = 0.0;      ///< process start -> fleet fully warm
    double first_job_s = 0.0;  ///< process start -> first job completed
    double wave_s = 0.0;       ///< the catalog wave, measured post-warm
    std::uint64_t hash = 1469598103934665603ull;
    runtime::FleetStats stats;
  };
  auto hash_outputs = [](std::vector<runtime::JobHandle>& handles,
                         std::uint64_t h) {
    for (auto& hd : handles) {
      for (std::int32_t w : hd.get().output) {
        h = (h ^ static_cast<std::uint32_t>(w)) * 1099511628211ull;
      }
    }
    return h;
  };
  auto measure = [&](bool warm) {
    Run best;
    for (int rep = 0; rep < 3; ++rep) {
      runtime::DevicePool::Config cfg;
      cfg.devices = static_cast<unsigned>(variants.size());
      cfg.device_arch = variants;
      cfg.artifact_path = warm ? path : "";
      cfg.artifact_env = false;  // this bench controls the path explicitly
      cfg.artifact_prewarm = warm;
      Run r;
      const auto t0 = Clock::now();
      runtime::DevicePool pool(cfg);
      auto warmup = std::chrono::duration<double>(Clock::now() - t0).count();
      auto handles = pool.submit_batch(make_wave(cfg.devices));
      handles[0].wait();
      r.first_job_s = std::chrono::duration<double>(Clock::now() - t0).count();
      pool.wait_idle();
      const auto t1 = Clock::now();
      // Cold fleets are warm only after the wave; prewarmed fleets were
      // warm when the constructor returned.
      r.ready_s = warm ? warmup
                       : std::chrono::duration<double>(t1 - t0).count();
      r.hash = hash_outputs(handles, r.hash);
      // A second wave on the now-warm fleet: pure simulation, the floor
      // both configurations share.
      auto handles2 = pool.submit_batch(make_wave(cfg.devices));
      pool.wait_idle();
      r.wave_s = std::chrono::duration<double>(Clock::now() - t1).count();
      hash_outputs(handles2, 0);  // drain
      r.stats = pool.stats();
      if (rep == 0 || r.ready_s < best.ready_s) best = std::move(r);
    }
    return best;
  };

  const Run cold = measure(false);
  const Run warm = measure(true);

  const double ready_speedup = cold.ready_s / warm.ready_s;
  bench::header("cold start (6-variant fleet, full-catalog working set)");
  std::printf(
      "  cold: fleet ready %7.2f ms (executes the catalog: %llu images built, "
      "%llu traces compiled), first job %6.2f ms\n",
      cold.ready_s * 1e3,
      static_cast<unsigned long long>(cold.stats.image_cache.builds),
      static_cast<unsigned long long>(cold.stats.trace_cache.compiled),
      cold.first_job_s * 1e3);
  std::printf(
      "  warm: fleet ready %7.2f ms (prewarm: %llu images, %llu traces "
      "hydrated), first job %6.2f ms\n",
      warm.ready_s * 1e3,
      static_cast<unsigned long long>(warm.stats.image_cache.hydrated),
      static_cast<unsigned long long>(warm.stats.trace_cache.hydrated),
      warm.first_job_s * 1e3);
  std::printf("  warm-fleet catalog wave: cold %.2f ms, warm %.2f ms (shared sim floor)\n",
              cold.wave_s * 1e3, warm.wave_s * 1e3);
  std::printf("  fleet-ready speedup: %.2fx (gate: >= 2x)\n", ready_speedup);

  bench::JsonRecord("cold_start_cold")
      .field("ready_s", cold.ready_s)
      .field("first_job_s", cold.first_job_s)
      .field("wave_s", cold.wave_s)
      .field("builds", cold.stats.image_cache.builds)
      .field("traces_compiled", cold.stats.trace_cache.compiled)
      .write();
  bench::JsonRecord("cold_start_warm")
      .field("ready_s", warm.ready_s)
      .field("first_job_s", warm.first_job_s)
      .field("wave_s", warm.wave_s)
      .field("images_hydrated", warm.stats.image_cache.hydrated)
      .field("traces_hydrated", warm.stats.trace_cache.hydrated)
      .field("artifact_bytes", static_cast<std::uint64_t>(built.bytes))
      .field("artifact_build_s", build_s)
      .field("ready_speedup", ready_speedup)
      .write();

  if (cold.hash != warm.hash) {
    std::printf("FAIL: warm outputs diverge from cold (hash mismatch)\n");
    return 1;
  }
  if (!warm.stats.artifact_attached ||
      warm.stats.image_cache.hydrated == 0 ||
      warm.stats.trace_cache.hydrated == 0 ||
      warm.stats.image_cache.builds != 0) {
    std::printf("FAIL: warm fleet did not hydrate its working set (builds %llu)\n",
                static_cast<unsigned long long>(warm.stats.image_cache.builds));
    return 1;
  }
  if (ready_speedup < 2.0) {
    std::printf("FAIL: fleet-ready speedup %.2fx < 2x gate\n", ready_speedup);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
