// Ablation A2 (Sec 3.3.1): the shuffle unit vs data reordering through the
// RC connection matrix ("possible through the RCs connection matrix, but it
// is highly inefficient in terms of performance and energy").
//
// Measured side: the 512-point FFT's shuffle activity. Modeled side: the
// same interleave permutation executed by the RCs -- each output word needs
// a VWR read, up to 3 neighbour hops (per-hop ALU op + result-register
// write), and a VWR write-back, at 128 words per shuffled row but only 4
// words moved per cycle.

#include "bench/bench_util.hpp"

int main() {
  using namespace vwr2a;
  using namespace vwr2a::bench;
  using energy::Event;
  Rng rng(10);
  Rig rig;
  kernels::FftKernels fft(rig.host);
  fft.prepare(0);
  const unsigned n = 512;
  const unsigned in = kernels::FftKernels::table_words();
  const unsigned out = in + 2 * n + 2;
  place_complex_input(rig, n, in, rng);
  const auto stats = fft.cfft(n, in, out, out + 2 * n + 2);
  const auto& m = rig.acc.meter();

  const double shuffles = static_cast<double>(m.count(Event::kShuffleOp));
  const double shuffle_cycles = shuffles;  // one cycle each
  const double shuffle_uj =
      (m.event_pj(Event::kShuffleOp) +
       shuffles * energy::energy_pj(Event::kVwrRowWrite)) *
      1e-6;

  // RC-matrix emulation: 128 words/shuffle, 4 RCs in parallel, avg 2
  // neighbour hops -> 32 * (1 read + 2 hops + 1 write) cycles per shuffle.
  const double rc_cycles_per_shuffle = 32.0 * 4.0;
  const double rc_pj_per_word =
      energy::energy_pj(Event::kVwrWordRead) +
      2.0 * (energy::energy_pj(Event::kAluOp) + energy::energy_pj(Event::kRcRfWrite)) +
      energy::energy_pj(Event::kVwrWordWrite);
  const double rc_cycles = shuffles * rc_cycles_per_shuffle;
  const double rc_uj = shuffles * 128.0 * rc_pj_per_word * 1e-6;

  header("Ablation: shuffle unit vs RC-matrix reordering (512-pt FFT)");
  std::printf("  shuffle ops executed: %.0f\n", shuffles);
  std::printf("  %-22s | %10s | %10s\n", "reordering path", "cycles", "uJ");
  std::printf("  %-22s | %10.0f | %10.3f\n", "shuffle unit", shuffle_cycles,
              shuffle_uj);
  std::printf("  %-22s | %10.0f | %10.3f\n", "RC connection matrix", rc_cycles,
              rc_uj);
  std::printf("  -> %.0fx cycles, %.1fx energy in favour of the shuffle unit; "
              "whole-kernel impact: +%.0f%% FFT cycles without it.\n",
              rc_cycles / shuffle_cycles, rc_uj / shuffle_uj,
              100.0 * (rc_cycles - shuffle_cycles) /
                  static_cast<double>(stats.cycles));
  return 0;
}
