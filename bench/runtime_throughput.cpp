// Runtime-pool throughput, three experiments:
//
//  1. Fleet scaling (simulated metric): a 1000-job FIR-11 batch (256 points
//     each) served by fleets of 1/2/4/8 devices, one worker per device.
//     Fleet throughput in jobs per *simulated* second scales with the
//     device count regardless of host cores (N independent VWR2A blocks).
//
//  2. Execution-engine speedup (host metric): the same batch on one device,
//     interpreted vs trace-cached. The trace cache must be bit-identical
//     (outputs), exactly cycle/energy-equal, and >= 5x faster in host
//     wall-clock -- the ceiling for every simulated cycle the fleet and
//     stream layers can deliver.
//
//  3. Sync-scheduled vs per-cycle lockstep replay (host metric): a cfft
//     batch -- its split stages read the partner column's SPM rows, the
//     lockstep-heaviest shape in the catalog -- on one trace-mode device,
//     with the replay tiers as compiled vs forced per-cycle lockstep
//     (Vwr2a::set_replay_lockstep_only, the pre-sync-plan behaviour).
//     Identity must hold and block-level dependence analysis must be
//     >= 1.5x faster in host wall-clock.
//
// All experiments append machine-readable records to BENCH_runtime.json
// (host wall-clock, simulated cycles per host second, makespan) for the
// nightly perf-trajectory artifact.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "runtime/device.hpp"
#include "runtime/pool.hpp"

int main() {
  using namespace vwr2a;
  using Clock = std::chrono::steady_clock;

  constexpr unsigned kJobs = 1000;
  constexpr unsigned kPoints = 256;
  constexpr unsigned kDistinctInputs = 25;

  // Shared immutable inputs: 25 distinct signals, 40 jobs each.
  Rng rng(17);
  const auto taps = runtime::make_buffer(dsp::fir11_lowpass_q15());
  std::vector<runtime::SharedBuffer> inputs;
  for (unsigned i = 0; i < kDistinctInputs; ++i) {
    std::vector<std::int32_t> x(kPoints);
    for (auto& v : x) v = fx::to_q16_15(rng.next_range(-0.9, 0.9));
    inputs.push_back(runtime::make_buffer(std::move(x)));
  }
  auto make_jobs = [&] {
    std::vector<runtime::Job> jobs;
    jobs.reserve(kJobs);
    for (unsigned j = 0; j < kJobs; ++j) {
      jobs.push_back(
          {runtime::FirJob{kPoints, taps, inputs[j % kDistinctInputs]}, ""});
    }
    return jobs;
  };

  struct Run {
    runtime::FleetStats stats;
    runtime::ReplayStats replay;
    std::uint64_t output_hash = 1469598103934665603ull;  // FNV-1a
    double sys_pj_total = 0.0;
    Cycle job_cycles = 0;
    double wall_s = 0.0;
  };
  auto run_fleet = [&](unsigned devices, cgra::ExecMode mode) {
    runtime::DevicePool::Config cfg;
    cfg.devices = devices;  // one worker per device
    cfg.device_arch = {soc::ArchConfig{.exec_mode = mode}};
    runtime::DevicePool pool(cfg);
    const auto t0 = Clock::now();
    auto handles = pool.submit_batch(make_jobs());
    pool.wait_idle();
    Run r;
    r.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
    for (auto& h : handles) {
      const runtime::JobResult jr = h.get();
      for (std::int32_t w : jr.output) {
        r.output_hash =
            (r.output_hash ^ static_cast<std::uint32_t>(w)) * 1099511628211ull;
      }
      r.job_cycles += jr.cost.vwr2a_cycles;
      r.sys_pj_total += jr.cost.total_pj();
    }
    r.stats = pool.stats();
    return r;
  };

  // ---- experiment 1: fleet scaling (interpreted reference engine) ----------
  bench::header("Runtime pool: 1000-job FIR-11/256 batch, fleet scaling");
  std::printf("  %-8s | %12s %14s | %10s %12s | %8s\n", "workers",
              "makespan cyc", "sim jobs/s", "wall ms", "wall jobs/s",
              "speedup");
  double base_sim_jps = 0.0;
  double sim_jps_at_4 = 0.0;
  for (unsigned workers : {1u, 2u, 4u, 8u}) {
    const Run r = run_fleet(workers, cgra::ExecMode::kInterpret);
    const double sim_jps = r.stats.jobs_per_sim_second();
    if (workers == 1) base_sim_jps = sim_jps;
    if (workers == 4) sim_jps_at_4 = sim_jps;
    std::printf("  %-8u | %12llu %14.0f | %10.1f %12.0f | %7.2fx\n", workers,
                static_cast<unsigned long long>(r.stats.fleet_makespan),
                sim_jps, r.wall_s * 1e3,
                static_cast<double>(r.stats.jobs_completed) / r.wall_s,
                base_sim_jps > 0 ? sim_jps / base_sim_jps : 1.0);
    bench::JsonRecord("runtime_throughput")
        .field("config", "fleet_x" + std::to_string(workers))
        .field("exec_mode", std::string("interpret"))
        .field("jobs", static_cast<std::uint64_t>(r.stats.jobs_completed))
        .field("makespan_cycles",
               static_cast<std::uint64_t>(r.stats.fleet_makespan))
        .field("wall_seconds", r.wall_s)
        .field("sim_cycles_per_host_second",
               static_cast<double>(r.stats.total_device_cycles) / r.wall_s)
        .field("sim_jobs_per_sim_second", sim_jps)
        .write();
  }
  const double fleet4 = base_sim_jps > 0 ? sim_jps_at_4 / base_sim_jps : 0.0;

  // ---- experiment 2: trace-cache speedup on one device ---------------------
  bench::header("Trace cache vs interpreter (1 device, same batch)");
  const Run interp = run_fleet(1, cgra::ExecMode::kInterpret);
  const Run traced = run_fleet(1, cgra::ExecMode::kTraceCache);
  auto row = [](const char* name, const Run& r) {
    std::printf("  %-12s | %12llu cyc | %8.1f ms | %10.0f sim-cyc/s\n", name,
                static_cast<unsigned long long>(r.stats.fleet_makespan),
                r.wall_s * 1e3,
                static_cast<double>(r.stats.fleet_makespan) / r.wall_s);
  };
  row("interpret", interp);
  row("trace-cache", traced);

  const bool identical = interp.output_hash == traced.output_hash &&
                         interp.stats.fleet_makespan ==
                             traced.stats.fleet_makespan &&
                         interp.job_cycles == traced.job_cycles &&
                         interp.sys_pj_total == traced.sys_pj_total &&
                         interp.stats.total_pj == traced.stats.total_pj;
  const double speedup = traced.wall_s > 0 ? interp.wall_s / traced.wall_s : 0.0;
  std::printf("\n  identity: %s (outputs, cycles, energy)\n",
              identical ? "bit-exact" : "MISMATCH");
  std::printf("  trace-cache host speedup: %.2fx (%s 5x target)\n", speedup,
              speedup >= 5.0 ? "meets" : "MISSES");
  for (const Run* r : {&interp, &traced}) {
    bench::JsonRecord("runtime_throughput")
        .field("config", std::string("exec_mode_1dev"))
        .field("exec_mode",
               std::string(r == &interp ? "interpret" : "trace_cache"))
        .field("jobs", static_cast<std::uint64_t>(r->stats.jobs_completed))
        .field("makespan_cycles",
               static_cast<std::uint64_t>(r->stats.fleet_makespan))
        .field("wall_seconds", r->wall_s)
        .field("sim_cycles_per_host_second",
               static_cast<double>(r->stats.fleet_makespan) / r->wall_s)
        .field("bit_identical", identical)
        .field("speedup_vs_interpret", r == &interp ? 1.0 : speedup)
        .write();
  }

  // ---- experiment 3: scheduled replay vs forced per-cycle lockstep ---------
  bench::header("Block-scheduled replay vs per-cycle lockstep (cfft-2048)");
  constexpr unsigned kFftJobs = 16;
  constexpr unsigned kFftN = 2048;
  std::vector<runtime::SharedBuffer> fft_inputs;
  for (unsigned i = 0; i < 6; ++i) {
    std::vector<std::int32_t> x(2 * kFftN);
    for (auto& v : x) v = fx::to_q16_15(rng.next_range(-0.4, 0.4));
    fft_inputs.push_back(runtime::make_buffer(std::move(x)));
  }
  auto run_device = [&](cgra::ExecMode mode, bool lockstep_only) {
    isa::ImageCache cache;
    runtime::Device dev(0, cache, soc::ArchConfig{.exec_mode = mode});
    dev.platform().vwr2a().set_replay_lockstep_only(lockstep_only);
    Run r;
    const auto t0 = Clock::now();
    for (unsigned j = 0; j < kFftJobs; ++j) {
      const runtime::JobResult jr = dev.run(
          runtime::Job{runtime::CfftJob{kFftN, fft_inputs[j % 6]}, ""}, j);
      for (std::int32_t w : jr.output) {
        r.output_hash =
            (r.output_hash ^ static_cast<std::uint32_t>(w)) * 1099511628211ull;
      }
      r.job_cycles += jr.cost.vwr2a_cycles;
      r.sys_pj_total += jr.cost.total_pj();
    }
    r.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
    r.replay = dev.replay_stats();
    return r;
  };
  const Run fft_interp = run_device(cgra::ExecMode::kInterpret, false);
  const Run fft_sched = run_device(cgra::ExecMode::kTraceCache, false);
  const Run fft_lock = run_device(cgra::ExecMode::kTraceCache, true);
  auto tier_row = [](const char* name, const Run& r) {
    std::printf("  %-12s | %8.1f ms | dec %10llu lock %10llu interp %10llu | "
                "sync %llu\n",
                name, r.wall_s * 1e3,
                static_cast<unsigned long long>(r.replay.decoupled_cycles),
                static_cast<unsigned long long>(r.replay.lockstep_cycles),
                static_cast<unsigned long long>(r.replay.interpreted_cycles),
                static_cast<unsigned long long>(r.replay.sync_points));
  };
  tier_row("interpret", fft_interp);
  tier_row("scheduled", fft_sched);
  tier_row("lockstep", fft_lock);
  const bool fft_identical =
      fft_interp.output_hash == fft_sched.output_hash &&
      fft_sched.output_hash == fft_lock.output_hash &&
      fft_interp.job_cycles == fft_sched.job_cycles &&
      fft_sched.job_cycles == fft_lock.job_cycles &&
      fft_interp.sys_pj_total == fft_sched.sys_pj_total &&
      fft_sched.sys_pj_total == fft_lock.sys_pj_total;
  const double lockstep_speedup =
      fft_sched.wall_s > 0 ? fft_lock.wall_s / fft_sched.wall_s : 0.0;
  std::printf("\n  identity: %s (outputs, cycles, energy; 3 engines)\n",
              fft_identical ? "bit-exact" : "MISMATCH");
  std::printf("  scheduled-over-lockstep speedup: %.2fx (%s 1.5x target)\n",
              lockstep_speedup, lockstep_speedup >= 1.5 ? "meets" : "MISSES");
  bench::JsonRecord("runtime_throughput")
      .field("config", std::string("decoupled_lockstep"))
      .field("jobs", static_cast<std::uint64_t>(kFftJobs))
      .field("fft_n", static_cast<std::uint64_t>(kFftN))
      .field("wall_seconds_scheduled", fft_sched.wall_s)
      .field("wall_seconds_lockstep", fft_lock.wall_s)
      .field("wall_seconds_interpret", fft_interp.wall_s)
      .field("replay_decoupled_cycles", fft_sched.replay.decoupled_cycles)
      .field("replay_lockstep_cycles", fft_sched.replay.lockstep_cycles)
      .field("replay_interpreted_cycles", fft_sched.replay.interpreted_cycles)
      .field("replay_sync_points", fft_sched.replay.sync_points)
      .field("bit_identical", fft_identical)
      .field("speedup_vs_lockstep", lockstep_speedup)
      .write();

  std::printf("\n  4-worker fleet speedup: %.2fx (%s 2x target)\n", fleet4,
              fleet4 > 2.0 ? "meets" : "MISSES");
  return (fleet4 > 2.0 && identical && speedup >= 5.0 && fft_identical &&
          lockstep_speedup >= 1.5)
             ? 0
             : 1;
}
