// Runtime-pool throughput: a 1000-job FIR-11 batch (256 points each) served
// by fleets of 1/2/4/8 devices, one worker per device. Reports fleet
// throughput in jobs per *simulated* second -- the architectural metric: N
// independent VWR2A blocks advance their local clocks in parallel, so the
// fleet makespan is the max device-local time and throughput scales with
// the device count regardless of how many host cores execute the
// simulation. Host wall-clock time is reported alongside (it additionally
// scales with host cores, which is the worker threads' job).

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "runtime/pool.hpp"

int main() {
  using namespace vwr2a;
  using Clock = std::chrono::steady_clock;

  constexpr unsigned kJobs = 1000;
  constexpr unsigned kPoints = 256;
  constexpr unsigned kDistinctInputs = 25;

  // Shared immutable inputs: 25 distinct signals, 40 jobs each.
  Rng rng(17);
  const auto taps = runtime::make_buffer(dsp::fir11_lowpass_q15());
  std::vector<runtime::SharedBuffer> inputs;
  for (unsigned i = 0; i < kDistinctInputs; ++i) {
    std::vector<std::int32_t> x(kPoints);
    for (auto& v : x) v = fx::to_q16_15(rng.next_range(-0.9, 0.9));
    inputs.push_back(runtime::make_buffer(std::move(x)));
  }

  bench::header("Runtime pool: 1000-job FIR-11/256 batch");
  std::printf("  %-8s | %12s %14s | %10s %12s | %8s\n", "workers",
              "makespan cyc", "sim jobs/s", "wall ms", "wall jobs/s",
              "speedup");

  double base_sim_jps = 0.0;
  double sim_jps_at_4 = 0.0;
  for (unsigned workers : {1u, 2u, 4u, 8u}) {
    runtime::DevicePool::Config cfg;
    cfg.devices = workers;  // one worker per device
    runtime::DevicePool pool(cfg);

    std::vector<runtime::Job> jobs;
    jobs.reserve(kJobs);
    for (unsigned j = 0; j < kJobs; ++j) {
      jobs.push_back({runtime::FirJob{kPoints, taps, inputs[j % kDistinctInputs]}, ""});
    }

    const auto t0 = Clock::now();
    auto handles = pool.submit_batch(std::move(jobs));
    pool.wait_idle();
    const double wall_s = std::chrono::duration<double>(Clock::now() - t0).count();

    Cycle job_cycles = 0;
    for (auto& h : handles) job_cycles += h.get().cost.vwr2a_cycles;
    const runtime::FleetStats s = pool.stats();
    const double sim_jps = s.jobs_per_sim_second();
    if (workers == 1) base_sim_jps = sim_jps;
    if (workers == 4) sim_jps_at_4 = sim_jps;
    std::printf("  %-8u | %12llu %14.0f | %10.1f %12.0f | %7.2fx\n", workers,
                static_cast<unsigned long long>(s.fleet_makespan), sim_jps,
                wall_s * 1e3, static_cast<double>(s.jobs_completed) / wall_s,
                base_sim_jps > 0 ? sim_jps / base_sim_jps : 1.0);
    if (workers == 1) {
      std::printf("  (per-job mean %llu cycles; image cache %llu hits / "
                  "%llu misses)\n",
                  static_cast<unsigned long long>(job_cycles / kJobs),
                  static_cast<unsigned long long>(s.image_cache.hits),
                  static_cast<unsigned long long>(s.image_cache.misses));
    }
  }

  const double speedup4 = base_sim_jps > 0 ? sim_jps_at_4 / base_sim_jps : 0.0;
  std::printf("\n  4-worker fleet speedup: %.2fx (%s 2x target)\n", speedup4,
              speedup4 > 2.0 ? "meets" : "MISSES");
  return speedup4 > 2.0 ? 0 : 1;
}
