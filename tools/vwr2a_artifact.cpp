// vwr2a_artifact: build / inspect / verify the prebuilt binary artifact
// (src/artifact/, docs/artifact.md).
//
//   vwr2a_artifact build <path>     enumerate the kernel catalog across all
//                                   architecture variants and write the
//                                   artifact (deterministic: byte-identical
//                                   across runs and machines)
//   vwr2a_artifact inspect <path>   print header, image keys, trace summary
//   vwr2a_artifact verify <path>    validate checksums and parse every entry
//
// Exit status: 0 on success, 1 on usage error, 2 when verify/inspect reject
// the file.

#include <cstdio>
#include <exception>
#include <map>
#include <string>

#include "artifact/builder.hpp"
#include "artifact/format.hpp"
#include "artifact/store.hpp"

namespace {

using namespace vwr2a;

int usage() {
  std::fprintf(stderr,
               "usage: vwr2a_artifact build|inspect|verify <path>\n"
               "  build    write the full kernel-catalog artifact to <path>\n"
               "  inspect  print the artifact's header and contents\n"
               "  verify   validate checksums and parse every entry\n");
  return 1;
}

int cmd_build(const std::string& path) {
  try {
    const artifact::BuildInfo info = artifact::build_artifact(path);
    std::printf("wrote %s: %zu images, %zu traces, %zu bytes, payload fnv %016llx\n",
                path.c_str(), info.images, info.traces, info.bytes,
                static_cast<unsigned long long>(info.payload_fnv));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "build failed: %s\n", e.what());
    return 2;
  }
}

int cmd_inspect(const std::string& path) {
  std::string why;
  const auto store = artifact::Store::open(path, &why);
  if (!store) {
    std::fprintf(stderr, "%s\n", why.c_str());
    return 2;
  }
  std::printf("%s: format v%u, arch tag %08x, %llu bytes\n", path.c_str(),
              artifact::kFormatVersion, artifact::arch_tag(),
              static_cast<unsigned long long>(store->file_size()));
  std::printf("images: %zu\n", store->image_count());
  for (const std::string_view key : store->image_keys()) {
    std::printf("  %.*s\n", static_cast<int>(key.size()), key.data());
  }
  // Traces are keyed by (variant, canonical program bytes); the program
  // bytes are opaque, so summarize per variant.
  std::map<std::string, std::pair<std::size_t, std::uint64_t>> per_variant;
  for (const auto& [variant, bytes] : store->trace_summaries()) {
    auto& [count, total] = per_variant[std::string(variant)];
    ++count;
    total += bytes;
  }
  std::printf("traces: %zu\n", store->trace_count());
  for (const auto& [variant, ct] : per_variant) {
    std::printf("  %-10s %3zu traces, %8llu payload bytes\n", variant.c_str(),
                ct.first, static_cast<unsigned long long>(ct.second));
  }
  return 0;
}

int cmd_verify(const std::string& path) {
  std::string why;
  const auto store = artifact::Store::open(path, &why);
  if (!store) {
    std::fprintf(stderr, "REJECTED: %s\n", why.c_str());
    return 2;
  }
  if (!store->verify_all(&why)) {
    std::fprintf(stderr, "REJECTED: %s\n", why.c_str());
    return 2;
  }
  std::printf("OK: %zu images, %zu traces, %llu bytes\n", store->image_count(),
              store->trace_count(),
              static_cast<unsigned long long>(store->file_size()));
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  if (argc != 3) return usage();
  const std::string cmd = argv[1];
  const std::string path = argv[2];
  if (cmd == "build") return cmd_build(path);
  if (cmd == "inspect") return cmd_inspect(path);
  if (cmd == "verify") return cmd_verify(path);
  return usage();
}
