// vwr2a_trace: convert / inspect / verify flight-recorder captures
// (.vwr2trc, src/obs/capture.hpp).
//
//   vwr2a_trace convert <in.vwr2trc> <out.json>
//                                   export a capture as Chrome trace_event
//                                   JSON (open in chrome://tracing or
//                                   https://ui.perfetto.dev)
//   vwr2a_trace inspect <in.vwr2trc>
//                                   print event/name/thread counts, the
//                                   per-name event histogram and the
//                                   window-chain summary
//   vwr2a_trace verify <in.vwr2trc>
//                                   parse the capture and check that every
//                                   traced window's lifecycle chain is
//                                   complete (push -> slice -> place ->
//                                   queue -> run -> complete -> deliver)
//                                   and crosses >= 3 threads
//   vwr2a_trace stats <in.vwr2trc>
//                                   per-stage latency table (place, queue,
//                                   run, deliver p50/p95/p99) computed via
//                                   analyze_windows() -- breakdowns without
//                                   Chrome; works on server captures and on
//                                   client captures carrying the synthetic
//                                   remote.* spans of a v6 feed
//   vwr2a_trace merge <client.vwr2trc> <server.vwr2trc> <out.json>
//                                   merge a client and a server capture
//                                   into one multi-process Chrome trace
//                                   with cross-process flow arrows chaining
//                                   each window id across the wire
//
// Exit status: 0 on success, 1 on usage error, 2 when the file is rejected
// or verification fails.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>

#include "obs/capture.hpp"
#include "obs/trace.hpp"

namespace {

using namespace vwr2a;

int usage() {
  std::fprintf(stderr,
               "usage: vwr2a_trace convert <in.vwr2trc> <out.json>\n"
               "       vwr2a_trace inspect <in.vwr2trc>\n"
               "       vwr2a_trace verify <in.vwr2trc>\n"
               "       vwr2a_trace stats <in.vwr2trc>\n"
               "       vwr2a_trace merge <client.vwr2trc> <server.vwr2trc> "
               "<out.json>\n");
  return 1;
}

int cmd_convert(const std::string& in, const std::string& out) {
  obs::Capture cap;
  std::string why;
  if (!obs::load_capture(in, &cap, &why)) {
    std::fprintf(stderr, "%s\n", why.c_str());
    return 2;
  }
  std::ofstream os(out, std::ios::binary);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 2;
  }
  obs::write_chrome_json(cap, os);
  os.flush();
  if (!os) {
    std::fprintf(stderr, "write failed: %s\n", out.c_str());
    return 2;
  }
  std::printf("wrote %s: %zu events across %u threads (%llu dropped)\n",
              out.c_str(), cap.events.size(), cap.threads,
              static_cast<unsigned long long>(cap.dropped));
  return 0;
}

int cmd_inspect(const std::string& in) {
  obs::Capture cap;
  std::string why;
  if (!obs::load_capture(in, &cap, &why)) {
    std::fprintf(stderr, "%s\n", why.c_str());
    return 2;
  }
  std::printf("%s: %zu events, %zu names, %u threads, %llu dropped\n",
              in.c_str(), cap.events.size(), cap.names.size(), cap.threads,
              static_cast<unsigned long long>(cap.dropped));
  std::map<std::string, std::size_t> by_name;
  for (const auto& e : cap.events) ++by_name[cap.name_of(e)];
  for (const auto& [name, n] : by_name) {
    std::printf("  %-20s %zu\n", name.c_str(), n);
  }
  const std::vector<obs::WindowChain> chains = obs::analyze_windows(cap);
  std::size_t complete = 0;
  std::uint32_t max_tids = 0;
  for (const auto& c : chains) {
    if (c.complete()) ++complete;
    max_tids = std::max(max_tids, c.distinct_tids);
  }
  std::printf("windows: %zu traced, %zu complete chains, max %u threads "
              "per window\n",
              chains.size(), complete, max_tids);
  return 0;
}

int cmd_verify(const std::string& in) {
  obs::Capture cap;
  std::string why;
  if (!obs::load_capture(in, &cap, &why)) {
    std::fprintf(stderr, "%s\n", why.c_str());
    return 2;
  }
  const std::vector<obs::WindowChain> chains = obs::analyze_windows(cap);
  if (chains.empty()) {
    std::fprintf(stderr, "verify failed: no traced windows in %s\n",
                 in.c_str());
    return 2;
  }
  std::size_t bad = 0;
  for (const auto& c : chains) {
    // Ring overflow legitimately truncates the oldest windows' chains, so
    // a capture with drops only has to produce *some* complete chains;
    // a drop-free capture must chain every window.
    if (c.complete() && c.distinct_tids >= 3) continue;
    ++bad;
    if (bad <= 8) {
      std::fprintf(stderr,
                   "  window %llu (session %llu index %llu): "
                   "push=%d slice=%d place=%d queue=%d run=%d complete=%d "
                   "deliver=%d tids=%u\n",
                   static_cast<unsigned long long>(c.window),
                   static_cast<unsigned long long>(obs::window_session(c.window)),
                   static_cast<unsigned long long>(obs::window_index(c.window)),
                   c.has_push, c.has_slice, c.has_place, c.has_queue,
                   c.has_run, c.has_complete, c.has_deliver, c.distinct_tids);
    }
  }
  const bool ok = cap.dropped > 0 ? bad < chains.size() : bad == 0;
  std::printf("%s: %zu/%zu windows chain completely across >= 3 threads "
              "(%llu events dropped)\n",
              in.c_str(), chains.size() - bad, chains.size(),
              static_cast<unsigned long long>(cap.dropped));
  if (!ok) {
    std::fprintf(stderr, "verify failed: %zu broken chains\n", bad);
    return 2;
  }
  return 0;
}

int cmd_stats(const std::string& in) {
  obs::Capture cap;
  std::string why;
  if (!obs::load_capture(in, &cap, &why)) {
    std::fprintf(stderr, "%s\n", why.c_str());
    return 2;
  }
  const std::vector<obs::WindowChain> chains = obs::analyze_windows(cap);
  if (chains.empty()) {
    std::fprintf(stderr, "no traced windows in %s\n", in.c_str());
    return 2;
  }
  struct Stage {
    const char* name;
    std::vector<std::uint64_t> ns;
  };
  Stage stages[4] = {{"place", {}}, {"queue", {}}, {"run", {}},
                     {"deliver", {}}};
  for (const obs::WindowChain& c : chains) {
    if (c.has_place) stages[0].ns.push_back(c.place_ns);
    if (c.has_queue) stages[1].ns.push_back(c.queue_ns);
    if (c.has_run) stages[2].ns.push_back(c.run_ns);
    if (c.has_deliver) stages[3].ns.push_back(c.deliver_ns);
  }
  auto pct = [](std::vector<std::uint64_t>& v, double p) {
    // v is sorted; nearest-rank percentile.
    const std::size_t r = static_cast<std::size_t>(
        p * static_cast<double>(v.size() - 1) + 0.5);
    return v[std::min(r, v.size() - 1)];
  };
  std::printf("%s: %zu traced windows\n", in.c_str(), chains.size());
  std::printf("  %-8s %8s %12s %12s %12s\n", "stage", "windows", "p50 us",
              "p95 us", "p99 us");
  for (Stage& s : stages) {
    if (s.ns.empty()) {
      std::printf("  %-8s %8s %12s %12s %12s\n", s.name, "-", "-", "-", "-");
      continue;
    }
    std::sort(s.ns.begin(), s.ns.end());
    std::printf("  %-8s %8zu %12.1f %12.1f %12.1f\n", s.name, s.ns.size(),
                static_cast<double>(pct(s.ns, 0.50)) / 1000.0,
                static_cast<double>(pct(s.ns, 0.95)) / 1000.0,
                static_cast<double>(pct(s.ns, 0.99)) / 1000.0);
  }
  return 0;
}

int cmd_merge(const std::string& client, const std::string& server,
              const std::string& out) {
  obs::Capture ccap;
  obs::Capture scap;
  std::string why;
  if (!obs::load_capture(client, &ccap, &why)) {
    std::fprintf(stderr, "%s: %s\n", client.c_str(), why.c_str());
    return 2;
  }
  if (!obs::load_capture(server, &scap, &why)) {
    std::fprintf(stderr, "%s: %s\n", server.c_str(), why.c_str());
    return 2;
  }
  std::ofstream os(out, std::ios::binary);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 2;
  }
  obs::write_chrome_json_merged({{"client", &ccap}, {"server", &scap}}, os);
  os.flush();
  if (!os) {
    std::fprintf(stderr, "write failed: %s\n", out.c_str());
    return 2;
  }
  // Count the window ids present on both sides: those get cross-process
  // arrows; zero shared windows usually means the captures are unrelated.
  std::map<std::uint64_t, bool> in_client;
  for (const auto& e : ccap.events) {
    if (e.window != 0) in_client[e.window] = true;
  }
  std::size_t shared = 0;
  std::map<std::uint64_t, bool> counted;
  for (const auto& e : scap.events) {
    if (e.window != 0 && in_client.count(e.window) != 0 &&
        counted.emplace(e.window, true).second) {
      ++shared;
    }
  }
  std::printf("wrote %s: %zu client + %zu server events, %zu windows "
              "chained across the wire\n",
              out.c_str(), ccap.events.size(), scap.events.size(), shared);
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  if (cmd == "convert") {
    if (argc != 4) return usage();
    return cmd_convert(argv[2], argv[3]);
  }
  if (cmd == "inspect") {
    if (argc != 3) return usage();
    return cmd_inspect(argv[2]);
  }
  if (cmd == "verify") {
    if (argc != 3) return usage();
    return cmd_verify(argv[2]);
  }
  if (cmd == "stats") {
    if (argc != 3) return usage();
    return cmd_stats(argv[2]);
  }
  if (cmd == "merge") {
    if (argc != 5) return usage();
    return cmd_merge(argv[2], argv[3], argv[4]);
  }
  return usage();
}
