// vwr2a_replay: inspect / replay / verify black-box traffic journals
// (.vwr2jrn, src/obs/journal.hpp).
//
//   vwr2a_replay inspect <in.vwr2jrn>
//                                   print header, record counts and the
//                                   per-stream delivered-output digests
//   vwr2a_replay replay <in.vwr2jrn> [--devices N]
//                                   drive the journal through a fresh
//                                   gateway server and print what each
//                                   stream produced
//   vwr2a_replay verify <in.vwr2jrn> [--devices N]
//                                   replay and gate bit-identity: every
//                                   stream's window count and output FNV
//                                   must match the journal trailer
//
// The replay fleet does not need the recorded fleet's shape: outputs are
// bit-identical regardless of device count and placement (the repo's
// determinism invariant), which is exactly what verify demonstrates.
//
// Exit status: 0 on success, 1 on usage error, 2 when the journal is
// rejected or the replay diverges.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "gateway/server.hpp"
#include "obs/journal.hpp"
#include "obs/journal_replay.hpp"

namespace {

using namespace vwr2a;

int usage() {
  std::fprintf(stderr,
               "usage: vwr2a_replay inspect <in.vwr2jrn>\n"
               "       vwr2a_replay replay <in.vwr2jrn> [--devices N]\n"
               "       vwr2a_replay verify <in.vwr2jrn> [--devices N]\n");
  return 1;
}

int cmd_inspect(const std::string& in) {
  obs::JournalFile jf;
  std::string why;
  if (!obs::load_journal(in, &jf, &why)) {
    std::fprintf(stderr, "%s\n", why.c_str());
    return 2;
  }
  std::size_t opens = 0;
  std::size_t frames = 0;
  std::size_t closes = 0;
  std::uint64_t frame_bytes = 0;
  for (const obs::JournalRecord& r : jf.records) {
    if (r.kind == obs::JournalRecord::kConnOpen) ++opens;
    else if (r.kind == obs::JournalRecord::kFrame) {
      ++frames;
      frame_bytes += r.bytes.size();
    } else {
      ++closes;
    }
  }
  std::printf("%s: protocol v%u, %zu records (%zu conn-open, %zu frames "
              "[%llu bytes], %zu conn-close), %zu stream digests\n",
              in.c_str(), jf.protocol, jf.records.size(), opens, frames,
              static_cast<unsigned long long>(frame_bytes), closes,
              jf.digests.size());
  for (const obs::JournalDigest& d : jf.digests) {
    std::printf("  conn %u stream %u: %llu windows, fnv %016llx\n", d.conn,
                d.stream, static_cast<unsigned long long>(d.windows),
                static_cast<unsigned long long>(d.fnv));
  }
  return 0;
}

obs::ReplayReport run_replay(const obs::JournalFile& jf, unsigned devices) {
  gateway::Server::Config cfg;
  cfg.stream.pool.devices = devices;
  gateway::Server server(cfg);
  obs::JournalReplayer replayer(server);
  obs::ReplayReport report = replayer.replay(jf);
  server.stop();
  return report;
}

void print_report(const obs::ReplayReport& report, bool with_expectation) {
  std::printf("replayed %llu frames over %llu connections (%llu errors "
              "received)\n",
              static_cast<unsigned long long>(report.frames_sent),
              static_cast<unsigned long long>(report.connections),
              static_cast<unsigned long long>(report.errors_received));
  for (const obs::ReplayStream& s : report.streams) {
    if (with_expectation) {
      std::printf("  conn %u stream %u: %llu/%llu windows, fnv %016llx %s\n",
                  s.conn, s.stream,
                  static_cast<unsigned long long>(s.got_windows),
                  static_cast<unsigned long long>(s.expected_windows),
                  static_cast<unsigned long long>(s.got_fnv),
                  s.ok() ? "ok" : "MISMATCH");
    } else {
      std::printf("  conn %u stream %u: %llu windows, fnv %016llx\n", s.conn,
                  s.stream, static_cast<unsigned long long>(s.got_windows),
                  static_cast<unsigned long long>(s.got_fnv));
    }
  }
}

int cmd_replay(const std::string& in, unsigned devices, bool gate) {
  obs::JournalFile jf;
  std::string why;
  if (!obs::load_journal(in, &jf, &why)) {
    std::fprintf(stderr, "%s\n", why.c_str());
    return 2;
  }
  const obs::ReplayReport report = run_replay(jf, devices);
  if (!report.error.empty()) {
    std::fprintf(stderr, "replay failed: %s\n", report.error.c_str());
    return 2;
  }
  print_report(report, gate);
  if (gate && !report.ok) {
    std::fprintf(stderr, "verify failed: replay diverged from the journal "
                         "trailer digests\n");
    return 2;
  }
  if (gate) {
    std::printf("verify ok: %zu streams reproduced bit-exactly\n",
                report.streams.size());
  }
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  const std::string in = argv[2];
  unsigned devices = 4;
  for (int i = 3; i < argc; ++i) {
    if (std::string(argv[i]) == "--devices" && i + 1 < argc) {
      devices = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
      if (devices == 0) return usage();
    } else {
      return usage();
    }
  }
  if (cmd == "inspect") {
    if (argc != 3) return usage();
    return cmd_inspect(in);
  }
  if (cmd == "replay") return cmd_replay(in, devices, /*gate=*/false);
  if (cmd == "verify") return cmd_replay(in, devices, /*gate=*/true);
  return usage();
}
