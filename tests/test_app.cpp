// End-to-end MBioTracker application on all three platform configurations:
// functional agreement (same class, close features) and the paper's Table 5
// shape (VWR2A >> CPU; the FFT accelerator only helps feature extraction).

#include <gtest/gtest.h>

#include <cmath>

#include "app/mbiotracker.hpp"
#include "common/rng.hpp"
#include "dsp/signal.hpp"
#include "soc/platform.hpp"

namespace vwr2a::app {
namespace {

std::vector<double> make_window(double breath_hz, Rng& rng) {
  dsp::RespirationParams p;
  p.breath_hz = breath_hz;
  return dsp::respiration(kWindow, p, rng);
}

TEST(App, PlatformsAgreeOnClass) {
  Rng rng(42);
  unsigned agree = 0, total = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const double hz = (trial % 2 == 0) ? 0.18 : 0.55;  // relaxed vs loaded
    const auto x = make_window(hz, rng);
    soc::Platform p1, p2, p3;
    MBioTracker a1(p1), a2(p2), a3(p3);
    a1.init();
    a2.init();
    a3.init();
    const auto r_cpu = a1.run(Target::kCpu, x);
    const auto r_acc = a2.run(Target::kCpuFftAccel, x);
    const auto r_vwr = a3.run(Target::kCpuVwr2a, x);
    ++total;
    if (r_cpu.svm_class == r_vwr.svm_class && r_cpu.svm_class == r_acc.svm_class) {
      ++agree;
    }
    // Slow breathing should classify low, fast high (decisive margins by
    // construction of the SVM model).
    EXPECT_EQ(r_cpu.svm_class, (trial % 2 == 0) ? -1 : 1) << "trial " << trial;
    // Features must be numerically close across number formats.
    EXPECT_NEAR(r_cpu.feat.rms, r_vwr.feat.rms, 0.05);
    EXPECT_NEAR(r_cpu.feat.breath_rate, r_vwr.feat.breath_rate, 0.26);
    EXPECT_NEAR(r_cpu.feat.resp_ratio, r_vwr.feat.resp_ratio, 0.15);
  }
  EXPECT_EQ(agree, total);
}

TEST(App, Table5Shape) {
  Rng rng(7);
  const auto x = make_window(0.25, rng);
  soc::Platform p1, p2, p3;
  MBioTracker a1(p1), a2(p2), a3(p3);
  a1.init();
  a2.init();
  a3.init();
  const auto r_cpu = a1.run(Target::kCpu, x);
  const auto r_acc = a2.run(Target::kCpuFftAccel, x);
  const auto r_vwr = a3.run(Target::kCpuVwr2a, x);

  // Paper Table 5 shape:
  //  * preprocessing / delineation identical for CPU and CPU+FFT-ACCEL.
  EXPECT_EQ(r_cpu.preprocessing.cycles, r_acc.preprocessing.cycles);
  EXPECT_EQ(r_cpu.delineation.cycles, r_acc.delineation.cycles);
  //  * the accelerator helps only feature extraction, and only somewhat.
  EXPECT_LT(r_acc.features.cycles, r_cpu.features.cycles);
  EXPECT_GT(r_acc.features.cycles, r_cpu.features.cycles / 4);
  //  * VWR2A wins large on every step (paper: 92%, 94%, 88% cycle savings).
  EXPECT_LT(r_vwr.preprocessing.cycles, r_cpu.preprocessing.cycles / 4);
  EXPECT_LT(r_vwr.delineation.cycles, r_cpu.delineation.cycles / 4);
  EXPECT_LT(r_vwr.features.cycles, r_cpu.features.cycles / 3);
  EXPECT_LT(r_vwr.total.cycles, r_cpu.total.cycles / 4);
  //  * and saves most of the energy at the application level (paper: 66%).
  EXPECT_LT(r_vwr.total.uj, 0.6 * r_cpu.total.uj);
}

TEST(App, CyclesInPaperBallpark) {
  // Paper Table 5 (cycles): CPU total 166667 (preproc 49760, delineation
  // 46268, features 70639); VWR2A total 15113. Our models should land
  // within a factor ~2 on each row.
  Rng rng(11);
  const auto x = make_window(0.25, rng);
  soc::Platform p1, p3;
  MBioTracker a1(p1), a3(p3);
  a1.init();
  a3.init();
  const auto r_cpu = a1.run(Target::kCpu, x);
  const auto r_vwr = a3.run(Target::kCpuVwr2a, x);
  EXPECT_GT(r_cpu.preprocessing.cycles, 49760u / 2);
  EXPECT_LT(r_cpu.preprocessing.cycles, 49760u * 2);
  EXPECT_GT(r_cpu.delineation.cycles, 46268u / 3);
  EXPECT_LT(r_cpu.delineation.cycles, 46268u * 2);
  EXPECT_GT(r_cpu.features.cycles, 70639u / 2);
  EXPECT_LT(r_cpu.features.cycles, 70639u * 2);
  EXPECT_GT(r_vwr.total.cycles, 15113u / 3);
  EXPECT_LT(r_vwr.total.cycles, 15113u * 3);
}

} // namespace
} // namespace vwr2a::app
