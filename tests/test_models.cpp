// Energy meter identities, the CPU timing model, and the FFT accelerator
// model (functional accuracy, dynamic scaling, timing formula).

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "accel/fft_accel.hpp"
#include "common/rng.hpp"
#include "cpu/kernels_q15.hpp"
#include "dsp/reference.hpp"
#include "energy/meter.hpp"

namespace vwr2a {
namespace {

using fx::q15_t;

TEST(EnergyMeter, TotalsAreSumOfCategories) {
  energy::EnergyMeter m;
  m.add(energy::Event::kSpmRowRead, 10);
  m.add(energy::Event::kAluOp, 100);
  m.add(energy::Event::kDmaBeat, 7);
  m.add(energy::Event::kBusBeat, 3);
  double sum = 0;
  for (unsigned c = 0; c < static_cast<unsigned>(energy::Category::kCount); ++c) {
    sum += m.category_pj(static_cast<energy::Category>(c));
  }
  EXPECT_DOUBLE_EQ(sum, m.total_pj());
  EXPECT_DOUBLE_EQ(m.event_pj(energy::Event::kAluOp),
                   100 * energy::energy_pj(energy::Event::kAluOp));
}

TEST(EnergyMeter, MergeAccumulates) {
  energy::EnergyMeter a, b;
  a.add(energy::Event::kSrfRead, 5);
  b.add(energy::Event::kSrfRead, 7);
  a += b;
  EXPECT_EQ(a.count(energy::Event::kSrfRead), 12u);
}

TEST(EnergyMeter, PowerReportConsistency) {
  energy::EnergyMeter m;
  m.add(energy::Event::kLeakCycle, 80);  // 80 cycles at 4 pJ = 320 pJ
  const auto rep = energy::make_power_report(m, 80);
  // 320 pJ over 1 us = 0.32 mW.
  EXPECT_NEAR(rep.total_mw, 0.32, 1e-9);
  EXPECT_NEAR(rep.total_uj, 320e-6, 1e-12);
}

TEST(CpuModel, OpCostsAccumulate) {
  energy::EnergyMeter m;
  cpu::M4Meter m4(m);
  m4.op(cpu::Op::kAlu, 10);    // 10
  m4.op(cpu::Op::kLoad, 5);    // 10
  m4.op(cpu::Op::kBranch, 2);  // 6
  EXPECT_EQ(m4.cycles(), 26u);
  EXPECT_EQ(m.count(energy::Event::kSramRead), 5u);
  EXPECT_EQ(m.count(energy::Event::kCpuCycle), 26u);
}

TEST(CpuKernels, FirMatchesDoubleConvolution) {
  energy::EnergyMeter m;
  cpu::M4Meter m4(m);
  Rng rng(1);
  std::vector<q15_t> x(200), h(11);
  for (auto& v : x) v = fx::to_q15(rng.next_range(-0.9, 0.9));
  for (auto& v : h) v = fx::to_q15(rng.next_range(-0.2, 0.2));
  const auto y = cpu::fir_q15(m4, x, h);
  std::vector<double> xd(200), hd(11);
  for (unsigned i = 0; i < 200; ++i) xd[i] = fx::from_q15(x[i]);
  for (unsigned i = 0; i < 11; ++i) hd[i] = fx::from_q15(h[i]);
  const auto yd = dsp::fir(xd, hd);
  for (unsigned i = 0; i < 200; ++i) {
    EXPECT_NEAR(fx::from_q15(y[i]), yd[i], 2e-4) << i;
  }
  EXPECT_GT(m4.cycles(), 200u * 60);  // ~97 cycles/sample calibration
  EXPECT_LT(m4.cycles(), 200u * 130);
}

TEST(CpuKernels, CfftTracksDft) {
  energy::EnergyMeter m;
  cpu::M4Meter m4(m);
  Rng rng(2);
  const unsigned n = 256;
  std::vector<cpu::CplxQ15> x(n);
  std::vector<dsp::cplx> xd(n);
  for (unsigned i = 0; i < n; ++i) {
    x[i] = {fx::to_q15(rng.next_range(-0.5, 0.5)),
            fx::to_q15(rng.next_range(-0.5, 0.5))};
    xd[i] = dsp::cplx(fx::from_q15(x[i].re), fx::from_q15(x[i].im));
  }
  const auto f = cpu::cfft_q15(m4, x);
  const auto fd = dsp::dft(xd);
  // q15 output carries a 1/N scaling.
  for (unsigned k = 0; k < n; ++k) {
    EXPECT_NEAR(fx::from_q15(f[k].re) * n, fd[k].real(), 0.25 * std::sqrt(n)) << k;
    EXPECT_NEAR(fx::from_q15(f[k].im) * n, fd[k].imag(), 0.25 * std::sqrt(n)) << k;
  }
}

TEST(CpuKernels, StatsMatchGolden) {
  energy::EnergyMeter m;
  cpu::M4Meter m4(m);
  Rng rng(3);
  std::vector<q15_t> x(301);
  for (auto& v : x) v = fx::to_q15(rng.next_range(-0.9, 0.9));
  // mean
  std::int64_t s = 0;
  for (auto v : x) s += v;
  EXPECT_EQ(cpu::mean_q15(m4, x), static_cast<q15_t>(s / 301));
  // median: lower-middle convention
  std::vector<std::int32_t> xi(x.begin(), x.end());
  EXPECT_EQ(cpu::median_q15(m4, x), static_cast<q15_t>(dsp::median_i32(xi)));
  // rms within 1 LSB-ish of the float value
  double ss = 0;
  for (auto v : x) ss += fx::from_q15(v) * fx::from_q15(v);
  EXPECT_NEAR(fx::from_q15(cpu::rms_q15(m4, x)), std::sqrt(ss / 301), 2e-4);
}

TEST(CpuKernels, DelineationMatchesGoldenSemantics) {
  energy::EnergyMeter m;
  cpu::M4Meter m4(m);
  Rng rng(4);
  std::vector<q15_t> x(400);
  std::int32_t v = 0;
  for (auto& s : x) {
    v += static_cast<std::int32_t>(rng.next_below(801)) - 400;
    v = std::max(-30000, std::min(30000, v));
    s = static_cast<q15_t>(v);
  }
  std::vector<std::int32_t> xi(x.begin(), x.end());
  EXPECT_EQ(cpu::delineate_q15(m4, x, 1500), dsp::delineate(xi, 1500));
}

class AccelSizes : public ::testing::TestWithParam<unsigned> {};

TEST_P(AccelSizes, CfftTracksDft) {
  const unsigned n = GetParam();
  energy::EnergyMeter m;
  accel::FftAccel fa(m);
  Rng rng(n);
  std::vector<cpu::CplxQ15> x(n);
  std::vector<dsp::cplx> xd(n);
  for (unsigned i = 0; i < n; ++i) {
    x[i] = {fx::to_q15(rng.next_range(-0.5, 0.5)),
            fx::to_q15(rng.next_range(-0.5, 0.5))};
    xd[i] = dsp::cplx(fx::from_q15(x[i].re), fx::from_q15(x[i].im));
  }
  const auto res = fa.cfft(x);
  const auto fd = dsp::dft(xd);
  const double scale = std::ldexp(1.0, res.scale_exp) / 32768.0;
  for (unsigned k = 0; k < n; ++k) {
    EXPECT_NEAR(res.re[k] * scale, fd[k].real(), 0.05 * std::sqrt(n) + 0.2) << k;
    EXPECT_NEAR(res.im[k] * scale, fd[k].imag(), 0.05 * std::sqrt(n) + 0.2) << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AccelSizes, ::testing::Values(64u, 256u, 512u));

TEST(Accel, TimingMatchesTable2Fit) {
  energy::EnergyMeter m;
  accel::FftAccel fa(m);
  Rng rng(5);
  std::vector<cpu::CplxQ15> x(512);
  for (auto& v : x) v = {fx::to_q15(rng.next_range(-0.4, 0.4)), 0};
  const auto res = fa.cfft(x);
  EXPECT_NEAR(static_cast<double>(res.cycles), 7099.0, 0.1 * 7099.0);
}

TEST(Accel, RealFlowCyclesNearPaper) {
  energy::EnergyMeter m;
  accel::FftAccel fa(m);
  Rng rng(6);
  std::vector<q15_t> x(512);
  for (auto& v : x) v = fx::to_q15(rng.next_range(-0.4, 0.4));
  const auto res = fa.rfft(x);
  EXPECT_NEAR(static_cast<double>(res.cycles), 3523.0, 0.1 * 3523.0);
  EXPECT_EQ(res.re.size(), 257u);
}

TEST(Accel, DynamicScalingEngagesOnLargeInputs) {
  energy::EnergyMeter m;
  accel::FftAccel fa(m);
  std::vector<cpu::CplxQ15> x(256, cpu::CplxQ15{32767, 0});  // DC full scale
  const auto res = fa.cfft(x);
  EXPECT_GT(res.scale_exp, 0);
  // X[0] = sum = 256 * 32767 rescaled by 2^-scale into 18 bits.
  const double x0 = std::ldexp(static_cast<double>(res.re[0]), res.scale_exp);
  EXPECT_NEAR(x0, 256.0 * 32767.0, 0.02 * 256 * 32767);
}

TEST(Accel, ButterflySlots) {
  EXPECT_EQ(accel::FftAccel::butterfly_slots(256), 256u);        // 4 radix-4
  EXPECT_EQ(accel::FftAccel::butterfly_slots(512), 4 * 128 + 256u);  // +radix-2
}

} // namespace
} // namespace vwr2a
